package mozart_test

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"mozart"
	"mozart/internal/annotations/vmathsa"
	"mozart/internal/obs"
	"mozart/internal/plan"
	"mozart/internal/workloads"
)

// Golden-file tests for the EXPLAIN rendering: the planner's real plan for
// two representative workloads (a vector-math chain and a dataframe
// pipeline) is pinned byte for byte. Regenerate with
//
//	UPDATE_GOLDEN=1 go test -run TestExplainGolden .

func TestExplainGoldenWorkloads(t *testing.T) {
	for _, name := range []string{"blackscholes-mkl", "datacleaning-pandas"} {
		t.Run(name, func(t *testing.T) {
			spec, err := workloads.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			var plans []*plan.Plan
			cfg := workloads.Config{
				Scale:   1 << 15,
				Threads: 4,
				OnPlan:  func(p *plan.Plan) { plans = append(plans, p) },
			}
			if _, err := spec.Run(workloads.Mozart, cfg); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(plans) == 0 {
				t.Fatalf("%s: no plan captured", name)
			}
			got := mozart.RenderPlan(plans[0])

			path := filepath.Join("testdata", "explain-"+name+".golden")
			if os.Getenv("UPDATE_GOLDEN") != "" {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with UPDATE_GOLDEN=1 go test -run TestExplainGolden .)", err)
			}
			if got != string(want) {
				t.Errorf("rendered plan differs from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
}

// planEventTracer records the Detail of every EvPlan event.
type planEventTracer struct {
	mu      sync.Mutex
	details []string
}

func (p *planEventTracer) Emit(e obs.Event) {
	if e.Kind != obs.EvPlan {
		return
	}
	p.mu.Lock()
	p.details = append(p.details, e.Detail)
	p.mu.Unlock()
}

// TestExplainMatchesPlanEvent pins the identity between the two public
// renderings of the plan IR: every stage clause the obs plan event carries
// must appear verbatim as a stage header line in the Explain tree, because
// both come from the same Plan. It also checks Explain is read-only: the
// evaluation after Explain still computes the right answer.
func TestExplainMatchesPlanEvent(t *testing.T) {
	tr := &planEventTracer{}
	s := mozart.NewSession(mozart.Options{Workers: 2, Tracer: tr})

	const n = 1 << 12
	a := make([]float64, n)
	b := make([]float64, n)
	out := make([]float64, n)
	for i := range a {
		a[i] = float64(i + 1)
		b[i] = 2
	}
	vmathsa.Div(s, n, a, b, out) // out = a / 2
	vmathsa.Add(s, n, out, out, out)
	total := vmathsa.Sum(s, n, out) // sum(a) back again

	explained, err := mozart.Explain(s)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if !strings.HasPrefix(explained, "plan: ") {
		t.Fatalf("Explain output missing plan header:\n%s", explained)
	}

	v, err := total.Float64()
	if err != nil {
		t.Fatalf("evaluation after Explain: %v", err)
	}
	want := float64(n) * float64(n+1) / 2
	if v != want {
		t.Errorf("sum = %v, want %v (Explain must not perturb evaluation)", v, want)
	}

	tr.mu.Lock()
	details := append([]string(nil), tr.details...)
	tr.mu.Unlock()
	if len(details) != 1 {
		t.Fatalf("expected 1 plan event, got %d", len(details))
	}
	lines := map[string]bool{}
	for _, l := range strings.Split(explained, "\n") {
		lines[strings.TrimSpace(l)] = true
	}
	for _, clause := range strings.Split(details[0], "; ") {
		if !lines[clause] {
			t.Errorf("plan event clause %q is not a line of the Explain tree:\n%s", clause, explained)
		}
	}
}
