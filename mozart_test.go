package mozart_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"mozart"
)

// The tests in this file use only the public facade, the way a downstream
// user would: define a custom data type, implement the splitting API for
// it, annotate two black-box functions, and run them under the runtime.

// wordList is the user's library data type: a list of text records.
type wordList struct {
	words []string
}

// upcaseAll and countLong are the user's existing "library" functions —
// they know nothing about Mozart.
func upcaseAll(w *wordList) *wordList {
	out := &wordList{words: make([]string, len(w.words))}
	for i, s := range w.words {
		out.words[i] = strings.ToUpper(s)
	}
	return out
}

func countLong(w *wordList, min int) int64 {
	var n int64
	for _, s := range w.words {
		if len(s) >= min {
			n++
		}
	}
	return n
}

// wordSplitter is the user's splitting API for wordList: split by record
// ranges (views), merge by concatenation.
type wordSplitter struct{}

func (wordSplitter) InPlace() bool { return true }

func (wordSplitter) Info(v any, t mozart.SplitType) (mozart.RuntimeInfo, error) {
	return mozart.RuntimeInfo{Elems: int64(len(v.(*wordList).words)), ElemBytes: 24}, nil
}

func (wordSplitter) Split(v any, t mozart.SplitType, start, end int64) (any, error) {
	return &wordList{words: v.(*wordList).words[start:end]}, nil
}

func (wordSplitter) Merge(pieces []any, t mozart.SplitType) (any, error) {
	out := &wordList{}
	for _, p := range pieces {
		out.words = append(out.words, p.(*wordList).words...)
	}
	return out, nil
}

// countSplitter merges partial counts by addition.
type countSplitter struct{}

func (countSplitter) Info(v any, t mozart.SplitType) (mozart.RuntimeInfo, error) {
	return mozart.RuntimeInfo{Elems: 1, ElemBytes: 8}, nil
}

func (countSplitter) Split(v any, t mozart.SplitType, start, end int64) (any, error) {
	return nil, fmt.Errorf("counts cannot be split")
}

func (countSplitter) Merge(pieces []any, t mozart.SplitType) (any, error) {
	var n int64
	for _, p := range pieces {
		n += p.(int64)
	}
	return n, nil
}

func wordSplit(argIdx int) mozart.TypeExpr {
	return mozart.Concrete("WordSplit", wordSplitter{}, func(args []any) (mozart.SplitType, error) {
		w := args[argIdx].(*wordList)
		return mozart.NewSplitType("WordSplit", int64(len(w.words))), nil
	})
}

var upcaseSA = &mozart.Annotation{
	FuncName: "upcaseAll",
	Params:   []mozart.Param{{Name: "w", Type: wordSplit(0)}},
	Ret:      func() *mozart.TypeExpr { t := mozart.Generic("S"); return &t }(),
}

var countSA = &mozart.Annotation{
	FuncName: "countLong",
	Params: []mozart.Param{
		{Name: "w", Type: mozart.Generic("S")},
		{Name: "min", Type: mozart.Missing()},
	},
	Ret: func() *mozart.TypeExpr {
		t := mozart.Concrete("CountReduce", countSplitter{}, mozart.FixedCtor(mozart.NewSplitType("CountReduce")))
		return &t
	}(),
}

var upcaseFn mozart.Func = func(args []any) (any, error) {
	return upcaseAll(args[0].(*wordList)), nil
}

var countFn mozart.Func = func(args []any) (any, error) {
	return countLong(args[0].(*wordList), args[1].(int)), nil
}

func init() {
	// The §5.1 fallback: generics over fresh wordList values split this way.
	mozart.RegisterDefaultSplit((*wordList)(nil), wordSplitter{}, func(v any) (mozart.SplitType, error) {
		return mozart.NewSplitType("WordSplit", int64(len(v.(*wordList).words))), nil
	})
}

func makeWords(n int, seed int64) *wordList {
	rng := rand.New(rand.NewSource(seed))
	w := &wordList{words: make([]string, n)}
	vocab := []string{"go", "cache", "pipeline", "annotation", "split", "merge", "runtime", "mozart"}
	for i := range w.words {
		w.words[i] = vocab[rng.Intn(len(vocab))]
	}
	return w
}

// TestPublicAPICustomSplitType: a user-defined split type pipelines two
// black-box functions through the public API.
func TestPublicAPICustomSplitType(t *testing.T) {
	in := makeWords(5000, 1)
	want := countLong(upcaseAll(in), 6)

	s := mozart.NewSession(mozart.Options{Workers: 4, BatchElems: 123})
	up := s.Call(upcaseFn, upcaseSA, in)
	cnt := s.Call(countFn, countSA, up, 6)
	got, err := cnt.Int64()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("count = %d want %d", got, want)
	}
	if st := s.Stats(); st.Stages != 1 {
		t.Errorf("upcase+count should pipeline, got %d stages", st.Stages)
	}
}

// TestPublicAPICheckAnnotation: the soundness checker is reachable from the
// facade and validates the custom annotation.
func TestPublicAPICheckAnnotation(t *testing.T) {
	gen := func(seed int64) []any { return []any{makeWords(700, seed), 6} }
	eq := func(got, want any) bool {
		g, ok := got.(int64)
		w, ok2 := want.(int64)
		return ok && ok2 && g == w
	}
	if err := mozart.CheckAnnotation(mozart.CheckSpec{Fn: countFn, Annotation: countSA, Gen: gen, Eq: eq, Config: mozart.CheckConfig{Seed: 5}}); err != nil {
		t.Fatal(err)
	}
}

// TestPublicAPIDynamicScheduling: the work-stealing ablation through the
// facade produces identical results.
func TestPublicAPIDynamicScheduling(t *testing.T) {
	in := makeWords(3000, 2)
	want := countLong(upcaseAll(in), 5)
	s := mozart.NewSession(mozart.Options{Workers: 5, BatchElems: 77, DynamicScheduling: true})
	got, err := s.Call(countFn, countSA, s.Call(upcaseFn, upcaseSA, in), 5).Int64()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("count = %d want %d", got, want)
	}
}
