package data

import (
	"strings"
	"testing"
)

func TestVectorDeterministicAndBounded(t *testing.T) {
	a := Vector(1000, 7, 2, 5)
	b := Vector(1000, 7, 2, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce")
		}
		if a[i] < 2 || a[i] >= 5 {
			t.Fatalf("out of range: %v", a[i])
		}
	}
	c := Vector(1000, 8, 2, 5)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds must differ")
	}
}

func TestOptionsGPSBodies(t *testing.T) {
	p, k, tt := OptionsData(100, 1)
	if len(p) != 100 || len(k) != 100 || len(tt) != 100 {
		t.Fatal("lengths")
	}
	for i := range tt {
		if tt[i] <= 0 {
			t.Fatal("maturities must be positive")
		}
	}
	lat, lon := GPSData(50, 2)
	for i := range lat {
		if lat[i] < -1.6 || lat[i] > 1.6 || lon[i] < -3.2 || lon[i] > 3.2 {
			t.Fatal("GPS radians out of range")
		}
	}
	x, y, z, m := Bodies(30, 3)
	if len(x) != 30 || len(y) != 30 || len(z) != 30 || len(m) != 30 {
		t.Fatal("bodies lengths")
	}
	for _, v := range m {
		if v <= 0 {
			t.Fatal("masses must be positive")
		}
	}
}

func TestFluidGrid(t *testing.T) {
	g := FluidGrid(32, 4)
	if len(g) != 1024 {
		t.Fatal("size")
	}
	disturbed := false
	for _, v := range g {
		if v < 1 {
			t.Fatal("heights below rest")
		}
		if v > 1 {
			disturbed = true
		}
	}
	if !disturbed {
		t.Fatal("grid should have a central disturbance")
	}
}

func TestServiceRequests(t *testing.T) {
	df := ServiceRequests(2000, 5)
	if df.NRows() != 2000 || !df.HasCol("Incident Zip") {
		t.Fatal("shape")
	}
	junk, clean := 0, 0
	for _, z := range df.Col("Incident Zip").S {
		switch {
		case z == "NO CLUE" || z == "N/A" || z == "0":
			junk++
		case len(z) == 5 || strings.Contains(z, "-"):
			clean++
		default:
			t.Fatalf("unexpected zip form %q", z)
		}
	}
	if junk == 0 || clean == 0 {
		t.Fatal("mix of junk and clean zips expected")
	}
}

func TestBabyNames(t *testing.T) {
	df := BabyNames(3000, 6)
	lesl := 0
	for _, n := range df.Col("name").S {
		if strings.HasPrefix(n, "Lesl") {
			lesl++
		}
	}
	if lesl == 0 || lesl > 600 {
		t.Fatalf("Lesl fraction off: %d/3000", lesl)
	}
	for _, y := range df.Col("year").I {
		if y < 1960 || y > 2020 {
			t.Fatal("year range")
		}
	}
}

func TestMovieLens(t *testing.T) {
	ratings, users, movies := MovieLens(5000, 50, 20, 7)
	if ratings.NRows() != 5000 || users.NRows() != 50 || movies.NRows() != 20 {
		t.Fatal("table sizes")
	}
	for _, uid := range ratings.Col("userId").I {
		if uid < 1 || uid > 50 {
			t.Fatal("rating userId out of dimension range")
		}
	}
	for _, r := range ratings.Col("rating").F {
		if r < 1 || r > 5 {
			t.Fatal("rating range")
		}
	}
	if movies.Col("title").S[0] == movies.Col("title").S[1] {
		t.Fatal("titles must be distinct")
	}
}

func TestReviewCorpusAndPhoto(t *testing.T) {
	corpus := ReviewCorpus(40, 8)
	if len(corpus) != 40 {
		t.Fatal("corpus size")
	}
	for _, doc := range corpus {
		if len(doc) < 40 {
			t.Fatal("documents should be multi-sentence")
		}
	}
	img := Photo(64, 48, 9)
	if img.W != 64 || img.H != 48 {
		t.Fatal("photo dims")
	}
	// Not uniform.
	r0, g0, b0, _ := img.At(0, 0)
	r1, g1, b1, _ := img.At(63, 47)
	if r0 == r1 && g0 == g1 && b0 == b1 {
		t.Fatal("photo should have gradients")
	}
}
