// Package data generates the deterministic synthetic datasets the
// benchmark workloads run on. The paper's workloads use public datasets
// (311 service requests, US baby names, MovieLens, the IMDb review corpus,
// photographs); these generators produce structurally matched stand-ins —
// same column types, junk-value mixes, group cardinalities, and join
// fan-outs — at configurable scale, from fixed seeds (see DESIGN.md §2).
package data

import (
	"fmt"
	"math/rand"

	"mozart/internal/frame"
	"mozart/internal/imagelib"
)

// Vector returns n floats in [lo, hi).
func Vector(n int, seed int64, lo, hi float64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + rng.Float64()*(hi-lo)
	}
	return out
}

// OptionsData returns price, strike, and time-to-maturity vectors for the
// Black Scholes benchmark.
func OptionsData(n int, seed int64) (price, strike, t []float64) {
	return Vector(n, seed, 10, 200), Vector(n, seed+1, 10, 200), Vector(n, seed+2, 0.1, 2)
}

// GPSData returns latitude and longitude vectors in radians for Haversine.
func GPSData(n int, seed int64) (lat, lon []float64) {
	return Vector(n, seed, -1.4, 1.4), Vector(n, seed+1, -3.1, 3.1)
}

// Bodies returns positions, and masses for n gravitating bodies.
func Bodies(n int, seed int64) (x, y, z, mass []float64) {
	return Vector(n, seed, -1, 1), Vector(n, seed+1, -1, 1), Vector(n, seed+2, -1, 1),
		Vector(n, seed+3, 0.5, 2)
}

// FluidGrid returns an n x n height field with a central disturbance, the
// Shallow Water initial condition.
func FluidGrid(n int, seed int64) []float64 {
	g := make([]float64, n*n)
	for i := range g {
		g[i] = 1
	}
	rng := rand.New(rand.NewSource(seed))
	cx, cy := n/2, n/2
	for dy := -n / 8; dy <= n/8; dy++ {
		for dx := -n / 8; dx <= n/8; dx++ {
			x, y := cx+dx, cy+dy
			if x >= 0 && x < n && y >= 0 && y < n {
				g[y*n+x] += 0.1 + 0.01*rng.Float64()
			}
		}
	}
	return g
}

// ServiceRequests returns a 311-requests-like frame with a dirty zip-code
// column: well-formed zips, zip+4 forms, and the junk values the Pandas
// cookbook's cleaning chapter handles.
func ServiceRequests(n int, seed int64) *frame.DataFrame {
	rng := rand.New(rand.NewSource(seed))
	zips := make([]string, n)
	complaint := make([]string, n)
	borough := make([]string, n)
	kinds := []string{"Noise", "Heating", "Parking", "Water", "Rodent", "Graffiti"}
	boroughs := []string{"MANHATTAN", "BROOKLYN", "QUEENS", "BRONX", "STATEN ISLAND"}
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0:
			zips[i] = "NO CLUE"
		case 1:
			zips[i] = "N/A"
		case 2:
			zips[i] = "0"
		case 3:
			zips[i] = fmt.Sprintf("%05d-%04d", 10000+rng.Intn(900), rng.Intn(10000))
		default:
			zips[i] = fmt.Sprintf("%05d", 10000+rng.Intn(90000))
		}
		complaint[i] = kinds[rng.Intn(len(kinds))]
		borough[i] = boroughs[rng.Intn(len(boroughs))]
	}
	return frame.NewDataFrame(
		frame.NewString("Incident Zip", zips),
		frame.NewString("Complaint Type", complaint),
		frame.NewString("Borough", borough),
	)
}

// CityData returns per-record city population and crime information for the
// Crime Index workload.
func CityData(n int, seed int64) *frame.DataFrame {
	return frame.NewDataFrame(
		frame.NewFloat("population", Vector(n, seed, 1e3, 1e6)),
		frame.NewFloat("total_crimes", Vector(n, seed+1, 10, 5e4)),
	)
}

// BabyNames returns a names/year/sex/births frame; a fixed fraction of
// names start with "Lesl" for the Birth Analysis workload.
func BabyNames(n int, seed int64) *frame.DataFrame {
	rng := rand.New(rand.NewSource(seed))
	base := []string{"Emma", "Olivia", "Noah", "Liam", "Ava", "Mia", "Lucas", "Ethan", "Amelia", "Logan"}
	lesl := []string{"Leslie", "Lesley", "Leslee", "Lesli", "Lesly"}
	names := make([]string, n)
	years := make([]int64, n)
	sexes := make([]string, n)
	births := make([]float64, n)
	for i := 0; i < n; i++ {
		if rng.Intn(20) == 0 {
			names[i] = lesl[rng.Intn(len(lesl))]
		} else {
			names[i] = base[rng.Intn(len(base))]
		}
		years[i] = int64(1960 + rng.Intn(60))
		sexes[i] = []string{"F", "M"}[rng.Intn(2)]
		births[i] = float64(rng.Intn(5000) + 10)
	}
	return frame.NewDataFrame(
		frame.NewString("name", names),
		frame.NewInt("year", years),
		frame.NewString("sex", sexes),
		frame.NewFloat("births", births),
	)
}

// MovieLens returns ratings, users, and movies frames with MovieLens-like
// shape: ratings is the large fact table; users and movies are small
// dimensions.
func MovieLens(nRatings, nUsers, nMovies int, seed int64) (ratings, users, movies *frame.DataFrame) {
	rng := rand.New(rand.NewSource(seed))
	uid := make([]int64, nRatings)
	mid := make([]int64, nRatings)
	score := make([]float64, nRatings)
	for i := range uid {
		uid[i] = int64(rng.Intn(nUsers) + 1)
		mid[i] = int64(rng.Intn(nMovies) + 1)
		score[i] = float64(rng.Intn(5) + 1)
	}
	ratings = frame.NewDataFrame(
		frame.NewInt("userId", uid),
		frame.NewInt("movieId", mid),
		frame.NewFloat("rating", score),
	)
	uids := make([]int64, nUsers)
	gender := make([]string, nUsers)
	age := make([]int64, nUsers)
	for i := range uids {
		uids[i] = int64(i + 1)
		gender[i] = []string{"F", "M"}[rng.Intn(2)]
		age[i] = int64(18 + rng.Intn(50))
	}
	users = frame.NewDataFrame(
		frame.NewInt("userId", uids),
		frame.NewString("gender", gender),
		frame.NewInt("age", age),
	)
	mids := make([]int64, nMovies)
	title := make([]string, nMovies)
	for i := range mids {
		mids[i] = int64(i + 1)
		title[i] = fmt.Sprintf("Movie %04d", i+1)
	}
	movies = frame.NewDataFrame(
		frame.NewInt("movieId", mids),
		frame.NewString("title", title),
	)
	return ratings, users, movies
}

// ReviewCorpus returns n IMDb-like review documents.
func ReviewCorpus(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	openers := []string{
		"This film was absolutely wonderful and the direction felt inspired.",
		"I really wanted to like this movie but the pacing dragged badly.",
		"The actors delivered surprisingly strong performances throughout.",
		"A boring, predictable plot that never quite finds its footing.",
		"What a delightful surprise! The ending genuinely moved me.",
		"The cinematography in London was stunning, though the script rambled.",
	}
	fillers := []string{
		"The soundtrack carried several scenes.",
		"Supporting characters appeared and vanished without explanation.",
		"I watched it twice and noticed new details again.",
		"Critics praised the editing but viewers disagreed strongly.",
		"The second act wanders into strange territory.",
	}
	out := make([]string, n)
	for i := range out {
		doc := openers[rng.Intn(len(openers))]
		for k := 0; k < 2+rng.Intn(4); k++ {
			doc += " " + fillers[rng.Intn(len(fillers))]
		}
		out[i] = doc
	}
	return out
}

// Photo returns a w x h synthetic photograph with smooth gradients and
// noise, for the image filter workloads.
func Photo(w, h int, seed int64) *imagelib.Image {
	rng := rand.New(rand.NewSource(seed))
	img := imagelib.NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r := uint8((x*255/max(1, w-1) + rng.Intn(32)) % 256)
			g := uint8((y*255/max(1, h-1) + rng.Intn(32)) % 256)
			b := uint8(((x + y) * 255 / max(1, w+h-2)) % 256)
			img.Set(x, y, r, g, b, 255)
		}
	}
	return img
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
