package vmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()*4 + 0.25
	}
	return v
}

func close1(a, b float64) bool { return math.Abs(a-b) <= 1e-12*(1+math.Abs(b)) }

func TestBinaryOps(t *testing.T) {
	n := 1001 // odd length exercises the unroll tail
	a, b := randVec(n, 1), randVec(n, 2)
	out := make([]float64, n)
	cases := []struct {
		name string
		op   func(int, []float64, []float64, []float64)
		ref  func(x, y float64) float64
	}{
		{"Add", Add, func(x, y float64) float64 { return x + y }},
		{"Sub", Sub, func(x, y float64) float64 { return x - y }},
		{"Mul", Mul, func(x, y float64) float64 { return x * y }},
		{"Div", Div, func(x, y float64) float64 { return x / y }},
		{"MaxV", MaxV, math.Max},
		{"MinV", MinV, math.Min},
		{"Pow", Pow, math.Pow},
		{"Atan2", Atan2, math.Atan2},
		{"Hypot", Hypot, math.Hypot},
	}
	for _, c := range cases {
		c.op(n, a, b, out)
		for i := 0; i < n; i++ {
			if !close1(out[i], c.ref(a[i], b[i])) {
				t.Fatalf("%s[%d] = %v, want %v", c.name, i, out[i], c.ref(a[i], b[i]))
			}
		}
	}
}

func TestUnaryOps(t *testing.T) {
	n := 517
	a := randVec(n, 3)
	out := make([]float64, n)
	cases := []struct {
		name string
		op   func(int, []float64, []float64)
		ref  func(x float64) float64
	}{
		{"Sqrt", Sqrt, math.Sqrt},
		{"InvSqrt", InvSqrt, func(x float64) float64 { return 1 / math.Sqrt(x) }},
		{"Inv", Inv, func(x float64) float64 { return 1 / x }},
		{"Sqr", Sqr, func(x float64) float64 { return x * x }},
		{"Exp", Exp, math.Exp},
		{"Ln", Ln, math.Log},
		{"Log1p", Log1p, math.Log1p},
		{"Log2", Log2, math.Log2},
		{"Erf", Erf, math.Erf},
		{"Erfc", Erfc, math.Erfc},
		{"Abs", Abs, math.Abs},
		{"Sin", Sin, math.Sin},
		{"Cos", Cos, math.Cos},
		{"Floor", Floor, math.Floor},
		{"Neg", Neg, func(x float64) float64 { return -x }},
		{"CdfNorm", CdfNorm, func(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }},
	}
	for _, c := range cases {
		c.op(n, a, out)
		for i := 0; i < n; i++ {
			if !close1(out[i], c.ref(a[i])) {
				t.Fatalf("%s[%d] = %v, want %v", c.name, i, out[i], c.ref(a[i]))
			}
		}
	}
}

func TestScalarOps(t *testing.T) {
	n := 321
	a := randVec(n, 4)
	out := make([]float64, n)
	c := 2.5
	AddC(n, a, c, out)
	for i := range out[:n] {
		if !close1(out[i], a[i]+c) {
			t.Fatal("AddC")
		}
	}
	SubC(n, a, c, out)
	for i := range out[:n] {
		if !close1(out[i], a[i]-c) {
			t.Fatal("SubC")
		}
	}
	SubCRev(n, a, c, out)
	for i := range out[:n] {
		if !close1(out[i], c-a[i]) {
			t.Fatal("SubCRev")
		}
	}
	MulC(n, a, c, out)
	for i := range out[:n] {
		if !close1(out[i], a[i]*c) {
			t.Fatal("MulC")
		}
	}
	DivC(n, a, c, out)
	for i := range out[:n] {
		if !close1(out[i], a[i]/c) {
			t.Fatal("DivC")
		}
	}
	DivCRev(n, a, c, out)
	for i := range out[:n] {
		if !close1(out[i], c/a[i]) {
			t.Fatal("DivCRev")
		}
	}
}

func TestAliasedOut(t *testing.T) {
	n := 64
	a, b := randVec(n, 5), randVec(n, 6)
	want := make([]float64, n)
	for i := range want {
		want[i] = a[i] + b[i]
	}
	Add(n, a, b, a) // out aliases a, MKL-style in-place
	for i := range a {
		if !close1(a[i], want[i]) {
			t.Fatal("aliased Add wrong")
		}
	}
}

func TestReductions(t *testing.T) {
	n := 777
	a, b := randVec(n, 7), randVec(n, 8)
	var dot, sum, asum, nrm float64
	for i := 0; i < n; i++ {
		dot += a[i] * b[i]
		sum += a[i]
		asum += math.Abs(a[i])
		nrm += a[i] * a[i]
	}
	if !close1(Dot(n, a, b), dot) {
		t.Error("Dot")
	}
	if !close1(Sum(n, a), sum) {
		t.Error("Sum")
	}
	if !close1(Asum(n, a), asum) {
		t.Error("Asum")
	}
	if !close1(Nrm2(n, a), math.Sqrt(nrm)) {
		t.Error("Nrm2")
	}
	if MaxReduce(n, a) != slowMax(a[:n]) {
		t.Error("MaxReduce")
	}
	if MinReduce(n, a) != slowMin(a[:n]) {
		t.Error("MinReduce")
	}
}

func slowMax(a []float64) float64 {
	m := math.Inf(-1)
	for _, x := range a {
		m = math.Max(m, x)
	}
	return m
}

func slowMin(a []float64) float64 {
	m := math.Inf(1)
	for _, x := range a {
		m = math.Min(m, x)
	}
	return m
}

func TestAxpyScal(t *testing.T) {
	n := 100
	x, y := randVec(n, 9), randVec(n, 10)
	want := make([]float64, n)
	for i := range want {
		want[i] = y[i] + 1.5*x[i]
	}
	Axpy(n, 1.5, x, y)
	for i := range y {
		if !close1(y[i], want[i]) {
			t.Fatal("Axpy")
		}
	}
	Scal(n, 2, y)
	for i := range y {
		if !close1(y[i], 2*want[i]) {
			t.Fatal("Scal")
		}
	}
}

func TestSelectFill(t *testing.T) {
	n := 50
	mask := make([]float64, n)
	for i := range mask {
		mask[i] = float64(i % 2)
	}
	tr, fa := randVec(n, 11), randVec(n, 12)
	out := make([]float64, n)
	Select(n, mask, tr, fa, out)
	for i := range out {
		want := fa[i]
		if i%2 == 1 {
			want = tr[i]
		}
		if out[i] != want {
			t.Fatal("Select")
		}
	}
	Fill(n, 7, out)
	for _, x := range out {
		if x != 7 {
			t.Fatal("Fill")
		}
	}
}

// TestInternalParallelismMatchesSerial: results are identical whatever the
// library's internal thread count (MKL determinism for these kernels).
func TestInternalParallelismMatchesSerial(t *testing.T) {
	defer SetNumThreads(1)
	n := parallelThreshold * 2
	a, b := randVec(n, 13), randVec(n, 14)
	serial := make([]float64, n)
	SetNumThreads(1)
	Add(n, a, b, serial)
	par := make([]float64, n)
	SetNumThreads(4)
	Add(n, a, b, par)
	for i := range par {
		if serial[i] != par[i] {
			t.Fatal("parallel Add differs from serial")
		}
	}
	if !close1(Sum(n, a), func() float64 {
		SetNumThreads(1)
		return Sum(n, a)
	}()) {
		t.Fatal("parallel Sum differs")
	}
}

func TestSetNumThreadsClamps(t *testing.T) {
	defer SetNumThreads(1)
	SetNumThreads(0)
	if NumThreads() != 1 {
		t.Fatal("SetNumThreads(0) should clamp to 1")
	}
	SetNumThreads(8)
	if NumThreads() != 8 {
		t.Fatal("SetNumThreads(8)")
	}
}

func TestShortSlicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for short slice")
		}
	}()
	Add(10, make([]float64, 5), make([]float64, 10), make([]float64, 10))
}

// TestQuickAddCommutes is a tiny algebraic property check of the kernels.
func TestQuickAddCommutes(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		x := make([]float64, n)
		y := make([]float64, n)
		Add(n, a[:n], b[:n], x)
		Add(n, b[:n], a[:n], y)
		for i := range x {
			if x[i] != y[i] && !(math.IsNaN(x[i]) && math.IsNaN(y[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
