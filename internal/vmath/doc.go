// Package vmath is the repository's stand-in for Intel MKL: a hand-tuned
// vector and matrix math library over dense float64 buffers.
//
// Like MKL's vector-math (VM), L1 and L2 BLAS headers, functions take
// explicit lengths and slices, write results through an out parameter, and
// optionally parallelize internally across a configurable number of threads
// (MKL uses TBB; we use goroutines). The functions are deliberately
// black boxes: they know nothing about Mozart, which is the whole point of
// split annotations — the SAs for this library live in
// internal/annotations/vmathsa.
//
// The kernels use simple manual unrolling; on real hardware MKL is SIMD
// vectorized, which is the property the paper credits for Mozart beating
// Weld on MKL workloads.
package vmath
