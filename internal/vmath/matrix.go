package vmath

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major float64 matrix, the analogue of the buffers
// MKL's L2/L3 BLAS and the paper's matrix split types operate over. Row
// bands share underlying storage, so row-wise splits are zero copy.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix allocates a Rows x Cols zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("vmath: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// MatrixFrom wraps existing data (len must be rows*cols).
func MatrixFrom(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("vmath: MatrixFrom: len(data)=%d, want %d", len(data), rows*cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Row returns row r as a shared-storage slice.
func (m *Matrix) Row(r int) []float64 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// RowBand returns rows [r0, r1) as a matrix view sharing storage.
func (m *Matrix) RowBand(r0, r1 int) *Matrix {
	if r0 < 0 || r1 < r0 || r1 > m.Rows {
		panic(fmt.Sprintf("vmath: RowBand [%d,%d) out of range (rows %d)", r0, r1, m.Rows))
	}
	return &Matrix{Rows: r1 - r0, Cols: m.Cols, Data: m.Data[r0*m.Cols : r1*m.Cols]}
}

// Clone deep copies the matrix.
func (m *Matrix) Clone() *Matrix {
	return &Matrix{Rows: m.Rows, Cols: m.Cols, Data: append([]float64(nil), m.Data...)}
}

func sameShape(ms ...*Matrix) {
	for _, m := range ms[1:] {
		if m.Rows != ms[0].Rows || m.Cols != ms[0].Cols {
			panic("vmath: matrix shape mismatch")
		}
	}
}

// Elementwise matrix operations write through out, which may alias inputs.

// MatAdd computes out = a + b.
func MatAdd(a, b, out *Matrix) { sameShape(a, b, out); Add(len(a.Data), a.Data, b.Data, out.Data) }

// MatSub computes out = a - b.
func MatSub(a, b, out *Matrix) { sameShape(a, b, out); Sub(len(a.Data), a.Data, b.Data, out.Data) }

// MatMulElem computes out = a * b elementwise.
func MatMulElem(a, b, out *Matrix) { sameShape(a, b, out); Mul(len(a.Data), a.Data, b.Data, out.Data) }

// MatDivElem computes out = a / b elementwise.
func MatDivElem(a, b, out *Matrix) { sameShape(a, b, out); Div(len(a.Data), a.Data, b.Data, out.Data) }

// MatSqrt computes out = sqrt(a) elementwise.
func MatSqrt(a, out *Matrix) { sameShape(a, out); Sqrt(len(a.Data), a.Data, out.Data) }

// MatExp computes out = e^a elementwise.
func MatExp(a, out *Matrix) { sameShape(a, out); Exp(len(a.Data), a.Data, out.Data) }

// MatScale computes out = a * c.
func MatScale(a *Matrix, c float64, out *Matrix) {
	sameShape(a, out)
	MulC(len(a.Data), a.Data, c, out.Data)
}

// MatAddC computes out = a + c.
func MatAddC(a *Matrix, c float64, out *Matrix) {
	sameShape(a, out)
	AddC(len(a.Data), a.Data, c, out.Data)
}

// MatPowC computes out = a^c elementwise.
func MatPowC(a *Matrix, c float64, out *Matrix) {
	sameShape(a, out)
	unary(len(a.Data), a.Data, out.Data, func(x float64) float64 { return math.Pow(x, c) })
}

// MatCopy copies a into out.
func MatCopy(a, out *Matrix) { sameShape(a, out); copy(out.Data, a.Data) }

// MatFill sets every element of out to c.
func MatFill(out *Matrix, c float64) { Fill(len(out.Data), c, out.Data) }

// MulRowVec computes out[i][j] = a[i][j] * v[j]: v is broadcast across rows.
func MulRowVec(a *Matrix, v []float64, out *Matrix) {
	sameShape(a, out)
	checkLen(a.Cols, v)
	parallelFor(a.Rows, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			row, orow := a.Row(r), out.Row(r)
			for c := range row {
				orow[c] = row[c] * v[c]
			}
		}
	})
}

// MulColVec computes out[i][j] = a[i][j] * v[i]: v scales each row.
func MulColVec(a *Matrix, v []float64, out *Matrix) {
	sameShape(a, out)
	checkLen(a.Rows, v)
	parallelFor(a.Rows, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			row, orow := a.Row(r), out.Row(r)
			for c := range row {
				orow[c] = row[c] * v[r]
			}
		}
	})
}

// AddRowVec computes out[i][j] = a[i][j] + v[j].
func AddRowVec(a *Matrix, v []float64, out *Matrix) {
	sameShape(a, out)
	checkLen(a.Cols, v)
	parallelFor(a.Rows, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			row, orow := a.Row(r), out.Row(r)
			for c := range row {
				orow[c] = row[c] + v[c]
			}
		}
	})
}

// OuterDiff fills out[i][j] = x[i] - x[j]; the pairwise-difference matrix
// nBody-style simulations build. It reads all of x, so it is not splittable
// by rows of out against a split x.
func OuterDiff(x []float64, out *Matrix) {
	if out.Rows != len(x) || out.Cols != len(x) {
		panic("vmath: OuterDiff: out must be len(x) square")
	}
	parallelFor(len(x), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := out.Row(i)
			xi := x[i]
			for j := range row {
				row[j] = xi - x[j]
			}
		}
	})
}

// RowSums computes out[i] = sum over columns of row i (a row-wise
// reduction; splittable by rows with concatenated results).
func RowSums(a *Matrix, out []float64) {
	checkLen(a.Rows, out)
	parallelFor(a.Rows, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			s := 0.0
			for _, x := range a.Row(r) {
				s += x
			}
			out[r] = s
		}
	})
}

// ColSums returns per-column sums (a column-wise reduction over rows; under
// SAs the partial vectors merge by addition).
func ColSums(a *Matrix) []float64 {
	out := make([]float64, a.Cols)
	for r := 0; r < a.Rows; r++ {
		row := a.Row(r)
		for c, x := range row {
			out[c] += x
		}
	}
	return out
}

// ShiftCols writes out[i][j] = a[i][(j+k) mod cols]: a circular column roll.
// Each row depends only on itself, so the operation splits by rows.
func ShiftCols(a *Matrix, k int, out *Matrix) {
	sameShape(a, out)
	cols := a.Cols
	if cols == 0 {
		return
	}
	k = ((k % cols) + cols) % cols
	parallelFor(a.Rows, func(lo, hi int) {
		tmp := make([]float64, cols)
		for r := lo; r < hi; r++ {
			row := a.Row(r)
			copy(tmp, row[k:])
			copy(tmp[cols-k:], row[:k])
			copy(out.Row(r), tmp)
		}
	})
}

// ShiftRows writes out[i][j] = a[(i+k) mod rows][j]: a circular row roll.
// Rows move across the whole matrix, so this is NOT splittable by rows;
// its SA marks every argument "_" and it runs whole (like the indexing
// operations Mozart cannot split in §8.2).
func ShiftRows(a *Matrix, k int, out *Matrix) {
	sameShape(a, out)
	rows := a.Rows
	if rows == 0 {
		return
	}
	k = ((k % rows) + rows) % rows
	if a == out {
		a = a.Clone()
	}
	for r := 0; r < rows; r++ {
		copy(out.Row(r), a.Row((r+k)%rows))
	}
}

// Gemv computes y = alpha*A*x + beta*y (cblas_dgemv, row major, no
// transpose). Splittable by rows of A and y with x broadcast.
func Gemv(alpha float64, a *Matrix, x []float64, beta float64, y []float64) {
	checkLen(a.Cols, x)
	checkLen(a.Rows, y)
	parallelFor(a.Rows, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			row := a.Row(r)
			s := 0.0
			for c := range row {
				s += row[c] * x[c]
			}
			y[r] = alpha*s + beta*y[r]
		}
	})
}

// Gemm computes C = alpha*A*B + beta*C (cblas_dgemm, row major). A simple
// blocked kernel; included for completeness of the BLAS surface.
func Gemm(alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic("vmath: Gemm shape mismatch")
	}
	const blk = 64
	parallelFor(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			crow := c.Row(i)
			for j := range crow {
				crow[j] *= beta
			}
		}
		for kk := 0; kk < a.Cols; kk += blk {
			kmax := kk + blk
			if kmax > a.Cols {
				kmax = a.Cols
			}
			for i := lo; i < hi; i++ {
				arow := a.Row(i)
				crow := c.Row(i)
				for k := kk; k < kmax; k++ {
					av := alpha * arow[k]
					brow := b.Row(k)
					for j := range brow {
						crow[j] += av * brow[j]
					}
				}
			}
		}
	})
}

// MemoryFootprint reports the backing buffer size in bytes.
func (m *Matrix) MemoryFootprint() int64 { return int64(len(m.Data)) * 8 }
