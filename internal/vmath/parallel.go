package vmath

import (
	"sync"
	"sync/atomic"
)

// numThreads is the library's internal parallelism, like MKL's
// mkl_set_num_threads. The default of 1 keeps kernels serial; benchmarks
// raise it to model "already-parallelized" library behaviour (§8.2).
var numThreads atomic.Int32

func init() { numThreads.Store(1) }

// SetNumThreads sets the library's internal thread count (>= 1).
func SetNumThreads(n int) {
	if n < 1 {
		n = 1
	}
	numThreads.Store(int32(n))
}

// NumThreads returns the library's internal thread count.
func NumThreads() int { return int(numThreads.Load()) }

// parallelThreshold is the element count below which kernels stay serial;
// launching threads for cache-sized chunks would only add overhead. This is
// why Mozart-split pieces run serially inside the library even when the
// library's own threading is enabled.
const parallelThreshold = 1 << 15

// parallelFor runs body over [0, n) split into contiguous chunks across the
// library's internal threads.
func parallelFor(n int, body func(lo, hi int)) {
	t := NumThreads()
	if t == 1 || n < parallelThreshold {
		body(0, n)
		return
	}
	if t > n {
		t = n
	}
	var wg sync.WaitGroup
	per := n / t
	rem := n % t
	lo := 0
	for i := 0; i < t; i++ {
		hi := lo + per
		if i < rem {
			hi++
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
		lo = hi
	}
	wg.Wait()
}

// parallelReduce runs body over chunks and combines the per-chunk results
// with combine.
func parallelReduce(n int, body func(lo, hi int) float64, combine func(a, b float64) float64) float64 {
	t := NumThreads()
	if t == 1 || n < parallelThreshold {
		return body(0, n)
	}
	if t > n {
		t = n
	}
	results := make([]float64, t)
	var wg sync.WaitGroup
	per := n / t
	rem := n % t
	lo := 0
	for i := 0; i < t; i++ {
		hi := lo + per
		if i < rem {
			hi++
		}
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			results[i] = body(lo, hi)
		}(i, lo, hi)
		lo = hi
	}
	wg.Wait()
	acc := results[0]
	for _, r := range results[1:] {
		acc = combine(acc, r)
	}
	return acc
}
