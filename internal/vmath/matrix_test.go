package vmath

import (
	"math"
	"testing"
)

func testMat(rows, cols int, seed int64) *Matrix {
	m := NewMatrix(rows, cols)
	copy(m.Data, randVec(rows*cols, seed))
	return m
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(3, 4)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatal("At/Set")
	}
	if len(m.Row(1)) != 4 || m.Row(1)[2] != 5 {
		t.Fatal("Row")
	}
	band := m.RowBand(1, 3)
	if band.Rows != 2 || band.At(0, 2) != 5 {
		t.Fatal("RowBand")
	}
	band.Set(0, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("RowBand should share storage")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Fatal("Clone should copy")
	}
	if MatrixFrom(2, 2, []float64{1, 2, 3, 4}).At(1, 1) != 4 {
		t.Fatal("MatrixFrom")
	}
}

func TestMatrixPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: want panic", name)
			}
		}()
		f()
	}
	mustPanic("negative dim", func() { NewMatrix(-1, 2) })
	mustPanic("MatrixFrom len", func() { MatrixFrom(2, 2, make([]float64, 3)) })
	mustPanic("RowBand range", func() { NewMatrix(2, 2).RowBand(0, 3) })
	mustPanic("shape mismatch", func() { MatAdd(NewMatrix(2, 2), NewMatrix(2, 3), NewMatrix(2, 2)) })
	mustPanic("Gemm shape", func() { Gemm(1, NewMatrix(2, 3), NewMatrix(2, 3), 0, NewMatrix(2, 3)) })
	mustPanic("OuterDiff shape", func() { OuterDiff(make([]float64, 3), NewMatrix(2, 3)) })
}

func TestMatrixElementwise(t *testing.T) {
	a, b := testMat(7, 9, 20), testMat(7, 9, 21)
	out := NewMatrix(7, 9)
	MatAdd(a, b, out)
	for i := range out.Data {
		if !close1(out.Data[i], a.Data[i]+b.Data[i]) {
			t.Fatal("MatAdd")
		}
	}
	MatSub(a, b, out)
	for i := range out.Data {
		if !close1(out.Data[i], a.Data[i]-b.Data[i]) {
			t.Fatal("MatSub")
		}
	}
	MatMulElem(a, b, out)
	for i := range out.Data {
		if !close1(out.Data[i], a.Data[i]*b.Data[i]) {
			t.Fatal("MatMulElem")
		}
	}
	MatDivElem(a, b, out)
	for i := range out.Data {
		if !close1(out.Data[i], a.Data[i]/b.Data[i]) {
			t.Fatal("MatDivElem")
		}
	}
	MatSqrt(a, out)
	for i := range out.Data {
		if !close1(out.Data[i], math.Sqrt(a.Data[i])) {
			t.Fatal("MatSqrt")
		}
	}
	MatExp(a, out)
	for i := range out.Data {
		if !close1(out.Data[i], math.Exp(a.Data[i])) {
			t.Fatal("MatExp")
		}
	}
	MatScale(a, 3, out)
	for i := range out.Data {
		if !close1(out.Data[i], 3*a.Data[i]) {
			t.Fatal("MatScale")
		}
	}
	MatAddC(a, 3, out)
	for i := range out.Data {
		if !close1(out.Data[i], a.Data[i]+3) {
			t.Fatal("MatAddC")
		}
	}
	MatPowC(a, 2, out)
	for i := range out.Data {
		if !close1(out.Data[i], a.Data[i]*a.Data[i]) {
			t.Fatal("MatPowC")
		}
	}
	MatCopy(a, out)
	for i := range out.Data {
		if out.Data[i] != a.Data[i] {
			t.Fatal("MatCopy")
		}
	}
	MatFill(out, 2)
	for i := range out.Data {
		if out.Data[i] != 2 {
			t.Fatal("MatFill")
		}
	}
}

func TestVectorBroadcastOps(t *testing.T) {
	a := testMat(5, 8, 22)
	rv := randVec(8, 23)
	cv := randVec(5, 24)
	out := NewMatrix(5, 8)
	MulRowVec(a, rv, out)
	for r := 0; r < 5; r++ {
		for c := 0; c < 8; c++ {
			if !close1(out.At(r, c), a.At(r, c)*rv[c]) {
				t.Fatal("MulRowVec")
			}
		}
	}
	MulColVec(a, cv, out)
	for r := 0; r < 5; r++ {
		for c := 0; c < 8; c++ {
			if !close1(out.At(r, c), a.At(r, c)*cv[r]) {
				t.Fatal("MulColVec")
			}
		}
	}
	AddRowVec(a, rv, out)
	for r := 0; r < 5; r++ {
		for c := 0; c < 8; c++ {
			if !close1(out.At(r, c), a.At(r, c)+rv[c]) {
				t.Fatal("AddRowVec")
			}
		}
	}
}

func TestOuterDiff(t *testing.T) {
	x := randVec(6, 25)
	out := NewMatrix(6, 6)
	OuterDiff(x, out)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if !close1(out.At(i, j), x[i]-x[j]) {
				t.Fatal("OuterDiff")
			}
		}
	}
}

func TestSums(t *testing.T) {
	a := testMat(4, 6, 26)
	rs := make([]float64, 4)
	RowSums(a, rs)
	for r := 0; r < 4; r++ {
		want := 0.0
		for c := 0; c < 6; c++ {
			want += a.At(r, c)
		}
		if !close1(rs[r], want) {
			t.Fatal("RowSums")
		}
	}
	cs := ColSums(a)
	for c := 0; c < 6; c++ {
		want := 0.0
		for r := 0; r < 4; r++ {
			want += a.At(r, c)
		}
		if !close1(cs[c], want) {
			t.Fatal("ColSums")
		}
	}
}

func TestShifts(t *testing.T) {
	a := testMat(4, 5, 27)
	out := NewMatrix(4, 5)
	ShiftCols(a, 2, out)
	for r := 0; r < 4; r++ {
		for c := 0; c < 5; c++ {
			if out.At(r, c) != a.At(r, (c+2)%5) {
				t.Fatal("ShiftCols")
			}
		}
	}
	ShiftCols(a, -1, out)
	for r := 0; r < 4; r++ {
		for c := 0; c < 5; c++ {
			if out.At(r, c) != a.At(r, (c+4)%5) {
				t.Fatal("ShiftCols negative")
			}
		}
	}
	ShiftRows(a, 1, out)
	for r := 0; r < 4; r++ {
		for c := 0; c < 5; c++ {
			if out.At(r, c) != a.At((r+1)%4, c) {
				t.Fatal("ShiftRows")
			}
		}
	}
	// In-place row shift must not corrupt.
	b := a.Clone()
	ShiftRows(b, 3, b)
	for r := 0; r < 4; r++ {
		for c := 0; c < 5; c++ {
			if b.At(r, c) != a.At((r+3)%4, c) {
				t.Fatal("ShiftRows in place")
			}
		}
	}
}

func TestGemv(t *testing.T) {
	a := testMat(5, 3, 28)
	x := randVec(3, 29)
	y := randVec(5, 30)
	want := make([]float64, 5)
	for r := 0; r < 5; r++ {
		s := 0.0
		for c := 0; c < 3; c++ {
			s += a.At(r, c) * x[c]
		}
		want[r] = 2*s + 0.5*y[r]
	}
	Gemv(2, a, x, 0.5, y)
	for r := range y {
		if !close1(y[r], want[r]) {
			t.Fatal("Gemv")
		}
	}
}

func TestGemm(t *testing.T) {
	a, b := testMat(4, 70, 31), testMat(70, 5, 32)
	c := NewMatrix(4, 5)
	want := NewMatrix(4, 5)
	for i := 0; i < 4; i++ {
		for j := 0; j < 5; j++ {
			s := 0.0
			for k := 0; k < 70; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			want.Set(i, j, 1.5*s)
		}
	}
	Gemm(1.5, a, b, 0, c)
	for i := range c.Data {
		if !close1(c.Data[i], want.Data[i]) {
			t.Fatalf("Gemm[%d] = %v want %v", i, c.Data[i], want.Data[i])
		}
	}
}
