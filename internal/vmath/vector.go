package vmath

import "math"

// The vector-math functions mirror MKL's vdXxx API: they take an explicit
// element count n and operate on the first n elements of their slice
// arguments. out may alias an input. All panic if a slice is shorter than
// n, like MKL's undefined behaviour but loud.

func checkLen(n int, vs ...[]float64) {
	for _, v := range vs {
		if len(v) < n {
			panic("vmath: slice shorter than n")
		}
	}
}

// binary applies f elementwise over a and b into out, with a 4x unrolled
// inner loop standing in for MKL's SIMD kernels.
func binary(n int, a, b, out []float64, f func(x, y float64) float64) {
	checkLen(n, a, b, out)
	parallelFor(n, func(lo, hi int) {
		i := lo
		for ; i+4 <= hi; i += 4 {
			out[i] = f(a[i], b[i])
			out[i+1] = f(a[i+1], b[i+1])
			out[i+2] = f(a[i+2], b[i+2])
			out[i+3] = f(a[i+3], b[i+3])
		}
		for ; i < hi; i++ {
			out[i] = f(a[i], b[i])
		}
	})
}

// unary applies f elementwise over a into out.
func unary(n int, a, out []float64, f func(x float64) float64) {
	checkLen(n, a, out)
	parallelFor(n, func(lo, hi int) {
		i := lo
		for ; i+4 <= hi; i += 4 {
			out[i] = f(a[i])
			out[i+1] = f(a[i+1])
			out[i+2] = f(a[i+2])
			out[i+3] = f(a[i+3])
		}
		for ; i < hi; i++ {
			out[i] = f(a[i])
		}
	})
}

// Add computes out = a + b elementwise (vdAdd).
func Add(n int, a, b, out []float64) {
	checkLen(n, a, b, out)
	parallelFor(n, func(lo, hi int) {
		i := lo
		for ; i+4 <= hi; i += 4 {
			out[i] = a[i] + b[i]
			out[i+1] = a[i+1] + b[i+1]
			out[i+2] = a[i+2] + b[i+2]
			out[i+3] = a[i+3] + b[i+3]
		}
		for ; i < hi; i++ {
			out[i] = a[i] + b[i]
		}
	})
}

// Sub computes out = a - b elementwise (vdSub).
func Sub(n int, a, b, out []float64) {
	checkLen(n, a, b, out)
	parallelFor(n, func(lo, hi int) {
		i := lo
		for ; i+4 <= hi; i += 4 {
			out[i] = a[i] - b[i]
			out[i+1] = a[i+1] - b[i+1]
			out[i+2] = a[i+2] - b[i+2]
			out[i+3] = a[i+3] - b[i+3]
		}
		for ; i < hi; i++ {
			out[i] = a[i] - b[i]
		}
	})
}

// Mul computes out = a * b elementwise (vdMul).
func Mul(n int, a, b, out []float64) {
	checkLen(n, a, b, out)
	parallelFor(n, func(lo, hi int) {
		i := lo
		for ; i+4 <= hi; i += 4 {
			out[i] = a[i] * b[i]
			out[i+1] = a[i+1] * b[i+1]
			out[i+2] = a[i+2] * b[i+2]
			out[i+3] = a[i+3] * b[i+3]
		}
		for ; i < hi; i++ {
			out[i] = a[i] * b[i]
		}
	})
}

// Div computes out = a / b elementwise (vdDiv).
func Div(n int, a, b, out []float64) {
	checkLen(n, a, b, out)
	parallelFor(n, func(lo, hi int) {
		i := lo
		for ; i+4 <= hi; i += 4 {
			out[i] = a[i] / b[i]
			out[i+1] = a[i+1] / b[i+1]
			out[i+2] = a[i+2] / b[i+2]
			out[i+3] = a[i+3] / b[i+3]
		}
		for ; i < hi; i++ {
			out[i] = a[i] / b[i]
		}
	})
}

// MaxV computes out = max(a, b) elementwise (vdFmax).
func MaxV(n int, a, b, out []float64) { binary(n, a, b, out, math.Max) }

// MinV computes out = min(a, b) elementwise (vdFmin).
func MinV(n int, a, b, out []float64) { binary(n, a, b, out, math.Min) }

// Pow computes out = a^b elementwise (vdPow).
func Pow(n int, a, b, out []float64) { binary(n, a, b, out, math.Pow) }

// Atan2 computes out = atan2(a, b) elementwise (vdAtan2).
func Atan2(n int, a, b, out []float64) { binary(n, a, b, out, math.Atan2) }

// Hypot computes out = sqrt(a^2+b^2) elementwise (vdHypot).
func Hypot(n int, a, b, out []float64) { binary(n, a, b, out, math.Hypot) }

// Sqrt computes out = sqrt(a) elementwise (vdSqrt).
func Sqrt(n int, a, out []float64) {
	checkLen(n, a, out)
	parallelFor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = math.Sqrt(a[i])
		}
	})
}

// InvSqrt computes out = 1/sqrt(a) elementwise (vdInvSqrt).
func InvSqrt(n int, a, out []float64) {
	unary(n, a, out, func(x float64) float64 { return 1 / math.Sqrt(x) })
}

// Inv computes out = 1/a elementwise (vdInv).
func Inv(n int, a, out []float64) { unary(n, a, out, func(x float64) float64 { return 1 / x }) }

// Sqr computes out = a*a elementwise (vdSqr).
func Sqr(n int, a, out []float64) { unary(n, a, out, func(x float64) float64 { return x * x }) }

// Exp computes out = e^a elementwise (vdExp).
func Exp(n int, a, out []float64) { unary(n, a, out, math.Exp) }

// Ln computes out = ln(a) elementwise (vdLn).
func Ln(n int, a, out []float64) { unary(n, a, out, math.Log) }

// Log1p computes out = ln(1+a) elementwise (vdLog1p).
func Log1p(n int, a, out []float64) { unary(n, a, out, math.Log1p) }

// Log2 computes out = log2(a) elementwise (vdLog2).
func Log2(n int, a, out []float64) { unary(n, a, out, math.Log2) }

// Erf computes the error function elementwise (vdErf).
func Erf(n int, a, out []float64) { unary(n, a, out, math.Erf) }

// Erfc computes the complementary error function elementwise (vdErfc).
func Erfc(n int, a, out []float64) { unary(n, a, out, math.Erfc) }

// CdfNorm computes the standard normal CDF elementwise (vdCdfNorm).
func CdfNorm(n int, a, out []float64) {
	unary(n, a, out, func(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) })
}

// Abs computes out = |a| elementwise (vdAbs).
func Abs(n int, a, out []float64) { unary(n, a, out, math.Abs) }

// Sin computes out = sin(a) elementwise (vdSin).
func Sin(n int, a, out []float64) { unary(n, a, out, math.Sin) }

// Cos computes out = cos(a) elementwise (vdCos).
func Cos(n int, a, out []float64) { unary(n, a, out, math.Cos) }

// Floor computes out = floor(a) elementwise (vdFloor).
func Floor(n int, a, out []float64) { unary(n, a, out, math.Floor) }

// Neg computes out = -a elementwise.
func Neg(n int, a, out []float64) { unary(n, a, out, func(x float64) float64 { return -x }) }

// The xC variants apply a scalar constant elementwise, as in Intel IPP's
// AddC family; the paper's workloads need scalar-vector forms.

// AddC computes out = a + c.
func AddC(n int, a []float64, c float64, out []float64) {
	unary(n, a, out, func(x float64) float64 { return x + c })
}

// SubC computes out = a - c.
func SubC(n int, a []float64, c float64, out []float64) {
	unary(n, a, out, func(x float64) float64 { return x - c })
}

// SubCRev computes out = c - a.
func SubCRev(n int, a []float64, c float64, out []float64) {
	unary(n, a, out, func(x float64) float64 { return c - x })
}

// MulC computes out = a * c.
func MulC(n int, a []float64, c float64, out []float64) {
	unary(n, a, out, func(x float64) float64 { return x * c })
}

// DivC computes out = a / c.
func DivC(n int, a []float64, c float64, out []float64) {
	unary(n, a, out, func(x float64) float64 { return x / c })
}

// DivCRev computes out = c / a.
func DivCRev(n int, a []float64, c float64, out []float64) {
	unary(n, a, out, func(x float64) float64 { return c / x })
}

// CopyV copies the first n elements of a into out (cblas_dcopy).
func CopyV(n int, a, out []float64) {
	checkLen(n, a, out)
	copy(out[:n], a[:n])
}

// Fill sets the first n elements of out to c.
func Fill(n int, c float64, out []float64) {
	checkLen(n, out)
	parallelFor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = c
		}
	})
}

// Select computes out[i] = ifTrue[i] when mask[i] != 0, else ifFalse[i]; a
// vectorized ternary used by branch-free numeric code.
func Select(n int, mask, ifTrue, ifFalse, out []float64) {
	checkLen(n, mask, ifTrue, ifFalse, out)
	parallelFor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if mask[i] != 0 {
				out[i] = ifTrue[i]
			} else {
				out[i] = ifFalse[i]
			}
		}
	})
}
