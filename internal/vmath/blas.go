package vmath

import "math"

// L1 BLAS.

// Scal computes x = alpha * x (cblas_dscal).
func Scal(n int, alpha float64, x []float64) {
	checkLen(n, x)
	parallelFor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] *= alpha
		}
	})
}

// Axpy computes y = alpha*x + y (cblas_daxpy).
func Axpy(n int, alpha float64, x, y []float64) {
	checkLen(n, x, y)
	parallelFor(n, func(lo, hi int) {
		i := lo
		for ; i+4 <= hi; i += 4 {
			y[i] += alpha * x[i]
			y[i+1] += alpha * x[i+1]
			y[i+2] += alpha * x[i+2]
			y[i+3] += alpha * x[i+3]
		}
		for ; i < hi; i++ {
			y[i] += alpha * x[i]
		}
	})
}

// Dot computes the inner product of x and y (cblas_ddot).
func Dot(n int, x, y []float64) float64 {
	checkLen(n, x, y)
	return parallelReduce(n, func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += x[i] * y[i]
		}
		return s
	}, func(a, b float64) float64 { return a + b })
}

// Asum computes the sum of absolute values (cblas_dasum).
func Asum(n int, x []float64) float64 {
	checkLen(n, x)
	return parallelReduce(n, func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += math.Abs(x[i])
		}
		return s
	}, func(a, b float64) float64 { return a + b })
}

// Sum computes the plain sum of the first n elements.
func Sum(n int, x []float64) float64 {
	checkLen(n, x)
	return parallelReduce(n, func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += x[i]
		}
		return s
	}, func(a, b float64) float64 { return a + b })
}

// Nrm2 computes the Euclidean norm (cblas_dnrm2).
func Nrm2(n int, x []float64) float64 {
	checkLen(n, x)
	return math.Sqrt(parallelReduce(n, func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += x[i] * x[i]
		}
		return s
	}, func(a, b float64) float64 { return a + b }))
}

// MaxReduce returns the maximum of the first n elements.
func MaxReduce(n int, x []float64) float64 {
	checkLen(n, x)
	if n == 0 {
		return math.Inf(-1)
	}
	return parallelReduce(n, func(lo, hi int) float64 {
		m := math.Inf(-1)
		for i := lo; i < hi; i++ {
			if x[i] > m {
				m = x[i]
			}
		}
		return m
	}, math.Max)
}

// MinReduce returns the minimum of the first n elements.
func MinReduce(n int, x []float64) float64 {
	checkLen(n, x)
	if n == 0 {
		return math.Inf(1)
	}
	return parallelReduce(n, func(lo, hi int) float64 {
		m := math.Inf(1)
		for i := lo; i < hi; i++ {
			if x[i] < m {
				m = x[i]
			}
		}
		return m
	}, math.Min)
}
