package nlp

import (
	"strings"
	"testing"
)

func TestTokenize(t *testing.T) {
	toks := Tokenize("The movie, surprisingly, was great!")
	want := []string{"The", "movie", ",", "surprisingly", ",", "was", "great", "!"}
	if len(toks) != len(want) {
		t.Fatalf("tokens %v", toks)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Fatalf("token %d = %q want %q", i, toks[i], want[i])
		}
	}
	if len(Tokenize("")) != 0 {
		t.Fatal("empty text")
	}
	if got := Tokenize("don't stop-motion"); len(got) != 2 {
		t.Fatalf("apostrophes and hyphens stay inside words: %v", got)
	}
}

func TestSplitSentences(t *testing.T) {
	s := SplitSentences("First one. Second one! Third? trailing")
	if len(s) != 4 || s[0] != "First one." || s[3] != "trailing" {
		t.Fatalf("sentences: %v", s)
	}
	if len(SplitSentences("")) != 0 {
		t.Fatal("empty")
	}
}

func TestTaggerRules(t *testing.T) {
	tg := NewTagger()
	doc := tg.Tag("The quick dog quickly jumped over 42 fences in London !")
	pos := map[string]string{}
	for _, tok := range doc.Tokens {
		pos[tok.Text] = tok.POS
	}
	checks := map[string]string{
		"The":     "DET",
		"quickly": "ADV",
		"42":      "NUM",
		"in":      "ADP",
		"London":  "PROPN",
		"!":       "PUNCT",
		"dog":     "NOUN",
	}
	for w, want := range checks {
		if pos[w] != want {
			t.Errorf("%q tagged %s, want %s", w, pos[w], want)
		}
	}
}

func TestLemma(t *testing.T) {
	tg := NewTagger()
	doc := tg.Tag("movies running jumped cities")
	lemmas := []string{"movy", "runn", "jump", "city"}
	_ = lemmas
	if doc.Tokens[3].Lemma != "city" {
		t.Errorf("cities -> %q", doc.Tokens[3].Lemma)
	}
	if doc.Tokens[1].Lemma != "runn" {
		t.Errorf("running -> %q (crude stemmer)", doc.Tokens[1].Lemma)
	}
}

func TestPipeAndMinibatch(t *testing.T) {
	tg := NewTagger()
	corpus := []string{"A good film.", "They hated it!", "Quite boring overall."}
	docs := tg.Pipe(corpus)
	if len(docs) != 3 || len(docs[0].Tokens) == 0 {
		t.Fatal("Pipe")
	}
	batches := Minibatch(corpus, 2)
	if len(batches) != 2 || len(batches[0]) != 2 || len(batches[1]) != 1 {
		t.Fatalf("Minibatch: %v", batches)
	}
	if len(Minibatch(corpus, 0)) != 3 {
		t.Fatal("Minibatch clamps size to 1")
	}
}

// TestPipeBatchingEquivalence: tagging minibatches and concatenating equals
// tagging the whole corpus — the condition that makes the corpus split type
// sound.
func TestPipeBatchingEquivalence(t *testing.T) {
	tg := NewTagger()
	corpus := make([]string, 50)
	for i := range corpus {
		corpus[i] = strings.Repeat("The actors were surprisingly good. ", i%5+1)
	}
	whole := tg.Pipe(corpus)
	var parts []*Doc
	for _, b := range Minibatch(corpus, 7) {
		parts = append(parts, tg.Pipe(b)...)
	}
	if len(parts) != len(whole) {
		t.Fatal("length mismatch")
	}
	for i := range whole {
		if len(whole[i].Tokens) != len(parts[i].Tokens) {
			t.Fatalf("doc %d token count", i)
		}
		for j := range whole[i].Tokens {
			if whole[i].Tokens[j] != parts[i].Tokens[j] {
				t.Fatalf("doc %d token %d differs", i, j)
			}
		}
	}
}

func TestPOSCountsAndMerge(t *testing.T) {
	tg := NewTagger()
	docs := tg.Pipe([]string{"The dog barked.", "A cat slept."})
	whole := POSCounts(docs)
	a := POSCounts(docs[:1])
	b := POSCounts(docs[1:])
	merged := MergeCounts(a, b)
	for k, v := range whole {
		if merged[k] != v {
			t.Fatalf("POS %s: %d vs %d", k, merged[k], v)
		}
	}
	if whole["DET"] != 2 {
		t.Errorf("DET count = %d", whole["DET"])
	}
	if VocabSize(docs) == 0 {
		t.Error("VocabSize")
	}
}
