// Package nlp is the repository's stand-in for spaCy: a tokenizer, sentence
// splitter, lexicon + suffix-rule part-of-speech tagger, and feature
// extraction over documents. Tagging one document is independent of every
// other document, which is what makes the corpus minibatch split type in
// internal/annotations/nlpsa sound.
package nlp

import (
	"strings"
	"unicode"
)

// Token is one tagged token.
type Token struct {
	Text  string
	Lemma string
	POS   string
}

// Doc is a processed document.
type Doc struct {
	Tokens []Token
}

// Tokenize splits text into word and punctuation tokens.
func Tokenize(text string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range text {
		switch {
		case unicode.IsSpace(r):
			flush()
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '\'' || r == '-':
			cur.WriteRune(r)
		default:
			flush()
			out = append(out, string(r))
		}
	}
	flush()
	return out
}

// SplitSentences splits text at sentence-final punctuation.
func SplitSentences(text string) []string {
	var out []string
	start := 0
	for i, r := range text {
		if r == '.' || r == '!' || r == '?' {
			s := strings.TrimSpace(text[start : i+1])
			if s != "" {
				out = append(out, s)
			}
			start = i + 1
		}
	}
	if s := strings.TrimSpace(text[start:]); s != "" {
		out = append(out, s)
	}
	return out
}

// Tagger assigns part-of-speech tags using a lexicon plus suffix and
// context rules, in the spirit of a rule-based shallow tagger.
type Tagger struct {
	lexicon map[string]string
}

// NewTagger builds a tagger with a built-in closed-class lexicon.
func NewTagger() *Tagger {
	lex := map[string]string{}
	add := func(pos string, words ...string) {
		for _, w := range words {
			lex[w] = pos
		}
	}
	add("DET", "the", "a", "an", "this", "that", "these", "those", "my", "your", "his", "its", "our", "their")
	add("PRON", "i", "you", "he", "she", "it", "we", "they", "me", "him", "her", "us", "them", "who", "what")
	add("ADP", "in", "on", "at", "by", "for", "with", "about", "against", "between", "into", "through", "of", "to", "from")
	add("CCONJ", "and", "or", "but", "nor", "so", "yet")
	add("SCONJ", "because", "although", "while", "if", "since", "unless")
	add("AUX", "is", "are", "was", "were", "be", "been", "being", "am", "do", "does", "did", "have", "has", "had", "will", "would", "can", "could", "should", "may", "might", "must")
	add("PART", "not", "n't")
	add("ADV", "very", "really", "quite", "too", "also", "never", "always", "often", "again", "here", "there", "now", "then")
	add("NUM", "one", "two", "three", "four", "five", "six", "seven", "eight", "nine", "ten", "zero")
	add("INTJ", "oh", "wow", "hey", "yes", "no", "please")
	return &Tagger{lexicon: lex}
}

func isAllDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if !unicode.IsDigit(r) {
			return false
		}
	}
	return true
}

func isPunct(s string) bool {
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			return false
		}
	}
	return s != ""
}

// tagWord assigns a POS to one token given the previous tag.
func (t *Tagger) tagWord(w, prevPOS string) string {
	lower := strings.ToLower(w)
	if pos, ok := t.lexicon[lower]; ok {
		return pos
	}
	switch {
	case isPunct(w):
		return "PUNCT"
	case isAllDigits(w):
		return "NUM"
	case w != lower && prevPOS != "" && prevPOS != "PUNCT":
		// Capitalized mid-sentence: proper noun.
		return "PROPN"
	case strings.HasSuffix(lower, "ly"):
		return "ADV"
	case strings.HasSuffix(lower, "ing") || strings.HasSuffix(lower, "ed"):
		if prevPOS == "DET" || prevPOS == "ADJ" {
			return "NOUN" // "the building", "a wicked ending"
		}
		return "VERB"
	case strings.HasSuffix(lower, "ous") || strings.HasSuffix(lower, "ful") ||
		strings.HasSuffix(lower, "ible") || strings.HasSuffix(lower, "able") ||
		strings.HasSuffix(lower, "ive") || strings.HasSuffix(lower, "al"):
		return "ADJ"
	case strings.HasSuffix(lower, "tion") || strings.HasSuffix(lower, "ment") ||
		strings.HasSuffix(lower, "ness") || strings.HasSuffix(lower, "ity"):
		return "NOUN"
	case prevPOS == "PRON" || prevPOS == "AUX":
		return "VERB" // "they love", "is running"
	default:
		return "NOUN"
	}
}

// lemma produces a crude lemma: lowercase with common inflections stripped.
func lemma(w string) string {
	l := strings.ToLower(w)
	switch {
	case strings.HasSuffix(l, "ies") && len(l) > 4:
		return l[:len(l)-3] + "y"
	case strings.HasSuffix(l, "ing") && len(l) > 5:
		return l[:len(l)-3]
	case strings.HasSuffix(l, "ed") && len(l) > 4:
		return l[:len(l)-2]
	case strings.HasSuffix(l, "s") && !strings.HasSuffix(l, "ss") && len(l) > 3:
		return l[:len(l)-1]
	}
	return l
}

// Tag processes one document: tokenize, tag, lemmatize.
func (t *Tagger) Tag(text string) *Doc {
	words := Tokenize(text)
	doc := &Doc{Tokens: make([]Token, len(words))}
	prev := ""
	for i, w := range words {
		pos := t.tagWord(w, prev)
		doc.Tokens[i] = Token{Text: w, Lemma: lemma(w), POS: pos}
		prev = pos
	}
	return doc
}

// Pipe processes a batch of documents, like spaCy's nlp.pipe.
func (t *Tagger) Pipe(texts []string) []*Doc {
	out := make([]*Doc, len(texts))
	for i, txt := range texts {
		out[i] = t.Tag(txt)
	}
	return out
}

// Minibatch splits a corpus into batches of up to size documents, spaCy's
// util.minibatch — the primitive the paper's spaCy split type is built on.
func Minibatch(corpus []string, size int) [][]string {
	if size <= 0 {
		size = 1
	}
	var out [][]string
	for lo := 0; lo < len(corpus); lo += size {
		hi := lo + size
		if hi > len(corpus) {
			hi = len(corpus)
		}
		out = append(out, corpus[lo:hi])
	}
	return out
}

// POSCounts aggregates part-of-speech histogram features over docs.
func POSCounts(docs []*Doc) map[string]int64 {
	out := map[string]int64{}
	for _, d := range docs {
		for _, tok := range d.Tokens {
			out[tok.POS]++
		}
	}
	return out
}

// MergeCounts adds histogram b into a and returns a.
func MergeCounts(a, b map[string]int64) map[string]int64 {
	for k, v := range b {
		a[k] += v
	}
	return a
}

// VocabSize returns the number of distinct lemmas in docs.
func VocabSize(docs []*Doc) int {
	seen := map[string]bool{}
	for _, d := range docs {
		for _, tok := range d.Tokens {
			seen[tok.Lemma] = true
		}
	}
	return len(seen)
}
