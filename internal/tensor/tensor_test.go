package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randArr(seed int64, shape ...int) *NDArray {
	a := New(shape...)
	rng := rand.New(rand.NewSource(seed))
	for i := range a.Data {
		a.Data[i] = rng.Float64()*4 + 0.25
	}
	return a
}

func TestConstructionAndIndexing(t *testing.T) {
	a := New(3, 4)
	if a.Size() != 12 || a.NDim() != 2 || a.Rows() != 3 || a.RowSize() != 4 {
		t.Fatal("shape accessors")
	}
	a.SetAt(7, 1, 2)
	if a.At(1, 2) != 7 || a.Data[6] != 7 {
		t.Fatal("At/SetAt row-major layout")
	}
	b := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if b.At(1, 0) != 4 {
		t.Fatal("FromSlice")
	}
	f := Full(3, 2, 2)
	for _, x := range f.Data {
		if x != 3 {
			t.Fatal("Full")
		}
	}
	c := b.Clone()
	c.SetAt(99, 0, 0)
	if b.At(0, 0) == 99 {
		t.Fatal("Clone aliases")
	}
	r := b.Reshape(3, 2)
	if r.At(2, 1) != 6 {
		t.Fatal("Reshape")
	}
	r.Data[0] = 42
	if b.Data[0] != 42 {
		t.Fatal("Reshape should share storage")
	}
}

func TestRowSliceConcat(t *testing.T) {
	a := randArr(1, 6, 3)
	s1, s2 := a.RowSlice(0, 2), a.RowSlice(2, 6)
	back := Concat(s1, s2)
	if back.Rows() != 6 {
		t.Fatal("Concat rows")
	}
	for i := range a.Data {
		if back.Data[i] != a.Data[i] {
			t.Fatal("slice+concat should round trip")
		}
	}
	s1.Data[0] = -1
	if a.Data[0] != -1 {
		t.Fatal("RowSlice must be a view")
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: want panic", name)
			}
		}()
		f()
	}
	mustPanic("negative dim", func() { New(-1) })
	mustPanic("FromSlice size", func() { FromSlice(make([]float64, 3), 2, 2) })
	mustPanic("bad index rank", func() { New(2, 2).At(1) })
	mustPanic("index range", func() { New(2, 2).At(2, 0) })
	mustPanic("reshape size", func() { New(4).Reshape(3) })
	mustPanic("RowSlice range", func() { New(2, 2).RowSlice(0, 3) })
	mustPanic("shape mismatch", func() { Add(New(2), New(3)) })
	mustPanic("SumAxis0 rank", func() { SumAxis0(New(4)) })
	mustPanic("Roll axis", func() { Roll(New(2, 2), 1, 2) })
	mustPanic("OuterSub rank", func() { OuterSub(New(2, 2), New(2)) })
}

func TestElementwise(t *testing.T) {
	a, b := randArr(2, 5, 7), randArr(3, 5, 7)
	checks := []struct {
		name string
		got  *NDArray
		ref  func(x, y float64) float64
	}{
		{"Add", Add(a, b), func(x, y float64) float64 { return x + y }},
		{"Sub", Sub(a, b), func(x, y float64) float64 { return x - y }},
		{"Mul", Mul(a, b), func(x, y float64) float64 { return x * y }},
		{"Div", Div(a, b), func(x, y float64) float64 { return x / y }},
		{"Maximum", Maximum(a, b), math.Max},
		{"Minimum", Minimum(a, b), math.Min},
		{"Pow", Pow(a, b), math.Pow},
		{"Atan2", Atan2(a, b), math.Atan2},
	}
	for _, c := range checks {
		for i := range a.Data {
			if got, want := c.got.Data[i], c.ref(a.Data[i], b.Data[i]); math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
				t.Fatalf("%s[%d] = %v want %v", c.name, i, got, want)
			}
		}
	}
	uchecks := []struct {
		name string
		got  *NDArray
		ref  func(x float64) float64
	}{
		{"AddS", AddS(a, 2), func(x float64) float64 { return x + 2 }},
		{"SubS", SubS(a, 2), func(x float64) float64 { return x - 2 }},
		{"RSubS", RSubS(a, 2), func(x float64) float64 { return 2 - x }},
		{"MulS", MulS(a, 2), func(x float64) float64 { return x * 2 }},
		{"DivS", DivS(a, 2), func(x float64) float64 { return x / 2 }},
		{"RDivS", RDivS(a, 2), func(x float64) float64 { return 2 / x }},
		{"PowS", PowS(a, 2), func(x float64) float64 { return x * x }},
		{"Sqrt", Sqrt(a), math.Sqrt},
		{"Exp", Exp(a), math.Exp},
		{"Log", Log(a), math.Log},
		{"Log1p", Log1p(a), math.Log1p},
		{"Log2", Log2(a), math.Log2},
		{"Erf", Erf(a), math.Erf},
		{"Abs", Abs(a), math.Abs},
		{"Neg", Neg(a), func(x float64) float64 { return -x }},
		{"Sin", Sin(a), math.Sin},
		{"Cos", Cos(a), math.Cos},
		{"Square", Square(a), func(x float64) float64 { return x * x }},
		{"Invert", Invert(a), func(x float64) float64 { return 1 / x }},
	}
	for _, c := range uchecks {
		for i := range a.Data {
			if got, want := c.got.Data[i], c.ref(a.Data[i]); math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
				t.Fatalf("%s[%d] = %v want %v", c.name, i, got, want)
			}
		}
	}
}

func TestComparisonsAndWhere(t *testing.T) {
	a, b := randArr(4, 40), randArr(5, 40)
	g, l := Greater(a, b), Less(a, b)
	for i := range a.Data {
		if (g.Data[i] == 1) != (a.Data[i] > b.Data[i]) {
			t.Fatal("Greater")
		}
		if (l.Data[i] == 1) != (a.Data[i] < b.Data[i]) {
			t.Fatal("Less")
		}
	}
	gs, ls := GreaterS(a, 2), LessS(a, 2)
	for i := range a.Data {
		if (gs.Data[i] == 1) != (a.Data[i] > 2) || (ls.Data[i] == 1) != (a.Data[i] < 2) {
			t.Fatal("GreaterS/LessS")
		}
	}
	w := Where(g, a, b)
	for i := range w.Data {
		want := b.Data[i]
		if a.Data[i] > b.Data[i] {
			want = a.Data[i]
		}
		if w.Data[i] != want {
			t.Fatal("Where")
		}
	}
}

func TestReductions(t *testing.T) {
	a := randArr(6, 9, 4)
	var sum float64
	for _, x := range a.Data {
		sum += x
	}
	if math.Abs(Sum(a)-sum) > 1e-9 {
		t.Fatal("Sum")
	}
	if math.Abs(Mean(a)-sum/36) > 1e-9 {
		t.Fatal("Mean")
	}
	if Max(a) != slowMax(a.Data) || Min(a) != slowMin(a.Data) {
		t.Fatal("Max/Min")
	}
	s0 := SumAxis0(a)
	for c := 0; c < 4; c++ {
		want := 0.0
		for r := 0; r < 9; r++ {
			want += a.At(r, c)
		}
		if math.Abs(s0.Data[c]-want) > 1e-9 {
			t.Fatal("SumAxis0")
		}
	}
	s1 := SumAxis1(a)
	for r := 0; r < 9; r++ {
		want := 0.0
		for c := 0; c < 4; c++ {
			want += a.At(r, c)
		}
		if math.Abs(s1.Data[r]-want) > 1e-9 {
			t.Fatal("SumAxis1")
		}
	}
	if math.IsNaN(Mean(New(0))) == false {
		t.Fatal("Mean of empty should be NaN")
	}
}

func slowMax(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		m = math.Max(m, x)
	}
	return m
}

func slowMin(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		m = math.Min(m, x)
	}
	return m
}

func TestRoll(t *testing.T) {
	a := randArr(7, 4, 5)
	r0 := Roll(a, 1, 0)
	for r := 0; r < 4; r++ {
		for c := 0; c < 5; c++ {
			if r0.At((r+1)%4, c) != a.At(r, c) {
				t.Fatal("Roll axis 0")
			}
		}
	}
	r1 := Roll(a, 2, 1)
	for r := 0; r < 4; r++ {
		for c := 0; c < 5; c++ {
			if r1.At(r, (c+2)%5) != a.At(r, c) {
				t.Fatal("Roll axis 1")
			}
		}
	}
	rn := Roll(a, -1, 0)
	for r := 0; r < 4; r++ {
		for c := 0; c < 5; c++ {
			if rn.At((r+3)%4, c) != a.At(r, c) {
				t.Fatal("Roll negative")
			}
		}
	}
}

func TestOuterSubDot(t *testing.T) {
	x, y := randArr(8, 5), randArr(9, 7)
	o := OuterSub(x, y)
	for i := 0; i < 5; i++ {
		for j := 0; j < 7; j++ {
			if o.At(i, j) != x.Data[i]-y.Data[j] {
				t.Fatal("OuterSub")
			}
		}
	}
	a, b := randArr(10, 20), randArr(11, 20)
	want := 0.0
	for i := range a.Data {
		want += a.Data[i] * b.Data[i]
	}
	if math.Abs(Dot(a, b)-want) > 1e-9 {
		t.Fatal("Dot")
	}
}

// TestQuickRollRoundTrip: rolling forward then back is the identity.
func TestQuickRollRoundTrip(t *testing.T) {
	f := func(seed int64, k int8, axis bool) bool {
		a := randArr(seed, 6, 8)
		ax := 0
		if axis {
			ax = 1
		}
		back := Roll(Roll(a, int(k), ax), -int(k), ax)
		for i := range a.Data {
			if back.Data[i] != a.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSumLinear: Sum(a+b) == Sum(a) + Sum(b).
func TestQuickSumLinear(t *testing.T) {
	f := func(s1, s2 int64) bool {
		a, b := randArr(s1, 30), randArr(s2, 30)
		return math.Abs(Sum(Add(a, b))-(Sum(a)+Sum(b))) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
