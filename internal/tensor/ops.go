package tensor

import "math"

// Elementwise binary operations allocate and return a new array, NumPy
// style. Kernels are single threaded, like NumPy's core loops.

func binaryOp(a, b *NDArray, f func(x, y float64) float64) *NDArray {
	sameShape(a, b)
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = f(a.Data[i], b.Data[i])
	}
	return out
}

func unaryOp(a *NDArray, f func(x float64) float64) *NDArray {
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = f(a.Data[i])
	}
	return out
}

// Add returns a + b.
func Add(a, b *NDArray) *NDArray { return binaryOp(a, b, func(x, y float64) float64 { return x + y }) }

// Sub returns a - b.
func Sub(a, b *NDArray) *NDArray { return binaryOp(a, b, func(x, y float64) float64 { return x - y }) }

// Mul returns a * b.
func Mul(a, b *NDArray) *NDArray { return binaryOp(a, b, func(x, y float64) float64 { return x * y }) }

// Div returns a / b.
func Div(a, b *NDArray) *NDArray { return binaryOp(a, b, func(x, y float64) float64 { return x / y }) }

// Maximum returns max(a, b) elementwise.
func Maximum(a, b *NDArray) *NDArray { return binaryOp(a, b, math.Max) }

// Minimum returns min(a, b) elementwise.
func Minimum(a, b *NDArray) *NDArray { return binaryOp(a, b, math.Min) }

// Pow returns a^b elementwise.
func Pow(a, b *NDArray) *NDArray { return binaryOp(a, b, math.Pow) }

// Atan2 returns atan2(a, b) elementwise.
func Atan2(a, b *NDArray) *NDArray { return binaryOp(a, b, math.Atan2) }

// AddS returns a + c.
func AddS(a *NDArray, c float64) *NDArray {
	return unaryOp(a, func(x float64) float64 { return x + c })
}

// SubS returns a - c.
func SubS(a *NDArray, c float64) *NDArray {
	return unaryOp(a, func(x float64) float64 { return x - c })
}

// RSubS returns c - a.
func RSubS(a *NDArray, c float64) *NDArray {
	return unaryOp(a, func(x float64) float64 { return c - x })
}

// MulS returns a * c.
func MulS(a *NDArray, c float64) *NDArray {
	return unaryOp(a, func(x float64) float64 { return x * c })
}

// DivS returns a / c.
func DivS(a *NDArray, c float64) *NDArray {
	return unaryOp(a, func(x float64) float64 { return x / c })
}

// RDivS returns c / a.
func RDivS(a *NDArray, c float64) *NDArray {
	return unaryOp(a, func(x float64) float64 { return c / x })
}

// PowS returns a^c elementwise.
func PowS(a *NDArray, c float64) *NDArray {
	return unaryOp(a, func(x float64) float64 { return math.Pow(x, c) })
}

// Sqrt returns sqrt(a).
func Sqrt(a *NDArray) *NDArray { return unaryOp(a, math.Sqrt) }

// Exp returns e^a.
func Exp(a *NDArray) *NDArray { return unaryOp(a, math.Exp) }

// Log returns ln(a).
func Log(a *NDArray) *NDArray { return unaryOp(a, math.Log) }

// Log1p returns ln(1+a).
func Log1p(a *NDArray) *NDArray { return unaryOp(a, math.Log1p) }

// Log2 returns log2(a).
func Log2(a *NDArray) *NDArray { return unaryOp(a, math.Log2) }

// Erf returns erf(a).
func Erf(a *NDArray) *NDArray { return unaryOp(a, math.Erf) }

// Abs returns |a|.
func Abs(a *NDArray) *NDArray { return unaryOp(a, math.Abs) }

// Neg returns -a.
func Neg(a *NDArray) *NDArray { return unaryOp(a, func(x float64) float64 { return -x }) }

// Sin returns sin(a).
func Sin(a *NDArray) *NDArray { return unaryOp(a, math.Sin) }

// Cos returns cos(a).
func Cos(a *NDArray) *NDArray { return unaryOp(a, math.Cos) }

// Square returns a*a.
func Square(a *NDArray) *NDArray { return unaryOp(a, func(x float64) float64 { return x * x }) }

// Invert returns 1/a.
func Invert(a *NDArray) *NDArray { return unaryOp(a, func(x float64) float64 { return 1 / x }) }

// Comparison operators return 0/1 masks, like NumPy boolean arrays.

// Greater returns a > b as a 0/1 mask.
func Greater(a, b *NDArray) *NDArray {
	return binaryOp(a, b, func(x, y float64) float64 {
		if x > y {
			return 1
		}
		return 0
	})
}

// Less returns a < b as a 0/1 mask.
func Less(a, b *NDArray) *NDArray {
	return binaryOp(a, b, func(x, y float64) float64 {
		if x < y {
			return 1
		}
		return 0
	})
}

// GreaterS returns a > c as a 0/1 mask.
func GreaterS(a *NDArray, c float64) *NDArray {
	return unaryOp(a, func(x float64) float64 {
		if x > c {
			return 1
		}
		return 0
	})
}

// LessS returns a < c as a 0/1 mask.
func LessS(a *NDArray, c float64) *NDArray {
	return unaryOp(a, func(x float64) float64 {
		if x < c {
			return 1
		}
		return 0
	})
}

// Where returns mask != 0 ? a : b elementwise.
func Where(mask, a, b *NDArray) *NDArray {
	sameShape(mask, a)
	sameShape(mask, b)
	out := New(mask.Shape...)
	for i := range mask.Data {
		if mask.Data[i] != 0 {
			out.Data[i] = a.Data[i]
		} else {
			out.Data[i] = b.Data[i]
		}
	}
	return out
}

// Sum returns the sum of all elements.
func Sum(a *NDArray) float64 {
	s := 0.0
	for _, x := range a.Data {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func Mean(a *NDArray) float64 {
	if len(a.Data) == 0 {
		return math.NaN()
	}
	return Sum(a) / float64(len(a.Data))
}

// Max returns the maximum element.
func Max(a *NDArray) float64 {
	m := math.Inf(-1)
	for _, x := range a.Data {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum element.
func Min(a *NDArray) float64 {
	m := math.Inf(1)
	for _, x := range a.Data {
		if x < m {
			m = x
		}
	}
	return m
}

// SumAxis0 reduces a 2-d array over axis 0, returning per-column sums.
func SumAxis0(a *NDArray) *NDArray {
	if len(a.Shape) != 2 {
		panic("tensor: SumAxis0 needs a 2-d array")
	}
	rows, cols := a.Shape[0], a.Shape[1]
	out := New(cols)
	for r := 0; r < rows; r++ {
		row := a.Data[r*cols : (r+1)*cols]
		for c, x := range row {
			out.Data[c] += x
		}
	}
	return out
}

// SumAxis1 reduces a 2-d array over axis 1, returning per-row sums. Each
// output element depends only on its own row, so the operation splits by
// rows.
func SumAxis1(a *NDArray) *NDArray {
	if len(a.Shape) != 2 {
		panic("tensor: SumAxis1 needs a 2-d array")
	}
	rows, cols := a.Shape[0], a.Shape[1]
	out := New(rows)
	for r := 0; r < rows; r++ {
		s := 0.0
		for _, x := range a.Data[r*cols : (r+1)*cols] {
			s += x
		}
		out.Data[r] = s
	}
	return out
}

// Roll circularly shifts a 2-d array by k along the given axis (numpy.roll
// semantics: element i moves to i+k).
func Roll(a *NDArray, k, axis int) *NDArray {
	if len(a.Shape) != 2 {
		panic("tensor: Roll needs a 2-d array")
	}
	rows, cols := a.Shape[0], a.Shape[1]
	out := New(rows, cols)
	if rows == 0 || cols == 0 {
		return out
	}
	switch axis {
	case 0:
		k = ((k % rows) + rows) % rows
		for r := 0; r < rows; r++ {
			copy(out.Data[((r+k)%rows)*cols:((r+k)%rows+1)*cols], a.Data[r*cols:(r+1)*cols])
		}
	case 1:
		k = ((k % cols) + cols) % cols
		for r := 0; r < rows; r++ {
			row := a.Data[r*cols : (r+1)*cols]
			orow := out.Data[r*cols : (r+1)*cols]
			copy(orow[k:], row[:cols-k])
			copy(orow[:k], row[cols-k:])
		}
	default:
		panic("tensor: Roll axis must be 0 or 1")
	}
	return out
}

// OuterSub returns the matrix m[i][j] = x[i] - y[j] for 1-d x and y.
func OuterSub(x, y *NDArray) *NDArray {
	if len(x.Shape) != 1 || len(y.Shape) != 1 {
		panic("tensor: OuterSub needs 1-d arrays")
	}
	n, m := x.Shape[0], y.Shape[0]
	out := New(n, m)
	for i := 0; i < n; i++ {
		row := out.Data[i*m : (i+1)*m]
		xi := x.Data[i]
		for j := range row {
			row[j] = xi - y.Data[j]
		}
	}
	return out
}

// Dot returns the inner product of two 1-d arrays.
func Dot(x, y *NDArray) float64 {
	sameShape(x, y)
	s := 0.0
	for i := range x.Data {
		s += x.Data[i] * y.Data[i]
	}
	return s
}
