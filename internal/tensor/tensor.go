// Package tensor is the repository's stand-in for NumPy: an n-dimensional
// dense float64 array library with single-threaded C-style kernels.
// Operations allocate and return new arrays (NumPy semantics), which is
// exactly the allocation behaviour that makes un-fused pipelines memory
// bound. The library knows nothing about Mozart; its split annotations live
// in internal/annotations/tensorsa.
package tensor

import "fmt"

// NDArray is a dense row-major n-dimensional array.
type NDArray struct {
	Shape []int
	Data  []float64
}

// New allocates a zeroed array with the given shape.
func New(shape ...int) *NDArray {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic("tensor: negative dimension")
		}
		n *= d
	}
	return &NDArray{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// FromSlice wraps data in an array with the given shape.
func FromSlice(data []float64, shape ...int) *NDArray {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: FromSlice: %d elements for shape %v", len(data), shape))
	}
	return &NDArray{Shape: append([]int(nil), shape...), Data: data}
}

// Full allocates an array filled with v.
func Full(v float64, shape ...int) *NDArray {
	a := New(shape...)
	for i := range a.Data {
		a.Data[i] = v
	}
	return a
}

// Size returns the total number of elements.
func (a *NDArray) Size() int { return len(a.Data) }

// NDim returns the number of dimensions.
func (a *NDArray) NDim() int { return len(a.Shape) }

// Rows returns the length of axis 0 (1 for scalars).
func (a *NDArray) Rows() int {
	if len(a.Shape) == 0 {
		return 1
	}
	return a.Shape[0]
}

// RowSize returns the number of elements per axis-0 index.
func (a *NDArray) RowSize() int {
	n := 1
	for _, d := range a.Shape[1:] {
		n *= d
	}
	return n
}

// At returns the element at the given indices.
func (a *NDArray) At(idx ...int) float64 { return a.Data[a.offset(idx)] }

// SetAt assigns the element at the given indices.
func (a *NDArray) SetAt(v float64, idx ...int) { a.Data[a.offset(idx)] = v }

func (a *NDArray) offset(idx []int) int {
	if len(idx) != len(a.Shape) {
		panic(fmt.Sprintf("tensor: %d indices for %d-d array", len(idx), len(a.Shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= a.Shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range for axis %d (size %d)", x, i, a.Shape[i]))
		}
		off = off*a.Shape[i] + x
	}
	return off
}

// Clone deep copies the array.
func (a *NDArray) Clone() *NDArray {
	return &NDArray{Shape: append([]int(nil), a.Shape...), Data: append([]float64(nil), a.Data...)}
}

// Reshape returns a view with a new shape of equal size.
func (a *NDArray) Reshape(shape ...int) *NDArray {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(a.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", a.Shape, shape))
	}
	return &NDArray{Shape: append([]int(nil), shape...), Data: a.Data}
}

// RowSlice returns rows [r0, r1) along axis 0 as a shared-storage view.
func (a *NDArray) RowSlice(r0, r1 int) *NDArray {
	if len(a.Shape) == 0 {
		panic("tensor: RowSlice of 0-d array")
	}
	if r0 < 0 || r1 < r0 || r1 > a.Shape[0] {
		panic(fmt.Sprintf("tensor: RowSlice [%d,%d) out of range (axis 0 size %d)", r0, r1, a.Shape[0]))
	}
	rs := a.RowSize()
	shape := append([]int{r1 - r0}, a.Shape[1:]...)
	return &NDArray{Shape: shape, Data: a.Data[r0*rs : r1*rs]}
}

// Concat stacks arrays along axis 0. All inputs must agree on the trailing
// dimensions.
func Concat(arrays ...*NDArray) *NDArray {
	if len(arrays) == 0 {
		return New(0)
	}
	first := arrays[0]
	rows := 0
	for _, a := range arrays {
		if len(a.Shape) != len(first.Shape) {
			panic("tensor: Concat rank mismatch")
		}
		for i := 1; i < len(a.Shape); i++ {
			if a.Shape[i] != first.Shape[i] {
				panic("tensor: Concat trailing-dimension mismatch")
			}
		}
		rows += a.Rows()
	}
	shape := append([]int{rows}, first.Shape[1:]...)
	out := New(shape...)
	off := 0
	for _, a := range arrays {
		copy(out.Data[off:], a.Data)
		off += len(a.Data)
	}
	return out
}

func sameShape(a, b *NDArray) {
	if len(a.Shape) != len(b.Shape) {
		panic("tensor: shape rank mismatch")
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", a.Shape, b.Shape))
		}
	}
}
