package imagelib

import (
	"math/rand"
	"testing"
)

func randImage(w, h int, seed int64) *Image {
	m := NewImage(w, h)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < len(m.Pix); i += 4 {
		m.Pix[i] = uint8(rng.Intn(256))
		m.Pix[i+1] = uint8(rng.Intn(256))
		m.Pix[i+2] = uint8(rng.Intn(256))
		m.Pix[i+3] = 255
	}
	return m
}

func TestImageBasics(t *testing.T) {
	m := NewImage(4, 3)
	if m.W != 4 || m.H != 3 || len(m.Pix) != 48 {
		t.Fatal("dimensions")
	}
	if _, _, _, a := m.At(0, 0); a != 255 {
		t.Fatal("new image should be opaque")
	}
	m.Set(2, 1, 10, 20, 30, 40)
	if r, g, b, a := m.At(2, 1); r != 10 || g != 20 || b != 30 || a != 40 {
		t.Fatal("At/Set")
	}
	c := m.Clone()
	c.Set(0, 0, 1, 1, 1, 1)
	if m.Equal(c) {
		t.Fatal("Clone should copy")
	}
	if !m.Equal(m.Clone()) {
		t.Fatal("Equal")
	}
}

func TestCropAppendRoundTrip(t *testing.T) {
	m := randImage(8, 10, 1)
	parts := []*Image{m.Crop(0, 3), m.Crop(3, 7), m.Crop(7, 10)}
	back := AppendVertically(parts...)
	if !back.Equal(m) {
		t.Fatal("crop+append should round trip")
	}
	// Crop must copy.
	parts[0].Set(0, 0, 9, 9, 9, 9)
	if r, _, _, _ := m.At(0, 0); r == 9 && m.Pix[1] == 9 {
		t.Fatal("Crop should copy pixels")
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: want panic", name)
			}
		}()
		f()
	}
	mustPanic("negative", func() { NewImage(-1, 1) })
	mustPanic("crop range", func() { NewImage(2, 2).Crop(0, 3) })
	mustPanic("append width", func() { AppendVertically(NewImage(2, 2), NewImage(3, 2)) })
	mustPanic("blend dims", func() { Blend(NewImage(2, 2), NewImage(3, 2), 0.5) })
}

// TestPixelLocalOpsCommuteWithCrop is the §3.4 annotatability condition:
// for every pixel-local op F, F(whole) == append(F(crop1), F(crop2), ...).
func TestPixelLocalOpsCommuteWithCrop(t *testing.T) {
	ops := []struct {
		name string
		f    func(*Image)
	}{
		{"Modulate", func(m *Image) { Modulate(m, 120, 80, 110) }},
		{"Gamma", func(m *Image) { Gamma(m, 0.6) }},
		{"Colorize", func(m *Image) { Colorize(m, 255, 153, 102, 0.3) }},
		{"SigmoidalContrastSharpen", func(m *Image) { SigmoidalContrast(m, true, 4, 128) }},
		{"SigmoidalContrastFlatten", func(m *Image) { SigmoidalContrast(m, false, 4, 128) }},
		{"Level", func(m *Image) { Level(m, 20, 230) }},
		{"ChannelScale", func(m *Image) { ChannelScale(m, 1, 1.2) }},
		{"Grayscale", Grayscale},
	}
	for _, op := range ops {
		whole := randImage(16, 24, 42)
		split := whole.Clone()
		op.f(whole)
		var parts []*Image
		for y := 0; y < 24; y += 7 {
			e := y + 7
			if e > 24 {
				e = 24
			}
			p := split.Crop(y, e)
			op.f(p)
			parts = append(parts, p)
		}
		if !AppendVertically(parts...).Equal(whole) {
			t.Errorf("%s does not commute with crop/append", op.name)
		}
	}
}

// TestBlurDoesNotCommuteWithCrop documents why Blur cannot be annotated
// (§7.1): its boundary condition reads rows outside the band.
func TestBlurDoesNotCommuteWithCrop(t *testing.T) {
	whole := randImage(16, 24, 43)
	split := whole.Clone()
	GaussianBlur(whole, 2)
	var parts []*Image
	for y := 0; y < 24; y += 8 {
		p := split.Crop(y, y+8)
		GaussianBlur(p, 2)
		parts = append(parts, p)
	}
	if AppendVertically(parts...).Equal(whole) {
		t.Fatal("blur unexpectedly commutes with crop; the un-annotatable example is broken")
	}
}

func TestBlendAndOps(t *testing.T) {
	a, b := randImage(6, 6, 2), randImage(6, 6, 3)
	orig := a.Clone()
	Blend(a, b, 0)
	if !a.Equal(orig) {
		t.Fatal("Blend alpha 0 should be identity")
	}
	Blend(a, b, 1)
	if !a.Equal(b) {
		t.Fatal("Blend alpha 1 should copy src")
	}
	g := randImage(4, 4, 4)
	Grayscale(g)
	for i := 0; i < len(g.Pix); i += 4 {
		if g.Pix[i] != g.Pix[i+1] || g.Pix[i+1] != g.Pix[i+2] {
			t.Fatal("Grayscale channels should match")
		}
	}
	// Gamma 1.0 is identity.
	id := randImage(4, 4, 5)
	idRef := id.Clone()
	Gamma(id, 1)
	if !id.Equal(idRef) {
		t.Fatal("Gamma(1) should be identity")
	}
	// Blur with sigma 0 is identity.
	GaussianBlur(id, 0)
	if !id.Equal(idRef) {
		t.Fatal("Blur(0) should be identity")
	}
}

func TestHSLRoundTrip(t *testing.T) {
	for _, c := range [][3]uint8{{0, 0, 0}, {255, 255, 255}, {255, 0, 0}, {0, 255, 0}, {0, 0, 255}, {12, 200, 97}, {128, 128, 128}} {
		h, s, l := rgbToHSL(c[0], c[1], c[2])
		r, g, b := hslToRGB(h, s, l)
		const tol = 2
		if absDiff(r, c[0]) > tol || absDiff(g, c[1]) > tol || absDiff(b, c[2]) > tol {
			t.Fatalf("HSL round trip %v -> %v %v %v", c, r, g, b)
		}
	}
}

func absDiff(a, b uint8) int {
	if a > b {
		return int(a - b)
	}
	return int(b - a)
}

func TestLevelClamps(t *testing.T) {
	m := NewImage(1, 1)
	m.Set(0, 0, 10, 128, 250, 255)
	Level(m, 20, 230)
	r, g, b, _ := m.At(0, 0)
	if r != 0 || b != 255 {
		t.Fatal("Level should clamp outside [black, white]")
	}
	if g == 0 || g == 255 {
		t.Fatal("Level midrange should remap linearly")
	}
}
