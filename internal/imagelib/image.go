// Package imagelib is the repository's stand-in for ImageMagick's
// MagickWand API: an RGBA image with the color operations the Nashville and
// Gotham Instagram-style filters use, plus Crop and AppendVertically — the
// primitives the paper's ImageMagick split type builds its splitter (crop)
// and merger (append) from. A GaussianBlur with a boundary condition is
// included as the deliberately un-annotatable function (§7.1).
package imagelib

import "fmt"

// Image is an 8-bit RGBA image in row-major order.
type Image struct {
	W, H int
	Pix  []uint8 // len = W*H*4
}

// NewImage allocates a black, opaque image.
func NewImage(w, h int) *Image {
	if w < 0 || h < 0 {
		panic("imagelib: negative dimensions")
	}
	img := &Image{W: w, H: h, Pix: make([]uint8, w*h*4)}
	for i := 3; i < len(img.Pix); i += 4 {
		img.Pix[i] = 255
	}
	return img
}

// Clone deep copies the image.
func (m *Image) Clone() *Image {
	return &Image{W: m.W, H: m.H, Pix: append([]uint8(nil), m.Pix...)}
}

// At returns the RGBA value at (x, y).
func (m *Image) At(x, y int) (r, g, b, a uint8) {
	i := (y*m.W + x) * 4
	return m.Pix[i], m.Pix[i+1], m.Pix[i+2], m.Pix[i+3]
}

// Set assigns the RGBA value at (x, y).
func (m *Image) Set(x, y int, r, g, b, a uint8) {
	i := (y*m.W + x) * 4
	m.Pix[i], m.Pix[i+1], m.Pix[i+2], m.Pix[i+3] = r, g, b, a
}

// Crop returns a copy of the full-width row band [y0, y1) — the operation
// the paper's ImageMagick splitter uses to produce pieces.
func (m *Image) Crop(y0, y1 int) *Image {
	if y0 < 0 || y1 < y0 || y1 > m.H {
		panic(fmt.Sprintf("imagelib: Crop [%d,%d) out of range (height %d)", y0, y1, m.H))
	}
	out := &Image{W: m.W, H: y1 - y0}
	out.Pix = append([]uint8(nil), m.Pix[y0*m.W*4:y1*m.W*4]...)
	return out
}

// AppendVertically stacks images of equal width — the paper's merger.
func AppendVertically(parts ...*Image) *Image {
	if len(parts) == 0 {
		return &Image{}
	}
	w := parts[0].W
	h := 0
	for _, p := range parts {
		if p.W != w {
			panic("imagelib: AppendVertically width mismatch")
		}
		h += p.H
	}
	out := &Image{W: w, H: h, Pix: make([]uint8, 0, w*h*4)}
	for _, p := range parts {
		out.Pix = append(out.Pix, p.Pix...)
	}
	return out
}

// Equal reports whether two images have identical dimensions and pixels.
func (m *Image) Equal(o *Image) bool {
	if m.W != o.W || m.H != o.H {
		return false
	}
	for i := range m.Pix {
		if m.Pix[i] != o.Pix[i] {
			return false
		}
	}
	return true
}

func clamp8(v float64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v + 0.5)
}

// MemoryFootprint reports the pixel buffer size (used by the runtime's
// simulated memory-protection accounting).
func (m *Image) MemoryFootprint() int64 { return int64(len(m.Pix)) }
