package imagelib

import "math"

// The color operations below mutate the image in place, like MagickWand
// calls on a wand handle. All are pixel-local (each output pixel depends
// only on the same input pixel), which is what makes them safely
// splittable by row bands. GaussianBlur at the bottom is not pixel-local.

// Modulate scales brightness, saturation, and hue, each as percentages with
// 100 meaning unchanged (MagickModulateImage).
func Modulate(m *Image, brightness, saturation, hue float64) {
	bs := brightness / 100
	ss := saturation / 100
	hs := (hue - 100) / 100 * 180 // degrees of hue rotation
	for i := 0; i < len(m.Pix); i += 4 {
		h, s, l := rgbToHSL(m.Pix[i], m.Pix[i+1], m.Pix[i+2])
		h = math.Mod(h+hs+360, 360)
		s = clamp01(s * ss)
		l = clamp01(l * bs)
		r, g, b := hslToRGB(h, s, l)
		m.Pix[i], m.Pix[i+1], m.Pix[i+2] = r, g, b
	}
}

// Gamma applies gamma correction (MagickGammaImage).
func Gamma(m *Image, gamma float64) {
	inv := 1 / gamma
	var lut [256]uint8
	for v := 0; v < 256; v++ {
		lut[v] = clamp8(255 * math.Pow(float64(v)/255, inv))
	}
	for i := 0; i < len(m.Pix); i += 4 {
		m.Pix[i] = lut[m.Pix[i]]
		m.Pix[i+1] = lut[m.Pix[i+1]]
		m.Pix[i+2] = lut[m.Pix[i+2]]
	}
}

// Colorize blends each pixel toward the given color with alpha in [0, 1]
// (MagickColorizeImage).
func Colorize(m *Image, cr, cg, cb uint8, alpha float64) {
	a := clamp01(alpha)
	for i := 0; i < len(m.Pix); i += 4 {
		m.Pix[i] = clamp8(float64(m.Pix[i])*(1-a) + float64(cr)*a)
		m.Pix[i+1] = clamp8(float64(m.Pix[i+1])*(1-a) + float64(cg)*a)
		m.Pix[i+2] = clamp8(float64(m.Pix[i+2])*(1-a) + float64(cb)*a)
	}
}

// SigmoidalContrast applies an S-curve contrast adjustment
// (MagickSigmoidalContrastImage). sharpen=false inverts the curve.
func SigmoidalContrast(m *Image, sharpen bool, contrast, midpoint float64) {
	mid := midpoint / 255
	var lut [256]uint8
	s0 := sigmoid(-contrast * mid)
	s1 := sigmoid(contrast * (1 - mid))
	for v := 0; v < 256; v++ {
		x := float64(v) / 255
		var y float64
		if s1 == s0 {
			y = x
		} else {
			y = (sigmoid(contrast*(x-mid)) - s0) / (s1 - s0)
		}
		if !sharpen {
			y = 2*x - y // approximate inverse curve
		}
		lut[v] = clamp8(255 * clamp01(y))
	}
	for i := 0; i < len(m.Pix); i += 4 {
		m.Pix[i] = lut[m.Pix[i]]
		m.Pix[i+1] = lut[m.Pix[i+1]]
		m.Pix[i+2] = lut[m.Pix[i+2]]
	}
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Level linearly remaps channel values from [black, white] to [0, 255]
// (MagickLevelImage).
func Level(m *Image, black, white float64) {
	span := white - black
	if span == 0 {
		span = 1
	}
	var lut [256]uint8
	for v := 0; v < 256; v++ {
		lut[v] = clamp8((float64(v) - black) / span * 255)
	}
	for i := 0; i < len(m.Pix); i += 4 {
		m.Pix[i] = lut[m.Pix[i]]
		m.Pix[i+1] = lut[m.Pix[i+1]]
		m.Pix[i+2] = lut[m.Pix[i+2]]
	}
}

// ChannelScale multiplies one channel (0=R,1=G,2=B) by factor.
func ChannelScale(m *Image, channel int, factor float64) {
	for i := channel; i < len(m.Pix); i += 4 {
		m.Pix[i] = clamp8(float64(m.Pix[i]) * factor)
	}
}

// Grayscale converts to luma.
func Grayscale(m *Image) {
	for i := 0; i < len(m.Pix); i += 4 {
		y := clamp8(0.299*float64(m.Pix[i]) + 0.587*float64(m.Pix[i+1]) + 0.114*float64(m.Pix[i+2]))
		m.Pix[i], m.Pix[i+1], m.Pix[i+2] = y, y, y
	}
}

// Blend composites src over dst with the given alpha; the images must have
// equal dimensions (MagickCompositeImage with blend).
func Blend(dst, src *Image, alpha float64) {
	if dst.W != src.W || dst.H != src.H {
		panic("imagelib: Blend dimension mismatch")
	}
	a := clamp01(alpha)
	for i := 0; i < len(dst.Pix); i += 4 {
		dst.Pix[i] = clamp8(float64(dst.Pix[i])*(1-a) + float64(src.Pix[i])*a)
		dst.Pix[i+1] = clamp8(float64(dst.Pix[i+1])*(1-a) + float64(src.Pix[i+1])*a)
		dst.Pix[i+2] = clamp8(float64(dst.Pix[i+2])*(1-a) + float64(src.Pix[i+2])*a)
	}
}

// GaussianBlur applies a separable Gaussian blur with the given sigma.
// Pixels near the top and bottom edges are handled with clamped boundary
// conditions that read neighbouring rows, so blurring a row band does NOT
// equal the band of the blurred image: this is the function the paper's
// §7.1 notes cannot be annotated (ImageMagick's Blur boundary condition).
func GaussianBlur(m *Image, sigma float64) {
	if sigma <= 0 {
		return
	}
	radius := int(3*sigma + 0.5)
	if radius < 1 {
		radius = 1
	}
	kernel := make([]float64, 2*radius+1)
	sum := 0.0
	for i := range kernel {
		d := float64(i - radius)
		kernel[i] = math.Exp(-d * d / (2 * sigma * sigma))
		sum += kernel[i]
	}
	for i := range kernel {
		kernel[i] /= sum
	}

	tmp := make([]uint8, len(m.Pix))
	// Horizontal pass.
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			for c := 0; c < 4; c++ {
				acc := 0.0
				for k := -radius; k <= radius; k++ {
					xx := clampInt(x+k, 0, m.W-1)
					acc += kernel[k+radius] * float64(m.Pix[(y*m.W+xx)*4+c])
				}
				tmp[(y*m.W+x)*4+c] = clamp8(acc)
			}
		}
	}
	// Vertical pass (reads neighbouring rows: the boundary condition).
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			for c := 0; c < 4; c++ {
				acc := 0.0
				for k := -radius; k <= radius; k++ {
					yy := clampInt(y+k, 0, m.H-1)
					acc += kernel[k+radius] * float64(tmp[(yy*m.W+x)*4+c])
				}
				m.Pix[(y*m.W+x)*4+c] = clamp8(acc)
			}
		}
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// rgbToHSL converts 8-bit RGB to (hue degrees, saturation, lightness).
func rgbToHSL(r8, g8, b8 uint8) (h, s, l float64) {
	r, g, b := float64(r8)/255, float64(g8)/255, float64(b8)/255
	mx := math.Max(r, math.Max(g, b))
	mn := math.Min(r, math.Min(g, b))
	l = (mx + mn) / 2
	if mx == mn {
		return 0, 0, l
	}
	d := mx - mn
	if l > 0.5 {
		s = d / (2 - mx - mn)
	} else {
		s = d / (mx + mn)
	}
	switch mx {
	case r:
		h = math.Mod((g-b)/d, 6)
	case g:
		h = (b-r)/d + 2
	default:
		h = (r-g)/d + 4
	}
	h *= 60
	if h < 0 {
		h += 360
	}
	return h, s, l
}

// hslToRGB converts (hue degrees, saturation, lightness) to 8-bit RGB.
func hslToRGB(h, s, l float64) (uint8, uint8, uint8) {
	c := (1 - math.Abs(2*l-1)) * s
	hp := h / 60
	x := c * (1 - math.Abs(math.Mod(hp, 2)-1))
	var r, g, b float64
	switch {
	case hp < 1:
		r, g, b = c, x, 0
	case hp < 2:
		r, g, b = x, c, 0
	case hp < 3:
		r, g, b = 0, c, x
	case hp < 4:
		r, g, b = 0, x, c
	case hp < 5:
		r, g, b = x, 0, c
	default:
		r, g, b = c, 0, x
	}
	m := l - c/2
	return clamp8((r + m) * 255), clamp8((g + m) * 255), clamp8((b + m) * 255)
}
