// Package memsim is a trace-driven machine model: a multi-level
// set-associative LRU cache hierarchy plus a roofline cost model
// (compute cycles vs. DRAM bandwidth). It substitutes for the 40-core Xeon
// the paper evaluates on — this container has one core — by executing the
// memory-access patterns of the real execution plans (per-function full
// scans for the base libraries, cache-sized pipelined batches for Mozart,
// fused single passes for the compilers) and reporting simulated runtimes
// and the hardware-counter statistics Table 4 reports. DESIGN.md documents
// the substitution.
package memsim

// CacheConfig sizes one cache level.
type CacheConfig struct {
	SizeBytes int64
	LineBytes int64
	Assoc     int
}

// Cache is a set-associative LRU cache.
type Cache struct {
	cfg   CacheConfig
	nsets int64
	tags  [][]uint64
	use   [][]uint64
	clock uint64

	Accesses int64
	Misses   int64
}

// NewCache builds a cache; size must be a multiple of line*assoc.
func NewCache(cfg CacheConfig) *Cache {
	if cfg.LineBytes <= 0 || cfg.Assoc <= 0 || cfg.SizeBytes <= 0 {
		panic("memsim: invalid cache config")
	}
	nsets := cfg.SizeBytes / (cfg.LineBytes * int64(cfg.Assoc))
	if nsets < 1 {
		nsets = 1
	}
	c := &Cache{cfg: cfg, nsets: nsets}
	c.tags = make([][]uint64, nsets)
	c.use = make([][]uint64, nsets)
	for i := range c.tags {
		c.tags[i] = make([]uint64, cfg.Assoc)
		c.use[i] = make([]uint64, cfg.Assoc)
		for w := range c.tags[i] {
			c.tags[i][w] = ^uint64(0)
		}
	}
	return c
}

// Access touches the line containing addr and reports whether it hit.
// Misses fill the line (LRU eviction).
func (c *Cache) Access(addr uint64) bool {
	c.clock++
	c.Accesses++
	line := addr / uint64(c.cfg.LineBytes)
	set := line % uint64(c.nsets)
	tags, use := c.tags[set], c.use[set]
	for w, t := range tags {
		if t == line {
			use[w] = c.clock
			return true
		}
	}
	c.Misses++
	victim, oldest := 0, use[0]
	for w := 1; w < len(use); w++ {
		if use[w] < oldest {
			victim, oldest = w, use[w]
		}
	}
	tags[victim] = line
	use[victim] = c.clock
	return false
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		for w := range c.tags[i] {
			c.tags[i][w] = ^uint64(0)
			c.use[i][w] = 0
		}
	}
	c.Accesses, c.Misses, c.clock = 0, 0, 0
}

// MissRate returns misses/accesses (0 when idle).
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Hierarchy chains private L1/L2 with a (per-thread slice of a) shared LLC.
type Hierarchy struct {
	L1, L2, LLC *Cache
	DRAMBytes   int64
	line        int64
}

// NewHierarchy builds the three-level hierarchy.
func NewHierarchy(l1, l2, llc CacheConfig) *Hierarchy {
	return &Hierarchy{L1: NewCache(l1), L2: NewCache(l2), LLC: NewCache(llc), line: l1.LineBytes}
}

// Access walks addr down the hierarchy, filling on miss, and returns the
// level that hit (1..3) or 4 for DRAM.
func (h *Hierarchy) Access(addr uint64) int {
	if h.L1.Access(addr) {
		return 1
	}
	if h.L2.Access(addr) {
		return 2
	}
	if h.LLC.Access(addr) {
		return 3
	}
	h.DRAMBytes += h.line
	return 4
}

// Reset clears all levels and counters.
func (h *Hierarchy) Reset() {
	h.L1.Reset()
	h.L2.Reset()
	h.LLC.Reset()
	h.DRAMBytes = 0
}
