package memsim

// Machine describes the modeled host. Defaults approximate the paper's
// Amazon m4.10xlarge (Xeon E5-2676 v3): see DefaultMachine.
type Machine struct {
	FreqGHz     float64 // per-core clock
	DRAMGBs     float64 // total memory bandwidth shared by all cores
	L1          CacheConfig
	L2          CacheConfig
	LLC         CacheConfig // total shared capacity; divided among threads
	MaxIPC      float64     // retired instructions per cycle when not stalled
	CallNS      float64     // fixed cost of one library call on one piece
	SimMaxElems int64       // trace scale cap (larger workloads scale down)
}

// DefaultMachine models the paper's evaluation host.
func DefaultMachine() Machine {
	return Machine{
		FreqGHz: 2.4,
		DRAMGBs: 60,
		L1:      CacheConfig{SizeBytes: 32 << 10, LineBytes: 64, Assoc: 8},
		L2:      CacheConfig{SizeBytes: 256 << 10, LineBytes: 64, Assoc: 8},
		LLC:     CacheConfig{SizeBytes: 30 << 20, LineBytes: 64, Assoc: 16},
		MaxIPC:  2.0,
		CallNS:  150,
		// Cap the cache-simulated trace; bigger workloads are scaled down
		// and the measured traffic ratios applied to the full size.
		SimMaxElems: 1 << 20,
	}
}

// Op is one library call in a stage: cycles per element and the arrays it
// streams. Arrays are identified by small integers; each array element is
// ElemBytes wide.
type Op struct {
	Name          string
	CyclesPerElem float64 // per element, on the executor being modeled
	Reads         []int
	Writes        []int
}

// Stage is a run of ops executed over the same elements. If BatchElems is
// zero the ops run un-pipelined: each op streams the stage's whole element
// range before the next op starts (how an unmodified library executes).
// Otherwise ops pipeline in batches of BatchElems (Mozart), or the stage is
// a single fused op (a compiler).
type Stage struct {
	Ops        []Op
	BatchElems int64
	// Elems overrides the workload element count for this stage (0 = use
	// the workload's). Used for stages over reduced data.
	Elems int64
	// ElemBytes is the width of one element of every array in this stage.
	ElemBytes int64
	// SplitCopies adds a read+write pass over each op's arrays at stage
	// entry/exit, modeling copying splitters/mergers (ImageMagick).
	SplitCopies bool
	// Scratch lists arrays that are batch-local temporaries (out-of-place
	// library results that die within the pipeline): their accesses wrap
	// within one batch's footprint, so they stay cache resident instead of
	// streaming.
	Scratch []int
}

// Workload is the full plan to simulate.
type Workload struct {
	Name   string
	Elems  int64 // elements per array
	Stages []Stage
}

// StageCounters are the simulated hardware counters of one workload stage:
// per-level cache hits and misses from the representative thread's access
// trace, plus the full-size, all-thread DRAM traffic and the stage's modeled
// runtime. They are the per-stage analogue of the Table 4 columns, and the
// payload the runtime's telemetry exports per stage (obs.EvStageCounters).
type StageCounters struct {
	L1Hits    int64   `json:"l1_hits"`
	L1Misses  int64   `json:"l1_misses"`
	L2Hits    int64   `json:"l2_hits"`
	L2Misses  int64   `json:"l2_misses"`
	LLCHits   int64   `json:"llc_hits"`
	LLCMisses int64   `json:"llc_misses"`
	DRAMBytes int64   `json:"dram_bytes"` // full size, all threads
	Seconds   float64 `json:"seconds"`    // modeled stage runtime
}

// LLCMissRate returns LLC misses over LLC accesses (0 when idle).
func (c StageCounters) LLCMissRate() float64 {
	if acc := c.LLCHits + c.LLCMisses; acc > 0 {
		return float64(c.LLCMisses) / float64(acc)
	}
	return 0
}

// Result reports the modeled execution.
type Result struct {
	Seconds        float64
	ComputeSeconds float64
	MemorySeconds  float64
	OverheadSecs   float64
	DRAMBytes      int64 // total, all threads
	LLCMissRate    float64
	LLCAccesses    int64
	IPC            float64
	Instructions   float64
	Cycles         float64
	// PerStage holds one counter set per workload stage, in stage order.
	PerStage []StageCounters
}

// MemoryBound reports whether the modeled run was limited by DRAM
// bandwidth rather than compute.
func (r Result) MemoryBound() bool { return r.MemorySeconds > r.ComputeSeconds }

// Run executes the workload's access trace on the machine model with the
// given thread count and returns modeled time and counters.
//
// The trace is simulated for a single representative thread over
// Elems/threads elements (threads execute disjoint contiguous ranges of
// the same plan), against a hierarchy whose LLC is the thread's 1/threads
// share of the shared cache. Per-thread DRAM traffic is scaled by the
// thread count and charged against the shared bandwidth; per-thread cycles
// are charged against one core. Stage time is the roofline maximum of the
// two, plus per-call fixed overheads.
func Run(m Machine, w Workload, threads int) Result {
	if threads < 1 {
		threads = 1
	}
	var res Result
	var llcAccTotal, llcMissTotal int64
	for _, st := range w.Stages {
		stElems := st.Elems
		if stElems == 0 {
			stElems = w.Elems
		}
		elemBytes := st.ElemBytes
		if elemBytes == 0 {
			elemBytes = 8
		}
		perThread := stElems / int64(threads)
		if perThread < 1 {
			perThread = 1
		}

		// Scale the trace down if necessary, keeping the batch:data and
		// cache:data ratios meaningful by scaling the batch too.
		simElems := perThread
		scale := 1.0
		if m.SimMaxElems > 0 && simElems > m.SimMaxElems {
			scale = float64(perThread) / float64(m.SimMaxElems)
			simElems = m.SimMaxElems
		}
		batch := st.BatchElems
		if batch <= 0 || batch > perThread {
			batch = perThread
		}
		simBatch := int64(float64(batch) / scale)
		if simBatch < 1 {
			simBatch = 1
		}

		// The per-thread hierarchy: private L1/L2, a 1/threads share of the
		// LLC, with every level scaled by the trace's scale factor so the
		// cache:data and batch:cache ratios of the full-size run are
		// preserved.
		shrink := func(c CacheConfig, f float64) CacheConfig {
			c.SizeBytes = int64(float64(c.SizeBytes) / f)
			if min := c.LineBytes * int64(c.Assoc); c.SizeBytes < min {
				c.SizeBytes = min
			}
			return c
		}
		h := NewHierarchy(shrink(m.L1, scale), shrink(m.L2, scale),
			shrink(m.LLC, scale*float64(threads)))

		dramBefore := h.DRAMBytes
		calls := int64(0)

		scratch := map[int]bool{}
		for _, a := range st.Scratch {
			scratch[a] = true
		}
		wrap := simBatch * elemBytes

		// Trace: for each batch, each op streams its arrays' batch range.
		for lo := int64(0); lo < simElems; lo += simBatch {
			hi := lo + simBatch
			if hi > simElems {
				hi = simElems
			}
			for _, op := range st.Ops {
				calls++
				touch := func(arr int) {
					base := uint64(arr+1) << 40
					for b := lo * elemBytes; b < hi*elemBytes; b += h.line {
						off := b
						if scratch[arr] && wrap > 0 {
							off = b % wrap
						}
						h.Access(base + uint64(off))
					}
				}
				for _, a := range op.Reads {
					touch(a)
				}
				for _, a := range op.Writes {
					touch(a)
				}
				if st.SplitCopies {
					// Copying splitter/merger: one extra read+write
					// stream per array touched.
					for _, a := range op.Reads {
						touch(a)
					}
					for _, a := range op.Writes {
						touch(a)
					}
				}
			}
		}

		// Scale measured traffic back to full size and all threads.
		dramPerThread := float64(h.DRAMBytes-dramBefore) * scale
		dramTotal := dramPerThread * float64(threads)

		var cycles float64
		for _, op := range st.Ops {
			c := op.CyclesPerElem
			if st.SplitCopies {
				c += 1.0 // copy cost per element
			}
			cycles += c * float64(perThread)
		}
		computeSecs := cycles / (m.FreqGHz * 1e9)
		memSecs := dramTotal / (m.DRAMGBs * 1e9)
		overhead := float64(calls) * scale * m.CallNS * 1e-9

		// Roofline: compute overlaps memory; per-call dispatch overhead
		// does not overlap with either.
		stageSecs := computeSecs
		if memSecs > stageSecs {
			stageSecs = memSecs
		}
		stageSecs += overhead

		res.Seconds += stageSecs
		res.ComputeSeconds += computeSecs
		res.MemorySeconds += memSecs
		res.OverheadSecs += overhead
		res.DRAMBytes += int64(dramTotal)
		res.LLCAccesses += h.LLC.Accesses
		llcAccTotal += h.LLC.Accesses
		llcMissTotal += h.LLC.Misses

		// Per-stage counters: hit/miss counts come from the representative
		// thread's (possibly scaled-down) trace — their ratios are the
		// meaningful signal — while DRAM bytes are scaled back to full size
		// and all threads, matching the aggregate accounting above.
		res.PerStage = append(res.PerStage, StageCounters{
			L1Hits:    h.L1.Accesses - h.L1.Misses,
			L1Misses:  h.L1.Misses,
			L2Hits:    h.L2.Accesses - h.L2.Misses,
			L2Misses:  h.L2.Misses,
			LLCHits:   h.LLC.Accesses - h.LLC.Misses,
			LLCMisses: h.LLC.Misses,
			DRAMBytes: int64(dramTotal),
			Seconds:   stageSecs,
		})

		// Instruction model: MaxIPC instructions per modeled cycle.
		res.Instructions += cycles * m.MaxIPC
		res.Cycles += stageSecs * m.FreqGHz * 1e9
	}

	if llcAccTotal > 0 {
		res.LLCMissRate = float64(llcMissTotal) / float64(llcAccTotal)
	}
	if res.Cycles > 0 {
		res.IPC = res.Instructions / res.Cycles
	}
	return res
}
