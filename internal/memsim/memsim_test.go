package memsim

import "testing"

func TestCacheBasics(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 1024, LineBytes: 64, Assoc: 2})
	if c.Access(0) {
		t.Fatal("cold miss expected")
	}
	if !c.Access(0) || !c.Access(63) {
		t.Fatal("same line should hit")
	}
	if c.Access(64) {
		t.Fatal("next line should miss")
	}
	if c.MissRate() <= 0 || c.MissRate() >= 1 {
		t.Fatalf("miss rate %v", c.MissRate())
	}
	c.Reset()
	if c.Accesses != 0 || c.Misses != 0 {
		t.Fatal("Reset")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way, 1 set: size = 2 lines.
	c := NewCache(CacheConfig{SizeBytes: 128, LineBytes: 64, Assoc: 2})
	c.Access(0)   // A
	c.Access(64)  // B
	c.Access(0)   // A hit, B is LRU
	c.Access(128) // C evicts B
	if !c.Access(0) {
		t.Fatal("A should survive")
	}
	if c.Access(64) {
		t.Fatal("B should have been evicted")
	}
}

func TestCacheCapacityStreaming(t *testing.T) {
	// Streaming 4x the cache size twice should miss nearly always.
	c := NewCache(CacheConfig{SizeBytes: 4 << 10, LineBytes: 64, Assoc: 8})
	for pass := 0; pass < 2; pass++ {
		for addr := uint64(0); addr < 16<<10; addr += 64 {
			c.Access(addr)
		}
	}
	if c.MissRate() < 0.99 {
		t.Fatalf("streaming over capacity should thrash, miss rate %v", c.MissRate())
	}
	// A working set that fits should hit on the second pass.
	c2 := NewCache(CacheConfig{SizeBytes: 16 << 10, LineBytes: 64, Assoc: 8})
	for pass := 0; pass < 2; pass++ {
		for addr := uint64(0); addr < 4<<10; addr += 64 {
			c2.Access(addr)
		}
	}
	if c2.Misses != 64 {
		t.Fatalf("only cold misses expected, got %d", c2.Misses)
	}
}

func TestHierarchyLevels(t *testing.T) {
	h := NewHierarchy(
		CacheConfig{SizeBytes: 128, LineBytes: 64, Assoc: 2},
		CacheConfig{SizeBytes: 512, LineBytes: 64, Assoc: 2},
		CacheConfig{SizeBytes: 2048, LineBytes: 64, Assoc: 2},
	)
	if got := h.Access(0); got != 4 {
		t.Fatalf("cold access should go to DRAM, got level %d", got)
	}
	if got := h.Access(0); got != 1 {
		t.Fatalf("hot access should hit L1, got %d", got)
	}
	if h.DRAMBytes != 64 {
		t.Fatalf("DRAM bytes %d", h.DRAMBytes)
	}
	h.Reset()
	if h.DRAMBytes != 0 || h.L1.Accesses != 0 {
		t.Fatal("Reset")
	}
}

// pipeVsNoPipe builds the Black Scholes shape: k elementwise ops over
// arrays much larger than the LLC.
func pipeVsNoPipe(batch int64) (pipe, nopipe Workload) {
	ops := make([]Op, 16)
	for i := range ops {
		ops[i] = Op{Name: "vd", CyclesPerElem: 1.5, Reads: []int{0, 1}, Writes: []int{0}}
	}
	elems := int64(8 << 20)
	pipe = Workload{Name: "pipe", Elems: elems, Stages: []Stage{{Ops: ops, BatchElems: batch}}}
	nopipe = Workload{Name: "nopipe", Elems: elems, Stages: []Stage{{Ops: ops}}}
	return pipe, nopipe
}

// TestPipeliningReducesDRAMTraffic is the core Table 4 effect: cache-sized
// batches cut DRAM traffic and the LLC miss rate roughly in half or more.
func TestPipeliningReducesDRAMTraffic(t *testing.T) {
	m := DefaultMachine()
	pipe, nopipe := pipeVsNoPipe(64 << 10) // C*L2/sum(elem) = 4*256KB/16B
	rp := Run(m, pipe, 16)
	rn := Run(m, nopipe, 16)
	if rp.DRAMBytes*4 > rn.DRAMBytes {
		t.Fatalf("pipelining should cut DRAM traffic by >4x: %d vs %d", rp.DRAMBytes, rn.DRAMBytes)
	}
	if rp.LLCMissRate >= rn.LLCMissRate {
		t.Fatalf("pipelined LLC miss rate %v should beat %v", rp.LLCMissRate, rn.LLCMissRate)
	}
	if rp.Seconds >= rn.Seconds {
		t.Fatalf("pipelined time %v should beat %v", rp.Seconds, rn.Seconds)
	}
	if rp.IPC <= rn.IPC {
		t.Fatalf("pipelined IPC %v should beat %v", rp.IPC, rn.IPC)
	}
}

// TestScalingShape is the Figure 1 effect: un-pipelined execution flattens
// on memory bandwidth with threads while pipelined execution keeps scaling.
func TestScalingShape(t *testing.T) {
	m := DefaultMachine()
	pipe, nopipe := pipeVsNoPipe(64 << 10)

	p1, p16 := Run(m, pipe, 1), Run(m, pipe, 16)
	n1, n16 := Run(m, nopipe, 1), Run(m, nopipe, 16)

	pipeSpeedup := p1.Seconds / p16.Seconds
	nopipeSpeedup := n1.Seconds / n16.Seconds
	if pipeSpeedup < 8 {
		t.Fatalf("pipelined execution should scale, got %.2fx", pipeSpeedup)
	}
	if nopipeSpeedup > pipeSpeedup/2 {
		t.Fatalf("un-pipelined should flatten: %.2fx vs %.2fx", nopipeSpeedup, pipeSpeedup)
	}
	if !n16.MemoryBound() {
		t.Fatal("un-pipelined 16-thread run should be memory bound")
	}
	if p16.MemoryBound() {
		t.Fatal("pipelined 16-thread run should be compute bound")
	}
}

// TestBatchSweepUShape is the Figure 6 effect: tiny batches pay call
// overhead, huge batches lose cache reuse; the middle wins.
func TestBatchSweepUShape(t *testing.T) {
	m := DefaultMachine()
	times := map[string]float64{}
	for _, b := range []int64{64, 64 << 10, 4 << 20} {
		pipe, _ := pipeVsNoPipe(b)
		times[map[int64]string{64: "tiny", 64 << 10: "mid", 4 << 20: "huge"}[b]] = Run(m, pipe, 16).Seconds
	}
	if times["mid"] >= times["tiny"] || times["mid"] >= times["huge"] {
		t.Fatalf("batch sweep should be U-shaped: %v", times)
	}
}

// TestSplitCopiesCost: copying splitters (ImageMagick) add time.
func TestSplitCopiesCost(t *testing.T) {
	m := DefaultMachine()
	ops := []Op{{Name: "filter", CyclesPerElem: 3, Reads: []int{0}, Writes: []int{0}}}
	plain := Workload{Elems: 1 << 20, Stages: []Stage{{Ops: ops, BatchElems: 8 << 10}}}
	copying := Workload{Elems: 1 << 20, Stages: []Stage{{Ops: ops, BatchElems: 8 << 10, SplitCopies: true}}}
	if Run(m, copying, 8).Seconds <= Run(m, plain, 8).Seconds {
		t.Fatal("copying split/merge should cost time")
	}
}

// TestStageElemsOverride and defaults.
func TestStageElemsOverride(t *testing.T) {
	m := DefaultMachine()
	w := Workload{Elems: 1 << 20, Stages: []Stage{
		{Ops: []Op{{CyclesPerElem: 1, Reads: []int{0}}}, Elems: 1 << 10},
	}}
	r := Run(m, w, 1)
	if r.DRAMBytes > 1<<14 {
		t.Fatalf("stage override ignored: %d DRAM bytes", r.DRAMBytes)
	}
	if Run(m, w, 0).Seconds <= 0 {
		t.Fatal("threads clamp")
	}
}

// TestScratchArraysStayCacheResident: batch-local scratch arrays (the
// out-of-place libraries' per-batch intermediates) produce almost no DRAM
// traffic compared with streaming the same arrays.
func TestScratchArraysStayCacheResident(t *testing.T) {
	m := DefaultMachine()
	ops := []Op{
		{Name: "a", CyclesPerElem: 1, Reads: []int{0}, Writes: []int{1}},
		{Name: "b", CyclesPerElem: 1, Reads: []int{1}, Writes: []int{2}},
		{Name: "c", CyclesPerElem: 1, Reads: []int{2}, Writes: []int{3}},
	}
	streaming := Workload{Elems: 4 << 20, Stages: []Stage{{Ops: ops, BatchElems: 8 << 10}}}
	scratch := Workload{Elems: 4 << 20, Stages: []Stage{{Ops: ops, BatchElems: 8 << 10, Scratch: []int{1, 2}}}}
	rs := Run(m, streaming, 4)
	rr := Run(m, scratch, 4)
	// Two of four arrays became cache resident: traffic roughly halves.
	if float64(rr.DRAMBytes) > 0.6*float64(rs.DRAMBytes) {
		t.Fatalf("scratch intermediates should cut traffic: %d vs %d", rr.DRAMBytes, rs.DRAMBytes)
	}
}

// TestRunCountersPopulated: the result carries all modeled counters.
func TestRunCountersPopulated(t *testing.T) {
	m := DefaultMachine()
	w := Workload{Elems: 1 << 18, Stages: []Stage{{
		Ops: []Op{{Name: "x", CyclesPerElem: 1, Reads: []int{0}, Writes: []int{1}}},
	}}}
	r := Run(m, w, 2)
	if r.Seconds <= 0 || r.Cycles <= 0 || r.Instructions <= 0 || r.LLCAccesses <= 0 {
		t.Fatalf("counters: %+v", r)
	}
	if r.ComputeSeconds <= 0 || r.MemorySeconds <= 0 {
		t.Fatalf("roofline parts: %+v", r)
	}
	if !r.MemoryBound() && r.MemorySeconds > r.ComputeSeconds {
		t.Fatal("MemoryBound inconsistent")
	}
}
