package serve

import (
	"math"
	"testing"
	"time"
)

func TestSLOConfigDefaults(t *testing.T) {
	c := SLOConfig{}.withDefaults()
	if c.LatencyObjective != defaultSLOLatency || c.Availability != defaultSLOAvailability {
		t.Fatalf("zero config defaulted to %+v", c)
	}
	// Out-of-range availabilities fall back too.
	if c := (SLOConfig{Availability: 1.5}).withDefaults(); c.Availability != defaultSLOAvailability {
		t.Errorf("availability 1.5 -> %g", c.Availability)
	}
	if c := (SLOConfig{Availability: 1.0}).withDefaults(); c.Availability != defaultSLOAvailability {
		t.Errorf("availability 1.0 (no error budget) -> %g", c.Availability)
	}
	// Explicit values survive.
	c = SLOConfig{LatencyObjective: time.Second, Availability: 0.99}.withDefaults()
	if c.LatencyObjective != time.Second || c.Availability != 0.99 {
		t.Errorf("explicit config mangled: %+v", c)
	}
}

func TestSLOClassify(t *testing.T) {
	tr := newSLOTracker(SLOConfig{LatencyObjective: 100 * time.Millisecond})
	cases := []struct {
		status  int
		latency time.Duration
		good    bool
		counted bool
	}{
		{200, 50 * time.Millisecond, true, true},   // fast success
		{200, 100 * time.Millisecond, true, true},  // exactly at the objective: still good
		{200, 101 * time.Millisecond, false, true}, // slow success spends budget
		{500, time.Millisecond, false, true},       // server error
		{504, 2 * time.Second, false, true},        // deadline expiry
		{429, time.Millisecond, false, false},      // shed: outside the SLO
		{503, time.Millisecond, false, false},      // draining
		{499, time.Millisecond, false, false},      // client abandoned
		{404, time.Millisecond, false, false},      // unknown target
		{400, time.Millisecond, false, false},      // malformed
		{405, time.Millisecond, false, false},      // wrong method
	}
	for _, c := range cases {
		good, counted := tr.classify(c.status, c.latency)
		if good != c.good || counted != c.counted {
			t.Errorf("classify(%d, %v) = (%v, %v), want (%v, %v)",
				c.status, c.latency, good, counted, c.good, c.counted)
		}
	}
}

// TestSLOBurnRateHandComputed pins the clock and checks the multi-window
// burn rates against hand-computed values: 99.9%% availability means an
// error budget of 0.001, so a bad fraction of f burns at f/0.001 = 1000f.
func TestSLOBurnRateHandComputed(t *testing.T) {
	tr := newSLOTracker(SLOConfig{LatencyObjective: 100 * time.Millisecond, Availability: 0.999})
	base := time.Unix(1_700_000_000, 0)

	// 40 minutes ago: 100 good. Inside 1h, outside 5m.
	old := base.Add(-40 * time.Minute)
	for i := 0; i < 100; i++ {
		tr.record(old, true, 10*time.Millisecond, "")
	}
	// 2 minutes ago: 18 good + 2 bad. Inside both windows.
	recent := base.Add(-2 * time.Minute)
	for i := 0; i < 18; i++ {
		tr.record(recent, true, 20*time.Millisecond, "")
	}
	tr.record(recent, false, 300*time.Millisecond, "trace-slow")
	tr.record(recent, false, 250*time.Millisecond, "trace-slower")

	// 5m window: 18 good, 2 bad -> bad fraction 0.1 -> burn 0.1/0.001 = 100.
	if got, want := tr.burnRate(base, 5*time.Minute), 100.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("5m burn = %g, want %g", got, want)
	}
	// 1h window: 118 good, 2 bad -> 2/120/0.001 = 16.666...
	if got, want := tr.burnRate(base, time.Hour), (2.0/120.0)/0.001; math.Abs(got-want) > 1e-9 {
		t.Errorf("1h burn = %g, want %g", got, want)
	}
	// The worst counted request in the hour is the 300ms one, with its trace.
	_, _, worstNS, worstTrace := tr.window(base, time.Hour)
	if worstNS != (300*time.Millisecond).Nanoseconds() || worstTrace != "trace-slow" {
		t.Errorf("worst = %dns %q, want 300ms trace-slow", worstNS, worstTrace)
	}
	// Cumulative totals are monotonic and window-independent.
	if good, bad := tr.totals(); good != 118 || bad != 2 {
		t.Errorf("totals = (%d, %d), want (118, 2)", good, bad)
	}
	// No traffic in the window at all: burn 0, not NaN.
	if got := tr.burnRate(base.Add(2*time.Hour), 5*time.Minute); got != 0 {
		t.Errorf("empty-window burn = %g, want 0", got)
	}
	// All-bad traffic saturates at 1/(1-availability).
	sat := newSLOTracker(SLOConfig{Availability: 0.999})
	sat.record(base, false, time.Second, "t")
	if got, want := sat.burnRate(base, 5*time.Minute), 1000.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("all-bad burn = %g, want %g", got, want)
	}
}

// TestSLOBucketExpiry: a bucket recycled by a second one full window later
// forgets the old second's counts, and stale stamps never leak into
// queries.
func TestSLOBucketExpiry(t *testing.T) {
	tr := newSLOTracker(SLOConfig{})
	base := time.Unix(1_700_000_000, 0)
	tr.record(base, false, time.Second, "old")

	// One full ring later the same slot is touched by a new second: the
	// old count must vanish, not accumulate.
	later := base.Add(sloWindowSeconds * time.Second)
	tr.record(later, true, time.Millisecond, "new")
	good, bad, _, worstTrace := tr.window(later, time.Hour)
	if good != 1 || bad != 0 {
		t.Errorf("window after recycle = (%d good, %d bad), want (1, 0)", good, bad)
	}
	if worstTrace != "new" {
		t.Errorf("worst trace %q, want new", worstTrace)
	}

	// A stale bucket that was never re-touched is skipped by queries: the
	// old second's count is invisible from a much later now even though the
	// slot still physically holds it.
	tr2 := newSLOTracker(SLOConfig{})
	tr2.record(base, true, time.Millisecond, "")
	if good, bad, _, _ := tr2.window(base.Add(2*sloWindowSeconds*time.Second), time.Hour); good != 0 || bad != 0 {
		t.Errorf("stale bucket leaked into the window: (%d, %d)", good, bad)
	}
	// But cumulative totals keep it.
	if good, _ := tr2.totals(); good != 1 {
		t.Errorf("totals lost the recycled request")
	}

	// Sub-second windows clamp to one bucket.
	tr3 := newSLOTracker(SLOConfig{})
	tr3.record(base, true, time.Millisecond, "")
	tr3.record(base.Add(-time.Second), true, time.Millisecond, "")
	if good, _, _, _ := tr3.window(base, 100*time.Millisecond); good != 1 {
		t.Errorf("sub-second window counted %d, want just the current second", good)
	}
}

// TestSLOIdxNonNegative: pre-epoch clocks must not panic the ring index.
func TestSLOIdxNonNegative(t *testing.T) {
	for _, sec := range []int64{0, 1, -1, -sloWindowSeconds, -sloWindowSeconds - 1, 1 << 40} {
		if i := sloIdx(sec); i < 0 || i >= sloWindowSeconds {
			t.Errorf("sloIdx(%d) = %d out of range", sec, i)
		}
	}
}
