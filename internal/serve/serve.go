// Package serve is mozartd's engine: a long-lived, multi-tenant HTTP
// front end over the Mozart runtime that is robust by construction.
//
// Every request names a workload, a tenant, and a logical session. The
// admission path never queues without bound: a request is either admitted
// — against a global in-flight cap, the tenant's in-flight cap, and a
// byte reservation on the tenant's memory budget — or shed immediately
// with 429 and a Retry-After. Budgets are carved per tenant out of one
// shared core.Governor at registration, so the process-wide working set
// stays bounded while no tenant can starve another's carve. Deadlines are
// first-class: the client-supplied timeout is clamped by a server maximum
// and propagated through context into EvaluateContext (and lazy Future
// reads via Options.BaseContext), so partial work is cancelled on client
// disconnect, deadline expiry, or forced drain. Each tenant gets its own
// circuit-breaker group, metrics sink, and flight recorder — one tenant's
// faulting annotation degrades only that tenant. Lifecycle: /healthz
// (liveness), /readyz (admission state), and a drain state machine —
// serving → draining (stop admitting, finish in-flight within a deadline,
// then force-cancel) → stopped (budgets returned, Quiesced verifiable).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mozart/internal/core"
	"mozart/internal/obs"
	"mozart/internal/obs/httpdebug"
	"mozart/internal/plan"
	"mozart/internal/spill"
	"mozart/internal/tune"
)

// Server states (State / readyz).
const (
	StateServing  = "serving"
	StateDraining = "draining"
	StateStopped  = "stopped"
)

// statusClientClosedRequest is the de-facto (nginx) status for "client
// disconnected before the response": the evaluation was cancelled, nobody
// is listening, but access logs should not count it as a server fault.
const statusClientClosedRequest = 499

// Config configures a Server.
type Config struct {
	// GlobalBudgetBytes is the shared Governor's budget from which every
	// tenant's BudgetBytes is carved. Defaults to 1 GiB.
	GlobalBudgetBytes int64
	// MaxInFlight caps concurrent evaluations across all tenants; excess
	// requests shed with 429. Defaults to 32.
	MaxInFlight int
	// DefaultTimeout applies when a request carries no timeout_ms.
	// Defaults to 2s.
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-supplied timeouts. Defaults to 10s.
	MaxTimeout time.Duration
	// DrainTimeout bounds graceful drain: in-flight evaluations get this
	// long to finish after SIGTERM before their contexts are force-
	// cancelled. Defaults to 5s.
	DrainTimeout time.Duration
	// DefaultScale substitutes for a request without a scale. Defaults to
	// 65536 elements.
	DefaultScale int
	// MaxWorkers clamps a request's threads field. Defaults to 8.
	MaxWorkers int
	// Tenants declares the tenants. Empty declares a single "default"
	// tenant owning the whole global budget.
	Tenants []TenantConfig
	// Registry maps workload names to implementations. Nil selects
	// WorkloadRegistry() (the paper's 15 workloads).
	Registry map[string]EvalFunc
	// Fallback, Retry, and Breaker are the resilience policies applied to
	// every evaluation. The zero Fallback is upgraded to
	// FallbackQuarantine so tenant breaker groups engage.
	Fallback core.FallbackPolicy
	Retry    core.RetryPolicy
	Breaker  core.BreakerPolicy
	// SpillDir is where degraded (out-of-core) evaluations place their
	// spill stores; empty selects the OS temp directory.
	SpillDir string
	// RetryJitterSeed seeds the 429 Retry-After jitter so tests can pin
	// the sequence; 0 seeds from the clock.
	RetryJitterSeed int64
	// Tune gives every tenant a calibrating batch tuner in its warm
	// ledger: evaluations sharing a structural plan signature sweep batch
	// sizes online and pin the winner (see internal/tune). Off by default
	// — plans then match the static §5.2 heuristic byte for byte.
	Tune bool
	// TuneConfig overrides the tuner parameters when Tune is set; the zero
	// value selects the tune package defaults.
	TuneConfig tune.Config
	// SLO is the default per-tenant service-level objective; tenants
	// override it via TenantConfig.SLO. The zero value selects 500ms
	// latency at 99.9% availability.
	SLO SLOConfig
	// Logger, when set, receives one structured summary line per /v1/eval
	// request (trace id, tenant, workload, mode, status, outcome, latency)
	// via log/slog. Nil logs nothing — tests and embedders that only want
	// the lifecycle Logf stay quiet.
	Logger *slog.Logger
	// SpanDepth is how many completed request span trees the server
	// retains behind /debug/mozart/spans (<= 0 selects 64).
	SpanDepth int
	// Logf receives server lifecycle lines (nil discards).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.GlobalBudgetBytes <= 0 {
		c.GlobalBudgetBytes = 1 << 30
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 32
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.DefaultScale <= 0 {
		c.DefaultScale = 1 << 16
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = 8
	}
	if c.Fallback == core.FallbackOff {
		c.Fallback = core.FallbackQuarantine
	}
	if len(c.Tenants) == 0 {
		c.Tenants = []TenantConfig{{Name: "default", BudgetBytes: c.GlobalBudgetBytes}}
	}
	if c.Registry == nil {
		c.Registry = WorkloadRegistry()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is the multi-tenant evaluation server. Build with New, serve
// Handler() on a listener the caller owns, and stop with Drain.
type Server struct {
	cfg     Config
	global  *core.Governor
	tenants map[string]*Tenant
	order   []string // tenant names, registration order

	metrics *obs.Metrics // server-wide sink behind /metrics
	plans   *httpdebug.PlanLog
	spans   *obs.SpanRing // completed request span trees behind /debug/mozart/spans
	mux     *http.ServeMux

	stateMu  sync.RWMutex // guards state transitions vs request admission
	state    atomic.Int32 // 0 serving, 1 draining, 2 stopped
	inFlight atomic.Int64 // global in-flight evaluations
	wg       sync.WaitGroup

	rngMu sync.Mutex // guards rng (Retry-After jitter)
	rng   *rand.Rand

	hardCtx    context.Context // cancelled when the drain deadline passes
	hardCancel context.CancelFunc
}

const (
	stServing int32 = iota
	stDraining
	stStopped
)

// New builds a server: carves each tenant's budget out of the shared
// Governor and mounts the API plus the httpdebug telemetry mux.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		global:  core.NewGovernor(cfg.GlobalBudgetBytes),
		tenants: map[string]*Tenant{},
		metrics: obs.NewMetrics(),
		plans:   httpdebug.NewPlanLog(16),
		spans:   obs.NewSpanRing(cfg.SpanDepth),
		mux:     http.NewServeMux(),
	}
	s.hardCtx, s.hardCancel = context.WithCancel(context.Background())
	seed := cfg.RetryJitterSeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	s.rng = rand.New(rand.NewSource(seed))
	for _, tc := range cfg.Tenants {
		if _, dup := s.tenants[tc.Name]; dup {
			s.closeTenants()
			return nil, fmt.Errorf("serve: duplicate tenant %q", tc.Name)
		}
		var tuneCfg *tune.Config
		if cfg.Tune {
			tcopy := cfg.TuneConfig
			tuneCfg = &tcopy
		}
		t, err := newTenant(tc, s.global, cfg.Breaker, tuneCfg, cfg.SLO)
		if err != nil {
			s.closeTenants()
			return nil, err
		}
		s.tenants[tc.Name] = t
		s.order = append(s.order, tc.Name)
	}
	// Reserved-bytes gauges: the shared Governor plus every tenant carve,
	// sampled live at each /metrics scrape.
	const reservedHelp = "Bytes currently reserved against the governor budget."
	s.metrics.RegisterGauge("governor_reserved_bytes", reservedHelp,
		map[string]string{"scope": "global"},
		func() float64 { return float64(s.global.InUse()) })
	for _, name := range s.order {
		t := s.tenants[name]
		s.metrics.RegisterGauge("governor_reserved_bytes", reservedHelp,
			map[string]string{"scope": "tenant", "tenant": name},
			func() float64 { return float64(t.gov.InUse()) })
	}
	// SLO families, sampled live per scrape: classified request counts,
	// multi-window burn rates, remaining error budget over the hour, and
	// the objective itself (so dashboards need no out-of-band config).
	for _, name := range s.order {
		t := s.tenants[name]
		s.metrics.RegisterFunc("slo_requests_total",
			"Requests classified against the tenant SLO, by outcome.", "counter",
			map[string]string{"tenant": name, "outcome": "good"},
			func() float64 { g, _ := t.slo.totals(); return float64(g) })
		s.metrics.RegisterFunc("slo_requests_total",
			"Requests classified against the tenant SLO, by outcome.", "counter",
			map[string]string{"tenant": name, "outcome": "bad"},
			func() float64 { _, b := t.slo.totals(); return float64(b) })
		s.metrics.RegisterFunc("slo_burn_rate",
			"Error-budget burn rate over the trailing window (1 = spending exactly at the objective).", "gauge",
			map[string]string{"tenant": name, "window": "5m"},
			func() float64 { return t.slo.burnRate(time.Now(), 5*time.Minute) })
		s.metrics.RegisterFunc("slo_burn_rate",
			"Error-budget burn rate over the trailing window (1 = spending exactly at the objective).", "gauge",
			map[string]string{"tenant": name, "window": "1h"},
			func() float64 { return t.slo.burnRate(time.Now(), time.Hour) })
		s.metrics.RegisterFunc("slo_error_budget_remaining",
			"Fraction of the hourly error budget left (clamped at 0).", "gauge",
			map[string]string{"tenant": name},
			func() float64 {
				rem := 1 - t.slo.burnRate(time.Now(), time.Hour)
				if rem < 0 {
					rem = 0
				}
				return rem
			})
		s.metrics.RegisterFunc("slo_latency_objective_seconds",
			"The tenant's good/bad latency threshold.", "gauge",
			map[string]string{"tenant": name},
			func() float64 { return t.slo.cfg.LatencyObjective.Seconds() })
	}
	s.routes()
	return s, nil
}

func (s *Server) closeTenants() {
	for _, t := range s.tenants {
		t.close()
	}
}

func (s *Server) routes() {
	s.mux.HandleFunc("/v1/eval", s.protect(s.handleEval))
	s.mux.HandleFunc("/v1/tenants", s.protect(s.handleTenants))
	s.mux.HandleFunc("/healthz", s.protect(s.handleHealthz))
	s.mux.HandleFunc("/readyz", s.protect(s.handleReadyz))
	// The live-telemetry mux: server-wide /metrics and the retained plan
	// renderings. The flight recorders are per tenant, so they mount on
	// per-tenant paths below rather than through httpdebug.Options.
	httpdebug.Mount(s.mux, httpdebug.Options{Metrics: s.metrics, Plans: s.plans, Spans: s.spans, Service: "mozartd"})
	s.mux.HandleFunc("/debug/mozart/flight", s.protect(s.handleFlightIndex))
	for name, t := range s.tenants {
		t := t
		s.mux.HandleFunc("/debug/mozart/flight/"+name, s.protect(func(w http.ResponseWriter, r *http.Request) {
			// ?trace=<id> resolves one recording by the trace id stamped on
			// its session events — the link a 500/504 body's flight ref
			// carries, so a failing request's post-mortem is one GET away.
			if id := r.URL.Query().Get("trace"); id != "" {
				rec, ok := t.recorder.Find(id)
				if !ok {
					writeError(w, http.StatusNotFound, errorDetail{
						Message: fmt.Sprintf("no retained recording for trace %q", id), TraceID: id})
					return
				}
				writeJSON(w, http.StatusOK, rec)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_ = t.recorder.Dump(w)
		}))
	}
}

// Handler returns the server's HTTP handler; the caller owns the listener
// (mozartd wires it into an http.Server, tests into httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Tenant returns the named tenant, or nil.
func (s *Server) Tenant(name string) *Tenant { return s.tenants[name] }

// TenantNames returns the tenants in registration order.
func (s *Server) TenantNames() []string { return append([]string(nil), s.order...) }

// Metrics returns the server-wide metrics sink behind /metrics.
func (s *Server) Metrics() *obs.Metrics { return s.metrics }

// GlobalGovernor returns the shared Governor tenant budgets are carved
// from.
func (s *Server) GlobalGovernor() *core.Governor { return s.global }

// InFlight returns the number of currently-running evaluations.
func (s *Server) InFlight() int64 { return s.inFlight.Load() }

// State reports the lifecycle state: serving, draining, or stopped.
func (s *Server) State() string {
	switch s.state.Load() {
	case stDraining:
		return StateDraining
	case stStopped:
		return StateStopped
	default:
		return StateServing
	}
}

// ---- lifecycle -------------------------------------------------------------

// BeginDrain flips the server to draining: /readyz turns 503 and new
// evaluations are refused, while in-flight ones keep running.
func (s *Server) BeginDrain() {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	s.state.CompareAndSwap(stServing, stDraining)
}

// Drain runs the graceful-shutdown state machine: stop admitting, wait up
// to Config.DrainTimeout for in-flight evaluations, force-cancel the
// stragglers (workers stop at their next batch boundary), return every
// tenant's carve to the shared Governor, and verify quiescence. Safe to
// call once; returns the result of Quiesced.
func (s *Server) Drain() error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	timer := time.NewTimer(s.cfg.DrainTimeout)
	defer timer.Stop()
	select {
	case <-done:
	case <-timer.C:
		s.cfg.Logf("serve: drain deadline (%v) passed with %d in flight; force-cancelling",
			s.cfg.DrainTimeout, s.inFlight.Load())
		s.hardCancel()
		<-done // cancellation stops workers at batch boundaries; bounded
	}
	s.closeTenants()
	s.state.Store(stStopped)
	return s.Quiesced()
}

// Quiesced verifies the post-drain invariants: nothing in flight, every
// tenant governor empty, and the shared Governor's carves all returned.
func (s *Server) Quiesced() error {
	if n := s.inFlight.Load(); n != 0 {
		return fmt.Errorf("serve: %d evaluations still in flight", n)
	}
	for _, name := range s.order {
		if in := s.tenants[name].gov.InUse(); in != 0 {
			return fmt.Errorf("serve: tenant %q governor holds %d bytes after drain", name, in)
		}
	}
	if s.state.Load() == stStopped {
		if in := s.global.InUse(); in != 0 {
			return fmt.Errorf("serve: shared governor holds %d bytes after tenant close", in)
		}
		// Byte-clean also means disk-clean: every out-of-core evaluation's
		// spill store must have been removed with its session.
		if open := spill.OpenStores(); open != 0 {
			return fmt.Errorf("serve: %d spill stores still open after drain", open)
		}
	}
	return nil
}

// ---- request plumbing ------------------------------------------------------

// admit takes the global in-flight slot and registers with the drain
// WaitGroup, under the state read-lock so BeginDrain serializes against
// in-progress admissions. The returned release undoes both.
func (s *Server) admit() (release func(), ok bool) {
	s.stateMu.RLock()
	defer s.stateMu.RUnlock()
	if s.state.Load() != stServing {
		return nil, false
	}
	for {
		n := s.inFlight.Load()
		if n >= int64(s.cfg.MaxInFlight) {
			return nil, false
		}
		if s.inFlight.CompareAndSwap(n, n+1) {
			break
		}
	}
	s.wg.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			s.inFlight.Add(-1)
			s.wg.Done()
		})
	}, true
}

// protect panic-isolates a handler: a panic in the serving path (e.g. a
// malformed capture-phase call that panics before evaluation starts)
// becomes a structured 500 instead of a torn connection.
func (s *Server) protect(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.cfg.Logf("serve: panic in %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
				writeError(w, http.StatusInternalServerError, errorDetail{
					Origin:  "panic",
					Message: fmt.Sprint(v),
				})
			}
		}()
		h(w, r)
	}
}

// ---- request/response shapes -----------------------------------------------

type evalRequest struct {
	Workload  string `json:"workload"`
	Variant   string `json:"variant,omitempty"`
	Scale     int    `json:"scale,omitempty"`
	Threads   int    `json:"threads,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
	Session   string `json:"session,omitempty"`
	Tenant    string `json:"tenant,omitempty"` // alternative to X-Mozart-Tenant
	// Degrade opts the request into graceful degradation: when the
	// tenant's byte budget cannot cover it, the evaluation runs out of
	// core (streaming windows, spilled partials) instead of shedding 429.
	Degrade bool `json:"degrade,omitempty"`
}

type evalResponse struct {
	Tenant       string   `json:"tenant"`
	Session      string   `json:"session"`
	Workload     string   `json:"workload"`
	Variant      string   `json:"variant"`
	Checksum     float64  `json:"checksum"`
	ElapsedMS    float64  `json:"elapsed_ms"`
	SessionEvals int64    `json:"session_evals"`
	Mode         string   `json:"mode"`                  // highest pressure level: normal | constrained | out-of-core
	SpillBytes   int64    `json:"spill_bytes,omitempty"` // payload bytes spilled while out of core
	Degraded     []string `json:"degraded,omitempty"`    // open breakers after the run
	TraceID      string   `json:"trace_id"`              // key into /debug/mozart/spans/<id>
}

type errorDetail struct {
	Origin  string `json:"origin,omitempty"` // timeout | canceled | shed | panic | a FaultOrigin
	Stage   int    `json:"stage,omitempty"`
	Call    string `json:"call,omitempty"`
	Message string `json:"message"`
	Flight  string `json:"flight,omitempty"`   // flight-recorder lookup path for post-mortems
	TraceID string `json:"trace_id,omitempty"` // the request's trace: key into /debug/mozart/spans/<id>
}

type errorBody struct {
	Error errorDetail `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, d errorDetail) {
	writeJSON(w, status, errorBody{Error: d})
}

// shed writes the load-shedding response: 429 plus a jittered Retry-After
// in [1, 3] seconds, the "come back, don't queue" contract. The jitter
// desynchronizes retry storms — shedding a burst with a constant delay
// just reschedules the same burst. The body echoes the request's trace id
// so even refused requests stay correlatable.
func (s *Server) shed(w http.ResponseWriter, traceID, msg string) {
	s.rngMu.Lock()
	retry := 1 + s.rng.Intn(3)
	s.rngMu.Unlock()
	w.Header().Set("Retry-After", strconv.Itoa(retry))
	writeError(w, http.StatusTooManyRequests, errorDetail{Origin: "shed", Message: msg, TraceID: traceID})
}

// statusWriter captures the response status so the request finalizer can
// classify the outcome (SLO good/bad, log line) after the handler ran.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// pressureWatch distills one request's pressure episode from its event
// stream: the highest level entered and the bytes spilled, reported back
// to the client in the response.
type pressureWatch struct {
	mu    sync.Mutex
	level core.PressureLevel
	spill int64
}

func (p *pressureWatch) Emit(e obs.Event) {
	switch e.Kind {
	case obs.EvPressure:
		var l core.PressureLevel
		switch e.Detail {
		case core.PressureConstrained.String():
			l = core.PressureConstrained
		case core.PressureOutOfCore.String():
			l = core.PressureOutOfCore
		}
		p.mu.Lock()
		if l > p.level {
			p.level = l
		}
		p.mu.Unlock()
	case obs.EvSpill:
		if e.Detail == "append" {
			p.mu.Lock()
			p.spill += e.Bytes
			p.mu.Unlock()
		}
	}
}

// snapshot returns the episode's peak level and spilled bytes.
func (p *pressureWatch) snapshot() (core.PressureLevel, int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.level, p.spill
}

// ---- handlers --------------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Liveness: the process is up, even while draining.
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	state := s.State()
	status := http.StatusOK
	if state != StateServing {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{
		"state":     state,
		"in_flight": s.inFlight.Load(),
	})
}

func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	out := make([]TenantStatus, 0, len(s.order))
	for _, name := range s.order {
		out = append(out, s.tenants[name].status())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleFlightIndex(w http.ResponseWriter, r *http.Request) {
	names := append([]string(nil), s.order...)
	sort.Strings(names)
	links := make([]string, len(names))
	for i, n := range names {
		links[i] = "/debug/mozart/flight/" + n
	}
	writeJSON(w, http.StatusOK, map[string]any{"tenants": links})
}

func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	// Trace identity first, before any outcome is possible: parse the
	// caller's W3C traceparent or mint one, so every response — success,
	// shed, refused, failed — carries the trace id in header and body, and
	// every request leaves a span tree in the ring.
	tc, hadTraceparent := obs.ParseTraceparent(r.Header.Get("traceparent"))
	if !hadTraceparent {
		tc = obs.NewTraceContext()
	}
	rec := obs.NewSpanRecorder(tc, "POST /v1/eval")
	traceID := tc.TraceID.String()
	sw := &statusWriter{ResponseWriter: w}
	w = sw
	w.Header().Set("traceparent", rec.Context().Traceparent())

	var (
		req        evalRequest
		tenant     *Tenant
		tenantName string
		evalErr    string // the evaluation error, for the root span
	)
	watch := &pressureWatch{}
	start := time.Now()
	defer func() {
		latency := time.Since(start)
		status := sw.status()
		outcome := outcomeForStatus(status)
		level, _ := watch.snapshot()
		rec.Annotate("tenant", tenantName)
		rec.Annotate("outcome", outcome)
		rec.AnnotateInt("http.status_code", int64(status))
		s.spans.Add(rec.Finish(evalErr))
		if tenant != nil {
			if good, counted := tenant.slo.classify(status, latency); counted {
				tenant.slo.record(time.Now(), good, latency, traceID)
			}
		}
		s.logRequest(traceID, tenantName, req, level.String(), status, outcome, latency)
	}()

	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		writeError(w, http.StatusMethodNotAllowed, errorDetail{Message: "POST only", TraceID: traceID})
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, errorDetail{Message: "bad request body: " + err.Error(), TraceID: traceID})
		return
	}
	tenantName = r.Header.Get("X-Mozart-Tenant")
	if tenantName == "" {
		tenantName = req.Tenant
	}
	if tenantName == "" && len(s.order) == 1 {
		tenantName = s.order[0]
	}
	t := s.tenants[tenantName]
	if t == nil {
		writeError(w, http.StatusNotFound, errorDetail{Message: fmt.Sprintf("unknown tenant %q", tenantName), TraceID: traceID})
		return
	}
	tenant = t
	rec.Annotate("workload", req.Workload)
	rec.Annotate("variant", variantOrDefault(req.Variant))
	registry := t.registry
	if registry == nil {
		registry = s.cfg.Registry
	}
	fn := registry[req.Workload]
	if fn == nil {
		writeError(w, http.StatusNotFound, errorDetail{Message: fmt.Sprintf("unknown workload %q", req.Workload), TraceID: traceID})
		return
	}

	// Defaults and clamps before any admission math, so the byte estimate
	// prices the run the evaluation will actually do.
	if req.Scale <= 0 {
		req.Scale = s.cfg.DefaultScale
	}
	if req.Threads <= 0 {
		req.Threads = 2
	}
	if req.Threads > s.cfg.MaxWorkers {
		req.Threads = s.cfg.MaxWorkers
	}

	// Admission. Order: global cap, tenant cap, tenant byte reservation.
	// Every refusal is an immediate 429 — the server never queues requests.
	releaseGlobal, ok := s.admit()
	if !ok {
		if s.State() != StateServing {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, errorDetail{Origin: "draining", Message: "server is draining", TraceID: traceID})
			return
		}
		t.shed.Add(1)
		s.shed(w, traceID, fmt.Sprintf("global in-flight cap (%d) exhausted", s.cfg.MaxInFlight))
		return
	}
	defer releaseGlobal()
	if !t.acquire() {
		t.shed.Add(1)
		s.shed(w, traceID, fmt.Sprintf("tenant %q in-flight cap (%d) exhausted", tenantName, t.maxInFlight))
		return
	}
	defer t.release()
	demand := estimateRequestBytes(req.Scale)
	releaseHold, ok := t.gov.TryAdmit(t.requestHold(demand))
	if !ok {
		if !req.Degrade {
			t.shed.Add(1)
			s.shed(w, traceID, fmt.Sprintf("tenant %q memory budget exhausted (%d of %d bytes in use, request models %d)",
				tenantName, t.gov.InUse(), t.gov.Budget(), demand))
			return
		}
		// Degradation preferred over 429: run without a request-level hold.
		// The streaming executor admits window by window against the tenant
		// governor, so actual reservations stay bounded by the budget even
		// though the nominal demand did not fit.
		releaseHold = func() {}
		t.degraded.Add(1)
	}
	defer releaseHold()

	// Deadline: client ask, clamped by the server, rooted in the request
	// context so client disconnects cancel partial work; forced drain
	// cancels it too.
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	stopHard := context.AfterFunc(s.hardCtx, cancel)
	defer stopHard()

	// Tenant-scoped session options: the per-request flight handle, the
	// tenant metrics and breaker group, the server-wide sinks, and the
	// request's span recorder — one event stream, fanned out to all of
	// them. The Trace stamp keys the shared sinks' retained state (latency
	// exemplars, flight recordings) by this request's trace id.
	evalTC := rec.Context()
	flight := t.recorder.Session()
	opts := core.Options{
		Workers:        req.Threads,
		Governor:       t.gov,
		Breakers:       t.breakers,
		FallbackPolicy: s.cfg.Fallback,
		RetryPolicy:    s.cfg.Retry,
		OutOfCore:      req.Degrade,
		SpillDir:       s.cfg.SpillDir,
		Trace:          &evalTC,
		Tracer:         obs.Multi(s.metrics, t.metrics, flight, watch, rec),
		OnPlan: func(p *plan.Plan) {
			s.plans.OnPlan(p)
			flight.OnPlan(p)
		},
		BaseContext: func() context.Context { return ctx },
	}
	if t.tuner != nil {
		// The tenant's warm tuner: a typed-nil guard matters here — leaving
		// the field unset for untuned tenants keeps their sessions on the
		// exact static path (no EvTune telemetry, no signature hashing).
		opts.Tuner = t.tuner
	}
	p := EvalParams{
		Workload: req.Workload,
		Variant:  req.Variant,
		Scale:    req.Scale,
		Threads:  req.Threads,
		Session:  req.Session,
	}
	evalStart := time.Now()
	checksum, err := fn(ctx, p, opts)
	elapsed := time.Since(evalStart)
	evals := t.touchSession(req.Session, err)
	if err != nil {
		evalErr = err.Error()
		s.writeEvalError(w, r, t, tenantName, traceID, err)
		return
	}
	t.served.Add(1)
	mode, spilled := watch.snapshot()
	writeJSON(w, http.StatusOK, evalResponse{
		Tenant:       tenantName,
		Session:      sessionKeyOrDefault(req.Session),
		Workload:     req.Workload,
		Variant:      variantOrDefault(req.Variant),
		Checksum:     checksum,
		ElapsedMS:    float64(elapsed.Microseconds()) / 1e3,
		SessionEvals: evals,
		Mode:         mode.String(),
		SpillBytes:   spilled,
		Degraded:     t.breakers.OpenNames(),
		TraceID:      traceID,
	})
}

// outcomeForStatus folds an HTTP status into the outcome vocabulary used
// by the request log and the root span.
func outcomeForStatus(status int) string {
	switch {
	case status == http.StatusOK:
		return "ok"
	case status == http.StatusTooManyRequests:
		return "shed"
	case status == http.StatusServiceUnavailable:
		return "draining"
	case status == http.StatusGatewayTimeout:
		return "timeout"
	case status == statusClientClosedRequest:
		return "canceled"
	case status >= 500:
		return "failed"
	default:
		return "rejected"
	}
}

// logRequest emits the one structured summary line per /v1/eval request
// (Config.Logger; nil logs nothing). Level tracks severity: 2xx info,
// client-side refusals warn, server faults error.
func (s *Server) logRequest(traceID, tenant string, req evalRequest, mode string, status int, outcome string, latency time.Duration) {
	if s.cfg.Logger == nil {
		return
	}
	lvl := slog.LevelInfo
	switch {
	case status >= 500:
		lvl = slog.LevelError
	case status != http.StatusOK:
		lvl = slog.LevelWarn
	}
	s.cfg.Logger.LogAttrs(context.Background(), lvl, "eval",
		slog.String("trace_id", traceID),
		slog.String("tenant", tenant),
		slog.String("workload", req.Workload),
		slog.String("variant", variantOrDefault(req.Variant)),
		slog.Int("scale", req.Scale),
		slog.String("mode", mode),
		slog.Int("status", status),
		slog.String("outcome", outcome),
		slog.Duration("latency", latency),
	)
}

func sessionKeyOrDefault(k string) string {
	if k == "" {
		return "default"
	}
	return k
}

func variantOrDefault(v string) string {
	if v == "" {
		return "mozart"
	}
	return v
}

// writeEvalError maps an evaluation failure onto the wire: deadline → 504,
// client disconnect / forced drain → 499, StageError → structured 500 with
// a flight-recorder reference, anything else → plain 500. Every body
// carries the trace id, and the flight reference is keyed by it, so the
// error, the flight recording, and the span tree all resolve to the same
// request.
func (s *Server) writeEvalError(w http.ResponseWriter, r *http.Request, t *Tenant, tenantName, traceID string, err error) {
	flightRef := "/debug/mozart/flight/" + tenantName + "?trace=" + traceID
	var st *core.StageError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		t.timedOut.Add(1)
		d := errorDetail{Origin: "timeout", Message: err.Error(), Flight: flightRef, TraceID: traceID}
		if errors.As(err, &st) {
			d.Stage, d.Call = st.Stage, st.Call
		}
		writeError(w, http.StatusGatewayTimeout, d)
	case errors.Is(err, context.Canceled):
		t.failed.Add(1)
		// Either the client went away or the drain deadline force-
		// cancelled us; the status is best-effort in the former case.
		writeError(w, statusClientClosedRequest, errorDetail{Origin: "canceled", Message: err.Error(), Flight: flightRef, TraceID: traceID})
	case errors.As(err, &st):
		t.failed.Add(1)
		writeError(w, http.StatusInternalServerError, errorDetail{
			Origin:  st.Origin.String(),
			Stage:   st.Stage,
			Call:    st.Call,
			Message: err.Error(),
			Flight:  flightRef,
			TraceID: traceID,
		})
	default:
		t.failed.Add(1)
		writeError(w, http.StatusInternalServerError, errorDetail{Message: err.Error(), Flight: flightRef, TraceID: traceID})
	}
}

// estimateRequestBytes is the nominal demand model priced at admission:
// scale elements flowing through a pipeline touches an input and an output
// array of float64s (the same first-order shape as the §5.2 working-set
// model; stage admission later charges the precise per-stage footprint).
func estimateRequestBytes(scale int) int64 {
	return int64(scale) * 8 * 2
}

// RetryAfter parses a response's Retry-After seconds (helper for load
// drivers; 0 when absent or malformed).
func RetryAfter(h http.Header) int {
	n, _ := strconv.Atoi(h.Get("Retry-After"))
	return n
}
