package serve

// Per-tenant SLO accounting in the SRE style: every finished request is
// classified good or bad against the tenant's latency objective, counts
// land in a sliding window of one-second buckets, and scrape-time queries
// derive multi-window burn rates — the ratio of the observed bad fraction
// to the error budget (1 − availability). A burn rate of 1.0 means the
// tenant is spending its budget exactly at the rate the objective allows;
// sustained values above ~14 on the short window are the classic page
// threshold. The tracker is clock-explicit (every method takes now) so
// tests pin hand-computed windows without sleeping.

import (
	"net/http"
	"sync"
	"time"
)

// Default objectives when a tenant declares none.
const (
	defaultSLOLatency      = 500 * time.Millisecond
	defaultSLOAvailability = 0.999
)

// sloWindowSeconds bounds the sliding window: one bucket per second, one
// hour deep — enough for the 1h burn window; the 5m window reads a prefix.
const sloWindowSeconds = 3600

// SLOConfig declares a tenant's service-level objectives.
type SLOConfig struct {
	// LatencyObjective is the good/bad latency threshold: a 200 served
	// within it is good, a slower 200 is bad (it spent error budget even
	// though it succeeded). Defaults to 500ms.
	LatencyObjective time.Duration
	// Availability is the target good fraction, e.g. 0.999 for "three
	// nines". 1 − Availability is the error budget the burn rates are
	// measured against. Defaults to 0.999.
	Availability float64
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.LatencyObjective <= 0 {
		c.LatencyObjective = defaultSLOLatency
	}
	if c.Availability <= 0 || c.Availability >= 1 {
		c.Availability = defaultSLOAvailability
	}
	return c
}

// sloBucket is one second of classified requests. worstNS/worstTrace track
// the slowest counted request in the second, so a burn-rate alert links
// straight to the span tree of a concrete offending request.
type sloBucket struct {
	sec        int64 // unix second this bucket currently represents
	good, bad  int64
	worstNS    int64
	worstTrace string
}

// sloTracker is one tenant's sliding-window SLO state. Buckets are a
// fixed ring indexed by unix second modulo the window; a bucket whose
// stamp is stale is reset on first touch, so recording is O(1) and
// queries are O(window seconds) with no background sweeper.
type sloTracker struct {
	cfg SLOConfig

	mu      sync.Mutex
	buckets [sloWindowSeconds]sloBucket
	// Cumulative totals back the monotonic mozart_slo_requests_total
	// counter (the window buckets forget, counters must not).
	totalGood, totalBad int64
}

func newSLOTracker(cfg SLOConfig) *sloTracker {
	return &sloTracker{cfg: cfg.withDefaults()}
}

// classify maps a finished request's HTTP status and latency onto the SLO
// outcome. Only requests the tenant's evaluation path actually owned are
// counted: a 200 is good iff it met the latency objective; 5xx (including
// 504 deadline expiry) is bad. Shed (429), draining (503), unknown-target
// (404), malformed (400), and client-abandoned (499) responses are outside
// the SLO — they consume no error budget and bank no good count, matching
// the shed-never-queue contract where a 429 is the server protecting the
// objective, not violating it.
func (s *sloTracker) classify(status int, latency time.Duration) (good, counted bool) {
	switch {
	case status == http.StatusOK:
		return latency <= s.cfg.LatencyObjective, true
	case status == http.StatusTooManyRequests,
		status == http.StatusServiceUnavailable,
		status == statusClientClosedRequest:
		return false, false
	case status >= 500:
		return false, true
	default:
		return false, false
	}
}

// record lands one classified request in the window and the cumulative
// totals.
func (s *sloTracker) record(now time.Time, good bool, latency time.Duration, traceID string) {
	sec := now.Unix()
	s.mu.Lock()
	defer s.mu.Unlock()
	b := &s.buckets[sloIdx(sec)]
	if b.sec != sec {
		*b = sloBucket{sec: sec}
	}
	if good {
		b.good++
		s.totalGood++
	} else {
		b.bad++
		s.totalBad++
	}
	if ns := latency.Nanoseconds(); ns > b.worstNS {
		b.worstNS = ns
		b.worstTrace = traceID
	}
}

// window tallies the counted requests over the dur ending at now, plus the
// slowest request seen in it.
func (s *sloTracker) window(now time.Time, dur time.Duration) (good, bad int64, worstNS int64, worstTrace string) {
	secs := int64(dur / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > sloWindowSeconds {
		secs = sloWindowSeconds
	}
	nowSec := now.Unix()
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := int64(0); i < secs; i++ {
		sec := nowSec - i
		b := &s.buckets[sloIdx(sec)]
		if b.sec != sec {
			continue // bucket recycled by a different second: outside the window
		}
		good += b.good
		bad += b.bad
		if b.worstNS > worstNS {
			worstNS = b.worstNS
			worstTrace = b.worstTrace
		}
	}
	return good, bad, worstNS, worstTrace
}

// burnRate is the burn rate over the dur ending at now: the bad fraction
// divided by the error budget (1 − availability). 0 with no counted
// traffic; 1/(1−availability) when everything is bad.
func (s *sloTracker) burnRate(now time.Time, dur time.Duration) float64 {
	good, bad, _, _ := s.window(now, dur)
	total := good + bad
	if total == 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / (1 - s.cfg.Availability)
}

// totals returns the cumulative good/bad counts (monotonic).
func (s *sloTracker) totals() (good, bad int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.totalGood, s.totalBad
}

// sloIdx maps a unix second onto its ring slot (non-negative even for
// pre-epoch test clocks).
func sloIdx(sec int64) int {
	i := sec % sloWindowSeconds
	if i < 0 {
		i += sloWindowSeconds
	}
	return int(i)
}
