package serve_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mozart/internal/core"
	"mozart/internal/serve"
)

// echoRegistry returns a registry whose single "echo" workload returns a
// fixed checksum immediately.
func echoRegistry(v float64) map[string]serve.EvalFunc {
	return map[string]serve.EvalFunc{
		"echo": func(ctx context.Context, p serve.EvalParams, opts core.Options) (float64, error) {
			return v, nil
		},
	}
}

// blockingRegistry returns a registry whose "block" workload parks until
// release closes or the request context dies, plus the started channel that
// reports each entry.
func blockingRegistry(started chan struct{}, release chan struct{}) map[string]serve.EvalFunc {
	return map[string]serve.EvalFunc{
		"block": func(ctx context.Context, p serve.EvalParams, opts core.Options) (float64, error) {
			started <- struct{}{}
			select {
			case <-release:
				return 1, nil
			case <-ctx.Done():
				return 0, ctx.Err()
			}
		},
	}
}

func newTestServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postEval(t *testing.T, ts *httptest.Server, tenant, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/eval", strings.NewReader(body))
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	if tenant != "" {
		req.Header.Set("X-Mozart-Tenant", tenant)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("POST /v1/eval: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, b
}

type evalResult struct {
	Tenant       string   `json:"tenant"`
	Session      string   `json:"session"`
	Checksum     float64  `json:"checksum"`
	SessionEvals int64    `json:"session_evals"`
	Degraded     []string `json:"degraded"`
}

type errResult struct {
	Error struct {
		Origin  string `json:"origin"`
		Stage   int    `json:"stage"`
		Call    string `json:"call"`
		Message string `json:"message"`
		Flight  string `json:"flight"`
	} `json:"error"`
}

func TestEvalSuccessAndSessionLedger(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Registry: echoRegistry(42)})
	for i := 1; i <= 2; i++ {
		resp, body := postEval(t, ts, "", `{"workload":"echo","session":"s1"}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("eval %d: status %d (%s)", i, resp.StatusCode, body)
		}
		var er evalResult
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatalf("eval %d: bad body %s: %v", i, body, err)
		}
		if er.Checksum != 42 {
			t.Fatalf("eval %d: checksum %v, want 42", i, er.Checksum)
		}
		if er.Tenant != "default" || er.Session != "s1" {
			t.Fatalf("eval %d: tenant/session %q/%q", i, er.Tenant, er.Session)
		}
		if er.SessionEvals != int64(i) {
			t.Fatalf("eval %d: session_evals %d, want %d (warm session ledger)", i, er.SessionEvals, i)
		}
	}
}

func TestNotFoundAndBadRequests(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{
		Registry: echoRegistry(1),
		Tenants: []serve.TenantConfig{
			{Name: "a", BudgetBytes: 1 << 20},
			{Name: "b", BudgetBytes: 1 << 20},
		},
	})
	if resp, _ := postEval(t, ts, "nosuch", `{"workload":"echo"}`); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown tenant: status %d, want 404", resp.StatusCode)
	}
	// With several tenants, a request naming none is also unknown.
	if resp, _ := postEval(t, ts, "", `{"workload":"echo"}`); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("no tenant among several: status %d, want 404", resp.StatusCode)
	}
	if resp, _ := postEval(t, ts, "a", `{"workload":"nosuch"}`); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown workload: status %d, want 404", resp.StatusCode)
	}
	if resp, _ := postEval(t, ts, "a", `{not json`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: status %d, want 400", resp.StatusCode)
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/eval")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET eval: status %d, want 405", resp.StatusCode)
	}
}

func TestOverBudgetTenantSheds(t *testing.T) {
	srv, ts := newTestServer(t, serve.Config{
		Registry: echoRegistry(1),
		Tenants:  []serve.TenantConfig{{Name: "tiny", BudgetBytes: 4 << 10}},
	})
	// scale 65536 models 1 MiB of arrays — far over tiny's 4 KiB carve.
	resp, body := postEval(t, ts, "tiny", `{"workload":"echo","scale":65536}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d (%s), want 429", resp.StatusCode, body)
	}
	if serve.RetryAfter(resp.Header) <= 0 {
		t.Fatalf("429 without Retry-After")
	}
	var er errResult
	if err := json.Unmarshal(body, &er); err != nil || er.Error.Origin != "shed" {
		t.Fatalf("shed body %s (err %v), want origin shed", body, err)
	}
	if got := srv.Tenant("tiny").Shed(); got != 1 {
		t.Fatalf("tenant shed counter = %d, want 1", got)
	}
	if got := srv.Tenant("tiny").Governor().InUse(); got != 0 {
		t.Fatalf("tenant governor holds %d bytes after shed", got)
	}
}

func TestTenantInFlightCapSheds(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	_, ts := newTestServer(t, serve.Config{
		Registry: blockingRegistry(started, release),
		Tenants:  []serve.TenantConfig{{Name: "a", BudgetBytes: 64 << 20, MaxInFlight: 1}},
	})
	done := make(chan int, 1)
	go func() {
		resp, _ := postEval(t, ts, "a", `{"workload":"block","timeout_ms":5000}`)
		done <- resp.StatusCode
	}()
	<-started
	resp, body := postEval(t, ts, "a", `{"workload":"block"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d (%s), want 429", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "in-flight cap") {
		t.Fatalf("shed body %s does not name the in-flight cap", body)
	}
	close(release)
	if got := <-done; got != http.StatusOK {
		t.Fatalf("first request finished %d, want 200", got)
	}
}

func TestGlobalInFlightCapSheds(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	_, ts := newTestServer(t, serve.Config{
		Registry:    blockingRegistry(started, release),
		MaxInFlight: 1,
		Tenants: []serve.TenantConfig{
			{Name: "a", BudgetBytes: 16 << 20},
			{Name: "b", BudgetBytes: 16 << 20},
		},
	})
	done := make(chan int, 1)
	go func() {
		resp, _ := postEval(t, ts, "a", `{"workload":"block","timeout_ms":5000}`)
		done <- resp.StatusCode
	}()
	<-started
	// A different tenant is shed by the *global* cap.
	resp, body := postEval(t, ts, "b", `{"workload":"block"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("tenant b: status %d (%s), want 429", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "global in-flight cap") {
		t.Fatalf("shed body %s does not name the global cap", body)
	}
	close(release)
	if got := <-done; got != http.StatusOK {
		t.Fatalf("first request finished %d, want 200", got)
	}
}

func TestDeadlineMapsTo504(t *testing.T) {
	srv, ts := newTestServer(t, serve.Config{
		Registry: map[string]serve.EvalFunc{
			"wait": func(ctx context.Context, p serve.EvalParams, opts core.Options) (float64, error) {
				<-ctx.Done()
				return 0, ctx.Err()
			},
		},
	})
	resp, body := postEval(t, ts, "", `{"workload":"wait","timeout_ms":30}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, body)
	}
	var er errResult
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Error.Origin != "timeout" || er.Error.Flight == "" {
		t.Fatalf("error detail %+v: want origin timeout with a flight reference", er.Error)
	}
	st := srv.Tenant("default")
	if st.Governor().InUse() != 0 {
		t.Fatalf("governor holds bytes after timeout")
	}
}

func TestClientTimeoutClampedByMaxTimeout(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{
		MaxTimeout: 50 * time.Millisecond,
		Registry: map[string]serve.EvalFunc{
			"wait": func(ctx context.Context, p serve.EvalParams, opts core.Options) (float64, error) {
				<-ctx.Done()
				return 0, ctx.Err()
			},
		},
	})
	// The client asks for 60s; the server's clamp must bound the request.
	start := time.Now()
	resp, _ := postEval(t, ts, "", `{"workload":"wait","timeout_ms":60000}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("request ran %v despite a 50ms MaxTimeout clamp", elapsed)
	}
}

func TestCanceledMapsTo499(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{
		Registry: map[string]serve.EvalFunc{
			"canceled": func(ctx context.Context, p serve.EvalParams, opts core.Options) (float64, error) {
				return 0, fmt.Errorf("evaluation died: %w", context.Canceled)
			},
		},
	})
	resp, body := postEval(t, ts, "", `{"workload":"canceled"}`)
	if resp.StatusCode != 499 {
		t.Fatalf("status %d (%s), want 499", resp.StatusCode, body)
	}
}

func TestStageErrorMapsToStructured500(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{
		Registry: map[string]serve.EvalFunc{
			"stagefail": func(ctx context.Context, p serve.EvalParams, opts core.Options) (float64, error) {
				return 0, &core.StageError{Stage: 2, Call: "vdAdd", Origin: core.OriginSplit, Err: errors.New("boom")}
			},
		},
	})
	resp, body := postEval(t, ts, "", `{"workload":"stagefail"}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d (%s), want 500", resp.StatusCode, body)
	}
	var er errResult
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Error.Origin != "split" || er.Error.Stage != 2 || er.Error.Call != "vdAdd" {
		t.Fatalf("error detail %+v: want origin split, stage 2, call vdAdd", er.Error)
	}
	if !strings.Contains(er.Error.Flight, "/debug/mozart/flight/default") {
		t.Fatalf("error detail %+v lacks the flight-recorder reference", er.Error)
	}
}

func TestPanicIsolation(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{
		Registry: map[string]serve.EvalFunc{
			"panic": func(ctx context.Context, p serve.EvalParams, opts core.Options) (float64, error) {
				panic("handler bug")
			},
			"echo": func(ctx context.Context, p serve.EvalParams, opts core.Options) (float64, error) {
				return 7, nil
			},
		},
	})
	resp, body := postEval(t, ts, "", `{"workload":"panic"}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panic: status %d (%s), want 500", resp.StatusCode, body)
	}
	var er errResult
	if err := json.Unmarshal(body, &er); err != nil || er.Error.Origin != "panic" {
		t.Fatalf("panic body %s (err %v), want structured origin panic", body, err)
	}
	// The server survives and keeps serving.
	if resp, _ := postEval(t, ts, "", `{"workload":"echo"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-panic eval: status %d, want 200", resp.StatusCode)
	}
}

func TestDrainLifecycle(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	srv, ts := newTestServer(t, serve.Config{
		Registry:     blockingRegistry(started, release),
		DrainTimeout: 5 * time.Second,
	})

	ready := func() int {
		resp, err := ts.Client().Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := ready(); got != http.StatusOK {
		t.Fatalf("readyz while serving: %d, want 200", got)
	}

	done := make(chan int, 1)
	go func() {
		resp, _ := postEval(t, ts, "", `{"workload":"block","timeout_ms":5000}`)
		done <- resp.StatusCode
	}()
	<-started
	srv.BeginDrain()

	if got := ready(); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d, want 503", got)
	}
	resp, _ := postEval(t, ts, "", `{"workload":"block"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("eval while draining: %d, want 503", resp.StatusCode)
	}
	if serve.RetryAfter(resp.Header) <= 0 {
		t.Fatalf("draining 503 without Retry-After")
	}
	// healthz stays live through the drain.
	hresp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining: %d, want 200", hresp.StatusCode)
	}

	// The in-flight evaluation finishes; drain completes cleanly.
	close(release)
	if got := <-done; got != http.StatusOK {
		t.Fatalf("in-flight request during drain finished %d, want 200", got)
	}
	if err := srv.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if srv.State() != serve.StateStopped {
		t.Fatalf("state after drain %q, want stopped", srv.State())
	}
	if got := srv.GlobalGovernor().InUse(); got != 0 {
		t.Fatalf("shared governor holds %d bytes after drain", got)
	}
}

func TestDrainForceCancelsStragglers(t *testing.T) {
	started := make(chan struct{}, 1)
	srv, ts := newTestServer(t, serve.Config{
		DrainTimeout: 50 * time.Millisecond,
		Registry: map[string]serve.EvalFunc{
			"stuck": func(ctx context.Context, p serve.EvalParams, opts core.Options) (float64, error) {
				started <- struct{}{}
				<-ctx.Done() // never finishes on its own
				return 0, ctx.Err()
			},
		},
	})
	done := make(chan int, 1)
	go func() {
		resp, _ := postEval(t, ts, "", `{"workload":"stuck","timeout_ms":9000}`)
		done <- resp.StatusCode
	}()
	<-started
	start := time.Now()
	if err := srv.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("drain took %v; force-cancel did not bound it", elapsed)
	}
	status := <-done
	if status != 499 && status != http.StatusGatewayTimeout {
		t.Fatalf("force-cancelled request finished %d, want 499 or 504", status)
	}
	if err := srv.Quiesced(); err != nil {
		t.Fatalf("Quiesced after forced drain: %v", err)
	}
}

func TestConstructionErrors(t *testing.T) {
	if _, err := serve.New(serve.Config{Tenants: []serve.TenantConfig{
		{Name: "a", BudgetBytes: 1 << 20},
		{Name: "a", BudgetBytes: 1 << 20},
	}}); err == nil {
		t.Fatalf("duplicate tenant accepted")
	}
	if _, err := serve.New(serve.Config{
		GlobalBudgetBytes: 1 << 20,
		Tenants: []serve.TenantConfig{
			{Name: "a", BudgetBytes: 1 << 20},
			{Name: "b", BudgetBytes: 1}, // over-carves the shared governor
		},
	}); err == nil {
		t.Fatalf("over-carved tenant budgets accepted")
	}
	if _, err := serve.New(serve.Config{Tenants: []serve.TenantConfig{{Name: "", BudgetBytes: 1}}}); err == nil {
		t.Fatalf("empty tenant name accepted")
	}
}

func TestStatusAndDebugEndpoints(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{
		Registry: echoRegistry(1),
		Tenants: []serve.TenantConfig{
			{Name: "a", BudgetBytes: 1 << 20},
			{Name: "b", BudgetBytes: 1 << 20},
		},
	})
	if resp, _ := postEval(t, ts, "a", `{"workload":"echo","scale":128}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("eval: %d", resp.StatusCode)
	}
	get := func(path string) (int, []byte) {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}
	code, body := get("/v1/tenants")
	if code != http.StatusOK {
		t.Fatalf("/v1/tenants: %d", code)
	}
	var statuses []serve.TenantStatus
	if err := json.Unmarshal(body, &statuses); err != nil {
		t.Fatalf("/v1/tenants body %s: %v", body, err)
	}
	if len(statuses) != 2 || statuses[0].Name != "a" || statuses[0].Served != 1 {
		t.Fatalf("tenant statuses %+v", statuses)
	}
	code, body = get("/debug/mozart/flight")
	if code != http.StatusOK || !strings.Contains(string(body), "/debug/mozart/flight/a") {
		t.Fatalf("flight index: %d %s", code, body)
	}
	if code, _ = get("/debug/mozart/flight/a"); code != http.StatusOK {
		t.Fatalf("tenant flight dump: %d", code)
	}
	if code, _ = get("/metrics"); code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	if code, _ = get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz: %d", code)
	}
}

// TestConcurrentMixedLoad hammers one tenant with short echo evaluations
// from many goroutines while status endpoints are polled — a -race
// regression net over the admission bookkeeping.
func TestConcurrentMixedLoad(t *testing.T) {
	srv, ts := newTestServer(t, serve.Config{
		Registry: echoRegistry(3),
		Tenants:  []serve.TenantConfig{{Name: "a", BudgetBytes: 32 << 20, MaxInFlight: 4}},
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				resp, _ := postEval(t, ts, "a", `{"workload":"echo","scale":1024}`)
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
					t.Errorf("status %d, want 200 or 429", resp.StatusCode)
					return
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		resp, err := ts.Client().Get(ts.URL + "/v1/tenants")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	wg.Wait()
	if err := srv.Drain(); err != nil {
		t.Fatalf("Drain after load: %v", err)
	}
}
