package serve_test

// End-to-end tracing through mozartd's serving layer: traceparent echo on
// success and error paths, the span tree behind /debug/mozart/spans, the
// OpenMetrics exemplar negotiation, trace-keyed flight lookups on timeout,
// and the SLO burn rates a violating tenant exposes. These run under the
// -race gate next to the soak.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mozart/internal/core"
	"mozart/internal/faultinject"
	"mozart/internal/obs"
	"mozart/internal/serve"
)

const (
	testTraceparent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	testTraceID     = "4bf92f3577b34da6a3ce929d0e0e4736"
)

func postTraced(t *testing.T, ts *httptest.Server, tenant, traceparent, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/eval", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Mozart-Tenant", tenant)
	}
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func getBody(t *testing.T, ts *httptest.Server, path, accept string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestTraceEchoSpanTreeExemplarAndBurn drives one traced evaluation
// through a real annotated pipeline and checks every surface the trace id
// must reach. The tenant's 1ns latency objective makes the success
// SLO-bad, so the burn rates must light up as well.
func TestTraceEchoSpanTreeExemplarAndBurn(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{
		Registry: pipelineRegistry(faultinject.New(0)),
		SLO:      serve.SLOConfig{LatencyObjective: time.Nanosecond, Availability: 0.999},
	})

	resp, body := postTraced(t, ts, "", testTraceparent, `{"workload":"pipeline","scale":4096}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("eval: %d (%s)", resp.StatusCode, body)
	}
	// The response traceparent carries the inbound trace id but a fresh
	// parent span (the request's root span), still sampled.
	tc, ok := obs.ParseTraceparent(resp.Header.Get("traceparent"))
	if !ok {
		t.Fatalf("response traceparent %q does not parse", resp.Header.Get("traceparent"))
	}
	if tc.TraceID.String() != testTraceID || !tc.Sampled {
		t.Fatalf("response traceparent %q: wrong trace id or unsampled", resp.Header.Get("traceparent"))
	}
	if tc.SpanID.String() == "00f067aa0ba902b7" {
		t.Fatalf("response parent span must be the server's root span, not the caller's")
	}
	var er struct {
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal(body, &er); err != nil || er.TraceID != testTraceID {
		t.Fatalf("body trace_id %q (err %v), want %s", er.TraceID, err, testTraceID)
	}

	// The span tree: request → session → stages → batches.
	resp, body = getBody(t, ts, "/debug/mozart/spans/"+testTraceID, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("span tree: %d (%s)", resp.StatusCode, body)
	}
	tree := string(body)
	for _, want := range []string{"trace " + testTraceID, "POST /v1/eval", "session", "plan", "stage 0", "batch [", `tenant="default"`, `outcome="ok"`} {
		if !strings.Contains(tree, want) {
			t.Errorf("span tree missing %q:\n%s", want, tree)
		}
	}
	resp, body = getBody(t, ts, "/debug/mozart/spans/"+testTraceID+"?format=otlp", "")
	if resp.StatusCode != http.StatusOK || !json.Valid(body) {
		t.Fatalf("otlp export: %d, valid JSON %v", resp.StatusCode, json.Valid(body))
	}

	// OpenMetrics negotiation: exemplar + # EOF only when asked for.
	resp, body = getBody(t, ts, "/metrics", "application/openmetrics-text;version=1.0.0;q=0.8,text/plain;q=0.5")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Fatalf("openmetrics content type %q", ct)
	}
	om := string(body)
	if !strings.HasSuffix(om, "# EOF\n") || !strings.Contains(om, `# {trace_id="`+testTraceID+`"}`) {
		t.Errorf("openmetrics exposition lacks exemplar or terminator")
	}
	if _, body = getBody(t, ts, "/metrics", ""); strings.Contains(string(body), "# EOF") {
		t.Errorf("classic exposition leaked OpenMetrics syntax")
	}

	// The 1ns objective makes the 200 bad: burn rates light up and the
	// worst trace is this request.
	_, body = getBody(t, ts, "/v1/tenants", "")
	var statuses []serve.TenantStatus
	if err := json.Unmarshal(body, &statuses); err != nil || len(statuses) != 1 {
		t.Fatalf("tenants: %s (%v)", body, err)
	}
	st := statuses[0]
	if st.SLOBad < 1 || st.SLOGood != 0 {
		t.Errorf("slo counts good=%d bad=%d, want the slow 200 counted bad", st.SLOGood, st.SLOBad)
	}
	if st.SLOBurnRate5m <= 0 || st.SLOBurnRate1h <= 0 {
		t.Errorf("burn rates (%g, %g) must be positive under a violated objective", st.SLOBurnRate5m, st.SLOBurnRate1h)
	}
	if st.SLOWorstTrace != testTraceID {
		t.Errorf("worst trace %q, want %s", st.SLOWorstTrace, testTraceID)
	}
	if _, body = getBody(t, ts, "/metrics", ""); !strings.Contains(string(body), `mozart_slo_burn_rate{tenant="default",window="5m"}`) {
		t.Errorf("plain scrape missing the slo burn-rate family:\n%s", body)
	}
}

// TestTraceMintedWhenAbsentOrMalformed: requests without a (valid)
// traceparent still get a full trace identity.
func TestTraceMintedWhenAbsentOrMalformed(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Registry: echoRegistry(1)})
	for _, inbound := range []string{"", "not-a-traceparent", "00-00000000000000000000000000000000-00f067aa0ba902b7-01"} {
		resp, body := postTraced(t, ts, "", inbound, `{"workload":"echo"}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("inbound %q: %d (%s)", inbound, resp.StatusCode, body)
		}
		tc, ok := obs.ParseTraceparent(resp.Header.Get("traceparent"))
		if !ok || tc.TraceID.IsZero() {
			t.Fatalf("inbound %q: minted traceparent %q invalid", inbound, resp.Header.Get("traceparent"))
		}
		var er struct {
			TraceID string `json:"trace_id"`
		}
		if err := json.Unmarshal(body, &er); err != nil || er.TraceID != tc.TraceID.String() {
			t.Fatalf("inbound %q: body trace %q != header trace %q", inbound, er.TraceID, tc.TraceID.String())
		}
	}
}

// TestErrorResponsesCarryTrace: even requests that never reach a workload
// answer with the trace id and leave a retrievable root span.
func TestErrorResponsesCarryTrace(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Registry: echoRegistry(1)})
	resp, body := postTraced(t, ts, "", testTraceparent, `{"workload":"no-such-workload"}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown workload: %d", resp.StatusCode)
	}
	var ed struct {
		Error struct {
			TraceID string `json:"trace_id"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &ed); err != nil || ed.Error.TraceID != testTraceID {
		t.Fatalf("404 body trace %q (%v), want %s", ed.Error.TraceID, err, testTraceID)
	}
	resp, body = getBody(t, ts, "/debug/mozart/spans/"+testTraceID, "")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `outcome="rejected"`) {
		t.Fatalf("rejected request left no span: %d\n%s", resp.StatusCode, body)
	}
}

// TestTimeoutTraceResolvesFlight: a deadline-exceeded evaluation's 504
// carries a trace-keyed flight reference that resolves to the recording of
// that very request.
func TestTimeoutTraceResolvesFlight(t *testing.T) {
	reg := map[string]serve.EvalFunc{
		"park": func(ctx context.Context, p serve.EvalParams, opts core.Options) (float64, error) {
			// Mimic the runtime's session lifecycle so the flight recorder
			// retains a trace-stamped recording for the doomed request.
			opts.Tracer.Emit(obs.Event{Kind: obs.EvSessionBegin, Time: time.Now(),
				Stage: -1, Worker: obs.RuntimeLane, Trace: opts.Trace})
			<-ctx.Done()
			opts.Tracer.Emit(obs.Event{Kind: obs.EvSessionEnd, Time: time.Now(),
				Stage: -1, Worker: obs.RuntimeLane, Detail: ctx.Err().Error(), Trace: opts.Trace})
			return 0, ctx.Err()
		},
	}
	_, ts := newTestServer(t, serve.Config{Registry: reg, MaxTimeout: time.Second})
	resp, body := postTraced(t, ts, "", testTraceparent, `{"workload":"park","timeout_ms":30}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("parked eval: %d (%s), want 504", resp.StatusCode, body)
	}
	var ed struct {
		Error struct {
			TraceID string `json:"trace_id"`
			Flight  string `json:"flight"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &ed); err != nil {
		t.Fatal(err)
	}
	if ed.Error.TraceID != testTraceID || !strings.Contains(ed.Error.Flight, "?trace="+testTraceID) {
		t.Fatalf("504 body lacks trace-keyed flight ref: %s", body)
	}
	resp, body = getBody(t, ts, ed.Error.Flight, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flight lookup: %d (%s)", resp.StatusCode, body)
	}
	var rec struct {
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal(body, &rec); err != nil || rec.TraceID != testTraceID {
		t.Fatalf("flight recording trace %q (%v), want %s", rec.TraceID, err, testTraceID)
	}
	// The timeout is SLO-bad: the tenant's burn rate reflects it.
	_, body = getBody(t, ts, "/v1/tenants", "")
	var statuses []serve.TenantStatus
	if err := json.Unmarshal(body, &statuses); err != nil || len(statuses) != 1 {
		t.Fatalf("tenants: %s (%v)", body, err)
	}
	if statuses[0].SLOBad < 1 || statuses[0].SLOBurnRate5m <= 0 {
		t.Errorf("504 not burning: bad=%d burn5m=%g", statuses[0].SLOBad, statuses[0].SLOBurnRate5m)
	}
}
