package serve

import (
	"context"
	"fmt"

	"mozart/internal/core"
	"mozart/internal/workloads"
)

// EvalParams is one evaluation request, already validated and defaulted by
// the server: which workload and variant, at what scale, with how many
// workers, for which logical session.
type EvalParams struct {
	Workload string
	Variant  string
	Scale    int
	Threads  int
	Session  string
}

// EvalFunc executes one evaluation. ctx carries the request deadline (and
// dies on client disconnect or forced drain); opts arrives pre-loaded with
// the tenant's scoped machinery — Governor, BreakerGroup, retry/fallback
// policies, tracer, plan hook, and a BaseContext mirroring ctx — and must
// be passed into every core.Session the function builds. The returned
// float64 is the workload's result checksum.
type EvalFunc func(ctx context.Context, p EvalParams, opts core.Options) (float64, error)

// WorkloadRegistry builds the default registry: the paper's 15 evaluation
// workloads by name, run through internal/workloads with the tenant's
// options threaded into every session.
func WorkloadRegistry() map[string]EvalFunc {
	out := map[string]EvalFunc{}
	for _, spec := range workloads.All() {
		spec := spec
		out[spec.Name] = func(ctx context.Context, p EvalParams, opts core.Options) (float64, error) {
			v := workloads.Variant(p.Variant)
			if p.Variant == "" {
				v = workloads.Mozart
			}
			if !spec.HasVariant(v) {
				return 0, fmt.Errorf("workload %s has no variant %q", spec.Name, v)
			}
			cfg := workloads.Config{
				Scale:        p.Scale,
				Threads:      p.Threads,
				Ctx:          ctx,
				Tracer:       opts.Tracer,
				OnPlan:       opts.OnPlan,
				Governor:     opts.Governor,
				Breakers:     opts.Breakers,
				Fallback:     opts.FallbackPolicy,
				Retry:        opts.RetryPolicy,
				StageTimeout: opts.StageTimeout,
				OutOfCore:    opts.OutOfCore,
				SpillDir:     opts.SpillDir,
				Tuner:        opts.Tuner,
				Trace:        opts.Trace,
			}
			if cfg.Scale <= 0 {
				cfg.Scale = spec.DefaultScale
			}
			return spec.Run(v, cfg)
		}
	}
	return out
}
