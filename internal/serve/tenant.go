package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mozart/internal/core"
	"mozart/internal/obs"
	"mozart/internal/tune"
)

// TenantConfig declares one tenant at server construction.
type TenantConfig struct {
	// Name keys the tenant; requests select it with the X-Mozart-Tenant
	// header (or the "tenant" request field).
	Name string
	// BudgetBytes is the tenant's memory budget. It is carved out of the
	// server's shared Governor at registration — the sum of all tenant
	// budgets must fit under Config.GlobalBudgetBytes — and gates both
	// request admission (shed with 429 when exhausted) and the §5.2
	// stage-level working set of the tenant's evaluations.
	BudgetBytes int64
	// MaxInFlight caps the tenant's concurrent evaluations. Defaults to 4.
	MaxInFlight int
	// Registry, when non-nil, overrides the server's workload registry
	// for this tenant (used by tests to give tenants different — e.g.
	// fault-injected — implementations of the same workload name).
	Registry map[string]EvalFunc
	// FlightDepth is how many evaluations the tenant's flight recorder
	// retains (<= 0 selects 8).
	FlightDepth int
	// SLO, when non-nil, overrides the server-wide Config.SLO objectives
	// for this tenant.
	SLO *SLOConfig
}

// Tenant is the per-tenant slice of the server: a memory budget carved
// from the shared Governor, its own circuit-breaker group, metrics sink,
// and flight recorder — so one tenant's faulting annotation, budget
// pressure, or post-mortem traffic cannot poison another's — plus the
// session ledger that keeps state warm across requests.
type Tenant struct {
	name        string
	budget      int64
	maxInFlight int64
	gov         *core.Governor
	carve       func() // returns the budget to the shared Governor
	breakers    *core.BreakerGroup
	metrics     *obs.Metrics
	recorder    *obs.FlightRecorder
	registry    map[string]EvalFunc
	// tuner is the tenant's calibrating BatchSource (Config.Tune). It lives
	// in the warm ledger — per-signature calibration state accumulates
	// across requests even though each request builds a fresh core.Session
	// — and is scoped per tenant so one tenant's traffic never perturbs
	// another's batch choices. Nil when tuning is off.
	tuner *tune.Tuner
	// slo classifies every finished request against the tenant's latency
	// and availability objectives and derives the multi-window burn rates
	// surfaced on /metrics and /v1/tenants. Always non-nil.
	slo *sloTracker

	inFlight atomic.Int64
	served   atomic.Int64 // 200s
	shed     atomic.Int64 // 429s
	timedOut atomic.Int64 // 504s
	failed   atomic.Int64 // 5xx evaluation failures
	degraded atomic.Int64 // requests run out-of-core instead of shedding

	mu       sync.Mutex
	sessions map[string]*sessionState
}

// sessionState is the warm per-(tenant, session-key) ledger: evaluation
// counts and liveness survive across requests even though each request
// builds a fresh core.Session (the breaker group and governor carry the
// heavyweight warm state).
type sessionState struct {
	evals    int64
	errors   int64
	created  time.Time
	lastUsed time.Time
}

func newTenant(tc TenantConfig, global *core.Governor, pol core.BreakerPolicy, tuneCfg *tune.Config, slo SLOConfig) (*Tenant, error) {
	if tc.Name == "" {
		return nil, fmt.Errorf("serve: tenant with empty name")
	}
	if tc.BudgetBytes <= 0 {
		return nil, fmt.Errorf("serve: tenant %q: budget must be positive, got %d", tc.Name, tc.BudgetBytes)
	}
	carve, ok := global.TryAdmit(tc.BudgetBytes)
	if !ok {
		return nil, fmt.Errorf("serve: tenant %q: budget %d does not fit in the shared governor (available %d of %d)",
			tc.Name, tc.BudgetBytes, global.Available(), global.Budget())
	}
	maxInFlight := tc.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = 4
	}
	t := &Tenant{
		name:        tc.Name,
		budget:      tc.BudgetBytes,
		maxInFlight: int64(maxInFlight),
		gov:         core.NewGovernor(tc.BudgetBytes),
		carve:       carve,
		breakers:    core.NewBreakerGroup(pol),
		metrics:     obs.NewMetrics(),
		recorder:    obs.NewFlightRecorder(tc.FlightDepth),
		registry:    tc.Registry,
		sessions:    map[string]*sessionState{},
	}
	if tuneCfg != nil {
		t.tuner = tune.New(*tuneCfg)
	}
	if tc.SLO != nil {
		slo = *tc.SLO
	}
	t.slo = newSLOTracker(slo)
	return t, nil
}

// close returns the tenant's carved budget to the shared Governor. Called
// only once all in-flight evaluations have drained.
func (t *Tenant) close() { t.carve() }

// Governor returns the tenant's stage-admission governor (its carved
// budget).
func (t *Tenant) Governor() *core.Governor { return t.gov }

// Breakers returns the tenant's circuit-breaker group.
func (t *Tenant) Breakers() *core.BreakerGroup { return t.breakers }

// Metrics returns the tenant's metrics sink.
func (t *Tenant) Metrics() *obs.Metrics { return t.metrics }

// Recorder returns the tenant's flight recorder.
func (t *Tenant) Recorder() *obs.FlightRecorder { return t.recorder }

// Tuner returns the tenant's calibrating BatchSource (nil when Config.Tune
// is off).
func (t *Tenant) Tuner() *tune.Tuner { return t.tuner }

// InFlight returns the tenant's currently-running evaluation count.
func (t *Tenant) InFlight() int64 { return t.inFlight.Load() }

// Shed returns how many of the tenant's requests were load-shed (429).
func (t *Tenant) Shed() int64 { return t.shed.Load() }

// DegradedRuns returns how many of the tenant's requests opted into
// out-of-core degradation and ran without a request-level hold after their
// modeled demand was refused.
func (t *Tenant) DegradedRuns() int64 { return t.degraded.Load() }

// acquire claims one of the tenant's in-flight slots; refusal means the
// request must shed, never queue.
func (t *Tenant) acquire() bool {
	for {
		n := t.inFlight.Load()
		if n >= t.maxInFlight {
			return false
		}
		if t.inFlight.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

func (t *Tenant) release() { t.inFlight.Add(-1) }

// requestHold computes the per-request byte reservation taken on the
// tenant governor while a request runs. The raw demand (the request's
// modeled arrays) is capped at budget/(2*maxInFlight): with at most
// maxInFlight concurrent holds the reservations can never claim more than
// half the budget, so stage-level admissions — which shrink toward
// whatever is available — always have headroom and can never deadlock
// against the holds. A demand larger than the whole budget is NOT capped;
// TryAdmit refuses it outright and the request sheds (it could never
// run within this tenant's carve).
func (t *Tenant) requestHold(demandBytes int64) int64 {
	cap := t.budget / (2 * t.maxInFlight)
	if cap < 1 {
		cap = 1
	}
	if demandBytes > t.budget {
		return demandBytes // TryAdmit will refuse: deterministic shed
	}
	if demandBytes > cap {
		return cap
	}
	return demandBytes
}

func (t *Tenant) touchSession(key string, evalErr error) (evals int64) {
	if key == "" {
		key = "default"
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	ss := t.sessions[key]
	if ss == nil {
		ss = &sessionState{created: now}
		t.sessions[key] = ss
	}
	ss.evals++
	if evalErr != nil {
		ss.errors++
	}
	ss.lastUsed = now
	return ss.evals
}

// Status returns a snapshot of the tenant's counters and budget use (the
// same shape GET /v1/tenants serves).
func (t *Tenant) Status() TenantStatus { return t.status() }

// TenantStatus is the JSON shape of one row of GET /v1/tenants.
type TenantStatus struct {
	Name           string   `json:"name"`
	BudgetBytes    int64    `json:"budget_bytes"`
	InUseBytes     int64    `json:"in_use_bytes"`
	HighWaterBytes int64    `json:"high_water_bytes"`
	InFlight       int64    `json:"in_flight"`
	MaxInFlight    int64    `json:"max_in_flight"`
	Served         int64    `json:"served"`
	Shed           int64    `json:"shed"`
	DegradedRuns   int64    `json:"degraded_runs"`
	TimedOut       int64    `json:"timed_out"`
	Failed         int64    `json:"failed"`
	BreakerTrips   int64    `json:"breaker_trips"`
	OpenBreakers   []string `json:"open_breakers,omitempty"`
	Sessions       int      `json:"sessions"`
	// Tuner counters (zero / absent when Config.Tune is off): how many
	// structural plan signatures the tenant's tuner tracks, and how many
	// of them are currently pinned to a calibrated batch.
	TunerSignatures int `json:"tuner_signatures,omitempty"`
	TunerCalibrated int `json:"tuner_calibrated,omitempty"`
	// SLO fields: the tenant's objectives, the cumulative good/bad
	// classification counts, the 5m/1h burn rates at snapshot time, and
	// the slowest counted request in the last hour with its trace id (the
	// direct link from a burn-rate alert to one request's span tree under
	// /debug/mozart/spans/<trace-id>).
	SLOLatencyObjectiveMS float64 `json:"slo_latency_objective_ms"`
	SLOAvailability       float64 `json:"slo_availability"`
	SLOGood               int64   `json:"slo_good"`
	SLOBad                int64   `json:"slo_bad"`
	SLOBurnRate5m         float64 `json:"slo_burn_rate_5m"`
	SLOBurnRate1h         float64 `json:"slo_burn_rate_1h"`
	SLOWorstLatencyMS     float64 `json:"slo_worst_latency_ms,omitempty"`
	SLOWorstTrace         string  `json:"slo_worst_trace,omitempty"`
}

func (t *Tenant) status() TenantStatus {
	t.mu.Lock()
	nsess := len(t.sessions)
	t.mu.Unlock()
	var nsigs, ncal int
	for _, ss := range t.tuner.States() {
		nsigs++
		if ss.Phase == tune.PhaseCalibrated {
			ncal++
		}
	}
	now := time.Now()
	sloGood, sloBad := t.slo.totals()
	_, _, worstNS, worstTrace := t.slo.window(now, time.Hour)
	return TenantStatus{
		Name:           t.name,
		BudgetBytes:    t.budget,
		InUseBytes:     t.gov.InUse(),
		HighWaterBytes: t.gov.HighWater(),
		InFlight:       t.inFlight.Load(),
		MaxInFlight:    t.maxInFlight,
		Served:         t.served.Load(),
		Shed:           t.shed.Load(),
		DegradedRuns:   t.degraded.Load(),
		TimedOut:       t.timedOut.Load(),
		Failed:         t.failed.Load(),
		BreakerTrips:   t.breakers.Trips(),
		OpenBreakers:   t.breakers.OpenNames(),
		Sessions:       nsess,

		TunerSignatures: nsigs,
		TunerCalibrated: ncal,

		SLOLatencyObjectiveMS: float64(t.slo.cfg.LatencyObjective.Microseconds()) / 1e3,
		SLOAvailability:       t.slo.cfg.Availability,
		SLOGood:               sloGood,
		SLOBad:                sloBad,
		SLOBurnRate5m:         t.slo.burnRate(now, 5*time.Minute),
		SLOBurnRate1h:         t.slo.burnRate(now, time.Hour),
		SLOWorstLatencyMS:     float64(worstNS) / 1e6,
		SLOWorstTrace:         worstTrace,
	}
}

// SLO returns the tenant's resolved objectives.
func (t *Tenant) SLO() SLOConfig { return t.slo.cfg }
