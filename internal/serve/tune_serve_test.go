package serve_test

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"mozart/internal/serve"
	"mozart/internal/tune"
)

// TestTenantTunerWarmAcrossRequests: with Config.Tune on, the tenant's
// tuner lives in the warm ledger — repeated requests for the same workload
// advance one signature through the state machine even though every
// request builds a fresh core.Session. A second, untuned comparison server
// must report no tuner state at all.
func TestTenantTunerWarmAcrossRequests(t *testing.T) {
	clock := time.Unix(0, 0)
	srv, ts := newTestServer(t, serve.Config{
		Tenants: []serve.TenantConfig{{Name: "alpha", BudgetBytes: 64 << 20, MaxInFlight: 2}},
		Tune:    true,
		TuneConfig: tune.Config{
			Clock:  func() time.Time { clock = clock.Add(time.Second); return clock },
			Seed:   1,
			Budget: 6,
			// The real timings below are noise; adopt any sweep winner so
			// the test deterministically leaves the static phase.
			Hysteresis: 1e-9,
		},
		RetryJitterSeed: 1,
	})

	tn := srv.Tenant("alpha")
	if tn.Tuner() == nil {
		t.Fatal("Config.Tune did not give the tenant a tuner")
	}

	body := `{"workload": "blackscholes-mkl", "scale": 16384, "threads": 2, "session": "s1", "timeout_ms": 5000}`
	var lastChecksum float64
	for i := 0; i < 12; i++ {
		resp, b := postEval(t, ts, "alpha", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, b)
		}
		var res evalResult
		if err := json.Unmarshal(b, &res); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if i > 0 && res.Checksum != lastChecksum {
			t.Fatalf("request %d: checksum drifted under tuning: %v != %v", i, res.Checksum, lastChecksum)
		}
		lastChecksum = res.Checksum
	}

	sts := tn.Tuner().States()
	if len(sts) == 0 {
		t.Fatal("no calibration state after 12 requests")
	}
	for _, ss := range sts {
		if ss.Phase == tune.PhaseStatic {
			t.Errorf("signature %q still static after 12 requests", ss.Signature)
		}
	}

	// The ledger state must be visible on /v1/tenants.
	st := tn.Status()
	if st.TunerSignatures != len(sts) {
		t.Errorf("TunerSignatures = %d, want %d", st.TunerSignatures, len(sts))
	}

	// Untuned server: same traffic, no tuner, no state.
	srv2, ts2 := newTestServer(t, serve.Config{
		Tenants:         []serve.TenantConfig{{Name: "alpha", BudgetBytes: 64 << 20, MaxInFlight: 2}},
		RetryJitterSeed: 1,
	})
	if srv2.Tenant("alpha").Tuner() != nil {
		t.Fatal("tuner present without Config.Tune")
	}
	resp, b := postEval(t, ts2, "alpha", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("untuned request: status %d: %s", resp.StatusCode, b)
	}
	if st := srv2.Tenant("alpha").Status(); st.TunerSignatures != 0 {
		t.Errorf("untuned tenant reports %d tuner signatures", st.TunerSignatures)
	}
}

// TestTunerScopedPerTenant: two tenants running the same workload calibrate
// independently — traffic on one must not create state on the other.
func TestTunerScopedPerTenant(t *testing.T) {
	srv, ts := newTestServer(t, serve.Config{
		Tenants: []serve.TenantConfig{
			{Name: "alpha", BudgetBytes: 32 << 20, MaxInFlight: 2},
			{Name: "beta", BudgetBytes: 32 << 20, MaxInFlight: 2},
		},
		Tune:            true,
		RetryJitterSeed: 1,
	})
	body := `{"workload": "blackscholes-mkl", "scale": 8192, "threads": 2, "timeout_ms": 5000}`
	for i := 0; i < 2; i++ {
		resp, b := postEval(t, ts, "alpha", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, b)
		}
	}
	if n := len(srv.Tenant("alpha").Tuner().States()); n == 0 {
		t.Error("alpha has no calibration state after its requests")
	}
	if n := len(srv.Tenant("beta").Tuner().States()); n != 0 {
		t.Errorf("beta has %d signatures without any traffic", n)
	}
	// Distinct tuners entirely.
	if srv.Tenant("alpha").Tuner() == srv.Tenant("beta").Tuner() {
		t.Error("tenants share one tuner")
	}
}
