package serve_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"mozart/internal/serve"
	"mozart/internal/spill"
)

// degradeResult decodes the out-of-core fields of a 200 eval response.
type degradeResult struct {
	Checksum   float64 `json:"checksum"`
	Mode       string  `json:"mode"`
	SpillBytes int64   `json:"spill_bytes"`
}

// TestShedRetryAfterJitter: 429 Retry-After hints are jittered across [1, 3]
// seconds so a synchronized client cohort does not retry in lockstep.
func TestShedRetryAfterJitter(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{
		Registry:        echoRegistry(1),
		Tenants:         []serve.TenantConfig{{Name: "tiny", BudgetBytes: 4 << 10}},
		RetryJitterSeed: 7,
	})
	seen := map[int]int{}
	for i := 0; i < 30; i++ {
		resp, body := postEval(t, ts, "tiny", `{"workload":"echo","scale":65536}`)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("request %d: status %d (%s), want 429", i, resp.StatusCode, body)
		}
		ra := serve.RetryAfter(resp.Header)
		if ra < 1 || ra > 3 {
			t.Fatalf("request %d: Retry-After %d outside jitter window [1, 3]", i, ra)
		}
		seen[ra]++
	}
	if len(seen) < 2 {
		t.Fatalf("30 sheds produced a single Retry-After value %v; hints are not jittered", seen)
	}
}

// TestDegradeRunsOutOfCore is the serve-layer tentpole check: a request whose
// modeled demand exceeds the tenant budget is shed by default, but with
// "degrade": true it runs to completion in out-of-core streaming mode —
// reporting the pressure episode and spill volume in the response — and the
// drained server leaves no spill files behind.
func TestDegradeRunsOutOfCore(t *testing.T) {
	spillDir := t.TempDir()
	srv, ts := newTestServer(t, serve.Config{
		Tenants:  []serve.TenantConfig{{Name: "ooc", BudgetBytes: 256 << 10}},
		SpillDir: spillDir,
	})

	// Without opting in, the oversized request sheds: scale 65536 models
	// 1 MiB of arrays against a 256 KiB carve.
	req := `{"workload":"blackscholes-ooc","scale":65536}`
	resp, body := postEval(t, ts, "ooc", req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("without degrade: status %d (%s), want 429", resp.StatusCode, body)
	}

	// With degrade, the same request completes out of core.
	resp, body = postEval(t, ts, "ooc", `{"workload":"blackscholes-ooc","scale":65536,"degrade":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("with degrade: status %d (%s), want 200", resp.StatusCode, body)
	}
	var dr degradeResult
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatalf("bad body %s: %v", body, err)
	}
	if dr.Mode != "out-of-core" {
		t.Fatalf("mode %q, want out-of-core (working set 2 MiB is 8x the 256 KiB budget)", dr.Mode)
	}
	if dr.SpillBytes <= 0 {
		t.Fatalf("spill_bytes %d, want > 0: out-of-core run should spill merge partials", dr.SpillBytes)
	}
	if dr.Checksum == 0 {
		t.Fatal("degraded run returned zero checksum")
	}
	tn := srv.Tenant("ooc")
	if got := tn.DegradedRuns(); got != 1 {
		t.Fatalf("degraded_runs = %d, want 1", got)
	}
	if got := tn.Shed(); got != 1 {
		t.Fatalf("shed = %d, want 1 (only the non-degrade attempt)", got)
	}
	if got := tn.Governor().InUse(); got != 0 {
		t.Fatalf("tenant governor holds %d bytes after degraded run", got)
	}

	if err := srv.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := srv.Quiesced(); err != nil {
		t.Fatalf("quiesced: %v", err)
	}
	if n := spill.OpenStores(); n != 0 {
		t.Fatalf("%d spill stores still open after drain", n)
	}
	assertNoSpillFiles(t, spillDir)
}

// assertNoSpillFiles fails if any spill store directory survives in dir.
func assertNoSpillFiles(t *testing.T, dir string) {
	t.Helper()
	leftovers, err := filepath.Glob(filepath.Join(dir, "mozart-spill-*"))
	if err != nil {
		t.Fatalf("glob spill dir: %v", err)
	}
	if len(leftovers) != 0 {
		var detail string
		for _, d := range leftovers {
			ents, _ := os.ReadDir(d)
			detail += fmt.Sprintf(" %s(%d files)", filepath.Base(d), len(ents))
		}
		t.Fatalf("orphaned spill stores after drain:%s", detail)
	}
}
