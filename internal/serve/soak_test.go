package serve_test

// The chaos soak: mozartd's robustness contract exercised end to end under
// -race. Two tenants with disjoint budget carves run the Listing-1 vector
// pipeline concurrently; the "noisy" tenant's library functions go through
// a fault injector arming seeded latency jitter and a transient splitter
// outage, while the "quiet" tenant runs clean. The soak then asserts the
// whole contract at once:
//
//   - overload is shed deterministically (429 + Retry-After, never queued),
//   - tight deadlines surface as 504 mapped from context.DeadlineExceeded,
//   - the noisy tenant's faults trip only its own breaker group — the
//     quiet tenant sees zero trips and zero 5xx (fault isolation),
//   - a mid-evaluation budget squeeze pushes the noisy tenant into memory
//     pressure; degrade-opted requests keep completing out of core (and the
//     spilling workload reports CRC-checked spill volume) instead of
//     shedding, and once the squeeze clears, plain traffic returns to
//     baseline goodput,
//   - drain leaves every governor (tenant and shared) at zero bytes, the
//     quiesce check passes, and no spill stores or files survive.

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mozart/internal/annotations/vmathsa"
	"mozart/internal/core"
	"mozart/internal/faultinject"
	"mozart/internal/serve"
	"mozart/internal/spill"
	"mozart/internal/vmath"
)

// pipelineRegistry builds a registry whose "pipeline" workload runs the
// Listing-1 vector chain (log1p, add) through inj-wrapped annotated calls,
// inside a session carrying the tenant options the server threaded in.
func pipelineRegistry(inj *faultinject.Injector) map[string]serve.EvalFunc {
	arrOf := func(site string) core.TypeExpr {
		return core.Concrete("ArraySplit", inj.WrapSplitter(site, vmathsa.ArraySplitter{}), func(args []any) (core.SplitType, error) {
			return core.NewSplitType("ArraySplit", int64(args[0].(int))), nil
		})
	}
	log1pFn := inj.WrapFunc("vdLog1p", func(args []any) (any, error) {
		vmath.Log1p(args[0].(int), args[1].([]float64), args[2].([]float64))
		return nil, nil
	})
	log1pArr := arrOf("vdLog1p")
	log1pSA := &core.Annotation{FuncName: "vdLog1p", Params: []core.Param{
		{Name: "size", Type: vmathsa.SizeSplit(0)},
		{Name: "a", Type: log1pArr},
		{Name: "out", Mut: true, Type: log1pArr},
	}}
	addFn := inj.WrapFunc("vdAdd", func(args []any) (any, error) {
		vmath.Add(args[0].(int), args[1].([]float64), args[2].([]float64), args[3].([]float64))
		return nil, nil
	})
	addArr := arrOf("vdAdd")
	addSA := &core.Annotation{FuncName: "vdAdd", Params: []core.Param{
		{Name: "size", Type: vmathsa.SizeSplit(0)},
		{Name: "a", Type: addArr},
		{Name: "b", Type: addArr},
		{Name: "out", Mut: true, Type: addArr},
	}}
	return map[string]serve.EvalFunc{
		"pipeline": func(ctx context.Context, p serve.EvalParams, opts core.Options) (float64, error) {
			n := p.Scale
			d1 := make([]float64, n)
			tmp := make([]float64, n)
			for i := 0; i < n; i++ {
				d1[i] = float64(i%100)/100 + 0.1
				tmp[i] = float64(i%37)/37 + 0.1
			}
			s := core.NewSession(opts)
			s.Call(log1pFn, log1pSA, n, d1, d1)
			s.Call(addFn, addSA, n, d1, tmp, d1)
			if err := s.EvaluateContext(ctx); err != nil {
				return 0, err
			}
			return d1[0] + d1[n-1], nil
		},
	}
}

func TestChaosSoak(t *testing.T) {
	const (
		tenantBudget = 8 << 20 // noisy and quiet each carve 8 MiB
		scale        = 1 << 14 // 16k elements per request: ~256 KiB modeled
		clientsPer   = 3
		reqsPer      = 6
	)

	// The noisy tenant's injector: seeded latency jitter on every vdLog1p
	// call, plus a transient splitter outage that trips its breaker.
	noisyInj := faultinject.New(7)
	noisyInj.LatencyOnCalls("vdLog1p", 200*time.Microsecond, 2*time.Millisecond)
	noisyInj.TransientErrorOnSplits("vdLog1p", 1, 2)
	quietInj := faultinject.New(0) // nothing armed: clean passthrough

	// The noisy tenant also carries the default registry, so the recovery
	// phase can drive the spilling blackscholes-ooc workload through the
	// same carve the injected pipeline squeezes.
	noisyReg := pipelineRegistry(noisyInj)
	for name, fn := range serve.WorkloadRegistry() {
		if _, ok := noisyReg[name]; !ok {
			noisyReg[name] = fn
		}
	}

	spillDir := t.TempDir()
	srv, err := serve.New(serve.Config{
		GlobalBudgetBytes: 32 << 20,
		MaxInFlight:       8,
		DefaultTimeout:    5 * time.Second,
		MaxTimeout:        5 * time.Second,
		DrainTimeout:      3 * time.Second,
		Fallback:          core.FallbackQuarantine,
		Breaker:           core.BreakerPolicy{Threshold: 1, Cooldown: time.Minute},
		SpillDir:          spillDir,
		Tenants: []serve.TenantConfig{
			{Name: "noisy", BudgetBytes: tenantBudget, MaxInFlight: 2, Registry: noisyReg},
			{Name: "quiet", BudgetBytes: tenantBudget, MaxInFlight: 2, Registry: pipelineRegistry(quietInj)},
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	postTraced := func(tenant, traceparent, body string) (int, []byte, error) {
		req, err := http.NewRequest(http.MethodPost, base+"/v1/eval", strings.NewReader(body))
		if err != nil {
			return 0, nil, err
		}
		req.Header.Set("X-Mozart-Tenant", tenant)
		if traceparent != "" {
			req.Header.Set("traceparent", traceparent)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b, nil
	}
	post := func(tenant, body string) (int, []byte, error) {
		return postTraced(tenant, "", body)
	}
	get := func(path string) (int, []byte, error) {
		resp, err := http.Get(base + path)
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b, nil
	}

	type tally struct {
		ok, shed, timeout, canceled, other5xx atomic.Int64
	}
	counts := map[string]*tally{"noisy": {}, "quiet": {}}

	var wg sync.WaitGroup
	for _, tenant := range []string{"noisy", "quiet"} {
		tenant := tenant
		for c := 0; c < clientsPer; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for r := 0; r < reqsPer; r++ {
					status, body, err := post(tenant, `{"workload":"pipeline","scale":16384,"session":"soak","timeout_ms":4000}`)
					if err != nil {
						t.Errorf("%s: transport error: %v", tenant, err)
						return
					}
					tl := counts[tenant]
					switch status {
					case http.StatusOK:
						tl.ok.Add(1)
					case http.StatusTooManyRequests:
						tl.shed.Add(1)
					case http.StatusGatewayTimeout:
						tl.timeout.Add(1)
					case 499:
						tl.canceled.Add(1)
					default:
						tl.other5xx.Add(1)
						t.Errorf("%s: unexpected status %d (%s)", tenant, status, body)
					}
				}
			}()
		}
	}
	wg.Wait()

	// Deterministic shed: a request modeling more bytes than the whole
	// tenant carve can never be admitted. The shed path keeps the caller's
	// trace identity — the 429 body names the inbound trace id and the
	// request still leaves a (root-only) span in the ring.
	const shedTraceparent = "00-aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa1-0102030405060708-01"
	const shedTraceID = "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa1"
	status, body, err := postTraced("noisy", shedTraceparent, `{"workload":"pipeline","scale":4194304}`)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-budget request: status %d (%s), want 429", status, body)
	}
	var shedBody struct {
		Error struct {
			Origin  string
			TraceID string `json:"trace_id"`
		}
	}
	if err := json.Unmarshal(body, &shedBody); err != nil || shedBody.Error.Origin != "shed" {
		t.Fatalf("over-budget body %s (err %v), want origin shed", body, err)
	}
	if shedBody.Error.TraceID != shedTraceID {
		t.Fatalf("shed body trace %q, want %s", shedBody.Error.TraceID, shedTraceID)
	}
	if status, body, err = get("/debug/mozart/spans/" + shedTraceID); err != nil || status != http.StatusOK ||
		!strings.Contains(string(body), `outcome="shed"`) {
		t.Fatalf("shed request left no span tree: %d %s (%v)", status, body, err)
	}

	// Deterministic deadline: a 1ms budget cannot cover the pipeline (the
	// noisy tenant's vdLog1p calls each sleep at least 200µs), and must
	// surface as 504 mapped from context.DeadlineExceeded.
	saw504 := false
	for i := 0; i < 25 && !saw504; i++ {
		status, body, err = post("noisy", `{"workload":"pipeline","scale":16384,"timeout_ms":1}`)
		if err != nil {
			t.Fatal(err)
		}
		switch status {
		case http.StatusGatewayTimeout:
			saw504 = true
			var eb struct {
				Error struct {
					Origin  string
					TraceID string `json:"trace_id"`
					Flight  string `json:"flight"`
				}
			}
			if err := json.Unmarshal(body, &eb); err != nil || eb.Error.Origin != "timeout" {
				t.Fatalf("504 body %s (err %v), want origin timeout", body, err)
			}
			// The deadline-exceeded trace resolves to its flight recording:
			// the body's flight ref is keyed by the minted trace id. The 1ms
			// deadline can occasionally expire before the session opens (no
			// recording retained); the trace-keyed contract only binds when
			// the timeout landed mid-evaluation.
			if eb.Error.TraceID == "" || !strings.Contains(eb.Error.Flight, "?trace="+eb.Error.TraceID) {
				t.Fatalf("504 body lacks trace-keyed flight ref: %s", body)
			}
			if fstatus, fbody, ferr := get(eb.Error.Flight); ferr != nil {
				t.Fatal(ferr)
			} else if fstatus == http.StatusOK {
				var frec struct {
					TraceID string `json:"trace_id"`
				}
				if err := json.Unmarshal(fbody, &frec); err != nil || frec.TraceID != eb.Error.TraceID {
					t.Fatalf("flight recording trace %q (err %v), want %s", frec.TraceID, err, eb.Error.TraceID)
				}
			}
		case http.StatusTooManyRequests:
			time.Sleep(5 * time.Millisecond) // shed by leftover in-flight; retry
		case http.StatusOK:
			// Interleaving-dependent: once vdLog1p is quarantined the whole
			// run makes a single latency draw from [200µs, 2ms] and can beat
			// the 1ms deadline; draw again.
		default:
			t.Fatalf("1ms-deadline request: status %d (%s), want 504", status, body)
		}
	}
	if !saw504 {
		t.Fatalf("no 504 after 25 tight-deadline attempts")
	}

	// Both tenants made real progress despite the chaos.
	for name, tl := range counts {
		if tl.ok.Load() == 0 {
			t.Errorf("tenant %s: no successful evaluations (shed=%d timeout=%d canceled=%d)",
				name, tl.shed.Load(), tl.timeout.Load(), tl.canceled.Load())
		}
	}
	// Fault isolation: the quiet tenant saw no evaluation failures and —
	// the cross-tenant invariant — zero breaker trips, while the noisy
	// tenant's splitter outage tripped its own group.
	if got := counts["quiet"].other5xx.Load(); got != 0 {
		t.Errorf("quiet tenant saw %d 5xx responses", got)
	}
	if got := srv.Tenant("noisy").Breakers().Trips(); got == 0 {
		t.Errorf("noisy tenant's splitter outage tripped no breaker")
	}
	if got := srv.Tenant("quiet").Breakers().Trips(); got != 0 {
		t.Errorf("quiet tenant's breaker group tripped %d times; want full isolation", got)
	}

	// ---- overload and recovery -----------------------------------------
	// Arm the budget-squeeze fault on the pipeline's vdAdd site: the next
	// vdAdd library call shrinks the noisy tenant's governor to 64 KiB
	// mid-evaluation, waking any blocked admissions so they re-clamp.
	noisyGov := srv.Tenant("noisy").Governor()
	squeezeAt := noisyInj.Count("vdAdd", faultinject.AspectCall) + 1
	noisyInj.SqueezeBudgetOnNthCall("vdAdd", squeezeAt, noisyGov, 64<<10)

	// The triggering request observes the squeeze mid-run; its own outcome
	// is interleaving-dependent (it may finish, or die on a later stage that
	// cannot be admitted while its pre-squeeze hold is live), so only the
	// squeeze itself is asserted here.
	if _, _, err := post("noisy", `{"workload":"pipeline","scale":16384,"session":"soak","timeout_ms":4000,"degrade":true}`); err != nil {
		t.Fatal(err)
	}
	if got := noisyGov.Budget(); got != 64<<10 {
		t.Fatalf("budget-squeeze fault did not fire: noisy budget %d, want %d", got, 64<<10)
	}

	// Under pressure, degrade-opted traffic keeps completing instead of
	// shedding: the modeled demand no longer fits the squeezed carve, so the
	// requests run without a hold. (The pipeline's own calls are quarantined
	// from the earlier chaos — their breakers are open — so these run whole;
	// the streaming proof comes from the unfaulted workload below.)
	for i := 0; i < 3; i++ {
		status, body, err := post("noisy", `{"workload":"pipeline","scale":16384,"session":"soak","timeout_ms":4000,"degrade":true}`)
		if err != nil {
			t.Fatal(err)
		}
		if status != http.StatusOK {
			t.Fatalf("degrade request %d under squeeze: status %d (%s), want 200", i, status, body)
		}
	}
	if got := srv.Tenant("noisy").DegradedRuns(); got == 0 {
		t.Fatal("squeeze phase recorded no degraded runs")
	}

	// The spilling workload under the same squeeze: blackscholes-ooc has no
	// faults armed, so it takes the real streaming path — its window
	// partials go through the CRC-checked spill store (a corrupt frame
	// would fail the replay and the request), and the response reports the
	// pressure episode and the spilled volume.
	const spillTraceparent = "00-aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa2-0102030405060708-01"
	const spillTraceID = "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa2"
	status, body, err = postTraced("noisy", spillTraceparent, `{"workload":"blackscholes-ooc","scale":65536,"timeout_ms":4000,"degrade":true}`)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK {
		t.Fatalf("spilling workload under squeeze: status %d (%s), want 200", status, body)
	}
	var sr degradeResult
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("spill body %s: %v", body, err)
	}
	if sr.Mode != "out-of-core" || sr.SpillBytes <= 0 {
		t.Fatalf("spilling workload: mode %q spill_bytes %d, want out-of-core with spill", sr.Mode, sr.SpillBytes)
	}
	// The trace survives the degradation path end to end: the streaming
	// run's span tree is retrievable by the inbound trace id and records
	// the spill activity as spans.
	if status, body, err = get("/debug/mozart/spans/" + spillTraceID); err != nil || status != http.StatusOK {
		t.Fatalf("degraded request's span tree: %d (%v)", status, err)
	}
	spillTree := string(body)
	for _, want := range []string{"trace " + spillTraceID, `outcome="ok"`, "spill "} {
		if !strings.Contains(spillTree, want) {
			t.Errorf("degraded span tree missing %q:\n%s", want, spillTree)
		}
	}

	// Recovery: the squeeze clears and plain traffic returns to baseline —
	// a sequential round of full-budget requests all succeed at normal
	// pressure with no degradation and no shedding.
	noisyGov.SetBudget(tenantBudget)
	for i := 0; i < 4; i++ {
		status, body, err := post("noisy", `{"workload":"pipeline","scale":16384,"session":"soak","timeout_ms":4000}`)
		if err != nil {
			t.Fatal(err)
		}
		if status != http.StatusOK {
			t.Fatalf("recovery request %d: status %d (%s), want 200", i, status, body)
		}
		var dr degradeResult
		if err := json.Unmarshal(body, &dr); err != nil {
			t.Fatalf("recovery body %s: %v", body, err)
		}
		if dr.Mode != core.PressureNormal.String() {
			t.Fatalf("recovery request %d ran at pressure %q, want normal", i, dr.Mode)
		}
	}

	// Graceful drain: nothing in flight, every carve returned.
	if err := srv.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	for _, name := range []string{"noisy", "quiet"} {
		if got := srv.Tenant(name).Governor().InUse(); got != 0 {
			t.Errorf("tenant %s governor holds %d bytes after drain", name, got)
		}
	}
	if got := srv.GlobalGovernor().InUse(); got != 0 {
		t.Errorf("shared governor holds %d bytes after drain", got)
	}
	if got := srv.InFlight(); got != 0 {
		t.Errorf("%d evaluations in flight after drain", got)
	}
	// Byte-clean quiesce with no spill leakage: every store closed, every
	// spill directory reclaimed.
	if err := srv.Quiesced(); err != nil {
		t.Errorf("Quiesced after drain: %v", err)
	}
	if got := spill.OpenStores(); got != 0 {
		t.Errorf("%d spill stores still open after drain", got)
	}
	assertNoSpillFiles(t, spillDir)
	t.Logf("soak: noisy ok=%d shed=%d timeout=%d | quiet ok=%d shed=%d | noisy trips=%d",
		counts["noisy"].ok.Load(), counts["noisy"].shed.Load(), counts["noisy"].timeout.Load(),
		counts["quiet"].ok.Load(), counts["quiet"].shed.Load(), srv.Tenant("noisy").Breakers().Trips())
}
