// Package faultinject is a deterministic, seedable fault injector for the
// Mozart runtime's fault-tolerance paths. It wraps the two surfaces the
// runtime calls into — library functions (core.Func) and splitting code
// (core.Splitter) — and arms faults that fire on a chosen invocation:
// panic-on-Nth-batch, error-on-split, slow-call, corrupt-merge, and the
// other combinations of aspect × kind.
//
// Counters are atomic, so a fault armed for the Nth invocation fires
// exactly once even when workers race for batches; the seed drives the
// "random invocation" helpers so concurrent test runs stay reproducible.
package faultinject

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mozart/internal/core"
)

// Aspect names the runtime surface a fault intercepts.
type Aspect string

const (
	AspectCall  Aspect = "call"  // the library function itself
	AspectInfo  Aspect = "info"  // Splitter.Info
	AspectSplit Aspect = "split" // Splitter.Split
	AspectMerge Aspect = "merge" // Splitter.Merge
)

// Kind is what the fault does when it fires.
type Kind int

const (
	// KindPanic panics with a descriptive value.
	KindPanic Kind = iota
	// KindError returns an injected error.
	KindError
	// KindSlow sleeps Delay, then proceeds normally (for cancellation and
	// timeout tests).
	KindSlow
	// KindCorrupt perturbs the operation's result (merge only): the first
	// element of a []float64 result is shifted by 1e9. Other result types
	// pass through unchanged.
	KindCorrupt
	// KindHook runs the fault's Hook function and proceeds normally: an
	// environment mutation on the Nth invocation rather than a failure —
	// the budget-squeeze fault shrinks a Governor's budget mid-evaluation
	// this way.
	KindHook
)

// Fault is one armed fault at a site.
type Fault struct {
	Aspect Aspect
	Kind   Kind
	N      int64 // fire on the Nth invocation (1-based); 0 = every invocation
	// M, when >= N, makes the fault transient-by-occurrence: it fires on
	// invocations N..M inclusive and the site succeeds again afterwards —
	// the recoverable-outage shape retry and breaker half-open tests
	// script. Zero keeps the single-invocation (or every-invocation)
	// behavior of N alone.
	M     int64
	Delay time.Duration // KindSlow: the delay, or the lower bound when DelayMax is set
	// DelayMax, when above Delay, turns KindSlow into latency injection:
	// each firing sleeps a duration drawn uniformly from [Delay, DelayMax]
	// with the injector's seeded RNG, so a given seed replays the same
	// latency schedule. This is the jittery-slow-dependency shape the
	// deadline and load-shedding tests exercise.
	DelayMax  time.Duration
	Msg       string // optional message override
	Transient bool   // KindError errors wrap core.ErrTransient
	// Hook runs when a KindHook fault fires; the intercepted operation then
	// proceeds normally. Hooks run on the invoking goroutine (a worker or
	// the runtime lane) and must be safe for concurrent use.
	Hook func()
}

// Injector arms faults per site name and intercepts wrapped functions and
// splitters. A zero site list means everything passes through untouched.
type Injector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	faults map[string][]Fault
	counts map[string]*atomic.Int64
}

// New creates an injector whose random helpers draw from seed.
func New(seed int64) *Injector {
	return &Injector{
		rng:    rand.New(rand.NewSource(seed)),
		faults: map[string][]Fault{},
		counts: map[string]*atomic.Int64{},
	}
}

// Add arms a fault at site.
func (in *Injector) Add(site string, f Fault) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.faults[site] = append(in.faults[site], f)
}

// Count reports how many invocations of the given aspect the site has seen.
func (in *Injector) Count(site string, a Aspect) int64 {
	return in.counter(site, a).Load()
}

// Reset zeroes every invocation counter (armed faults stay armed).
func (in *Injector) Reset() {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, c := range in.counts {
		c.Store(0)
	}
}

// PanicOnNthCall arms a panic on the site's Nth library-function call.
func (in *Injector) PanicOnNthCall(site string, n int64) {
	in.Add(site, Fault{Aspect: AspectCall, Kind: KindPanic, N: n})
}

// ErrorOnNthCall arms an error return on the Nth library-function call.
func (in *Injector) ErrorOnNthCall(site string, n int64) {
	in.Add(site, Fault{Aspect: AspectCall, Kind: KindError, N: n})
}

// SlowCalls makes every library-function call at site sleep d first.
func (in *Injector) SlowCalls(site string, d time.Duration) {
	in.Add(site, Fault{Aspect: AspectCall, Kind: KindSlow, Delay: d})
}

// LatencyOnCalls arms seeded latency injection on every library-function
// call at site: each invocation sleeps a duration drawn uniformly from
// [min, max] using the injector's seed, so concurrent runs with the same
// seed replay the same schedule of delays.
func (in *Injector) LatencyOnCalls(site string, min, max time.Duration) {
	in.Add(site, Fault{Aspect: AspectCall, Kind: KindSlow, Delay: min, DelayMax: max})
}

// LatencyOnSplits is LatencyOnCalls for the splitter's Split invocations,
// delaying batches before the library function even runs.
func (in *Injector) LatencyOnSplits(site string, min, max time.Duration) {
	in.Add(site, Fault{Aspect: AspectSplit, Kind: KindSlow, Delay: min, DelayMax: max})
}

// PanicOnNthSplit arms a panic on the site's Nth Split invocation.
func (in *Injector) PanicOnNthSplit(site string, n int64) {
	in.Add(site, Fault{Aspect: AspectSplit, Kind: KindPanic, N: n})
}

// ErrorOnNthSplit arms an error return on the Nth Split invocation.
func (in *Injector) ErrorOnNthSplit(site string, n int64) {
	in.Add(site, Fault{Aspect: AspectSplit, Kind: KindError, N: n})
}

// ErrorOnNthMerge arms an error return on the Nth Merge invocation.
func (in *Injector) ErrorOnNthMerge(site string, n int64) {
	in.Add(site, Fault{Aspect: AspectMerge, Kind: KindError, N: n})
}

// CorruptNthMerge perturbs the result of the Nth Merge invocation.
func (in *Injector) CorruptNthMerge(site string, n int64) {
	in.Add(site, Fault{Aspect: AspectMerge, Kind: KindCorrupt, N: n})
}

// ErrorOnNthInfo arms an error return on the Nth Info invocation.
func (in *Injector) ErrorOnNthInfo(site string, n int64) {
	in.Add(site, Fault{Aspect: AspectInfo, Kind: KindError, N: n})
}

// TransientErrorOnCalls arms errors wrapping core.ErrTransient on the
// site's library-function calls from..to (1-based, inclusive); later calls
// succeed. This is the "outage that heals" retry tests replay.
func (in *Injector) TransientErrorOnCalls(site string, from, to int64) {
	in.Add(site, Fault{Aspect: AspectCall, Kind: KindError, N: from, M: to, Transient: true})
}

// TransientErrorOnSplits arms transient errors on Split invocations
// from..to, after which the splitter succeeds again.
func (in *Injector) TransientErrorOnSplits(site string, from, to int64) {
	in.Add(site, Fault{Aspect: AspectSplit, Kind: KindError, N: from, M: to, Transient: true})
}

// TransientErrorOnMerges arms transient errors on Merge invocations
// from..to, after which the splitter succeeds again.
func (in *Injector) TransientErrorOnMerges(site string, from, to int64) {
	in.Add(site, Fault{Aspect: AspectMerge, Kind: KindError, N: from, M: to, Transient: true})
}

// HookOnNthCall arms an environment-mutation hook on the site's Nth
// library-function call: hook runs, then the call proceeds normally.
func (in *Injector) HookOnNthCall(site string, n int64, hook func()) {
	in.Add(site, Fault{Aspect: AspectCall, Kind: KindHook, N: n, Hook: hook})
}

// SqueezeBudgetOnNthCall arms the budget-squeeze fault: on the site's Nth
// library-function call, the Governor's budget shrinks to newBudget (waking
// any blocked admissions so they re-clamp), and the call proceeds. This is
// the mid-evaluation memory-pressure shape the out-of-core chaos tests
// drive.
func (in *Injector) SqueezeBudgetOnNthCall(site string, n int64, g *core.Governor, newBudget int64) {
	in.HookOnNthCall(site, n, func() { g.SetBudget(newBudget) })
}

// PanicOnRandomCall arms a panic on an invocation drawn uniformly from
// [1, outOf] using the injector's seed, and returns the chosen invocation
// so tests can log it.
func (in *Injector) PanicOnRandomCall(site string, outOf int64) int64 {
	in.mu.Lock()
	n := 1 + in.rng.Int63n(outOf)
	in.mu.Unlock()
	in.PanicOnNthCall(site, n)
	return n
}

func (in *Injector) counter(site string, a Aspect) *atomic.Int64 {
	key := site + "/" + string(a)
	in.mu.Lock()
	defer in.mu.Unlock()
	c, ok := in.counts[key]
	if !ok {
		c = &atomic.Int64{}
		in.counts[key] = c
	}
	return c
}

// fire advances the site's counter for aspect a and reports the armed fault
// that matches this invocation, if any.
func (in *Injector) fire(site string, a Aspect) (Fault, bool) {
	n := in.counter(site, a).Add(1)
	in.mu.Lock()
	faults := in.faults[site]
	var hit Fault
	var ok bool
	for _, f := range faults {
		if f.Aspect != a {
			continue
		}
		match := f.N == 0 || f.N == n
		if f.M >= f.N && f.N > 0 {
			match = n >= f.N && n <= f.M
		}
		if match {
			hit, ok = f, true
			break
		}
	}
	in.mu.Unlock()
	return hit, ok
}

func (in *Injector) act(f Fault, site string, a Aspect) error {
	msg := f.Msg
	if msg == "" {
		msg = fmt.Sprintf("faultinject: injected %s fault at %s", a, site)
	}
	switch f.Kind {
	case KindSlow:
		time.Sleep(in.delayFor(f))
		return nil
	case KindHook:
		if f.Hook != nil {
			f.Hook()
		}
		return nil
	case KindPanic:
		panic(msg)
	case KindError:
		if f.Transient {
			return fmt.Errorf("%s: %w", msg, core.ErrTransient)
		}
		return fmt.Errorf("%s", msg)
	}
	return nil
}

// delayFor resolves a KindSlow fault's sleep: the fixed Delay, or a draw
// from [Delay, DelayMax] on the injector's seeded RNG when DelayMax is the
// larger — the draw order is the interleaving-dependent part, which is why
// tests assert bounds and determinism of the sequence, not a per-batch
// schedule.
func (in *Injector) delayFor(f Fault) time.Duration {
	if f.DelayMax <= f.Delay {
		return f.Delay
	}
	in.mu.Lock()
	d := f.Delay + time.Duration(in.rng.Int63n(int64(f.DelayMax-f.Delay)+1))
	in.mu.Unlock()
	return d
}

// WrapFunc intercepts a library function registered with Session.Call.
func (in *Injector) WrapFunc(site string, fn core.Func) core.Func {
	return func(args []any) (any, error) {
		if f, ok := in.fire(site, AspectCall); ok {
			if err := in.act(f, site, AspectCall); err != nil {
				return nil, err
			}
		}
		return fn(args)
	}
}

// WrapSplitter intercepts a splitter's Info/Split/Merge. The wrapper
// declares the underlying splitter's capabilities (core.CapsDeclarer), so
// in-place, view, window, and codec behavior all survive wrapping; view and
// window splits are intercepted under the split aspect like plain splits.
func (in *Injector) WrapSplitter(site string, sp core.Splitter) core.Splitter {
	return &faultSplitter{in: in, site: site, sp: sp}
}

type faultSplitter struct {
	in   *Injector
	site string
	sp   core.Splitter
}

// SplitterCaps forwards the wrapped splitter's capability set. The wrapper
// implements every optional interface, so without this declaration
// core.CapabilitiesOf would report capabilities the underlying splitter
// lacks.
func (fs *faultSplitter) SplitterCaps() core.SplitterCaps {
	return core.CapabilitiesOf(fs.sp)
}

func (fs *faultSplitter) InPlace() bool {
	if ip, ok := fs.sp.(core.InPlacer); ok {
		return ip.InPlace()
	}
	return false
}

func (fs *faultSplitter) Info(v any, t core.SplitType) (core.RuntimeInfo, error) {
	if f, ok := fs.in.fire(fs.site, AspectInfo); ok {
		if err := fs.in.act(f, fs.site, AspectInfo); err != nil {
			return core.RuntimeInfo{}, err
		}
	}
	return fs.sp.Info(v, t)
}

func (fs *faultSplitter) Split(v any, t core.SplitType, start, end int64) (any, error) {
	if f, ok := fs.in.fire(fs.site, AspectSplit); ok {
		if err := fs.in.act(f, fs.site, AspectSplit); err != nil {
			return nil, err
		}
	}
	return fs.sp.Split(v, t, start, end)
}

// SplitView delegates the zero-copy split, intercepted under the split
// aspect so armed split faults fire on the view path too.
func (fs *faultSplitter) SplitView(v any, t core.SplitType, start, end int64, reuse any) (any, error) {
	vs, ok := fs.sp.(core.ViewSplitter)
	if !ok {
		return nil, fmt.Errorf("faultinject: %s: wrapped splitter %T has no SplitView", fs.site, fs.sp)
	}
	if f, ok := fs.in.fire(fs.site, AspectSplit); ok {
		if err := fs.in.act(f, fs.site, AspectSplit); err != nil {
			return nil, err
		}
	}
	return vs.SplitView(v, t, start, end, reuse)
}

// SplitAt delegates streaming window views, intercepted under the split
// aspect.
func (fs *faultSplitter) SplitAt(v any, t core.SplitType, start, end int64) (any, error) {
	sa, ok := fs.sp.(core.SplitterAt)
	if !ok {
		return nil, fmt.Errorf("faultinject: %s: wrapped splitter %T has no SplitAt", fs.site, fs.sp)
	}
	if f, ok := fs.in.fire(fs.site, AspectSplit); ok {
		if err := fs.in.act(f, fs.site, AspectSplit); err != nil {
			return nil, err
		}
	}
	return sa.SplitAt(v, t, start, end)
}

// EncodePiece delegates spill-frame encoding untouched.
func (fs *faultSplitter) EncodePiece(piece any, t core.SplitType) ([]byte, error) {
	pc, ok := fs.sp.(core.PieceCodec)
	if !ok {
		return nil, fmt.Errorf("faultinject: %s: wrapped splitter %T has no EncodePiece", fs.site, fs.sp)
	}
	return pc.EncodePiece(piece, t)
}

// DecodePiece delegates spill-frame decoding untouched.
func (fs *faultSplitter) DecodePiece(frame []byte, t core.SplitType) (any, error) {
	pc, ok := fs.sp.(core.PieceCodec)
	if !ok {
		return nil, fmt.Errorf("faultinject: %s: wrapped splitter %T has no DecodePiece", fs.site, fs.sp)
	}
	return pc.DecodePiece(frame, t)
}

func (fs *faultSplitter) Merge(pieces []any, t core.SplitType) (any, error) {
	f, armed := fs.in.fire(fs.site, AspectMerge)
	if armed && f.Kind != KindCorrupt {
		if err := fs.in.act(f, fs.site, AspectMerge); err != nil {
			return nil, err
		}
	}
	merged, err := fs.sp.Merge(pieces, t)
	if err != nil {
		return nil, err
	}
	if armed && f.Kind == KindCorrupt {
		merged = corrupt(merged)
	}
	return merged, nil
}

// corrupt deterministically perturbs a merged value: []float64 results get
// their first element shifted; other types pass through unchanged.
func corrupt(v any) any {
	if fs, ok := v.([]float64); ok && len(fs) > 0 {
		out := append([]float64(nil), fs...)
		out[0] += 1e9
		return out
	}
	return v
}
