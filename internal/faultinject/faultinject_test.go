package faultinject_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"mozart/internal/core"
	"mozart/internal/faultinject"
)

// chunkSplitter is a minimal []float64 splitter for exercising the wrapper.
type chunkSplitter struct{}

func (chunkSplitter) InPlace() bool { return true }

func (chunkSplitter) Info(v any, t core.SplitType) (core.RuntimeInfo, error) {
	return core.RuntimeInfo{Elems: int64(len(v.([]float64))), ElemBytes: 8}, nil
}

func (chunkSplitter) Split(v any, t core.SplitType, start, end int64) (any, error) {
	return v.([]float64)[start:end], nil
}

func (chunkSplitter) Merge(pieces []any, t core.SplitType) (any, error) {
	var out []float64
	for _, p := range pieces {
		out = append(out, p.([]float64)...)
	}
	return out, nil
}

func okFn(args []any) (any, error) { return args[0], nil }

func TestNthCallFiresExactlyOnce(t *testing.T) {
	inj := faultinject.New(0)
	inj.ErrorOnNthCall("f", 3)
	fn := inj.WrapFunc("f", okFn)
	for i := 1; i <= 5; i++ {
		_, err := fn([]any{i})
		if (i == 3) != (err != nil) {
			t.Errorf("call %d: err = %v", i, err)
		}
	}
	if got := inj.Count("f", faultinject.AspectCall); got != 5 {
		t.Errorf("Count = %d, want 5", got)
	}
}

func TestEveryCallFault(t *testing.T) {
	inj := faultinject.New(0)
	inj.Add("f", faultinject.Fault{Aspect: faultinject.AspectCall, Kind: faultinject.KindError, Msg: "always"})
	fn := inj.WrapFunc("f", okFn)
	for i := 0; i < 3; i++ {
		if _, err := fn(nil); err == nil || err.Error() != "always" {
			t.Fatalf("call %d: err = %v", i, err)
		}
	}
}

func TestPanicKind(t *testing.T) {
	inj := faultinject.New(0)
	inj.PanicOnNthCall("f", 1)
	fn := inj.WrapFunc("f", okFn)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("want panic")
		}
		if !strings.Contains(r.(string), "injected call fault at f") {
			t.Errorf("panic value %v", r)
		}
	}()
	_, _ = fn(nil)
}

func TestSlowKind(t *testing.T) {
	inj := faultinject.New(0)
	inj.SlowCalls("f", 5*time.Millisecond)
	fn := inj.WrapFunc("f", okFn)
	t0 := time.Now()
	if _, err := fn([]any{1}); err != nil {
		t.Fatal(err)
	}
	if time.Since(t0) < 5*time.Millisecond {
		t.Error("slow fault did not delay the call")
	}
}

func TestWrapSplitterPreservesInPlace(t *testing.T) {
	inj := faultinject.New(0)
	wrapped := inj.WrapSplitter("s", chunkSplitter{})
	ip, ok := wrapped.(core.InPlacer)
	if !ok || !ip.InPlace() {
		t.Error("wrapper must preserve the underlying InPlace declaration")
	}
}

func TestSplitAndInfoFaults(t *testing.T) {
	inj := faultinject.New(0)
	inj.ErrorOnNthInfo("s", 1)
	inj.ErrorOnNthSplit("s", 2)
	sp := inj.WrapSplitter("s", chunkSplitter{})
	data := []float64{1, 2, 3, 4}

	if _, err := sp.Info(data, core.SplitType{}); err == nil {
		t.Error("want injected Info error")
	}
	if _, err := sp.Info(data, core.SplitType{}); err != nil {
		t.Errorf("second Info: %v", err)
	}
	if _, err := sp.Split(data, core.SplitType{}, 0, 2); err != nil {
		t.Errorf("first Split: %v", err)
	}
	if _, err := sp.Split(data, core.SplitType{}, 2, 4); err == nil {
		t.Error("want injected Split error on second invocation")
	}
}

func TestCorruptMerge(t *testing.T) {
	inj := faultinject.New(0)
	inj.CorruptNthMerge("s", 1)
	sp := inj.WrapSplitter("s", chunkSplitter{})
	merged, err := sp.Merge([]any{[]float64{1, 2}, []float64{3}}, core.SplitType{})
	if err != nil {
		t.Fatal(err)
	}
	out := merged.([]float64)
	if out[0] <= 1e8 {
		t.Errorf("merge was not corrupted: %v", out)
	}
	if out[1] != 2 || out[2] != 3 {
		t.Errorf("corruption touched more than the first element: %v", out)
	}

	merged, err = sp.Merge([]any{[]float64{1, 2}}, core.SplitType{})
	if err != nil || merged.([]float64)[0] != 1 {
		t.Errorf("second merge should be clean: %v, %v", merged, err)
	}
}

func TestErrorOnMerge(t *testing.T) {
	inj := faultinject.New(0)
	inj.ErrorOnNthMerge("s", 1)
	sp := inj.WrapSplitter("s", chunkSplitter{})
	if _, err := sp.Merge([]any{[]float64{1}}, core.SplitType{}); err == nil {
		t.Error("want injected Merge error")
	}
}

func TestSeededRandomIsDeterministic(t *testing.T) {
	a := faultinject.New(99).PanicOnRandomCall("f", 1000)
	b := faultinject.New(99).PanicOnRandomCall("f", 1000)
	if a != b {
		t.Errorf("same seed chose different invocations: %d vs %d", a, b)
	}
	if a < 1 || a > 1000 {
		t.Errorf("chosen invocation %d out of range", a)
	}
}

func TestReset(t *testing.T) {
	inj := faultinject.New(0)
	fn := inj.WrapFunc("f", okFn)
	_, _ = fn([]any{1})
	inj.Reset()
	if got := inj.Count("f", faultinject.AspectCall); got != 0 {
		t.Errorf("Count after Reset = %d, want 0", got)
	}
}

// TestInjectorDrivesRuntimeFallback closes the loop: an injector-armed
// panic inside a real session is recovered and degraded by the runtime.
func TestInjectorDrivesRuntimeFallback(t *testing.T) {
	inj := faultinject.New(0)
	inj.PanicOnNthCall("lib", 2)
	double := inj.WrapFunc("lib", func(args []any) (any, error) {
		in := args[0].([]float64)
		out := make([]float64, len(in))
		for i, x := range in {
			out[i] = 2 * x
		}
		return out, nil
	})
	sexpr := core.Concrete("Chunk", inj.WrapSplitter("lib", chunkSplitter{}), func(args []any) (core.SplitType, error) {
		return core.NewSplitType("Chunk", int64(len(args[0].([]float64)))), nil
	})
	ret := sexpr
	sa := &core.Annotation{FuncName: "lib", Params: []core.Param{{Name: "a", Type: sexpr}}, Ret: &ret}

	data := make([]float64, 64)
	for i := range data {
		data[i] = float64(i)
	}
	s := core.NewSession(core.Options{Workers: 2, BatchElems: 8, FallbackPolicy: core.FallbackWholeCall})
	v, err := s.Call(double, sa, data).Get()
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	out := v.([]float64)
	for i := range data {
		if out[i] != 2*data[i] {
			t.Fatalf("out[%d] = %v, want %v", i, out[i], 2*data[i])
		}
	}
	if st := s.Stats(); st.RecoveredPanics < 1 || st.FallbackStages != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestTransientRangeFiresThenHeals: a fault armed for occurrences 2..4
// fires exactly there and the site succeeds again from occurrence 5 on.
func TestTransientRangeFiresThenHeals(t *testing.T) {
	inj := faultinject.New(0)
	inj.TransientErrorOnCalls("f", 2, 4)
	fn := inj.WrapFunc("f", okFn)
	for i := int64(1); i <= 7; i++ {
		_, err := fn([]any{1})
		wantErr := i >= 2 && i <= 4
		if wantErr != (err != nil) {
			t.Errorf("call %d: err = %v, want error: %v", i, err, wantErr)
		}
		if err != nil && !errors.Is(err, core.ErrTransient) {
			t.Errorf("call %d: error %v does not wrap core.ErrTransient", i, err)
		}
	}
}

// TestTransientSplitRange: the same range semantics on the Split aspect.
func TestTransientSplitRange(t *testing.T) {
	inj := faultinject.New(0)
	inj.TransientErrorOnSplits("arr", 1, 2)
	sp := inj.WrapSplitter("arr", chunkSplitter{})
	v := []float64{1, 2, 3, 4}
	for i := int64(1); i <= 4; i++ {
		_, err := sp.Split(v, core.SplitType{}, 0, 2)
		wantErr := i <= 2
		if wantErr != (err != nil) {
			t.Errorf("split %d: err = %v, want error: %v", i, err, wantErr)
		}
		if err != nil && !errors.Is(err, core.ErrTransient) {
			t.Errorf("split %d: error %v does not wrap core.ErrTransient", i, err)
		}
	}
	if got := inj.Count("arr", faultinject.AspectSplit); got != 4 {
		t.Errorf("Count = %d, want 4", got)
	}
}

// TestTransientRetryEndToEnd: an injected fail-once-then-succeed library
// error is absorbed by RetryPolicy and the result matches the fault-free
// run; the wrapper preserves the splitter's in-place declaration so the
// batch snapshot machinery engages.
func TestTransientRetryEndToEnd(t *testing.T) {
	run := func(retry core.RetryPolicy, inj *faultinject.Injector) ([]float64, core.StatsSnapshot, error) {
		n := 32
		a := make([]float64, n)
		out := make([]float64, n)
		for i := range a {
			a[i] = float64(i) + 0.5
		}
		arr := core.Concrete("ChunkSplit", inj.WrapSplitter("arr", chunkSplitter{}),
			core.FixedCtor(core.NewSplitType("ChunkSplit")))
		sa := &core.Annotation{FuncName: "copy", Params: []core.Param{
			{Name: "a", Type: arr},
			{Name: "out", Mut: true, Type: arr},
		}}
		fn := inj.WrapFunc("copy", func(args []any) (any, error) {
			src, dst := args[0].([]float64), args[1].([]float64)
			for i := range src {
				dst[i] += src[i]
			}
			return nil, nil
		})
		s := core.NewSession(core.Options{Workers: 2, BatchElems: 8, RetryPolicy: retry})
		s.Call(fn, sa, a, out)
		err := s.EvaluateContext(context.Background())
		return out, s.Stats(), err
	}

	// Retries disabled: the transient error aborts the evaluation.
	inj := faultinject.New(0)
	inj.TransientErrorOnCalls("copy", 2, 2)
	if _, _, err := run(core.RetryPolicy{}, inj); err == nil {
		t.Fatal("retries disabled: want the injected transient error to fail Evaluate")
	}

	// MaxAttempts 3: the replay succeeds and the accumulate applies once.
	inj = faultinject.New(0)
	inj.TransientErrorOnCalls("copy", 2, 2)
	out, st, err := run(core.RetryPolicy{MaxAttempts: 3, Sleep: func(time.Duration) {}}, inj)
	if err != nil {
		t.Fatalf("with retry: %v", err)
	}
	for i := range out {
		want := float64(i) + 0.5
		if out[i] != want {
			t.Fatalf("out[%d] = %v, want %v (batch replay not idempotent)", i, out[i], want)
		}
	}
	if st.RetriedBatches != 1 {
		t.Errorf("RetriedBatches = %d, want 1", st.RetriedBatches)
	}
}

func TestLatencyInjectionDelaysCalls(t *testing.T) {
	inj := faultinject.New(3)
	inj.LatencyOnCalls("slowsite", 5*time.Millisecond, 15*time.Millisecond)
	fn := inj.WrapFunc("slowsite", func(args []any) (any, error) { return nil, nil })
	for i := 0; i < 3; i++ {
		start := time.Now()
		if _, err := fn(nil); err != nil {
			t.Fatalf("wrapped func: %v", err)
		}
		if el := time.Since(start); el < 5*time.Millisecond {
			t.Fatalf("call %d returned after %v, want >= 5ms of injected latency", i, el)
		}
	}
	if got := inj.Count("slowsite", faultinject.AspectCall); got != 3 {
		t.Fatalf("Count = %d, want 3", got)
	}
}

// TestHookOnNthCall: a KindHook fault runs its hook on exactly the Nth
// invocation and never perturbs the call's own result.
func TestHookOnNthCall(t *testing.T) {
	inj := faultinject.New(0)
	var fired int
	inj.HookOnNthCall("f", 3, func() { fired++ })
	fn := inj.WrapFunc("f", okFn)
	for i := 0; i < 5; i++ {
		got, err := fn([]any{i})
		if err != nil {
			t.Fatalf("call %d errored: %v", i, err)
		}
		if got != i {
			t.Fatalf("call %d returned %v, want %v", i, got, i)
		}
	}
	if fired != 1 {
		t.Fatalf("hook fired %d times, want 1", fired)
	}
}

// TestSqueezeBudgetOnNthCall: the budget-squeeze fault shrinks the Governor
// mid-sequence; calls before the squeeze see the original budget, calls
// after it see the shrunken one.
func TestSqueezeBudgetOnNthCall(t *testing.T) {
	g := core.NewGovernor(1 << 20)
	inj := faultinject.New(0)
	inj.SqueezeBudgetOnNthCall("f", 2, g, 4096)
	fn := inj.WrapFunc("f", okFn)

	if _, err := fn([]any{0}); err != nil {
		t.Fatal(err)
	}
	if got := g.Budget(); got != 1<<20 {
		t.Fatalf("budget before squeeze = %d, want %d", got, 1<<20)
	}
	if _, err := fn([]any{1}); err != nil {
		t.Fatal(err)
	}
	if got := g.Budget(); got != 4096 {
		t.Fatalf("budget after squeeze = %d, want 4096", got)
	}
	// The shrunken budget gates admission immediately.
	if _, ok := g.TryAdmit(8192); ok {
		t.Fatal("TryAdmit above the squeezed budget succeeded")
	}
}
