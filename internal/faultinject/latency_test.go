package faultinject

import (
	"testing"
	"time"
)

// TestDelayForBounds: every draw of a ranged KindSlow fault lands inside
// [Delay, DelayMax], inclusive.
func TestDelayForBounds(t *testing.T) {
	in := New(7)
	f := Fault{Kind: KindSlow, Delay: 2 * time.Millisecond, DelayMax: 9 * time.Millisecond}
	for i := 0; i < 1000; i++ {
		d := in.delayFor(f)
		if d < f.Delay || d > f.DelayMax {
			t.Fatalf("draw %d: delay %v outside [%v, %v]", i, d, f.Delay, f.DelayMax)
		}
	}
}

// TestDelayForSeedDeterminism: the same seed replays the same sequence of
// latency draws, and a different seed produces a different one.
func TestDelayForSeedDeterminism(t *testing.T) {
	f := Fault{Kind: KindSlow, Delay: time.Millisecond, DelayMax: 50 * time.Millisecond}
	draw := func(seed int64) []time.Duration {
		in := New(seed)
		out := make([]time.Duration, 64)
		for i := range out {
			out[i] = in.delayFor(f)
		}
		return out
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := draw(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("different seeds produced an identical 64-draw latency schedule")
	}
}

// TestDelayForFixed: without a DelayMax the sleep is exactly Delay and the
// RNG is never consulted (a fixed slow fault must not perturb seeded draws
// elsewhere).
func TestDelayForFixed(t *testing.T) {
	in := New(1)
	want := in.rng.Int63() // next value the shared RNG would yield
	in2 := New(1)
	f := Fault{Kind: KindSlow, Delay: 3 * time.Millisecond}
	for i := 0; i < 10; i++ {
		if d := in2.delayFor(f); d != 3*time.Millisecond {
			t.Fatalf("fixed delay draw %d = %v, want 3ms", i, d)
		}
	}
	if got := in2.rng.Int63(); got != want {
		t.Fatalf("fixed-delay path consumed the seeded RNG")
	}
}
