package weldsim

import (
	"math"
	"math/rand"
	"testing"
)

func randVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()*3 + 0.2
	}
	return v
}

func TestFusedElementwise(t *testing.T) {
	n := 1003
	a, b := randVec(n, 1), randVec(n, 2)
	expr := Source(a).Log1p().Add(Source(b)).Div(Source(b).Sqrt()).MulS(2)
	got := Eval(3, expr)[0]
	for i := 0; i < n; i++ {
		want := (math.Log1p(a[i]) + b[i]) / math.Sqrt(b[i]) * 2
		if math.Abs(got[i]-want) > 1e-12*(1+math.Abs(want)) {
			t.Fatalf("idx %d: %v want %v", i, got[i], want)
		}
	}
}

func TestAllOps(t *testing.T) {
	n := 257
	a, b := randVec(n, 3), randVec(n, 4)
	va, vb := Source(a), Source(b)
	cases := []struct {
		name string
		expr Vec
		ref  func(i int) float64
	}{
		{"Add", va.Add(vb), func(i int) float64 { return a[i] + b[i] }},
		{"Sub", va.Sub(vb), func(i int) float64 { return a[i] - b[i] }},
		{"Mul", va.Mul(vb), func(i int) float64 { return a[i] * b[i] }},
		{"Div", va.Div(vb), func(i int) float64 { return a[i] / b[i] }},
		{"Max", va.Max(vb), func(i int) float64 { return math.Max(a[i], b[i]) }},
		{"Min", va.Min(vb), func(i int) float64 { return math.Min(a[i], b[i]) }},
		{"Pow", va.Pow(vb), func(i int) float64 { return math.Pow(a[i], b[i]) }},
		{"Atan2", va.Atan2(vb), func(i int) float64 { return math.Atan2(a[i], b[i]) }},
		{"Gt", va.Gt(vb), func(i int) float64 {
			if a[i] > b[i] {
				return 1
			}
			return 0
		}},
		{"AddS", va.AddS(2), func(i int) float64 { return a[i] + 2 }},
		{"SubS", va.SubS(2), func(i int) float64 { return a[i] - 2 }},
		{"RSubS", va.RSubS(2), func(i int) float64 { return 2 - a[i] }},
		{"MulS", va.MulS(2), func(i int) float64 { return a[i] * 2 }},
		{"DivS", va.DivS(2), func(i int) float64 { return a[i] / 2 }},
		{"RDivS", va.RDivS(2), func(i int) float64 { return 2 / a[i] }},
		{"GtS", va.GtS(1), func(i int) float64 {
			if a[i] > 1 {
				return 1
			}
			return 0
		}},
		{"LtS", va.LtS(1), func(i int) float64 {
			if a[i] < 1 {
				return 1
			}
			return 0
		}},
		{"Sqrt", va.Sqrt(), func(i int) float64 { return math.Sqrt(a[i]) }},
		{"Exp", va.Exp(), func(i int) float64 { return math.Exp(a[i]) }},
		{"Log", va.Log(), func(i int) float64 { return math.Log(a[i]) }},
		{"Log1p", va.Log1p(), func(i int) float64 { return math.Log1p(a[i]) }},
		{"Log2", va.Log2(), func(i int) float64 { return math.Log2(a[i]) }},
		{"Erf", va.Erf(), func(i int) float64 { return math.Erf(a[i]) }},
		{"CdfNorm", va.CdfNorm(), func(i int) float64 { return 0.5 * math.Erfc(-a[i]/math.Sqrt2) }},
		{"Abs", va.Abs(), func(i int) float64 { return math.Abs(a[i]) }},
		{"Neg", va.Neg(), func(i int) float64 { return -a[i] }},
		{"Sin", va.Sin(), func(i int) float64 { return math.Sin(a[i]) }},
		{"Cos", va.Cos(), func(i int) float64 { return math.Cos(a[i]) }},
		{"Square", va.Square(), func(i int) float64 { return a[i] * a[i] }},
		{"Select", va.Gt(vb).Select(va, vb), func(i int) float64 {
			if a[i] > b[i] {
				return a[i]
			}
			return b[i]
		}},
		{"Const", Const(7, n), func(i int) float64 { return 7 }},
	}
	for _, c := range cases {
		got := Eval(2, c.expr)[0]
		for i := 0; i < n; i++ {
			if want := c.ref(i); math.Abs(got[i]-want) > 1e-12*(1+math.Abs(want)) {
				t.Fatalf("%s idx %d: %v want %v", c.name, i, got[i], want)
			}
		}
	}
}

func TestMultiOutputSinglePass(t *testing.T) {
	n := 500
	a := randVec(n, 5)
	va := Source(a)
	outs := Eval(4, va.MulS(2), va.AddS(1))
	for i := 0; i < n; i++ {
		if outs[0][i] != a[i]*2 || outs[1][i] != a[i]+1 {
			t.Fatal("multi-output")
		}
	}
}

func TestSumAndThreads(t *testing.T) {
	n := 4001
	a := randVec(n, 6)
	want := 0.0
	for _, x := range a {
		want += x * x
	}
	for _, threads := range []int{1, 2, 7} {
		got := Source(a).Square().Sum(threads)
		if math.Abs(got-want) > 1e-7*(1+want) {
			t.Fatalf("threads=%d: %v want %v", threads, got, want)
		}
	}
}

func TestFilterPack(t *testing.T) {
	n := 999
	a := randVec(n, 7)
	va := Source(a)
	got := FilterPack(va.MulS(10), va.GtS(2), 3)
	var want []float64
	for _, x := range a {
		if x > 2 {
			want = append(want, x*10)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("len %d want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("FilterPack order/content")
		}
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Source(make([]float64, 3)).Add(Source(make([]float64, 4)))
}

func TestGroupSumByKey(t *testing.T) {
	keys := []string{"a", "b", "a", "c", "b", "a"}
	vals := []float64{1, 2, 3, 4, 5, 6}
	g := GroupSumByKey(keys, vals, 3)
	if g.Sums["a"] != 10 || g.Counts["a"] != 3 || g.Sums["c"] != 4 {
		t.Fatalf("sums %v counts %v", g.Sums, g.Counts)
	}
	if math.Abs(g.Mean("b")-3.5) > 1e-12 || g.Mean("zzz") != 0 {
		t.Fatal("Mean")
	}
	ks := g.Keys()
	if len(ks) != 3 || ks[0] != "a" || ks[2] != "c" {
		t.Fatalf("Keys %v", ks)
	}
}

func TestHashJoinGather(t *testing.T) {
	build := BuildIndexI64([]int64{10, 20, 30, 20})
	if build[20] != 1 {
		t.Fatal("BuildIndexI64 keeps first")
	}
	probe := []int64{20, 99, 10, 30, 20}
	p, b := HashJoinGather(probe, build, 2)
	if len(p) != 4 || len(b) != 4 {
		t.Fatalf("matches %d", len(p))
	}
	if p[0] != 0 || b[0] != 1 || p[1] != 2 || b[1] != 0 {
		t.Fatalf("gather %v %v", p, b)
	}
}

// TestParallelRanges covers chunk partitioning edge cases.
func TestParallelRanges(t *testing.T) {
	if got := parallelRanges(10, 3); len(got) != 3 || got[0] != [2]int{0, 4} || got[2] != [2]int{7, 10} {
		t.Fatalf("ranges %v", got)
	}
	if got := parallelRanges(2, 8); len(got) != 2 {
		t.Fatal("threads clamp to n")
	}
	if got := parallelRanges(0, 4); len(got) != 0 {
		t.Fatal("empty input")
	}
	if got := parallelRanges(5, 0); len(got) != 1 {
		t.Fatal("zero threads clamp to 1")
	}
}
