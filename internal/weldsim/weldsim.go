// Package weldsim is the repository's stand-in for the IR-based optimizing
// compilers the paper compares against (Weld, Bohrium, Numba): a lazily
// built expression DAG over vectors with loop fusion and parallel
// execution.
//
// Like Weld, the engine's win is data movement: an arbitrarily long chain
// of elementwise operators evaluates in a single pass with intermediates
// kept in registers, so each source element is loaded from memory exactly
// once. Unlike Weld, there is no JIT — fused expressions are interpreted
// through composed closures, the closest pure-Go equivalent (the
// substitution is documented in DESIGN.md). This preserves the comparison
// the paper makes: fusion ≈ Mozart's pipelining for memory-bound chains,
// while per-element interpretation overhead stands in for the cases where
// generated code loses to hand-optimized kernels (§8.2, MKL workloads).
package weldsim

import (
	"math"
	"sync"
)

// Op enumerates IR node kinds.
type Op int

// IR node kinds.
const (
	opSource Op = iota
	opConst
	opUnary
	opBinary
	opSelect
)

// Vec is a lazily evaluated vector expression.
type Vec struct {
	node *node
}

type node struct {
	op     Op
	length int
	data   []float64 // opSource
	c      float64   // opConst
	uf     func(x float64) float64
	bf     func(x, y float64) float64
	args   []*node
}

// Source wraps an existing vector as an IR leaf.
func Source(data []float64) Vec {
	return Vec{&node{op: opSource, length: len(data), data: data}}
}

// Const builds a broadcast constant of length n.
func Const(c float64, n int) Vec {
	return Vec{&node{op: opConst, length: n, c: c}}
}

// Len returns the vector length.
func (v Vec) Len() int { return v.node.length }

func (v Vec) unary(f func(float64) float64) Vec {
	return Vec{&node{op: opUnary, length: v.node.length, uf: f, args: []*node{v.node}}}
}

func (v Vec) binary(o Vec, f func(x, y float64) float64) Vec {
	if v.node.length != o.node.length {
		panic("weldsim: length mismatch")
	}
	return Vec{&node{op: opBinary, length: v.node.length, bf: f, args: []*node{v.node, o.node}}}
}

// Add returns v + o.
func (v Vec) Add(o Vec) Vec { return v.binary(o, func(x, y float64) float64 { return x + y }) }

// Sub returns v - o.
func (v Vec) Sub(o Vec) Vec { return v.binary(o, func(x, y float64) float64 { return x - y }) }

// Mul returns v * o.
func (v Vec) Mul(o Vec) Vec { return v.binary(o, func(x, y float64) float64 { return x * y }) }

// Div returns v / o.
func (v Vec) Div(o Vec) Vec { return v.binary(o, func(x, y float64) float64 { return x / y }) }

// Max returns max(v, o).
func (v Vec) Max(o Vec) Vec { return v.binary(o, math.Max) }

// Min returns min(v, o).
func (v Vec) Min(o Vec) Vec { return v.binary(o, math.Min) }

// Pow returns v^o.
func (v Vec) Pow(o Vec) Vec { return v.binary(o, math.Pow) }

// Atan2 returns atan2(v, o).
func (v Vec) Atan2(o Vec) Vec { return v.binary(o, math.Atan2) }

// Gt returns the v > o mask as 0/1.
func (v Vec) Gt(o Vec) Vec {
	return v.binary(o, func(x, y float64) float64 {
		if x > y {
			return 1
		}
		return 0
	})
}

// AddS returns v + c.
func (v Vec) AddS(c float64) Vec { return v.unary(func(x float64) float64 { return x + c }) }

// SubS returns v - c.
func (v Vec) SubS(c float64) Vec { return v.unary(func(x float64) float64 { return x - c }) }

// RSubS returns c - v.
func (v Vec) RSubS(c float64) Vec { return v.unary(func(x float64) float64 { return c - x }) }

// MulS returns v * c.
func (v Vec) MulS(c float64) Vec { return v.unary(func(x float64) float64 { return x * c }) }

// DivS returns v / c.
func (v Vec) DivS(c float64) Vec { return v.unary(func(x float64) float64 { return x / c }) }

// RDivS returns c / v.
func (v Vec) RDivS(c float64) Vec { return v.unary(func(x float64) float64 { return c / x }) }

// GtS returns the v > c mask as 0/1.
func (v Vec) GtS(c float64) Vec {
	return v.unary(func(x float64) float64 {
		if x > c {
			return 1
		}
		return 0
	})
}

// LtS returns the v < c mask as 0/1.
func (v Vec) LtS(c float64) Vec {
	return v.unary(func(x float64) float64 {
		if x < c {
			return 1
		}
		return 0
	})
}

// Sqrt returns sqrt(v).
func (v Vec) Sqrt() Vec { return v.unary(math.Sqrt) }

// Exp returns e^v.
func (v Vec) Exp() Vec { return v.unary(math.Exp) }

// Log returns ln(v).
func (v Vec) Log() Vec { return v.unary(math.Log) }

// Log1p returns ln(1+v).
func (v Vec) Log1p() Vec { return v.unary(math.Log1p) }

// Log2 returns log2(v).
func (v Vec) Log2() Vec { return v.unary(math.Log2) }

// Erf returns erf(v).
func (v Vec) Erf() Vec { return v.unary(math.Erf) }

// CdfNorm returns the standard normal CDF of v.
func (v Vec) CdfNorm() Vec {
	return v.unary(func(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) })
}

// Abs returns |v|.
func (v Vec) Abs() Vec { return v.unary(math.Abs) }

// Neg returns -v.
func (v Vec) Neg() Vec { return v.unary(func(x float64) float64 { return -x }) }

// Sin returns sin(v).
func (v Vec) Sin() Vec { return v.unary(math.Sin) }

// Cos returns cos(v).
func (v Vec) Cos() Vec { return v.unary(math.Cos) }

// Square returns v*v.
func (v Vec) Square() Vec { return v.unary(func(x float64) float64 { return x * x }) }

// Select returns mask != 0 ? tr : fa, elementwise.
func (v Vec) Select(tr, fa Vec) Vec {
	if v.node.length != tr.node.length || v.node.length != fa.node.length {
		panic("weldsim: length mismatch")
	}
	return Vec{&node{op: opSelect, length: v.node.length, args: []*node{v.node, tr.node, fa.node}}}
}

// compile fuses the expression tree into a single per-element closure —
// the interpretive analogue of Weld's generated fused loop.
func compile(n *node) func(i int) float64 {
	switch n.op {
	case opSource:
		data := n.data
		return func(i int) float64 { return data[i] }
	case opConst:
		c := n.c
		return func(int) float64 { return c }
	case opUnary:
		arg := compile(n.args[0])
		f := n.uf
		return func(i int) float64 { return f(arg(i)) }
	case opBinary:
		a, b := compile(n.args[0]), compile(n.args[1])
		f := n.bf
		return func(i int) float64 { return f(a(i), b(i)) }
	case opSelect:
		m, tr, fa := compile(n.args[0]), compile(n.args[1]), compile(n.args[2])
		return func(i int) float64 {
			if m(i) != 0 {
				return tr(i)
			}
			return fa(i)
		}
	}
	panic("weldsim: unknown op")
}

// parallelRanges partitions [0, n) into near-equal contiguous chunks.
func parallelRanges(n, threads int) [][2]int {
	if threads < 1 {
		threads = 1
	}
	if threads > n {
		threads = n
	}
	if threads == 0 {
		return nil
	}
	per, rem := n/threads, n%threads
	out := make([][2]int, 0, threads)
	lo := 0
	for i := 0; i < threads; i++ {
		hi := lo + per
		if i < rem {
			hi++
		}
		out = append(out, [2]int{lo, hi})
		lo = hi
	}
	return out
}

// Eval materializes the outputs in one fused parallel pass. All outputs
// must share a length; every source element is read exactly once per
// output expression and intermediates never touch memory.
func Eval(threads int, outs ...Vec) [][]float64 {
	if len(outs) == 0 {
		return nil
	}
	n := outs[0].Len()
	for _, o := range outs {
		if o.Len() != n {
			panic("weldsim: Eval outputs must share a length")
		}
	}
	fns := make([]func(int) float64, len(outs))
	for i, o := range outs {
		fns[i] = compile(o.node)
	}
	results := make([][]float64, len(outs))
	for i := range results {
		results[i] = make([]float64, n)
	}
	var wg sync.WaitGroup
	for _, r := range parallelRanges(n, threads) {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				for o, f := range fns {
					results[o][i] = f(i)
				}
			}
		}(r[0], r[1])
	}
	wg.Wait()
	return results
}

// Sum reduces the expression with a fused parallel sum.
func (v Vec) Sum(threads int) float64 {
	f := compile(v.node)
	ranges := parallelRanges(v.Len(), threads)
	partials := make([]float64, len(ranges))
	var wg sync.WaitGroup
	for ri, r := range ranges {
		wg.Add(1)
		go func(ri, lo, hi int) {
			defer wg.Done()
			s := 0.0
			for i := lo; i < hi; i++ {
				s += f(i)
			}
			partials[ri] = s
		}(ri, r[0], r[1])
	}
	wg.Wait()
	total := 0.0
	for _, p := range partials {
		total += p
	}
	return total
}

// FilterPack evaluates v where mask is non-zero and packs the survivors,
// preserving order (Weld's filter builder).
func FilterPack(v, mask Vec, threads int) []float64 {
	if v.Len() != mask.Len() {
		panic("weldsim: FilterPack length mismatch")
	}
	fv, fm := compile(v.node), compile(mask.node)
	ranges := parallelRanges(v.Len(), threads)
	chunks := make([][]float64, len(ranges))
	var wg sync.WaitGroup
	for ri, r := range ranges {
		wg.Add(1)
		go func(ri, lo, hi int) {
			defer wg.Done()
			var out []float64
			for i := lo; i < hi; i++ {
				if fm(i) != 0 {
					out = append(out, fv(i))
				}
			}
			chunks[ri] = out
		}(ri, r[0], r[1])
	}
	wg.Wait()
	var out []float64
	for _, c := range chunks {
		out = append(out, c...)
	}
	return out
}
