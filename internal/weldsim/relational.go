package weldsim

import (
	"sort"
	"sync"
)

// Relational builders, standing in for Weld's dictmerger and the joins the
// Pandas-on-Weld integration generated.

// GroupAgg is a partial grouped aggregation keyed by string.
type GroupAgg struct {
	Sums   map[string]float64
	Counts map[string]int64
}

// newGroupAgg allocates an empty partial.
func newGroupAgg() *GroupAgg {
	return &GroupAgg{Sums: map[string]float64{}, Counts: map[string]int64{}}
}

// merge folds o into g.
func (g *GroupAgg) merge(o *GroupAgg) {
	for k, v := range o.Sums {
		g.Sums[k] += v
	}
	for k, v := range o.Counts {
		g.Counts[k] += v
	}
}

// Keys returns the group keys in sorted order.
func (g *GroupAgg) Keys() []string {
	out := make([]string, 0, len(g.Sums))
	for k := range g.Sums {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Mean returns the mean for a key (NaN-free: zero count gives 0).
func (g *GroupAgg) Mean(key string) float64 {
	if g.Counts[key] == 0 {
		return 0
	}
	return g.Sums[key] / float64(g.Counts[key])
}

// GroupSumByKey aggregates vals by string keys with parallel partial
// dictionaries merged at the end (Weld's dictmerger[+]).
func GroupSumByKey(keys []string, vals []float64, threads int) *GroupAgg {
	ranges := parallelRanges(len(keys), threads)
	partials := make([]*GroupAgg, len(ranges))
	var wg sync.WaitGroup
	for ri, r := range ranges {
		wg.Add(1)
		go func(ri, lo, hi int) {
			defer wg.Done()
			p := newGroupAgg()
			for i := lo; i < hi; i++ {
				p.Sums[keys[i]] += vals[i]
				p.Counts[keys[i]]++
			}
			partials[ri] = p
		}(ri, r[0], r[1])
	}
	wg.Wait()
	acc := newGroupAgg()
	for _, p := range partials {
		acc.merge(p)
	}
	return acc
}

// HashJoinGather probes build (right key -> row) with probeKeys and returns
// (probe row indices, build row indices) for inner-join matches. The build
// dictionary is shared across threads, like a Weld dictionary broadcast.
func HashJoinGather(probeKeys []int64, build map[int64]int32, threads int) (probeIdx, buildIdx []int32) {
	ranges := parallelRanges(len(probeKeys), threads)
	type pair struct{ p, b []int32 }
	chunks := make([]pair, len(ranges))
	var wg sync.WaitGroup
	for ri, r := range ranges {
		wg.Add(1)
		go func(ri, lo, hi int) {
			defer wg.Done()
			var ps, bs []int32
			for i := lo; i < hi; i++ {
				if b, ok := build[probeKeys[i]]; ok {
					ps = append(ps, int32(i))
					bs = append(bs, b)
				}
			}
			chunks[ri] = pair{ps, bs}
		}(ri, r[0], r[1])
	}
	wg.Wait()
	for _, c := range chunks {
		probeIdx = append(probeIdx, c.p...)
		buildIdx = append(buildIdx, c.b...)
	}
	return probeIdx, buildIdx
}

// BuildIndexI64 builds the join dictionary from key to first row index.
func BuildIndexI64(keys []int64) map[int64]int32 {
	out := make(map[int64]int32, len(keys))
	for i, k := range keys {
		if _, ok := out[k]; !ok {
			out[k] = int32(i)
		}
	}
	return out
}
