// Package spill is the out-of-core executor's merge-partial store: a
// temp-file, append-only frame log the streaming executor writes one frame
// per (output, window) into and replays in order at stage finale.
//
// Design constraints, in order:
//
//   - Integrity: every frame carries a CRC-32 (IEEE) over its payload and a
//     sequence number; Replay verifies both, so a torn write, disk bitflip,
//     or truncation surfaces as a structured error instead of silently
//     corrupt merged output.
//   - Crash safety: each process namespaces its stores under a directory
//     embedding its PID ("mozart-spill-<pid>-*"). SweepOrphans removes
//     directories whose owning process is gone, so a crashed evaluation
//     never leaks disk.
//   - Clean drain: Store.Close force-removes the directory (idempotently),
//     and the package-level OpenStores counter lets a draining server
//     assert zero live stores the same way the Governor asserts zero
//     reserved bytes.
//
// Frame layout, little-endian:
//
//	magic "MZSP" | uint32 seq | uint32 payload len | uint32 CRC-32(payload) | payload
package spill

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// frame header: magic(4) + seq(4) + len(4) + crc(4).
const headerLen = 16

var magic = [4]byte{'M', 'Z', 'S', 'P'}

// ErrCorrupt is wrapped by every integrity failure Replay detects (bad
// magic, sequence gap, CRC mismatch, truncated frame).
var ErrCorrupt = errors.New("spill: corrupt frame")

// openStores counts live (un-Closed) Stores process-wide.
var openStores atomic.Int64

// OpenStores returns the number of Stores created and not yet closed in
// this process. A byte-clean drain requires it to be zero.
func OpenStores() int64 { return openStores.Load() }

// Store is one stage's spill directory: a set of named append-only frame
// streams under a private temp directory. Safe for concurrent use across
// streams; each individual Stream is single-writer (the streaming executor
// appends from the coordinating goroutine).
type Store struct {
	dir string

	mu      sync.Mutex
	streams map[string]*Stream
	closed  bool
}

// NewStore creates a spill store under dir (the OS temp dir when empty).
// The directory name embeds the process PID so SweepOrphans can reclaim it
// if the process dies before Close.
func NewStore(dir string) (*Store, error) {
	root, err := os.MkdirTemp(dir, fmt.Sprintf("mozart-spill-%d-*", os.Getpid()))
	if err != nil {
		return nil, fmt.Errorf("spill: create store: %w", err)
	}
	openStores.Add(1)
	return &Store{dir: root, streams: map[string]*Stream{}}, nil
}

// Dir returns the store's directory path.
func (s *Store) Dir() string { return s.dir }

// Stream returns (creating on first use) the named frame stream.
func (s *Store) Stream(name string) (*Stream, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("spill: store is closed")
	}
	if st, ok := s.streams[name]; ok {
		return st, nil
	}
	f, err := os.OpenFile(filepath.Join(s.dir, name+".mzsp"), os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o600)
	if err != nil {
		return nil, fmt.Errorf("spill: open stream %q: %w", name, err)
	}
	st := &Stream{f: f}
	s.streams[name] = st
	return st, nil
}

// Bytes returns the total payload bytes appended across all streams.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, st := range s.streams {
		n += st.bytes
	}
	return n
}

// Frames returns the total frames appended across all streams.
func (s *Store) Frames() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, st := range s.streams {
		n += int64(st.seq)
	}
	return n
}

// Close force-removes the store's directory and every stream in it.
// Idempotent; the first call decrements the OpenStores counter.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for _, st := range s.streams {
		if err := st.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	if err := os.RemoveAll(s.dir); err != nil && first == nil {
		first = err
	}
	openStores.Add(-1)
	return first
}

// Stream is one append-only frame log. Append and Replay may interleave
// (Replay reads at independent offsets), but Append itself is single-writer.
type Stream struct {
	f     *os.File
	mu    sync.Mutex
	seq   uint32
	bytes int64
}

// Append writes one CRC-framed payload and returns its sequence number.
func (st *Stream) Append(payload []byte) (seq uint32, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	var hdr [headerLen]byte
	copy(hdr[:4], magic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], st.seq)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[12:16], crc32.ChecksumIEEE(payload))
	if _, err := st.f.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("spill: append header: %w", err)
	}
	if _, err := st.f.Write(payload); err != nil {
		return 0, fmt.Errorf("spill: append payload: %w", err)
	}
	seq = st.seq
	st.seq++
	st.bytes += int64(len(payload))
	return seq, nil
}

// Frames returns the number of frames appended so far.
func (st *Stream) Frames() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return int64(st.seq)
}

// Bytes returns the payload bytes appended so far.
func (st *Stream) Bytes() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.bytes
}

// Replay reads every frame in append order, verifying magic, sequence
// continuity, and payload CRC, and calls fn for each. The payload slice is
// reused between calls; fn must not retain it. Any integrity failure
// returns an error wrapping ErrCorrupt.
func (st *Stream) Replay(fn func(seq uint32, payload []byte) error) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	want := st.seq
	r := io.NewSectionReader(st.f, 0, 1<<62)
	var hdr [headerLen]byte
	var buf []byte
	for i := uint32(0); i < want; i++ {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return fmt.Errorf("%w: frame %d: truncated header: %v", ErrCorrupt, i, err)
		}
		if [4]byte(hdr[:4]) != magic {
			return fmt.Errorf("%w: frame %d: bad magic %q", ErrCorrupt, i, hdr[:4])
		}
		if seq := binary.LittleEndian.Uint32(hdr[4:8]); seq != i {
			return fmt.Errorf("%w: frame %d: sequence %d out of order", ErrCorrupt, i, seq)
		}
		n := binary.LittleEndian.Uint32(hdr[8:12])
		if cap(buf) < int(n) {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(r, buf); err != nil {
			return fmt.Errorf("%w: frame %d: truncated payload: %v", ErrCorrupt, i, err)
		}
		if got, wantCRC := crc32.ChecksumIEEE(buf), binary.LittleEndian.Uint32(hdr[12:16]); got != wantCRC {
			return fmt.Errorf("%w: frame %d: CRC %08x != %08x", ErrCorrupt, i, got, wantCRC)
		}
		if err := fn(i, buf); err != nil {
			return err
		}
	}
	return nil
}

// SweepOrphans scans root (the OS temp dir when empty) for spill
// directories left behind by dead processes and removes them. It returns
// the directories removed. Directories owned by live processes — including
// this one — are left alone.
func SweepOrphans(root string) ([]string, error) {
	if root == "" {
		root = os.TempDir()
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	var removed []string
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "mozart-spill-") {
			continue
		}
		rest := strings.TrimPrefix(e.Name(), "mozart-spill-")
		dash := strings.IndexByte(rest, '-')
		if dash <= 0 {
			continue
		}
		pid, err := strconv.Atoi(rest[:dash])
		if err != nil || pid <= 0 || pidAlive(pid) {
			continue
		}
		dir := filepath.Join(root, e.Name())
		if err := os.RemoveAll(dir); err == nil {
			removed = append(removed, dir)
		}
	}
	return removed, nil
}

// pidAlive reports whether a process with the given PID exists. On Linux
// /proc/<pid> is authoritative; elsewhere fall back to assuming alive
// (never reclaim a live process's spill).
func pidAlive(pid int) bool {
	if _, err := os.Stat(filepath.Join("/proc", strconv.Itoa(pid))); err == nil {
		return true
	} else if os.IsNotExist(err) {
		if _, perr := os.Stat("/proc/self"); perr == nil {
			return false
		}
	}
	return true
}
