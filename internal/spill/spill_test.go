package spill

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestStreamRoundTrip(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	st, err := s.Stream("out0")
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 20; i++ {
		p := []byte(fmt.Sprintf("frame-%d-%s", i, string(make([]byte, i*7))))
		want = append(want, append([]byte(nil), p...))
		seq, err := st.Append(p)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint32(i) {
			t.Fatalf("Append seq = %d, want %d", seq, i)
		}
	}
	if st.Frames() != 20 {
		t.Fatalf("Frames = %d, want 20", st.Frames())
	}
	var got int
	err = st.Replay(func(seq uint32, payload []byte) error {
		if string(payload) != string(want[seq]) {
			t.Fatalf("frame %d payload mismatch", seq)
		}
		got++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 20 {
		t.Fatalf("replayed %d frames, want 20", got)
	}
	// Append after a replay still works and replays again from the start.
	if _, err := st.Append([]byte("late")); err != nil {
		t.Fatal(err)
	}
	var last []byte
	if err := st.Replay(func(_ uint32, p []byte) error { last = append(last[:0], p...); return nil }); err != nil {
		t.Fatal(err)
	}
	if string(last) != "late" {
		t.Fatalf("last replayed frame = %q, want %q", last, "late")
	}
}

func TestReplayDetectsCorruption(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st, err := s.Stream("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append([]byte("hello spill frame")); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte on disk, behind the Stream's back.
	if _, err := st.f.WriteAt([]byte{'X'}, headerLen+2); err != nil {
		t.Fatal(err)
	}
	err = st.Replay(func(uint32, []byte) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Replay after bitflip = %v, want ErrCorrupt", err)
	}
}

func TestReplayDetectsTruncation(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st, err := s.Stream("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if err := st.f.Truncate(headerLen + 4); err != nil {
		t.Fatal(err)
	}
	err = st.Replay(func(uint32, []byte) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Replay after truncation = %v, want ErrCorrupt", err)
	}
}

func TestCloseRemovesDirAndCounts(t *testing.T) {
	base := OpenStores()
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if got := OpenStores(); got != base+1 {
		t.Fatalf("OpenStores after NewStore = %d, want %d", got, base+1)
	}
	st, err := s.Stream("y")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	dir := s.Dir()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("spill dir %s survived Close (stat err %v)", dir, err)
	}
	if got := OpenStores(); got != base {
		t.Fatalf("OpenStores after Close = %d, want %d", got, base)
	}
	// Idempotent: a second Close neither errors nor double-decrements.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := OpenStores(); got != base {
		t.Fatalf("OpenStores after double Close = %d, want %d", got, base)
	}
	if _, err := s.Stream("z"); err == nil {
		t.Fatal("Stream on closed store succeeded")
	}
}

func TestSweepOrphans(t *testing.T) {
	root := t.TempDir()
	// A dead process's leftover (PID 1<<30 cannot exist) and a live one
	// (our own PID).
	dead := filepath.Join(root, fmt.Sprintf("mozart-spill-%d-abc", 1<<30))
	live := filepath.Join(root, fmt.Sprintf("mozart-spill-%d-def", os.Getpid()))
	other := filepath.Join(root, "unrelated-dir")
	for _, d := range []string{dead, live, other} {
		if err := os.Mkdir(d, 0o700); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := SweepOrphans(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != dead {
		t.Fatalf("SweepOrphans removed %v, want only %s", removed, dead)
	}
	if _, err := os.Stat(live); err != nil {
		t.Fatalf("live store swept: %v", err)
	}
	if _, err := os.Stat(other); err != nil {
		t.Fatalf("unrelated dir swept: %v", err)
	}
}
