package frame

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// AggKind enumerates grouped aggregation functions. All are commutative, the
// restriction the paper's Pandas integration notes for GroupSplit.
type AggKind int

// Aggregation kinds.
const (
	AggSum AggKind = iota
	AggCount
	AggMin
	AggMax
	AggMean
)

// AggSpec names one aggregation: Kind over column Col, output column As.
type AggSpec struct {
	Col  string
	Kind AggKind
	As   string
}

// groupRow is a partial aggregate for one group key.
type groupRow struct {
	keyS   []string  // key values (string columns)
	keyI   []int64   // key values (int columns)
	sums   []float64 // per spec
	counts []int64
	mins   []float64
	maxs   []float64
}

// Grouped is a partial grouped aggregation. Partials from row chunks of the
// same GroupBy combine associatively and re-aggregate, which is exactly the
// merge the paper's GroupSplit split type implements.
type Grouped struct {
	Keys     []string
	KeyTypes []DType
	Specs    []AggSpec
	rows     map[string]*groupRow
}

// NumGroups returns the number of distinct keys seen so far.
func (g *Grouped) NumGroups() int { return len(g.rows) }

// GroupByAgg groups df by the key columns and computes the partial
// aggregates in specs. Key columns must be Int or String.
func GroupByAgg(df *DataFrame, keys []string, specs []AggSpec) *Grouped {
	g := &Grouped{Keys: keys, Specs: specs, rows: map[string]*groupRow{}}
	keyCols := make([]*Series, len(keys))
	for i, k := range keys {
		keyCols[i] = df.Col(k)
		switch keyCols[i].Dtype {
		case Int, String:
		default:
			panic(fmt.Sprintf("frame: GroupByAgg key %q must be int or string", k))
		}
		g.KeyTypes = append(g.KeyTypes, keyCols[i].Dtype)
	}
	aggCols := make([]*Series, len(specs))
	for i, sp := range specs {
		aggCols[i] = df.Col(sp.Col)
	}

	var kb strings.Builder
	for r := 0; r < df.NRows(); r++ {
		kb.Reset()
		skip := false
		for _, kc := range keyCols {
			if !kc.IsValid(r) {
				skip = true // Pandas drops null keys
				break
			}
			if kc.Dtype == Int {
				kb.WriteString(strconv.FormatInt(kc.I[r], 10))
			} else {
				kb.WriteString(kc.S[r])
			}
			kb.WriteByte(0)
		}
		if skip {
			continue
		}
		key := kb.String()
		row, ok := g.rows[key]
		if !ok {
			row = &groupRow{
				sums:   make([]float64, len(specs)),
				counts: make([]int64, len(specs)),
				mins:   make([]float64, len(specs)),
				maxs:   make([]float64, len(specs)),
			}
			for i := range row.mins {
				row.mins[i] = math.Inf(1)
				row.maxs[i] = math.Inf(-1)
			}
			for _, kc := range keyCols {
				if kc.Dtype == Int {
					row.keyI = append(row.keyI, kc.I[r])
				} else {
					row.keyS = append(row.keyS, kc.S[r])
				}
			}
			g.rows[key] = row
		}
		for i, ac := range aggCols {
			if !ac.IsValid(r) {
				continue
			}
			var v float64
			switch ac.Dtype {
			case Float:
				v = ac.F[r]
				if math.IsNaN(v) {
					continue
				}
			case Int:
				v = float64(ac.I[r])
			default:
				v = 0
			}
			row.sums[i] += v
			row.counts[i]++
			if v < row.mins[i] {
				row.mins[i] = v
			}
			if v > row.maxs[i] {
				row.maxs[i] = v
			}
		}
	}
	return g
}

// Combine merges another partial aggregation into g (associative,
// commutative).
func (g *Grouped) Combine(o *Grouped) *Grouped {
	if len(o.Keys) != len(g.Keys) || len(o.Specs) != len(g.Specs) {
		panic("frame: Combine of incompatible groupings")
	}
	for key, orow := range o.rows {
		row, ok := g.rows[key]
		if !ok {
			g.rows[key] = orow
			continue
		}
		for i := range g.Specs {
			row.sums[i] += orow.sums[i]
			row.counts[i] += orow.counts[i]
			if orow.mins[i] < row.mins[i] {
				row.mins[i] = orow.mins[i]
			}
			if orow.maxs[i] > row.maxs[i] {
				row.maxs[i] = orow.maxs[i]
			}
		}
	}
	return g
}

// ToDataFrame finalizes the aggregation into a frame with one row per
// group, sorted by key for determinism.
func (g *Grouped) ToDataFrame() *DataFrame {
	keys := make([]string, 0, len(g.rows))
	for k := range g.rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	out := &DataFrame{}
	si, ii := 0, 0
	for ki, name := range g.Keys {
		switch g.KeyTypes[ki] {
		case String:
			col := make([]string, len(keys))
			idx := si
			si++
			for r, k := range keys {
				col[r] = g.rows[k].keyS[idx]
			}
			out.Cols = append(out.Cols, NewString(name, col))
		case Int:
			col := make([]int64, len(keys))
			idx := ii
			ii++
			for r, k := range keys {
				col[r] = g.rows[k].keyI[idx]
			}
			out.Cols = append(out.Cols, NewInt(name, col))
		}
	}
	for i, sp := range g.Specs {
		name := sp.As
		if name == "" {
			name = sp.Col
		}
		switch sp.Kind {
		case AggCount:
			col := make([]int64, len(keys))
			for r, k := range keys {
				col[r] = g.rows[k].counts[i]
			}
			out.Cols = append(out.Cols, NewInt(name, col))
		default:
			col := make([]float64, len(keys))
			for r, k := range keys {
				row := g.rows[k]
				switch sp.Kind {
				case AggSum:
					col[r] = row.sums[i]
				case AggMin:
					col[r] = row.mins[i]
				case AggMax:
					col[r] = row.maxs[i]
				case AggMean:
					if row.counts[i] == 0 {
						col[r] = math.NaN()
					} else {
						col[r] = row.sums[i] / float64(row.counts[i])
					}
				}
			}
			out.Cols = append(out.Cols, NewFloat(name, col))
		}
	}
	return out
}
