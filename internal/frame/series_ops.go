package frame

import (
	"fmt"
	"math"
	"strings"
)

func checkFloat(s *Series, op string) {
	if s.Dtype != Float {
		panic(fmt.Sprintf("frame: %s needs a float series, got %v", op, s.Dtype))
	}
}

func checkString(s *Series, op string) {
	if s.Dtype != String {
		panic(fmt.Sprintf("frame: %s needs a string series, got %v", op, s.Dtype))
	}
}

func mergedValid(a, b *Series) []bool {
	if a.Valid == nil && b.Valid == nil {
		return nil
	}
	v := make([]bool, a.Len())
	for i := range v {
		v[i] = a.IsValid(i) && b.IsValid(i)
	}
	return v
}

func floatBinary(a, b *Series, name string, f func(x, y float64) float64) *Series {
	checkFloat(a, name)
	checkFloat(b, name)
	if a.Len() != b.Len() {
		panic("frame: series length mismatch")
	}
	out := make([]float64, a.Len())
	for i := range out {
		out[i] = f(a.F[i], b.F[i])
	}
	return &Series{Name: a.Name, Dtype: Float, F: out, Valid: mergedValid(a, b)}
}

// AddSeries returns a + b.
func AddSeries(a, b *Series) *Series {
	return floatBinary(a, b, "AddSeries", func(x, y float64) float64 { return x + y })
}

// SubSeries returns a - b.
func SubSeries(a, b *Series) *Series {
	return floatBinary(a, b, "SubSeries", func(x, y float64) float64 { return x - y })
}

// MulSeries returns a * b.
func MulSeries(a, b *Series) *Series {
	return floatBinary(a, b, "MulSeries", func(x, y float64) float64 { return x * y })
}

// DivSeries returns a / b.
func DivSeries(a, b *Series) *Series {
	return floatBinary(a, b, "DivSeries", func(x, y float64) float64 { return x / y })
}

func floatScalar(a *Series, c float64, name string, f func(x, c float64) float64) *Series {
	checkFloat(a, name)
	out := make([]float64, a.Len())
	for i := range out {
		out[i] = f(a.F[i], c)
	}
	var valid []bool
	if a.Valid != nil {
		valid = append([]bool(nil), a.Valid...)
	}
	return &Series{Name: a.Name, Dtype: Float, F: out, Valid: valid}
}

// AddScalar returns a + c.
func AddScalar(a *Series, c float64) *Series {
	return floatScalar(a, c, "AddScalar", func(x, c float64) float64 { return x + c })
}

// SubScalar returns a - c.
func SubScalar(a *Series, c float64) *Series {
	return floatScalar(a, c, "SubScalar", func(x, c float64) float64 { return x - c })
}

// MulScalar returns a * c.
func MulScalar(a *Series, c float64) *Series {
	return floatScalar(a, c, "MulScalar", func(x, c float64) float64 { return x * c })
}

// DivScalar returns a / c.
func DivScalar(a *Series, c float64) *Series {
	return floatScalar(a, c, "DivScalar", func(x, c float64) float64 { return x / c })
}

// GtScalar returns the a > c mask.
func GtScalar(a *Series, c float64) *Series {
	checkFloat(a, "GtScalar")
	out := make([]bool, a.Len())
	for i := range out {
		out[i] = a.IsValid(i) && a.F[i] > c
	}
	return &Series{Name: a.Name, Dtype: Bool, B: out}
}

// LtScalar returns the a < c mask.
func LtScalar(a *Series, c float64) *Series {
	checkFloat(a, "LtScalar")
	out := make([]bool, a.Len())
	for i := range out {
		out[i] = a.IsValid(i) && a.F[i] < c
	}
	return &Series{Name: a.Name, Dtype: Bool, B: out}
}

// GeScalar returns the a >= c mask.
func GeScalar(a *Series, c float64) *Series {
	checkFloat(a, "GeScalar")
	out := make([]bool, a.Len())
	for i := range out {
		out[i] = a.IsValid(i) && a.F[i] >= c
	}
	return &Series{Name: a.Name, Dtype: Bool, B: out}
}

// EqString returns the a == v mask for string series.
func EqString(a *Series, v string) *Series {
	checkString(a, "EqString")
	out := make([]bool, a.Len())
	for i := range out {
		out[i] = a.IsValid(i) && a.S[i] == v
	}
	return &Series{Name: a.Name, Dtype: Bool, B: out}
}

// InStrings returns a mask of rows whose value is any of vals.
func InStrings(a *Series, vals ...string) *Series {
	checkString(a, "InStrings")
	set := make(map[string]bool, len(vals))
	for _, v := range vals {
		set[v] = true
	}
	out := make([]bool, a.Len())
	for i := range out {
		out[i] = a.IsValid(i) && set[a.S[i]]
	}
	return &Series{Name: a.Name, Dtype: Bool, B: out}
}

// And returns the elementwise conjunction of two bool series.
func And(a, b *Series) *Series {
	out := make([]bool, a.Len())
	for i := range out {
		out[i] = a.B[i] && b.B[i]
	}
	return &Series{Name: a.Name, Dtype: Bool, B: out}
}

// Or returns the elementwise disjunction of two bool series.
func Or(a, b *Series) *Series {
	out := make([]bool, a.Len())
	for i := range out {
		out[i] = a.B[i] || b.B[i]
	}
	return &Series{Name: a.Name, Dtype: Bool, B: out}
}

// Not returns the elementwise negation of a bool series.
func Not(a *Series) *Series {
	out := make([]bool, a.Len())
	for i := range out {
		out[i] = !a.B[i]
	}
	return &Series{Name: a.Name, Dtype: Bool, B: out}
}

// IsNull returns the mask of null rows (Pandas isna; NaN counts as null for
// float series).
func IsNull(a *Series) *Series {
	out := make([]bool, a.Len())
	for i := range out {
		out[i] = !a.IsValid(i) || (a.Dtype == Float && math.IsNaN(a.F[i]))
	}
	return &Series{Name: a.Name, Dtype: Bool, B: out}
}

// FillNullFloat replaces null rows of a float series with v (fillna).
func FillNullFloat(a *Series, v float64) *Series {
	checkFloat(a, "FillNullFloat")
	out := append([]float64(nil), a.F...)
	for i := range out {
		if !a.IsValid(i) || math.IsNaN(out[i]) {
			out[i] = v
		}
	}
	return &Series{Name: a.Name, Dtype: Float, F: out}
}

// MaskToNull marks rows where mask is true as null (Pandas
// where/mask-with-NaN).
func MaskToNull(a *Series, mask *Series) *Series {
	out := a.Clone()
	out.Valid = a.withValidCopy()
	for i := range out.Valid {
		if mask.B[i] {
			out.Valid[i] = false
			if out.Dtype == Float {
				out.F[i] = math.NaN()
			}
		}
	}
	return out
}

// StrSlice returns the [from, to) substring of each row (str.slice); short
// strings are truncated, null rows stay null.
func StrSlice(a *Series, from, to int) *Series {
	checkString(a, "StrSlice")
	out := make([]string, a.Len())
	for i, v := range a.S {
		if !a.IsValid(i) {
			continue
		}
		f, t := from, to
		if f > len(v) {
			f = len(v)
		}
		if t > len(v) {
			t = len(v)
		}
		if f < t {
			out[i] = v[f:t]
		}
	}
	var valid []bool
	if a.Valid != nil {
		valid = append([]bool(nil), a.Valid...)
	}
	return &Series{Name: a.Name, Dtype: String, S: out, Valid: valid}
}

// StrStartsWith returns the mask of rows starting with prefix.
func StrStartsWith(a *Series, prefix string) *Series {
	checkString(a, "StrStartsWith")
	out := make([]bool, a.Len())
	for i, v := range a.S {
		out[i] = a.IsValid(i) && strings.HasPrefix(v, prefix)
	}
	return &Series{Name: a.Name, Dtype: Bool, B: out}
}

// StrContains returns the mask of rows containing sub.
func StrContains(a *Series, sub string) *Series {
	checkString(a, "StrContains")
	out := make([]bool, a.Len())
	for i, v := range a.S {
		out[i] = a.IsValid(i) && strings.Contains(v, sub)
	}
	return &Series{Name: a.Name, Dtype: Bool, B: out}
}

// StrLenGt returns the mask of rows longer than n.
func StrLenGt(a *Series, n int) *Series {
	checkString(a, "StrLenGt")
	out := make([]bool, a.Len())
	for i, v := range a.S {
		out[i] = a.IsValid(i) && len(v) > n
	}
	return &Series{Name: a.Name, Dtype: Bool, B: out}
}

// SumFloat returns the sum of valid rows.
func SumFloat(a *Series) float64 {
	checkFloat(a, "SumFloat")
	s := 0.0
	for i, x := range a.F {
		if a.IsValid(i) && !math.IsNaN(x) {
			s += x
		}
	}
	return s
}

// CountValid returns the number of non-null rows.
func CountValid(a *Series) int64 {
	n := int64(0)
	for i := 0; i < a.Len(); i++ {
		if a.IsValid(i) && !(a.Dtype == Float && math.IsNaN(a.F[i])) {
			n++
		}
	}
	return n
}

// MeanPartial carries a partial (sum, count) pair; partials from row chunks
// add, and the quotient is the mean.
type MeanPartial struct {
	Sum   float64
	Count int64
}

// Mean returns the (sum, count) partial of valid rows.
func Mean(a *Series) MeanPartial {
	return MeanPartial{Sum: SumFloat(a), Count: CountValid(a)}
}

// Value returns the mean, or NaN for an empty partial.
func (m MeanPartial) Value() float64 {
	if m.Count == 0 {
		return math.NaN()
	}
	return m.Sum / float64(m.Count)
}

// UniqueStrings returns the distinct values of a string series in first-seen
// order (whole-series operation).
func UniqueStrings(a *Series) []string {
	checkString(a, "UniqueStrings")
	seen := map[string]bool{}
	var out []string
	for i, v := range a.S {
		if a.IsValid(i) && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
