package frame

import (
	"math"
	"testing"
)

func TestSeriesBasics(t *testing.T) {
	f := NewFloat("x", []float64{1, 2, 3})
	i := NewInt("y", []int64{4, 5, 6})
	s := NewString("z", []string{"a", "b", "c"})
	b := NewBool("m", []bool{true, false, true})
	if f.Len() != 3 || i.Len() != 3 || s.Len() != 3 || b.Len() != 3 {
		t.Fatal("Len")
	}
	if f.Dtype.String() != "float64" || i.Dtype.String() != "int64" || s.Dtype.String() != "string" || b.Dtype.String() != "bool" {
		t.Fatal("DType strings")
	}
	if f.ElemBytes() != 8 || s.ElemBytes() != 24 || b.ElemBytes() != 1 {
		t.Fatal("ElemBytes")
	}
	sl := f.Slice(1, 3)
	if sl.Len() != 2 || sl.F[0] != 2 {
		t.Fatal("Slice")
	}
	sl.F[0] = 20
	if f.F[1] != 20 {
		t.Fatal("Slice must share storage")
	}
	c := f.Clone()
	c.F[0] = 100
	if f.F[0] == 100 {
		t.Fatal("Clone must copy")
	}
}

func TestSeriesNulls(t *testing.T) {
	f := &Series{Name: "x", Dtype: Float, F: []float64{1, 2, 3}, Valid: []bool{true, false, true}}
	if f.IsValid(1) || !f.IsValid(0) {
		t.Fatal("IsValid")
	}
	n := IsNull(f)
	if !n.B[1] || n.B[0] {
		t.Fatal("IsNull mask")
	}
	filled := FillNullFloat(f, 9)
	if filled.F[1] != 9 || filled.F[0] != 1 {
		t.Fatal("FillNullFloat")
	}
	nan := NewFloat("y", []float64{1, math.NaN()})
	if !IsNull(nan).B[1] {
		t.Fatal("NaN should be null")
	}
	if CountValid(f) != 2 {
		t.Fatal("CountValid")
	}
}

func TestSeriesArith(t *testing.T) {
	a := NewFloat("a", []float64{1, 2, 3})
	b := NewFloat("b", []float64{4, 5, 6})
	if AddSeries(a, b).F[0] != 5 || SubSeries(a, b).F[1] != -3 ||
		MulSeries(a, b).F[2] != 18 || DivSeries(b, a).F[1] != 2.5 {
		t.Fatal("binary arith")
	}
	if AddScalar(a, 1).F[0] != 2 || SubScalar(a, 1).F[0] != 0 ||
		MulScalar(a, 2).F[2] != 6 || DivScalar(b, 2).F[0] != 2 {
		t.Fatal("scalar arith")
	}
	// Null propagation through binary ops.
	av := &Series{Name: "a", Dtype: Float, F: []float64{1, 2}, Valid: []bool{true, false}}
	bv := NewFloat("b", []float64{1, 1})
	sum := AddSeries(av, bv)
	if sum.IsValid(1) || !sum.IsValid(0) {
		t.Fatal("null propagation")
	}
}

func TestMasksAndLogic(t *testing.T) {
	a := NewFloat("a", []float64{1, 5, 3})
	g, l, ge := GtScalar(a, 2), LtScalar(a, 2), GeScalar(a, 3)
	if !g.B[1] || g.B[0] || !l.B[0] || l.B[1] || !ge.B[1] || !ge.B[2] || ge.B[0] {
		t.Fatal("comparisons")
	}
	if x := And(g, ge); !x.B[1] || x.B[0] {
		t.Fatal("And")
	}
	if x := Or(g, l); !x.B[0] || !x.B[1] || x.B[2] == true && a.F[2] != 3 {
		t.Fatal("Or")
	}
	if x := Not(g); x.B[1] || !x.B[0] {
		t.Fatal("Not")
	}
	s := NewString("s", []string{"NYC", "SF", "NYC"})
	if x := EqString(s, "NYC"); !x.B[0] || x.B[1] {
		t.Fatal("EqString")
	}
	if x := InStrings(s, "SF", "LA"); !x.B[1] || x.B[0] {
		t.Fatal("InStrings")
	}
}

func TestStringOps(t *testing.T) {
	s := NewString("zip", []string{"10001-1234", "9021", "NO CLUE"})
	sl := StrSlice(s, 0, 5)
	if sl.S[0] != "10001" || sl.S[1] != "9021" {
		t.Fatalf("StrSlice: %v", sl.S)
	}
	if x := StrStartsWith(s, "100"); !x.B[0] || x.B[1] {
		t.Fatal("StrStartsWith")
	}
	if x := StrContains(s, "CLUE"); !x.B[2] || x.B[0] {
		t.Fatal("StrContains")
	}
	if x := StrLenGt(s, 5); !x.B[0] || x.B[1] {
		t.Fatal("StrLenGt")
	}
}

func TestMaskToNull(t *testing.T) {
	s := NewFloat("x", []float64{1, 2, 3})
	m := NewBool("m", []bool{false, true, false})
	out := MaskToNull(s, m)
	if out.IsValid(1) || !out.IsValid(0) || !math.IsNaN(out.F[1]) {
		t.Fatal("MaskToNull")
	}
	if !s.IsValid(1) {
		t.Fatal("MaskToNull must not mutate input")
	}
}

func TestReductionsAndMean(t *testing.T) {
	s := &Series{Name: "x", Dtype: Float, F: []float64{1, 2, math.NaN(), 4}, Valid: []bool{true, true, true, true}}
	if SumFloat(s) != 7 {
		t.Fatal("SumFloat skips NaN")
	}
	m := Mean(s)
	if m.Count != 3 || math.Abs(m.Value()-7.0/3) > 1e-12 {
		t.Fatal("Mean partial")
	}
	var empty MeanPartial
	if !math.IsNaN(empty.Value()) {
		t.Fatal("empty mean should be NaN")
	}
}

func TestDataFrameBasics(t *testing.T) {
	df := NewDataFrame(
		NewString("city", []string{"a", "b", "c"}),
		NewFloat("pop", []float64{1, 2, 3}),
	)
	if df.NRows() != 3 || df.NCols() != 2 {
		t.Fatal("shape")
	}
	if df.Col("pop").F[1] != 2 || !df.HasCol("city") || df.HasCol("nope") {
		t.Fatal("Col/HasCol")
	}
	df2 := df.WithColumn(NewFloat("crime", []float64{7, 8, 9}))
	if df2.NCols() != 3 || df.NCols() != 2 {
		t.Fatal("WithColumn should not mutate")
	}
	df3 := df2.WithColumn(NewFloat("pop", []float64{0, 0, 0}))
	if df3.Col("pop").F[0] != 0 || df3.NCols() != 3 {
		t.Fatal("WithColumn replace")
	}
	sel := df2.Select("crime", "city")
	if sel.Cols[0].Name != "crime" || sel.NCols() != 2 {
		t.Fatal("Select")
	}
	ren := df.Rename("pop", "population")
	if !ren.HasCol("population") || ren.HasCol("pop") {
		t.Fatal("Rename")
	}
	if df.String() == "" {
		t.Fatal("String")
	}
	sl := df.Slice(1, 3)
	if sl.NRows() != 2 || sl.Col("city").S[0] != "b" {
		t.Fatal("Slice")
	}
	back := ConcatDF(df.Slice(0, 1), df.Slice(1, 3))
	if back.NRows() != 3 || back.Col("city").S[2] != "c" {
		t.Fatal("ConcatDF")
	}
}

func TestDataFramePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: want panic", name)
			}
		}()
		f()
	}
	mustPanic("dup col", func() { NewDataFrame(NewFloat("x", nil), NewFloat("x", nil)) })
	mustPanic("len mismatch", func() { NewDataFrame(NewFloat("x", []float64{1}), NewFloat("y", nil)) })
	mustPanic("missing col", func() { NewDataFrame(NewFloat("x", nil)).Col("y") })
	mustPanic("filter mask", func() {
		Filter(NewDataFrame(NewFloat("x", []float64{1})), NewFloat("m", []float64{1}))
	})
	mustPanic("groupby float key", func() {
		GroupByAgg(NewDataFrame(NewFloat("x", []float64{1})), []string{"x"}, nil)
	})
}

func TestFilter(t *testing.T) {
	df := NewDataFrame(
		NewString("name", []string{"a", "b", "c", "d"}),
		NewFloat("v", []float64{1, 2, 3, 4}),
	)
	out := Filter(df, NewBool("m", []bool{true, false, true, false}))
	if out.NRows() != 2 || out.Col("name").S[1] != "c" || out.Col("v").F[1] != 3 {
		t.Fatal("Filter")
	}
	fs := FilterSeries(df.Col("v"), NewBool("m", []bool{false, true, true, false}))
	if fs.Len() != 2 || fs.F[0] != 2 {
		t.Fatal("FilterSeries")
	}
}

func TestGroupByAgg(t *testing.T) {
	df := NewDataFrame(
		NewString("sex", []string{"F", "M", "F", "M", "F"}),
		NewInt("year", []int64{2000, 2000, 2000, 2001, 2001}),
		NewFloat("births", []float64{10, 20, 30, 40, 50}),
	)
	g := GroupByAgg(df, []string{"sex", "year"}, []AggSpec{
		{Col: "births", Kind: AggSum, As: "total"},
		{Col: "births", Kind: AggMean, As: "avg"},
		{Col: "births", Kind: AggCount, As: "n"},
		{Col: "births", Kind: AggMin, As: "lo"},
		{Col: "births", Kind: AggMax, As: "hi"},
	})
	if g.NumGroups() != 4 {
		t.Fatalf("groups = %d", g.NumGroups())
	}
	out := g.ToDataFrame()
	if out.NRows() != 4 {
		t.Fatal("ToDataFrame rows")
	}
	// Find F/2000.
	found := false
	for r := 0; r < out.NRows(); r++ {
		if out.Col("sex").S[r] == "F" && out.Col("year").I[r] == 2000 {
			found = true
			if out.Col("total").F[r] != 40 || out.Col("avg").F[r] != 20 ||
				out.Col("n").I[r] != 2 || out.Col("lo").F[r] != 10 || out.Col("hi").F[r] != 30 {
				t.Fatal("F/2000 aggregates wrong")
			}
		}
	}
	if !found {
		t.Fatal("missing group")
	}
}

// TestGroupCombineEqualsWhole: chunked partial aggregation combined equals
// aggregating the whole frame — the GroupSplit merge property.
func TestGroupCombineEqualsWhole(t *testing.T) {
	n := 200
	sex := make([]string, n)
	year := make([]int64, n)
	births := make([]float64, n)
	for i := 0; i < n; i++ {
		sex[i] = []string{"F", "M"}[i%2]
		year[i] = int64(2000 + i%7)
		births[i] = float64(i%13) + 1
	}
	df := NewDataFrame(NewString("sex", sex), NewInt("year", year), NewFloat("births", births))
	specs := []AggSpec{{Col: "births", Kind: AggSum, As: "s"}, {Col: "births", Kind: AggMean, As: "m"}}

	whole := GroupByAgg(df, []string{"sex", "year"}, specs).ToDataFrame()

	var combined *Grouped
	for lo := 0; lo < n; lo += 37 {
		hi := lo + 37
		if hi > n {
			hi = n
		}
		part := GroupByAgg(df.Slice(lo, hi), []string{"sex", "year"}, specs)
		if combined == nil {
			combined = part
		} else {
			combined.Combine(part)
		}
	}
	got := combined.ToDataFrame()
	if got.NRows() != whole.NRows() {
		t.Fatalf("rows %d vs %d", got.NRows(), whole.NRows())
	}
	for r := 0; r < got.NRows(); r++ {
		if got.Col("sex").S[r] != whole.Col("sex").S[r] ||
			got.Col("year").I[r] != whole.Col("year").I[r] ||
			math.Abs(got.Col("s").F[r]-whole.Col("s").F[r]) > 1e-9 ||
			math.Abs(got.Col("m").F[r]-whole.Col("m").F[r]) > 1e-9 {
			t.Fatalf("row %d differs", r)
		}
	}
}

func TestJoin(t *testing.T) {
	users := NewDataFrame(
		NewInt("userId", []int64{1, 2, 3}),
		NewString("gender", []string{"F", "M", "F"}),
	)
	ratings := NewDataFrame(
		NewInt("userId", []int64{2, 1, 2, 9}),
		NewFloat("rating", []float64{3, 4, 5, 1}),
	)
	ix := NewIndex(users, "userId")
	if ix.Frame() != users || ix.Key() != "userId" {
		t.Fatal("index accessors")
	}
	inner := JoinIndexed(ratings, ix, "userId", Inner)
	if inner.NRows() != 3 {
		t.Fatalf("inner rows = %d", inner.NRows())
	}
	if inner.Col("gender").S[0] != "M" || inner.Col("gender").S[1] != "F" {
		t.Fatal("inner join genders")
	}
	left := JoinIndexed(ratings, ix, "userId", Left)
	if left.NRows() != 4 {
		t.Fatalf("left rows = %d", left.NRows())
	}
	g := left.Col("gender")
	if g.IsValid(3) {
		t.Fatal("unmatched left row should be null")
	}
	// Duplicate right keys fan out.
	dup := NewDataFrame(
		NewInt("userId", []int64{1, 1}),
		NewString("tag", []string{"a", "b"}),
	)
	fan := JoinIndexed(ratings, NewIndex(dup, "userId"), "userId", Inner)
	if fan.NRows() != 2 {
		t.Fatalf("fan-out rows = %d", fan.NRows())
	}
	// String join and collision suffix.
	l := NewDataFrame(NewString("k", []string{"x", "y"}), NewFloat("v", []float64{1, 2}))
	r := NewDataFrame(NewString("k", []string{"y"}), NewFloat("v", []float64{9}))
	j := JoinIndexed(l, NewIndex(r, "k"), "k", Inner)
	if !j.HasCol("v_right") || j.Col("v_right").F[0] != 9 {
		t.Fatal("collision suffix")
	}
}

func TestSortHeadUnique(t *testing.T) {
	df := NewDataFrame(
		NewString("name", []string{"a", "b", "c"}),
		NewFloat("v", []float64{2, 3, 1}),
	)
	asc := SortByFloat(df, "v", true)
	if asc.Col("name").S[0] != "c" || asc.Col("name").S[2] != "b" {
		t.Fatal("SortByFloat asc")
	}
	desc := SortByFloat(df, "v", false)
	if desc.Col("name").S[0] != "b" {
		t.Fatal("SortByFloat desc")
	}
	h := Head(desc, 2)
	if h.NRows() != 2 || Head(df, 10).NRows() != 3 {
		t.Fatal("Head")
	}
	u := UniqueStrings(NewString("s", []string{"a", "b", "a", "c", "b"}))
	if len(u) != 3 || u[0] != "a" || u[2] != "c" {
		t.Fatal("UniqueStrings")
	}
}

func TestGather(t *testing.T) {
	s := NewFloat("x", []float64{10, 20, 30})
	g := s.Gather([]int{2, -1, 0})
	if g.F[0] != 30 || !math.IsNaN(g.F[1]) || g.IsValid(1) || g.F[2] != 10 {
		t.Fatal("Gather with nulls")
	}
	i := NewInt("y", []int64{1, 2, 3}).Gather([]int{1})
	if i.I[0] != 2 {
		t.Fatal("Gather int")
	}
	b := NewBool("b", []bool{true, false}).Gather([]int{1, 0})
	if b.B[0] || !b.B[1] {
		t.Fatal("Gather bool")
	}
}
