package frame

import (
	"fmt"
	"strings"
)

// DataFrame is an ordered collection of equal-length columns.
type DataFrame struct {
	Cols []*Series
}

// NewDataFrame builds a frame from columns, validating lengths and names.
func NewDataFrame(cols ...*Series) *DataFrame {
	df := &DataFrame{Cols: cols}
	seen := map[string]bool{}
	for _, c := range cols {
		if c.Name == "" {
			panic("frame: unnamed column")
		}
		if seen[c.Name] {
			panic(fmt.Sprintf("frame: duplicate column %q", c.Name))
		}
		seen[c.Name] = true
		if c.Len() != cols[0].Len() {
			panic(fmt.Sprintf("frame: column %q length %d != %d", c.Name, c.Len(), cols[0].Len()))
		}
	}
	return df
}

// NRows returns the number of rows.
func (df *DataFrame) NRows() int {
	if len(df.Cols) == 0 {
		return 0
	}
	return df.Cols[0].Len()
}

// NCols returns the number of columns.
func (df *DataFrame) NCols() int { return len(df.Cols) }

// Col returns the named column, or panics (Pandas KeyError style).
func (df *DataFrame) Col(name string) *Series {
	for _, c := range df.Cols {
		if c.Name == name {
			return c
		}
	}
	panic(fmt.Sprintf("frame: no column %q", name))
}

// HasCol reports whether the named column exists.
func (df *DataFrame) HasCol(name string) bool {
	for _, c := range df.Cols {
		if c.Name == name {
			return true
		}
	}
	return false
}

// WithColumn returns a new frame with the column added or replaced.
func (df *DataFrame) WithColumn(s *Series) *DataFrame {
	if df.NCols() > 0 && s.Len() != df.NRows() {
		panic(fmt.Sprintf("frame: WithColumn length %d != %d", s.Len(), df.NRows()))
	}
	out := &DataFrame{}
	replaced := false
	for _, c := range df.Cols {
		if c.Name == s.Name {
			out.Cols = append(out.Cols, s)
			replaced = true
		} else {
			out.Cols = append(out.Cols, c)
		}
	}
	if !replaced {
		out.Cols = append(out.Cols, s)
	}
	return out
}

// Select returns a frame with only the named columns, in order.
func (df *DataFrame) Select(names ...string) *DataFrame {
	out := &DataFrame{}
	for _, n := range names {
		out.Cols = append(out.Cols, df.Col(n))
	}
	return out
}

// Rename returns a frame with column old renamed to new.
func (df *DataFrame) Rename(old, new string) *DataFrame {
	out := &DataFrame{}
	for _, c := range df.Cols {
		if c.Name == old {
			cc := *c
			cc.Name = new
			out.Cols = append(out.Cols, &cc)
		} else {
			out.Cols = append(out.Cols, c)
		}
	}
	return out
}

// Slice returns rows [r0, r1) as a shared-storage view.
func (df *DataFrame) Slice(r0, r1 int) *DataFrame {
	out := &DataFrame{}
	for _, c := range df.Cols {
		out.Cols = append(out.Cols, c.Slice(r0, r1))
	}
	return out
}

// ConcatDF stacks frames with identical schemas.
func ConcatDF(parts ...*DataFrame) *DataFrame {
	if len(parts) == 0 {
		return &DataFrame{}
	}
	first := parts[0]
	out := &DataFrame{}
	for ci, c := range first.Cols {
		cols := make([]*Series, len(parts))
		for pi, p := range parts {
			if p.NCols() != first.NCols() || p.Cols[ci].Name != c.Name {
				panic("frame: ConcatDF schema mismatch")
			}
			cols[pi] = p.Cols[ci]
		}
		out.Cols = append(out.Cols, ConcatSeries(cols...))
	}
	return out
}

// Filter returns the rows where mask is true (boolean indexing).
func Filter(df *DataFrame, mask *Series) *DataFrame {
	if mask.Dtype != Bool {
		panic("frame: Filter needs a bool mask")
	}
	if mask.Len() != df.NRows() {
		panic("frame: Filter mask length mismatch")
	}
	idx := make([]int, 0, df.NRows())
	for i, keep := range mask.B {
		if keep {
			idx = append(idx, i)
		}
	}
	out := &DataFrame{}
	for _, c := range df.Cols {
		out.Cols = append(out.Cols, c.Gather(idx))
	}
	return out
}

// FilterSeries returns the elements of s where mask is true.
func FilterSeries(s *Series, mask *Series) *Series {
	idx := make([]int, 0, s.Len())
	for i, keep := range mask.B {
		if keep {
			idx = append(idx, i)
		}
	}
	return s.Gather(idx)
}

// String renders a small preview of the frame.
func (df *DataFrame) String() string {
	var b strings.Builder
	for i, c := range df.Cols {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%s(%s)", c.Name, c.Dtype)
	}
	fmt.Fprintf(&b, "  [%d rows]", df.NRows())
	return b.String()
}
