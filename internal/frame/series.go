// Package frame is the repository's stand-in for Pandas: a columnar
// DataFrame/Series library with null masks, filters, string operations,
// grouped aggregation, and indexed joins. Kernels are single threaded
// (Pandas-in-C style) and know nothing about Mozart; the split annotations
// live in internal/annotations/framesa.
package frame

import (
	"fmt"
	"math"
)

// DType enumerates column element types.
type DType int

// Column element types.
const (
	Float DType = iota
	Int
	String
	Bool
)

func (d DType) String() string {
	switch d {
	case Float:
		return "float64"
	case Int:
		return "int64"
	case String:
		return "string"
	case Bool:
		return "bool"
	}
	return "unknown"
}

// Series is one named, typed column. Exactly one of F/I/S/B is non-nil
// depending on Dtype. Valid is an optional null mask (nil means all valid);
// Valid[i] == false marks row i as null (NaN/None in Pandas terms).
type Series struct {
	Name  string
	Dtype DType
	F     []float64
	I     []int64
	S     []string
	B     []bool
	Valid []bool
}

// NewFloat builds a float64 series with all rows valid.
func NewFloat(name string, vals []float64) *Series {
	return &Series{Name: name, Dtype: Float, F: vals}
}

// NewInt builds an int64 series with all rows valid.
func NewInt(name string, vals []int64) *Series {
	return &Series{Name: name, Dtype: Int, I: vals}
}

// NewString builds a string series with all rows valid.
func NewString(name string, vals []string) *Series {
	return &Series{Name: name, Dtype: String, S: vals}
}

// NewBool builds a bool series with all rows valid.
func NewBool(name string, vals []bool) *Series {
	return &Series{Name: name, Dtype: Bool, B: vals}
}

// Len returns the number of rows.
func (s *Series) Len() int {
	switch s.Dtype {
	case Float:
		return len(s.F)
	case Int:
		return len(s.I)
	case String:
		return len(s.S)
	case Bool:
		return len(s.B)
	}
	return 0
}

// IsValid reports whether row i is non-null.
func (s *Series) IsValid(i int) bool { return s.Valid == nil || s.Valid[i] }

// ElemBytes estimates the per-row storage of the series.
func (s *Series) ElemBytes() int64 {
	switch s.Dtype {
	case Float, Int:
		return 8
	case String:
		return 24
	case Bool:
		return 1
	}
	return 8
}

// Slice returns rows [r0, r1) as a shared-storage view.
func (s *Series) Slice(r0, r1 int) *Series {
	out := &Series{Name: s.Name, Dtype: s.Dtype}
	switch s.Dtype {
	case Float:
		out.F = s.F[r0:r1]
	case Int:
		out.I = s.I[r0:r1]
	case String:
		out.S = s.S[r0:r1]
	case Bool:
		out.B = s.B[r0:r1]
	}
	if s.Valid != nil {
		out.Valid = s.Valid[r0:r1]
	}
	return out
}

// Clone deep copies the series.
func (s *Series) Clone() *Series {
	out := &Series{Name: s.Name, Dtype: s.Dtype}
	out.F = append([]float64(nil), s.F...)
	out.I = append([]int64(nil), s.I...)
	out.S = append([]string(nil), s.S...)
	out.B = append([]bool(nil), s.B...)
	if s.Valid != nil {
		out.Valid = append([]bool(nil), s.Valid...)
	}
	return out
}

// withValidCopy returns a copy of the mask, allocating one if needed.
func (s *Series) withValidCopy() []bool {
	if s.Valid != nil {
		return append([]bool(nil), s.Valid...)
	}
	v := make([]bool, s.Len())
	for i := range v {
		v[i] = true
	}
	return v
}

// ConcatSeries stacks series of the same name and dtype.
func ConcatSeries(parts ...*Series) *Series {
	if len(parts) == 0 {
		return &Series{}
	}
	out := &Series{Name: parts[0].Name, Dtype: parts[0].Dtype}
	anyMask := false
	for _, p := range parts {
		if p.Dtype != out.Dtype {
			panic(fmt.Sprintf("frame: ConcatSeries dtype mismatch %v vs %v", p.Dtype, out.Dtype))
		}
		if p.Valid != nil {
			anyMask = true
		}
	}
	for _, p := range parts {
		out.F = append(out.F, p.F...)
		out.I = append(out.I, p.I...)
		out.S = append(out.S, p.S...)
		out.B = append(out.B, p.B...)
	}
	if anyMask {
		for _, p := range parts {
			if p.Valid != nil {
				out.Valid = append(out.Valid, p.Valid...)
			} else {
				for i := 0; i < p.Len(); i++ {
					out.Valid = append(out.Valid, true)
				}
			}
		}
	}
	return out
}

// Gather returns the rows of s selected by idx (out-of-range -1 produces a
// null row), used by joins.
func (s *Series) Gather(idx []int) *Series {
	out := &Series{Name: s.Name, Dtype: s.Dtype}
	needMask := false
	for _, i := range idx {
		if i < 0 {
			needMask = true
			break
		}
	}
	if needMask || s.Valid != nil {
		out.Valid = make([]bool, len(idx))
	}
	switch s.Dtype {
	case Float:
		out.F = make([]float64, len(idx))
		for j, i := range idx {
			if i >= 0 {
				out.F[j] = s.F[i]
			} else {
				out.F[j] = math.NaN()
			}
		}
	case Int:
		out.I = make([]int64, len(idx))
		for j, i := range idx {
			if i >= 0 {
				out.I[j] = s.I[i]
			}
		}
	case String:
		out.S = make([]string, len(idx))
		for j, i := range idx {
			if i >= 0 {
				out.S[j] = s.S[i]
			}
		}
	case Bool:
		out.B = make([]bool, len(idx))
		for j, i := range idx {
			if i >= 0 {
				out.B[j] = s.B[i]
			}
		}
	}
	if out.Valid != nil {
		for j, i := range idx {
			out.Valid[j] = i >= 0 && s.IsValid(i)
		}
	}
	return out
}
