package frame

import (
	"fmt"
	"sort"
)

// JoinHow selects the join variant.
type JoinHow int

// Join variants.
const (
	Inner JoinHow = iota
	Left
)

// Index is a hash index over one key column of a frame, like a Pandas
// index. Joins broadcast the index and split the probe side, matching the
// paper's "joins split one table and broadcast the other". An Index is
// immutable after construction and safe for concurrent probes.
type Index struct {
	df   *DataFrame
	key  string
	posI map[int64][]int
	posS map[string][]int
}

// NewIndex builds a hash index over df's key column (Int or String).
func NewIndex(df *DataFrame, key string) *Index {
	col := df.Col(key)
	idx := &Index{df: df, key: key}
	switch col.Dtype {
	case Int:
		idx.posI = make(map[int64][]int, col.Len())
		for i, v := range col.I {
			if col.IsValid(i) {
				idx.posI[v] = append(idx.posI[v], i)
			}
		}
	case String:
		idx.posS = make(map[string][]int, col.Len())
		for i, v := range col.S {
			if col.IsValid(i) {
				idx.posS[v] = append(idx.posS[v], i)
			}
		}
	default:
		panic(fmt.Sprintf("frame: NewIndex key %q must be int or string", key))
	}
	return idx
}

// Frame returns the indexed frame.
func (ix *Index) Frame() *DataFrame { return ix.df }

// Key returns the indexed column name.
func (ix *Index) Key() string { return ix.key }

func (ix *Index) lookupI(v int64) []int  { return ix.posI[v] }
func (ix *Index) lookupS(v string) []int { return ix.posS[v] }

// JoinIndexed joins left against the indexed right frame on
// left[leftKey] == right[index key], like DataFrame.merge. Inner drops
// unmatched probe rows; Left keeps them with nulls. Right-side columns
// (except its key) are appended; name collisions get a "_right" suffix.
func JoinIndexed(left *DataFrame, ix *Index, leftKey string, how JoinHow) *DataFrame {
	probe := left.Col(leftKey)
	var leftIdx, rightIdx []int
	add := func(l int, rs []int) {
		if len(rs) == 0 {
			if how == Left {
				leftIdx = append(leftIdx, l)
				rightIdx = append(rightIdx, -1)
			}
			return
		}
		for _, r := range rs {
			leftIdx = append(leftIdx, l)
			rightIdx = append(rightIdx, r)
		}
	}
	switch probe.Dtype {
	case Int:
		if ix.posI == nil {
			panic("frame: join key type mismatch (int probe, string index)")
		}
		for i, v := range probe.I {
			if probe.IsValid(i) {
				add(i, ix.lookupI(v))
			} else if how == Left {
				add(i, nil)
			}
		}
	case String:
		if ix.posS == nil {
			panic("frame: join key type mismatch (string probe, int index)")
		}
		for i, v := range probe.S {
			if probe.IsValid(i) {
				add(i, ix.lookupS(v))
			} else if how == Left {
				add(i, nil)
			}
		}
	default:
		panic("frame: join probe key must be int or string")
	}

	out := &DataFrame{}
	for _, c := range left.Cols {
		out.Cols = append(out.Cols, c.Gather(leftIdx))
	}
	for _, c := range ix.df.Cols {
		if c.Name == ix.key {
			continue
		}
		g := c.Gather(rightIdx)
		if left.HasCol(c.Name) {
			g.Name = c.Name + "_right"
		}
		out.Cols = append(out.Cols, g)
	}
	return out
}

// SortByFloat returns df ordered by the named float column (whole-frame
// operation; stable).
func SortByFloat(df *DataFrame, col string, ascending bool) *DataFrame {
	c := df.Col(col)
	if c.Dtype != Float {
		panic("frame: SortByFloat needs a float column")
	}
	idx := make([]int, df.NRows())
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if ascending {
			return c.F[idx[a]] < c.F[idx[b]]
		}
		return c.F[idx[a]] > c.F[idx[b]]
	})
	out := &DataFrame{}
	for _, col := range df.Cols {
		out.Cols = append(out.Cols, col.Gather(idx))
	}
	return out
}

// Head returns the first n rows (fewer if the frame is shorter).
func Head(df *DataFrame, n int) *DataFrame {
	if n > df.NRows() {
		n = df.NRows()
	}
	return df.Slice(0, n)
}
