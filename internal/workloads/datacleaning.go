package workloads

import (
	"mozart/internal/annotations/framesa"
	"mozart/internal/data"
	"mozart/internal/frame"
	"mozart/internal/memsim"
)

// Data Cleaning (Figure 4e): the Pandas-cookbook 311-requests zip cleanup:
// slice zips to five digits, null out junk values ("NO CLUE", "N/A", "0"),
// and count what remains. 8 library calls, all row-local, fully
// pipelineable.

const dcOperators = 8

// dcClean is the cleaning chain over the frame library.
func dcClean(zips *frame.Series) (*frame.Series, int64) {
	sliced := frame.StrSlice(zips, 0, 5)            // 1
	junk := frame.InStrings(sliced, "NO CL", "N/A") // 2
	zero := frame.EqString(sliced, "0")             // 3
	bad := frame.Or(junk, zero)                     // 4
	cleaned := frame.MaskToNull(sliced, bad)        // 5
	short := frame.StrLenGt(cleaned, 4)             // 6: well-formed mask
	_ = short
	nulls := frame.IsNull(cleaned) // 7
	_ = nulls
	return cleaned, frame.CountValid(cleaned) // 8
}

func runDataCleaning(v Variant, cfg Config) (float64, error) {
	df := data.ServiceRequests(cfg.Scale, 51)
	zips := df.Col("Incident Zip")
	switch v {
	case Base:
		_, n := dcClean(zips)
		return float64(n), nil
	case Mozart, MozartNoPipe:
		s := cfg.session()
		if v == MozartNoPipe {
			s = cfg.sessionNoPipe()
		}
		sliced := framesa.StrSlice(s, zips, 0, 5)
		junk := framesa.InStrings(s, sliced, "NO CL", "N/A")
		zero := framesa.EqString(s, sliced, "0")
		bad := framesa.Or(s, junk, zero)
		cleaned := framesa.MaskToNull(s, sliced, bad)
		framesa.StrLenGt(s, cleaned, 4)
		framesa.IsNull(s, cleaned)
		count := framesa.CountValid(s, cleaned)
		n, err := count.Int64()
		if err != nil {
			return 0, err
		}
		return float64(n), nil
	}
	return 0, errUnsupported(v)
}

func dcModel(v Variant, cfg Config) *memsim.Workload {
	// String rows ~24 bytes; every op streams the column.
	ops := []opSpec{
		op("str.slice", 4*cycMul, []int{0}, []int{1}),
		op("isin", 3*cycMul, []int{1}, []int{2}),
		op("eq", 2*cycMul, []int{1}, []int{3}),
		op("or", cycAdd, []int{2, 3}, []int{4}),
		op("maskToNull", 2*cycMul, []int{1, 4}, []int{5}),
		op("len.gt", cycMul, []int{5}, []int{6}),
		op("isnull", cycMul, []int{5}, []int{7}),
		op("count", cycAdd, []int{5}, nil),
	}
	return chainModelAlloc("datacleaning", ops, int64(cfg.Scale), 24, v, cfg.Batch)
}

func init() {
	register(Spec{
		Name:         "datacleaning-pandas",
		Library:      "Pandas",
		Description:  "311-requests zip-code cleanup: slice, junk masks, nulls (Fig. 4e)",
		Operators:    dcOperators,
		Variants:     []Variant{Base, Mozart, MozartNoPipe},
		Run:          runDataCleaning,
		DefaultScale: 1 << 19,
		Model:        dcModel,
	})
}
