package workloads

import (
	"mozart/internal/memsim"
	"mozart/internal/plan"
)

// opSpec describes one library call for the memsim plan models: its
// per-element cost on a hand-optimized (SIMD) backend, its cost on the
// IR-compiler backend (Weld generated scalar code for several
// transcendentals MKL vectorizes, §8.2), and the arrays it streams.
type opSpec struct {
	name   string
	cycles float64 // hand-optimized library
	weldC  float64 // compiler-generated code
	reads  []int
	writes []int
}

// Per-element cycle costs, calibrated so relative intensities follow the
// Figure 7a measurements (add < mul < div < sqrt < erf < exp).
const (
	cycAdd  = 0.35
	cycMul  = 0.40
	cycDiv  = 1.2
	cycSqrt = 1.8
	cycErf  = 3.0
	cycExp  = 4.0
	cycLn   = 3.5
	cycCmp  = 0.3
)

// weldFactor inflates transcendental costs for the compiler backend, which
// does not emit SIMD for them (§8.2: "Weld does not generate vectorized
// code for several operators that MKL does vectorize").
func weldFactor(c float64) float64 {
	if c >= cycSqrt {
		return c * 2.5
	}
	return c
}

func op(name string, cycles float64, reads, writes []int) opSpec {
	return opSpec{name: name, cycles: cycles, weldC: weldFactor(cycles), reads: reads, writes: writes}
}

// defaultBatch is the C*L2/sum(elemBytes) heuristic over the live arrays of
// a stage, delegating to the shared §5.2 rule in internal/plan — the same
// BatchPolicy the real runtime records in its plan IR — so the models can
// never drift from the executor's batch sizes.
func defaultBatch(liveArrays int, elemBytes int64) int64 {
	if liveArrays < 1 {
		liveArrays = 1
	}
	return (plan.BatchPolicy{}).Elems(int64(liveArrays)*elemBytes, 0)
}

// chainModel builds the memsim plan for an elementwise-chain workload.
//
// Base / MozartNoPipe: every op streams the full arrays (no pipelining).
// Mozart: one pipelined stage with the batch heuristic (or cfg.Batch).
// Weld: one fused op reading the chain's sources and writing its sinks,
// with the summed (scalar-where-unvectorized) compute cost.
func chainModel(name string, ops []opSpec, elems int64, elemBytes int64, v Variant, batch int64) *memsim.Workload {
	return chainModelOpts(name, ops, elems, elemBytes, v, batch, false)
}

// chainModelAlloc is chainModel for out-of-place libraries (NumPy, Pandas):
// under Mozart, intermediate results are allocated per batch and die inside
// the pipeline, so they stay cache resident instead of streaming (the
// runtime discards them rather than merging them; see the planner's
// materialization rule).
func chainModelAlloc(name string, ops []opSpec, elems int64, elemBytes int64, v Variant, batch int64) *memsim.Workload {
	return chainModelOpts(name, ops, elems, elemBytes, v, batch, true)
}

func chainModelOpts(name string, ops []opSpec, elems int64, elemBytes int64, v Variant, batch int64, scratchIntermediates bool) *memsim.Workload {
	toOps := func(weld bool) []memsim.Op {
		out := make([]memsim.Op, len(ops))
		for i, o := range ops {
			c := o.cycles
			if weld {
				c = o.weldC
			}
			out[i] = memsim.Op{Name: o.name, CyclesPerElem: c, Reads: o.reads, Writes: o.writes}
		}
		return out
	}
	live := map[int]bool{}
	for _, o := range ops {
		for _, a := range o.reads {
			live[a] = true
		}
		for _, a := range o.writes {
			live[a] = true
		}
	}
	w := &memsim.Workload{Name: name, Elems: elems}
	switch v {
	case Mozart:
		if batch <= 0 {
			batch = defaultBatch(len(live), elemBytes)
		}
		st := memsim.Stage{Ops: toOps(false), BatchElems: batch, ElemBytes: elemBytes}
		if scratchIntermediates {
			sources, sinks := chainEndpoints(ops)
			keep := map[int]bool{}
			for _, a := range sources {
				keep[a] = true
			}
			for _, a := range sinks {
				keep[a] = true
			}
			for a := range live {
				if !keep[a] {
					st.Scratch = append(st.Scratch, a)
				}
			}
		}
		w.Stages = []memsim.Stage{st}
	case Base, MozartNoPipe:
		w.Stages = []memsim.Stage{{Ops: toOps(false), ElemBytes: elemBytes}}
	case Weld:
		sources, sinks := chainEndpoints(ops)
		var cyc float64
		for _, o := range ops {
			cyc += o.weldC
		}
		w.Stages = []memsim.Stage{{
			Ops:       []memsim.Op{{Name: "fused", CyclesPerElem: cyc, Reads: sources, Writes: sinks}},
			ElemBytes: elemBytes,
		}}
	}
	return w
}

// chainEndpoints finds the chain's external inputs (read before written)
// and outputs (written and never consumed afterwards).
func chainEndpoints(ops []opSpec) (sources, sinks []int) {
	written := map[int]bool{}
	src := map[int]bool{}
	lastWrite := map[int]int{}
	for i, o := range ops {
		for _, a := range o.reads {
			if !written[a] {
				src[a] = true
			}
		}
		for _, a := range o.writes {
			written[a] = true
			lastWrite[a] = i
		}
	}
	for a := range src {
		sources = append(sources, a)
	}
	for a, wi := range lastWrite {
		used := false
		for i := wi + 1; i < len(ops); i++ {
			for _, r := range ops[i].reads {
				if r == a {
					used = true
				}
			}
		}
		if !used {
			sinks = append(sinks, a)
		}
	}
	return sources, sinks
}

// runModel executes a plan on the default machine model.
func runModel(w *memsim.Workload, threads int) memsim.Result {
	return memsim.Run(memsim.DefaultMachine(), *w, threads)
}
