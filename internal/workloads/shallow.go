package workloads

import (

	"mozart/internal/annotations/tensorsa"
	"mozart/internal/annotations/vmathsa"
	"mozart/internal/core"
	"mozart/internal/data"
	"mozart/internal/memsim"
	"mozart/internal/tensor"
	"mozart/internal/vmath"
	"mozart/internal/weldsim"
)

// Shallow Water (Figure 4d/4m): a Lax-Friedrichs-style step of the shallow
// water equations on periodic n x n grids. Column rolls are row-local and
// pipeline; row rolls move data across rows and run whole, producing the
// partial pipelining the paper describes for this workload.

const (
	swG  = 9.8
	swDt = 0.01
)

const swOperators = 23

// swChecksum sums the three updated fields.
func swChecksum(h, u, v []float64) float64 { return sumOf(h) + sumOf(u) + sumOf(v) }

// runSWTensor is the NumPy variant. Roll(a, k, axis) moves element i to
// i+k (numpy.roll semantics).
func runSWTensor(v Variant, cfg Config) (float64, error) {
	n := cfg.Scale
	h := tensor.FromSlice(data.FluidGrid(n, 41), n, n)
	u := tensor.FromSlice(data.Vector(n*n, 42, -0.1, 0.1), n, n)
	vv := tensor.FromSlice(data.Vector(n*n, 43, -0.1, 0.1), n, n)

	switch v {
	case Base:
		hx1, hx2 := tensor.Roll(h, 1, 1), tensor.Roll(h, -1, 1)                             // 1, 2
		hy1, hy2 := tensor.Roll(h, 1, 0), tensor.Roll(h, -1, 0)                             // 3, 4
		ux1, ux2 := tensor.Roll(u, 1, 1), tensor.Roll(u, -1, 1)                             // 5, 6
		vy1, vy2 := tensor.Roll(vv, 1, 0), tensor.Roll(vv, -1, 0)                           // 7, 8
		havg := tensor.MulS(tensor.Add(tensor.Add(hx1, hx2), tensor.Add(hy1, hy2)), 0.25)   // 9-12
		flux := tensor.MulS(tensor.Add(tensor.Sub(ux1, ux2), tensor.Sub(vy1, vy2)), swDt/2) // 13-16
		hn := tensor.Sub(havg, flux)                                                        // 17
		un := tensor.Sub(u, tensor.MulS(tensor.Sub(hx1, hx2), swG*swDt/2))                  // 18-20
		vn := tensor.Sub(vv, tensor.MulS(tensor.Sub(hy1, hy2), swG*swDt/2))                 // 21-23
		return swChecksum(hn.Data, un.Data, vn.Data), nil
	case Mozart, MozartNoPipe:
		s := cfg.session()
		if v == MozartNoPipe {
			s = cfg.sessionNoPipe()
		}
		hx1, hx2 := tensorsa.Roll(s, h, 1, 1), tensorsa.Roll(s, h, -1, 1)
		hy1, hy2 := tensorsa.Roll(s, h, 1, 0), tensorsa.Roll(s, h, -1, 0)
		ux1, ux2 := tensorsa.Roll(s, u, 1, 1), tensorsa.Roll(s, u, -1, 1)
		vy1, vy2 := tensorsa.Roll(s, vv, 1, 0), tensorsa.Roll(s, vv, -1, 0)
		havg := tensorsa.MulS(s, tensorsa.Add(s, tensorsa.Add(s, hx1, hx2), tensorsa.Add(s, hy1, hy2)), 0.25)
		flux := tensorsa.MulS(s, tensorsa.Add(s, tensorsa.Sub(s, ux1, ux2), tensorsa.Sub(s, vy1, vy2)), swDt/2)
		hn := tensorsa.Sub(s, havg, flux)
		un := tensorsa.Sub(s, u, tensorsa.MulS(s, tensorsa.Sub(s, hx1, hx2), swG*swDt/2))
		vn := tensorsa.Sub(s, vv, tensorsa.MulS(s, tensorsa.Sub(s, hy1, hy2), swG*swDt/2))
		sum := 0.0
		for _, f := range []*core.Future{hn, un, vn} {
			val, err := f.Get()
			if err != nil {
				return 0, err
			}
			sum += tensor.Sum(val.(*tensor.NDArray))
		}
		return sum, nil
	case Weld:
		return swWeld(h.Data, u.Data, vv.Data, n, cfg.Threads), nil
	}
	return 0, errUnsupported(v)
}

// runSWVmath is the MKL variant. vmath.ShiftCols/ShiftRows move element
// i+k to i, so k is negated to match numpy.roll.
func runSWVmath(v Variant, cfg Config) (float64, error) {
	n := cfg.Scale
	h := vmath.MatrixFrom(n, n, data.FluidGrid(n, 41))
	u := vmath.MatrixFrom(n, n, data.Vector(n*n, 42, -0.1, 0.1))
	vv := vmath.MatrixFrom(n, n, data.Vector(n*n, 43, -0.1, 0.1))
	mat := func() *vmath.Matrix { return vmath.NewMatrix(n, n) }
	hx1, hx2, hy1, hy2 := mat(), mat(), mat(), mat()
	ux1, ux2, vy1, vy2 := mat(), mat(), mat(), mat()
	havg, flux, t1, t2 := mat(), mat(), mat(), mat()
	hn, un, vn := mat(), mat(), mat()

	switch v {
	case Base:
		old := vmath.NumThreads()
		vmath.SetNumThreads(cfg.Threads)
		defer vmath.SetNumThreads(old)
		vmath.ShiftCols(h, -1, hx1)
		vmath.ShiftCols(h, 1, hx2)
		vmath.ShiftRows(h, -1, hy1)
		vmath.ShiftRows(h, 1, hy2)
		vmath.ShiftCols(u, -1, ux1)
		vmath.ShiftCols(u, 1, ux2)
		vmath.ShiftRows(vv, -1, vy1)
		vmath.ShiftRows(vv, 1, vy2)
		vmath.MatAdd(hx1, hx2, t1)
		vmath.MatAdd(hy1, hy2, t2)
		vmath.MatAdd(t1, t2, havg)
		vmath.MatScale(havg, 0.25, havg)
		vmath.MatSub(ux1, ux2, t1)
		vmath.MatSub(vy1, vy2, t2)
		vmath.MatAdd(t1, t2, flux)
		vmath.MatScale(flux, swDt/2, flux)
		vmath.MatSub(havg, flux, hn)
		vmath.MatSub(hx1, hx2, t1)
		vmath.MatScale(t1, swG*swDt/2, t1)
		vmath.MatSub(u, t1, un)
		vmath.MatSub(hy1, hy2, t2)
		vmath.MatScale(t2, swG*swDt/2, t2)
		vmath.MatSub(vv, t2, vn)
		return swChecksum(hn.Data, un.Data, vn.Data), nil
	case Mozart, MozartNoPipe:
		s := cfg.session()
		if v == MozartNoPipe {
			s = cfg.sessionNoPipe()
		}
		vmathsa.ShiftCols(s, h, -1, hx1)
		vmathsa.ShiftCols(s, h, 1, hx2)
		vmathsa.ShiftRows(s, h, -1, hy1)
		vmathsa.ShiftRows(s, h, 1, hy2)
		vmathsa.ShiftCols(s, u, -1, ux1)
		vmathsa.ShiftCols(s, u, 1, ux2)
		vmathsa.ShiftRows(s, vv, -1, vy1)
		vmathsa.ShiftRows(s, vv, 1, vy2)
		vmathsa.MatAdd(s, hx1, hx2, t1)
		vmathsa.MatAdd(s, hy1, hy2, t2)
		vmathsa.MatAdd(s, t1, t2, havg)
		vmathsa.MatScale(s, havg, 0.25, havg)
		vmathsa.MatSub(s, ux1, ux2, t1)
		vmathsa.MatSub(s, vy1, vy2, t2)
		vmathsa.MatAdd(s, t1, t2, flux)
		vmathsa.MatScale(s, flux, swDt/2, flux)
		vmathsa.MatSub(s, havg, flux, hn)
		vmathsa.MatSub(s, hx1, hx2, t1)
		vmathsa.MatScale(s, t1, swG*swDt/2, t1)
		vmathsa.MatSub(s, u, t1, un)
		vmathsa.MatSub(s, hy1, hy2, t2)
		vmathsa.MatScale(s, t2, swG*swDt/2, t2)
		vmathsa.MatSub(s, vv, t2, vn)
		if err := s.EvaluateContext(cfg.ctx()); err != nil {
			return 0, err
		}
		return swChecksum(hn.Data, un.Data, vn.Data), nil
	case Weld:
		return swWeld(h.Data, u.Data, vv.Data, n, cfg.Threads), nil
	}
	return 0, errUnsupported(v)
}

// swWeld rolls eagerly and fuses the elementwise updates.
func swWeld(h, u, v []float64, n, threads int) float64 {
	roll := func(a []float64, k, axis int) []float64 {
		out := make([]float64, n*n)
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				if axis == 0 {
					out[((r+k+n)%n)*n+c] = a[r*n+c]
				} else {
					out[r*n+(c+k+n)%n] = a[r*n+c]
				}
			}
		}
		return out
	}
	hx1, hx2 := weldsim.Source(roll(h, 1, 1)), weldsim.Source(roll(h, -1, 1))
	hy1, hy2 := weldsim.Source(roll(h, 1, 0)), weldsim.Source(roll(h, -1, 0))
	ux1, ux2 := weldsim.Source(roll(u, 1, 1)), weldsim.Source(roll(u, -1, 1))
	vy1, vy2 := weldsim.Source(roll(v, 1, 0)), weldsim.Source(roll(v, -1, 0))
	havg := hx1.Add(hx2).Add(hy1.Add(hy2)).MulS(0.25)
	flux := ux1.Sub(ux2).Add(vy1.Sub(vy2)).MulS(swDt / 2)
	hn := havg.Sub(flux)
	un := weldsim.Source(u).Sub(hx1.Sub(hx2).MulS(swG * swDt / 2))
	vn := weldsim.Source(v).Sub(hy1.Sub(hy2).MulS(swG * swDt / 2))
	outs := weldsim.Eval(threads, hn, un, vn)
	return swChecksum(outs[0], outs[1], outs[2])
}

func swModel(alloc bool) func(v Variant, cfg Config) *memsim.Workload {
	return func(v Variant, cfg Config) *memsim.Workload {
		elems := int64(cfg.Scale) * int64(cfg.Scale)
		const (
			h, u, vv                               = 0, 1, 2
			hx1, hx2, hy1, hy2, ux1, ux2, vy1, vy2 = 3, 4, 5, 6, 7, 8, 9, 10
			havg, flux, t1, t2, hn, un, vn         = 11, 12, 13, 14, 15, 16, 17
		)
		wholeRolls := memsim.Stage{
			Ops: []memsim.Op{
				{Name: "rollrows", CyclesPerElem: cycAdd, Reads: []int{h}, Writes: []int{hy1}},
				{Name: "rollrows", CyclesPerElem: cycAdd, Reads: []int{h}, Writes: []int{hy2}},
				{Name: "rollrows", CyclesPerElem: cycAdd, Reads: []int{vv}, Writes: []int{vy1}},
				{Name: "rollrows", CyclesPerElem: cycAdd, Reads: []int{vv}, Writes: []int{vy2}},
			},
			Elems: elems, ElemBytes: 8,
		}
		chainOps := []opSpec{
			op("rollcols", cycAdd, []int{h}, []int{hx1}),
			op("rollcols", cycAdd, []int{h}, []int{hx2}),
			op("rollcols", cycAdd, []int{u}, []int{ux1}),
			op("rollcols", cycAdd, []int{u}, []int{ux2}),
			op("add", cycAdd, []int{hx1, hx2}, []int{t1}),
			op("add", cycAdd, []int{hy1, hy2}, []int{t2}),
			op("add", cycAdd, []int{t1, t2}, []int{havg}),
			op("muls", cycMul, []int{havg}, []int{havg}),
			op("sub", cycAdd, []int{ux1, ux2}, []int{t1}),
			op("sub", cycAdd, []int{vy1, vy2}, []int{t2}),
			op("add", cycAdd, []int{t1, t2}, []int{flux}),
			op("muls", cycMul, []int{flux}, []int{flux}),
			op("sub", cycAdd, []int{havg, flux}, []int{hn}),
			op("sub", cycAdd, []int{hx1, hx2}, []int{t1}),
			op("muls", cycMul, []int{t1}, []int{t1}),
			op("sub", cycAdd, []int{u, t1}, []int{un}),
			op("sub", cycAdd, []int{hy1, hy2}, []int{t2}),
			op("muls", cycMul, []int{t2}, []int{t2}),
			op("sub", cycAdd, []int{vv, t2}, []int{vn}),
		}
		chain := chainModel("shallow-chain", chainOps, elems, 8, v, cfg.Batch)
		if alloc {
			chain = chainModelAlloc("shallow-chain", chainOps, elems, 8, v, cfg.Batch)
		}
		w := &memsim.Workload{Name: "shallow", Elems: elems}
		w.Stages = append(w.Stages, wholeRolls)
		w.Stages = append(w.Stages, chain.Stages...)
		return w
	}
}

func init() {
	register(Spec{
		Name:         "shallowwater-numpy",
		Library:      "NumPy",
		Description:  "Shallow water PDE step on periodic grids (Fig. 4d)",
		Operators:    swOperators,
		Variants:     []Variant{Base, Mozart, MozartNoPipe, Weld},
		Run:          runSWTensor,
		DefaultScale: 1024,
		Model:        swModel(true),
	})
	register(Spec{
		Name:         "shallowwater-mkl",
		Library:      "MKL",
		Description:  "Shallow water PDE step over MKL-style matrices (Fig. 4m)",
		Operators:    swOperators,
		BaseParallel: true,
		Variants:     []Variant{Base, Mozart, MozartNoPipe, Weld},
		Run:          runSWVmath,
		DefaultScale: 1024,
		Model:        swModel(false),
	})
}
