package workloads

import (

	"mozart/internal/annotations/tensorsa"
	"mozart/internal/annotations/vmathsa"
	"mozart/internal/core"
	"mozart/internal/data"
	"mozart/internal/memsim"
	"mozart/internal/tensor"
	"mozart/internal/vmath"
	"mozart/internal/weldsim"
)

// nBody (Figure 4c/4l): Newtonian gravity over pairwise-interaction
// matrices. The O(n^2) pairwise elementwise chain pipelines; the outer
// differences that build the matrices read whole vectors and cannot be
// split, which is where the stage breaks land (§8.2).

const (
	nbG   = 1.0
	nbEps = 1e-3
	nbDt  = 0.01
)

const nbOperators = 29

// runNBodyVmath is the MKL variant.
func runNBodyVmath(v Variant, cfg Config) (float64, error) {
	n := cfg.Scale
	x, y, z, mass := data.Bodies(n, 31)
	vx, vy, vz := make([]float64, n), make([]float64, n), make([]float64, n)
	mat := func() *vmath.Matrix { return vmath.NewMatrix(n, n) }
	dx, dy, dz, r2, t1 := mat(), mat(), mat(), mat(), mat()
	fx, fy, fz := mat(), mat(), mat()
	ax, ay, az := make([]float64, n), make([]float64, n), make([]float64, n)
	tmp := make([]float64, n)

	switch v {
	case Base:
		old := vmath.NumThreads()
		vmath.SetNumThreads(cfg.Threads)
		defer vmath.SetNumThreads(old)
		vmath.OuterDiff(x, dx)        // 1
		vmath.OuterDiff(y, dy)        // 2
		vmath.OuterDiff(z, dz)        // 3
		vmath.MatMulElem(dx, dx, r2)  // 4
		vmath.MatMulElem(dy, dy, t1)  // 5
		vmath.MatAdd(r2, t1, r2)      // 6
		vmath.MatMulElem(dz, dz, t1)  // 7
		vmath.MatAdd(r2, t1, r2)      // 8
		vmath.MatAddC(r2, nbEps, r2)  // 9
		vmath.MatPowC(r2, -1.5, r2)   // 10
		vmath.MulRowVec(r2, mass, r2) // 11
		vmath.MatMulElem(dx, r2, fx)  // 12
		vmath.MatMulElem(dy, r2, fy)  // 13
		vmath.MatMulElem(dz, r2, fz)  // 14
		vmath.RowSums(fx, ax)         // 15
		vmath.RowSums(fy, ay)         // 16
		vmath.RowSums(fz, az)         // 17
		for i, upd := range [][2][]float64{{ax, vx}, {ay, vy}, {az, vz}} {
			_ = i
			vmath.MulC(n, upd[0], -nbG*nbDt, tmp) // 18, 20, 22
			vmath.Add(n, upd[1], tmp, upd[1])     // 19, 21, 23
		}
		for _, upd := range [][2][]float64{{vx, x}, {vy, y}, {vz, z}} {
			vmath.MulC(n, upd[0], nbDt, tmp)  // 24, 26, 28
			vmath.Add(n, upd[1], tmp, upd[1]) // 25, 27, 29
		}
		return sumOf(x) + sumOf(y) + sumOf(z) + sumOf(vx) + sumOf(vy) + sumOf(vz), nil
	case Mozart, MozartNoPipe:
		s := cfg.session()
		if v == MozartNoPipe {
			s = cfg.sessionNoPipe()
		}
		vmathsa.OuterDiff(s, x, dx)
		vmathsa.OuterDiff(s, y, dy)
		vmathsa.OuterDiff(s, z, dz)
		vmathsa.MatMulElem(s, dx, dx, r2)
		vmathsa.MatMulElem(s, dy, dy, t1)
		vmathsa.MatAdd(s, r2, t1, r2)
		vmathsa.MatMulElem(s, dz, dz, t1)
		vmathsa.MatAdd(s, r2, t1, r2)
		vmathsa.MatAddC(s, r2, nbEps, r2)
		vmathsa.MatPowC(s, r2, -1.5, r2)
		vmathsa.MulRowVec(s, r2, mass, r2)
		vmathsa.MatMulElem(s, dx, r2, fx)
		vmathsa.MatMulElem(s, dy, r2, fy)
		vmathsa.MatMulElem(s, dz, r2, fz)
		vmathsa.RowSums(s, fx, ax)
		vmathsa.RowSums(s, fy, ay)
		vmathsa.RowSums(s, fz, az)
		for _, upd := range [][2][]float64{{ax, vx}, {ay, vy}, {az, vz}} {
			vmathsa.MulC(s, n, upd[0], -nbG*nbDt, tmp)
			vmathsa.Add(s, n, upd[1], tmp, upd[1])
		}
		for _, upd := range [][2][]float64{{vx, x}, {vy, y}, {vz, z}} {
			vmathsa.MulC(s, n, upd[0], nbDt, tmp)
			vmathsa.Add(s, n, upd[1], tmp, upd[1])
		}
		if err := s.EvaluateContext(cfg.ctx()); err != nil {
			return 0, err
		}
		return sumOf(x) + sumOf(y) + sumOf(z) + sumOf(vx) + sumOf(vy) + sumOf(vz), nil
	case Weld:
		return nbodyWeld(x, y, z, vx, vy, vz, mass, cfg.Threads), nil
	}
	return 0, errUnsupported(v)
}

// nbodyWeld computes the pairwise chain as fused expressions; the outer
// differences and the row-sum reductions are "captured" eagerly, the way
// Bohrium handles indexing operations.
func nbodyWeld(x, y, z, vx, vy, vz, mass []float64, threads int) float64 {
	n := len(x)
	dx, dy, dz := make([]float64, n*n), make([]float64, n*n), make([]float64, n*n)
	mm := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			dx[i*n+j] = x[i] - x[j]
			dy[i*n+j] = y[i] - y[j]
			dz[i*n+j] = z[i] - z[j]
			mm[i*n+j] = mass[j]
		}
	}
	vdx, vdy, vdz := weldsim.Source(dx), weldsim.Source(dy), weldsim.Source(dz)
	inv := vdx.Square().Add(vdy.Square()).Add(vdz.Square()).AddS(nbEps).Pow(weldsim.Const(-1.5, n*n)).Mul(weldsim.Source(mm))
	outs := weldsim.Eval(threads, vdx.Mul(inv), vdy.Mul(inv), vdz.Mul(inv))
	sum := 0.0
	for i := 0; i < n; i++ {
		var axr, ayr, azr float64
		for j := 0; j < n; j++ {
			axr += outs[0][i*n+j]
			ayr += outs[1][i*n+j]
			azr += outs[2][i*n+j]
		}
		vx[i] += -nbG * nbDt * axr
		vy[i] += -nbG * nbDt * ayr
		vz[i] += -nbG * nbDt * azr
		x[i] += vx[i] * nbDt
		y[i] += vy[i] * nbDt
		z[i] += vz[i] * nbDt
		sum += x[i] + y[i] + z[i] + vx[i] + vy[i] + vz[i]
	}
	return sum
}

// runNBodyTensor is the NumPy variant; the mass broadcast matrix is built
// with an outer op, and per-row reductions use SumAxis1.
func runNBodyTensor(v Variant, cfg Config) (float64, error) {
	n := cfg.Scale
	xs, ys, zs, ms := data.Bodies(n, 31)
	x := tensor.FromSlice(xs, n)
	y := tensor.FromSlice(ys, n)
	z := tensor.FromSlice(zs, n)
	mass := tensor.FromSlice(ms, n)
	zerov := tensor.New(n)
	vx, vy, vz := tensor.New(n), tensor.New(n), tensor.New(n)

	switch v {
	case Base:
		dx := tensor.OuterSub(x, x)
		dy := tensor.OuterSub(y, y)
		dz := tensor.OuterSub(z, z)
		mm := tensor.OuterSub(zerov, tensor.Neg(mass)) // mm[i][j] = mass[j]
		r2 := tensor.AddS(tensor.Add(tensor.Add(tensor.Square(dx), tensor.Square(dy)), tensor.Square(dz)), nbEps)
		inv := tensor.Mul(tensor.PowS(r2, -1.5), mm)
		ax := tensor.SumAxis1(tensor.Mul(dx, inv))
		ay := tensor.SumAxis1(tensor.Mul(dy, inv))
		az := tensor.SumAxis1(tensor.Mul(dz, inv))
		vx = tensor.Add(vx, tensor.MulS(ax, -nbG*nbDt))
		vy = tensor.Add(vy, tensor.MulS(ay, -nbG*nbDt))
		vz = tensor.Add(vz, tensor.MulS(az, -nbG*nbDt))
		x = tensor.Add(x, tensor.MulS(vx, nbDt))
		y = tensor.Add(y, tensor.MulS(vy, nbDt))
		z = tensor.Add(z, tensor.MulS(vz, nbDt))
		return tensor.Sum(x) + tensor.Sum(y) + tensor.Sum(z) + tensor.Sum(vx) + tensor.Sum(vy) + tensor.Sum(vz), nil
	case Mozart, MozartNoPipe:
		s := cfg.session()
		if v == MozartNoPipe {
			s = cfg.sessionNoPipe()
		}
		dx := tensorsa.OuterSub(s, x, x)
		dy := tensorsa.OuterSub(s, y, y)
		dz := tensorsa.OuterSub(s, z, z)
		mm := tensorsa.OuterSub(s, zerov, tensorsa.Neg(s, mass))
		r2 := tensorsa.AddS(s, tensorsa.Add(s, tensorsa.Add(s, tensorsa.Square(s, dx), tensorsa.Square(s, dy)), tensorsa.Square(s, dz)), nbEps)
		inv := tensorsa.Mul(s, tensorsa.PowS(s, r2, -1.5), mm)
		ax := tensorsa.SumAxis(s, tensorsa.Mul(s, dx, inv), 1)
		ay := tensorsa.SumAxis(s, tensorsa.Mul(s, dy, inv), 1)
		az := tensorsa.SumAxis(s, tensorsa.Mul(s, dz, inv), 1)
		fvx := tensorsa.Add(s, vx, tensorsa.MulS(s, ax, -nbG*nbDt))
		fvy := tensorsa.Add(s, vy, tensorsa.MulS(s, ay, -nbG*nbDt))
		fvz := tensorsa.Add(s, vz, tensorsa.MulS(s, az, -nbG*nbDt))
		fx := tensorsa.Add(s, x, tensorsa.MulS(s, fvx, nbDt))
		fy := tensorsa.Add(s, y, tensorsa.MulS(s, fvy, nbDt))
		fz := tensorsa.Add(s, z, tensorsa.MulS(s, fvz, nbDt))
		sum := 0.0
		for _, f := range []*core.Future{fx, fy, fz, fvx, fvy, fvz} {
			v, err := f.Get()
			if err != nil {
				return 0, err
			}
			sum += tensor.Sum(v.(*tensor.NDArray))
		}
		return sum, nil
	case Weld:
		vxs, vys, vzs := make([]float64, n), make([]float64, n), make([]float64, n)
		return nbodyWeld(xs, ys, zs, vxs, vys, vzs, ms, cfg.Threads), nil
	}
	return 0, errUnsupported(v)
}

// nbModel builds the memsim plan: whole outer stages over n^2 elements,
// one pipelined pairwise stage, and a small vector stage. alloc marks the
// out-of-place (NumPy) flavor whose intermediates are batch-local.
func nbModel(alloc bool) func(v Variant, cfg Config) *memsim.Workload {
	return func(v Variant, cfg Config) *memsim.Workload {
		n := int64(cfg.Scale)
		pair := n * n
		const (
			dx, dy, dz, r2, t1, mm = 0, 1, 2, 3, 4, 5
			fx, fy, fz             = 6, 7, 8
		)
		outer := memsim.Stage{
			Ops: []memsim.Op{
				{Name: "outer", CyclesPerElem: cycAdd, Writes: []int{dx}},
				{Name: "outer", CyclesPerElem: cycAdd, Writes: []int{dy}},
				{Name: "outer", CyclesPerElem: cycAdd, Writes: []int{dz}},
				{Name: "outer", CyclesPerElem: cycAdd, Writes: []int{mm}},
			},
			Elems: pair, ElemBytes: 8,
		}
		pairOps := []opSpec{
			op("mul", cycMul, []int{dx, dx}, []int{r2}),
			op("mul", cycMul, []int{dy, dy}, []int{t1}),
			op("add", cycAdd, []int{r2, t1}, []int{r2}),
			op("mul", cycMul, []int{dz, dz}, []int{t1}),
			op("add", cycAdd, []int{r2, t1}, []int{r2}),
			op("addc", cycAdd, []int{r2}, []int{r2}),
			op("pow", cycExp, []int{r2}, []int{r2}),
			op("mulrow", cycMul, []int{r2, mm}, []int{r2}),
			op("mul", cycMul, []int{dx, r2}, []int{fx}),
			op("mul", cycMul, []int{dy, r2}, []int{fy}),
			op("mul", cycMul, []int{dz, r2}, []int{fz}),
			op("rowsum", cycAdd, []int{fx}, nil),
			op("rowsum", cycAdd, []int{fy}, nil),
			op("rowsum", cycAdd, []int{fz}, nil),
		}
		chain := chainModel("nbody-pair", pairOps, pair, 8, v, cfg.Batch)
		if alloc {
			chain = chainModelAlloc("nbody-pair", pairOps, pair, 8, v, cfg.Batch)
		}
		vec := memsim.Stage{
			Ops:   []memsim.Op{{Name: "integrate", CyclesPerElem: 12 * cycMul, Reads: []int{20}, Writes: []int{21}}},
			Elems: n, ElemBytes: 8,
		}
		w := &memsim.Workload{Name: "nbody", Elems: pair}
		w.Stages = append(w.Stages, outer)
		w.Stages = append(w.Stages, chain.Stages...)
		w.Stages = append(w.Stages, vec)
		return w
	}
}

func init() {
	register(Spec{
		Name:         "nbody-numpy",
		Library:      "NumPy",
		Description:  "Newtonian n-body step over pairwise matrices (Fig. 4c)",
		Operators:    nbOperators,
		Variants:     []Variant{Base, Mozart, MozartNoPipe, Weld},
		Run:          runNBodyTensor,
		DefaultScale: 1024,
		Model:        nbModel(true),
	})
	register(Spec{
		Name:         "nbody-mkl",
		Library:      "MKL",
		Description:  "Newtonian n-body step over MKL-style matrices (Fig. 4l)",
		Operators:    nbOperators,
		BaseParallel: true,
		Variants:     []Variant{Base, Mozart, MozartNoPipe, Weld},
		Run:          runNBodyVmath,
		DefaultScale: 1024,
		Model:        nbModel(false),
	})
}
