// Package workloads implements the paper's 15 evaluation workloads
// (Table 2), each in several execution variants:
//
//   - Base: the unmodified substrate library (vmath/tensor/frame/nlp/
//     imagelib), using the library's own internal parallelism where the
//     real library has it (MKL, ImageMagick).
//   - Mozart: the same library calls through split annotations.
//   - MozartNoPipe: Mozart with pipelining disabled (Table 4's ablation).
//   - Weld: the weldsim fused-IR comparator, where expressible.
//
// Each workload also exposes a memsim plan model so the multicore figures
// can be regenerated on a single-core host (see DESIGN.md).
package workloads

import (
	"context"
	"fmt"
	"sort"
	"time"

	"mozart/internal/core"
	"mozart/internal/memsim"
	"mozart/internal/obs"
	"mozart/internal/plan"
)

// Variant selects an execution strategy.
type Variant string

// Execution variants.
const (
	Base         Variant = "base"
	Mozart       Variant = "mozart"
	MozartNoPipe Variant = "mozart-nopipe"
	Weld         Variant = "weld"
)

// Config parameterizes a run.
type Config struct {
	Scale   int   // elements / rows / pixels, workload-specific meaning
	Threads int   // worker threads (and library-internal threads for Base)
	Batch   int64 // Mozart batch override; 0 = the C*L2 heuristic
	// OnSession, when set, observes every Mozart session a workload
	// creates (used by the Figure 5 overhead-breakdown harness).
	OnSession func(*core.Session)
	// Guard simulates memory-protected input buffers with the given
	// modeled unprotect cost (§8.5); 0 disables.
	UnprotectNSPerByte float64
	// Tracer, when set, receives structured runtime events from every
	// Mozart session a workload creates (sabench -experiment trace).
	Tracer obs.Tracer
	// OnPlan, when set, receives the plan IR of every evaluation in every
	// Mozart session a workload creates (the plan-to-model consistency
	// tests and sabench -experiment explain).
	OnPlan func(*plan.Plan)
	// Ctx, when set, bounds every Mozart evaluation the workload runs:
	// its deadline and cancellation reach explicit EvaluateContext calls
	// and — via core.Options.BaseContext — the lazy Future reads inside
	// frame/nlp/image workloads that never see a context parameter. Nil
	// means context.Background(). This is how mozartd propagates a
	// request's deadline (and client disconnects) into a running
	// workload.
	Ctx context.Context
	// The remaining fields are the tenant-scoped resilience knobs mozartd
	// plumbs per request; zero values leave each mechanism off, exactly
	// as before.
	Governor     *core.Governor     // stage-admission byte budget, shareable
	Breakers     *core.BreakerGroup // shared per-annotation circuit breakers
	Fallback     core.FallbackPolicy
	Retry        core.RetryPolicy
	StageTimeout time.Duration
	// OutOfCore opts the workload's sessions into streaming degradation:
	// stages whose working set exceeds the Governor budget execute in
	// admission-bounded windows (spilling merge partials) instead of
	// blocking. SpillDir overrides the spill directory (OS temp dir when
	// empty).
	OutOfCore bool
	SpillDir  string
	// Tuner, when set, closes the telemetry→plan loop for every Mozart
	// session the workload creates (core.Options.Tuner): the planner
	// consults it for batch/worker overrides and the executor reports
	// measured throughput back. Typically a *tune.Tuner shared across
	// evaluations so calibration state accumulates.
	Tuner plan.BatchSource
	// Trace, when set, is the request-scoped trace context stamped onto
	// the sessions' begin/end events (core.Options.Trace) — how mozartd
	// keys flight recordings and latency exemplars by the originating
	// request's trace id.
	Trace *obs.TraceContext
}

// ctx resolves the evaluation context (Config.Ctx or Background).
func (c Config) ctx() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

func (c Config) options() core.Options {
	o := core.Options{
		Workers:            c.Threads,
		BatchElems:         c.Batch,
		UnprotectNSPerByte: c.UnprotectNSPerByte,
		Tracer:             c.Tracer,
		OnPlan:             c.OnPlan,
		Governor:           c.Governor,
		Breakers:           c.Breakers,
		FallbackPolicy:     c.Fallback,
		RetryPolicy:        c.Retry,
		StageTimeout:       c.StageTimeout,
		OutOfCore:          c.OutOfCore,
		SpillDir:           c.SpillDir,
		Tuner:              c.Tuner,
		Trace:              c.Trace,
	}
	if c.Ctx != nil {
		ctx := c.Ctx
		o.BaseContext = func() context.Context { return ctx }
	}
	return o
}

func (c Config) session() *core.Session {
	s := core.NewSession(c.options())
	if c.OnSession != nil {
		c.OnSession(s)
	}
	return s
}

func (c Config) sessionNoPipe() *core.Session {
	o := c.options()
	o.DisablePipelining = true
	s := core.NewSession(o)
	if c.OnSession != nil {
		c.OnSession(s)
	}
	return s
}

// Spec describes one workload.
type Spec struct {
	Name        string
	Library     string // base library, as in the Figure 4 captions
	Description string
	Operators   int // library API calls on the hot path (Table 2)
	// BaseParallel marks libraries that already parallelize internally
	// (MKL, ImageMagick); single-threaded bases (NumPy, Pandas, spaCy)
	// ignore the thread count, as in Figure 4.
	BaseParallel bool
	Variants     []Variant
	// Run executes the workload and returns a checksum over its result for
	// cross-variant validation.
	Run func(v Variant, cfg Config) (float64, error)
	// Model returns the memsim plan for a variant (nil if not modeled).
	Model func(v Variant, cfg Config) *memsim.Workload
	// DefaultScale is the scale used by figure regeneration.
	DefaultScale int
}

var registry []Spec

func register(s Spec) { registry = append(registry, s) }

// figOrder is the Figure 4 panel order (4a through 4o).
var figOrder = []string{
	"blackscholes-numpy", "haversine-numpy", "nbody-numpy", "shallowwater-numpy",
	"datacleaning-pandas", "crimeindex-pandas", "birthanalysis-pandas", "movielens-pandas",
	"speechtag-spacy",
	"blackscholes-mkl", "haversine-mkl", "nbody-mkl", "shallowwater-mkl",
	"nashville-imagemagick", "gotham-imagemagick",
	"blackscholes-ooc",
}

// All returns every workload spec, in Figure 4 order.
func All() []Spec {
	rank := map[string]int{}
	for i, n := range figOrder {
		rank[n] = i
	}
	out := append([]Spec(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return rank[out[i].Name] < rank[out[j].Name] })
	return out
}

// ByName returns the named spec.
func ByName(name string) (Spec, error) {
	for _, s := range registry {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workloads: unknown workload %q", name)
}

// HasVariant reports whether the spec supports v.
func (s Spec) HasVariant(v Variant) bool {
	for _, x := range s.Variants {
		if x == v {
			return true
		}
	}
	return false
}

// checksum helpers

func sumOf(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}
