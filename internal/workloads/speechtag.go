package workloads

import (
	"mozart/internal/annotations/nlpsa"
	"mozart/internal/data"
	"mozart/internal/memsim"
	"mozart/internal/nlp"
)

// Speech Tag (Figure 4i): part-of-speech tagging and feature extraction
// over a review corpus. The corpus split type parallelizes the tagger's
// minibatches; speedups come almost entirely from parallelization (the
// paper notes no compilers supported spaCy).

const stOperators = 2

func stChecksum(counts map[string]int64) float64 {
	sum := 0.0
	for pos, n := range counts {
		sum += float64(len(pos)) * float64(n)
	}
	return sum
}

func runSpeechTag(v Variant, cfg Config) (float64, error) {
	corpus := data.ReviewCorpus(cfg.Scale, 91)
	tagger := nlp.NewTagger()
	switch v {
	case Base:
		docs := tagger.Pipe(corpus)   // 1
		counts := nlp.POSCounts(docs) // 2
		return stChecksum(counts), nil
	case Mozart, MozartNoPipe:
		s := cfg.session()
		if v == MozartNoPipe {
			s = cfg.sessionNoPipe()
		}
		docs := nlpsa.Pipe(s, tagger, corpus)
		counts := nlpsa.POSCounts(s, docs)
		cv, err := counts.Get()
		if err != nil {
			return 0, err
		}
		return stChecksum(cv.(map[string]int64)), nil
	}
	return 0, errUnsupported(v)
}

func stModel(v Variant, cfg Config) *memsim.Workload {
	// Tagging is compute bound: hundreds of cycles per document token;
	// one "element" is a document of ~60 tokens (~400 bytes of text).
	ops := []opSpec{
		{name: "pipe", cycles: 6000, weldC: 6000, reads: []int{0}, writes: []int{1}},
		{name: "posCounts", cycles: 400, weldC: 400, reads: []int{1}, writes: nil},
	}
	return chainModelAlloc("speechtag", ops, int64(cfg.Scale), 400, v, cfg.Batch)
}

func init() {
	register(Spec{
		Name:         "speechtag-spacy",
		Library:      "spaCy",
		Description:  "POS tagging and feature extraction over a review corpus (Fig. 4i)",
		Operators:    stOperators,
		Variants:     []Variant{Base, Mozart, MozartNoPipe},
		Run:          runSpeechTag,
		DefaultScale: 1 << 13,
		Model:        stModel,
	})
}
