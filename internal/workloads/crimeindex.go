package workloads

import (
	"mozart/internal/annotations/framesa"
	"mozart/internal/data"
	"mozart/internal/frame"
	"mozart/internal/memsim"
	"mozart/internal/weldsim"
)

// Crime Index (Figure 4f): compute an average crime-index score from
// per-record population and crime counts — scalar arithmetic over float
// columns, two filters, and a final sum. 16 library calls, fully
// pipelineable, with `unknown` filter outputs flowing into generics.

const ciOperators = 15

func ciReference(df *frame.DataFrame) float64 {
	pop := df.Col("population")                 // big-city filter
	bigMask := frame.GtScalar(pop, 500000)      // 1
	big := frame.Filter(df, bigMask)            // 2
	pop2 := big.Col("population")               // 3
	crime := big.Col("total_crimes")            // 4
	rate := frame.DivSeries(crime, pop2)        // 5
	perCapita := frame.MulScalar(rate, 1000)    // 6
	weighted := frame.MulScalar(perCapita, 2.0) // 7
	adj := frame.AddScalar(weighted, 10)        // 8
	highMask := frame.LtScalar(adj, 60)         // 9
	sane := frame.FilterSeries(adj, highMask)   // 10
	idx := frame.SubScalar(sane, 10)            // 11
	idx = frame.DivScalar(idx, 2)               // 12
	total := frame.SumFloat(idx)                // 13
	count := frame.CountValid(idx)              // 14
	_ = frame.MulScalar(idx, 1)                 // 15: normalization pass
	if count == 0 {
		return 0
	}
	return total / float64(count) // 16
}

func runCrimeIndex(v Variant, cfg Config) (float64, error) {
	df := data.CityData(cfg.Scale, 61)
	switch v {
	case Base:
		return ciReference(df), nil
	case Mozart, MozartNoPipe:
		s := cfg.session()
		if v == MozartNoPipe {
			s = cfg.sessionNoPipe()
		}
		pop := df.Col("population")
		bigMask := framesa.GtScalar(s, pop, 500000)
		big := framesa.Filter(s, df, bigMask)
		pop2 := framesa.Col(s, big, "population")
		crime := framesa.Col(s, big, "total_crimes")
		rate := framesa.DivSeries(s, crime, pop2)
		perCapita := framesa.MulScalar(s, rate, 1000)
		weighted := framesa.MulScalar(s, perCapita, 2.0)
		adj := framesa.AddScalar(s, weighted, 10)
		highMask := framesa.LtScalar(s, adj, 60)
		sane := framesa.FilterSeries(s, adj, highMask)
		idx := framesa.SubScalar(s, sane, 10)
		idx = framesa.DivScalar(s, idx, 2)
		framesa.MulScalar(s, idx, 1)
		total := framesa.SumFloat(s, idx)
		count := framesa.CountValid(s, idx)
		tv, err := total.Float64()
		if err != nil {
			return 0, err
		}
		cv, err := count.Int64()
		if err != nil {
			return 0, err
		}
		if cv == 0 {
			return 0, nil
		}
		return tv / float64(cv), nil
	case Weld:
		pop := df.Col("population").F
		crime := df.Col("total_crimes").F
		vp, vc := weldsim.Source(pop), weldsim.Source(crime)
		adj := vc.Div(vp).MulS(1000).MulS(2).AddS(10)
		keep := vp.GtS(500000)
		// Fused filter: contribute only where both masks hold.
		mask := keep.Mul(adj.LtS(60))
		idx := adj.SubS(10).DivS(2)
		total := idx.Mul(mask).Sum(cfg.Threads)
		count := mask.Sum(cfg.Threads)
		if count == 0 {
			return 0, nil
		}
		return total / count, nil
	}
	return 0, errUnsupported(v)
}

func ciModel(v Variant, cfg Config) *memsim.Workload {
	ops := []opSpec{
		op("gt", cycCmp, []int{0}, []int{2}),
		op("filter", 2*cycMul, []int{0, 1, 2}, []int{3, 4}),
		op("col", cycCmp, []int{3}, nil),
		op("col", cycCmp, []int{4}, nil),
		op("div", cycDiv, []int{3, 4}, []int{5}),
		op("muls", cycMul, []int{5}, []int{5}),
		op("muls", cycMul, []int{5}, []int{5}),
		op("adds", cycAdd, []int{5}, []int{5}),
		op("lt", cycCmp, []int{5}, []int{6}),
		op("filter", 2*cycMul, []int{5, 6}, []int{7}),
		op("subs", cycAdd, []int{7}, []int{7}),
		op("divs", cycDiv, []int{7}, []int{7}),
		op("muls", cycMul, []int{7}, []int{7}),
		op("sum", cycAdd, []int{7}, nil),
		op("count", cycAdd, []int{7}, nil),
	}
	return chainModelAlloc("crimeindex", ops, int64(cfg.Scale), 8, v, cfg.Batch)
}

func init() {
	register(Spec{
		Name:         "crimeindex-pandas",
		Library:      "Pandas",
		Description:  "average crime index from per-city population/crime data (Fig. 4f)",
		Operators:    ciOperators,
		Variants:     []Variant{Base, Mozart, MozartNoPipe, Weld},
		Run:          runCrimeIndex,
		DefaultScale: 1 << 19,
		Model:        ciModel,
	})
}
