package workloads

import "mozart/internal/planlower"

// Cost tables for lowering real planner output (the plan IR) into memsim
// workloads via internal/planlower. They map annotated function names to
// the hand-model op names and the shared per-element cycle constants, so a
// lowered model and the corresponding hand model in this package are
// directly comparable op by op — the plan-to-model consistency test holds
// them identical.

// vmathCosts covers the vmathsa (MKL-style) annotations used by the vector
// chain workloads.
var vmathCosts = map[string]planlower.CallCost{
	"vdAdd":       {Name: "add", CyclesPerElem: cycAdd},
	"vdSub":       {Name: "sub", CyclesPerElem: cycAdd},
	"vdMul":       {Name: "mul", CyclesPerElem: cycMul},
	"vdDiv":       {Name: "div", CyclesPerElem: cycDiv},
	"vdFmax":      {Name: "fmax", CyclesPerElem: cycCmp},
	"vdSqrt":      {Name: "sqrt", CyclesPerElem: cycSqrt},
	"vdSqr":       {Name: "sqr", CyclesPerElem: cycMul},
	"vdExp":       {Name: "exp", CyclesPerElem: cycExp},
	"vdLn":        {Name: "ln", CyclesPerElem: cycLn},
	"vdCdfNorm":   {Name: "cdfnorm", CyclesPerElem: cycErf},
	"vdSin":       {Name: "sin", CyclesPerElem: cycErf}, // trig ~ erf intensity
	"vdCos":       {Name: "cos", CyclesPerElem: cycErf},
	"vdAtan2":     {Name: "atan2", CyclesPerElem: cycExp},
	"vdAddC":      {Name: "addc", CyclesPerElem: cycAdd},
	"vdSubC":      {Name: "subc", CyclesPerElem: cycAdd},
	"vdSubCRev":   {Name: "subcrev", CyclesPerElem: cycAdd},
	"vdMulC":      {Name: "mulc", CyclesPerElem: cycMul},
	"vdSum":       {Name: "sum", CyclesPerElem: cycAdd},
	"vdMaxReduce": {Name: "max", CyclesPerElem: cycCmp},
	// bsChunk is the out-of-core workload's fused scalar kernel: one erf,
	// exp, ln, and sqrt pair per option dominates its per-element cost.
	"bsChunk": {Name: "bschunk", CyclesPerElem: 2*cycErf + 2*cycExp + cycLn + cycSqrt},
}

// Costs returns the merged cost table covering every annotation family the
// workloads use, for callers (sabench -experiment bench, the live counters
// path) that lower arbitrary planner output without knowing which library
// produced it. Calls absent from the table fall back to planlower's nominal
// per-element cost; cache traffic — the benchmark's main signal — depends on
// the access pattern, which the plan itself carries.
func Costs() map[string]planlower.CallCost {
	out := make(map[string]planlower.CallCost, len(vmathCosts)+len(framesaCosts))
	for k, v := range vmathCosts {
		out[k] = v
	}
	for k, v := range framesaCosts {
		out[k] = v
	}
	return out
}

// Lowering returns the planlower options for lowering a spec's real plan IR
// into the machine model: the merged cost table plus the per-library element
// width the plan-to-model consistency tests pin (8-byte float64 elements for
// the vector libraries, 24-byte rows for Pandas frames). The ImageMagick
// integration no longer sets SplitCopies: its splitter produces aliasing
// row-band views (CapInPlace|CapView), so split and merge move no pixels.
func Lowering(spec Spec) planlower.Options {
	o := planlower.Options{Name: spec.Name, ElemBytes: 8, Costs: Costs()}
	if spec.Library == "Pandas" {
		o.ElemBytes = 24
	}
	return o
}

// framesaCosts covers the framesa (Pandas-style) annotations used by the
// data cleaning workload.
var framesaCosts = map[string]planlower.CallCost{
	"sr.str.slice":  {Name: "str.slice", CyclesPerElem: 4 * cycMul},
	"sr.isin":       {Name: "isin", CyclesPerElem: 3 * cycMul},
	"sr.eq":         {Name: "eq", CyclesPerElem: 2 * cycMul},
	"sr.or":         {Name: "or", CyclesPerElem: cycAdd},
	"sr.maskToNull": {Name: "maskToNull", CyclesPerElem: 2 * cycMul},
	"sr.str.len.gt": {Name: "len.gt", CyclesPerElem: cycMul},
	"sr.isnull":     {Name: "isnull", CyclesPerElem: cycMul},
	"sr.count":      {Name: "count", CyclesPerElem: cycAdd},
}
