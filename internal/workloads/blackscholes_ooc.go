package workloads

import (
	"fmt"
	"math"

	"mozart/internal/annotations/vmathsa"
	"mozart/internal/core"
)

// Black Scholes over a chunked option generator (the out-of-core workload).
// The input is not an in-memory array but a lazy generator whose splitter
// synthesizes option chunks on demand from a pure per-index hash, so the
// working set of a window is bounded by the window size no matter how large
// the nominal input is. Under a Governor budget with Options.OutOfCore set,
// the streaming executor drives the generator in admission-sized windows and
// spills merged output partials, so a run whose nominal working set is far
// past the budget still completes (§PR7 pressure ladder). The Base variant
// streams the same chunks sequentially, so checksums match bit for bit.

// oocOptions is the lazy option-grid generator: N options derived from Seed,
// starting at absolute index Off (sub-generators returned by SplitAt carry a
// nonzero Off so window-local splits still address the global index space).
type oocOptions struct {
	N    int64
	Seed uint64
	Off  int64
}

// oocChunk is one materialized chunk of the option grid.
type oocChunk struct {
	price, strike, tt []float64
}

// oocMix is the splitmix64 finalizer over a lane-salted index: a pure hash,
// so any chunk of the grid can be synthesized independently and in parallel
// with bit-identical values.
func oocMix(seed uint64, i int64, lane uint64) uint64 {
	x := seed + lane*0xD1B54A32D192ED03 + uint64(i)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// oocVal maps the hash to a uniform value in [lo, hi).
func oocVal(seed uint64, i int64, lane uint64, lo, hi float64) float64 {
	u := float64(oocMix(seed, i, lane)>>11) / (1 << 53)
	return lo + u*(hi-lo)
}

// oocFill materializes grid values for absolute indices [base, base+n) —
// the same value ranges as data.OptionsData (prices and strikes in
// [10, 200), maturities in [0.1, 2)).
func oocFill(g *oocOptions, base, n int64) *oocChunk {
	c := &oocChunk{
		price:  make([]float64, n),
		strike: make([]float64, n),
		tt:     make([]float64, n),
	}
	for i := int64(0); i < n; i++ {
		idx := g.Off + base + i
		c.price[i] = oocVal(g.Seed, idx, 1, 10, 200)
		c.strike[i] = oocVal(g.Seed, idx, 2, 10, 200)
		c.tt[i] = oocVal(g.Seed, idx, 3, 0.1, 2)
	}
	return c
}

// oocSplitter splits the generator by materializing chunks. It is not
// in-place (each piece is fresh storage), and it implements core.SplitterAt
// so the streaming executor can take window views without materializing the
// whole grid.
type oocSplitter struct{}

// Info reports the nominal size: three float64 streams per option.
func (oocSplitter) Info(v any, t core.SplitType) (core.RuntimeInfo, error) {
	g, ok := v.(*oocOptions)
	if !ok {
		return core.RuntimeInfo{}, fmt.Errorf("workloads: OocSplit over %T", v)
	}
	return core.RuntimeInfo{Elems: g.N, ElemBytes: 24}, nil
}

// Split materializes the chunk [start, end).
func (oocSplitter) Split(v any, t core.SplitType, start, end int64) (any, error) {
	g, ok := v.(*oocOptions)
	if !ok {
		return nil, fmt.Errorf("workloads: OocSplit over %T", v)
	}
	if end > g.N {
		return nil, fmt.Errorf("workloads: ooc split [%d,%d) beyond %d options", start, end, g.N)
	}
	return oocFill(g, start, end-start), nil
}

// Merge is never valid: the generator is a pure input.
func (oocSplitter) Merge(pieces []any, t core.SplitType) (any, error) {
	return nil, fmt.Errorf("workloads: ooc generator pieces cannot be merged")
}

// SplitAt returns the sub-generator for [start, end) — a window view that
// synthesizes the same absolute indices, at zero materialization cost.
func (oocSplitter) SplitAt(v any, t core.SplitType, start, end int64) (any, error) {
	g, ok := v.(*oocOptions)
	if !ok {
		return nil, fmt.Errorf("workloads: OocSplit over %T", v)
	}
	if end > g.N {
		return nil, fmt.Errorf("workloads: ooc window [%d,%d) beyond %d options", start, end, g.N)
	}
	return &oocOptions{N: end - start, Seed: g.Seed, Off: g.Off + start}, nil
}

// oocSplit is the OocSplit(opts) constructor.
func oocSplit() core.TypeExpr {
	return core.Concrete("OocSplit", oocSplitter{}, func(args []any) (core.SplitType, error) {
		g, ok := args[0].(*oocOptions)
		if !ok {
			return core.SplitType{}, fmt.Errorf("workloads: OocSplit ctor: arg 0 is %T, want *oocOptions", args[0])
		}
		return core.NewSplitType("OocSplit", g.N), nil
	})
}

// bsScalar prices one option: call + put + vega + gamma, the same quantities
// bsChecksum sums for the array variants. Base and Mozart share this kernel,
// so cross-variant checksums are exactly equal.
func bsScalar(s, k, t float64) float64 {
	vst := bsVol * math.Sqrt(t)
	d1 := (math.Log(s/k) + (bsRiskFree+bsVol*bsVol/2)*t) / vst
	d2 := d1 - vst
	nd1 := 0.5 * (1 + math.Erf(d1/math.Sqrt2))
	nd2 := 0.5 * (1 + math.Erf(d2/math.Sqrt2))
	e := k * math.Exp(-bsRiskFree*t)
	call := math.Max(s*nd1-e*nd2, 0)
	put := math.Max(e*(1-nd2)-s*(1-nd1), 0)
	pdf := invSqrt2Pi * math.Exp(-0.5*d1*d1)
	vega := s * pdf * vst
	gamma := pdf / vst / s
	return call + put + vega + gamma
}

// bsChunkFn/bsChunkSA: the annotated call. One splittable generator argument
// in, one ArraySplit result out — concatenating merge, and ArraySplitter
// implements core.PieceCodec, so out-of-core runs spill the per-window
// partials instead of holding them.
var bsChunkFn core.Func = func(args []any) (any, error) {
	c, ok := args[0].(*oocChunk)
	if !ok {
		return nil, fmt.Errorf("workloads: bsChunk over %T", args[0])
	}
	out := make([]float64, len(c.price))
	for i := range out {
		out[i] = bsScalar(c.price[i], c.strike[i], c.tt[i])
	}
	return out, nil
}

var bsChunkSA = &core.Annotation{
	FuncName: "bsChunk",
	Params:   []core.Param{{Name: "opts", Type: oocSplit()}},
	Ret: func() *core.TypeExpr {
		t := core.Concrete("ArraySplit", vmathsa.ArraySplitter{},
			core.FixedCtor(core.NewSplitType("ArraySplit")))
		return &t
	}(),
}

// oocBaseChunk is the Base variant's streaming chunk size.
const oocBaseChunk = 1 << 16

func runBSOoc(v Variant, cfg Config) (float64, error) {
	gen := &oocOptions{N: int64(cfg.Scale), Seed: 0x0C0FFEE5EED}
	switch v {
	case Base:
		// The library-only answer to a too-large grid: hand-rolled chunked
		// streaming, single-threaded.
		sum := 0.0
		for lo := int64(0); lo < gen.N; lo += oocBaseChunk {
			hi := min(lo+oocBaseChunk, gen.N)
			c := oocFill(gen, lo, hi-lo)
			for i := range c.price {
				sum += bsScalar(c.price[i], c.strike[i], c.tt[i])
			}
		}
		return sum, nil
	case Mozart, MozartNoPipe:
		s := cfg.session()
		if v == MozartNoPipe {
			s = cfg.sessionNoPipe()
		}
		fut := s.Call(bsChunkFn, bsChunkSA, gen)
		if err := s.EvaluateContext(cfg.ctx()); err != nil {
			return 0, err
		}
		out, err := fut.Get()
		if err != nil {
			return 0, err
		}
		return sumOf(out.([]float64)), nil
	}
	return 0, errUnsupported(v)
}

func init() {
	register(Spec{
		Name:    "blackscholes-ooc",
		Library: "MKL",
		Description: "Black Scholes over a chunked option generator sized past " +
			"the memory budget (out-of-core streaming)",
		Operators:    1,
		Variants:     []Variant{Base, Mozart, MozartNoPipe},
		Run:          runBSOoc,
		DefaultScale: 1 << 20,
	})
}
