package workloads

import (
	"math"

	"mozart/internal/annotations/tensorsa"
	"mozart/internal/annotations/vmathsa"
	"mozart/internal/data"
	"mozart/internal/memsim"
	"mozart/internal/tensor"
	"mozart/internal/vmath"
	"mozart/internal/weldsim"
)

// Haversine distance (Figure 4b/4k): great-circle distance from a vector
// of GPS coordinates to a fixed point, 18 vector calls using the
// atan2 formulation: a = sin^2(dlat/2) + cos(lat1) cos(lat2) sin^2(dlon/2),
// d = 2 R atan2(sqrt(a), sqrt(1-a)).

const (
	havLat2   = 0.70 // radians: the fixed destination
	havLon2   = -1.29
	havRadius = 6371.0
)

const havOperators = 18

func runHavVmath(v Variant, cfg Config) (float64, error) {
	lat, lon := data.GPSData(cfg.Scale, 21)
	n := cfg.Scale
	switch v {
	case Base:
		old := vmath.NumThreads()
		vmath.SetNumThreads(cfg.Threads)
		defer vmath.SetNumThreads(old)
		alloc := func() []float64 { return make([]float64, n) }
		dlat, dlon, s1, s2, cl, a, b, d := alloc(), alloc(), alloc(), alloc(), alloc(), alloc(), alloc(), alloc()
		vmath.SubC(n, lat, havLat2, dlat)        // 1
		vmath.SubC(n, lon, havLon2, dlon)        // 2
		vmath.MulC(n, dlat, 0.5, dlat)           // 3
		vmath.MulC(n, dlon, 0.5, dlon)           // 4
		vmath.Sin(n, dlat, s1)                   // 5
		vmath.Sin(n, dlon, s2)                   // 6
		vmath.Mul(n, s1, s1, s1)                 // 7
		vmath.Mul(n, s2, s2, s2)                 // 8
		vmath.Cos(n, lat, cl)                    // 9
		vmath.MulC(n, cl, math.Cos(havLat2), cl) // 10
		vmath.Mul(n, cl, s2, s2)                 // 11
		vmath.Add(n, s1, s2, a)                  // 12
		vmath.Sqrt(n, a, b)                      // 13
		vmath.SubCRev(n, a, 1, a)                // 14
		vmath.Sqrt(n, a, a)                      // 15
		vmath.Atan2(n, b, a, d)                  // 16
		vmath.MulC(n, d, 2, d)                   // 17
		vmath.MulC(n, d, havRadius, d)           // 18
		return sumOf(d), nil
	case Mozart, MozartNoPipe:
		s := cfg.session()
		if v == MozartNoPipe {
			s = cfg.sessionNoPipe()
		}
		alloc := func() []float64 { return make([]float64, n) }
		dlat, dlon, s1, s2, cl, a, b, d := alloc(), alloc(), alloc(), alloc(), alloc(), alloc(), alloc(), alloc()
		vmathsa.SubC(s, n, lat, havLat2, dlat)
		vmathsa.SubC(s, n, lon, havLon2, dlon)
		vmathsa.MulC(s, n, dlat, 0.5, dlat)
		vmathsa.MulC(s, n, dlon, 0.5, dlon)
		vmathsa.Sin(s, n, dlat, s1)
		vmathsa.Sin(s, n, dlon, s2)
		vmathsa.Mul(s, n, s1, s1, s1)
		vmathsa.Mul(s, n, s2, s2, s2)
		vmathsa.Cos(s, n, lat, cl)
		vmathsa.MulC(s, n, cl, math.Cos(havLat2), cl)
		vmathsa.Mul(s, n, cl, s2, s2)
		vmathsa.Add(s, n, s1, s2, a)
		vmathsa.Sqrt(s, n, a, b)
		vmathsa.SubCRev(s, n, a, 1, a)
		vmathsa.Sqrt(s, n, a, a)
		vmathsa.Atan2(s, n, b, a, d)
		vmathsa.MulC(s, n, d, 2, d)
		vmathsa.MulC(s, n, d, havRadius, d)
		if err := s.EvaluateContext(cfg.ctx()); err != nil {
			return 0, err
		}
		return sumOf(d), nil
	case Weld:
		return sumOf(havWeld(lat, lon, cfg.Threads)), nil
	}
	return 0, errUnsupported(v)
}

func havWeld(lat, lon []float64, threads int) []float64 {
	la, lo := weldsim.Source(lat), weldsim.Source(lon)
	s1 := la.SubS(havLat2).MulS(0.5).Sin().Square()
	s2 := lo.SubS(havLon2).MulS(0.5).Sin().Square()
	a := s1.Add(la.Cos().MulS(math.Cos(havLat2)).Mul(s2))
	d := a.Sqrt().Atan2(a.RSubS(1).Sqrt()).MulS(2 * havRadius)
	return weldsim.Eval(threads, d)[0]
}

func runHavTensor(v Variant, cfg Config) (float64, error) {
	la, lo := data.GPSData(cfg.Scale, 21)
	lat := tensor.FromSlice(la, len(la))
	lon := tensor.FromSlice(lo, len(lo))
	switch v {
	case Base:
		s1 := tensor.Square(tensor.Sin(tensor.MulS(tensor.SubS(lat, havLat2), 0.5)))
		s2 := tensor.Square(tensor.Sin(tensor.MulS(tensor.SubS(lon, havLon2), 0.5)))
		a := tensor.Add(s1, tensor.Mul(tensor.MulS(tensor.Cos(lat), math.Cos(havLat2)), s2))
		d := tensor.MulS(tensor.Atan2(tensor.Sqrt(a), tensor.Sqrt(tensor.RSubS(a, 1))), 2*havRadius)
		return tensor.Sum(d), nil
	case Mozart, MozartNoPipe:
		s := cfg.session()
		if v == MozartNoPipe {
			s = cfg.sessionNoPipe()
		}
		s1 := tensorsa.Square(s, tensorsa.Sin(s, tensorsa.MulS(s, tensorsa.SubS(s, lat, havLat2), 0.5)))
		s2 := tensorsa.Square(s, tensorsa.Sin(s, tensorsa.MulS(s, tensorsa.SubS(s, lon, havLon2), 0.5)))
		a := tensorsa.Add(s, s1, tensorsa.Mul(s, tensorsa.MulS(s, tensorsa.Cos(s, lat), math.Cos(havLat2)), s2))
		d := tensorsa.MulS(s, tensorsa.Atan2(s, tensorsa.Sqrt(s, a), tensorsa.Sqrt(s, tensorsa.RSubS(s, a, 1))), 2*havRadius)
		total := tensorsa.Sum(s, d)
		return total.Float64()
	case Weld:
		return sumOf(havWeld(la, lo, cfg.Threads)), nil
	}
	return 0, errUnsupported(v)
}

func havModelOps() []opSpec {
	const (
		lat, lon               = 0, 1
		dlat, dlon, s1, s2, cl = 2, 3, 4, 5, 6
		a, b, d                = 7, 8, 9
	)
	cycSin := cycErf // trig intensity comparable to erf
	return []opSpec{
		op("subc", cycAdd, []int{lat}, []int{dlat}),
		op("subc", cycAdd, []int{lon}, []int{dlon}),
		op("mulc", cycMul, []int{dlat}, []int{dlat}),
		op("mulc", cycMul, []int{dlon}, []int{dlon}),
		op("sin", cycSin, []int{dlat}, []int{s1}),
		op("sin", cycSin, []int{dlon}, []int{s2}),
		op("mul", cycMul, []int{s1, s1}, []int{s1}),
		op("mul", cycMul, []int{s2, s2}, []int{s2}),
		op("cos", cycSin, []int{lat}, []int{cl}),
		op("mulc", cycMul, []int{cl}, []int{cl}),
		op("mul", cycMul, []int{cl, s2}, []int{s2}),
		op("add", cycAdd, []int{s1, s2}, []int{a}),
		op("sqrt", cycSqrt, []int{a}, []int{b}),
		op("subcrev", cycAdd, []int{a}, []int{a}),
		op("sqrt", cycSqrt, []int{a}, []int{a}),
		op("atan2", cycExp, []int{b, a}, []int{d}),
		op("mulc", cycMul, []int{d}, []int{d}),
		op("mulc", cycMul, []int{d}, []int{d}),
	}
}

func init() {
	register(Spec{
		Name:         "haversine-numpy",
		Library:      "NumPy",
		Description:  "Haversine distance from GPS coordinates to a fixed point (Fig. 4b)",
		Operators:    havOperators,
		Variants:     []Variant{Base, Mozart, MozartNoPipe, Weld},
		Run:          runHavTensor,
		DefaultScale: 1 << 22,
		Model: func(v Variant, cfg Config) *memsim.Workload {
			return chainModelAlloc("haversine-numpy", havModelOps(), int64(cfg.Scale), 8, v, cfg.Batch)
		},
	})
	register(Spec{
		Name:         "haversine-mkl",
		Library:      "MKL",
		Description:  "Haversine distance over MKL-style vector math (Fig. 4k)",
		Operators:    havOperators,
		BaseParallel: true,
		Variants:     []Variant{Base, Mozart, MozartNoPipe, Weld},
		Run:          runHavVmath,
		DefaultScale: 1 << 22,
		Model: func(v Variant, cfg Config) *memsim.Workload {
			return chainModel("haversine-mkl", havModelOps(), int64(cfg.Scale), 8, v, cfg.Batch)
		},
	})
}
