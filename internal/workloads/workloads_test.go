package workloads

import (
	"math"
	"testing"
)

// testScale returns a small but non-trivial scale per workload for tests.
func testScale(name string) int {
	switch name {
	case "nbody-numpy", "nbody-mkl":
		return 96
	case "shallowwater-numpy", "shallowwater-mkl":
		return 64
	case "nashville-imagemagick", "gotham-imagemagick":
		return 48
	case "speechtag-spacy":
		return 120
	default:
		return 5000
	}
}

// TestVariantsAgree is the end-to-end correctness gate: for every workload,
// every variant computes the same result as the unmodified library.
func TestVariantsAgree(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			cfg := Config{Scale: testScale(spec.Name), Threads: 3, Batch: 257}
			base, err := spec.Run(Base, cfg)
			if err != nil {
				t.Fatalf("base: %v", err)
			}
			if math.IsNaN(base) || base == 0 {
				t.Fatalf("suspicious base checksum %v", base)
			}
			for _, v := range spec.Variants {
				if v == Base {
					continue
				}
				got, err := spec.Run(v, cfg)
				if err != nil {
					t.Fatalf("%s: %v", v, err)
				}
				if rel := math.Abs(got-base) / (1 + math.Abs(base)); rel > 1e-6 {
					t.Errorf("%s checksum %v != base %v (rel %g)", v, got, base, rel)
				}
			}
		})
	}
}

// TestVariantsAgreeAcrossThreads: thread count must not change results.
func TestVariantsAgreeAcrossThreads(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			cfg1 := Config{Scale: testScale(spec.Name) / 2, Threads: 1}
			cfg8 := cfg1
			cfg8.Threads = 8
			a, err := spec.Run(Mozart, cfg1)
			if err != nil {
				t.Fatal(err)
			}
			b, err := spec.Run(Mozart, cfg8)
			if err != nil {
				t.Fatal(err)
			}
			if rel := math.Abs(a-b) / (1 + math.Abs(a)); rel > 1e-9 {
				t.Errorf("threads=1 vs 8: %v vs %v", a, b)
			}
		})
	}
}

// TestRegistryShape: the paper's 15 workloads covering five libraries, plus
// the out-of-core streaming workload (counted under MKL with the vmath
// family it extends).
func TestRegistryShape(t *testing.T) {
	specs := All()
	if len(specs) != 16 {
		t.Fatalf("want 16 workloads (Table 2 + out-of-core), got %d", len(specs))
	}
	libs := map[string]int{}
	for _, s := range specs {
		libs[s.Library]++
		if s.Name == "" || s.Description == "" || s.Operators <= 0 || s.Run == nil {
			t.Errorf("%s: incomplete spec", s.Name)
		}
		if !s.HasVariant(Base) || !s.HasVariant(Mozart) {
			t.Errorf("%s: missing base/mozart variants", s.Name)
		}
		if s.DefaultScale <= 0 {
			t.Errorf("%s: missing default scale", s.Name)
		}
	}
	want := map[string]int{"NumPy": 4, "MKL": 5, "Pandas": 4, "spaCy": 1, "ImageMagick": 2}
	for lib, n := range want {
		if libs[lib] != n {
			t.Errorf("library %s: %d workloads, want %d", lib, libs[lib], n)
		}
	}
	if _, err := ByName("blackscholes-mkl"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName should fail for unknown workloads")
	}
}

// TestImageStepCounts: the filter pipelines have the paper's call counts.
func TestImageStepCounts(t *testing.T) {
	if n := len(nashvilleSteps()); n != 31 {
		t.Errorf("nashville has %d calls, want 31", n)
	}
	if n := len(gothamSteps()); n != 15 {
		t.Errorf("gotham has %d calls, want 15", n)
	}
}

// TestModelsProduceSaneShapes: every modeled workload shows the headline
// relationships in simulation: Mozart(16) beats Base(16), and disabling
// pipelining erases the win on pipelined chains.
func TestModelsProduceSaneShapes(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		if spec.Model == nil {
			continue
		}
		t.Run(spec.Name, func(t *testing.T) {
			cfg := Config{Scale: spec.DefaultScale, Threads: 16}
			mBase := spec.Model(Base, cfg)
			mMoz := spec.Model(Mozart, cfg)
			if mBase == nil || mMoz == nil {
				t.Skip("variant not modeled")
			}
			rb := runModel(mBase, 16)
			rm := runModel(mMoz, 16)
			if rm.Seconds > rb.Seconds*1.05 {
				t.Errorf("modeled Mozart (%.3fs) should not lose to base (%.3fs)", rm.Seconds, rb.Seconds)
			}
		})
	}
}

// TestUnsupportedVariant errors cleanly.
func TestUnsupportedVariant(t *testing.T) {
	spec, _ := ByName("speechtag-spacy")
	if _, err := spec.Run(Weld, Config{Scale: 10, Threads: 1}); err == nil {
		t.Fatal("weld variant should be unsupported for spaCy")
	}
	if !spec.HasVariant(Mozart) || spec.HasVariant(Weld) {
		t.Fatal("HasVariant")
	}
}
