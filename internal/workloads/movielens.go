package workloads

import (
	"math"

	"mozart/internal/annotations/framesa"
	"mozart/internal/data"
	"mozart/internal/frame"
	"mozart/internal/memsim"
	"mozart/internal/weldsim"
)

// MovieLens (Figure 4h): join the ratings fact table with the users and
// movies dimensions, group mean ratings by (title, gender), and find the
// most divisive movies (largest |mean_F - mean_M|). Mozart pipelines the
// two joins (probe side split, indexes broadcast) and parallelizes the
// grouped aggregation.

const mlOperators = 7

func mlScaleDims(scale int) (users, movies int) {
	users = scale / 100
	if users < 4 {
		users = 4
	}
	movies = scale / 200
	if movies < 4 {
		movies = 4
	}
	return users, movies
}

// mlDivisiveness folds the grouped means into a checksum: sum over movies
// of |mean_F - mean_M|.
func mlDivisiveness(g *frame.DataFrame) float64 {
	means := map[string][2]float64{} // title -> [F, M]
	seen := map[string][2]bool{}
	for r := 0; r < g.NRows(); r++ {
		title := g.Col("title").S[r]
		m := means[title]
		sm := seen[title]
		if g.Col("gender").S[r] == "F" {
			m[0], sm[0] = g.Col("avg").F[r], true
		} else {
			m[1], sm[1] = g.Col("avg").F[r], true
		}
		means[title], seen[title] = m, sm
	}
	sum := 0.0
	for t, m := range means {
		if seen[t][0] && seen[t][1] {
			sum += math.Abs(m[0] - m[1])
		}
	}
	return sum
}

func runMovieLens(v Variant, cfg Config) (float64, error) {
	nu, nm := mlScaleDims(cfg.Scale)
	ratings, users, movies := data.MovieLens(cfg.Scale, nu, nm, 81)
	specs := []frame.AggSpec{{Col: "rating", Kind: frame.AggMean, As: "avg"}}
	keys := []string{"title", "gender"}
	switch v {
	case Base:
		uix := frame.NewIndex(users, "userId")                       // 1
		mix := frame.NewIndex(movies, "movieId")                     // 2
		j1 := frame.JoinIndexed(ratings, uix, "userId", frame.Inner) // 3
		j2 := frame.JoinIndexed(j1, mix, "movieId", frame.Inner)     // 4
		g := frame.GroupByAgg(j2, keys, specs)                       // 5
		return mlDivisiveness(g.ToDataFrame()), nil                  // 6, 7
	case Mozart, MozartNoPipe:
		s := cfg.session()
		if v == MozartNoPipe {
			s = cfg.sessionNoPipe()
		}
		uix := frame.NewIndex(users, "userId")
		mix := frame.NewIndex(movies, "movieId")
		j1 := framesa.JoinIndexed(s, ratings, uix, "userId", frame.Inner)
		j2 := framesa.JoinIndexed(s, j1, mix, "movieId", frame.Inner)
		g := framesa.GroupByAgg(s, j2, keys, specs)
		out := framesa.ToDataFrame(s, g)
		gv, err := out.Get()
		if err != nil {
			return 0, err
		}
		return mlDivisiveness(gv.(*frame.DataFrame)), nil
	case Weld:
		// Weld-style: dictionary joins gathered into vectors, then a
		// dictmerger keyed by title\x00gender.
		ub := weldsim.BuildIndexI64(users.Col("userId").I)
		mb := weldsim.BuildIndexI64(movies.Col("movieId").I)
		pIdx, uIdx := weldsim.HashJoinGather(ratings.Col("userId").I, ub, cfg.Threads)
		keysv := make([]string, 0, len(pIdx))
		vals := make([]float64, 0, len(pIdx))
		gender := users.Col("gender").S
		title := movies.Col("title").S
		mid := ratings.Col("movieId").I
		rat := ratings.Col("rating").F
		for k, p := range pIdx {
			if m, ok := mb[mid[p]]; ok {
				keysv = append(keysv, title[m]+"\x00"+gender[uIdx[k]])
				vals = append(vals, rat[p])
			}
		}
		g := weldsim.GroupSumByKey(keysv, vals, cfg.Threads)
		means := map[string][2]float64{}
		seen := map[string][2]bool{}
		for _, k := range g.Keys() {
			sep := -1
			for i := 0; i < len(k); i++ {
				if k[i] == 0 {
					sep = i
					break
				}
			}
			t, gen := k[:sep], k[sep+1:]
			m, sm := means[t], seen[t]
			if gen == "F" {
				m[0], sm[0] = g.Mean(k), true
			} else {
				m[1], sm[1] = g.Mean(k), true
			}
			means[t], seen[t] = m, sm
		}
		sum := 0.0
		for t, m := range means {
			if seen[t][0] && seen[t][1] {
				sum += math.Abs(m[0] - m[1])
			}
		}
		return sum, nil
	}
	return 0, errUnsupported(v)
}

func mlModel(v Variant, cfg Config) *memsim.Workload {
	joinCyc, groupCyc := 10.0, 12.0
	ops := []opSpec{
		{name: "join-users", cycles: joinCyc, weldC: joinCyc, reads: []int{0}, writes: []int{1}},
		{name: "join-movies", cycles: joinCyc, weldC: joinCyc, reads: []int{1}, writes: []int{2}},
		{name: "group", cycles: groupCyc, weldC: groupCyc * 1.2, reads: []int{2}, writes: nil},
	}
	// Join output rows carry several columns: ~48 bytes per element.
	return chainModelAlloc("movielens", ops, int64(cfg.Scale), 48, v, cfg.Batch)
}

func init() {
	register(Spec{
		Name:         "movielens-pandas",
		Library:      "Pandas",
		Description:  "two joins plus grouped mean ratings by (title, gender) (Fig. 4h)",
		Operators:    mlOperators,
		Variants:     []Variant{Base, Mozart, MozartNoPipe, Weld},
		Run:          runMovieLens,
		DefaultScale: 1 << 18,
		Model:        mlModel,
	})
}
