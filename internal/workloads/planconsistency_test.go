package workloads

import (
	"fmt"
	"sort"
	"testing"

	"mozart/internal/memsim"
	"mozart/internal/plan"
	"mozart/internal/planlower"
)

// The plan-to-model consistency tests: run a workload's Mozart variant for
// real, capture the planner's plan IR, lower it through internal/planlower
// with the shared cost tables, and assert the result is structurally
// identical to the hand-written memsim model — stage count, op order and
// costs, reads/writes/scratch shape, batch size. This pins the hand models
// (which regenerate the paper's figures) to actual planner output.

// canonOp is an op with arrays renumbered canonically for comparison.
type canonOp struct {
	Name   string
	Cycles float64
	Reads  []int
	Writes []int
}

// canonStage renumbers a stage's arrays densely by first appearance in op
// order (reads before writes within an op), so two stages built with
// different array numbering compare equal iff their dataflow shapes match.
func canonStage(st memsim.Stage) (ops []canonOp, scratch []int, batch, elemBytes int64) {
	remap := map[int]int{}
	ren := func(ids []int) []int {
		if ids == nil {
			return nil
		}
		out := make([]int, len(ids))
		for i, id := range ids {
			c, ok := remap[id]
			if !ok {
				c = len(remap)
				remap[id] = c
			}
			out[i] = c
		}
		return out
	}
	for _, o := range st.Ops {
		ops = append(ops, canonOp{Name: o.Name, Cycles: o.CyclesPerElem,
			Reads: ren(o.Reads), Writes: ren(o.Writes)})
	}
	for _, a := range st.Scratch {
		if c, ok := remap[a]; ok {
			scratch = append(scratch, c)
		} else {
			scratch = append(scratch, -1) // scratch array no op touches
		}
	}
	sort.Ints(scratch)
	return ops, scratch, st.BatchElems, st.ElemBytes
}

func fmtOps(ops []canonOp) string {
	s := ""
	for i, o := range ops {
		s += fmt.Sprintf("  %2d %-12s c=%.2f r%v w%v\n", i, o.Name, o.Cycles, o.Reads, o.Writes)
	}
	return s
}

// capturePlan runs the workload's Mozart variant and returns the captured
// plan IRs, one per evaluation.
func capturePlan(t *testing.T, spec Spec, cfg Config) []*plan.Plan {
	t.Helper()
	var plans []*plan.Plan
	cfg.OnPlan = func(p *plan.Plan) { plans = append(plans, p) }
	if _, err := spec.Run(Mozart, cfg); err != nil {
		t.Fatalf("%s mozart run: %v", spec.Name, err)
	}
	if len(plans) == 0 {
		t.Fatalf("%s: no plan captured", spec.Name)
	}
	return plans
}

// TestLoweredPlanMatchesHandModel is the §5.2 consistency check for the
// single-stage chain workloads: the real planner's lowered plan and the
// hand model agree exactly.
func TestLoweredPlanMatchesHandModel(t *testing.T) {
	cases := []struct {
		workload  string
		elemBytes int64
		costs     map[string]planlower.CallCost
	}{
		{"blackscholes-mkl", 8, vmathCosts},
		{"haversine-mkl", 8, vmathCosts},
		{"datacleaning-pandas", 24, framesaCosts},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.workload, func(t *testing.T) {
			spec, err := ByName(tc.workload)
			if err != nil {
				t.Fatal(err)
			}
			cfg := Config{Scale: 1 << 15, Threads: 4}
			plans := capturePlan(t, spec, cfg)
			p := plans[0]

			lowered := planlower.Lower(p, planlower.Options{
				Name:      tc.workload,
				Elems:     int64(cfg.Scale),
				ElemBytes: tc.elemBytes,
				Costs:     tc.costs,
			})
			hand := spec.Model(Mozart, cfg)

			if len(lowered.Stages) != len(hand.Stages) {
				t.Fatalf("stage count: lowered %d, hand model %d\nplan: %s",
					len(lowered.Stages), len(hand.Stages), p.Describe())
			}
			for si := range hand.Stages {
				lo, ls, lb, lw := canonStage(lowered.Stages[si])
				ho, hs, hb, hw := canonStage(hand.Stages[si])
				if lb != hb {
					t.Errorf("stage %d batch: lowered %d, hand model %d", si, lb, hb)
				}
				if lw != hw {
					t.Errorf("stage %d elemBytes: lowered %d, hand model %d", si, lw, hw)
				}
				if len(lo) != len(ho) {
					t.Fatalf("stage %d op count: lowered %d, hand %d\nlowered:\n%shand:\n%s",
						si, len(lo), len(ho), fmtOps(lo), fmtOps(ho))
				}
				for oi := range ho {
					if fmt.Sprint(lo[oi]) != fmt.Sprint(ho[oi]) {
						t.Errorf("stage %d op %d:\n  lowered %+v\n  hand    %+v", si, oi, lo[oi], ho[oi])
					}
				}
				if fmt.Sprint(ls) != fmt.Sprint(hs) {
					t.Errorf("stage %d scratch: lowered %v, hand model %v", si, ls, hs)
				}
			}
		})
	}
}

// TestPlanBatchMatchesExecutor: the batch the plan IR predicts for the
// entry stage equals what Options.batchSize-driven execution uses — i.e.
// the stage-begin event's BatchElems. Uses the working-set model from the
// IR itself, closing the loop between Plan(), the executor, and the
// models.
func TestPlanWorkingSetMatchesHandLiveArrays(t *testing.T) {
	// datacleaning: 1 input of 24B + 7 live produced values = the hand
	// model's 8 live arrays x 24B.
	spec, err := ByName("datacleaning-pandas")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Scale: 1 << 15, Threads: 4}
	p := capturePlan(t, spec, cfg)[0]
	if len(p.Stages) != 1 {
		t.Fatalf("datacleaning should plan one stage, got %s", p.Describe())
	}
	if got, want := p.Stages[0].WorkingSetBytes(), int64(8*24); got != want {
		t.Errorf("working set = %dB, want %dB (8 live arrays x 24B)", got, want)
	}
	if got, want := p.Batch.Elems(p.Stages[0].WorkingSetBytes(), int64(cfg.Scale)), defaultBatch(8, 24); got != want {
		t.Errorf("plan batch = %d, hand defaultBatch = %d", got, want)
	}
}
