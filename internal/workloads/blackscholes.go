package workloads

import (
	"math"

	"mozart/internal/annotations/tensorsa"
	"mozart/internal/annotations/vmathsa"
	"mozart/internal/core"
	"mozart/internal/data"
	"mozart/internal/memsim"
	"mozart/internal/tensor"
	"mozart/internal/vmath"
	"mozart/internal/weldsim"
)

// Black Scholes option pricing (§2.1, Figure 1, Figure 4a/4j): 32 vector
// math calls computing call/put prices plus vega and gamma over option
// grids. The MKL variant uses in-place vmath buffers; the NumPy variant
// uses out-of-place tensor ops.

const (
	bsRiskFree = 0.02
	bsVol      = 0.3
	invSqrt2Pi = 0.3989422804014327
)

// bsVmath runs the 32-call vmath sequence through `call`, which either
// invokes the library directly (Base) or registers annotated calls
// (Mozart). It returns the four result vectors.
type vmathBackend struct {
	unary  func(name string, n int, a, out []float64)
	binary func(name string, n int, a, b, out []float64)
	scalar func(name string, n int, a []float64, c float64, out []float64)
	fill   func(n int, c float64, out []float64)
}

func baseVmathBackend() vmathBackend {
	us := map[string]func(int, []float64, []float64){
		"ln": vmath.Ln, "sqrt": vmath.Sqrt, "cdfnorm": vmath.CdfNorm,
		"exp": vmath.Exp, "sqr": vmath.Sqr,
	}
	bs := map[string]func(int, []float64, []float64, []float64){
		"div": vmath.Div, "add": vmath.Add, "sub": vmath.Sub,
		"mul": vmath.Mul, "fmax": vmath.MaxV,
	}
	ss := map[string]func(int, []float64, float64, []float64){
		"mulc": vmath.MulC, "subcrev": vmath.SubCRev,
	}
	return vmathBackend{
		unary:  func(name string, n int, a, out []float64) { us[name](n, a, out) },
		binary: func(name string, n int, a, b, out []float64) { bs[name](n, a, b, out) },
		scalar: func(name string, n int, a []float64, c float64, out []float64) { ss[name](n, a, c, out) },
		fill:   vmath.Fill,
	}
}

func mozartVmathBackend(s *core.Session) vmathBackend {
	us := map[string]func(*core.Session, int, any, any){
		"ln": vmathsa.Ln, "sqrt": vmathsa.Sqrt, "cdfnorm": vmathsa.CdfNorm,
		"exp": vmathsa.Exp, "sqr": vmathsa.Sqr,
	}
	bs := map[string]func(*core.Session, int, any, any, any){
		"div": vmathsa.Div, "add": vmathsa.Add, "sub": vmathsa.Sub,
		"mul": vmathsa.Mul, "fmax": vmathsa.MaxV,
	}
	ss := map[string]func(*core.Session, int, any, float64, any){
		"mulc": vmathsa.MulC, "subcrev": vmathsa.SubCRev,
	}
	return vmathBackend{
		unary:  func(name string, n int, a, out []float64) { us[name](s, n, a, out) },
		binary: func(name string, n int, a, b, out []float64) { bs[name](s, n, a, b, out) },
		scalar: func(name string, n int, a []float64, c float64, out []float64) { ss[name](s, n, a, c, out) },
		fill:   func(n int, c float64, out []float64) { vmath.Fill(n, c, out) },
	}
}

// bsVmathProgram is the 32-call Black Scholes program over the backend,
// written MKL-sample style: a small set of full-length buffers reused
// across calls (d1, d2, two temporaries, and the four outputs).
func bsVmathProgram(be vmathBackend, price, strike, tt []float64) (call, put, vega, gamma []float64) {
	n := len(price)
	alloc := func() []float64 { return make([]float64, n) }
	d1, d2, t1, t2, zeros := alloc(), alloc(), alloc(), alloc(), alloc()
	call, put = alloc(), alloc()
	vega, gamma = alloc(), alloc()

	be.fill(n, 0, zeros)                                   // 1
	be.binary("div", n, price, strike, d1)                 // 2
	be.unary("ln", n, d1, d1)                              // 3
	be.unary("sqrt", n, tt, t1)                            // 4: t1 = vol*sqrt(t)
	be.scalar("mulc", n, t1, bsVol, t1)                    // 5
	be.scalar("mulc", n, tt, bsRiskFree+bsVol*bsVol/2, t2) // 6
	be.binary("add", n, d1, t2, d1)                        // 7
	be.binary("div", n, d1, t1, d1)                        // 8: d1
	be.binary("sub", n, d1, t1, d2)                        // 9: d2
	be.unary("sqr", n, d1, gamma)                          // 10: pdf scratch
	be.scalar("mulc", n, gamma, -0.5, gamma)               // 11
	be.unary("exp", n, gamma, gamma)                       // 12
	be.scalar("mulc", n, gamma, invSqrt2Pi, gamma)         // 13: pdf(d1)
	be.binary("mul", n, price, gamma, vega)                // 14
	be.binary("mul", n, vega, t1, vega)                    // 15: vega
	be.binary("div", n, gamma, t1, gamma)                  // 16
	be.binary("div", n, gamma, price, gamma)               // 17: gamma
	be.unary("cdfnorm", n, d1, d1)                         // 18: nd1
	be.unary("cdfnorm", n, d2, d2)                         // 19: nd2
	be.scalar("mulc", n, tt, -bsRiskFree, t2)              // 20
	be.unary("exp", n, t2, t2)                             // 21
	be.binary("mul", n, strike, t2, t2)                    // 22: e
	be.binary("mul", n, price, d1, call)                   // 23
	be.binary("mul", n, t2, d2, put)                       // 24
	be.binary("sub", n, call, put, call)                   // 25: call
	be.scalar("subcrev", n, d1, 1, d1)                     // 26: 1-nd1
	be.scalar("subcrev", n, d2, 1, d2)                     // 27: 1-nd2
	be.binary("mul", n, t2, d2, d2)                        // 28: e*(1-nd2)
	be.binary("mul", n, price, d1, d1)                     // 29: s*(1-nd1)
	be.binary("sub", n, d2, d1, put)                       // 30: put
	be.binary("fmax", n, call, zeros, call)                // 31
	be.binary("fmax", n, put, zeros, put)                  // 32
	return call, put, vega, gamma
}

// bsOperators is the Table 2 call count for Black Scholes.
const bsOperators = 32

func bsChecksum(call, put, vega, gamma []float64) float64 {
	return sumOf(call) + sumOf(put) + sumOf(vega) + sumOf(gamma)
}

func runBSVmath(v Variant, cfg Config) (float64, error) {
	price, strike, tt := data.OptionsData(cfg.Scale, 11)
	switch v {
	case Base:
		old := vmath.NumThreads()
		vmath.SetNumThreads(cfg.Threads)
		defer vmath.SetNumThreads(old)
		call, put, vega, gamma := bsVmathProgram(baseVmathBackend(), price, strike, tt)
		return bsChecksum(call, put, vega, gamma), nil
	case Mozart, MozartNoPipe:
		s := cfg.session()
		if v == MozartNoPipe {
			s = cfg.sessionNoPipe()
		}
		call, put, vega, gamma := bsVmathProgram(mozartVmathBackend(s), price, strike, tt)
		if err := s.EvaluateContext(cfg.ctx()); err != nil {
			return 0, err
		}
		return bsChecksum(call, put, vega, gamma), nil
	case Weld:
		call, put, vega, gamma := bsWeld(price, strike, tt, cfg.Threads)
		return bsChecksum(call, put, vega, gamma), nil
	}
	return 0, errUnsupported(v)
}

// bsWeld builds the whole computation as one fused expression DAG.
func bsWeld(price, strike, tt []float64, threads int) (call, put, vega, gamma []float64) {
	s, k, t := weldsim.Source(price), weldsim.Source(strike), weldsim.Source(tt)
	vst := t.Sqrt().MulS(bsVol)
	d1 := s.Div(k).Log().Add(t.MulS(bsRiskFree + bsVol*bsVol/2)).Div(vst)
	d2 := d1.Sub(vst)
	nd1, nd2 := d1.CdfNorm(), d2.CdfNorm()
	e := k.Mul(t.MulS(-bsRiskFree).Exp())
	callE := s.Mul(nd1).Sub(e.Mul(nd2)).Max(weldsim.Const(0, len(price)))
	putE := e.Mul(nd2.RSubS(1)).Sub(s.Mul(nd1.RSubS(1))).Max(weldsim.Const(0, len(price)))
	pdf := d1.Square().MulS(-0.5).Exp().MulS(invSqrt2Pi)
	vegaE := s.Mul(pdf).Mul(vst)
	gammaE := pdf.Div(vst).Div(s)
	outs := weldsim.Eval(threads, callE, putE, vegaE, gammaE)
	return outs[0], outs[1], outs[2], outs[3]
}

// runBSTensor is the NumPy variant: out-of-place ops on ndarray.
func runBSTensor(v Variant, cfg Config) (float64, error) {
	p, k, t := data.OptionsData(cfg.Scale, 11)
	price := tensor.FromSlice(p, len(p))
	strike := tensor.FromSlice(k, len(k))
	tt := tensor.FromSlice(t, len(t))
	switch v {
	case Base:
		vst := tensor.MulS(tensor.Sqrt(tt), bsVol)
		d1 := tensor.Div(tensor.Add(tensor.Log(tensor.Div(price, strike)), tensor.MulS(tt, bsRiskFree+bsVol*bsVol/2)), vst)
		d2 := tensor.Sub(d1, vst)
		nd1 := cdfNormT(d1)
		nd2 := cdfNormT(d2)
		e := tensor.Mul(strike, tensor.Exp(tensor.MulS(tt, -bsRiskFree)))
		call := tensor.Maximum(tensor.Sub(tensor.Mul(price, nd1), tensor.Mul(e, nd2)), tensor.New(len(p)))
		put := tensor.Maximum(tensor.Sub(tensor.Mul(e, tensor.RSubS(nd2, 1)), tensor.Mul(price, tensor.RSubS(nd1, 1))), tensor.New(len(p)))
		pdf := tensor.MulS(tensor.Exp(tensor.MulS(tensor.Square(d1), -0.5)), invSqrt2Pi)
		vega := tensor.Mul(tensor.Mul(price, pdf), vst)
		gamma := tensor.Div(tensor.Div(pdf, vst), price)
		return bsChecksum(call.Data, put.Data, vega.Data, gamma.Data), nil
	case Mozart, MozartNoPipe:
		s := cfg.session()
		if v == MozartNoPipe {
			s = cfg.sessionNoPipe()
		}
		vst := tensorsa.MulS(s, tensorsa.Sqrt(s, tt), bsVol)
		d1 := tensorsa.Div(s, tensorsa.Add(s, tensorsa.Log(s, tensorsa.Div(s, price, strike)), tensorsa.MulS(s, tt, bsRiskFree+bsVol*bsVol/2)), vst)
		d2 := tensorsa.Sub(s, d1, vst)
		nd1 := cdfNormSA(s, d1)
		nd2 := cdfNormSA(s, d2)
		e := tensorsa.Mul(s, strike, tensorsa.Exp(s, tensorsa.MulS(s, tt, -bsRiskFree)))
		call := tensorsa.Maximum(s, tensorsa.Sub(s, tensorsa.Mul(s, price, nd1), tensorsa.Mul(s, e, nd2)), tensor.New(len(p)))
		put := tensorsa.Maximum(s, tensorsa.Sub(s, tensorsa.Mul(s, e, tensorsa.RSubS(s, nd2, 1)), tensorsa.Mul(s, price, tensorsa.RSubS(s, nd1, 1))), tensor.New(len(p)))
		pdf := tensorsa.MulS(s, tensorsa.Exp(s, tensorsa.MulS(s, tensorsa.Square(s, d1), -0.5)), invSqrt2Pi)
		vega := tensorsa.Mul(s, tensorsa.Mul(s, price, pdf), vst)
		gamma := tensorsa.Div(s, tensorsa.Div(s, pdf, vst), price)
		cv, err := call.Get()
		if err != nil {
			return 0, err
		}
		pv, _ := put.Get()
		vv, _ := vega.Get()
		gv, _ := gamma.Get()
		return bsChecksum(cv.(*tensor.NDArray).Data, pv.(*tensor.NDArray).Data,
			vv.(*tensor.NDArray).Data, gv.(*tensor.NDArray).Data), nil
	case Weld:
		call, put, vega, gamma := bsWeld(p, k, t, cfg.Threads)
		return bsChecksum(call, put, vega, gamma), nil
	}
	return 0, errUnsupported(v)
}

// cdfNormT computes the standard normal CDF via erf on tensors.
func cdfNormT(x *tensor.NDArray) *tensor.NDArray {
	return tensor.MulS(tensor.AddS(tensor.Erf(tensor.DivS(x, math.Sqrt2)), 1), 0.5)
}

func cdfNormSA(s *core.Session, x any) *core.Future {
	return tensorsa.MulS(s, tensorsa.AddS(s, tensorsa.Erf(s, tensorsa.DivS(s, x, math.Sqrt2)), 1), 0.5)
}

// bsModelOps is the memsim plan of the 32-call sequence, matching the
// buffer reuse of bsVmathProgram.
func bsModelOps() []opSpec {
	const (
		price, strike, tt = 0, 1, 2
		d1, d2, t1, t2    = 3, 4, 5, 6
		zeros             = 7
		call, put         = 8, 9
		vega, gamma       = 10, 11
	)
	return []opSpec{
		op("fill", cycAdd, nil, []int{zeros}),
		op("div", cycDiv, []int{price, strike}, []int{d1}),
		op("ln", cycLn, []int{d1}, []int{d1}),
		op("sqrt", cycSqrt, []int{tt}, []int{t1}),
		op("mulc", cycMul, []int{t1}, []int{t1}),
		op("mulc", cycMul, []int{tt}, []int{t2}),
		op("add", cycAdd, []int{d1, t2}, []int{d1}),
		op("div", cycDiv, []int{d1, t1}, []int{d1}),
		op("sub", cycAdd, []int{d1, t1}, []int{d2}),
		op("sqr", cycMul, []int{d1}, []int{gamma}),
		op("mulc", cycMul, []int{gamma}, []int{gamma}),
		op("exp", cycExp, []int{gamma}, []int{gamma}),
		op("mulc", cycMul, []int{gamma}, []int{gamma}),
		op("mul", cycMul, []int{price, gamma}, []int{vega}),
		op("mul", cycMul, []int{vega, t1}, []int{vega}),
		op("div", cycDiv, []int{gamma, t1}, []int{gamma}),
		op("div", cycDiv, []int{gamma, price}, []int{gamma}),
		op("cdfnorm", cycErf, []int{d1}, []int{d1}),
		op("cdfnorm", cycErf, []int{d2}, []int{d2}),
		op("mulc", cycMul, []int{tt}, []int{t2}),
		op("exp", cycExp, []int{t2}, []int{t2}),
		op("mul", cycMul, []int{strike, t2}, []int{t2}),
		op("mul", cycMul, []int{price, d1}, []int{call}),
		op("mul", cycMul, []int{t2, d2}, []int{put}),
		op("sub", cycAdd, []int{call, put}, []int{call}),
		op("subcrev", cycAdd, []int{d1}, []int{d1}),
		op("subcrev", cycAdd, []int{d2}, []int{d2}),
		op("mul", cycMul, []int{t2, d2}, []int{d2}),
		op("mul", cycMul, []int{price, d1}, []int{d1}),
		op("sub", cycAdd, []int{d2, d1}, []int{put}),
		op("fmax", cycCmp, []int{call, zeros}, []int{call}),
		op("fmax", cycCmp, []int{put, zeros}, []int{put}),
	}
}

func init() {
	register(Spec{
		Name:         "blackscholes-numpy",
		Library:      "NumPy",
		Description:  "Black Scholes option pricing over ndarray vector math (Fig. 4a)",
		Operators:    bsOperators,
		Variants:     []Variant{Base, Mozart, MozartNoPipe, Weld},
		Run:          runBSTensor,
		DefaultScale: 1 << 22,
		Model: func(v Variant, cfg Config) *memsim.Workload {
			return chainModelAlloc("blackscholes-numpy", bsModelOps(), int64(cfg.Scale), 8, v, cfg.Batch)
		},
	})
	register(Spec{
		Name:         "blackscholes-mkl",
		Library:      "MKL",
		Description:  "Black Scholes option pricing over MKL-style vector math (Fig. 1, 4j)",
		Operators:    bsOperators,
		BaseParallel: true,
		Variants:     []Variant{Base, Mozart, MozartNoPipe, Weld},
		Run:          runBSVmath,
		DefaultScale: 1 << 22,
		Model: func(v Variant, cfg Config) *memsim.Workload {
			ops := bsModelOps()
			if v == Mozart || v == MozartNoPipe {
				// The Mozart backend fills the zeros buffer eagerly,
				// outside the session (vmath.Fill is not annotated), so
				// the real plan has 31 calls; zeros still streams with
				// the batch via the fmax reads.
				ops = ops[1:]
			}
			return chainModel("blackscholes-mkl", ops, int64(cfg.Scale), 8, v, cfg.Batch)
		},
	})
}

func errUnsupported(v Variant) error {
	return &unsupportedError{v}
}

type unsupportedError struct{ v Variant }

func (e *unsupportedError) Error() string {
	return "workloads: variant " + string(e.v) + " not supported"
}
