package workloads

import (
	"strconv"

	"mozart/internal/annotations/framesa"
	"mozart/internal/data"
	"mozart/internal/frame"
	"mozart/internal/memsim"
	"mozart/internal/weldsim"
)

// Birth Analysis (Figure 4g): given births by name/year/sex, compute the
// fraction of births with names starting "Lesl", grouped by sex and year.
// Dominated by grouped aggregation: Mozart splits the grouped frames,
// creates partial aggregations per chunk, and re-aggregates in the merger.

const baOperators = 6

func baSpecs() []frame.AggSpec {
	return []frame.AggSpec{{Col: "births", Kind: frame.AggSum, As: "total"}}
}

// baResult folds the two grouped frames into a checksum over the Lesl
// fraction per (sex, year) group.
func baResult(all, lesl *frame.DataFrame) float64 {
	frac := map[[2]any]float64{}
	for r := 0; r < lesl.NRows(); r++ {
		k := [2]any{lesl.Col("sex").S[r], lesl.Col("year").I[r]}
		frac[k] = lesl.Col("total").F[r]
	}
	sum := 0.0
	for r := 0; r < all.NRows(); r++ {
		k := [2]any{all.Col("sex").S[r], all.Col("year").I[r]}
		if tot := all.Col("total").F[r]; tot > 0 {
			sum += frac[k] / tot
		}
	}
	return sum
}

func runBirthAnalysis(v Variant, cfg Config) (float64, error) {
	df := data.BabyNames(cfg.Scale, 71)
	keys := []string{"sex", "year"}
	switch v {
	case Base:
		mask := frame.StrStartsWith(df.Col("name"), "Lesl")       // 1
		lesl := frame.Filter(df, mask)                            // 2
		gAll := frame.GroupByAgg(df, keys, baSpecs())             // 3
		gLesl := frame.GroupByAgg(lesl, keys, baSpecs())          // 4
		return baResult(gAll.ToDataFrame(), gLesl.ToDataFrame()), // 5, 6
			nil
	case Mozart, MozartNoPipe:
		s := cfg.session()
		if v == MozartNoPipe {
			s = cfg.sessionNoPipe()
		}
		mask := framesa.StrStartsWith(s, df.Col("name"), "Lesl")
		lesl := framesa.Filter(s, df, mask)
		gAll := framesa.GroupByAgg(s, df, keys, baSpecs())
		gLesl := framesa.GroupByAgg(s, lesl, keys, baSpecs())
		allDf := framesa.ToDataFrame(s, gAll)
		leslDf := framesa.ToDataFrame(s, gLesl)
		av, err := allDf.Get()
		if err != nil {
			return 0, err
		}
		lv, err := leslDf.Get()
		if err != nil {
			return 0, err
		}
		return baResult(av.(*frame.DataFrame), lv.(*frame.DataFrame)), nil
	case Weld:
		// Weld-style: dictmerger aggregations keyed by sex\x00year.
		n := df.NRows()
		keysv := make([]string, n)
		sex, year := df.Col("sex").S, df.Col("year").I
		births := df.Col("births").F
		name := df.Col("name").S
		for i := 0; i < n; i++ {
			keysv[i] = sex[i] + "\x00" + strconv.FormatInt(year[i], 10)
		}
		all := weldsim.GroupSumByKey(keysv, births, cfg.Threads)
		leslBirths := make([]float64, n)
		for i := 0; i < n; i++ {
			if len(name[i]) >= 4 && name[i][:4] == "Lesl" {
				leslBirths[i] = births[i]
			}
		}
		lesl := weldsim.GroupSumByKey(keysv, leslBirths, cfg.Threads)
		sum := 0.0
		for _, k := range all.Keys() {
			if tot := all.Sums[k]; tot > 0 {
				sum += lesl.Sums[k] / tot
			}
		}
		return sum, nil
	}
	return 0, errUnsupported(v)
}

func baModel(v Variant, cfg Config) *memsim.Workload {
	// Grouping dominates: hash probe + accumulate per row. Mozart gains
	// come from parallelizing the grouped aggregation (no pipelined chain
	// of cheap ops to save memory traffic on), matching Fig. 4g.
	groupCyc := 12.0
	ops := []opSpec{
		op("startswith", 2*cycMul, []int{0}, []int{1}),
		op("filter", 2*cycMul, []int{0, 1}, []int{2}),
		{name: "groupAll", cycles: groupCyc, weldC: groupCyc * 1.3, reads: []int{0, 3}, writes: nil},
		{name: "groupLesl", cycles: groupCyc, weldC: groupCyc * 1.3, reads: []int{2}, writes: nil},
	}
	return chainModelAlloc("birthanalysis", ops, int64(cfg.Scale), 24, v, cfg.Batch)
}

func init() {
	register(Spec{
		Name:         "birthanalysis-pandas",
		Library:      "Pandas",
		Description:  "fraction of 'Lesl*' names by sex and year via groupBy (Fig. 4g)",
		Operators:    baOperators,
		Variants:     []Variant{Base, Mozart, MozartNoPipe, Weld},
		Run:          runBirthAnalysis,
		DefaultScale: 1 << 18,
		Model:        baModel,
	})
}
