package workloads

import (
	"mozart/internal/annotations/imagesa"
	"mozart/internal/core"
	"mozart/internal/data"
	"mozart/internal/imagelib"
	"mozart/internal/memsim"
)

// Nashville and Gotham (Figure 4n-o): Instagram-style filter pipelines from
// the instagram-filters repository, expressed over the imagelib
// MagickWand-style API. Every operation is pixel-local and pipelines; the
// image split type's crop/append copies give these workloads the paper's
// split/merge overhead profile (§8.5).

// imgStep is one filter call, applied either directly or via annotations.
type imgStep struct {
	name  string
	base  func(m *imagelib.Image)
	moz   func(s *core.Session, img any)
	cycPx float64
}

func step(name string, cyc float64, base func(*imagelib.Image), moz func(*core.Session, any)) imgStep {
	return imgStep{name: name, cycPx: cyc, base: base, moz: moz}
}

// nashvilleSteps is the 31-call Nashville pipeline: color tone toward warm
// tints, level adjustments per channel, modulation, and gamma.
func nashvilleSteps() []imgStep {
	var steps []imgStep
	add := func(s imgStep) { steps = append(steps, s) }
	// colortone(#222b6d, negate) phase.
	add(step("colorize-blue", 1.2, func(m *imagelib.Image) { imagelib.Colorize(m, 0x22, 0x2b, 0x6d, 0.1) },
		func(s *core.Session, img any) { imagesa.Colorize(s, img, 0x22, 0x2b, 0x6d, 0.1) }))
	add(step("contrast-1", 1.6, func(m *imagelib.Image) { imagelib.SigmoidalContrast(m, true, 3, 128) },
		func(s *core.Session, img any) { imagesa.SigmoidalContrast(s, img, true, 3, 128) }))
	add(step("gamma-down", 1.4, func(m *imagelib.Image) { imagelib.Gamma(m, 0.9) },
		func(s *core.Session, img any) { imagesa.Gamma(s, img, 0.9) }))
	// colortone(#f7daae) phase.
	add(step("colorize-cream", 1.2, func(m *imagelib.Image) { imagelib.Colorize(m, 0xf7, 0xda, 0xae, 0.12) },
		func(s *core.Session, img any) { imagesa.Colorize(s, img, 0xf7, 0xda, 0xae, 0.12) }))
	add(step("contrast-2", 1.6, func(m *imagelib.Image) { imagelib.SigmoidalContrast(m, false, 3, 128) },
		func(s *core.Session, img any) { imagesa.SigmoidalContrast(s, img, false, 3, 128) }))
	// modulate(100, 150, 100).
	add(step("modulate", 5, func(m *imagelib.Image) { imagelib.Modulate(m, 100, 150, 100) },
		func(s *core.Session, img any) { imagesa.Modulate(s, img, 100, 150, 100) }))
	// auto-gamma/level passes per channel.
	for ch := 0; ch < 3; ch++ {
		ch := ch
		add(step("channel-up", 0.8, func(m *imagelib.Image) { imagelib.ChannelScale(m, ch, 1.05) },
			func(s *core.Session, img any) { imagesa.ChannelScale(s, img, ch, 1.05) }))
	}
	add(step("level", 1.2, func(m *imagelib.Image) { imagelib.Level(m, 10, 245) },
		func(s *core.Session, img any) { imagesa.Level(s, img, 10, 245) }))
	add(step("gamma-up", 1.4, func(m *imagelib.Image) { imagelib.Gamma(m, 1.1) },
		func(s *core.Session, img any) { imagesa.Gamma(s, img, 1.1) }))
	// Repeat tone/contrast refinement rounds to the filter's 31 calls.
	for round := 0; round < 4; round++ {
		alpha := 0.03 + 0.01*float64(round)
		add(step("tone", 1.2, func(m *imagelib.Image) { imagelib.Colorize(m, 0xff, 0x99, 0x66, alpha) },
			func(s *core.Session, img any) { imagesa.Colorize(s, img, 0xff, 0x99, 0x66, alpha) }))
		add(step("contrast", 1.6, func(m *imagelib.Image) { imagelib.SigmoidalContrast(m, true, 2, 120) },
			func(s *core.Session, img any) { imagesa.SigmoidalContrast(s, img, true, 2, 120) }))
		add(step("level", 1.2, func(m *imagelib.Image) { imagelib.Level(m, 5, 250) },
			func(s *core.Session, img any) { imagesa.Level(s, img, 5, 250) }))
		add(step("gamma", 1.4, func(m *imagelib.Image) { imagelib.Gamma(m, 0.98) },
			func(s *core.Session, img any) { imagesa.Gamma(s, img, 0.98) }))
		add(step("saturate", 5, func(m *imagelib.Image) { imagelib.Modulate(m, 100, 104, 100) },
			func(s *core.Session, img any) { imagesa.Modulate(s, img, 100, 104, 100) }))
	}
	return steps // 12 + 19 = 31 calls
}

// gothamSteps is the 15-call Gotham pipeline: desaturated blue tones, high
// contrast, strong gamma.
func gothamSteps() []imgStep {
	var steps []imgStep
	add := func(s imgStep) { steps = append(steps, s) }
	add(step("modulate", 5, func(m *imagelib.Image) { imagelib.Modulate(m, 120, 10, 100) },
		func(s *core.Session, img any) { imagesa.Modulate(s, img, 120, 10, 100) }))
	add(step("colorize", 1.2, func(m *imagelib.Image) { imagelib.Colorize(m, 0x22, 0x2b, 0x6d, 0.2) },
		func(s *core.Session, img any) { imagesa.Colorize(s, img, 0x22, 0x2b, 0x6d, 0.2) }))
	add(step("gamma", 1.4, func(m *imagelib.Image) { imagelib.Gamma(m, 0.5) },
		func(s *core.Session, img any) { imagesa.Gamma(s, img, 0.5) }))
	add(step("contrast", 1.6, func(m *imagelib.Image) { imagelib.SigmoidalContrast(m, true, 4, 128) },
		func(s *core.Session, img any) { imagesa.SigmoidalContrast(s, img, true, 4, 128) }))
	add(step("level-blue", 0.8, func(m *imagelib.Image) { imagelib.ChannelScale(m, 2, 1.1) },
		func(s *core.Session, img any) { imagesa.ChannelScale(s, img, 2, 1.1) }))
	for round := 0; round < 2; round++ {
		add(step("tone", 1.2, func(m *imagelib.Image) { imagelib.Colorize(m, 0x10, 0x18, 0x40, 0.05) },
			func(s *core.Session, img any) { imagesa.Colorize(s, img, 0x10, 0x18, 0x40, 0.05) }))
		add(step("contrast", 1.6, func(m *imagelib.Image) { imagelib.SigmoidalContrast(m, true, 2, 110) },
			func(s *core.Session, img any) { imagesa.SigmoidalContrast(s, img, true, 2, 110) }))
		add(step("level", 1.2, func(m *imagelib.Image) { imagelib.Level(m, 8, 248) },
			func(s *core.Session, img any) { imagesa.Level(s, img, 8, 248) }))
		add(step("gamma", 1.4, func(m *imagelib.Image) { imagelib.Gamma(m, 0.95) },
			func(s *core.Session, img any) { imagesa.Gamma(s, img, 0.95) }))
		add(step("desaturate", 5, func(m *imagelib.Image) { imagelib.Modulate(m, 100, 96, 100) },
			func(s *core.Session, img any) { imagesa.Modulate(s, img, 100, 96, 100) }))
	}
	return steps // 5 + 10 = 15 calls
}

// imgChecksum hashes the pixels.
func imgChecksum(m *imagelib.Image) float64 {
	var sum uint64
	for i, p := range m.Pix {
		sum += uint64(p) * uint64(i%251+1)
	}
	return float64(sum % (1 << 52))
}

func runImageFilter(steps func() []imgStep) func(v Variant, cfg Config) (float64, error) {
	return func(v Variant, cfg Config) (float64, error) {
		// Scale is the pixel row count of a 4:3 image.
		h := cfg.Scale
		w := h * 4 / 3
		img := data.Photo(w, h, 101)
		switch v {
		case Base:
			for _, st := range steps() {
				st.base(img)
			}
			return imgChecksum(img), nil
		case Mozart, MozartNoPipe:
			s := cfg.session()
			if v == MozartNoPipe {
				s = cfg.sessionNoPipe()
			}
			fut := s.Track(img)
			for _, st := range steps() {
				st.moz(s, img)
			}
			res, err := fut.Get()
			if err != nil {
				return 0, err
			}
			return imgChecksum(res.(*imagelib.Image)), nil
		}
		return 0, errUnsupported(v)
	}
}

func imgModel(steps func() []imgStep) func(v Variant, cfg Config) *memsim.Workload {
	return func(v Variant, cfg Config) *memsim.Workload {
		// One element per pixel row of a 4:3 RGBA image.
		w := int64(cfg.Scale) * 4 / 3
		var ops []opSpec
		for _, st := range steps() {
			c := st.cycPx * float64(w) // cycles per row
			ops = append(ops, opSpec{name: st.name, cycles: c, weldC: c, reads: []int{0}, writes: []int{0}})
		}
		// The image splitter produces aliasing row-band views now, so the
		// Mozart variants no longer pay the §8.2 crop/append copy passes
		// (SplitCopies) the paper's original integration exhibited.
		return chainModel("image", ops, int64(cfg.Scale), w*4, v, cfg.Batch)
	}
}

func init() {
	register(Spec{
		Name:         "nashville-imagemagick",
		Library:      "ImageMagick",
		Description:  "Nashville Instagram filter: color masks, gamma, HSV modulation (Fig. 4n)",
		Operators:    31,
		BaseParallel: true,
		Variants:     []Variant{Base, Mozart, MozartNoPipe},
		Run:          runImageFilter(nashvilleSteps),
		DefaultScale: 4096,
		Model:        imgModel(nashvilleSteps),
	})
	register(Spec{
		Name:         "gotham-imagemagick",
		Library:      "ImageMagick",
		Description:  "Gotham Instagram filter: desaturation, contrast, modulation (Fig. 4o)",
		Operators:    15,
		BaseParallel: true,
		Variants:     []Variant{Base, Mozart, MozartNoPipe},
		Run:          runImageFilter(gothamSteps),
		DefaultScale: 4096,
		Model:        imgModel(gothamSteps),
	})
}
