// Package tune closes the telemetry→plan loop: a Tuner is a
// plan.Calibrator that caches calibration state per structural plan
// signature (plan.Signature) and folds measured evaluation throughput back
// into the next evaluation's batch size and worker count.
//
// Per signature, the Tuner runs a four-phase state machine:
//
//	static ──baseline measured──▶ sweeping ──converged──▶ calibrated
//	                                  │                        │
//	                                  └──no win over static────┴──>10% drop──▶ reverted
//
//   - static: the session's policy runs untouched while the Tuner records a
//     baseline throughput.
//   - sweeping: a golden-section search over a powers-of-two batch grid
//     (the paper's Fig. 6 ablation as an online loop). Each evaluation runs
//     one probe batch; Observe records its throughput and advances the
//     interval. The search converges within Config.Budget evaluations.
//   - calibrated: the best probe won over the static baseline by at least
//     the hysteresis margin and is now pinned. Throughput stays monitored;
//     two consecutive observations more than Config.RegressionGuard below
//     the sweep's best revert the signature to static for good.
//   - reverted: the static policy, permanently (no re-sweeping churn).
//
// Determinism: the Tuner takes an injectable clock and a seed (the seed
// picks the first golden probe), and its zero value is inert — PlanBatch
// returns the zero decision and Observe is a no-op, reproducing the static
// planner byte for byte. Only New enables calibration.
//
// A single Tuner is safe for concurrent use by many sessions (the serve
// layer keeps one per tenant); probe observations carry the batch they ran
// with, so interleaved evaluations of the same signature cannot corrupt
// the sweep — a stale probe result is simply discarded.
package tune

import (
	"math"
	"sort"
	"sync"
	"time"

	"mozart/internal/plan"
)

// Config parameterizes a Tuner. The zero value of every field selects a
// sensible default.
type Config struct {
	// Clock stamps state transitions; nil means time.Now.
	Clock func() time.Time
	// Seed makes tie-breaks deterministic: it chooses which golden-section
	// interior point is probed first.
	Seed int64
	// MinBatch and MaxBatch bound the sweep grid (powers of two from
	// MinBatch up to MaxBatch). Defaults: 512 and 4Mi elements, spanning
	// the paper's Fig. 6 ablation.
	MinBatch int64
	MaxBatch int64
	// Budget caps sweep probes per signature; exhausting it ends the sweep
	// at the best batch measured so far. Default 12.
	Budget int
	// BaselineEvals is how many static evaluations are measured before the
	// sweep starts. Default 1.
	BaselineEvals int
	// Hysteresis is the margin the sweep's best must beat the static
	// baseline by to be adopted (0.05 = 5%). Default 0.05.
	Hysteresis float64
	// RegressionGuard reverts a calibrated signature to static when
	// measured throughput drops below best×(1−RegressionGuard) twice in a
	// row. Default 0.10.
	RegressionGuard float64
}

func (c Config) withDefaults() Config {
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.MinBatch <= 0 {
		c.MinBatch = 512
	}
	if c.MaxBatch < c.MinBatch {
		c.MaxBatch = 4 << 20
	}
	if c.Budget <= 0 {
		c.Budget = 12
	}
	if c.BaselineEvals <= 0 {
		c.BaselineEvals = 1
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 0.05
	}
	if c.RegressionGuard <= 0 {
		c.RegressionGuard = 0.10
	}
	return c
}

// Phase is a signature's position in the state machine.
type Phase int

const (
	PhaseStatic Phase = iota
	PhaseSweeping
	PhaseCalibrated
	PhaseReverted
)

func (p Phase) String() string {
	switch p {
	case PhaseSweeping:
		return "sweeping"
	case PhaseCalibrated:
		return "calibrated"
	case PhaseReverted:
		return "reverted"
	default:
		return "static"
	}
}

// sigState is one structural plan signature's calibration state. All
// access is under Tuner.mu.
type sigState struct {
	phase Phase
	since time.Time

	// baseline is the measured static-policy throughput (elems/s).
	baseline  float64
	baselineN int

	// sweep state: grid is the candidate batch ladder, memo the measured
	// throughput per grid index, [lo,hi] the live golden-section interval,
	// pending the index the next evaluation probes.
	grid    []int64
	memo    map[int]float64
	lo, hi  int
	pending int
	evals   int

	// calibrated state.
	best    int     // grid index
	bestThr float64 // throughput the sweep measured at best
	badRuns int     // consecutive regression-guard violations
}

// Tuner is a calibrating plan.BatchSource. The zero value is inert (static
// behavior everywhere); use New to enable calibration.
type Tuner struct {
	mu      sync.Mutex
	enabled bool
	cfg     Config
	sigs    map[string]*sigState
}

// New returns an enabled Tuner.
func New(cfg Config) *Tuner {
	return &Tuner{enabled: true, cfg: cfg.withDefaults(), sigs: map[string]*sigState{}}
}

var _ plan.Calibrator = (*Tuner)(nil)

// PlanBatch answers the planner. It is read-only with respect to sweep
// state (a peek via Session.Plan or Explain returns the same decision the
// next evaluation will run) and never creates state for a signature it has
// not observed.
func (t *Tuner) PlanBatch(req plan.BatchRequest) plan.BatchDecision {
	if t == nil || !t.enabled {
		return plan.BatchDecision{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.sigs[req.Signature]
	if st == nil {
		return plan.BatchDecision{}
	}
	switch st.phase {
	case PhaseSweeping:
		return plan.BatchDecision{
			BatchElems: st.grid[st.pending],
			Workers:    workersFor(req, st.grid[st.pending]),
			Provenance: plan.BatchSweeping,
		}
	case PhaseCalibrated:
		return plan.BatchDecision{
			BatchElems: st.grid[st.best],
			Workers:    workersFor(req, st.grid[st.best]),
			Provenance: plan.BatchCalibrated,
		}
	default: // static, reverted
		return plan.BatchDecision{}
	}
}

// workersFor folds the batch decision into the worker count: scheduling
// more workers than there are batches only adds spawn and merge overhead,
// so the override is min(configured, ⌈elems/batch⌉). 0 means "no override".
func workersFor(req plan.BatchRequest, batch int64) int {
	if req.Elems <= 0 || batch <= 0 || req.Workers <= 1 {
		return 0
	}
	batches := (req.Elems + batch - 1) / batch
	if batches < 1 {
		batches = 1
	}
	if batches < int64(req.Workers) {
		return int(batches)
	}
	return 0
}

// Observe feeds one evaluation's measured actuals back. This is the only
// way state advances.
func (t *Tuner) Observe(o plan.Observation) {
	if t == nil || !t.enabled {
		return
	}
	thr := o.Throughput()
	if thr <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.sigs[o.Signature]
	if st == nil {
		st = &sigState{phase: PhaseStatic, since: t.cfg.Clock()}
		t.sigs[o.Signature] = st
	}
	switch st.phase {
	case PhaseStatic:
		if o.BatchElems != 0 {
			return // stale probe from a pre-revert interleaving
		}
		st.baseline = fold(st.baseline, thr, st.baselineN)
		st.baselineN++
		if st.baselineN >= t.cfg.BaselineEvals {
			t.startSweep(st, o)
		}
	case PhaseSweeping:
		if o.BatchElems == 0 {
			// A concurrent session planned before the sweep started;
			// fold its static measurement into the baseline.
			st.baseline = fold(st.baseline, thr, st.baselineN)
			st.baselineN++
			return
		}
		if o.BatchElems != st.grid[st.pending] {
			return // stale probe; discard
		}
		st.memo[st.pending] = math.Max(st.memo[st.pending], thr)
		st.evals++
		t.advance(st)
	case PhaseCalibrated:
		if o.BatchElems != st.grid[st.best] {
			return
		}
		if thr < st.bestThr*(1-t.cfg.RegressionGuard) {
			st.badRuns++
			if st.badRuns >= 2 {
				st.phase = PhaseReverted
				st.since = t.cfg.Clock()
			}
			return
		}
		st.badRuns = 0
	case PhaseReverted:
		// Terminal: no re-sweeping churn.
	}
}

// fold is the running mean used for baseline estimates.
func fold(mean, x float64, n int) float64 {
	return (mean*float64(n) + x) / float64(n+1)
}

// startSweep builds the probe grid (powers of two in [MinBatch, MaxBatch],
// capped one rung above the observed element count — probing batches far
// larger than the data just re-measures "one batch") and opens the
// golden-section interval.
func (t *Tuner) startSweep(st *sigState, o plan.Observation) {
	for b := t.cfg.MinBatch; b <= t.cfg.MaxBatch; b *= 2 {
		st.grid = append(st.grid, b)
		if o.Elems > 0 && b >= o.Elems {
			break
		}
	}
	if len(st.grid) < 2 {
		// Nothing to search over; stay static.
		st.phase = PhaseReverted
		st.since = t.cfg.Clock()
		return
	}
	st.memo = map[int]float64{}
	st.lo, st.hi = 0, len(st.grid)-1
	st.phase = PhaseSweeping
	st.since = t.cfg.Clock()
	c, d := interior(st.lo, st.hi)
	if t.cfg.Seed&1 == 1 {
		st.pending = d
	} else {
		st.pending = c
	}
}

const invphi = 0.6180339887498949

// interior places the two golden-section probe points inside [lo, hi] on
// the discrete index grid, nudging apart on rounding collisions.
func interior(lo, hi int) (c, d int) {
	span := float64(hi - lo)
	c = lo + int(math.Round((1-invphi)*span))
	d = lo + int(math.Round(invphi*span))
	if c == d {
		if d < hi {
			d++
		} else if c > lo {
			c--
		}
	}
	return c, d
}

// advance shrinks the golden-section interval using everything measured so
// far and either schedules the next probe or finishes the sweep.
// Memoization makes re-visited interior points free, so the loop keeps
// shrinking until it needs a measurement it does not have.
func (t *Tuner) advance(st *sigState) {
	for {
		if st.evals >= t.cfg.Budget || st.hi-st.lo <= 1 {
			t.finishSweep(st)
			return
		}
		c, d := interior(st.lo, st.hi)
		fc, okc := st.memo[c]
		if !okc {
			st.pending = c
			return
		}
		fd, okd := st.memo[d]
		if !okd {
			st.pending = d
			return
		}
		// Maximizing: if the lower interior point is at least as good, the
		// peak cannot be above d; otherwise it cannot be below c. On a
		// discrete grid the collision-nudged probes can pin an endpoint
		// (d == hi on a span-2 interval); no shrinkage means converged.
		oldLo, oldHi := st.lo, st.hi
		if fc >= fd {
			st.hi = d
		} else {
			st.lo = c
		}
		if st.lo == oldLo && st.hi == oldHi {
			t.finishSweep(st)
			return
		}
	}
}

// finishSweep picks the best measured batch (ties to the smaller batch —
// less memory for equal throughput) and applies the hysteresis gate.
func (t *Tuner) finishSweep(st *sigState) {
	best, bestThr := -1, 0.0
	idxs := make([]int, 0, len(st.memo))
	for i := range st.memo {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		if st.memo[i] > bestThr {
			best, bestThr = i, st.memo[i]
		}
	}
	if best < 0 || bestThr <= st.baseline*(1+t.cfg.Hysteresis) {
		st.phase = PhaseReverted
		st.since = t.cfg.Clock()
		return
	}
	st.best, st.bestThr = best, bestThr
	st.badRuns = 0
	st.phase = PhaseCalibrated
	st.since = t.cfg.Clock()
}

// SignatureState is one signature's calibration state, for telemetry and
// debugging.
type SignatureState struct {
	Signature      string
	Phase          Phase
	SweepEvals     int
	Baseline       float64 // measured static throughput, elems/s
	BestBatch      int64   // 0 until calibrated
	BestThroughput float64 // 0 until calibrated
	Since          time.Time
}

// States snapshots every signature's state, sorted by signature.
func (t *Tuner) States() []SignatureState {
	if t == nil || !t.enabled {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SignatureState, 0, len(t.sigs))
	for sig, st := range t.sigs {
		ss := SignatureState{
			Signature:  sig,
			Phase:      st.phase,
			SweepEvals: st.evals,
			Baseline:   st.baseline,
			Since:      st.since,
		}
		if st.phase == PhaseCalibrated {
			ss.BestBatch = st.grid[st.best]
			ss.BestThroughput = st.bestThr
		}
		out = append(out, ss)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Signature < out[j].Signature })
	return out
}
