package tune_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mozart/internal/memsim"
	"mozart/internal/plan"
	"mozart/internal/tune"
	"mozart/internal/workloads"
)

// testClock is a deterministic Config.Clock: one second per call.
func testClock() func() time.Time {
	t := time.Unix(0, 0)
	return func() time.Time {
		t = t.Add(time.Second)
		return t
	}
}

// elapsedFor converts a throughput (elems/s) into the Elapsed an
// Observation must carry for that many elements.
func elapsedFor(elems int64, thr float64) time.Duration {
	return time.Duration(float64(elems) / thr * float64(time.Second))
}

// driveModel runs the closed loop the executor runs — PlanBatch, evaluate,
// Observe — against a modeled throughput function until the signature
// leaves the sweep (or the round budget runs out). staticBatch is the batch
// the session's own policy would pick when the decision is zero.
func driveModel(t *testing.T, tu *tune.Tuner, sig string, elems int64, workers int,
	staticBatch int64, thrFor func(batch int64) float64) tune.SignatureState {
	t.Helper()
	for round := 0; round < 64; round++ {
		dec := tu.PlanBatch(plan.BatchRequest{Signature: sig, Workers: workers, Elems: elems})
		eff := dec.BatchElems
		if eff == 0 {
			eff = staticBatch
		}
		tu.Observe(plan.Observation{
			Signature:  sig,
			BatchElems: dec.BatchElems,
			Workers:    workers,
			Elems:      elems,
			Elapsed:    elapsedFor(elems, thrFor(eff)),
		})
		st := states(t, tu, sig)
		if st.Phase == tune.PhaseCalibrated || st.Phase == tune.PhaseReverted {
			return st
		}
	}
	return states(t, tu, sig)
}

func states(t *testing.T, tu *tune.Tuner, sig string) tune.SignatureState {
	t.Helper()
	for _, st := range tu.States() {
		if st.Signature == sig {
			return st
		}
	}
	t.Fatalf("signature %q has no state", sig)
	return tune.SignatureState{}
}

// grid reproduces the tuner's probe ladder: powers of two from minBatch,
// capped one rung at or above elems (and by maxBatch).
func probeGrid(minBatch, maxBatch, elems int64) []int64 {
	var g []int64
	for b := minBatch; b <= maxBatch; b *= 2 {
		g = append(g, b)
		if elems > 0 && b >= elems {
			break
		}
	}
	return g
}

// TestSweepConvergesOnModel closes the loop against the memsim machine
// model for a real workload (the paper's Fig. 6 ablation run online): a
// session stuck with a deliberately unbatched static policy must calibrate
// to within one grid step of the best fixed batch.
func TestSweepConvergesOnModel(t *testing.T) {
	for _, name := range []string{"blackscholes-numpy", "haversine-numpy", "blackscholes-mkl"} {
		t.Run(name, func(t *testing.T) {
			spec, err := workloads.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			// A tight trace cap keeps the model fast under -race; memsim
			// shrinks the cache hierarchy with the trace, so the batch:cache
			// ratios — and the Fig. 6 curve shape — are preserved.
			const workers, scale = 4, 1 << 22
			mach := memsim.DefaultMachine()
			mach.SimMaxElems = 1 << 16
			elems := int64(scale)
			memo := map[int64]float64{}
			thrFor := func(batch int64) float64 {
				if thr, ok := memo[batch]; ok {
					return thr
				}
				m := spec.Model(workloads.Mozart, workloads.Config{Scale: scale, Batch: batch})
				r := memsim.Run(mach, *m, workers)
				memo[batch] = float64(elems) / r.Seconds
				return memo[batch]
			}

			tu := tune.New(tune.Config{Clock: testClock(), Seed: 1})
			sig := "model:" + name
			// Static policy: whole-input batches (no batching at all) — the
			// regime the sweep exists to escape.
			st := driveModel(t, tu, sig, elems, workers, elems, thrFor)
			if st.Phase != tune.PhaseCalibrated {
				t.Fatalf("phase = %v after sweep, want calibrated (baseline %.0f elems/s)", st.Phase, st.Baseline)
			}

			g := probeGrid(512, 4<<20, elems)
			bestIdx, bestThr := -1, 0.0
			chosenIdx := -1
			for i, b := range g {
				if thr := thrFor(b); thr > bestThr {
					bestIdx, bestThr = i, thr
				}
				if b == st.BestBatch {
					chosenIdx = i
				}
			}
			if chosenIdx < 0 {
				t.Fatalf("calibrated batch %d not on the probe grid %v", st.BestBatch, g)
			}
			if d := chosenIdx - bestIdx; d < -1 || d > 1 {
				t.Errorf("calibrated to grid[%d]=%d, best fixed is grid[%d]=%d: more than one step apart",
					chosenIdx, g[chosenIdx], bestIdx, g[bestIdx])
			}
			if st.BestThroughput < 0.95*bestThr {
				t.Errorf("calibrated throughput %.0f < 0.95 x best fixed %.0f", st.BestThroughput, bestThr)
			}
		})
	}
}

// synthThr is a unimodal synthetic throughput curve peaking at the given
// batch (per-call overhead below, cache misses above — the Fig. 6 shape).
func synthThr(peak int64) func(batch int64) float64 {
	return func(batch int64) float64 {
		x := float64(batch) / float64(peak)
		return 1e6 / (x + 1/x)
	}
}

// TestRegressionGuardReverts: a calibrated signature whose measured
// throughput drops more than 10% below the sweep's best twice in a row
// must revert to the static policy, permanently.
func TestRegressionGuardReverts(t *testing.T) {
	const elems = 1 << 20
	tu := tune.New(tune.Config{Clock: testClock(), Seed: 0})
	sig := "synth"
	st := driveModel(t, tu, sig, elems, 4, elems, synthThr(8192))
	if st.Phase != tune.PhaseCalibrated {
		t.Fatalf("phase = %v, want calibrated", st.Phase)
	}

	// One bad run arms the guard but must not revert (transient noise).
	bad := elapsedFor(elems, 0.8*st.BestThroughput)
	obs := plan.Observation{Signature: sig, BatchElems: st.BestBatch, Workers: 4, Elems: elems, Elapsed: bad}
	tu.Observe(obs)
	if got := states(t, tu, sig).Phase; got != tune.PhaseCalibrated {
		t.Fatalf("phase after one bad run = %v, want calibrated", got)
	}
	// A good run in between disarms it.
	tu.Observe(plan.Observation{Signature: sig, BatchElems: st.BestBatch, Workers: 4, Elems: elems,
		Elapsed: elapsedFor(elems, st.BestThroughput)})
	tu.Observe(obs)
	if got := states(t, tu, sig).Phase; got != tune.PhaseCalibrated {
		t.Fatalf("phase after good-bad = %v, want calibrated (guard should re-arm)", got)
	}
	// Two consecutive bad runs revert.
	tu.Observe(obs)
	if got := states(t, tu, sig).Phase; got != tune.PhaseReverted {
		t.Fatalf("phase after two bad runs = %v, want reverted", got)
	}
	// Reverted is terminal: the decision is static again and further
	// observations change nothing.
	if dec := tu.PlanBatch(plan.BatchRequest{Signature: sig, Workers: 4, Elems: elems}); dec != (plan.BatchDecision{}) {
		t.Errorf("reverted decision = %+v, want zero (static)", dec)
	}
	tu.Observe(plan.Observation{Signature: sig, Elems: elems, Elapsed: elapsedFor(elems, 1)})
	if got := states(t, tu, sig).Phase; got != tune.PhaseReverted {
		t.Errorf("phase after post-revert observation = %v, want reverted", got)
	}
}

// TestSweepRevertsWithoutWin: when the static baseline is already at the
// curve's peak, the sweep must not adopt a probe that fails the hysteresis
// gate — it reverts and leaves the static policy alone.
func TestSweepRevertsWithoutWin(t *testing.T) {
	const elems = 1 << 20
	tu := tune.New(tune.Config{Clock: testClock(), Seed: 0})
	thr := synthThr(8192)
	st := driveModel(t, tu, "flat", elems, 4, 8192, thr)
	if st.Phase != tune.PhaseReverted {
		t.Fatalf("phase = %v, want reverted (static already optimal)", st.Phase)
	}
}

// TestStaleProbeDiscarded: an observation carrying a batch other than the
// pending probe (a concurrent session that planned one evaluation earlier)
// must not advance the sweep or poison the memo.
func TestStaleProbeDiscarded(t *testing.T) {
	const elems = 1 << 20
	tu := tune.New(tune.Config{Clock: testClock(), Seed: 0})
	sig := "stale"
	// Baseline observation starts the sweep.
	tu.Observe(plan.Observation{Signature: sig, Elems: elems, Elapsed: elapsedFor(elems, 1000)})
	st := states(t, tu, sig)
	if st.Phase != tune.PhaseSweeping {
		t.Fatalf("phase = %v, want sweeping", st.Phase)
	}
	dec := tu.PlanBatch(plan.BatchRequest{Signature: sig, Workers: 4, Elems: elems})
	// A stale probe (wrong batch, absurdly fast) must be discarded...
	tu.Observe(plan.Observation{Signature: sig, BatchElems: dec.BatchElems * 4096, Workers: 4,
		Elems: elems, Elapsed: elapsedFor(elems, 1e12)})
	if got := states(t, tu, sig).SweepEvals; got != 0 {
		t.Fatalf("stale probe advanced the sweep (evals = %d)", got)
	}
	// ...while a static-batch observation folds into the baseline.
	tu.Observe(plan.Observation{Signature: sig, Elems: elems, Elapsed: elapsedFor(elems, 2000)})
	if got := states(t, tu, sig).Baseline; got < 1400 || got > 1600 {
		t.Fatalf("baseline = %.0f, want the 1000/2000 running mean 1500", got)
	}
}

// TestConcurrentSessionsShareTuner: many goroutines closing the loop on a
// shared Tuner over a handful of signatures must be race-free (run under
// -race) and every signature must still reach a terminal phase.
func TestConcurrentSessionsShareTuner(t *testing.T) {
	tu := tune.New(tune.Config{Clock: time.Now, Seed: 3})
	const elems = 1 << 20
	thr := synthThr(16384)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sig := fmt.Sprintf("shared-%d", g%3)
			for i := 0; i < 50; i++ {
				dec := tu.PlanBatch(plan.BatchRequest{Signature: sig, Workers: 4, Elems: elems})
				eff := dec.BatchElems
				if eff == 0 {
					eff = elems
				}
				tu.Observe(plan.Observation{Signature: sig, BatchElems: dec.BatchElems,
					Workers: 4, Elems: elems, Elapsed: elapsedFor(elems, thr(eff))})
			}
		}(g)
	}
	wg.Wait()
	sts := tu.States()
	if len(sts) != 3 {
		t.Fatalf("got %d signatures, want 3", len(sts))
	}
	for _, st := range sts {
		if st.Phase != tune.PhaseCalibrated && st.Phase != tune.PhaseReverted {
			t.Errorf("%s phase = %v, want a terminal phase after 400 interleaved rounds", st.Signature, st.Phase)
		}
	}
}

// TestZeroValueInert: the zero value (and a nil pointer) must behave
// exactly like no tuner at all — zero decisions, no state, no panics.
func TestZeroValueInert(t *testing.T) {
	var zero tune.Tuner
	req := plan.BatchRequest{Signature: "x", Workers: 4, Elems: 1 << 20}
	if dec := zero.PlanBatch(req); dec != (plan.BatchDecision{}) {
		t.Errorf("zero-value decision = %+v, want zero", dec)
	}
	zero.Observe(plan.Observation{Signature: "x", Elems: 1, Elapsed: time.Second})
	if sts := zero.States(); sts != nil {
		t.Errorf("zero-value states = %v, want nil", sts)
	}

	var nilT *tune.Tuner
	if dec := nilT.PlanBatch(req); dec != (plan.BatchDecision{}) {
		t.Errorf("nil decision = %+v, want zero", dec)
	}
	nilT.Observe(plan.Observation{Signature: "x", Elems: 1, Elapsed: time.Second})
	if sts := nilT.States(); sts != nil {
		t.Errorf("nil states = %v, want nil", sts)
	}
}

// TestPeekDoesNotCreateState: Session.Plan and Explain peek at the decision
// without evaluating; PlanBatch must never create signature state, or a
// peek would perturb the calibration loop.
func TestPeekDoesNotCreateState(t *testing.T) {
	tu := tune.New(tune.Config{Clock: testClock()})
	for i := 0; i < 5; i++ {
		tu.PlanBatch(plan.BatchRequest{Signature: "peeked", Workers: 4, Elems: 1 << 20})
	}
	if sts := tu.States(); len(sts) != 0 {
		t.Fatalf("peeks created state: %v", sts)
	}
}

// TestWorkerFold: the decision caps workers at the batch count — spreading
// 3 batches over 8 workers only adds spawn and merge overhead.
func TestWorkerFold(t *testing.T) {
	tu := tune.New(tune.Config{Clock: testClock(), Seed: 0})
	sig := "fold"
	const elems = 2048
	// Baseline, then the sweep's grid for 2048 elems is {512, 1024, 2048}.
	tu.Observe(plan.Observation{Signature: sig, Elems: elems, Elapsed: elapsedFor(elems, 1000)})
	dec := tu.PlanBatch(plan.BatchRequest{Signature: sig, Workers: 8, Elems: elems})
	if dec.BatchElems == 0 {
		t.Fatal("expected a sweep probe")
	}
	batches := (elems + dec.BatchElems - 1) / dec.BatchElems
	if batches < 8 {
		if dec.Workers != int(batches) {
			t.Errorf("workers = %d, want folded to batch count %d", dec.Workers, batches)
		}
	} else if dec.Workers != 0 {
		t.Errorf("workers = %d, want 0 (no override when batches >= workers)", dec.Workers)
	}
}
