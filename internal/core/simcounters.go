package core

import (
	"time"

	"mozart/internal/memsim"
	"mozart/internal/obs"
	ir "mozart/internal/plan"
	"mozart/internal/planlower"
)

// Simulated hardware counters (Options.SimulateCounters): each
// evaluation's plan IR is lowered into the memsim machine model
// (internal/planlower) and replayed through the simulated cache
// hierarchy, and the per-stage L1/L2/LLC hit/miss counts, DRAM traffic,
// and modeled runtime are emitted as EvStageCounters events on the
// session's tracer. Metric sinks fold them into the same per-stage rows
// as the measured counters, so a /metrics scrape shows measured and
// modeled behaviour side by side.
//
// Simulation cost is bounded two ways: the machine model caps the traced
// element count (Machine.SimMaxElems), and the session caches results by
// plan rendering — iterative workloads that evaluate the same shape every
// round (the paper's haversine/CRIME loops) simulate once and replay the
// cached counters thereafter.

// simKey is the simulation cache key: the plan's structural signature
// (plan.Signature — stage pipelines, split labels, element counts and
// widths, pipelining; NOT binding ids, which shift between otherwise
// identical evaluations, so plan.Render is not a usable key) composed with
// the two execution knobs the simulation also depends on and a Tuner
// varies between evaluations of the same shape: the worker count and the
// batch policy.
type simKey struct {
	sig     string
	workers int
	batch   ir.BatchPolicy
}

// simCounters is the session's per-(signature, workers, batch) cache.
type simCounters struct {
	cache map[simKey][]obs.CacheCounters
}

// emitSimCounters simulates (or recalls) the plan's per-stage counters
// and emits one EvStageCounters event per stage. Called between the plan
// event and execution; never fails the evaluation — a plan the lowering
// cannot size (unknown element counts) simply emits nothing. Workers and
// batch honor the plan's tuner overrides, so the simulated rows describe
// the evaluation that actually runs.
func (s *Session) emitSimCounters(tr obs.Tracer, p *ir.Plan) {
	workers := s.opts.Workers
	if p.Workers > 0 && p.Workers < workers {
		workers = p.Workers
	}
	if workers < 1 {
		workers = 1
	}
	key := simKey{sig: ir.Signature(p), workers: workers, batch: p.Batch}
	counters, ok := s.sim.cache[key]
	if !ok {
		per := planlower.SimulateCounters(p, planlower.Options{Name: "live"},
			memsim.DefaultMachine(), workers)
		counters = make([]obs.CacheCounters, len(per))
		for i, c := range per {
			counters[i] = obs.CacheCounters{
				L1Hits: c.L1Hits, L1Misses: c.L1Misses,
				L2Hits: c.L2Hits, L2Misses: c.L2Misses,
				LLCHits: c.LLCHits, LLCMisses: c.LLCMisses,
				DRAMBytes: c.DRAMBytes,
				ModelNS:   int64(c.Seconds * 1e9),
			}
		}
		if s.sim.cache == nil {
			s.sim.cache = map[simKey][]obs.CacheCounters{}
		}
		s.sim.cache[key] = counters
	}
	now := time.Now()
	for i, c := range counters {
		if i >= len(p.Stages) {
			break
		}
		tr.Emit(obs.Event{Kind: obs.EvStageCounters, Time: now, Stage: i,
			Worker: obs.RuntimeLane, Calls: p.Stages[i].Pipeline(),
			Split: p.Stages[i].SplitLabel(), Counters: c})
	}
}
