package core

import (
	"context"
	"errors"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mozart/internal/obs"
)

// recordingTracer captures every emitted event. Safe for concurrent use.
type recordingTracer struct {
	mu     sync.Mutex
	events []obs.Event
}

func (r *recordingTracer) Emit(e obs.Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

func (r *recordingTracer) all() []obs.Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]obs.Event(nil), r.events...)
}

func (r *recordingTracer) ofKind(k obs.EventKind) []obs.Event {
	var out []obs.Event
	for _, e := range r.all() {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// TestTracerStageOrder: a traced evaluation emits session-begin, then the
// plan, then for each stage a begin/end bracket enclosing its batches, and a
// final session-end. The pipelined three-call chain plans into one stage, so
// the batch spans must carry the full call pipeline.
func TestTracerStageOrder(t *testing.T) {
	schedulerVariants(t, func(t *testing.T, dynamic bool) {
		const n = 64
		tr := &recordingTracer{}
		a, out := seq(n), make([]float64, n)
		s := NewSession(Options{Workers: 2, BatchElems: 8,
			DynamicScheduling: dynamic, Tracer: tr})
		s.Call(testLog1p, saUnary("log1p"), n, a, out)
		s.Call(testLog1p, saUnary("log1p"), n, out, out)
		if err := s.EvaluateContext(context.Background()); err != nil {
			t.Fatal(err)
		}

		ev := tr.all()
		if len(ev) == 0 {
			t.Fatal("no events recorded")
		}
		if ev[0].Kind != obs.EvSessionBegin {
			t.Errorf("first event = %v, want session-begin", ev[0].Kind)
		}
		if ev[1].Kind != obs.EvPlan || ev[1].Stages != 1 {
			t.Errorf("second event = %v (stages=%d), want plan with 1 stage", ev[1].Kind, ev[1].Stages)
		}
		if last := ev[len(ev)-1]; last.Kind != obs.EvSessionEnd || last.Dur <= 0 {
			t.Errorf("last event = %v (dur=%v), want session-end with positive duration", last.Kind, last.Dur)
		}

		// The stage bracket: exactly one begin and one end, begin before any
		// batch, end after every batch.
		var beginIdx, endIdx = -1, -1
		var batchIdxs []int
		for i, e := range ev {
			switch e.Kind {
			case obs.EvStageBegin:
				if beginIdx != -1 {
					t.Fatal("more than one stage-begin")
				}
				beginIdx = i
			case obs.EvStageEnd:
				if endIdx != -1 {
					t.Fatal("more than one stage-end")
				}
				endIdx = i
			case obs.EvBatch:
				batchIdxs = append(batchIdxs, i)
			}
		}
		if beginIdx == -1 || endIdx == -1 {
			t.Fatal("missing stage bracket")
		}
		if len(batchIdxs) != n/8 {
			t.Errorf("batches = %d, want %d", len(batchIdxs), n/8)
		}
		for _, bi := range batchIdxs {
			if bi < beginIdx || bi > endIdx {
				t.Errorf("batch event at %d escapes stage bracket [%d,%d]", bi, beginIdx, endIdx)
			}
		}

		begin := ev[beginIdx]
		if begin.Calls != "log1p -> log1p" {
			t.Errorf("stage calls = %q, want pipelined pair", begin.Calls)
		}
		if begin.Elems != n || begin.Workers != 2 || begin.BatchElems != 8 {
			t.Errorf("stage shape = elems %d workers %d batch %d", begin.Elems, begin.Workers, begin.BatchElems)
		}
		for _, bi := range batchIdxs {
			b := ev[bi]
			if b.Calls != "log1p -> log1p" || b.Attempt != 1 {
				t.Errorf("batch event %+v: want pipeline calls and attempt 1", b)
			}
			if b.SplitNS < 0 || b.TaskNS <= 0 {
				t.Errorf("batch phase timings split=%d task=%d", b.SplitNS, b.TaskNS)
			}
		}
	})
}

// TestTracerWorkerLanesDisjoint: under static partitioning the per-batch
// element ranges must tile [0, n) exactly, and each worker's ranges must be
// disjoint from every other worker's.
func TestTracerWorkerLanesDisjoint(t *testing.T) {
	const n = 96
	tr := &recordingTracer{}
	a, out := seq(n), make([]float64, n)
	s := NewSession(Options{Workers: 3, BatchElems: 8, Tracer: tr})
	s.Call(testLog1p, saUnary("log1p"), n, a, out)
	if err := s.EvaluateContext(context.Background()); err != nil {
		t.Fatal(err)
	}

	type span struct{ w, start, end int64 }
	var spans []span
	for _, e := range tr.ofKind(obs.EvBatch) {
		if e.Worker < 0 || e.Worker >= 3 {
			t.Fatalf("batch on worker %d, want [0,3)", e.Worker)
		}
		spans = append(spans, span{int64(e.Worker), e.Start, e.End})
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
	var next int64
	for _, sp := range spans {
		if sp.start != next {
			t.Fatalf("batch ranges do not tile [0,%d): gap/overlap at %d (got start %d)", n, next, sp.start)
		}
		next = sp.end
	}
	if next != n {
		t.Fatalf("batch ranges end at %d, want %d", next, n)
	}
	// Static partitioning hands each worker one contiguous region: a
	// worker's spans never interleave with another's.
	lastWorker := int64(-1)
	seen := map[int64]bool{}
	for _, sp := range spans {
		if sp.w != lastWorker {
			if seen[sp.w] {
				t.Fatalf("worker %d's region interleaves with another worker's", sp.w)
			}
			seen[sp.w] = true
			lastWorker = sp.w
		}
	}
}

// TestNilTracerInert: tracing must be purely observational. The same
// workload with and without a tracer produces identical results and
// identical execution-shape statistics.
func TestNilTracerInert(t *testing.T) {
	const n = 64
	run := func(tr obs.Tracer) ([]float64, StatsSnapshot) {
		a, out := seq(n), make([]float64, n)
		s := NewSession(Options{Workers: 2, BatchElems: 8, Tracer: tr})
		s.Call(testLog1p, saUnary("log1p"), n, a, out)
		if err := s.EvaluateContext(context.Background()); err != nil {
			t.Fatal(err)
		}
		return out, s.Stats()
	}
	plain, pst := run(nil)
	tr := &recordingTracer{}
	traced, tst := run(tr)
	for i := range plain {
		if plain[i] != traced[i] {
			t.Fatalf("results diverge at %d: %v vs %v", i, plain[i], traced[i])
		}
	}
	if pst.Batches != tst.Batches || pst.Stages != tst.Stages || pst.Calls != tst.Calls {
		t.Errorf("tracing changed execution shape: %+v vs %+v", pst, tst)
	}
	if len(tr.all()) == 0 {
		t.Error("the traced run should have emitted events")
	}
}

// TestTracerRetryEvents: a transient library fault under RetryPolicy emits
// one retry event carrying the fault, and the replayed batch arrives with
// attempt 2.
func TestTracerRetryEvents(t *testing.T) {
	const n = 64
	var calls atomic.Int64
	tr := &recordingTracer{}
	a, out := seq(n), make([]float64, n)
	s := NewSession(Options{Workers: 2, BatchElems: 8, Tracer: tr,
		RetryPolicy: RetryPolicy{MaxAttempts: 3, Sleep: noSleep}})
	s.Call(accumulateOnce(3, &calls), saUnary("acc"), n, a, out)
	if err := s.EvaluateContext(context.Background()); err != nil {
		t.Fatal(err)
	}

	retries := tr.ofKind(obs.EvRetry)
	if len(retries) != 1 {
		t.Fatalf("retry events = %d, want 1", len(retries))
	}
	r := retries[0]
	if r.Attempt != 1 || r.Detail == "" {
		t.Errorf("retry event %+v: want attempt 1 and a fault detail", r)
	}
	var replayed bool
	for _, b := range tr.ofKind(obs.EvBatch) {
		if b.Attempt == 2 && b.Start == r.Start && b.End == r.End {
			replayed = true
		}
	}
	if !replayed {
		t.Error("no batch event with attempt 2 matching the retried range")
	}
}

// TestTracerFallbackEvent: a persistently faulty splitter under
// FallbackWholeCall emits a fallback span carrying the original fault, and
// the stage still closes successfully.
func TestTracerFallbackEvent(t *testing.T) {
	const n = 48
	var calls atomic.Int64
	sp := flakySplitter{calls: &calls, failN: 0, mode: "error"}
	tr := &recordingTracer{}
	a, out := seq(n), make([]float64, n)
	s := NewSession(Options{Workers: 2, BatchElems: 8, Tracer: tr,
		FallbackPolicy: FallbackWholeCall})
	s.Call(testLog1p, saFlakyUnary("flaky", sp), n, a, out)
	if err := s.EvaluateContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i] != math.Log1p(a[i]) {
			t.Fatalf("out[%d] wrong after fallback", i)
		}
	}

	fbs := tr.ofKind(obs.EvFallback)
	if len(fbs) != 1 {
		t.Fatalf("fallback events = %d, want 1", len(fbs))
	}
	if fbs[0].Detail == "" || fbs[0].Dur <= 0 {
		t.Errorf("fallback event %+v: want the original fault and a span duration", fbs[0])
	}
	ends := tr.ofKind(obs.EvStageEnd)
	if len(ends) != 1 || ends[0].Detail != "" {
		t.Errorf("stage-end events %+v: want one successful close", ends)
	}
}

// TestTracerBreakerEvents: the quarantine lifecycle emits breaker
// transitions — open on the trip, half-open on the cooldown probe, closed on
// recovery.
func TestTracerBreakerEvents(t *testing.T) {
	const n = 32
	var broken atomic.Bool
	var splits atomic.Int64
	sp := switchableSplitter{broken: &broken, splits: &splits}
	tr := &recordingTracer{}

	now := time.Unix(0, 0)
	s := NewSession(Options{Workers: 2, BatchElems: 8, Tracer: tr,
		FallbackPolicy: FallbackQuarantine,
		Breaker: BreakerPolicy{Threshold: 1, Cooldown: time.Minute,
			Now: func() time.Time { return now }}})

	eval := func() {
		t.Helper()
		a, out := seq(n), make([]float64, n)
		s.Call(testLog1p, saFlakyUnary("flaky", sp), n, a, out)
		if err := s.EvaluateContext(context.Background()); err != nil {
			t.Fatalf("evaluate: %v", err)
		}
	}

	broken.Store(true)
	eval() // trips: open
	broken.Store(false)
	now = now.Add(2 * time.Minute)
	eval() // cooldown elapsed: half-open probe succeeds, closes

	var states []string
	for _, e := range tr.ofKind(obs.EvBreaker) {
		if e.Calls != "flaky" {
			t.Errorf("breaker event names %q, want flaky", e.Calls)
		}
		states = append(states, e.Detail)
	}
	want := []string{"open", "half-open", "closed"}
	if len(states) != len(want) {
		t.Fatalf("breaker transitions = %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("breaker transitions = %v, want %v", states, want)
		}
	}
}

// TestTracerAdmissionEvent: with a Governor active every split stage records
// its admission, carrying the reserved footprint and the admitted shape.
func TestTracerAdmissionEvent(t *testing.T) {
	const n = 64
	tr := &recordingTracer{}
	a, out := seq(n), make([]float64, n)
	s := NewSession(Options{Workers: 2, BatchElems: 8, Tracer: tr,
		Governor: NewGovernor(1 << 30)})
	s.Call(testLog1p, saUnary("log1p"), n, a, out)
	if err := s.EvaluateContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	adm := tr.ofKind(obs.EvAdmission)
	if len(adm) != 1 {
		t.Fatalf("admission events = %d, want 1", len(adm))
	}
	if adm[0].Bytes <= 0 || adm[0].Workers != 2 || adm[0].BatchElems != 8 {
		t.Errorf("admission event %+v: want reserved bytes and the admitted shape", adm[0])
	}
}

// TestEvaluateContextCancelMidStage: canceling the caller's context from
// inside a library call stops the evaluation at the next batch boundary and
// surfaces context.Canceled through the error chain — on both schedulers.
func TestEvaluateContextCancelMidStage(t *testing.T) {
	schedulerVariants(t, func(t *testing.T, dynamic bool) {
		const n = 64
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()

		var calls atomic.Int64
		cancelDuringCall := func(args []any) (any, error) {
			if calls.Add(1) == 1 {
				cancel()
			}
			return testLog1p(args)
		}

		tr := &recordingTracer{}
		a, out := seq(n), make([]float64, n)
		s := NewSession(Options{Workers: 1, BatchElems: 8,
			DynamicScheduling: dynamic, Tracer: tr})
		s.Call(cancelDuringCall, saUnary("log1p"), n, a, out)

		err := s.EvaluateContext(ctx)
		if err == nil {
			t.Fatal("want cancellation to fail the evaluation")
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("errors.Is(err, context.Canceled) = false; err = %v", err)
		}
		var serr *StageError
		if !errors.As(err, &serr) || serr.Origin != OriginCanceled {
			t.Errorf("want a canceled-origin StageError, got %v", err)
		}
		// The in-flight batch ran to completion (library calls cannot be
		// preempted); later batches never started.
		if got := calls.Load(); got != 1 {
			t.Errorf("library calls after cancel = %d, want 1", got)
		}
		// The trace still closes cleanly: session-end is the final event and
		// carries the failure.
		ev := tr.all()
		last := ev[len(ev)-1]
		if last.Kind != obs.EvSessionEnd || last.Detail == "" {
			t.Errorf("last event = %+v, want session-end carrying the error", last)
		}
	})
}

// TestSimulateCountersEvents: under Options.SimulateCounters every traced
// evaluation emits one stage-counters event per plan stage, carrying a
// non-trivial memsim replay of the real plan, keyed so metric sinks fold
// it into the executed stage's row. The second identical evaluation hits
// the plan-signature cache and emits identical counters.
func TestSimulateCountersEvents(t *testing.T) {
	const n = 4096
	tr := &recordingTracer{}
	metrics := obs.NewMetrics()
	a, out := seq(n), make([]float64, n)
	s := NewSession(Options{Workers: 2, BatchElems: 512,
		Tracer: obs.Multi(tr, metrics), SimulateCounters: true})
	eval := func() {
		t.Helper()
		s.Call(testLog1p, saUnary("log1p"), n, a, out)
		s.Call(testLog1p, saUnary("log1p"), n, out, out)
		if err := s.EvaluateContext(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	eval()

	evs := tr.ofKind(obs.EvStageCounters)
	if len(evs) != 1 {
		t.Fatalf("stage-counters events = %d, want 1 (one pipelined stage)", len(evs))
	}
	e := evs[0]
	if e.Stage != 0 || e.Worker != obs.RuntimeLane {
		t.Errorf("event placement %+v", e)
	}
	if e.Calls != "log1p -> log1p" {
		t.Errorf("event calls = %q, want the executed pipeline", e.Calls)
	}
	c := e.Counters
	if c.Zero() {
		t.Fatal("counters are all zero")
	}
	if c.L1Hits+c.L1Misses == 0 || c.DRAMBytes <= 0 || c.ModelNS <= 0 {
		t.Errorf("counters not populated: %+v", c)
	}
	// Accesses flow down the hierarchy: L2 sees at most L1's misses.
	if c.L2Hits+c.L2Misses > c.L1Misses {
		t.Errorf("L2 accesses (%d) exceed L1 misses (%d)", c.L2Hits+c.L2Misses, c.L1Misses)
	}

	// The metrics sink folded the counters into the executed stage's row.
	sn := metrics.Snapshot()
	if len(sn.Stages) != 1 {
		t.Fatalf("metrics stages = %d, want 1 (sim row merged with executed row)", len(sn.Stages))
	}
	if sn.Stages[0].Sim != c {
		t.Errorf("metrics sim row %+v != emitted counters %+v", sn.Stages[0].Sim, c)
	}
	if sn.Stages[0].Batches == 0 {
		t.Error("the merged row lost the measured counters")
	}

	// Second identical evaluation: cached simulation, identical counters.
	eval()
	evs = tr.ofKind(obs.EvStageCounters)
	if len(evs) != 2 {
		t.Fatalf("stage-counters events after second eval = %d, want 2", len(evs))
	}
	if evs[1].Counters != c {
		t.Errorf("cached replay differs: %+v vs %+v", evs[1].Counters, c)
	}
	if got := len(s.sim.cache); got != 1 {
		t.Errorf("plan-signature cache entries = %d, want 1", got)
	}
}

// BenchmarkEvaluatePipeline measures a three-call pipelined evaluation with
// tracing disabled (the nil-tracer fast path) and with both shipped sinks
// attached, so the per-batch tracing overhead is visible in benchstat.
func BenchmarkEvaluatePipeline(b *testing.B) {
	const n = 1 << 16
	bench := func(b *testing.B, mk func() obs.Tracer) {
		a, out := seq(n), make([]float64, n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := NewSession(Options{Workers: 2, BatchElems: 4096, Tracer: mk()})
			s.Call(testLog1p, saUnary("log1p"), n, a, out)
			s.Call(testLog1p, saUnary("log1p"), n, out, out)
			if err := s.EvaluateContext(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("nil-tracer", func(b *testing.B) {
		bench(b, func() obs.Tracer { return nil })
	})
	b.Run("chrome+metrics", func(b *testing.B) {
		bench(b, func() obs.Tracer {
			return obs.Multi(obs.NewChromeTrace(), obs.NewMetrics())
		})
	})
}
