package core

import (
	"math/rand"
	"strings"
	"testing"
)

func genVecArgs(n int) func(seed int64) []any {
	return func(seed int64) []any {
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, n)
		out := make([]float64, n)
		for i := range a {
			a[i] = rng.Float64() + 0.1
		}
		return []any{n, a, out}
	}
}

func eqAny(got, want any) bool {
	switch g := got.(type) {
	case []float64:
		w, ok := want.([]float64)
		if !ok || len(g) != len(w) {
			return false
		}
		for i := range g {
			if g[i] != w[i] {
				return false
			}
		}
		return true
	case float64:
		w, ok := want.(float64)
		d := g - w
		return ok && d < 1e-9 && d > -1e-9
	case int:
		return got == want
	}
	return false
}

// TestCheckAnnotationSound: a correctly annotated elementwise function
// passes the fuzz check.
func TestCheckAnnotationSound(t *testing.T) {
	if err := CheckAnnotation(CheckSpec{Fn: testLog1p, Annotation: saUnary("vdLog1p"), Gen: genVecArgs(777), Eq: eqAny, Config: CheckConfig{Seed: 1}}); err != nil {
		t.Fatal(err)
	}
	// A sound reduction.
	genSum := func(seed int64) []any {
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, 500)
		for i := range a {
			a[i] = rng.Float64()
		}
		return []any{a}
	}
	if err := CheckAnnotation(CheckSpec{Fn: fnSum, Annotation: saSum, Gen: genSum, Eq: eqAny, Config: CheckConfig{Seed: 2}}); err != nil {
		t.Fatal(err)
	}
}

// TestCheckAnnotationCatchesUnsound: annotating a prefix-scan (whose
// elements depend on earlier elements) as elementwise-splittable is caught.
func TestCheckAnnotationCatchesUnsound(t *testing.T) {
	prefixSum := func(args []any) (any, error) {
		a, out := args[1].([]float64), args[2].([]float64)
		acc := 0.0
		for i := range a {
			acc += a[i]
			out[i] = acc
		}
		return nil, nil
	}
	err := CheckAnnotation(CheckSpec{Fn: prefixSum, Annotation: saUnary("prefixSum"), Gen: genVecArgs(300), Eq: eqAny, Config: CheckConfig{Seed: 3}})
	if err == nil {
		t.Fatal("the unsound prefix-sum annotation should be caught")
	}
	if !strings.Contains(err.Error(), "unsound") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestCheckAnnotationCatchesUnsoundReduction: a non-associative "reduction"
// (subtraction) is caught.
func TestCheckAnnotationCatchesUnsoundReduction(t *testing.T) {
	sub := func(args []any) (any, error) {
		s := 0.0
		for _, x := range args[0].([]float64) {
			s = x - s
		}
		return s, nil
	}
	gen := func(seed int64) []any {
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, 257)
		for i := range a {
			a[i] = rng.Float64() * 10
		}
		return []any{a}
	}
	if err := CheckAnnotation(CheckSpec{Fn: sub, Annotation: saSum, Gen: gen, Eq: eqAny, Config: CheckConfig{Seed: 4}}); err == nil {
		t.Fatal("the non-associative reduction should be caught")
	}
}

// TestCheckAnnotationArgMismatch: gen arity errors are reported.
func TestCheckAnnotationArgMismatch(t *testing.T) {
	gen := func(int64) []any { return []any{1} }
	if err := CheckAnnotation(CheckSpec{Fn: testLog1p, Annotation: saUnary("f"), Gen: gen, Eq: eqAny, Config: CheckConfig{}}); err == nil {
		t.Fatal("want arity error")
	}
}

// TestCheckAnnotationWholeError: failures of the function itself surface.
func TestCheckAnnotationWholeError(t *testing.T) {
	boom := func([]any) (any, error) { return nil, errBoom }
	if err := CheckAnnotation(CheckSpec{Fn: boom, Annotation: saSum, Gen: func(int64) []any { return []any{[]float64{1}} }, Eq: eqAny, Config: CheckConfig{Trials: 1}}); err == nil {
		t.Fatal("want whole-run error")
	}
}

var errBoom = &checkErr{}

type checkErr struct{}

func (*checkErr) Error() string { return "boom" }
