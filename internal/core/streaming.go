package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"mozart/internal/obs"
	"mozart/internal/spill"
)

// This file is the OutOfCore rung of the Governor's pressure ladder: a
// stage whose §5.2 working set (total × Σ elemBytes) exceeds the whole
// byte budget executes in admission-bounded element windows. Each window
// is admitted against the Governor, split, executed with the stage's
// normal batch/worker machinery, eagerly merged down to one partial per
// output, and released — so the modeled in-flight footprint never exceeds
// the budget even though the logical input is arbitrarily larger.
//
// Window partials accumulate one of two ways, chosen per output:
//
//   - fold: Merge is associative (§3.4), so the running accumulator folds
//     each window partial as it arrives — acc = Merge(acc, partial). The
//     accumulator is the only merge-side state on the heap.
//   - spill: when the output's splitter implements PieceCodec, each window
//     partial is encoded and appended to a CRC-framed temp-file store
//     (internal/spill); the finale replays the frames in order and folds
//     them incrementally. This keeps concatenation-style outputs off the
//     heap until the caller actually forces the merged value.

// shouldStream reports whether a stage must take the streaming path: the
// session opted in, a budgeted Governor is present, and the stage's whole
// working set cannot fit under the budget even in principle.
func (s *Session) shouldStream(total, sumElemBytes int64) bool {
	if !s.opts.OutOfCore || total <= 0 || sumElemBytes <= 0 {
		return false
	}
	g := s.opts.Governor
	if g == nil {
		return false
	}
	b := g.Budget()
	if b <= 0 {
		return false
	}
	return total > b/sumElemBytes
}

// safeSplitAt is SplitAt behind panic isolation, like the other safe*
// wrappers: splitters are untrusted plugin code.
func (s *Session) safeSplitAt(sp SplitterAt, v any, t SplitType, start, end int64) (view any, err error) {
	defer s.recoverPanic(&err)
	return sp.SplitAt(v, t, start, end)
}

// executeStreaming runs one stage out of core. inputs are the stage's
// resolved split inputs; total and sumElemBytes the §5.2 element count and
// byte width; batch and workers the pre-admission execution shape.
func (s *Session) executeStreaming(ctx context.Context, si int, st *planStage, inputs []resolvedInput, sumElemBytes, total, batch int64, workers int) error {
	g := s.opts.Governor

	// Window size: half the budget in modeled bytes, so a release-then-admit
	// of consecutive windows can overlap with concurrent sessions without
	// saturating the budget, clamped to at least one batch of progress.
	windowElems := clamp64(g.Budget()/(2*sumElemBytes), 1, total)
	if batch > windowElems {
		batch = windowElems
	}
	if int64(workers) > windowElems {
		workers = int(windowElems)
	}
	if workers < 1 {
		workers = 1
	}

	// Stage split label, same rule as the in-core path.
	split := inputs[0].r.t.String()
	for _, in := range inputs {
		if in.info.ElemBytes != 0 {
			split = in.r.t.String()
			break
		}
	}
	ex := &stageExec{
		st: st, inputs: inputs, viewers: resolveViewers(inputs),
		si: si, calls: stageCalls(st), split: split, elemBytes: sumElemBytes,
	}
	if s.opts.RetryPolicy.enabled() {
		ex.mutInPlace = mutInPlaceInputs(st, inputs)
	}

	// Views: when every split input's splitter can produce window views
	// (CapWindow in its capability set), each window executes over a
	// windowed copy of the stage whose inputs cover only [wlo, whi) —
	// generator-backed inputs synthesize just the window. Otherwise the
	// originals stay materialized and the runtime drives absolute split
	// coordinates.
	useViews := len(inputs) > 0
	for _, in := range inputs {
		if !CapabilitiesOf(in.r.splitter).Has(CapWindow) {
			useViews = false
			break
		}
	}

	s.notePressure(g, si, ex.calls, PressureOutOfCore)
	if tr := s.opts.Tracer; tr != nil {
		tr.Emit(obs.Event{Kind: obs.EvStageBegin, Time: time.Now(), Stage: si,
			Worker: obs.RuntimeLane, Calls: ex.calls, Split: ex.split,
			Elems: total, Bytes: sumElemBytes, BatchElems: batch, Workers: workers,
			CacheBytes: s.opts.cacheTargetBytes(), Detail: "out-of-core"})
	}

	// Per-output accumulation state. Spillable outputs (splitter implements
	// PieceCodec) go to the frame store; the rest fold in place.
	type outAcc struct {
		codec  PieceCodec
		stream *spill.Stream
		acc    any
		accSet bool
	}
	accs := make([]*outAcc, len(st.outputs))
	var store *spill.Store
	defer func() {
		if store != nil {
			store.Close()
		}
	}()
	for oi, out := range st.outputs {
		a := &outAcc{}
		if codec, ok := out.r.splitter.(PieceCodec); ok && CapabilitiesOf(out.r.splitter).Has(CapCodec) {
			if store == nil {
				var err error
				store, err = spill.NewStore(s.opts.SpillDir)
				if err != nil {
					return s.stageErr(st, OriginInternal, fmt.Errorf("spill store: %w", err))
				}
			}
			stream, err := store.Stream(fmt.Sprintf("out%d", out.b.id))
			if err != nil {
				return s.stageErr(st, OriginInternal, fmt.Errorf("spill stream: %w", err))
			}
			a.codec, a.stream = codec, stream
		}
		accs[oi] = a
	}

	// The window loop: admit → (view-)split → execute → merge → spill or
	// fold → release, one admission-bounded window at a time.
	runWindow := func(wlo, whi int64) error {
		wlen := whi - wlo
		req := wlen * sumElemBytes
		if b := g.Budget(); req > b && b > 0 {
			req = b
		}
		t0 := time.Now()
		admitted, err := g.admit(ctx, req)
		wait := time.Since(t0)
		s.stats.add(&s.stats.AdmissionWaitNS, wait)
		if err != nil {
			return s.stageErr(st, originFromContext(err), err)
		}
		defer g.release(admitted)
		if tr := s.opts.Tracer; tr != nil {
			tr.Emit(obs.Event{Kind: obs.EvAdmission, Time: time.Now(), Dur: wait,
				Stage: si, Worker: obs.RuntimeLane, Calls: ex.calls,
				Start: wlo, End: whi, Bytes: admitted, BatchElems: batch, Workers: workers})
		}

		wex, lo, hi := ex, wlo, whi
		if useViews {
			winputs := make([]resolvedInput, len(inputs))
			for i, in := range inputs {
				sa, ok := in.r.splitter.(SplitterAt)
				if !ok {
					return s.stageErr(st, OriginInternal, fmt.Errorf("splitter for %s declares CapWindow but implements no SplitAt", in.r.t))
				}
				view, err := s.safeSplitAt(sa, in.val, in.r.t, wlo, whi)
				if err != nil {
					return s.stageErr(st, OriginSplit, fmt.Errorf("window split of %s [%d,%d): %w", in.r.t, wlo, whi, err))
				}
				winputs[i] = in
				winputs[i].val = view
			}
			wex = &stageExec{st: st, inputs: winputs, viewers: resolveViewers(winputs),
				si: si, calls: ex.calls, split: ex.split, elemBytes: sumElemBytes}
			if s.opts.RetryPolicy.enabled() {
				wex.mutInPlace = mutInPlaceInputs(st, winputs)
			}
			lo, hi = 0, wlen
		}

		partials, err := s.runRange(ctx, wex, lo, hi, batch, workers)
		if err != nil {
			return err
		}

		t1 := time.Now()
		merges := 0
		for oi, out := range st.outputs {
			ps := partials[out.b.id]
			if len(ps) == 0 {
				continue
			}
			piece, err := s.mergePieces(out.r, ps)
			if err != nil {
				return s.stageErr(st, OriginMerge, fmt.Errorf("window merge output %d: %w", oi, err))
			}
			merges++
			a := accs[oi]
			if a.codec != nil {
				frame, err := a.codec.EncodePiece(piece, out.r.t)
				if err != nil {
					return s.stageErr(st, OriginMerge, fmt.Errorf("encode spill frame output %d: %w", oi, err))
				}
				if _, err := a.stream.Append(frame); err != nil {
					return s.stageErr(st, OriginInternal, fmt.Errorf("spill append output %d: %w", oi, err))
				}
				s.stats.add(&s.stats.SpilledBytes, time.Duration(len(frame)))
				s.stats.add(&s.stats.SpilledFrames, 1)
				if tr := s.opts.Tracer; tr != nil {
					tr.Emit(obs.Event{Kind: obs.EvSpill, Time: time.Now(), Stage: si,
						Worker: obs.RuntimeLane, Calls: ex.calls, Split: ex.split,
						Start: wlo, End: whi, Bytes: int64(len(frame)), Detail: "append"})
				}
				continue
			}
			if !a.accSet {
				a.acc, a.accSet = piece, true
				continue
			}
			folded, err := s.mergePieces(out.r, []any{a.acc, piece})
			if err != nil {
				return s.stageErr(st, OriginMerge, fmt.Errorf("fold output %d: %w", oi, err))
			}
			a.acc = folded
		}
		s.stats.add(&s.stats.MergeNS, time.Since(t1))
		if merges > 0 {
			s.emitMerge(ex, obs.RuntimeLane, t1)
		}
		return nil
	}

	for wlo := int64(0); wlo < total; wlo += windowElems {
		whi := wlo + windowElems
		if whi > total {
			whi = total
		}
		if err := ctx.Err(); err != nil {
			return s.stageErr(st, originFromContext(err), err)
		}
		if err := runWindow(wlo, whi); err != nil {
			return err
		}
	}

	// Finale: replay spilled frames in order (CRC-verified) and fold them
	// incrementally; fold-mode outputs already hold their accumulator.
	t2 := time.Now()
	for oi, out := range st.outputs {
		a := accs[oi]
		if a.codec != nil {
			err := a.stream.Replay(func(seq uint32, payload []byte) error {
				piece, err := a.codec.DecodePiece(payload, out.r.t)
				if err != nil {
					return fmt.Errorf("decode spill frame %d: %w", seq, err)
				}
				if !a.accSet {
					a.acc, a.accSet = piece, true
					return nil
				}
				folded, err := s.mergePieces(out.r, []any{a.acc, piece})
				if err != nil {
					return err
				}
				a.acc = folded
				return nil
			})
			if err != nil {
				return s.stageErr(st, OriginMerge, fmt.Errorf("spill replay output %d: %w", oi, err))
			}
			if tr := s.opts.Tracer; tr != nil {
				tr.Emit(obs.Event{Kind: obs.EvSpill, Time: time.Now(), Stage: si,
					Worker: obs.RuntimeLane, Calls: ex.calls, Split: ex.split,
					Bytes: a.stream.Bytes(), Elems: a.stream.Frames(), Detail: "replay"})
			}
		}
		if !a.accSet {
			merged, err := s.mergePieces(out.r, nil)
			if err != nil {
				return s.stageErr(st, OriginMerge, fmt.Errorf("merge output %d: %w", oi, err))
			}
			a.acc = merged
		}
		out.b.val = a.acc
		out.b.hasVal = true
		out.b.ready = true
		out.b.discarded = false
	}
	s.stats.add(&s.stats.MergeNS, time.Since(t2))
	s.finishStageBindings(st)
	s.stats.add(&s.stats.StreamedStages, 1)

	// The squeeze is over: the stage's working set has been released, so
	// the governor's level returns to normal (MaxLevel keeps the episode).
	s.notePressure(g, si, ex.calls, PressureNormal)
	return nil
}

// runRange executes [lo, hi) of a stage with static contiguous partitioning
// across workers — the window-scoped core of the static scheduler — and
// returns, per output binding id, the worker partials in element order.
func (s *Session) runRange(ctx context.Context, ex *stageExec, lo, hi, batch int64, workers int) (map[int][]any, error) {
	total := hi - lo
	if total <= 0 {
		return map[int][]any{}, nil
	}
	if int64(workers) > total {
		workers = int(total)
	}
	if workers < 1 {
		workers = 1
	}
	per := total / int64(workers)
	rem := total % int64(workers)

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := s.pools.getOuts(workers)
	var wg sync.WaitGroup
	cur := lo
	for w := 0; w < workers; w++ {
		chunkHi := cur + per
		if int64(w) < rem {
			chunkHi++
		}
		wg.Add(1)
		w, wlo, whi := w, cur, chunkHi
		s.spawn(func() {
			defer wg.Done()
			s.workerLoop(wctx, ex, func() {
				results[w] = s.runWorker(wctx, ex, w, wlo, whi, batch)
			})
			if results[w].err != nil {
				cancel()
			}
		})
		cur = chunkHi
	}
	wg.Wait()

	errs := make([]error, len(results))
	for i, r := range results {
		errs[i] = r.err
	}
	if err := s.firstWorkerError(ex.st, errs); err != nil {
		return nil, err
	}
	out := map[int][]any{}
	for _, o := range ex.st.outputs {
		for _, r := range results {
			out[o.b.id] = append(out[o.b.id], r.partials[o.b.id]...)
		}
	}
	for i := range results {
		s.pools.putRaw(results[i].partials)
	}
	s.pools.putOuts(results)
	return out, nil
}
