package core

import (
	"sort"

	ir "mozart/internal/plan"
)

// This file converts the planner's private structures (planStage, resolved)
// into the exported plan IR (internal/plan). The IR is the single plan
// datum consumed by the executor (batch byte model, event strings), by
// internal/planlower (memsim models), and by Session.Plan / mozart.Explain
// (EXPLAIN rendering) — one plan, three consumers.

// renderResolved renders a resolution the way the IR records split types:
// "_" for broadcast, "deferred" when the splitter is resolved from the
// default registry at execution time (never the process-global unknown#N
// counter, which would make renderings nondeterministic), and the concrete
// split type otherwise.
func renderResolved(r resolved) string {
	switch {
	case r.broadcast:
		return "_"
	case r.deferred:
		return "deferred"
	default:
		return r.t.String()
	}
}

// buildIR mirrors a built (and classified) plan into the exported IR and
// links each planStage to its IR stage. It only reads session state: Info
// probes for input dimensions go through the panic-isolating wrapper and
// failures degrade to unknown (-1) dimensions.
func (s *Session) buildIR(p *plan) *ir.Plan {
	out := &ir.Plan{
		Batch:      s.opts.batchPolicy(),
		Pipelining: !s.opts.DisablePipelining,
	}
	if s.opts.DynamicScheduling {
		out.Mode = ir.ScheduleDynamic
	}
	out.Stages = make([]ir.Stage, len(p.stages))
	for si := range p.stages {
		out.Stages[si] = s.stageIR(&p.stages[si])
	}
	for si := range p.stages {
		p.stages[si].ir = &out.Stages[si]
	}
	p.ir = out
	return out
}

func (s *Session) stageIR(st *planStage) ir.Stage {
	outSet := map[int]bool{}
	for _, o := range st.outputs {
		outSet[o.b.id] = true
	}

	kind := ir.StageWhole
	var live []int
	liveSeen := map[int]bool{}
	calls := make([]ir.Call, len(st.calls))
	for ci, c := range st.calls {
		ic := ir.Call{Name: c.n.name, Args: make([]ir.Arg, len(c.args))}
		for i, r := range c.args {
			ic.Args[i] = ir.Arg{
				Binding:   c.n.args[i].id,
				Name:      c.n.sa.Params[i].Name,
				Broadcast: r.broadcast,
				Mut:       c.n.sa.Params[i].Mut,
				Split:     renderResolved(r),
				Deferred:  r.deferred,
			}
			if !r.broadcast {
				kind = ir.StageSplit
			}
		}
		if c.n.ret != nil {
			ic.Ret = &ir.Arg{
				Binding:   c.n.ret.id,
				Name:      "ret",
				Broadcast: c.ret.broadcast,
				Split:     renderResolved(c.ret),
				Deferred:  c.ret.deferred,
			}
			ic.RetDiscarded = !outSet[c.n.ret.id]
			if !c.ret.broadcast {
				ic.RetReduced = retIsReduced(c)
				if !ic.RetReduced && !liveSeen[c.n.ret.id] {
					liveSeen[c.n.ret.id] = true
					live = append(live, c.n.ret.id)
				}
			}
		}
		calls[ci] = ic
	}
	if kind == ir.StageWhole {
		live = nil // whole stages do not batch; no §5.2 working set
	}
	sort.Ints(live)

	ins := make([]ir.Value, len(st.inputs))
	for i, in := range st.inputs {
		ins[i] = s.inputIR(in)
	}
	outs := make([]ir.Value, len(st.outputs))
	for i, o := range st.outputs {
		outs[i] = ir.Value{Binding: o.b.id, Split: renderResolved(o.r), Elems: -1, ElemBytes: -1}
	}
	bcs := make([]int, len(st.broadcast))
	for i, b := range st.broadcast {
		bcs[i] = b.id
	}
	sort.Ints(bcs)

	return ir.Stage{
		Kind:      kind,
		Calls:     calls,
		Inputs:    ins,
		Outputs:   outs,
		Broadcast: bcs,
		Live:      live,
	}
}

// inputIR records a stage input, probing the splitter's Info for element
// count and width when the value is already materialized (deferred splits
// resolve against the default registry, exactly as the executor will). The
// splitter's capability set is recorded too, so Explain shows which inputs
// take the zero-copy view path.
func (s *Session) inputIR(in stageInput) ir.Value {
	v := ir.Value{Binding: in.b.id, Split: renderResolved(in.r), Elems: -1, ElemBytes: -1}
	v.Caps = CapabilitiesOf(in.r.splitter).String()
	if !in.b.hasVal {
		return v
	}
	r := in.r
	if r.deferred || r.splitter == nil {
		d, ok := lookupDefaultSplit(in.b.val)
		if !ok {
			return v
		}
		t, err := d.ctor(in.b.val)
		if err != nil {
			return v
		}
		r.splitter, r.t, r.deferred = d.splitter, t, false
		v.Caps = CapabilitiesOf(r.splitter).String()
	}
	if info, err := s.safeInfo(r.splitter, in.b.val, r.t); err == nil {
		v.Elems, v.ElemBytes = info.Elems, info.ElemBytes
	}
	return v
}

// retIsReduced reports whether a call's return value is a reduction or
// type-changing result: its split type matches no split argument of the
// call. Element-wise results (ret type equal to an argument's — including
// a generic bound to an argument) stay live per batch and count toward the
// §5.2 working set; reduced results (AddReduce, GroupSplit, fresh unknowns
// from filters and joins) do not.
func retIsReduced(c planCall) bool {
	for _, r := range c.args {
		if !r.broadcast && r.t.Equal(c.ret.t) {
			return false
		}
	}
	return true
}
