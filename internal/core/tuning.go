package core

import (
	"time"

	"mozart/internal/obs"
	ir "mozart/internal/plan"
)

// This file is the session side of the telemetry→plan loop: the planner
// consults Options.Tuner (a plan.BatchSource) while building each plan, and
// the evaluation reports measured actuals back through plan.Calibrator
// after execution. With no Tuner configured both halves are no-ops and the
// plan is exactly the static §5.2 heuristic.

// applyTuner consults the session's BatchSource and folds its decision into
// the plan IR: a positive BatchElems becomes the plan-wide fixed batch
// (what the executor, Explain, and the counter simulation all read), a
// positive Workers caps the stage worker count, and the provenance is
// recorded for rendering. Called for peeked plans too — PlanBatch is
// read-only by contract, so Session.Plan and Explain show exactly the
// decision the next evaluation will run.
func (s *Session) applyTuner(p *plan) {
	src := s.opts.Tuner
	if src == nil {
		return
	}
	p.sig = ir.Signature(p.ir)
	var sumBytes int64
	elems := int64(-1)
	for i := range p.ir.Stages {
		st := &p.ir.Stages[i]
		if st.Kind != ir.StageSplit {
			continue
		}
		if b := st.WorkingSetBytes(); b > sumBytes {
			sumBytes = b
		}
		if e := st.Elems(); e > elems {
			elems = e
		}
	}
	dec := src.PlanBatch(ir.BatchRequest{
		Signature:    p.sig,
		Static:       p.ir.Batch,
		Workers:      s.opts.Workers,
		SumElemBytes: sumBytes,
		Elems:        elems,
	})
	p.tuned = dec
	if dec.BatchElems > 0 {
		p.ir.Batch.FixedElems = dec.BatchElems
	}
	if dec.Workers > 0 {
		w := dec.Workers
		if w > s.opts.Workers {
			w = s.opts.Workers
		}
		p.ir.Workers = w
	}
	p.ir.Provenance = dec.Provenance
}

// planWorkers is the stage worker count after the tuner's cap: the
// session's configured workers, reduced by a positive plan-level override.
func (s *Session) planWorkers(p *plan) int {
	w := s.opts.Workers
	if p != nil && p.ir != nil && p.ir.Workers > 0 && p.ir.Workers < w {
		w = p.ir.Workers
	}
	if w < 1 {
		w = 1
	}
	return w
}

// planBatchSize is the §5.2 batch size under the plan's (possibly
// tuner-overridden) policy, clamped to [1, total].
func (s *Session) planBatchSize(p *plan, sumElemBytes, total int64) int64 {
	pol := s.opts.batchPolicy()
	if p != nil && p.ir != nil {
		pol = p.ir.Batch
	}
	return clamp64(pol.Elems(sumElemBytes, total), 1, total)
}

// reportTuner closes the loop after an evaluation: emit the EvTune event
// and feed the measured actuals back into the Tuner when it calibrates.
// Failed evaluations report Err so the calibrator discards their timing.
func (s *Session) reportTuner(tr obs.Tracer, p *plan, elapsed time.Duration, err error) {
	if s.opts.Tuner == nil {
		return
	}
	workers := s.planWorkers(p)
	if tr != nil {
		tr.Emit(obs.Event{Kind: obs.EvTune, Time: time.Now(), Dur: elapsed,
			Stage: -1, Worker: obs.RuntimeLane,
			Elems: p.obsElems, Bytes: p.obsBytes,
			BatchElems: p.tuned.BatchElems, Workers: workers,
			Detail: p.ir.Provenance.String()})
	}
	if c, ok := s.opts.Tuner.(ir.Calibrator); ok {
		c.Observe(ir.Observation{
			Signature:  p.sig,
			BatchElems: p.tuned.BatchElems,
			Workers:    workers,
			Elems:      p.obsElems,
			Bytes:      p.obsBytes,
			Elapsed:    elapsed,
			Err:        err != nil,
		})
	}
}
