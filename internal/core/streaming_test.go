package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"mozart/internal/obs"
	"mozart/internal/spill"
)

// ---- streaming test splitting API --------------------------------------

// streamSplitter is arraySplitter plus the two optional streaming
// capabilities: window views (SplitterAt) and spill frames (PieceCodec).
type streamSplitter struct{ arraySplitter }

func (streamSplitter) SplitAt(v any, t SplitType, start, end int64) (any, error) {
	return arraySplitter{}.Split(v, t, start, end)
}

func (streamSplitter) EncodePiece(piece any, t SplitType) ([]byte, error) {
	a, ok := piece.([]float64)
	if !ok {
		return nil, fmt.Errorf("StreamSplit: encode %T", piece)
	}
	buf := make([]byte, 8*len(a))
	for i, x := range a {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(x))
	}
	return buf, nil
}

func (streamSplitter) DecodePiece(frame []byte, t SplitType) (any, error) {
	if len(frame)%8 != 0 {
		return nil, fmt.Errorf("StreamSplit: frame length %d", len(frame))
	}
	out := make([]float64, len(frame)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(frame[8*i:]))
	}
	return out, nil
}

var _ SplitterAt = streamSplitter{}
var _ PieceCodec = streamSplitter{}

func streamSplitOf(sp Splitter, argIdx int) TypeExpr {
	return Concrete("StreamSplit", sp, func(args []any) (SplitType, error) {
		a, ok := args[argIdx].([]float64)
		if !ok {
			return SplitType{}, fmt.Errorf("StreamSplit ctor: arg %d is %T", argIdx, args[argIdx])
		}
		return NewSplitType("StreamSplit", int64(len(a))), nil
	})
}

// saStreamAddOne is @splittable(a: StreamSplit) -> StreamSplit: returns a
// fresh array, so the output goes through merge — and, out of core, through
// the spill store (streamSplitter implements PieceCodec).
func saStreamAddOne(sp Splitter) *Annotation {
	return &Annotation{
		FuncName: "streamAddOne",
		Params:   []Param{{Name: "a", Type: streamSplitOf(sp, 0)}},
		Ret:      func() *TypeExpr { t := streamSplitOf(sp, 0); return &t }(),
	}
}

var fnStreamAddOne Func = func(args []any) (any, error) {
	a := args[0].([]float64)
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + 1
	}
	return out, nil
}

// countingSplitAt wraps streamSplitter and counts SplitAt window views.
type countingSplitAt struct {
	streamSplitter
	n *atomic.Int64
}

func (c countingSplitAt) SplitAt(v any, t SplitType, start, end int64) (any, error) {
	c.n.Add(1)
	return c.streamSplitter.SplitAt(v, t, start, end)
}

// ---- tests ---------------------------------------------------------------

// TestStreamingSpillsAndMatches is the tentpole acceptance check: a stage
// whose working set is 4x the governor budget completes out of core — no
// block, no shed — with the exact in-core result, while the reservation
// high-water stays under the budget, the pressure ladder is visible in
// events, and no spill store survives the evaluation.
func TestStreamingSpillsAndMatches(t *testing.T) {
	const n = 4096
	a := seq(n)
	// Working set: 8 bytes in + 8 bytes out per element; budget covers 1/4.
	budget := int64(n) * 16 / 4
	g := NewGovernor(budget)
	tr := &recordingTracer{}
	s := NewSession(Options{Workers: 3, BatchElems: 64, Governor: g,
		OutOfCore: true, SpillDir: t.TempDir(), Tracer: tr})

	stores0 := spill.OpenStores()
	fut := s.Call(fnStreamAddOne, saStreamAddOne(streamSplitter{}), a)
	if err := s.EvaluateContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, err := fut.Get()
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, n)
	for i := range want {
		want[i] = a[i] + 1
	}
	if !almostEqual(got.([]float64), want) {
		t.Fatal("streamed result differs from in-core result")
	}

	st := s.Stats()
	if st.StreamedStages != 1 {
		t.Errorf("StreamedStages = %d, want 1", st.StreamedStages)
	}
	if st.SpilledFrames == 0 || st.SpilledBytes == 0 {
		t.Errorf("expected spilled frames/bytes, got %d/%d", st.SpilledFrames, st.SpilledBytes)
	}
	if hw := g.HighWater(); hw > budget {
		t.Errorf("high water %d exceeds budget %d", hw, budget)
	}
	if g.InUse() != 0 {
		t.Errorf("governor still holds %d bytes after evaluate", g.InUse())
	}
	if g.MaxLevel() != PressureOutOfCore {
		t.Errorf("max pressure level = %v, want out-of-core", g.MaxLevel())
	}
	if g.Level() != PressureNormal {
		t.Errorf("post-run pressure level = %v, want normal", g.Level())
	}
	if g.PressureTransitions() < 2 {
		t.Errorf("pressure transitions = %d, want >= 2", g.PressureTransitions())
	}
	if open := spill.OpenStores(); open != stores0 {
		t.Errorf("spill stores leaked: %d open, started with %d", open, stores0)
	}

	// The episode must be visible in events: enter out-of-core, spill
	// appends during the run, one replay at the finale, return to normal.
	pressure := tr.ofKind(obs.EvPressure)
	if len(pressure) < 2 || pressure[0].Detail != "out-of-core" ||
		pressure[len(pressure)-1].Detail != "normal" {
		t.Fatalf("pressure events = %+v, want out-of-core ... normal", pressure)
	}
	var appends, replays int
	for _, e := range tr.ofKind(obs.EvSpill) {
		switch e.Detail {
		case "append":
			appends++
		case "replay":
			replays++
		}
	}
	if appends < 2 || replays != 1 {
		t.Errorf("spill events: %d appends, %d replays; want >=2 appends and 1 replay", appends, replays)
	}
	for _, e := range tr.ofKind(obs.EvStageBegin) {
		if e.Detail != "out-of-core" {
			t.Errorf("stage begin detail = %q, want out-of-core", e.Detail)
		}
	}
}

// TestStreamingUsesWindowViews: when every split input implements
// SplitterAt, the runtime takes one window view per input per window
// instead of driving absolute coordinates over materialized storage.
func TestStreamingUsesWindowViews(t *testing.T) {
	const n = 4096
	a := seq(n)
	budget := int64(n) * 16 / 4
	g := NewGovernor(budget)
	s := NewSession(Options{Workers: 2, BatchElems: 64, Governor: g,
		OutOfCore: true, SpillDir: t.TempDir()})

	var views atomic.Int64
	sp := countingSplitAt{n: &views}
	fut := s.Call(fnStreamAddOne, saStreamAddOne(sp), a)
	if err := s.EvaluateContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := fut.Get(); err != nil {
		t.Fatal(err)
	}
	// windowElems = budget/(2*sumElemBytes) = n/8, so 8 windows and one
	// view per window for the single split input.
	if got := views.Load(); got != 8 {
		t.Errorf("SplitAt called %d times, want 8 (one per window)", got)
	}
}

// TestStreamingFoldsReductions: an output without a PieceCodec folds window
// partials through its associative Merge instead of spilling. The input's
// splitter (the package default arraySplitter) has no SplitterAt either, so
// this also exercises the absolute-coordinate path.
func TestStreamingFoldsReductions(t *testing.T) {
	const n = 8192
	a := seq(n)
	budget := int64(n) * 8 / 4
	g := NewGovernor(budget)
	s := NewSession(Options{Workers: 3, BatchElems: 64, Governor: g,
		OutOfCore: true, SpillDir: t.TempDir()})

	fut := s.Call(fnSum, saSum, a)
	if err := s.EvaluateContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, err := fut.Get()
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for _, x := range a {
		want += x
	}
	if rel := math.Abs(got.(float64)-want) / (1 + math.Abs(want)); rel > 1e-9 {
		t.Errorf("streamed sum = %v, want %v", got, want)
	}
	st := s.Stats()
	if st.StreamedStages != 1 {
		t.Errorf("StreamedStages = %d, want 1", st.StreamedStages)
	}
	if st.SpilledFrames != 0 {
		t.Errorf("reduction spilled %d frames, want 0 (fold path)", st.SpilledFrames)
	}
}

// TestStreamingInPlaceMutation: in-place mut arguments need no merge at all
// out of core — absolute-coordinate windows mutate the original storage
// directly, and the stage produces no spill.
func TestStreamingInPlaceMutation(t *testing.T) {
	const n = 4096
	a := seq(n)
	out := make([]float64, n)
	// size + a + out model 16 bytes per element.
	budget := int64(n) * 16 / 4
	g := NewGovernor(budget)
	s := NewSession(Options{Workers: 3, BatchElems: 64, Governor: g,
		OutOfCore: true, SpillDir: t.TempDir()})

	s.Call(testLog1p, saUnary("log1p"), n, a, out)
	if err := s.EvaluateContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := make([]float64, n)
	for i := range want {
		want[i] = math.Log1p(a[i])
	}
	if !almostEqual(out, want) {
		t.Fatal("in-place streamed result differs")
	}
	st := s.Stats()
	if st.StreamedStages != 1 {
		t.Errorf("StreamedStages = %d, want 1", st.StreamedStages)
	}
	if st.SpilledFrames != 0 {
		t.Errorf("in-place stage spilled %d frames, want 0", st.SpilledFrames)
	}
	if hw := g.HighWater(); hw > budget {
		t.Errorf("high water %d exceeds budget %d", hw, budget)
	}
}

// TestStreamingOffWithoutOptIn: the same oversized stage without
// Options.OutOfCore must take the blocking in-core path (clamped admission),
// not the streaming one — degradation is opt-in.
func TestStreamingOffWithoutOptIn(t *testing.T) {
	const n = 4096
	a := seq(n)
	g := NewGovernor(int64(n) * 16 / 4)
	s := NewSession(Options{Workers: 2, BatchElems: 64, Governor: g,
		SpillDir: t.TempDir()})
	fut := s.Call(fnStreamAddOne, saStreamAddOne(streamSplitter{}), a)
	if err := s.EvaluateContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := fut.Get(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.StreamedStages != 0 || st.SpilledFrames != 0 {
		t.Errorf("streamed without opt-in: %+v", st)
	}
	if lvl := g.MaxLevel(); lvl == PressureOutOfCore {
		t.Errorf("reached out-of-core without opt-in")
	}
}

// TestSetBudgetWakesWaiter: a mid-wait SetBudget must wake the blocked
// admission and re-clamp its request against the new budget — the seam the
// faultinject budget squeeze (and its recovery) depends on.
func TestSetBudgetWakesWaiter(t *testing.T) {
	g := NewGovernor(4)
	if adm, err := g.admit(context.Background(), 4); err != nil || adm != 4 {
		t.Fatalf("admit(4) = %d, %v", adm, err)
	}
	ch := make(chan int64, 1)
	go func() {
		adm, err := g.admit(context.Background(), 10)
		if err != nil {
			t.Error(err)
		}
		ch <- adm
	}()
	for i := 0; g.Waits() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if g.Waits() == 0 {
		t.Fatal("second admission never blocked")
	}
	g.SetBudget(16)
	select {
	case adm := <-ch:
		if adm != 10 {
			t.Errorf("re-clamped admission = %d, want 10", adm)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter not woken by SetBudget")
	}
	g.release(10)
	g.release(4)
	if g.InUse() != 0 {
		t.Errorf("inUse = %d after releases", g.InUse())
	}
}

// TestSetBudgetShrinkReclampsWaiter: shrinking mid-wait must not strand a
// waiter whose original request no longer fits the new budget whole.
func TestSetBudgetShrinkReclampsWaiter(t *testing.T) {
	g := NewGovernor(100)
	if adm, _ := g.admit(context.Background(), 100); adm != 100 {
		t.Fatal("setup")
	}
	ch := make(chan int64, 1)
	go func() {
		adm, _ := g.admit(context.Background(), 80)
		ch <- adm
	}()
	for i := 0; g.Waits() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	// Shrink below the waiter's request. It stays blocked (100 still in
	// use), but once the holder releases, the waiter must admit at the
	// clamped 10 — not wait forever for 80.
	g.SetBudget(10)
	g.release(100)
	select {
	case adm := <-ch:
		if adm != 10 {
			t.Errorf("clamped admission after shrink = %d, want 10", adm)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter stranded by mid-wait budget shrink")
	}
}
