package core

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// BreakerPolicy tunes the per-annotation circuit breakers behind
// FallbackQuarantine. Each annotation name gets a breaker with the classic
// three states:
//
//   - closed: the annotation plans split, as usual. Annotation faults
//     accumulate; Threshold consecutive faults trip the breaker open.
//   - open: the annotation plans whole, in its own stage, exactly like a
//     function Mozart cannot split. After Cooldown the breaker moves to
//     half-open.
//   - half-open: the next plan is a probe — the annotation plans split
//     once. Success closes the breaker (full parallelism restored); another
//     annotation fault re-opens it and restarts the cooldown.
//
// The zero value reproduces the pre-breaker quarantine exactly: one fault
// quarantines the annotation for the rest of the session.
type BreakerPolicy struct {
	// Threshold is how many annotation faults trip the breaker while
	// closed. Defaults to 1.
	Threshold int
	// Cooldown is how long a tripped breaker stays open before a
	// half-open probe re-tries splitting. Zero means forever: the
	// session-permanent quarantine.
	Cooldown time.Duration
	// Now is the breaker clock, injectable so tests drive the cooldown
	// deterministically. Defaults to time.Now.
	Now func() time.Time
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

type breaker struct {
	state    breakerState
	faults   int // consecutive annotation faults observed while closed
	openedAt time.Time
}

// breakerSet tracks one breaker per annotation name. A session-private set
// is only touched from the session's single-threaded planning path, but a
// set shared across sessions via a BreakerGroup is transitioned by
// concurrently-evaluating sessions, so every method takes the mutex.
type breakerSet struct {
	mu    sync.Mutex
	pol   BreakerPolicy
	m     map[string]*breaker
	trips atomic.Int64 // breaker (re-)opens, for isolation assertions
}

func newBreakerSet(pol BreakerPolicy) *breakerSet {
	if pol.Threshold <= 0 {
		pol.Threshold = 1
	}
	return &breakerSet{pol: pol, m: map[string]*breaker{}}
}

func (bs *breakerSet) now() time.Time {
	if bs.pol.Now != nil {
		return bs.pol.Now()
	}
	return time.Now()
}

func (bs *breakerSet) state(name string) breakerState {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if b := bs.m[name]; b != nil {
		return b.state
	}
	return breakerClosed
}

func (bs *breakerSet) empty() bool {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	return len(bs.m) == 0
}

// planWhole reports whether the planner must run the annotation whole. It
// also performs the open → half-open transition once the cooldown has
// elapsed, in which case it returns whole=false and probing=true: the
// upcoming split plan is the probe.
func (bs *breakerSet) planWhole(name string) (whole, probing bool) {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b := bs.m[name]
	if b == nil {
		return false, false
	}
	switch b.state {
	case breakerOpen:
		if bs.pol.Cooldown > 0 && bs.now().Sub(b.openedAt) >= bs.pol.Cooldown {
			b.state = breakerHalfOpen
			return false, true
		}
		return true, false
	default:
		return false, false
	}
}

// peekWhole is planWhole without side effects, for read-only planning
// (Session.Plan): it reports whether the annotation would plan whole right
// now, never performing the open → half-open transition. An open breaker
// whose cooldown has elapsed reports false — the next real plan would be a
// split probe.
func (bs *breakerSet) peekWhole(name string) bool {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b := bs.m[name]
	if b == nil || b.state != breakerOpen {
		return false
	}
	if bs.pol.Cooldown > 0 && bs.now().Sub(b.openedAt) >= bs.pol.Cooldown {
		return false
	}
	return true
}

// recordFault notes an annotation fault against name and returns the state
// transition: tripped is true when the breaker (re-)opened now, and
// wasClosed distinguishes a first trip (new quarantine) from a failed
// half-open probe re-opening.
func (bs *breakerSet) recordFault(name string) (tripped, wasClosed bool) {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b := bs.m[name]
	if b == nil {
		b = &breaker{}
		bs.m[name] = b
	}
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = bs.now()
		bs.trips.Add(1)
		return true, false
	case breakerClosed:
		b.faults++
		if b.faults >= bs.pol.Threshold {
			b.state = breakerOpen
			b.openedAt = bs.now()
			bs.trips.Add(1)
			return true, true
		}
	}
	return false, false
}

// recordSuccess notes that a stage containing name ran split and succeeded.
// A half-open breaker closes (the probe passed) and reports recovered; a
// closed breaker forgets accumulated faults — Threshold counts consecutive
// faults, not faults over the session's lifetime.
func (bs *breakerSet) recordSuccess(name string) (recovered bool) {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b := bs.m[name]
	if b == nil {
		return false
	}
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerClosed
		b.faults = 0
		return true
	case breakerClosed:
		b.faults = 0
	}
	return false
}

// openNames returns the annotations whose breakers are open or half-open
// (i.e. currently degraded), sorted.
func (bs *breakerSet) openNames() []string {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	var names []string
	for n, b := range bs.m {
		if b.state != breakerClosed {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// BreakerGroup shares one set of per-annotation circuit breakers across
// any number of sessions (Options.Breakers): every session holding the
// group consults and transitions the same breakers, so a quarantine earned
// by one evaluation is still in force in the next session built for the
// same owner — warm resilience state for serving setups where each request
// constructs a fresh Session. Two groups are fully independent, which is
// what gives a multi-tenant server per-tenant breaker isolation: one
// tenant's faulting annotation cannot quarantine another tenant's.
type BreakerGroup struct{ set *breakerSet }

// NewBreakerGroup creates a group with the given policy. The zero policy
// behaves like the session default: one fault quarantines an annotation
// until the group is discarded.
func NewBreakerGroup(pol BreakerPolicy) *BreakerGroup {
	return &BreakerGroup{set: newBreakerSet(pol)}
}

// OpenNames returns the annotations currently degraded (open or half-open
// breakers), sorted.
func (g *BreakerGroup) OpenNames() []string { return g.set.openNames() }

// Trips returns how many times any breaker in the group (re-)opened.
func (g *BreakerGroup) Trips() int64 { return g.set.trips.Load() }
