package core

import "sync"

// sessionPools is the sync.Pool-backed scratch reuse layer for the hot
// path. Every per-evaluation buffer the executor used to allocate fresh —
// per-worker env/args scratch, piece-collection maps, workerOut result
// slices, merge piece slices — cycles through these pools instead, so a
// session's second and later evaluations run the split→call→merge loop
// without heap growth. Pools are per-Session (created in NewSession), so
// buffers can never migrate between concurrent sessions by construction;
// the poison mode exists to prove no code path *retains* a buffer after
// returning it.
type sessionPools struct {
	// poison, when true (Options.PoisonPools), overwrites the slots of
	// every returned buffer with a sentinel value before pooling it. Any
	// code path that kept a reference past the put sees poisonedBuffer{}
	// instead of its data and fails loudly (type asserts miss, results
	// corrupt deterministically). Debug mode for the leak tests.
	poison bool

	scratch sync.Pool // *workerScratch
	outs    sync.Pool // *[]workerOut
	anys    sync.Pool // *[]any
	raws    sync.Pool // *map[int][]any
}

// poisonedBuffer is the sentinel written into returned buffers under
// poison mode. No real piece ever has this type, so any consumer of a
// leaked buffer trips an assertion or comparison failure immediately.
type poisonedBuffer struct{}

func newSessionPools(poison bool) *sessionPools {
	return &sessionPools{poison: poison}
}

// viewKey identifies one SplitView reuse slot: the piece most recently
// produced for input index in over element range [start, end). Keys recur
// across evaluations of the same plan shape, which is exactly when the
// previous piece is still the right view and can be returned unboxed.
type viewKey struct {
	in         int
	start, end int64
}

// workerScratch is the reusable per-worker state for the batch hot loop:
// the env map threading pieces between pipelined calls, the per-batch
// output map, per-call argument buffers, and the SplitView reuse slots.
// Scratches are pooled across stages and evaluations; the views map is
// deliberately never cleared — stale entries are revalidated by the
// splitter (a view of the wrong storage or range fails the alias check and
// is rebuilt), and hits are what make the steady state allocation-free.
type workerScratch struct {
	env   map[int]any
	out   map[int]any
	args  [][]any
	views map[viewKey]any
}

// argsFor returns the scratch argument slice for call index ci, sized n.
func (sc *workerScratch) argsFor(ci, n int) []any {
	for len(sc.args) <= ci {
		sc.args = append(sc.args, nil)
	}
	if cap(sc.args[ci]) < n {
		sc.args[ci] = make([]any, n)
	}
	sc.args[ci] = sc.args[ci][:n]
	return sc.args[ci]
}

func (p *sessionPools) getScratch() *workerScratch {
	if sc, ok := p.scratch.Get().(*workerScratch); ok {
		return sc
	}
	return &workerScratch{
		env:   map[int]any{},
		out:   map[int]any{},
		views: map[viewKey]any{},
	}
}

func (p *sessionPools) putScratch(sc *workerScratch) {
	clear(sc.env)
	clear(sc.out)
	for _, args := range sc.args {
		for i := range args {
			if p.poison {
				args[i] = poisonedBuffer{}
			} else {
				args[i] = nil
			}
		}
	}
	// sc.views intentionally survives: entries are revalidated on reuse.
	p.scratch.Put(sc)
}

// getOuts returns a zeroed []workerOut of length n.
func (p *sessionPools) getOuts(n int) []workerOut {
	if bp, ok := p.outs.Get().(*[]workerOut); ok && cap(*bp) >= n {
		buf := (*bp)[:n]
		for i := range buf {
			buf[i] = workerOut{}
		}
		return buf
	}
	return make([]workerOut, n)
}

func (p *sessionPools) putOuts(buf []workerOut) {
	for i := range buf {
		buf[i] = workerOut{}
	}
	p.outs.Put(&buf)
}

// getAnys returns a zeroed []any of length n.
func (p *sessionPools) getAnys(n int) []any {
	if bp, ok := p.anys.Get().(*[]any); ok && cap(*bp) >= n {
		buf := (*bp)[:n]
		for i := range buf {
			buf[i] = nil
		}
		return buf
	}
	return make([]any, n)
}

func (p *sessionPools) putAnys(buf []any) {
	for i := range buf {
		if p.poison {
			buf[i] = poisonedBuffer{}
		} else {
			buf[i] = nil
		}
	}
	p.anys.Put(&buf)
}

func (p *sessionPools) getRaw() map[int][]any {
	if m, ok := p.raws.Get().(map[int][]any); ok {
		return m
	}
	return map[int][]any{}
}

func (p *sessionPools) putRaw(m map[int][]any) {
	if m == nil {
		return
	}
	if p.poison {
		for id, pieces := range m {
			for i := range pieces {
				pieces[i] = poisonedBuffer{}
			}
			m[id] = pieces
		}
	}
	clear(m)
	p.raws.Put(m)
}
