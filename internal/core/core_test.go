package core

import (
	"fmt"
	"math"
)

// ---- test splitting API: float64 arrays --------------------------------

// arraySplitter splits []float64 into sub-slice views (in place) and merges
// pieces by concatenation. It mirrors the paper's ArraySplit for MKL.
type arraySplitter struct{}

func (arraySplitter) InPlace() bool { return true }

func (arraySplitter) Info(v any, t SplitType) (RuntimeInfo, error) {
	a, ok := v.([]float64)
	if !ok {
		return RuntimeInfo{}, fmt.Errorf("ArraySplit: want []float64, got %T", v)
	}
	return RuntimeInfo{Elems: int64(len(a)), ElemBytes: 8}, nil
}

func (arraySplitter) Split(v any, t SplitType, start, end int64) (any, error) {
	a := v.([]float64)
	if end > int64(len(a)) {
		return nil, fmt.Errorf("ArraySplit: range [%d,%d) out of bounds (len %d)", start, end, len(a))
	}
	return a[start:end], nil
}

func (arraySplitter) Merge(pieces []any, t SplitType) (any, error) {
	var out []float64
	for _, p := range pieces {
		out = append(out, p.([]float64)...)
	}
	return out, nil
}

// arraySplitOf builds the ArraySplit<len> type expression whose constructor
// reads the length from argument argIdx (a captured int).
func arraySplitOf(argIdx int) TypeExpr {
	return Concrete("ArraySplit", arraySplitter{}, func(args []any) (SplitType, error) {
		n, ok := args[argIdx].(int)
		if !ok {
			return SplitType{}, fmt.Errorf("ArraySplit ctor: arg %d is %T, want int", argIdx, args[argIdx])
		}
		return NewSplitType("ArraySplit", int64(n)), nil
	})
}

// sizeSplitter splits a length argument into per-piece lengths.
type sizeSplitter struct{}

func (sizeSplitter) Info(v any, t SplitType) (RuntimeInfo, error) {
	return RuntimeInfo{Elems: int64(v.(int)), ElemBytes: 0}, nil
}
func (sizeSplitter) Split(v any, t SplitType, start, end int64) (any, error) {
	return int(end - start), nil
}
func (sizeSplitter) Merge(pieces []any, t SplitType) (any, error) {
	n := 0
	for _, p := range pieces {
		n += p.(int)
	}
	return n, nil
}

func sizeSplitOf(argIdx int) TypeExpr {
	return Concrete("SizeSplit", sizeSplitter{}, func(args []any) (SplitType, error) {
		return NewSplitType("SizeSplit", int64(args[argIdx].(int))), nil
	})
}

// sumSplitter is a reduction split type: merge sums the partial results.
type sumSplitter struct{}

func (sumSplitter) Info(v any, t SplitType) (RuntimeInfo, error) {
	return RuntimeInfo{Elems: 1, ElemBytes: 8}, nil
}
func (sumSplitter) Split(v any, t SplitType, start, end int64) (any, error) {
	return nil, fmt.Errorf("SumSplit values cannot be split")
}
func (sumSplitter) Merge(pieces []any, t SplitType) (any, error) {
	s := 0.0
	for _, p := range pieces {
		s += p.(float64)
	}
	return s, nil
}

// ---- annotated test library ---------------------------------------------

// saUnary is @splittable(size: SizeSplit(size), a: ArraySplit(size), mut
// out: ArraySplit(size)) for a unary elementwise function.
func saUnary(name string) *Annotation {
	return &Annotation{
		FuncName: name,
		Params: []Param{
			{Name: "size", Type: sizeSplitOf(0)},
			{Name: "a", Type: arraySplitOf(0)},
			{Name: "out", Mut: true, Type: arraySplitOf(0)},
		},
	}
}

func saBinary(name string) *Annotation {
	return &Annotation{
		FuncName: name,
		Params: []Param{
			{Name: "size", Type: sizeSplitOf(0)},
			{Name: "a", Type: arraySplitOf(0)},
			{Name: "b", Type: arraySplitOf(0)},
			{Name: "out", Mut: true, Type: arraySplitOf(0)},
		},
	}
}

func fnUnary(f func(float64) float64) Func {
	return func(args []any) (any, error) {
		a, out := args[1].([]float64), args[2].([]float64)
		if len(a) != len(out) {
			return nil, fmt.Errorf("len mismatch %d vs %d", len(a), len(out))
		}
		for i := range a {
			out[i] = f(a[i])
		}
		return nil, nil
	}
}

func fnBinary(f func(x, y float64) float64) Func {
	return func(args []any) (any, error) {
		a, b, out := args[1].([]float64), args[2].([]float64), args[3].([]float64)
		for i := range a {
			out[i] = f(a[i], b[i])
		}
		return nil, nil
	}
}

var (
	testLog1p = fnUnary(math.Log1p)
	testAdd   = fnBinary(func(x, y float64) float64 { return x + y })
	testDiv   = fnBinary(func(x, y float64) float64 { return x / y })
)

// saAddNew is @splittable(a: S, b: S) -> S : returns a new array.
var saAddNew = &Annotation{
	FuncName: "addNew",
	Params: []Param{
		{Name: "a", Type: Generic("S")},
		{Name: "b", Type: Generic("S")},
	},
	Ret: func() *TypeExpr { t := Generic("S"); return &t }(),
}

var fnAddNew Func = func(args []any) (any, error) {
	a, b := args[0].([]float64), args[1].([]float64)
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out, nil
}

// saScale is @splittable(mut a: S, v: _).
var saScale = &Annotation{
	FuncName: "scale",
	Params: []Param{
		{Name: "a", Mut: true, Type: Generic("S")},
		{Name: "v", Type: Missing()},
	},
}

var fnScale Func = func(args []any) (any, error) {
	a, v := args[0].([]float64), args[1].(float64)
	for i := range a {
		a[i] *= v
	}
	return nil, nil
}

// saFilterPos is @splittable(a: S) -> unknown : keeps positive values.
var saFilterPos = &Annotation{
	FuncName: "filterPos",
	Params:   []Param{{Name: "a", Type: Generic("S")}},
	Ret:      func() *TypeExpr { t := Unknown(); return &t }(),
}

var fnFilterPos Func = func(args []any) (any, error) {
	a := args[0].([]float64)
	var out []float64
	for _, x := range a {
		if x > 0 {
			out = append(out, x)
		}
	}
	return out, nil
}

// saSum is @splittable(a: S) -> SumSplit : a reduction.
var saSum = &Annotation{
	FuncName: "sum",
	Params:   []Param{{Name: "a", Type: Generic("S")}},
	Ret: func() *TypeExpr {
		t := Concrete("SumSplit", sumSplitter{}, FixedCtor(NewSplitType("SumSplit")))
		return &t
	}(),
}

var fnSum Func = func(args []any) (any, error) {
	s := 0.0
	for _, x := range args[0].([]float64) {
		s += x
	}
	return s, nil
}

func init() {
	// Default split type for []float64, used when generics cannot be
	// inferred from context.
	RegisterDefaultSplit([]float64(nil), arraySplitter{}, func(v any) (SplitType, error) {
		return NewSplitType("ArraySplit", int64(len(v.([]float64)))), nil
	})
}

// ---- helpers -------------------------------------------------------------

func seq(n int) []float64 {
	a := make([]float64, n)
	for i := range a {
		a[i] = float64(i%17) + 0.5
	}
	return a
}

func almostEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9*(1+math.Abs(b[i])) {
			return false
		}
	}
	return true
}
