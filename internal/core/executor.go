package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// execute runs every stage of the plan in order (§5.2).
func (s *Session) execute(p *plan) error {
	for si := range p.stages {
		if err := s.executeStage(&p.stages[si]); err != nil {
			return fmt.Errorf("mozart: stage %d: %w", si, err)
		}
		s.stats.Stages++
	}
	return nil
}

// resolvedInput is a stage input with its splitter pinned down (deferred
// defaults resolved against the materialized value).
type resolvedInput struct {
	stageInput
	val  any
	info RuntimeInfo
}

func (s *Session) executeStage(st *planStage) error {
	// Resolve inputs against materialized values.
	inputs := make([]resolvedInput, 0, len(st.inputs))
	var sumElemBytes int64
	for _, in := range st.inputs {
		if !in.b.hasVal {
			return fmt.Errorf("input of %s is not materialized", describeStage(st))
		}
		ri := resolvedInput{stageInput: in, val: in.b.val}
		if in.r.deferred || in.r.splitter == nil {
			d, ok := lookupDefaultSplit(in.b.val)
			if !ok {
				return fmt.Errorf("no default split type registered for %T", in.b.val)
			}
			t, err := d.ctor(in.b.val)
			if err != nil {
				return fmt.Errorf("default constructor for %T: %w", in.b.val, err)
			}
			ri.r.splitter, ri.r.t, ri.r.deferred = d.splitter, t, false
		}
		info, err := ri.r.splitter.Info(ri.val, ri.r.t)
		if err != nil {
			return fmt.Errorf("Info(%s): %w", ri.r.t, err)
		}
		ri.info = info
		sumElemBytes += info.ElemBytes
		inputs = append(inputs, ri)
	}
	for _, b := range st.broadcast {
		if !b.hasVal {
			return fmt.Errorf("broadcast value is not materialized")
		}
	}

	// A stage with nothing to split executes each call once, whole.
	if len(inputs) == 0 {
		return s.executeWhole(st)
	}

	infos := make([]RuntimeInfo, len(inputs))
	for i, in := range inputs {
		infos[i] = in.info
	}
	total, err := CheckSameElems(infos)
	if err != nil {
		return err
	}
	if total == 0 && s.opts.Pedantic {
		return fmt.Errorf("pedantic: stage received zero elements")
	}

	batch := s.opts.batchSize(sumElemBytes, total)
	workers := s.opts.Workers
	if int64(workers) > total && total > 0 {
		workers = int(total)
	}
	if workers < 1 {
		workers = 1
	}

	if s.opts.DynamicScheduling {
		return s.executeDynamic(st, inputs, total, batch, workers)
	}

	// Static partitioning: workers take contiguous, near-equal element
	// ranges (§5.2 Step 1).
	per := total / int64(workers)
	rem := total % int64(workers)

	type workerResult struct {
		partials map[int][]any // output binding id -> merged-per-worker pieces
		err      error
	}
	results := make([]workerResult, workers)
	var wg sync.WaitGroup
	lo := int64(0)
	for w := 0; w < workers; w++ {
		hi := lo + per
		if int64(w) < rem {
			hi++
		}
		wg.Add(1)
		go func(w int, lo, hi int64) {
			defer wg.Done()
			res := s.runWorker(st, inputs, lo, hi, batch)
			results[w] = workerResult{partials: res.partials, err: res.err}
		}(w, lo, hi)
		lo = hi
	}
	wg.Wait()

	for _, r := range results {
		if r.err != nil {
			return r.err
		}
	}

	// Final merge on the main thread (§5.2 Step 3), then write back.
	t0 := time.Now()
	for oi, out := range st.outputs {
		var pieces []any
		for _, r := range results {
			pieces = append(pieces, r.partials[out.b.id]...)
		}
		merged, err := s.mergePieces(out.r, pieces)
		if err != nil {
			return fmt.Errorf("merge output %d: %w", oi, err)
		}
		out.b.val = merged
		out.b.hasVal = true
		out.b.ready = true
		out.b.discarded = false
	}
	s.stats.add(&s.stats.MergeNS, time.Since(t0))

	// In-place mutated bindings are already up to date; mark them ready.
	s.finishStageBindings(st)
	return nil
}

// mergePieces merges pieces under resolution r, resolving a deferred
// splitter from the pieces' dynamic type.
func (s *Session) mergePieces(r resolved, pieces []any) (any, error) {
	sp := r.splitter
	if sp == nil {
		if len(pieces) == 0 {
			return nil, nil
		}
		d, ok := lookupDefaultSplit(pieces[0])
		if !ok {
			return nil, fmt.Errorf("no default split type registered for %T", pieces[0])
		}
		sp = d.splitter
	}
	return sp.Merge(pieces, r.t)
}

// finishStageBindings marks every binding written by the stage as ready.
func (s *Session) finishStageBindings(st *planStage) {
	for _, c := range st.calls {
		for i, p := range c.n.sa.Params {
			if p.Mut {
				c.n.args[i].ready = true
			}
		}
	}
}

// executeDynamic is the work-stealing-style alternative to static
// partitioning: workers atomically claim the next unprocessed batch. Output
// pieces are collected per batch index so merges see them in order and
// results match static scheduling exactly.
func (s *Session) executeDynamic(st *planStage, inputs []resolvedInput, total, batch int64, workers int) error {
	nBatches := (total + batch - 1) / batch
	pieces := map[int][]any{} // output binding id -> piece per batch index
	for _, o := range st.outputs {
		pieces[o.b.id] = make([]any, nBatches)
	}
	var next atomic.Int64
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			env := map[int]any{}
			for {
				idx := next.Add(1) - 1
				if idx >= nBatches {
					return
				}
				start := idx * batch
				end := start + batch
				if end > total {
					end = total
				}
				out, err := s.runBatch(st, inputs, env, start, end)
				if err != nil {
					errs[w] = err
					return
				}
				for id, piece := range out {
					pieces[id][idx] = piece
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	t0 := time.Now()
	for oi, out := range st.outputs {
		var ps []any
		for _, p := range pieces[out.b.id] {
			if p != nil {
				ps = append(ps, p)
			}
		}
		merged, err := s.mergePieces(out.r, ps)
		if err != nil {
			return fmt.Errorf("merge output %d: %w", oi, err)
		}
		out.b.val = merged
		out.b.hasVal = true
		out.b.ready = true
		out.b.discarded = false
	}
	s.stats.add(&s.stats.MergeNS, time.Since(t0))
	s.finishStageBindings(st)
	return nil
}

// runBatch splits inputs for [start, end), pipelines the batch through the
// stage's calls, and returns the pieces of stage outputs. env is a reusable
// per-worker scratch map.
func (s *Session) runBatch(st *planStage, inputs []resolvedInput, env map[int]any, start, end int64) (map[int]any, error) {
	clear(env)
	t0 := time.Now()
	for _, in := range inputs {
		piece, err := in.r.splitter.Split(in.val, in.r.t, start, end)
		if err != nil {
			return nil, fmt.Errorf("split [%d,%d) of %s: %w", start, end, in.r.t, err)
		}
		env[in.b.id] = piece
	}
	s.stats.add(&s.stats.SplitNS, time.Since(t0))
	s.stats.add(&s.stats.Batches, 1)

	for _, c := range st.calls {
		args := make([]any, len(c.n.args))
		for i, r := range c.args {
			b := c.n.args[i]
			if r.broadcast {
				args[i] = b.val
				continue
			}
			args[i] = env[b.id]
		}
		if s.opts.Logf != nil {
			s.opts.Logf("mozart: call %s on elements [%d,%d)", c.n.name, start, end)
		}
		t1 := time.Now()
		ret, err := c.n.fn(args)
		s.stats.add(&s.stats.TaskNS, time.Since(t1))
		s.stats.add(&s.stats.Calls, 1)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.n.name, err)
		}
		if c.n.ret != nil {
			env[c.n.ret.id] = ret
		}
	}
	out := map[int]any{}
	for _, o := range st.outputs {
		if piece, ok := env[o.b.id]; ok {
			out[o.b.id] = piece
		}
	}
	return out, nil
}

type workerOut struct {
	partials map[int][]any
	err      error
}

// runWorker is the per-worker driver loop (§5.2 Step 2): for each batch in
// the worker's element range, split every input, pipeline the batch through
// every call in the stage, and stash pieces of stage outputs. At the end the
// worker pre-merges its own partial lists.
func (s *Session) runWorker(st *planStage, inputs []resolvedInput, lo, hi, batch int64) workerOut {
	var splitNS, taskNS, mergeNS time.Duration
	var batches, calls int64
	defer func() {
		s.stats.add(&s.stats.SplitNS, splitNS)
		s.stats.add(&s.stats.TaskNS, taskNS)
		s.stats.add(&s.stats.MergeNS, mergeNS)
		s.stats.add(&s.stats.Batches, time.Duration(batches))
		s.stats.add(&s.stats.Calls, time.Duration(calls))
	}()

	raw := map[int][]any{} // output binding id -> pieces
	env := map[int]any{}   // binding id -> current piece within a batch
	outSet := map[int]bool{}
	for _, o := range st.outputs {
		outSet[o.b.id] = true
	}

	for start := lo; start < hi; start += batch {
		end := start + batch
		if end > hi {
			end = hi
		}
		batches++
		clear(env)

		t0 := time.Now()
		for _, in := range inputs {
			piece, err := in.r.splitter.Split(in.val, in.r.t, start, end)
			if err != nil {
				return workerOut{err: fmt.Errorf("split [%d,%d) of %s: %w", start, end, in.r.t, err)}
			}
			if s.opts.Pedantic && piece == nil {
				return workerOut{err: fmt.Errorf("pedantic: splitter for %s produced nil piece", in.r.t)}
			}
			env[in.b.id] = piece
		}
		splitNS += time.Since(t0)

		for _, c := range st.calls {
			args := make([]any, len(c.n.args))
			for i, r := range c.args {
				b := c.n.args[i]
				if r.broadcast {
					args[i] = b.val
					continue
				}
				piece, ok := env[b.id]
				if !ok {
					return workerOut{err: fmt.Errorf("%s: internal: no piece for split argument %s", c.n.name, c.n.sa.Params[i].Name)}
				}
				if s.opts.Pedantic && piece == nil {
					return workerOut{err: fmt.Errorf("pedantic: %s received nil piece for %s", c.n.name, c.n.sa.Params[i].Name)}
				}
				args[i] = piece
			}
			if s.opts.Logf != nil {
				s.opts.Logf("mozart: call %s on elements [%d,%d)", c.n.name, start, end)
			}
			t1 := time.Now()
			ret, err := c.n.fn(args)
			taskNS += time.Since(t1)
			calls++
			if err != nil {
				return workerOut{err: fmt.Errorf("%s: %w", c.n.name, err)}
			}
			if c.n.ret != nil {
				env[c.n.ret.id] = ret
			}
		}

		// Move this batch's output pieces to the partial lists.
		for id := range outSet {
			if piece, ok := env[id]; ok {
				raw[id] = append(raw[id], piece)
			}
		}
	}

	// Per-worker pre-merge (§5.2 Step 3) keeps the main-thread merge cheap
	// and is valid because Merge is associative.
	partials := map[int][]any{}
	t2 := time.Now()
	for _, o := range st.outputs {
		pieces := raw[o.b.id]
		if len(pieces) == 0 {
			continue
		}
		merged, err := s.mergePieces(o.r, pieces)
		if err != nil {
			return workerOut{err: fmt.Errorf("worker merge: %w", err)}
		}
		partials[o.b.id] = []any{merged}
	}
	mergeNS += time.Since(t2)
	return workerOut{partials: partials}
}

// executeWhole runs a stage that has no split inputs: every call executes
// once over full values on the calling thread.
func (s *Session) executeWhole(st *planStage) error {
	for _, c := range st.calls {
		args := make([]any, len(c.n.args))
		for i, b := range c.n.args {
			if !b.hasVal {
				return fmt.Errorf("%s: argument %s not materialized", c.n.name, c.n.sa.Params[i].Name)
			}
			args[i] = b.val
		}
		if s.opts.Logf != nil {
			s.opts.Logf("mozart: call %s (whole)", c.n.name)
		}
		t0 := time.Now()
		ret, err := c.n.fn(args)
		s.stats.add(&s.stats.TaskNS, time.Since(t0))
		s.stats.Calls++
		if err != nil {
			return fmt.Errorf("%s: %w", c.n.name, err)
		}
		if c.n.ret != nil {
			c.n.ret.val = ret
			c.n.ret.hasVal = true
			c.n.ret.ready = true
			c.n.ret.discarded = false
		}
		for i, p := range c.n.sa.Params {
			if p.Mut {
				c.n.args[i].ready = true
			}
		}
	}
	return nil
}

func describeStage(st *planStage) string {
	if len(st.calls) == 0 {
		return "empty stage"
	}
	names := make([]string, 0, len(st.calls))
	for _, c := range st.calls {
		names = append(names, c.n.name)
	}
	return fmt.Sprintf("stage[%s]", join(names, " -> "))
}

func join(parts []string, sep string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += sep
		}
		out += p
	}
	return out
}
