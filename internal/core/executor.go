package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mozart/internal/obs"
	ir "mozart/internal/plan"
)

// execute runs every stage of the plan in order (§5.2).
func (s *Session) execute(ctx context.Context, p *plan) error {
	for si := range p.stages {
		if err := ctx.Err(); err != nil {
			se := s.stageErr(&p.stages[si], originFromContext(err), err)
			se.Stage = si
			return se
		}
		if err := s.executeStage(ctx, p, si, &p.stages[si]); err != nil {
			return err
		}
		s.stats.add(&s.stats.Stages, 1)
	}
	return nil
}

// executeStage runs one stage with splitting and parallelism, applying the
// stage timeout and — on annotation faults — the fallback policy: restore
// any in-place-mutated inputs from a pre-stage snapshot and re-execute the
// stage's calls whole, unsplit and unpipelined, the way the plain library
// would run them.
func (s *Session) executeStage(ctx context.Context, p *plan, si int, st *planStage) error {
	if s.opts.StageTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.StageTimeout)
		defer cancel()
	}

	// Snapshot mutated inputs up front so a fallback can undo the partial
	// in-place work of a failed split execution.
	var snap *stageSnapshot
	var snapErr error
	if s.opts.FallbackPolicy != FallbackOff && len(st.inputs) > 0 {
		snap, snapErr = s.snapshotStage(st)
	}

	tr := s.opts.Tracer
	stageStart := time.Now()
	err := s.executeStageSplit(ctx, p, si, st)
	if err == nil {
		// A split stage that ran clean closes half-open breakers on its
		// annotations (the cooldown probe passed).
		s.recordStageSuccess(st)
		s.emitStageEnd(tr, si, st, stageStart, nil)
		return nil
	}
	err = s.stampStage(err, si, st)

	var serr *StageError
	if s.opts.FallbackPolicy == FallbackOff || len(st.inputs) == 0 ||
		!errors.As(err, &serr) || !serr.AnnotationFault() {
		s.emitStageEnd(tr, si, st, stageStart, err)
		return err
	}
	if snapErr != nil {
		err = fmt.Errorf("%w (whole-call fallback skipped: %v)", err, snapErr)
		s.emitStageEnd(tr, si, st, stageStart, err)
		return err
	}
	snap.restore()
	fbStart := time.Now()
	if ferr := s.executeWhole(st); ferr != nil {
		err = fmt.Errorf("mozart: stage %d: whole-call fallback failed: %w (after %v)", si, ferr, err)
		s.emitStageEnd(tr, si, st, stageStart, err)
		return err
	}
	s.stats.add(&s.stats.FallbackStages, 1)
	if tr != nil {
		tr.Emit(obs.Event{Kind: obs.EvFallback, Time: time.Now(), Dur: time.Since(fbStart),
			Stage: si, Worker: obs.RuntimeLane, Calls: stageCalls(st), Detail: err.Error()})
	}
	if s.opts.FallbackPolicy == FallbackQuarantine {
		s.quarantineStage(st, serr)
	}
	// The stage recovered: its end event reports success, the fallback span
	// carries the original fault.
	s.emitStageEnd(tr, si, st, stageStart, nil)
	return nil
}

// emitStageEnd closes a stage's span on the runtime lane, covering split
// execution plus any whole-call fallback re-execution.
func (s *Session) emitStageEnd(tr obs.Tracer, si int, st *planStage, start time.Time, err error) {
	if tr == nil {
		return
	}
	e := obs.Event{Kind: obs.EvStageEnd, Time: time.Now(), Dur: time.Since(start),
		Stage: si, Worker: obs.RuntimeLane, Calls: stageCalls(st)}
	if err != nil {
		e.Detail = err.Error()
	}
	tr.Emit(e)
}

// stampStage fills in the stage index on StageErrors produced deep inside
// the executor, or wraps other errors with the stage index.
func (s *Session) stampStage(err error, si int, st *planStage) error {
	var serr *StageError
	if errors.As(err, &serr) {
		if serr.Stage < 0 {
			serr.Stage = si
		}
		return err
	}
	return fmt.Errorf("mozart: stage %d: %w", si, err)
}

// stageErr wraps err in a StageError for stage st. The stage index is
// stamped by executeStage; batch range and call name are attached by the
// caller when known.
func (s *Session) stageErr(st *planStage, origin FaultOrigin, err error) *StageError {
	se := &StageError{Stage: -1, Calls: callNames(st), Origin: origin, Start: -1, End: -1, Err: err}
	var p *panicErr
	if errors.As(err, &p) {
		se.PanicValue, se.Stack = p.val, p.stack
	}
	return se
}

func originFromContext(err error) FaultOrigin {
	if errors.Is(err, context.DeadlineExceeded) {
		return OriginTimeout
	}
	return OriginCanceled
}

// ---- panic isolation ------------------------------------------------------
//
// Every entry into annotator- or library-supplied code goes through one of
// the safe* wrappers below: a panic in a worker goroutine becomes an error
// instead of killing the host process (annotations are untrusted plugins).

// recoverPanic converts a panic into a panicErr carrying the recovered
// value and the stack of the recovering goroutine.
func (s *Session) recoverPanic(err *error) {
	if r := recover(); r != nil {
		s.stats.add(&s.stats.RecoveredPanics, 1)
		*err = &panicErr{val: r, stack: debug.Stack()}
	}
}

func (s *Session) safeCall(fn Func, args []any) (ret any, err error) {
	defer s.recoverPanic(&err)
	return fn(args)
}

func (s *Session) safeInfo(sp Splitter, v any, t SplitType) (info RuntimeInfo, err error) {
	defer s.recoverPanic(&err)
	return sp.Info(v, t)
}

func (s *Session) safeSplit(sp Splitter, v any, t SplitType, start, end int64) (piece any, err error) {
	defer s.recoverPanic(&err)
	return sp.Split(v, t, start, end)
}

func (s *Session) safeSplitView(sp ViewSplitter, v any, t SplitType, start, end int64, reuse any) (piece any, err error) {
	defer s.recoverPanic(&err)
	return sp.SplitView(v, t, start, end, reuse)
}

func (s *Session) safeMerge(sp Splitter, pieces []any, t SplitType) (v any, err error) {
	defer s.recoverPanic(&err)
	return sp.Merge(pieces, t)
}

// ---- split execution ------------------------------------------------------

// resolvedInput is a stage input with its splitter pinned down (deferred
// defaults resolved against the materialized value).
type resolvedInput struct {
	stageInput
	val  any
	info RuntimeInfo
}

// stageExec bundles a stage with its resolved inputs for the worker loops.
// mutInPlace lists the inputs whose storage the stage's calls mutate
// through aliasing in-place splits — the pieces batch-granular retry must
// snapshot before an attempt so a replay is idempotent.
type stageExec struct {
	st         *planStage
	inputs     []resolvedInput
	mutInPlace []resolvedInput

	// viewers[i] is inputs[i]'s splitter as a ViewSplitter when its
	// capability set includes CapView (nil otherwise), resolved once per
	// stage so the per-batch loop never type-asserts. View-capable inputs
	// split through SplitView with a per-worker reuse slot: in steady
	// state the previous evaluation's piece is still the right view and
	// comes back unboxed — zero allocations.
	viewers []ViewSplitter

	// Per-stage observability detail, computed once so the per-batch hot
	// loop emits events without building strings or re-deriving sizes.
	si        int    // stage index within the plan
	calls     string // "a -> b -> c" pipeline rendering
	split     string // split type rendering
	elemBytes int64  // Σ element bytes across split inputs (§5.2 model)
}

// mutInPlaceInputs selects the resolved inputs some call mutates through an
// in-place splitter. Inputs with copying splitters need no batch snapshot:
// their mutation lands in merged output pieces, which a failed batch never
// publishes.
func mutInPlaceInputs(st *planStage, inputs []resolvedInput) []resolvedInput {
	mut := map[int]bool{}
	for _, c := range st.calls {
		for i, p := range c.n.sa.Params {
			if p.Mut && !c.args[i].broadcast {
				mut[c.n.args[i].id] = true
			}
		}
	}
	var out []resolvedInput
	for _, in := range inputs {
		if mut[in.b.id] && CapabilitiesOf(in.r.splitter).Has(CapInPlace) {
			out = append(out, in)
		}
	}
	return out
}

// resolveViewers builds the per-input ViewSplitter table for a stage: only
// splitters whose capability set declares CapView are consulted, and only
// then asserted to the concrete interface (the CapabilitiesOf contract).
func resolveViewers(inputs []resolvedInput) []ViewSplitter {
	var viewers []ViewSplitter
	for i, in := range inputs {
		if !CapabilitiesOf(in.r.splitter).Has(CapView) {
			continue
		}
		vs, ok := in.r.splitter.(ViewSplitter)
		if !ok {
			continue // declared but not callable: stay on the Split path
		}
		if viewers == nil {
			viewers = make([]ViewSplitter, len(inputs))
		}
		viewers[i] = vs
	}
	return viewers
}

func (s *Session) executeStageSplit(ctx context.Context, p *plan, si int, st *planStage) error {
	// Resolve inputs against materialized values.
	inputs := make([]resolvedInput, 0, len(st.inputs))
	widths := make([]int64, 0, len(st.inputs))
	for _, in := range st.inputs {
		if !in.b.hasVal {
			return s.stageErr(st, OriginInternal, fmt.Errorf("input of %s is not materialized", describeStage(st)))
		}
		ri := resolvedInput{stageInput: in, val: in.b.val}
		if in.r.deferred || in.r.splitter == nil {
			d, ok := lookupDefaultSplit(in.b.val)
			if !ok {
				return s.stageErr(st, OriginInfo, fmt.Errorf("no default split type registered for %T", in.b.val))
			}
			t, err := d.ctor(in.b.val)
			if err != nil {
				return s.stageErr(st, OriginInfo, fmt.Errorf("default constructor for %T: %w", in.b.val, err))
			}
			ri.r.splitter, ri.r.t, ri.r.deferred = d.splitter, t, false
		}
		info, err := s.safeInfo(ri.r.splitter, ri.val, ri.r.t)
		if err != nil {
			return s.stageErr(st, OriginInfo, fmt.Errorf("Info(%s): %w", ri.r.t, err))
		}
		ri.info = info
		widths = append(widths, info.ElemBytes)
		inputs = append(inputs, ri)
	}
	// The §5.2 working set counts the split inputs plus the stage's live
	// (non-reduced) produced values, each estimated at the mean input width
	// — the shared byte model from the plan IR, identical to what Explain
	// reports and what internal/planlower feeds into memsim.
	var produced int
	if st.ir != nil {
		produced = len(st.ir.Live)
	}
	sumElemBytes := ir.StageBytes(widths, produced, 0)
	for _, b := range st.broadcast {
		if !b.hasVal {
			return s.stageErr(st, OriginInternal, fmt.Errorf("broadcast value is not materialized"))
		}
	}

	// A stage with nothing to split executes each call once, whole.
	if len(inputs) == 0 {
		if tr := s.opts.Tracer; tr != nil {
			tr.Emit(obs.Event{Kind: obs.EvStageBegin, Time: time.Now(), Stage: si,
				Worker: obs.RuntimeLane, Calls: stageCalls(st), Split: "whole", Workers: 1})
		}
		return s.executeWhole(st)
	}

	infos := make([]RuntimeInfo, len(inputs))
	for i, in := range inputs {
		infos[i] = in.info
	}
	total, err := CheckSameElems(infos)
	if err != nil {
		return s.stageErr(st, OriginInfo, err)
	}
	if total == 0 && s.opts.Pedantic {
		return s.stageErr(st, OriginPedantic, fmt.Errorf("pedantic: stage received zero elements"))
	}

	// Batch and worker count come from the plan IR, so a Tuner's overrides
	// (plan.BatchSource) apply here exactly as Explain renders them.
	batch := s.planBatchSize(p, sumElemBytes, total)
	workers := s.planWorkers(p)
	if int64(workers) > total && total > 0 {
		workers = int(total)
	}
	if workers < 1 {
		workers = 1
	}
	// Accumulate the split-stage actuals the post-evaluation tuner
	// observation reports (stages run sequentially; no atomics needed).
	p.obsElems += total
	p.obsBytes += total * sumElemBytes

	// Out-of-core streaming: when the stage's whole §5.2 working set
	// exceeds the Governor's budget and the session opted in, execute in
	// admission-bounded element windows instead of blocking on an
	// admission that can never fully fit.
	if s.shouldStream(total, sumElemBytes) {
		return s.executeStreaming(ctx, si, st, inputs, sumElemBytes, total, batch, workers)
	}

	// Memory-budget admission: under a Governor the stage may start with a
	// smaller batch or fewer workers, or block until its modeled footprint
	// fits under the byte budget.
	batch, workers, release, aerr := s.admitStage(ctx, si, st, sumElemBytes, total, batch, workers)
	if aerr != nil {
		return aerr
	}
	defer release()

	// Stage split label: the first input with a real element width (a
	// SizeSplit-style zero-width input doesn't name the stage's data),
	// matching the IR's SplitLabel rule.
	split := inputs[0].r.t.String()
	for _, in := range inputs {
		if in.info.ElemBytes != 0 {
			split = in.r.t.String()
			break
		}
	}
	ex := &stageExec{
		st: st, inputs: inputs, viewers: resolveViewers(inputs),
		si: si, calls: stageCalls(st), split: split, elemBytes: sumElemBytes,
	}
	if s.opts.RetryPolicy.enabled() {
		ex.mutInPlace = mutInPlaceInputs(st, inputs)
	}

	if tr := s.opts.Tracer; tr != nil {
		tr.Emit(obs.Event{Kind: obs.EvStageBegin, Time: time.Now(), Stage: si,
			Worker: obs.RuntimeLane, Calls: ex.calls, Split: ex.split,
			Elems: total, Bytes: sumElemBytes, BatchElems: batch, Workers: workers,
			CacheBytes: s.opts.cacheTargetBytes()})
	}

	if s.opts.DynamicScheduling {
		return s.executeDynamic(ctx, ex, total, batch, workers)
	}

	// Static partitioning: workers take contiguous, near-equal element
	// ranges (§5.2 Step 1). The first worker error cancels the stage
	// context so siblings stop at their next batch boundary.
	per := total / int64(workers)
	rem := total % int64(workers)

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := s.pools.getOuts(workers)
	var wg sync.WaitGroup
	lo := int64(0)
	for w := 0; w < workers; w++ {
		hi := lo + per
		if int64(w) < rem {
			hi++
		}
		wg.Add(1)
		w, wlo, whi := w, lo, hi
		s.spawn(func() {
			defer wg.Done()
			s.workerLoop(wctx, ex, func() {
				results[w] = s.runWorker(wctx, ex, w, wlo, whi, batch)
			})
			if results[w].err != nil {
				cancel()
			}
		})
		lo = hi
	}
	wg.Wait()

	errs := make([]error, len(results))
	for i, r := range results {
		errs[i] = r.err
	}
	if err := s.firstWorkerError(st, errs); err != nil {
		return err
	}

	// Final merge on the main thread (§5.2 Step 3), then write back.
	t0 := time.Now()
	for oi, out := range st.outputs {
		nPieces := 0
		for _, r := range results {
			nPieces += len(r.partials[out.b.id])
		}
		pieces := s.pools.getAnys(nPieces)
		pieces = pieces[:0]
		for _, r := range results {
			pieces = append(pieces, r.partials[out.b.id]...)
		}
		merged, err := s.mergePieces(out.r, pieces)
		s.pools.putAnys(pieces[:cap(pieces)])
		if err != nil {
			return s.stageErr(st, OriginMerge, fmt.Errorf("merge output %d: %w", oi, err))
		}
		out.b.val = merged
		out.b.hasVal = true
		out.b.ready = true
		out.b.discarded = false
	}
	s.stats.add(&s.stats.MergeNS, time.Since(t0))
	s.emitMerge(ex, obs.RuntimeLane, t0)
	for i := range results {
		s.pools.putRaw(results[i].partials)
	}
	s.pools.putOuts(results)

	// In-place mutated bindings are already up to date; mark them ready.
	s.finishStageBindings(st)
	return nil
}

// workerLoop runs body, optionally under pprof labels so CPU profiles
// attribute worker samples to the stage and split type
// (go tool pprof -tagfocus mozart_stage=N).
func (s *Session) workerLoop(ctx context.Context, ex *stageExec, body func()) {
	if !s.opts.ProfileLabels {
		body()
		return
	}
	labels := pprof.Labels("mozart_stage", strconv.Itoa(ex.si), "mozart_split", ex.split)
	pprof.Do(ctx, labels, func(context.Context) { body() })
}

// emitMerge reports a merge span (per-worker pre-merge or the final merge on
// the runtime lane) started at t0.
func (s *Session) emitMerge(ex *stageExec, worker int, t0 time.Time) {
	if tr := s.opts.Tracer; tr != nil {
		tr.Emit(obs.Event{Kind: obs.EvMerge, Time: time.Now(), Dur: time.Since(t0),
			Stage: ex.si, Worker: worker, Calls: ex.calls, Split: ex.split})
	}
}

// firstWorkerError picks the stage's result from per-worker errors: a real
// fault wins over cancellation noise from siblings that merely observed the
// canceled context; if every error is a context error, the caller's context
// expired and the stage reports a timeout/cancellation fault.
func (s *Session) firstWorkerError(st *planStage, errs []error) error {
	var cancelErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		var se *StageError
		if errors.As(err, &se) {
			return err
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if cancelErr == nil {
				cancelErr = err
			}
			continue
		}
		return err
	}
	if cancelErr == nil {
		return nil
	}
	return s.stageErr(st, originFromContext(cancelErr), cancelErr)
}

// mergePieces merges pieces under resolution r, resolving a deferred
// splitter from the pieces' dynamic type.
func (s *Session) mergePieces(r resolved, pieces []any) (any, error) {
	sp := r.splitter
	if sp == nil {
		if len(pieces) == 0 {
			return nil, fmt.Errorf("cannot merge zero pieces: the split type is deferred and no piece reveals the data type (zero-element input to a type-destroying call?)")
		}
		d, ok := lookupDefaultSplit(pieces[0])
		if !ok {
			return nil, fmt.Errorf("no default split type registered for %T", pieces[0])
		}
		sp = d.splitter
	}
	return s.safeMerge(sp, pieces, r.t)
}

// finishStageBindings marks every binding written by the stage as ready.
func (s *Session) finishStageBindings(st *planStage) {
	for _, c := range st.calls {
		for i, p := range c.n.sa.Params {
			if p.Mut {
				c.n.args[i].ready = true
			}
		}
	}
}

// executeDynamic is the work-stealing-style alternative to static
// partitioning: workers atomically claim the next unprocessed batch, and
// stop claiming as soon as any worker records an error (the stage context
// is canceled). Output pieces are collected per batch index so merges see
// them in order and results match static scheduling exactly.
func (s *Session) executeDynamic(ctx context.Context, ex *stageExec, total, batch int64, workers int) error {
	st := ex.st
	nBatches := (total + batch - 1) / batch
	pieces := map[int][]any{} // output binding id -> piece per batch index
	for _, o := range st.outputs {
		pieces[o.b.id] = s.pools.getAnys(int(nBatches))
	}
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var next atomic.Int64
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		w := w
		s.spawn(func() {
			defer wg.Done()
			s.workerLoop(wctx, ex, func() {
				sc := s.pools.getScratch()
				defer s.pools.putScratch(sc)
				for {
					if err := wctx.Err(); err != nil {
						errs[w] = err
						return
					}
					idx := next.Add(1) - 1
					if idx >= nBatches {
						return
					}
					start := idx * batch
					end := start + batch
					if end > total {
						end = total
					}
					out, err := s.runBatchResilient(wctx, ex, sc, w, start, end)
					if err != nil {
						errs[w] = err
						cancel()
						return
					}
					for id, piece := range out {
						pieces[id][idx] = piece
					}
				}
			})
		})
	}
	wg.Wait()
	if err := s.firstWorkerError(st, errs); err != nil {
		return err
	}

	t0 := time.Now()
	for oi, out := range st.outputs {
		all := pieces[out.b.id]
		ps := s.pools.getAnys(len(all))
		ps = ps[:0]
		for _, p := range all {
			if p != nil {
				ps = append(ps, p)
			}
		}
		merged, err := s.mergePieces(out.r, ps)
		s.pools.putAnys(ps[:cap(ps)])
		s.pools.putAnys(all)
		if err != nil {
			return s.stageErr(st, OriginMerge, fmt.Errorf("merge output %d: %w", oi, err))
		}
		out.b.val = merged
		out.b.hasVal = true
		out.b.ready = true
		out.b.discarded = false
	}
	s.stats.add(&s.stats.MergeNS, time.Since(t0))
	s.emitMerge(ex, obs.RuntimeLane, t0)
	s.finishStageBindings(st)
	return nil
}

// runBatch splits inputs for [start, end), pipelines the batch through the
// stage's calls, and returns the pieces of stage outputs. sc is the pooled
// per-worker scratch (env map, argument buffers, SplitView reuse slots).
// It is the single batch body for both static and dynamic scheduling, so
// panic isolation and Pedantic checks behave identically under either
// scheduler. w is the worker lane and attempt the retry attempt number,
// both only used for the batch span event. The returned output map is
// scratch-owned: callers must consume it before the worker's next batch.
func (s *Session) runBatch(ex *stageExec, sc *workerScratch, w int, start, end int64, attempt int) (map[int]any, error) {
	st, inputs := ex.st, ex.inputs
	batchErr := func(origin FaultOrigin, call string, err error) *StageError {
		se := s.stageErr(st, origin, err)
		se.Call = call
		se.Start, se.End = start, end
		return se
	}

	env := sc.env
	clear(env)
	t0 := time.Now()
	views := 0
	for ii, in := range inputs {
		var piece any
		var err error
		if ex.viewers != nil && ex.viewers[ii] != nil {
			// Zero-copy path: hand the splitter the reuse slot from the
			// last batch at these coordinates. In steady state the slot
			// already holds the right view of the right storage and comes
			// back unchanged — no copy, no boxing, no allocation.
			key := viewKey{in: ii, start: start, end: end}
			piece, err = s.safeSplitView(ex.viewers[ii], in.val, in.r.t, start, end, sc.views[key])
			if err == nil {
				sc.views[key] = piece
				views++
			}
		} else {
			piece, err = s.safeSplit(in.r.splitter, in.val, in.r.t, start, end)
		}
		if err != nil {
			return nil, batchErr(OriginSplit, "", fmt.Errorf("split of %s: %w", in.r.t, err))
		}
		if s.opts.Pedantic && piece == nil {
			return nil, batchErr(OriginPedantic, "", fmt.Errorf("pedantic: splitter for %s produced nil piece", in.r.t))
		}
		env[in.b.id] = piece
	}
	splitDur := time.Since(t0)
	s.stats.add(&s.stats.SplitNS, splitDur)
	s.stats.add(&s.stats.Batches, 1)
	if views > 0 {
		s.stats.add(&s.stats.ViewSplits, time.Duration(views))
	}

	var taskDur time.Duration
	for ci, c := range st.calls {
		args := sc.argsFor(ci, len(c.n.args))
		for i, r := range c.args {
			b := c.n.args[i]
			if r.broadcast {
				args[i] = b.val
				continue
			}
			piece, ok := env[b.id]
			if !ok {
				return nil, batchErr(OriginInternal, c.n.name, fmt.Errorf("%s: internal: no piece for split argument %s", c.n.name, c.n.sa.Params[i].Name))
			}
			if s.opts.Pedantic && piece == nil {
				return nil, batchErr(OriginPedantic, c.n.name, fmt.Errorf("pedantic: %s received nil piece for %s", c.n.name, c.n.sa.Params[i].Name))
			}
			args[i] = piece
		}
		if s.opts.Logf != nil {
			s.opts.Logf("mozart: call %s on elements [%d,%d)", c.n.name, start, end)
		}
		t1 := time.Now()
		ret, err := s.safeCall(c.n.fn, args)
		d := time.Since(t1)
		taskDur += d
		s.stats.add(&s.stats.TaskNS, d)
		s.stats.add(&s.stats.Calls, 1)
		if err != nil {
			return nil, batchErr(OriginCall, c.n.name, fmt.Errorf("%s: %w", c.n.name, err))
		}
		if c.n.ret != nil {
			env[c.n.ret.id] = ret
		}
	}
	var out map[int]any
	if len(st.outputs) > 0 {
		out = sc.out
		clear(out)
		for _, o := range st.outputs {
			if piece, ok := env[o.b.id]; ok {
				out[o.b.id] = piece
			}
		}
	}
	if tr := s.opts.Tracer; tr != nil {
		tr.Emit(obs.Event{Kind: obs.EvBatch, Time: time.Now(), Dur: time.Since(t0),
			Stage: ex.si, Worker: w, Start: start, End: end,
			Calls: ex.calls, Split: ex.split,
			SplitNS: int64(splitDur), TaskNS: int64(taskDur),
			Bytes: (end - start) * ex.elemBytes, Attempt: attempt})
	}
	return out, nil
}

type workerOut struct {
	partials map[int][]any
	err      error
}

// runWorker is the per-worker driver loop (§5.2 Step 2): for each batch in
// the worker's element range, run the batch through the stage and stash
// pieces of stage outputs; at the end the worker pre-merges its own partial
// lists. The worker checks the stage context between batches and aborts
// promptly once a sibling has failed or the stage deadline passed.
func (s *Session) runWorker(ctx context.Context, ex *stageExec, w int, lo, hi, batch int64) workerOut {
	st := ex.st
	sc := s.pools.getScratch()
	defer s.pools.putScratch(sc)
	raw := s.pools.getRaw() // output binding id -> pieces

	for start := lo; start < hi; start += batch {
		if err := ctx.Err(); err != nil {
			s.pools.putRaw(raw)
			return workerOut{err: err}
		}
		end := start + batch
		if end > hi {
			end = hi
		}
		out, err := s.runBatchResilient(ctx, ex, sc, w, start, end)
		if err != nil {
			s.pools.putRaw(raw)
			return workerOut{err: err}
		}
		for id, piece := range out {
			raw[id] = append(raw[id], piece)
		}
	}

	// Per-worker pre-merge (§5.2 Step 3) keeps the main-thread merge cheap
	// and is valid because Merge is associative. The partials map (and its
	// piece slices) go back to the pool after the main-thread final merge.
	partials := s.pools.getRaw()
	t2 := time.Now()
	merges := 0
	for _, o := range st.outputs {
		pieces := raw[o.b.id]
		if len(pieces) == 0 {
			continue
		}
		merged, err := s.mergePieces(o.r, pieces)
		if err != nil {
			s.pools.putRaw(raw)
			s.pools.putRaw(partials)
			return workerOut{err: s.stageErr(st, OriginMerge, fmt.Errorf("worker merge: %w", err))}
		}
		partials[o.b.id] = append(partials[o.b.id], merged)
		merges++
	}
	s.pools.putRaw(raw)
	s.stats.add(&s.stats.MergeNS, time.Since(t2))
	if merges > 0 {
		s.emitMerge(ex, w, t2)
	}
	return workerOut{partials: partials}
}

// executeWhole runs a stage that has no split inputs — or a stage being
// re-executed under the fallback policy — by executing every call once over
// full values on the calling thread, exactly as the unannotated library
// would. Panics are still isolated into StageErrors.
func (s *Session) executeWhole(st *planStage) error {
	for _, c := range st.calls {
		args := make([]any, len(c.n.args))
		for i, b := range c.n.args {
			if !b.hasVal {
				return s.stageErr(st, OriginInternal, fmt.Errorf("%s: argument %s not materialized", c.n.name, c.n.sa.Params[i].Name))
			}
			args[i] = b.val
		}
		if s.opts.Logf != nil {
			s.opts.Logf("mozart: call %s (whole)", c.n.name)
		}
		t0 := time.Now()
		ret, err := s.safeCall(c.n.fn, args)
		s.stats.add(&s.stats.TaskNS, time.Since(t0))
		s.stats.add(&s.stats.Calls, 1)
		if err != nil {
			se := s.stageErr(st, OriginCall, fmt.Errorf("%s: %w", c.n.name, err))
			se.Call = c.n.name
			return se
		}
		if c.n.ret != nil {
			c.n.ret.val = ret
			c.n.ret.hasVal = true
			c.n.ret.ready = true
			c.n.ret.discarded = false
		}
		for i, p := range c.n.sa.Params {
			if p.Mut {
				c.n.args[i].ready = true
			}
		}
	}
	return nil
}

func callNames(st *planStage) []string {
	names := make([]string, 0, len(st.calls))
	for _, c := range st.calls {
		names = append(names, c.n.name)
	}
	return names
}

// stageCalls renders a stage's pipeline as "a -> b -> c" for events,
// preferring the IR's rendering so every consumer shows the same string.
func stageCalls(st *planStage) string {
	if st.ir != nil {
		return st.ir.Pipeline()
	}
	return join(callNames(st), " -> ")
}

func describeStage(st *planStage) string {
	if len(st.calls) == 0 {
		return "empty stage"
	}
	return fmt.Sprintf("stage[%s]", join(callNames(st), " -> "))
}

func join(parts []string, sep string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += sep
		}
		out += p
	}
	return out
}
