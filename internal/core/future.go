package core

import "context"

// Future is a lazy value handle, the Go analogue of the paper's C++
// Future<T> and Python placeholder objects (§4). Accessing the value forces
// evaluation of the session's pending dataflow graph.
type Future struct {
	sess *Session
	b    *binding
}

// Get forces evaluation of the pending graph and returns the value, under
// the session's base context (Options.BaseContext, default
// context.Background()) — a request-scoped deadline installed there bounds
// lazy reads too.
func (f *Future) Get() (any, error) {
	return f.GetContext(f.sess.baseContext())
}

// GetContext is Get under a caller-controlled context (see
// Session.EvaluateContext). When evaluation fails, a binding materialized
// by an earlier successful evaluation still returns its (final) value;
// a binding the failed evaluation should have produced is poisoned and
// returns ErrNotEvaluated with the failure as its cause — never a stale or
// partial value.
func (f *Future) GetContext(ctx context.Context) (any, error) {
	if err := f.sess.EvaluateContext(ctx); err != nil {
		if f.b.ready && !f.b.discarded {
			return f.b.val, nil
		}
		if f.b.discarded {
			return nil, ErrDiscarded
		}
		return nil, &notEvaluatedError{cause: err}
	}
	return f.sess.read(f.b)
}

// Value is like Get but panics on error; convenient in examples and tests.
func (f *Future) Value() any {
	v, err := f.Get()
	if err != nil {
		panic(err)
	}
	return v
}

// Keep marks the value as needed even if it is only consumed inside a
// pipeline stage, forcing the runtime to merge and materialize it.
func (f *Future) Keep() *Future {
	f.b.keep = true
	return f
}

// Resolved reports whether the value has already been materialized.
func (f *Future) Resolved() bool { return f.b.ready && !f.b.discarded }

// Float64s returns the value as a []float64, forcing evaluation.
func (f *Future) Float64s() ([]float64, error) {
	v, err := f.Get()
	if err != nil {
		return nil, err
	}
	s, ok := v.([]float64)
	if !ok {
		return nil, typeErrorf("[]float64", v)
	}
	return s, nil
}

// Float64 returns the value as a float64, forcing evaluation.
func (f *Future) Float64() (float64, error) {
	v, err := f.Get()
	if err != nil {
		return 0, err
	}
	s, ok := v.(float64)
	if !ok {
		return 0, typeErrorf("float64", v)
	}
	return s, nil
}

// Int64 returns the value as an int64, forcing evaluation.
func (f *Future) Int64() (int64, error) {
	v, err := f.Get()
	if err != nil {
		return 0, err
	}
	s, ok := v.(int64)
	if !ok {
		return 0, typeErrorf("int64", v)
	}
	return s, nil
}
