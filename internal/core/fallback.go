package core

import (
	"fmt"
	"reflect"
	"sync"
	"time"

	"mozart/internal/obs"
)

// Snapshotter lets a mutable data type participate in whole-call fallback.
// Before a stage that mutates values in place runs split, the runtime
// snapshots every mutated input; if the stage fails with an annotation
// fault, the snapshots are restored (into the original storage, preserving
// aliasing identity) before the stage re-executes whole. Slices of any
// element type are snapshotted automatically via reflection; other data
// types either implement Snapshotter or register a snapshot function with
// RegisterSnapshot.
type Snapshotter interface {
	// SnapshotValue returns an independent copy of the receiver's state.
	SnapshotValue() (any, error)
	// RestoreValue writes a snapshot produced by SnapshotValue back into
	// the receiver's storage.
	RestoreValue(snapshot any) error
}

var (
	snapshotsMu sync.RWMutex
	snapshots   = map[reflect.Type]func(v any) (restore func() error, err error){}
)

// RegisterSnapshot registers a snapshot function for values of the same
// dynamic type as sample, the way RegisterDefaultSplit registers default
// splitters: the annotator supplies integration code and the library stays
// unmodified. fn must copy v's current state and return a closure that
// writes the copy back into v's original storage.
func RegisterSnapshot(sample any, fn func(v any) (restore func() error, err error)) {
	snapshotsMu.Lock()
	defer snapshotsMu.Unlock()
	snapshots[reflect.TypeOf(sample)] = fn
}

// snapshotValue captures v's state and returns a restore closure. Priority:
// the Snapshotter interface, then the RegisterSnapshot registry, then the
// built-in reflection path for slices.
func snapshotValue(v any) (func() error, error) {
	if sn, ok := v.(Snapshotter); ok {
		saved, err := sn.SnapshotValue()
		if err != nil {
			return nil, err
		}
		return func() error { return sn.RestoreValue(saved) }, nil
	}
	snapshotsMu.RLock()
	fn, ok := snapshots[reflect.TypeOf(v)]
	snapshotsMu.RUnlock()
	if ok {
		return fn(v)
	}
	rv := reflect.ValueOf(v)
	if rv.Kind() == reflect.Slice {
		saved := reflect.MakeSlice(rv.Type(), rv.Len(), rv.Len())
		reflect.Copy(saved, rv)
		return func() error { reflect.Copy(rv, saved); return nil }, nil
	}
	return nil, fmt.Errorf("%T is neither a slice, a core.Snapshotter, nor registered via RegisterSnapshot", v)
}

// stageSnapshot holds the restore closures for every input a stage mutates.
type stageSnapshot struct {
	restores []func() error
}

func (ss *stageSnapshot) restore() {
	for _, r := range ss.restores {
		// Restore failures are unrecoverable only for the value involved;
		// the whole-call re-execution will surface any residue as a wrong
		// result, which the caller can compare. Snapshot functions in this
		// repository never fail on restore.
		_ = r()
	}
}

// snapshotStage captures every materialized binding the stage's calls
// mutate. Returns an error when some mutated input cannot be snapshotted —
// the caller then skips fallback for this stage rather than risk
// re-executing over partially mutated data.
func (s *Session) snapshotStage(st *planStage) (*stageSnapshot, error) {
	snap := &stageSnapshot{}
	seen := map[int]bool{}
	for _, c := range st.calls {
		for i, p := range c.n.sa.Params {
			if !p.Mut || c.args[i].broadcast {
				continue
			}
			b := c.n.args[i]
			// Intermediates produced within the stage have no materialized
			// full value to protect; the whole-call path recomputes them.
			if seen[b.id] || !b.hasVal {
				continue
			}
			seen[b.id] = true
			restore, err := snapshotValue(b.val)
			if err != nil {
				return nil, fmt.Errorf("cannot snapshot mutated input %s of %s: %w", p.Name, c.n.name, err)
			}
			snap.restores = append(snap.restores, restore)
		}
	}
	return snap, nil
}

// quarantineStage records an annotation fault against the faulty
// annotation's circuit breaker so the planner runs it whole while the
// breaker is open. When the fault identifies a call, only that call's
// breaker is charged; faults in shared splitting code (Info/Split/Merge)
// charge every call in the stage, since any of their annotations may have
// supplied the faulty splitter.
func (s *Session) quarantineStage(st *planStage, serr *StageError) {
	var names []string
	if serr.Call != "" {
		names = []string{serr.Call}
	} else {
		names = callNames(st)
	}
	for _, n := range names {
		tripped, wasClosed := s.breakers.recordFault(n)
		if !tripped {
			continue
		}
		s.stats.add(&s.stats.BreakerTrips, 1)
		state := "reopened"
		if wasClosed {
			// A failed half-open probe re-opens a breaker that is still
			// counted as quarantined; only first trips add to the gauge.
			s.stats.add(&s.stats.QuarantinedCalls, 1)
			state = "open"
		}
		s.emitBreaker(n, state)
	}
}

// emitBreaker reports a circuit-breaker state transition for annotation name.
func (s *Session) emitBreaker(name, state string) {
	if tr := s.opts.Tracer; tr != nil {
		tr.Emit(obs.Event{Kind: obs.EvBreaker, Time: time.Now(), Stage: -1,
			Worker: obs.RuntimeLane, Calls: name, Detail: state})
	}
}

// recordStageSuccess reports a successfully split-executed stage to the
// breakers: a half-open probe that just passed closes its breaker and
// restores split planning for the annotation.
func (s *Session) recordStageSuccess(st *planStage) {
	if len(st.inputs) == 0 || s.breakers.empty() {
		return
	}
	for _, c := range st.calls {
		if s.breakers.recordSuccess(c.n.name) {
			s.stats.add(&s.stats.BreakerRecoveries, 1)
			s.stats.add(&s.stats.QuarantinedCalls, -1)
			s.emitBreaker(c.n.name, "closed")
		}
	}
}

// Quarantined returns the names of annotations whose circuit breakers are
// currently open or half-open (planned whole or probing), sorted. With the
// default BreakerPolicy this matches the pre-breaker semantics: every
// annotation ever faulted under FallbackQuarantine, permanently.
func (s *Session) Quarantined() []string {
	return s.breakers.openNames()
}
