package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"mozart/internal/obs"
)

// ErrTransient is the sentinel for recoverable faults. A library function or
// splitter that fails transiently (lock contention, a flaky device, a
// saturated downstream service) returns an error wrapping ErrTransient; the
// default RetryPolicy classifier retries exactly those. Everything else is
// treated as permanent and escalates to the StageError/fallback path
// unchanged.
var ErrTransient = errors.New("mozart: transient fault")

// RetryPolicy enables batch-granular retry: instead of failing the whole
// stage, the runtime replays only the failed batch — the smallest unit of
// work (§5.2) — after restoring any in-place-mutated pieces of its element
// range from a pre-attempt snapshot, so replays are idempotent. Permanent
// errors (anything the classifier rejects, plus merge faults, panics outside
// Split/Call, pedantic errors, timeouts, and cancellations) still escalate
// to the fallback path immediately.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per batch (first attempt
	// included). Zero or one disables retry.
	MaxAttempts int
	// BaseBackoff is the pre-jitter delay after the first failed attempt;
	// it doubles per attempt. Defaults to 1ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth. Defaults to 64ms.
	MaxBackoff time.Duration
	// JitterSeed seeds the deterministic jitter: the delay for (batch,
	// attempt) is a pure function of the seed, so a replayed evaluation
	// backs off identically regardless of worker interleaving.
	JitterSeed int64
	// Classify reports whether an error is transient and worth retrying.
	// Defaults to errors.Is(err, ErrTransient).
	Classify func(error) bool
	// Sleep is the backoff sleeper, injectable so tests run without
	// wall-clock delays. Defaults to time.Sleep.
	Sleep func(time.Duration)
}

func (p RetryPolicy) enabled() bool { return p.MaxAttempts > 1 }

// transient applies the classifier (default: the ErrTransient sentinel).
func (p RetryPolicy) transient(err error) bool {
	if p.Classify != nil {
		return p.Classify(err)
	}
	return errors.Is(err, ErrTransient)
}

// retryable reports whether a batch failure is worth replaying: only faults
// in the batch's own work — the splitter's Split or the library call — can
// be undone by restoring the batch's pieces and re-running. Merge faults,
// internal errors, pedantic checks, and context errors escalate.
func (p RetryPolicy) retryable(err error) bool {
	var se *StageError
	if !errors.As(err, &se) {
		return false
	}
	switch se.Origin {
	case OriginSplit, OriginCall:
	default:
		return false
	}
	return p.transient(err)
}

// backoff computes the delay before the given replay: exponential in the
// attempt number, capped, with deterministic seeded jitter in the upper half
// of the window (delay ∈ [cap/2, cap]).
func (p RetryPolicy) backoff(batchStart int64, attempt int) time.Duration {
	base := p.BaseBackoff
	if base <= 0 {
		base = time.Millisecond
	}
	max := p.MaxBackoff
	if max <= 0 {
		max = 64 * time.Millisecond
	}
	d := base << (attempt - 1)
	if d <= 0 || d > max {
		d = max
	}
	h := splitmix64(uint64(p.JitterSeed) ^ uint64(batchStart)*0x9e3779b97f4a7c15 ^ uint64(attempt)<<32)
	jitter := time.Duration(h % uint64(d/2+1))
	return d/2 + jitter
}

func (p RetryPolicy) sleep(d time.Duration) {
	if p.Sleep != nil {
		p.Sleep(d)
		return
	}
	time.Sleep(d)
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed hash used for
// jitter so backoff needs no locked RNG shared across workers.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// snapshotBatch captures pristine copies of the [start, end) pieces of every
// stage input some call mutates in place, returning one closure that
// restores them all. In-place splitters return aliasing views, so the same
// snapshot machinery the whole-call fallback uses (snapshotValue) restores
// the live range through the view without touching sibling workers' ranges.
func (s *Session) snapshotBatch(ex *stageExec, start, end int64) (func() error, error) {
	if len(ex.mutInPlace) == 0 {
		return nil, nil
	}
	restores := make([]func() error, 0, len(ex.mutInPlace))
	for _, in := range ex.mutInPlace {
		piece, err := s.safeSplit(in.r.splitter, in.val, in.r.t, start, end)
		if err != nil {
			return nil, fmt.Errorf("pre-retry split of %s: %w", in.r.t, err)
		}
		restore, err := snapshotValue(piece)
		if err != nil {
			return nil, fmt.Errorf("cannot snapshot batch piece of %s: %w", in.r.t, err)
		}
		restores = append(restores, restore)
	}
	return func() error {
		for _, r := range restores {
			if err := r(); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

// runBatchResilient is runBatch under the session's RetryPolicy: transient
// Split/Call faults replay the batch (after restoring its in-place-mutated
// pieces) with exponential, deterministically jittered backoff; permanent
// faults, exhausted attempts, and canceled contexts return the last error to
// the normal escalation path.
func (s *Session) runBatchResilient(ctx context.Context, ex *stageExec, sc *workerScratch, w int, start, end int64) (map[int]any, error) {
	pol := s.opts.RetryPolicy
	if !pol.enabled() {
		return s.runBatch(ex, sc, w, start, end, 1)
	}
	restore, snapErr := s.snapshotBatch(ex, start, end)
	for attempt := 1; ; attempt++ {
		out, err := s.runBatch(ex, sc, w, start, end, attempt)
		if err == nil {
			return out, nil
		}
		if attempt >= pol.MaxAttempts || !pol.retryable(err) || ctx.Err() != nil {
			return nil, err
		}
		if snapErr != nil {
			// The batch mutates in place but its pieces could not be
			// snapshotted: replaying would double-apply the mutation.
			return nil, fmt.Errorf("%w (batch retry skipped: %v)", err, snapErr)
		}
		if restore != nil {
			if rerr := restore(); rerr != nil {
				return nil, fmt.Errorf("%w (batch retry aborted, restore failed: %v)", err, rerr)
			}
		}
		s.stats.add(&s.stats.RetriedBatches, 1)
		if tr := s.opts.Tracer; tr != nil {
			tr.Emit(obs.Event{Kind: obs.EvRetry, Time: time.Now(), Stage: ex.si,
				Worker: w, Start: start, End: end, Calls: ex.calls,
				Attempt: attempt, Detail: err.Error()})
		}
		d := pol.backoff(start, attempt)
		s.stats.add(&s.stats.RetryBackoffNS, d)
		pol.sleep(d)
	}
}
