package core

import (
	"context"
	"sync"
	"testing"
)

// TestGovernorTryAdmit covers the non-blocking probe: reservations that
// fit succeed and are visible in InUse, reservations that would wait are
// refused without blocking, and oversized requests are refused rather than
// clamped (unlike admit, which clamps so a lone oversized stage can run).
func TestGovernorTryAdmit(t *testing.T) {
	g := NewGovernor(1000)

	rel1, ok := g.TryAdmit(600)
	if !ok {
		t.Fatalf("TryAdmit(600) on an empty governor: ok=false, want true")
	}
	if got := g.InUse(); got != 600 {
		t.Fatalf("InUse after TryAdmit(600) = %d, want 600", got)
	}

	if _, ok := g.TryAdmit(600); ok {
		t.Fatalf("TryAdmit(600) with 600 in use under budget 1000: ok=true, want refusal")
	}
	if got := g.InUse(); got != 600 {
		t.Fatalf("refused TryAdmit perturbed InUse: got %d, want 600", got)
	}

	// Oversized requests are refused, not clamped.
	g2 := NewGovernor(100)
	if _, ok := g2.TryAdmit(101); ok {
		t.Fatalf("TryAdmit(101) against budget 100: ok=true, want refusal (no clamping)")
	}

	rel1()
	if got := g.InUse(); got != 0 {
		t.Fatalf("InUse after release = %d, want 0", got)
	}

	// The release closure is idempotent: double release cannot free bytes
	// another admission now owns.
	rel2, ok := g.TryAdmit(1000)
	if !ok {
		t.Fatalf("TryAdmit(1000) after release: ok=false, want true")
	}
	rel1() // stale second call of the first release
	if got := g.InUse(); got != 1000 {
		t.Fatalf("stale double-release drove InUse to %d, want 1000", got)
	}
	rel2()
	if got := g.InUse(); got != 0 {
		t.Fatalf("InUse after final release = %d, want 0", got)
	}
}

// TestGovernorTryAdmitInert verifies nil and zero-budget governors admit
// everything without accounting.
func TestGovernorTryAdmitInert(t *testing.T) {
	var nilGov *Governor
	if rel, ok := nilGov.TryAdmit(1 << 30); !ok {
		t.Fatalf("nil governor refused TryAdmit")
	} else {
		rel()
	}
	g := NewGovernor(0)
	rel, ok := g.TryAdmit(1 << 30)
	if !ok {
		t.Fatalf("inert governor refused TryAdmit")
	}
	rel()
	if got := g.InUse(); got != 0 {
		t.Fatalf("inert governor accounted bytes: InUse=%d", got)
	}
}

// TestGovernorReleaseUnderflowGuard is the regression test for release()
// over-release: more bytes released than were ever admitted must clamp
// InUse at zero, never drive it negative — a negative InUse would
// inflate Available past the budget and let later admissions overshoot.
func TestGovernorReleaseUnderflowGuard(t *testing.T) {
	g := NewGovernor(1000)
	if _, err := g.admit(context.Background(), 300); err != nil {
		t.Fatalf("admit: %v", err)
	}
	g.release(500) // buggy caller: releases more than admitted
	if got := g.InUse(); got != 0 {
		t.Fatalf("InUse after over-release = %d, want clamp at 0", got)
	}
	if avail := g.Available(); avail != 1000 {
		t.Fatalf("Available after over-release = %d, want 1000 (budget)", avail)
	}
	g.release(100) // release with nothing admitted at all
	if got := g.InUse(); got != 0 {
		t.Fatalf("InUse after spurious release = %d, want 0", got)
	}
	// The budget guarantee still holds afterwards.
	if _, ok := g.TryAdmit(1001); ok {
		t.Fatalf("over-release widened the budget: TryAdmit(1001) succeeded")
	}
	rel, ok := g.TryAdmit(1000)
	if !ok {
		t.Fatalf("full-budget TryAdmit refused after over-release recovery")
	}
	rel()
}

// TestGovernorTryAdmitConcurrent races TryAdmit/release pairs and checks
// the budget invariant under -race: InUse never exceeds the budget and
// returns to zero once every release ran.
func TestGovernorTryAdmitConcurrent(t *testing.T) {
	const budget = 64
	g := NewGovernor(budget)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				rel, ok := g.TryAdmit(8)
				if !ok {
					continue
				}
				if in := g.InUse(); in > budget {
					t.Errorf("InUse %d exceeded budget %d", in, budget)
				}
				rel()
			}
		}()
	}
	wg.Wait()
	if got := g.InUse(); got != 0 {
		t.Fatalf("InUse after all releases = %d, want 0", got)
	}
	if hw := g.HighWater(); hw > budget {
		t.Fatalf("HighWater %d exceeded budget %d", hw, budget)
	}
}
