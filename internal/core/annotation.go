package core

import "fmt"

// TypeKind enumerates the kinds of type expressions that can appear in a
// split annotation (§3.2).
type TypeKind int

const (
	// KindMissing is the "_" type: the argument is not split; the full
	// value is broadcast (copied, usually a pointer copy) to each pipeline.
	KindMissing TypeKind = iota
	// KindConcrete is a named split type with a constructor.
	KindConcrete
	// KindGeneric is a generic such as S: all occurrences of the same name
	// within one SA must resolve to equal split types.
	KindGeneric
	// KindUnknown marks a value whose split type is destroyed by the call
	// (filters etc.). Each resolution produces a fresh unique type.
	KindUnknown
)

// TypeExpr is one type expression inside an annotation.
type TypeExpr struct {
	Kind     TypeKind
	Generic  string   // for KindGeneric
	Splitter Splitter // for KindConcrete
	Ctor     Ctor     // for KindConcrete
	TypeName string   // for KindConcrete: diagnostic name
}

// Missing returns the "_" type expression.
func Missing() TypeExpr { return TypeExpr{Kind: KindMissing} }

// Generic returns a generic type expression with the given name.
func Generic(name string) TypeExpr { return TypeExpr{Kind: KindGeneric, Generic: name} }

// Unknown returns the unknown type expression.
func Unknown() TypeExpr { return TypeExpr{Kind: KindUnknown} }

// Concrete returns a concrete type expression backed by the given splitter
// and constructor.
func Concrete(name string, s Splitter, ctor Ctor) TypeExpr {
	return TypeExpr{Kind: KindConcrete, TypeName: name, Splitter: s, Ctor: ctor}
}

// Param is one annotated function parameter.
type Param struct {
	Name string
	// Mut marks the parameter as mutated by the function; the runtime uses
	// this to add data-dependency edges and to write back merged results
	// for copying splitters.
	Mut  bool
	Type TypeExpr
}

// Annotation is a split annotation over one side-effect-free function
// (Listing 3). Ret is nil for void functions.
type Annotation struct {
	FuncName string
	Params   []Param
	Ret      *TypeExpr
}

// Validate performs the structural checks the paper's annotate tool
// performs: generics used consistently, concrete types fully specified.
func (a *Annotation) Validate() error {
	if a == nil {
		return fmt.Errorf("mozart: nil annotation")
	}
	check := func(where string, t TypeExpr) error {
		switch t.Kind {
		case KindConcrete:
			if t.Splitter == nil || t.Ctor == nil {
				return fmt.Errorf("mozart: %s: %s: concrete split type %q needs a splitter and a constructor", a.FuncName, where, t.TypeName)
			}
		case KindGeneric:
			if t.Generic == "" {
				return fmt.Errorf("mozart: %s: %s: generic split type needs a name", a.FuncName, where)
			}
		}
		return nil
	}
	seen := map[string]bool{}
	for _, p := range a.Params {
		if p.Name == "" {
			return fmt.Errorf("mozart: %s: unnamed parameter", a.FuncName)
		}
		if seen[p.Name] {
			return fmt.Errorf("mozart: %s: duplicate parameter name %q", a.FuncName, p.Name)
		}
		seen[p.Name] = true
		if err := check("param "+p.Name, p.Type); err != nil {
			return err
		}
	}
	if a.Ret != nil {
		if err := check("return", *a.Ret); err != nil {
			return err
		}
	}
	return nil
}

// Func is the calling convention for registered functions. The runtime
// invokes fn with the (possibly split) argument values in positional order;
// fn returns the produced value, or nil for void functions. Functions must
// be side-effect free apart from mutating arguments marked mut (§2.2).
type Func func(args []any) (any, error)
