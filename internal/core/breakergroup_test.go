package core

import (
	"sync"
	"testing"
	"time"
)

// TestBreakerGroupSharedAcrossSessions: a fault recorded through one
// session trips the shared breaker, and a second session built over the
// same group plans the annotation whole — quarantine state stays warm
// across session teardown.
func TestBreakerGroupSharedAcrossSessions(t *testing.T) {
	g := NewBreakerGroup(BreakerPolicy{Threshold: 1})
	s1 := NewSession(Options{Breakers: g})
	s2 := NewSession(Options{Breakers: g})
	if s1.breakers != g.set || s2.breakers != g.set {
		t.Fatalf("sessions did not adopt the shared breaker set")
	}

	if tripped, wasClosed := s1.breakers.recordFault("vdLog1p"); !tripped || !wasClosed {
		t.Fatalf("recordFault = (%v, %v), want first trip", tripped, wasClosed)
	}
	if whole, _ := s2.breakers.planWhole("vdLog1p"); !whole {
		t.Fatalf("second session does not see the shared trip")
	}
	if got := g.Trips(); got != 1 {
		t.Fatalf("Trips = %d, want 1", got)
	}
	if names := g.OpenNames(); len(names) != 1 || names[0] != "vdLog1p" {
		t.Fatalf("OpenNames = %v, want [vdLog1p]", names)
	}
}

// TestBreakerGroupIsolation: trips in one group are invisible to another —
// the property a multi-tenant server leans on.
func TestBreakerGroupIsolation(t *testing.T) {
	a := NewBreakerGroup(BreakerPolicy{Threshold: 1})
	b := NewBreakerGroup(BreakerPolicy{Threshold: 1})
	a.set.recordFault("vdDiv")
	if got := b.Trips(); got != 0 {
		t.Fatalf("group b saw %d trips from group a", got)
	}
	if names := b.OpenNames(); len(names) != 0 {
		t.Fatalf("group b OpenNames = %v, want none", names)
	}
	sb := NewSession(Options{Breakers: b})
	if whole, _ := sb.breakers.planWhole("vdDiv"); whole {
		t.Fatalf("tenant b's planner degraded by tenant a's fault")
	}
}

// TestBreakerGroupCooldownHeals: the shared breaker performs the
// open -> half-open -> closed cycle across distinct sessions.
func TestBreakerGroupCooldownHeals(t *testing.T) {
	now := time.Unix(0, 0)
	g := NewBreakerGroup(BreakerPolicy{Threshold: 1, Cooldown: time.Second,
		Now: func() time.Time { return now }})
	g.set.recordFault("vdAdd")
	if whole, _ := g.set.planWhole("vdAdd"); !whole {
		t.Fatalf("freshly tripped breaker not open")
	}
	now = now.Add(2 * time.Second)
	whole, probing := g.set.planWhole("vdAdd")
	if whole || !probing {
		t.Fatalf("after cooldown planWhole = (%v, %v), want half-open probe", whole, probing)
	}
	if rec := g.set.recordSuccess("vdAdd"); !rec {
		t.Fatalf("successful probe did not close the breaker")
	}
	if names := g.OpenNames(); len(names) != 0 {
		t.Fatalf("OpenNames after heal = %v, want none", names)
	}
}

// TestBreakerGroupConcurrent hammers one group from many goroutines under
// -race: the mutex-guarded set must tolerate concurrent sessions
// transitioning the same breakers.
func TestBreakerGroupConcurrent(t *testing.T) {
	g := NewBreakerGroup(BreakerPolicy{Threshold: 1, Cooldown: time.Nanosecond})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := []string{"a", "b", "c"}[i%3]
			for j := 0; j < 200; j++ {
				switch j % 4 {
				case 0:
					g.set.recordFault(name)
				case 1:
					g.set.recordSuccess(name)
				case 2:
					g.set.planWhole(name)
				case 3:
					g.OpenNames()
				}
			}
		}(i)
	}
	wg.Wait()
	if g.Trips() < 1 {
		t.Fatalf("expected at least one trip under concurrent faulting")
	}
}
