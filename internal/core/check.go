package core

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
)

// CheckConfig configures CheckAnnotation.
type CheckConfig struct {
	// Trials is the number of randomized runs (default 16).
	Trials int
	// MaxWorkers bounds the randomized worker count (default 8).
	MaxWorkers int
	// MaxBatch bounds the randomized batch size in elements (default 1024).
	MaxBatch int64
	// Seed makes the check deterministic.
	Seed int64
}

func (c CheckConfig) withDefaults() CheckConfig {
	if c.Trials <= 0 {
		c.Trials = 16
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = 8
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1024
	}
	return c
}

// CheckSpec names everything CheckAnnotation needs: the annotated function,
// its annotation, a deterministic argument generator, an equality predicate,
// and the check configuration. A struct (rather than positional parameters)
// keeps call sites self-describing and lets future knobs ride along without
// breaking them.
type CheckSpec struct {
	// Fn is the function under check.
	Fn Func
	// Annotation is Fn's split annotation.
	Annotation *Annotation
	// Gen generates one argument list per seed. It must return an
	// independent but identical list when called twice with the same seed,
	// so the whole and split runs see equal inputs.
	Gen func(seed int64) []any
	// Eq compares a split-run result (return value or mut argument) against
	// the whole-run reference.
	Eq func(got, want any) bool
	// Config tunes trials, randomization bounds, and the seed.
	Config CheckConfig
}

// CheckAnnotation fuzz-checks the §3.4 soundness condition of a split
// annotation:
//
//	F(a, b, ...) = Merge(F(a1, b1, ...), F(a2, b2, ...), ...)
//
// It repeatedly generates arguments with spec.Gen, runs the function whole,
// runs it again under the runtime with a randomized worker count and batch
// size, and compares the results — the return value and every mut argument —
// with spec.Eq.
//
// This is the tooling the paper's §7.1 calls for ("tools that could
// formally prove an SA's compatibility with a function would be helpful...
// we also fuzz tested our annotated functions"): it cannot prove
// soundness, but it reliably catches annotations like a row-split over a
// function with cross-row behaviour (see the imagesa Blur tests).
func CheckAnnotation(spec CheckSpec) error {
	fn, sa, gen, eq := spec.Fn, spec.Annotation, spec.Gen, spec.Eq
	if err := sa.Validate(); err != nil {
		return err
	}
	cfg := spec.Config.withDefaults()
	if err := checkViewCaps(spec, cfg); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for trial := 0; trial < cfg.Trials; trial++ {
		seed := cfg.Seed + int64(trial)*7919
		wholeArgs := gen(seed)
		splitArgs := gen(seed)
		if len(wholeArgs) != len(sa.Params) || len(splitArgs) != len(sa.Params) {
			return fmt.Errorf("mozart: check: gen returned %d args, annotation has %d params", len(wholeArgs), len(sa.Params))
		}

		wantRet, err := fn(wholeArgs)
		if err != nil {
			return fmt.Errorf("mozart: check: trial %d: whole run failed: %w", trial, err)
		}

		workers := 1 + rng.Intn(cfg.MaxWorkers)
		batch := 1 + rng.Int63n(cfg.MaxBatch)
		s := NewSession(Options{Workers: workers, BatchElems: batch, Pedantic: true})
		mutFuts := make([]*Future, len(sa.Params))
		for i, p := range sa.Params {
			if p.Mut {
				mutFuts[i] = s.Track(splitArgs[i])
			}
		}
		callArgs := make([]any, len(splitArgs))
		copy(callArgs, splitArgs)
		retFut := s.Call(fn, sa, callArgs...)
		if err := s.EvaluateContext(context.Background()); err != nil {
			return fmt.Errorf("mozart: check: trial %d (workers=%d batch=%d): %w", trial, workers, batch, err)
		}

		if sa.Ret != nil {
			got, err := retFut.Get()
			if err != nil {
				return fmt.Errorf("mozart: check: trial %d: reading result: %w", trial, err)
			}
			if !eq(got, wantRet) {
				return fmt.Errorf("mozart: check: trial %d (workers=%d batch=%d): split result differs from whole run — the annotation is unsound for %s", trial, workers, batch, sa.FuncName)
			}
		}
		for i, p := range sa.Params {
			if !p.Mut {
				continue
			}
			got, err := mutFuts[i].Get()
			if err != nil {
				return fmt.Errorf("mozart: check: trial %d: reading mut arg %s: %w", trial, p.Name, err)
			}
			if !eq(got, wholeArgs[i]) {
				return fmt.Errorf("mozart: check: trial %d (workers=%d batch=%d): mut argument %s differs from whole run — the annotation is unsound for %s", trial, workers, batch, p.Name, sa.FuncName)
			}
		}
	}
	return nil
}

// checkViewCaps verifies the CapView contract for every concrete parameter
// whose splitter declares it: SplitView pieces must alias the source's
// storage (pointer containment of every backing array), must agree with the
// plain Split over the same range, and the reuse slot must round-trip — a
// retargeted reuse piece still aliases the source, and mutating through a
// view is visible in the source. An aliasing violation is an annotation bug
// the executor cannot detect at run time (it would silently decay zero-copy
// to copies, or worse, drop writes), so the checker rejects it up front.
func checkViewCaps(spec CheckSpec, cfg CheckConfig) error {
	sa := spec.Annotation
	args := spec.Gen(cfg.Seed + 104729)
	if len(args) != len(sa.Params) {
		return nil // the trial loop reports the arity mismatch
	}
	for i, p := range sa.Params {
		if p.Type.Kind != KindConcrete {
			continue
		}
		sp := p.Type.Splitter
		if !CapabilitiesOf(sp).Has(CapView) {
			continue
		}
		vs, ok := sp.(ViewSplitter)
		if !ok {
			return fmt.Errorf("mozart: check: %s: param %s: splitter declares CapView but implements no SplitView", sa.FuncName, p.Name)
		}
		t, err := p.Type.Ctor(args)
		if err != nil {
			continue
		}
		v := args[i]
		info, err := sp.Info(v, t)
		if err != nil || info.Elems < 2 {
			continue
		}
		mid := info.Elems / 2
		fail := func(detail string, err error) error {
			if err != nil {
				return fmt.Errorf("mozart: check: %s: param %s: %s: %w", sa.FuncName, p.Name, detail, err)
			}
			return fmt.Errorf("mozart: check: %s: param %s: %s", sa.FuncName, p.Name, detail)
		}

		// A fresh view must alias the source and match the plain split.
		a, err := vs.SplitView(v, t, 0, mid, nil)
		if err != nil {
			return fail("SplitView failed", err)
		}
		if !viewAliases(a, v) {
			return fail("SplitView piece does not alias the source (CapView requires aliasing views)", nil)
		}
		ref, err := sp.Split(v, t, 0, mid)
		if err != nil {
			return fail("Split failed", err)
		}
		if !reflect.DeepEqual(a, ref) {
			return fail("SplitView piece differs from Split over the same range", nil)
		}

		// Retargeting the reuse slot at a different range must still alias
		// and still match the plain split.
		b, err := vs.SplitView(v, t, mid, info.Elems, a)
		if err != nil {
			return fail("SplitView with reuse failed", err)
		}
		if !viewAliases(b, v) {
			return fail("reused SplitView piece does not alias the source", nil)
		}
		ref2, err := sp.Split(v, t, mid, info.Elems)
		if err != nil {
			return fail("Split failed", err)
		}
		if !reflect.DeepEqual(b, ref2) {
			return fail("reused SplitView piece differs from Split over the same range", nil)
		}

		// Identical-range reuse must be stable (the zero-alloc fast path).
		c, err := vs.SplitView(v, t, mid, info.Elems, b)
		if err != nil {
			return fail("identical-range SplitView with reuse failed", err)
		}
		if !reflect.DeepEqual(c, ref2) {
			return fail("identical-range SplitView reuse corrupted the piece", nil)
		}

		// Writes through a view must land in the source (the round-trip
		// under mutation the in-place write-back path depends on).
		if !mutationVisible(c, v) {
			return fail("mutation through a SplitView piece is not visible in the source", nil)
		}
	}
	return nil
}

// bufferRange is one backing array reachable from a value: the slice itself
// plus its [base, base+n*size) address range.
type bufferRange struct {
	val  reflect.Value
	base uintptr
	size uintptr
	n    int
}

// collectBuffers gathers the backing arrays of every non-empty slice
// reachable through pointers, exported struct fields, interfaces, and
// pointer/struct slice elements, to a bounded depth.
func collectBuffers(rv reflect.Value, depth int, out *[]bufferRange) {
	if depth > 6 || !rv.IsValid() {
		return
	}
	switch rv.Kind() {
	case reflect.Pointer, reflect.Interface:
		if !rv.IsNil() {
			collectBuffers(rv.Elem(), depth+1, out)
		}
	case reflect.Struct:
		for i := 0; i < rv.NumField(); i++ {
			if rv.Type().Field(i).IsExported() {
				collectBuffers(rv.Field(i), depth+1, out)
			}
		}
	case reflect.Slice:
		if rv.Len() == 0 {
			return
		}
		*out = append(*out, bufferRange{val: rv, base: rv.Pointer(), size: rv.Type().Elem().Size(), n: rv.Len()})
		switch rv.Type().Elem().Kind() {
		case reflect.Pointer, reflect.Struct, reflect.Interface:
			for i := 0; i < rv.Len(); i++ {
				collectBuffers(rv.Index(i), depth+1, out)
			}
		}
	}
}

// contains reports whether p's address range lies within s's.
func (s bufferRange) contains(p bufferRange) bool {
	return p.size == s.size && p.base >= s.base &&
		p.base+uintptr(p.n)*p.size <= s.base+uintptr(s.n)*s.size
}

// viewAliases reports whether every backing array of piece lies within one
// of src's backing arrays — the pointer-identity aliasing check for CapView.
func viewAliases(piece, src any) bool {
	var pb, sb []bufferRange
	collectBuffers(reflect.ValueOf(piece), 0, &pb)
	collectBuffers(reflect.ValueOf(src), 0, &sb)
	if len(pb) == 0 {
		return false
	}
	for _, p := range pb {
		ok := false
		for _, s := range sb {
			if s.contains(p) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// mutationVisible pokes the first scalar buffer of piece and reads the same
// memory back through src's containing buffer, restoring the original value
// afterwards. True when the write is observed (or when piece exposes no
// scalar buffer to probe — the aliasing check has already passed).
func mutationVisible(piece, src any) bool {
	var pb, sb []bufferRange
	collectBuffers(reflect.ValueOf(piece), 0, &pb)
	collectBuffers(reflect.ValueOf(src), 0, &sb)
	for _, p := range pb {
		k := p.val.Type().Elem().Kind()
		switch k {
		case reflect.Float64, reflect.Float32, reflect.Int64, reflect.Int32, reflect.Int,
			reflect.Uint64, reflect.Uint32, reflect.Uint8, reflect.Bool:
		default:
			continue
		}
		for _, s := range sb {
			if !s.contains(p) {
				continue
			}
			idx := int((p.base - s.base) / p.size)
			pe := p.val.Index(0)
			se := s.val.Index(idx)
			old := reflect.ValueOf(pe.Interface())
			switch k {
			case reflect.Bool:
				pe.SetBool(!pe.Bool())
			case reflect.Float64, reflect.Float32:
				pe.SetFloat(pe.Float() + 1)
			case reflect.Uint64, reflect.Uint32, reflect.Uint8:
				pe.SetUint(pe.Uint() ^ 1)
			default:
				pe.SetInt(pe.Int() + 1)
			}
			visible := reflect.DeepEqual(se.Interface(), pe.Interface())
			pe.Set(old)
			return visible
		}
	}
	return true
}
