package core

import (
	"context"
	"fmt"
	"math/rand"
)

// CheckConfig configures CheckAnnotation.
type CheckConfig struct {
	// Trials is the number of randomized runs (default 16).
	Trials int
	// MaxWorkers bounds the randomized worker count (default 8).
	MaxWorkers int
	// MaxBatch bounds the randomized batch size in elements (default 1024).
	MaxBatch int64
	// Seed makes the check deterministic.
	Seed int64
}

func (c CheckConfig) withDefaults() CheckConfig {
	if c.Trials <= 0 {
		c.Trials = 16
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = 8
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1024
	}
	return c
}

// CheckSpec names everything CheckAnnotation needs: the annotated function,
// its annotation, a deterministic argument generator, an equality predicate,
// and the check configuration. A struct (rather than positional parameters)
// keeps call sites self-describing and lets future knobs ride along without
// breaking them.
type CheckSpec struct {
	// Fn is the function under check.
	Fn Func
	// Annotation is Fn's split annotation.
	Annotation *Annotation
	// Gen generates one argument list per seed. It must return an
	// independent but identical list when called twice with the same seed,
	// so the whole and split runs see equal inputs.
	Gen func(seed int64) []any
	// Eq compares a split-run result (return value or mut argument) against
	// the whole-run reference.
	Eq func(got, want any) bool
	// Config tunes trials, randomization bounds, and the seed.
	Config CheckConfig
}

// CheckAnnotation fuzz-checks the §3.4 soundness condition of a split
// annotation:
//
//	F(a, b, ...) = Merge(F(a1, b1, ...), F(a2, b2, ...), ...)
//
// It repeatedly generates arguments with spec.Gen, runs the function whole,
// runs it again under the runtime with a randomized worker count and batch
// size, and compares the results — the return value and every mut argument —
// with spec.Eq.
//
// This is the tooling the paper's §7.1 calls for ("tools that could
// formally prove an SA's compatibility with a function would be helpful...
// we also fuzz tested our annotated functions"): it cannot prove
// soundness, but it reliably catches annotations like a row-split over a
// function with cross-row behaviour (see the imagesa Blur tests).
func CheckAnnotation(spec CheckSpec) error {
	fn, sa, gen, eq := spec.Fn, spec.Annotation, spec.Gen, spec.Eq
	if err := sa.Validate(); err != nil {
		return err
	}
	cfg := spec.Config.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	for trial := 0; trial < cfg.Trials; trial++ {
		seed := cfg.Seed + int64(trial)*7919
		wholeArgs := gen(seed)
		splitArgs := gen(seed)
		if len(wholeArgs) != len(sa.Params) || len(splitArgs) != len(sa.Params) {
			return fmt.Errorf("mozart: check: gen returned %d args, annotation has %d params", len(wholeArgs), len(sa.Params))
		}

		wantRet, err := fn(wholeArgs)
		if err != nil {
			return fmt.Errorf("mozart: check: trial %d: whole run failed: %w", trial, err)
		}

		workers := 1 + rng.Intn(cfg.MaxWorkers)
		batch := 1 + rng.Int63n(cfg.MaxBatch)
		s := NewSession(Options{Workers: workers, BatchElems: batch, Pedantic: true})
		mutFuts := make([]*Future, len(sa.Params))
		for i, p := range sa.Params {
			if p.Mut {
				mutFuts[i] = s.Track(splitArgs[i])
			}
		}
		callArgs := make([]any, len(splitArgs))
		copy(callArgs, splitArgs)
		retFut := s.Call(fn, sa, callArgs...)
		if err := s.EvaluateContext(context.Background()); err != nil {
			return fmt.Errorf("mozart: check: trial %d (workers=%d batch=%d): %w", trial, workers, batch, err)
		}

		if sa.Ret != nil {
			got, err := retFut.Get()
			if err != nil {
				return fmt.Errorf("mozart: check: trial %d: reading result: %w", trial, err)
			}
			if !eq(got, wantRet) {
				return fmt.Errorf("mozart: check: trial %d (workers=%d batch=%d): split result differs from whole run — the annotation is unsound for %s", trial, workers, batch, sa.FuncName)
			}
		}
		for i, p := range sa.Params {
			if !p.Mut {
				continue
			}
			got, err := mutFuts[i].Get()
			if err != nil {
				return fmt.Errorf("mozart: check: trial %d: reading mut arg %s: %w", trial, p.Name, err)
			}
			if !eq(got, wholeArgs[i]) {
				return fmt.Errorf("mozart: check: trial %d (workers=%d batch=%d): mut argument %s differs from whole run — the annotation is unsound for %s", trial, workers, batch, p.Name, sa.FuncName)
			}
		}
	}
	return nil
}
