package core

import (
	"context"
	"runtime"
	"time"

	"mozart/internal/obs"
	ir "mozart/internal/plan"
)

// FallbackPolicy selects how the runtime reacts when a stage fails because
// of an annotation fault (a Split/Merge/Info error or a recovered panic —
// see StageError.AnnotationFault). Splitting is an optimization over an
// unmodified library, so the always-correct degraded path is to run the
// stage's calls whole, unsplit and unpipelined, exactly as the plain
// library would.
type FallbackPolicy int

const (
	// FallbackOff (the default) fails Evaluate with a StageError.
	FallbackOff FallbackPolicy = iota
	// FallbackWholeCall re-executes an annotation-faulted stage via the
	// whole-call path: in-place-mutated inputs are restored from a
	// pre-stage snapshot and every call runs once over full values.
	FallbackWholeCall
	// FallbackQuarantine is FallbackWholeCall plus quarantining: the
	// faulty annotation (the failing call when known, otherwise every call
	// in the stage) is planned as a whole, unsplit stage for the rest of
	// the session, so later evaluations never touch its splitters again.
	FallbackQuarantine
)

// Options configure a Session (the paper's runtime knobs: worker count is
// user-configured, batch size is derived from the L2 cache size, §5.2).
type Options struct {
	// Workers is the number of worker threads. Defaults to GOMAXPROCS.
	Workers int
	// L2CacheBytes is the per-core L2 cache size used by the batch-size
	// heuristic. Defaults to 256 KiB (the paper's Xeon E5-2676 v3).
	L2CacheBytes int64
	// BatchConstant is the constant C in batch = C * L2 / sum(elemBytes).
	// Defaults to 4, which empirically leaves room for intermediates in
	// the shared LLC as the paper describes.
	BatchConstant float64
	// BatchElems, when non-zero, overrides the batch-size heuristic with a
	// fixed number of elements per batch (used by the Fig. 6 sweep).
	BatchElems int64
	// DynamicScheduling replaces the paper's static contiguous partitioning
	// (§5.2 Step 1) with dynamic batch claiming: workers atomically take
	// the next unprocessed batch, Cilk-style. The paper chose static
	// partitioning for simplicity and found similar results; this option
	// exists for the ablation. Results are identical either way — output
	// pieces are merged in batch order.
	DynamicScheduling bool
	// DisablePipelining makes every annotated call its own stage: data is
	// still split and parallelized, but merged between calls. This is the
	// Mozart(-pipe) ablation of Table 4.
	DisablePipelining bool
	// UnprotectNSPerByte is the modeled cost of unprotecting one byte of
	// guarded memory per evaluation (simulating the paper's mprotect-based
	// laziness; §8.5 reports ~3.5ms/GB). Zero disables the accounting.
	UnprotectNSPerByte float64
	// StageTimeout, when non-zero, bounds the wall-clock time of each
	// stage. A stage that exceeds it is canceled: workers stop claiming
	// batches (in-flight library calls run to completion first, since
	// unmodified library code cannot be preempted) and Evaluate returns a
	// StageError wrapping context.DeadlineExceeded.
	StageTimeout time.Duration
	// FallbackPolicy controls graceful degradation when an annotation
	// fault (Split/Merge/Info error or recovered panic) breaks a stage:
	// off (fail), whole-call re-execution, or re-execution plus
	// quarantining the faulty annotation for the session. See the
	// FallbackPolicy constants. Library-function errors, Pedantic-mode
	// errors, timeouts, and cancellations never fall back.
	FallbackPolicy FallbackPolicy
	// Pedantic enables the §7.1 debugging mode: evaluation fails with a
	// descriptive error if a function receives splits with differing
	// element counts, receives no elements, or receives nil data.
	Pedantic bool
	// RetryPolicy enables batch-granular retry of transient faults: a
	// Split or library-call error the policy classifies as transient
	// (default: wrapping ErrTransient) replays only the failed batch,
	// with its in-place-mutated pieces restored from a pre-attempt
	// snapshot, instead of failing the stage. See RetryPolicy.
	RetryPolicy RetryPolicy
	// MemoryBudgetBytes, when non-zero and Governor is nil, creates a
	// session-private Governor with this byte budget: the session's
	// stages are admitted against the §5.2 footprint model
	// (workers × batch × Σ elemBytes) and shrink their batches under
	// pressure. To bound several sessions together, share a Governor.
	MemoryBudgetBytes int64
	// Governor, when set, gates this session's stages against a byte
	// budget shared with every other session holding the same Governor.
	// Takes precedence over MemoryBudgetBytes.
	Governor *Governor
	// Breakers, when set, makes the session consult and transition a
	// shared BreakerGroup instead of a session-private breaker set: the
	// group's quarantine state outlives any one session, so serving
	// setups that build a fresh Session per request keep breaker
	// dispositions warm across requests, scoped to whoever owns the
	// group (one group per tenant). Takes precedence over Breaker, whose
	// policy is fixed at the group's construction.
	Breakers *BreakerGroup
	// Breaker tunes the per-annotation circuit breakers used by
	// FallbackQuarantine. The zero value reproduces the PR 1 semantics:
	// one annotation fault quarantines the annotation for the rest of
	// the session. A non-zero Cooldown lets tripped annotations heal via
	// half-open probes. See BreakerPolicy.
	Breaker BreakerPolicy
	// Tracer, when set, receives structured execution events: session
	// begin/end, the produced plan, stage begin/end with split-type and
	// batch-size detail, per-batch spans with worker id and phase
	// timings, retries, breaker transitions, admission waits, and
	// fallback re-executions. See internal/obs for the taxonomy and the
	// built-in Chrome-trace and metrics sinks. A nil Tracer (the
	// default) is the fast path: every emission site is nil-guarded, so
	// disabled tracing adds no allocations to the per-batch hot loop.
	Tracer obs.Tracer
	// Trace, when set, is the request-scoped trace context the session is
	// being evaluated under (a parsed or generated W3C traceparent). The
	// runtime stamps it onto session-begin and session-end events — a
	// shared pointer copy, so the stamp costs no allocation and the nil
	// default costs nothing at all — letting shared sinks (latency
	// exemplars, flight recordings) key what they retain by the
	// originating request's trace id. Pair it with a per-request
	// obs.SpanRecorder in Tracer to capture the full span tree.
	Trace *obs.TraceContext
	// ProfileLabels, when true, wraps each worker's batch loop in pprof
	// labels (mozart_stage, mozart_split) so CPU profiles attribute
	// samples to stages and split types (go tool pprof -tagfocus).
	ProfileLabels bool
	// Logf, when set, receives a log line per function call per split
	// piece (the §7.1 call log). Signature matches testing.T.Logf.
	Logf func(format string, args ...any)
	// OnPlan, when set, receives the plan IR produced for each evaluation
	// just before execution starts (after the plan event is emitted). The
	// IR is a snapshot — mutating it does not affect execution. For a
	// plan without evaluating, use Session.Plan.
	OnPlan func(*ir.Plan)
	// BaseContext, when set, supplies the context for evaluations forced
	// without an explicit one — Future.Get/Value/Float64s and the
	// deprecated Session.Evaluate. Serving setups use it to propagate a
	// request's deadline and disconnect-cancellation into lazy reads deep
	// inside library wrappers that never see a context parameter. A nil
	// function (the default) or a nil returned context means
	// context.Background(); EvaluateContext and GetContext ignore it.
	BaseContext func() context.Context
	// OutOfCore enables the streaming degradation mode: when a stage's
	// §5.2 working set (total × Σ elemBytes) exceeds the Governor's whole
	// budget, the stage executes in admission-bounded element windows
	// instead of blocking — each window is split, executed, and eagerly
	// merged before its bytes are released back to the Governor, and
	// merge-side partials spill to a CRC-framed temp-file store when the
	// stage's output splitters implement PieceCodec. Requires a Governor
	// (or MemoryBudgetBytes); without one the option is inert. Inputs
	// whose splitters implement SplitterAt stream as window views; other
	// inputs stay materialized and only their split windows are driven
	// incrementally.
	OutOfCore bool
	// SpillDir is the directory for out-of-core spill files. Empty means
	// the OS temp dir. Spill files are CRC-checked, crash-safe (orphans
	// from dead processes are sweepable), and removed at stage finale.
	SpillDir string
	// WorkerPool, when set, is the persistent worker pool the static,
	// dynamic, and streaming executors dispatch stage work onto instead of
	// spawning fresh goroutines per stage. Defaults to a session-private
	// pool sized at Workers; share one pool across sessions to bound the
	// process's total worker count. See WorkerPool and Stats.WorkerSpawns
	// (zero spawns across steady-state evaluations is the reuse proof).
	WorkerPool *WorkerPool
	// DisableWorkerPool reverts to the pre-pool behaviour of spawning a
	// fresh goroutine per stage worker. Mostly useful for A/B measurement;
	// correctness is identical either way.
	DisableWorkerPool bool
	// PoisonPools is a debug mode for the session's buffer pools: every
	// buffer returned to a pool has its slots overwritten with a sentinel
	// before reuse, so any code path that retains a reference past the
	// hand-back observes the sentinel instead of stale data and fails
	// loudly. Used by the pool leak tests; off in production.
	PoisonPools bool
	// Tuner, when set, is consulted once per plan build for a batch-size
	// and worker-count override (a plan.BatchSource — typically a
	// *tune.Tuner). The decision is recorded in the plan IR (FixedElems,
	// Workers, Provenance) so Explain, the counter simulation, and the
	// executor all see the calibrated values; after each evaluation the
	// session reports measured actuals back through plan.Calibrator.Observe
	// and emits an EvTune event. A nil Tuner (the default) — or any source
	// returning the zero decision — reproduces the static §5.2 heuristic
	// exactly. Share one Tuner across sessions to keep calibration warm
	// (it must then be concurrency-safe, as *tune.Tuner is).
	Tuner ir.BatchSource
	// SimulateCounters, with a Tracer set, lowers each evaluation's plan
	// IR into the memsim machine model and emits per-stage simulated
	// hardware counters (L1/L2/LLC hits and misses, DRAM bytes, modeled
	// runtime) as stage-counters events before execution. Metric sinks
	// fold them into the same per-stage rows as the measured counters.
	// Results are cached by plan rendering, so iterative workloads
	// simulate each distinct plan shape once. No effect without a Tracer.
	SimulateCounters bool
}

// batchPolicy is the §5.2 batch rule these options denote, as recorded in
// the plan IR. It is the single implementation of the batch heuristic,
// shared with the modeled workloads (internal/workloads) so the two can
// never silently fork.
func (o Options) batchPolicy() ir.BatchPolicy {
	return ir.BatchPolicy{FixedElems: o.BatchElems, Constant: o.BatchConstant, L2CacheBytes: o.L2CacheBytes}
}

// cacheTargetBytes is the batch heuristic's C×L2 working-set target, the
// denominator of the cache-batch utilization metric.
func (o Options) cacheTargetBytes() int64 {
	return o.batchPolicy().CacheTargetBytes()
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.L2CacheBytes <= 0 {
		o.L2CacheBytes = ir.DefaultL2CacheBytes
	}
	if o.BatchConstant <= 0 {
		o.BatchConstant = ir.DefaultBatchConstant
	}
	if o.Governor == nil && o.MemoryBudgetBytes > 0 {
		o.Governor = NewGovernor(o.MemoryBudgetBytes)
	}
	if o.WorkerPool == nil && !o.DisableWorkerPool {
		o.WorkerPool = NewWorkerPool(o.Workers)
	}
	return o
}

// batchSize implements the §5.2 heuristic: C * L2CacheSize / sum of element
// sizes, clamped to [1, total].
func (o Options) batchSize(sumElemBytes, total int64) int64 {
	return clamp64(o.batchPolicy().Elems(sumElemBytes, total), 1, total)
}

func clamp64(v, lo, hi int64) int64 {
	if hi < lo {
		hi = lo
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
