package core

import (
	"errors"
	"fmt"
)

var (
	// ErrDiscarded is returned when accessing a Future whose value was an
	// intermediate pipelined entirely inside a stage and therefore never
	// materialized. Call Future.Keep before evaluation to force
	// materialization.
	ErrDiscarded = errors.New("mozart: intermediate value was pipelined and not materialized; call Keep() before evaluation to retain it")
	// ErrNotEvaluated is returned when reading a lazy value that has not
	// been produced yet and cannot be (e.g. the session is broken).
	ErrNotEvaluated = errors.New("mozart: value has not been evaluated")
)

// typeErrorf builds the error for a Future accessor used on a value of the
// wrong dynamic type.
func typeErrorf(want string, got any) error {
	return fmt.Errorf("mozart: future holds %T, not %s", got, want)
}
