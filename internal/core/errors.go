package core

import (
	"errors"
	"fmt"
	"strings"
)

var (
	// ErrDiscarded is returned when accessing a Future whose value was an
	// intermediate pipelined entirely inside a stage and therefore never
	// materialized. Call Future.Keep before evaluation to force
	// materialization.
	ErrDiscarded = errors.New("mozart: intermediate value was pipelined and not materialized; call Keep() before evaluation to retain it")
	// ErrNotEvaluated is returned when reading a lazy value that has not
	// been produced yet and cannot be (e.g. the session is broken).
	ErrNotEvaluated = errors.New("mozart: value has not been evaluated")
)

// typeErrorf builds the error for a Future accessor used on a value of the
// wrong dynamic type.
func typeErrorf(want string, got any) error {
	return fmt.Errorf("mozart: future holds %T, not %s", got, want)
}

// notEvaluatedError is the poisoned-binding error: the binding has no final
// value because evaluation failed. errors.Is(err, ErrNotEvaluated) holds and
// Unwrap exposes the evaluation failure that broke the session.
type notEvaluatedError struct{ cause error }

func (e *notEvaluatedError) Error() string {
	return fmt.Sprintf("%v (session broken by: %v)", ErrNotEvaluated, e.cause)
}

func (e *notEvaluatedError) Is(target error) bool { return target == ErrNotEvaluated }

func (e *notEvaluatedError) Unwrap() error { return e.cause }

// FaultOrigin classifies where inside stage execution a failure originated.
// The origin decides whether whole-call fallback applies: faults in
// annotator-supplied code (Info, Split, Merge) and panics are annotation
// faults; an error returned by the library function itself is not.
type FaultOrigin int

const (
	// OriginInfo: a splitter's Info, a split type constructor, the default
	// split registry, or the cross-input element-count check failed.
	OriginInfo FaultOrigin = iota
	// OriginSplit: a splitter's Split failed or panicked.
	OriginSplit
	// OriginCall: the library function returned an error or panicked.
	OriginCall
	// OriginMerge: a splitter's Merge failed or panicked.
	OriginMerge
	// OriginPedantic: a Pedantic-mode check failed (§7.1 debugging mode).
	// Pedantic errors never fall back: the mode exists to surface them.
	OriginPedantic
	// OriginTimeout: the stage exceeded Options.StageTimeout.
	OriginTimeout
	// OriginCanceled: the caller's context was canceled mid-evaluation.
	OriginCanceled
	// OriginInternal: a runtime invariant was violated (missing
	// materialization, missing piece, ...).
	OriginInternal
)

func (o FaultOrigin) String() string {
	switch o {
	case OriginInfo:
		return "info"
	case OriginSplit:
		return "split"
	case OriginCall:
		return "call"
	case OriginMerge:
		return "merge"
	case OriginPedantic:
		return "pedantic"
	case OriginTimeout:
		return "timeout"
	case OriginCanceled:
		return "canceled"
	default:
		return "internal"
	}
}

// StageError is the structured failure of one stage of an evaluation. It
// identifies the stage, the call (when the fault is call-specific), the
// element range of the failing batch (Start/End are -1 for faults outside a
// batch, e.g. the final merge), and — for recovered panics — the panic value
// and stack of the worker goroutine that recovered it.
type StageError struct {
	Stage      int      // stage index within the evaluation's plan
	Calls      []string // names of every call in the stage, in pipeline order
	Call       string   // the failing call, "" when not call-specific
	Origin     FaultOrigin
	Start, End int64  // element range of the failing batch; -1 when unknown
	PanicValue any    // non-nil when the fault was a recovered panic
	Stack      []byte // stack of the recovering goroutine, for panics
	Err        error  // the underlying error
}

func (e *StageError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mozart: stage %d", e.Stage)
	if len(e.Calls) > 0 {
		fmt.Fprintf(&b, " [%s]", strings.Join(e.Calls, " -> "))
	}
	if e.Call != "" {
		fmt.Fprintf(&b, ": call %s", e.Call)
	}
	if e.Start >= 0 {
		fmt.Fprintf(&b, ": elements [%d,%d)", e.Start, e.End)
	}
	fmt.Fprintf(&b, ": %s fault", e.Origin)
	if e.PanicValue != nil {
		b.WriteString(" (recovered panic)")
	}
	fmt.Fprintf(&b, ": %v", e.Err)
	return b.String()
}

func (e *StageError) Unwrap() error { return e.Err }

// AnnotationFault reports whether the failure is attributable to the
// annotation rather than the library: any error from annotator-supplied
// splitting code (Info/Split/Merge), or any panic — a library function that
// panics on a split piece it would accept whole is a faulty annotation's
// doing. FallbackPolicy only re-executes stages whose failure is an
// annotation fault; genuine library errors and timeouts propagate.
func (e *StageError) AnnotationFault() bool {
	if e.PanicValue != nil {
		return true
	}
	switch e.Origin {
	case OriginInfo, OriginSplit, OriginMerge:
		return true
	}
	return false
}

// panicErr carries a recovered panic through the error path until it is
// folded into a StageError.
type panicErr struct {
	val   any
	stack []byte
}

func (p *panicErr) Error() string { return fmt.Sprintf("panic: %v", p.val) }
