package core

import (
	"context"
	"sync"
	"testing"
	"time"
)

// waitParked blocks until at least n workers sit on p's idle stack. Workers
// re-park themselves just after their task returns, so an evaluation can
// complete an instant before its workers are observable as idle.
func waitParked(t *testing.T, p *WorkerPool, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		p.mu.Lock()
		idle := len(p.idle)
		p.mu.Unlock()
		if idle >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d workers parked, want >= %d", idle, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWorkerPoolReuse: sequential tasks separated by parking run on the same
// worker — Tasks grows, Spawns does not.
func TestWorkerPoolReuse(t *testing.T) {
	p := NewWorkerPool(2)
	for i := 0; i < 10; i++ {
		done := make(chan struct{})
		p.Run(func() { close(done) })
		<-done
		waitParked(t, p, 1)
	}
	if got := p.Tasks(); got != 10 {
		t.Errorf("Tasks = %d, want 10", got)
	}
	if got := p.Spawns(); got != 1 {
		t.Errorf("Spawns = %d, want 1 (one worker reused throughout)", got)
	}
}

// TestWorkerPoolSaturationOverflow: a full pool never blocks Run; excess
// tasks run on plain goroutines and are counted as spawns.
func TestWorkerPoolSaturationOverflow(t *testing.T) {
	p := NewWorkerPool(1)
	var wg sync.WaitGroup
	release := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		p.Run(func() {
			<-release
			wg.Done()
		})
	}
	close(release) // if Run blocked on saturation we'd deadlock before this
	wg.Wait()
	if got := p.Spawns(); got != 4 {
		t.Errorf("Spawns = %d, want 4 (1 pooled + 3 overflow)", got)
	}
	p.mu.Lock()
	workers := p.workers
	p.mu.Unlock()
	if workers != 1 {
		t.Errorf("resident workers = %d, want 1 (overflow goroutines are not retained)", workers)
	}
}

// TestWorkerPoolIdleRetirement: a parked worker past its idle timeout exits
// and is replaced (not revived) by the next Run.
func TestWorkerPoolIdleRetirement(t *testing.T) {
	p := &WorkerPool{max: 1, idleTimeout: 5 * time.Millisecond}
	done := make(chan struct{})
	p.Run(func() { close(done) })
	<-done
	deadline := time.Now().Add(2 * time.Second)
	for {
		p.mu.Lock()
		workers := p.workers
		p.mu.Unlock()
		if workers == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("idle worker never retired")
		}
		time.Sleep(time.Millisecond)
	}
	done = make(chan struct{})
	if spawned := p.Run(func() { close(done) }); !spawned {
		t.Error("Run after retirement should report a fresh spawn")
	}
	<-done
	if got := p.Spawns(); got != 2 {
		t.Errorf("Spawns = %d, want 2 (original + post-retirement)", got)
	}
}

// TestSteadyStateZeroSpawns is the tentpole's no-per-evaluation-goroutines
// proof: after a warmup evaluation populates the session's pool, repeated
// evaluations dispatch every stage worker onto parked goroutines and
// Stats.WorkerSpawns stays flat.
func TestSteadyStateZeroSpawns(t *testing.T) {
	const workers = 4
	a, b := seq(1000), seq(1000)
	s := NewSession(Options{Workers: workers, BatchElems: 100})
	run := func() {
		c := s.Call(fnAddNew, saAddNew, a, b)
		s.Call(fnAddNew, saAddNew, c, b)
		if err := s.EvaluateContext(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	run() // warmup: spawns the pool's resident workers
	waitParked(t, s.opts.WorkerPool, workers)
	warm := s.Stats().WorkerSpawns
	if warm == 0 {
		t.Fatal("warmup evaluation should have spawned pool workers")
	}
	for i := 0; i < 5; i++ {
		run()
		waitParked(t, s.opts.WorkerPool, workers)
	}
	st := s.Stats()
	if st.WorkerSpawns != warm {
		t.Errorf("WorkerSpawns grew %d -> %d across steady-state evaluations, want flat", warm, st.WorkerSpawns)
	}
	if st.PoolTasks <= warm {
		t.Errorf("PoolTasks = %d, want > %d (later evaluations dispatched onto the pool)", st.PoolTasks, warm)
	}
}

// TestSharedWorkerPoolAcrossSessions: one pool bounds several sessions;
// concurrent evaluations on it stay correct.
func TestSharedWorkerPoolAcrossSessions(t *testing.T) {
	pool := NewWorkerPool(4)
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a, b := seq(700), seq(700)
			s := NewSession(Options{Workers: 2, BatchElems: 64, WorkerPool: pool})
			c := s.Call(fnAddNew, saAddNew, a, b)
			got, err := c.Float64s()
			if err != nil {
				errs <- err
				return
			}
			for i := range got {
				if got[i] != a[i]+b[i] {
					t.Errorf("shared-pool result corrupt at %d", i)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if pool.Tasks() == 0 {
		t.Error("shared pool saw no tasks")
	}
}

// TestDisableWorkerPool: the pre-pool spawn-per-stage path remains available
// and correct; nothing is dispatched onto a pool.
func TestDisableWorkerPool(t *testing.T) {
	a, b := seq(300), seq(300)
	s := NewSession(Options{Workers: 3, BatchElems: 50, DisableWorkerPool: true})
	c := s.Call(fnAddNew, saAddNew, a, b)
	got, err := c.Float64s()
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != a[i]+b[i] {
			t.Fatalf("result mismatch at %d", i)
		}
	}
	st := s.Stats()
	if st.PoolTasks != 0 {
		t.Errorf("PoolTasks = %d with the pool disabled, want 0", st.PoolTasks)
	}
	if st.WorkerSpawns == 0 {
		t.Error("disabled pool should count every stage goroutine as a spawn")
	}
}

// TestPoisonPoolsConcurrentSessions is the buffer-leak proof the issue asks
// for, run under -race -count=2 by the flakiness gate: many sessions evaluate
// concurrently with poison mode overwriting every pooled buffer slot on
// hand-back. Any code path that retained a piece, argument table, or merge
// scratch past its put would observe poisonedBuffer{} and corrupt a result
// or trip an assertion; results staying exact across iterations proves the
// pools never leak across evaluations or sessions.
func TestPoisonPoolsConcurrentSessions(t *testing.T) {
	const (
		goroutines = 8
		iters      = 8
		n          = 512
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			a, b := seq(n), seq(n)
			opts := Options{Workers: 1 + g%4, BatchElems: 37, PoisonPools: true}
			if g%2 == 1 {
				opts.DynamicScheduling = true
			}
			s := NewSession(opts)
			for it := 0; it < iters; it++ {
				c := s.Call(fnAddNew, saAddNew, a, b)
				d := s.Call(fnAddNew, saAddNew, c, b).Keep() // read below despite in-stage consumer
				sum := s.Call(fnSum, saSum, d)
				got, err := d.Float64s()
				if err != nil {
					t.Errorf("goroutine %d iter %d: %v", g, it, err)
					return
				}
				var wantSum float64
				for i := range got {
					want := a[i] + 2*b[i]
					if got[i] != want {
						t.Errorf("goroutine %d iter %d: poisoned buffer leaked into result at %d: got %v want %v", g, it, i, got[i], want)
						return
					}
					wantSum += want
				}
				gotSum, err := sum.Float64()
				if err != nil {
					t.Errorf("goroutine %d iter %d: %v", g, it, err)
					return
				}
				if diff := gotSum - wantSum; diff > 1e-6 || diff < -1e-6 {
					t.Errorf("goroutine %d iter %d: reduction corrupt: got %v want %v", g, it, gotSum, wantSum)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestPoisonPoolsMutWriteBack covers the copying-splitter write-back path
// under poison mode: the merge scratch that carries mutated pieces back must
// be consumed before it is poisoned and pooled.
func TestPoisonPoolsMutWriteBack(t *testing.T) {
	for _, dyn := range []bool{false, true} {
		m := newTestMatrix(24, 18)
		ref := m.clone()
		fnNormalizeAxis([]any{ref, 1})
		s := NewSession(Options{Workers: 3, BatchElems: 5, PoisonPools: true, DynamicScheduling: dyn})
		fut := s.Track(m)
		s.Call(fnNormalizeAxis, saNormalizeAxis, m, 1)
		v, err := fut.Get()
		if err != nil {
			t.Fatalf("dyn=%v: %v", dyn, err)
		}
		got := v.(*testMatrix)
		for i := range got.data {
			if got.data[i] != ref.data[i] {
				t.Fatalf("dyn=%v: write-back corrupt at %d", dyn, i)
			}
		}
	}
}
