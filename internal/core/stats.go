package core

import (
	"fmt"
	"sync/atomic"
	"time"
)

// StatsSnapshot is a plain value copy of the runtime statistics, matching
// the breakdown of Figure 5: client-library registration, unprotecting lazy
// values, planning, splitting, task execution, and merging, plus the
// fault-tolerance and resilience counters. It is the type Session.Stats
// returns: an atomic snapshot with no live fields, so callers can read,
// copy, and compare it without data-race footguns.
type StatsSnapshot struct {
	ClientNS    int64 // registering calls with the dataflow graph
	UnprotectNS int64 // simulated memory-(un)protection on guarded buffers
	PlannerNS   int64 // converting the graph into stages
	SplitNS     int64 // calls into splitters' Split
	TaskNS      int64 // executing library functions
	MergeNS     int64 // calls into splitters' Merge
	Evaluations int64 // number of Evaluate() rounds
	Stages      int64 // stages executed
	Batches     int64 // batches executed
	Calls       int64 // function invocations on split pieces

	// Fault-tolerance counters.
	RecoveredPanics  int64 // panics recovered from splitters and library calls
	FallbackStages   int64 // stages re-executed whole after an annotation fault
	QuarantinedCalls int64 // annotations with a currently open/half-open breaker

	// Resilience counters (retry, circuit breakers, admission control).
	RetriedBatches    int64 // batch replays after a transient fault
	RetryBackoffNS    int64 // time spent in retry backoff sleeps
	BreakerTrips      int64 // breaker transitions into the open state
	BreakerRecoveries int64 // half-open probes that closed a breaker
	AdmissionWaitNS   int64 // time spent waiting on the memory Governor

	// Out-of-core streaming counters (Options.OutOfCore).
	StreamedStages int64 // stages executed in windowed streaming mode
	SpilledBytes   int64 // merge-partial payload bytes written to the spill store
	SpilledFrames  int64 // merge-partial frames written to the spill store

	// Zero-copy hot-path counters (Options.WorkerPool, ViewSplitter).
	WorkerSpawns int64 // goroutines created for stage work (pool misses + overflow)
	PoolTasks    int64 // stage-worker tasks dispatched onto the worker pool
	ViewSplits   int64 // input splits served by SplitView (aliasing, reuse-slotted)
}

// Total returns the sum of all phase times.
func (sn StatsSnapshot) Total() time.Duration {
	return time.Duration(sn.ClientNS + sn.UnprotectNS + sn.PlannerNS + sn.SplitNS + sn.TaskNS + sn.MergeNS)
}

// String renders the breakdown as percentages of total, the way Figure 5
// reports it, followed by the fault and resilience counters when any are
// non-zero — so a fallback, retry, breaker trip, or admission wait is
// always visible in the rendered stats.
func (sn StatsSnapshot) String() string {
	tot := float64(sn.Total())
	if tot == 0 {
		return "no time recorded"
	}
	pct := func(ns int64) float64 { return 100 * float64(ns) / tot }
	out := fmt.Sprintf(
		"client %.2f%% | unprotect %.2f%% | planner %.2f%% | split %.2f%% | task %.2f%% | merge %.2f%% (total %v, %d stages, %d batches, %d calls)",
		pct(sn.ClientNS), pct(sn.UnprotectNS), pct(sn.PlannerNS),
		pct(sn.SplitNS), pct(sn.TaskNS), pct(sn.MergeNS),
		sn.Total(), sn.Stages, sn.Batches, sn.Calls)
	if sn.RecoveredPanics > 0 || sn.FallbackStages > 0 || sn.QuarantinedCalls > 0 {
		out += fmt.Sprintf(" [%d recovered panics, %d fallback stages, %d quarantined]",
			sn.RecoveredPanics, sn.FallbackStages, sn.QuarantinedCalls)
	}
	if sn.RetriedBatches > 0 || sn.BreakerTrips > 0 || sn.AdmissionWaitNS > 0 {
		out += fmt.Sprintf(" [%d retried batches (backoff %v), %d breaker trips, %d recoveries, admission wait %v]",
			sn.RetriedBatches, time.Duration(sn.RetryBackoffNS),
			sn.BreakerTrips, sn.BreakerRecoveries, time.Duration(sn.AdmissionWaitNS))
	}
	if sn.StreamedStages > 0 {
		out += fmt.Sprintf(" [%d streamed stages, %d spill frames, %d spilled bytes]",
			sn.StreamedStages, sn.SpilledFrames, sn.SpilledBytes)
	}
	if sn.PoolTasks > 0 || sn.ViewSplits > 0 {
		out += fmt.Sprintf(" [pool %d tasks / %d spawns, %d view splits]",
			sn.PoolTasks, sn.WorkerSpawns, sn.ViewSplits)
	}
	return out
}

// stats is the live, atomically-updated accumulator behind a session's
// statistics. Workers mutate it concurrently through add; readers must go
// through Snapshot. The public surface is the value-type StatsSnapshot
// returned by Session.Stats (the old exported alias is gone).
type stats struct {
	StatsSnapshot
}

// Total returns the sum of all phase times. Safe to call while workers are
// running: it totals a Snapshot, never the live fields.
func (s *stats) Total() time.Duration { return s.Snapshot().Total() }

// String renders a Snapshot of the breakdown; safe under concurrency.
func (s *stats) String() string { return s.Snapshot().String() }

// add accumulates o into s (atomically; workers report concurrently).
func (s *stats) add(field *int64, d time.Duration) {
	atomic.AddInt64(field, int64(d))
}

// Snapshot returns a consistent-enough copy of the statistics, read with
// atomic loads so it is safe to take while workers are still running.
func (s *stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		ClientNS:    atomic.LoadInt64(&s.ClientNS),
		UnprotectNS: atomic.LoadInt64(&s.UnprotectNS),
		PlannerNS:   atomic.LoadInt64(&s.PlannerNS),
		SplitNS:     atomic.LoadInt64(&s.SplitNS),
		TaskNS:      atomic.LoadInt64(&s.TaskNS),
		MergeNS:     atomic.LoadInt64(&s.MergeNS),
		Evaluations: atomic.LoadInt64(&s.Evaluations),
		Stages:      atomic.LoadInt64(&s.Stages),
		Batches:     atomic.LoadInt64(&s.Batches),
		Calls:       atomic.LoadInt64(&s.Calls),

		RecoveredPanics:  atomic.LoadInt64(&s.RecoveredPanics),
		FallbackStages:   atomic.LoadInt64(&s.FallbackStages),
		QuarantinedCalls: atomic.LoadInt64(&s.QuarantinedCalls),

		RetriedBatches:    atomic.LoadInt64(&s.RetriedBatches),
		RetryBackoffNS:    atomic.LoadInt64(&s.RetryBackoffNS),
		BreakerTrips:      atomic.LoadInt64(&s.BreakerTrips),
		BreakerRecoveries: atomic.LoadInt64(&s.BreakerRecoveries),
		AdmissionWaitNS:   atomic.LoadInt64(&s.AdmissionWaitNS),

		StreamedStages: atomic.LoadInt64(&s.StreamedStages),
		SpilledBytes:   atomic.LoadInt64(&s.SpilledBytes),
		SpilledFrames:  atomic.LoadInt64(&s.SpilledFrames),

		WorkerSpawns: atomic.LoadInt64(&s.WorkerSpawns),
		PoolTasks:    atomic.LoadInt64(&s.PoolTasks),
		ViewSplits:   atomic.LoadInt64(&s.ViewSplits),
	}
}
