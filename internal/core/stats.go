package core

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Stats records where time goes inside the runtime, matching the breakdown
// of Figure 5: client-library registration, unprotecting lazy values,
// planning, splitting, task execution, and merging.
type Stats struct {
	ClientNS    int64 // registering calls with the dataflow graph
	UnprotectNS int64 // simulated memory-(un)protection on guarded buffers
	PlannerNS   int64 // converting the graph into stages
	SplitNS     int64 // calls into splitters' Split
	TaskNS      int64 // executing library functions
	MergeNS     int64 // calls into splitters' Merge
	Evaluations int64 // number of Evaluate() rounds
	Stages      int64 // stages executed
	Batches     int64 // batches executed
	Calls       int64 // function invocations on split pieces

	// Fault-tolerance counters.
	RecoveredPanics  int64 // panics recovered from splitters and library calls
	FallbackStages   int64 // stages re-executed whole after an annotation fault
	QuarantinedCalls int64 // annotations quarantined for the session
}

// Total returns the sum of all phase times.
func (s *Stats) Total() time.Duration {
	return time.Duration(s.ClientNS + s.UnprotectNS + s.PlannerNS + s.SplitNS + s.TaskNS + s.MergeNS)
}

// add accumulates o into s (atomically; workers report concurrently).
func (s *Stats) add(field *int64, d time.Duration) {
	atomic.AddInt64(field, int64(d))
}

// String renders the breakdown as percentages of total, the way Figure 5
// reports it.
func (s *Stats) String() string {
	tot := float64(s.Total())
	if tot == 0 {
		return "no time recorded"
	}
	pct := func(ns int64) float64 { return 100 * float64(ns) / tot }
	out := fmt.Sprintf(
		"client %.2f%% | unprotect %.2f%% | planner %.2f%% | split %.2f%% | task %.2f%% | merge %.2f%% (total %v, %d stages, %d batches, %d calls)",
		pct(s.ClientNS), pct(s.UnprotectNS), pct(s.PlannerNS),
		pct(s.SplitNS), pct(s.TaskNS), pct(s.MergeNS),
		s.Total(), s.Stages, s.Batches, s.Calls)
	if s.RecoveredPanics > 0 || s.FallbackStages > 0 || s.QuarantinedCalls > 0 {
		out += fmt.Sprintf(" [%d recovered panics, %d fallback stages, %d quarantined]",
			s.RecoveredPanics, s.FallbackStages, s.QuarantinedCalls)
	}
	return out
}

// Snapshot returns a copy of the statistics safe to read while workers are
// idle.
func (s *Stats) Snapshot() Stats {
	return Stats{
		ClientNS:    atomic.LoadInt64(&s.ClientNS),
		UnprotectNS: atomic.LoadInt64(&s.UnprotectNS),
		PlannerNS:   atomic.LoadInt64(&s.PlannerNS),
		SplitNS:     atomic.LoadInt64(&s.SplitNS),
		TaskNS:      atomic.LoadInt64(&s.TaskNS),
		MergeNS:     atomic.LoadInt64(&s.MergeNS),
		Evaluations: atomic.LoadInt64(&s.Evaluations),
		Stages:      atomic.LoadInt64(&s.Stages),
		Batches:     atomic.LoadInt64(&s.Batches),
		Calls:       atomic.LoadInt64(&s.Calls),

		RecoveredPanics:  atomic.LoadInt64(&s.RecoveredPanics),
		FallbackStages:   atomic.LoadInt64(&s.FallbackStages),
		QuarantinedCalls: atomic.LoadInt64(&s.QuarantinedCalls),
	}
}
