// Package core implements split annotations (SAs) and the Mozart runtime
// from "Optimizing Data-Intensive Computations in Existing Libraries with
// Split Annotations" (Palkar & Zaharia, SOSP 2019).
//
// The package has three layers, mirroring the paper:
//
//   - The split annotation interface (§3): SplitType, Splitter (the splitting
//     API: constructor, Split, Merge, Info) and Annotation (the @splittable
//     declaration with mut flags, concrete split types, generics, the missing
//     type "_" and the unknown type).
//
//   - The client library libmozart (§4): Session lazily captures a dataflow
//     graph of annotated calls. Values are identified by pointer identity or
//     by Future handles; accessing a Future forces evaluation, standing in
//     for the paper's memory-protection / decorator tricks.
//
//   - The Mozart runtime (§5): the planner converts the dataflow graph into
//     stages of calls whose split types match (using split-type construction
//     from runtime arguments, generic unification, and type inference along
//     graph edges), and the executor runs each stage by splitting inputs into
//     cache-sized batches, pipelining each batch through every function in
//     the stage on a worker, and merging partial results.
//
// Library integrations live under internal/annotations; they provide the
// splitters and annotations for the bundled substrate libraries.
package core
