package core

import (
	"fmt"

	ir "mozart/internal/plan"
)

// resolved is the planner's resolution of one argument or return value: how
// (and whether) the value is split within the current stage.
type resolved struct {
	broadcast bool
	t         SplitType
	splitter  Splitter // nil when deferred
	deferred  bool     // splitter (and real type) resolved from the default
	// registry at execution time; t is then a placeholder unknown used
	// only for compatibility decisions.
}

func (r resolved) compatible(o resolved) bool {
	if r.broadcast != o.broadcast {
		return false
	}
	if r.broadcast {
		return true
	}
	return r.t.Equal(o.t)
}

// planCall is one call inside a stage with fully resolved argument modes.
type planCall struct {
	n    *node
	args []resolved
	ret  resolved // valid iff n.ret != nil
}

// stageInput is a binding the stage must split at entry.
type stageInput struct {
	b *binding
	r resolved
}

// stageOutput is a binding the stage must merge (and possibly write back) at
// exit.
type stageOutput struct {
	b *binding
	r resolved
}

// planStage is an ordered pipeline of calls whose split types match (§5.1).
type planStage struct {
	calls     []planCall
	inputs    []stageInput
	outputs   []stageOutput
	broadcast []*binding // bindings used whole within the stage
	ir        *ir.Stage  // exported-IR mirror (set by buildIR)
}

// plan pairs the planner's live structures (bindings, splitters) with the
// exported IR snapshot the executor, the lowering pass, and Explain share.
type plan struct {
	stages []planStage
	ir     *ir.Plan
	// sig and tuned are set when the session has a Tuner: the structural
	// signature the decision was keyed on, and the decision itself (already
	// folded into ir.Batch/ir.Workers/ir.Provenance by applyTuner).
	sig   string
	tuned ir.BatchDecision
	// obsElems and obsBytes accumulate the split-stage element and byte
	// totals the executor actually processed, reported back to the Tuner
	// post-evaluation. Stages run sequentially, so plain adds suffice.
	obsElems int64
	obsBytes int64
}

// errStageBreak signals that a node cannot join the current stage and a new
// stage must start (split data must be merged and re-split).
var errStageBreak = fmt.Errorf("stage break")

// resolveNode type-checks node n against the split context ctx (binding id →
// resolution within the open stage). On success it returns the per-arg and
// return resolutions plus the ctx updates this node introduces. A
// compatibility conflict returns errStageBreak. ctx is not modified.
func resolveNode(n *node, ctx map[int]resolved) (args []resolved, ret resolved, updates map[int]resolved, err error) {
	if err := n.sa.Validate(); err != nil {
		return nil, resolved{}, nil, err
	}
	updates = map[int]resolved{}
	generics := map[string]resolved{}
	args = make([]resolved, len(n.args))

	lookup := func(b *binding) (resolved, bool) {
		if r, ok := updates[b.id]; ok {
			return r, true
		}
		r, ok := ctx[b.id]
		return r, ok
	}

	for i, p := range n.sa.Params {
		b := n.args[i]
		in, hasIn := lookup(b)
		var r resolved
		switch p.Type.Kind {
		case KindMissing:
			if hasIn && !in.broadcast {
				// The call needs the whole value but it is split in
				// the open stage: merge first.
				return nil, resolved{}, nil, errStageBreak
			}
			r = resolved{broadcast: true}
		case KindConcrete:
			t, cerr := p.Type.Ctor(n.argVals)
			if cerr != nil {
				return nil, resolved{}, nil, fmt.Errorf("mozart: %s: param %s: constructor: %w", n.sa.FuncName, p.Name, cerr)
			}
			r = resolved{t: t, splitter: p.Type.Splitter}
			if hasIn && !in.compatible(r) {
				return nil, resolved{}, nil, errStageBreak
			}
		case KindGeneric:
			if g, bound := generics[p.Type.Generic]; bound {
				if hasIn && !in.compatible(g) {
					return nil, resolved{}, nil, errStageBreak
				}
				r = g
			} else if hasIn {
				if in.broadcast {
					return nil, resolved{}, nil, errStageBreak
				}
				r = in
				generics[p.Type.Generic] = r
			} else {
				// Fresh input bound to a generic: fall back to the
				// default split type for the data type, or defer to
				// execution time when the value is still lazy.
				if d, ok := lookupDefaultSplit(n.argVals[i]); ok {
					t, cerr := d.ctor(n.argVals[i])
					if cerr != nil {
						return nil, resolved{}, nil, fmt.Errorf("mozart: %s: param %s: default constructor: %w", n.sa.FuncName, p.Name, cerr)
					}
					r = resolved{t: t, splitter: d.splitter}
				} else {
					r = resolved{t: NewUnknownType(), deferred: true}
				}
				generics[p.Type.Generic] = r
			}
		case KindUnknown:
			return nil, resolved{}, nil, fmt.Errorf("mozart: %s: param %s: unknown is only valid as a return type", n.sa.FuncName, p.Name)
		}
		args[i] = r
		if !r.broadcast {
			// The value is (or becomes) split this way within the stage;
			// the same holds after mutation.
			updates[b.id] = r
		}
	}

	// A mut argument with the missing "_" type is only sound when the whole
	// call runs unsplit: inside a split stage every pipeline would mutate
	// the same full value concurrently.
	anySplit := false
	for _, r := range args {
		if !r.broadcast {
			anySplit = true
			break
		}
	}
	if anySplit {
		for i, p := range n.sa.Params {
			if p.Mut && args[i].broadcast {
				return nil, resolved{}, nil, fmt.Errorf("mozart: %s: param %s: mut with missing split type would race across pipelines", n.sa.FuncName, p.Name)
			}
		}
	}

	if n.sa.Ret != nil {
		rt := *n.sa.Ret
		switch rt.Kind {
		case KindMissing:
			return nil, resolved{}, nil, fmt.Errorf("mozart: %s: return type cannot be missing; use a void function", n.sa.FuncName)
		case KindConcrete:
			t, cerr := rt.Ctor(n.argVals)
			if cerr != nil {
				return nil, resolved{}, nil, fmt.Errorf("mozart: %s: return: constructor: %w", n.sa.FuncName, cerr)
			}
			ret = resolved{t: t, splitter: rt.Splitter}
		case KindGeneric:
			if g, bound := generics[rt.Generic]; bound {
				ret = g
			} else {
				// Unconstrained return generic: pieces merge via the
				// default splitter for their dynamic type.
				ret = resolved{t: NewUnknownType(), deferred: true}
			}
		case KindUnknown:
			ret = resolved{t: NewUnknownType(), deferred: true}
		}
		updates[n.ret.id] = ret
	}
	return args, ret, updates, nil
}

// buildPlan converts the pending dataflow graph into stages per §5.1: two
// adjacent calls share a stage iff every value passed between them has
// matching split types; otherwise the data is merged and a new stage begins.
// It also mirrors the result into the exported plan IR (internal/plan).
//
// peek makes planning read-only for Session.Plan: circuit breakers are
// consulted without the open → half-open transition (no probe is scheduled)
// and no binding is marked discarded, so a peeked plan never perturbs a
// later evaluation.
func (s *Session) buildPlan(peek bool) (*plan, error) {
	p := &plan{}
	ctx := map[int]resolved{}
	var cur []planCall

	flush := func() {
		if len(cur) > 0 {
			p.stages = append(p.stages, planStage{calls: cur})
			cur = nil
		}
		ctx = map[int]resolved{}
	}

	for _, n := range s.nodes {
		// Annotations with an open circuit breaker (FallbackQuarantine)
		// are not split: each runs whole, in its own stage, exactly like
		// a function Mozart cannot split. planWhole also moves a cooled-
		// down breaker to half-open, in which case this plan is the probe
		// and the annotation is split below.
		var whole bool
		if peek {
			whole = s.breakers.peekWhole(n.sa.FuncName)
		} else {
			var probing bool
			whole, probing = s.breakers.planWhole(n.sa.FuncName)
			if probing {
				s.emitBreaker(n.sa.FuncName, "half-open")
			}
		}
		if whole {
			flush()
			args := make([]resolved, len(n.args))
			for i := range args {
				args[i] = resolved{broadcast: true}
			}
			p.stages = append(p.stages, planStage{calls: []planCall{{n: n, args: args, ret: resolved{broadcast: true}}}})
			continue
		}
		if s.opts.DisablePipelining {
			// Table 4's Mozart(-pipe): every call is its own stage, so
			// data is split and parallelized but never pipelined.
			flush()
		}
		args, ret, updates, err := resolveNode(n, ctx)
		if err == errStageBreak {
			flush()
			args, ret, updates, err = resolveNode(n, ctx)
		}
		if err != nil {
			if err == errStageBreak {
				return nil, fmt.Errorf("mozart: %s: conflicting split types within a single call", n.sa.FuncName)
			}
			return nil, err
		}
		// A call with no split arguments cannot be batched: it executes
		// whole, in its own stage (the way Mozart treats functions it
		// cannot split, e.g. indexing ops, §8.2).
		allBroadcast := true
		for _, r := range args {
			if !r.broadcast {
				allBroadcast = false
				break
			}
		}
		if allBroadcast {
			flush()
			p.stages = append(p.stages, planStage{calls: []planCall{{n: n, args: args, ret: ret}}})
			continue
		}
		cur = append(cur, planCall{n: n, args: args, ret: ret})
		for id, r := range updates {
			ctx[id] = r
		}
	}
	flush()

	s.classifyStages(p, peek)
	s.buildIR(p)
	s.applyTuner(p)
	return p, nil
}

// classifyStages computes, per stage, which bindings are split inputs, which
// must be merged at stage exit, and which are broadcast. Under peek, the
// discarded flag of pipelined-away bindings is left untouched.
func (s *Session) classifyStages(p *plan, peek bool) {
	// lastConsumed[bid] = index of the last stage whose calls read binding
	// bid; used to decide which produced values must be materialized.
	lastConsumed := map[int]int{}
	for si := range p.stages {
		for _, c := range p.stages[si].calls {
			for _, b := range c.n.args {
				lastConsumed[b.id] = si
			}
		}
	}

	for si := range p.stages {
		st := &p.stages[si]
		seenIn := map[int]bool{}
		seenOut := map[int]bool{}
		seenBC := map[int]bool{}
		producedHere := map[int]bool{}
		for _, c := range st.calls {
			for ai, r := range c.args {
				b := c.n.args[ai]
				if r.broadcast {
					if !seenBC[b.id] {
						seenBC[b.id] = true
						st.broadcast = append(st.broadcast, b)
					}
					continue
				}
				if !producedHere[b.id] && !seenIn[b.id] {
					seenIn[b.id] = true
					st.inputs = append(st.inputs, stageInput{b: b, r: r})
				}
				// Mutated arguments: write back merged pieces unless the
				// splitter mutates in place (CapInPlace: the pieces alias
				// the original storage, so it is already up to date).
				if c.n.sa.Params[ai].Mut && !seenOut[b.id] {
					if !CapabilitiesOf(r.splitter).Has(CapInPlace) {
						seenOut[b.id] = true
						st.outputs = append(st.outputs, stageOutput{b: b, r: r})
					}
				}
			}
			if c.n.ret != nil {
				rb := c.n.ret
				producedHere[rb.id] = true
				// A produced value is materialized (merged) iff the user
				// demanded it, a later stage reads it, or nothing reads it
				// at all (it is a user-visible result). Values consumed
				// only downstream within this stage are pipelined
				// intermediates and never materialized.
				last, consumed := lastConsumed[rb.id]
				need := rb.keep || !consumed || last > si
				if need && !seenOut[rb.id] {
					seenOut[rb.id] = true
					st.outputs = append(st.outputs, stageOutput{b: rb, r: c.ret})
				} else if !need && !peek {
					rb.discarded = true
				}
			}
		}
	}
}
