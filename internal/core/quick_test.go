package core

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickPipelineEquivalence is the central correctness property (§3.4):
// for any pipeline of annotated elementwise functions and any splitting
// configuration, F(a, b, ...) == Merge(F(a1, b1, ...), F(a2, b2, ...), ...).
func TestQuickPipelineEquivalence(t *testing.T) {
	type cfg struct {
		Seed    int64
		N       uint16 // array length
		Workers uint8
		Batch   uint16
		Ops     uint8 // pipeline length
	}
	f := func(c cfg) bool {
		n := int(c.N%2000) + 1
		workers := int(c.Workers%8) + 1
		batch := int64(c.Batch%512) + 1
		ops := int(c.Ops%6) + 1
		rng := rand.New(rand.NewSource(c.Seed))

		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.Float64()*10 + 0.1
			b[i] = rng.Float64()*10 + 0.1
		}
		ref := append([]float64(nil), a...)

		s := NewSession(Options{Workers: workers, BatchElems: batch})
		for k := 0; k < ops; k++ {
			switch k % 3 {
			case 0:
				s.Call(testLog1p, saUnary("log1p"), n, a, a)
				for i := range ref {
					ref[i] = math.Log1p(ref[i])
				}
			case 1:
				s.Call(testAdd, saBinary("add"), n, a, b, a)
				for i := range ref {
					ref[i] += b[i]
				}
			case 2:
				s.Call(testDiv, saBinary("div"), n, a, b, a)
				for i := range ref {
					ref[i] /= b[i]
				}
			}
		}
		if err := s.EvaluateContext(context.Background()); err != nil {
			t.Logf("evaluate: %v", err)
			return false
		}
		return almostEqual(a, ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSplitMergeRoundTrip: merging the splits of any array under any
// batch size reproduces the array.
func TestQuickSplitMergeRoundTrip(t *testing.T) {
	f := func(vals []float64, batch uint8) bool {
		b := int64(batch%64) + 1
		sp := arraySplitter{}
		typ := NewSplitType("ArraySplit", int64(len(vals)))
		var pieces []any
		for s := int64(0); s < int64(len(vals)); s += b {
			e := s + b
			if e > int64(len(vals)) {
				e = int64(len(vals))
			}
			p, err := sp.Split(vals, typ, s, e)
			if err != nil {
				return false
			}
			pieces = append(pieces, p)
		}
		m, err := sp.Merge(pieces, typ)
		if err != nil {
			return false
		}
		return almostEqual(m.([]float64), vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickReductionEquivalence: parallel partial sums merge to the serial
// sum for any worker/batch configuration.
func TestQuickReductionEquivalence(t *testing.T) {
	f := func(seed int64, n uint16, workers, batch uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(n%3000) + 1
		a := make([]float64, size)
		want := 0.0
		for i := range a {
			a[i] = rng.Float64()
			want += a[i]
		}
		s := NewSession(Options{Workers: int(workers%8) + 1, BatchElems: int64(batch)%256 + 1})
		got, err := s.Call(fnSum, saSum, a).Float64()
		if err != nil {
			return false
		}
		return math.Abs(got-want) <= 1e-7*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFilterScale: unknown-typed filter output pipelined into a
// generic mutator behaves like the serial program.
func TestQuickFilterScale(t *testing.T) {
	f := func(seed int64, n uint16, workers uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(n%2048) + 1
		a := make([]float64, size)
		for i := range a {
			a[i] = rng.Float64()*2 - 1
		}
		var want []float64
		for _, x := range a {
			if x > 0 {
				want = append(want, x*4)
			}
		}
		s := NewSession(Options{Workers: int(workers%6) + 1, BatchElems: 97})
		fut := s.Call(fnFilterPos, saFilterPos, a)
		s.Call(fnScale, saScale, fut, 4.0)
		got, err := fut.Float64s()
		if err != nil {
			t.Logf("err: %v", err)
			return false
		}
		return almostEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
