package core

import (
	"context"
	"fmt"
	"math"
	"testing"
)

// testMatrix is a small row-major matrix used to exercise axis-dependent
// split types (§3.1's normalizeMatrixAxis example).
type testMatrix struct {
	rows, cols int
	data       []float64
}

func newTestMatrix(rows, cols int) *testMatrix {
	m := &testMatrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
	for i := range m.data {
		m.data[i] = float64(i%13) + 1
	}
	return m
}

func (m *testMatrix) clone() *testMatrix {
	return &testMatrix{rows: m.rows, cols: m.cols, data: append([]float64(nil), m.data...)}
}

// matrixSplitter splits by rows when axis==0 and by columns when axis==1.
// Row splits are views; column splits copy (like strided access through a
// crop), so this also exercises the mut write-back path.
type matrixSplitter struct{}

func (matrixSplitter) Info(v any, t SplitType) (RuntimeInfo, error) {
	m := v.(*testMatrix)
	axis := t.Params[2]
	if axis == 0 {
		return RuntimeInfo{Elems: int64(m.rows), ElemBytes: int64(m.cols) * 8}, nil
	}
	return RuntimeInfo{Elems: int64(m.cols), ElemBytes: int64(m.rows) * 8}, nil
}

func (matrixSplitter) Split(v any, t SplitType, start, end int64) (any, error) {
	m := v.(*testMatrix)
	axis := t.Params[2]
	if axis == 0 {
		return &testMatrix{rows: int(end - start), cols: m.cols, data: m.data[start*int64(m.cols) : end*int64(m.cols)]}, nil
	}
	// Column split: copy the strided columns out.
	w := int(end - start)
	out := &testMatrix{rows: m.rows, cols: w, data: make([]float64, m.rows*w)}
	for r := 0; r < m.rows; r++ {
		copy(out.data[r*w:(r+1)*w], m.data[r*m.cols+int(start):r*m.cols+int(end)])
	}
	return out, nil
}

func (matrixSplitter) Merge(pieces []any, t SplitType) (any, error) {
	axis := t.Params[2]
	if len(pieces) == 0 {
		return &testMatrix{}, nil
	}
	first := pieces[0].(*testMatrix)
	if axis == 0 {
		out := &testMatrix{cols: first.cols}
		for _, p := range pieces {
			pm := p.(*testMatrix)
			out.rows += pm.rows
			out.data = append(out.data, pm.data...)
		}
		return out, nil
	}
	cols := 0
	for _, p := range pieces {
		cols += p.(*testMatrix).cols
	}
	out := &testMatrix{rows: first.rows, cols: cols, data: make([]float64, first.rows*cols)}
	off := 0
	for _, p := range pieces {
		pm := p.(*testMatrix)
		for r := 0; r < pm.rows; r++ {
			copy(out.data[r*cols+off:r*cols+off+pm.cols], pm.data[r*pm.cols:(r+1)*pm.cols])
		}
		off += pm.cols
	}
	return out, nil
}

// matrixSplitOf is MatrixSplit(m, axis): params are (rows, cols, axis).
func matrixSplitOf(mIdx, axisIdx int) TypeExpr {
	return Concrete("MatrixSplit", matrixSplitter{}, func(args []any) (SplitType, error) {
		m, ok := args[mIdx].(*testMatrix)
		if !ok || m == nil {
			return SplitType{}, fmt.Errorf("MatrixSplit ctor: matrix argument unavailable")
		}
		axis, ok := args[axisIdx].(int)
		if !ok {
			return SplitType{}, fmt.Errorf("MatrixSplit ctor: axis argument unavailable")
		}
		return NewSplitType("MatrixSplit", int64(m.rows), int64(m.cols), int64(axis)), nil
	})
}

// saNormalizeAxis mirrors Listing 4 Ex. 1.
var saNormalizeAxis = &Annotation{
	FuncName: "normalizeMatrixAxis",
	Params: []Param{
		{Name: "m", Mut: true, Type: matrixSplitOf(0, 1)},
		{Name: "axis", Type: Missing()},
	},
}

// fnNormalizeAxis normalizes each row (axis 0) or column (axis 1) to sum 1.
var fnNormalizeAxis Func = func(args []any) (any, error) {
	m := args[0].(*testMatrix)
	axis := args[1].(int)
	if axis == 0 {
		for r := 0; r < m.rows; r++ {
			row := m.data[r*m.cols : (r+1)*m.cols]
			s := 0.0
			for _, x := range row {
				s += x
			}
			for i := range row {
				row[i] /= s
			}
		}
		return nil, nil
	}
	for c := 0; c < m.cols; c++ {
		s := 0.0
		for r := 0; r < m.rows; r++ {
			s += m.data[r*m.cols+c]
		}
		for r := 0; r < m.rows; r++ {
			m.data[r*m.cols+c] /= s
		}
	}
	return nil, nil
}

// TestMatrixAxisStageBreak reproduces §3.1: normalize by rows then by
// columns; the mismatched MatrixSplit parameters must break the stage.
func TestMatrixAxisStageBreak(t *testing.T) {
	m := newTestMatrix(60, 40)
	ref := m.clone()
	fnNormalizeAxis([]any{ref, 0})
	fnNormalizeAxis([]any{ref, 1})

	s := NewSession(Options{Workers: 4, BatchElems: 7})
	fut := s.Track(m)
	s.Call(fnNormalizeAxis, saNormalizeAxis, m, 0)
	s.Call(fnNormalizeAxis, saNormalizeAxis, m, 1)
	v, err := fut.Get()
	if err != nil {
		t.Fatal(err)
	}
	got := v.(*testMatrix)
	if got.rows != ref.rows || got.cols != ref.cols {
		t.Fatalf("shape mismatch: %dx%d vs %dx%d", got.rows, got.cols, ref.rows, ref.cols)
	}
	for i := range got.data {
		if math.Abs(got.data[i]-ref.data[i]) > 1e-9 {
			t.Fatalf("data mismatch at %d: %v vs %v", i, got.data[i], ref.data[i])
		}
	}
	if s.Stats().Stages != 2 {
		t.Errorf("row-then-column normalize must take 2 stages, got %d", s.Stats().Stages)
	}
}

// TestMatrixSameAxisPipelines: two row-wise calls share one stage.
func TestMatrixSameAxisPipelines(t *testing.T) {
	m := newTestMatrix(64, 16)
	ref := m.clone()
	fnNormalizeAxis([]any{ref, 0})
	fnNormalizeAxis([]any{ref, 0})

	s := NewSession(Options{Workers: 3, BatchElems: 5})
	fut := s.Track(m)
	s.Call(fnNormalizeAxis, saNormalizeAxis, m, 0)
	s.Call(fnNormalizeAxis, saNormalizeAxis, m, 0)
	v, err := fut.Get()
	if err != nil {
		t.Fatal(err)
	}
	got := v.(*testMatrix)
	for i := range got.data {
		if math.Abs(got.data[i]-ref.data[i]) > 1e-9 {
			t.Fatalf("data mismatch at %d", i)
		}
	}
	if s.Stats().Stages != 1 {
		t.Errorf("same-axis calls should pipeline into 1 stage, got %d", s.Stats().Stages)
	}
}

// TestColumnSplitWriteBack: axis-1 splits copy, so mutation must write back
// through the merged value.
func TestColumnSplitWriteBack(t *testing.T) {
	m := newTestMatrix(10, 50)
	ref := m.clone()
	fnNormalizeAxis([]any{ref, 1})

	s := NewSession(Options{Workers: 4, BatchElems: 3})
	fut := s.Track(m)
	s.Call(fnNormalizeAxis, saNormalizeAxis, m, 1)
	v, err := fut.Get()
	if err != nil {
		t.Fatal(err)
	}
	got := v.(*testMatrix)
	for i := range got.data {
		if math.Abs(got.data[i]-ref.data[i]) > 1e-9 {
			t.Fatalf("write-back mismatch at %d", i)
		}
	}
}

// TestSplitTypeBasics covers equality, unknown identity, and printing.
func TestSplitTypeBasics(t *testing.T) {
	a := NewSplitType("ArraySplit", 10)
	b := NewSplitType("ArraySplit", 10)
	c := NewSplitType("ArraySplit", 20)
	d := NewSplitType("MatrixSplit", 10)
	if !a.Equal(b) {
		t.Error("equal types should compare equal")
	}
	if a.Equal(c) || a.Equal(d) {
		t.Error("different params or names must not compare equal")
	}
	u1, u2 := NewUnknownType(), NewUnknownType()
	if u1.Equal(u2) {
		t.Error("two unknowns must differ")
	}
	if !u1.Equal(u1) {
		t.Error("an unknown must equal itself")
	}
	if !u1.IsUnknown() || a.IsUnknown() {
		t.Error("IsUnknown misreports")
	}
	var zero SplitType
	if !zero.IsZero() || a.IsZero() {
		t.Error("IsZero misreports")
	}
	if a.String() != "ArraySplit<10>" {
		t.Errorf("String() = %q", a.String())
	}
	if NewSplitType("X").String() != "X" {
		t.Errorf("parameterless String() = %q", NewSplitType("X").String())
	}
	if zero.String() != "<none>" {
		t.Errorf("zero String() = %q", zero.String())
	}
}

// TestBatchSizeHeuristic checks the C*L2/sum(elem) formula and clamping.
func TestBatchSizeHeuristic(t *testing.T) {
	o := Options{L2CacheBytes: 256 << 10, BatchConstant: 4}.withDefaults()
	// 3 arrays of float64: sum = 24 bytes/elem.
	if got := o.batchSize(24, 1<<30); got != int64(4*(256<<10)/24) {
		t.Errorf("batch = %d", got)
	}
	// Clamp to total.
	if got := o.batchSize(24, 100); got != 100 {
		t.Errorf("batch should clamp to total, got %d", got)
	}
	// Override.
	o.BatchElems = 512
	if got := o.batchSize(24, 1<<20); got != 512 {
		t.Errorf("override ignored, got %d", got)
	}
	// Zero elem bytes doesn't divide by zero.
	o.BatchElems = 0
	if got := o.batchSize(0, 1<<40); got <= 0 {
		t.Errorf("zero elem bytes mishandled: %d", got)
	}
}

// TestPedanticNilPiece: pedantic mode rejects nil pieces.
func TestPedanticNilPiece(t *testing.T) {
	nilSplit := Concrete("NilSplit", nilSplitter{}, FixedCtor(NewSplitType("NilSplit", 1)))
	sa := &Annotation{FuncName: "f", Params: []Param{{Name: "a", Type: nilSplit}}}
	s := NewSession(Options{Workers: 1, Pedantic: true})
	s.Call(func(args []any) (any, error) { return nil, nil }, sa, seq(8))
	if err := s.EvaluateContext(context.Background()); err == nil {
		t.Fatal("pedantic mode should reject nil pieces")
	}
}

type nilSplitter struct{}

func (nilSplitter) Info(v any, t SplitType) (RuntimeInfo, error) {
	return RuntimeInfo{Elems: 4, ElemBytes: 8}, nil
}
func (nilSplitter) Split(v any, t SplitType, start, end int64) (any, error) { return nil, nil }
func (nilSplitter) Merge(pieces []any, t SplitType) (any, error)            { return nil, nil }

// TestUnsplittableWholeCall: a function annotated with only "_" arguments
// (one Mozart cannot split) executes whole, once, in its own stage, and its
// result can feed later split stages.
func TestUnsplittableWholeCall(t *testing.T) {
	reverse := &Annotation{
		FuncName: "reverse",
		Params:   []Param{{Name: "a", Type: Missing()}},
		Ret:      func() *TypeExpr { u := Unknown(); return &u }(),
	}
	var callCount int
	fnReverse := func(args []any) (any, error) {
		callCount++
		a := args[0].([]float64)
		out := make([]float64, len(a))
		for i := range a {
			out[i] = a[len(a)-1-i]
		}
		return out, nil
	}

	a, b := seq(400), seq(400)
	s := NewSession(Options{Workers: 4, BatchElems: 13})
	c := s.Call(fnAddNew, saAddNew, a, b) // split stage
	r := s.Call(fnReverse, reverse, c)    // whole stage
	d := s.Call(fnAddNew, saAddNew, r, b) // split stage
	got, err := d.Float64s()
	if err != nil {
		t.Fatal(err)
	}
	if callCount != 1 {
		t.Fatalf("unsplittable call ran %d times, want 1", callCount)
	}
	n := len(a)
	want := make([]float64, n)
	for i := range want {
		want[i] = (a[n-1-i] + b[n-1-i]) + b[i]
	}
	if !almostEqual(got, want) {
		t.Fatal("whole-call pipeline mismatch")
	}
	if s.Stats().Stages != 3 {
		t.Errorf("want 3 stages (split / whole / split), got %d", s.Stats().Stages)
	}
}

// TestMismatchedElementCounts: inputs disagreeing on Elems fail loudly.
func TestMismatchedElementCounts(t *testing.T) {
	a, b := seq(100), seq(50)
	s := NewSession(Options{Workers: 2})
	s.Call(fnAddNew, saAddNew, a, b)
	if err := s.EvaluateContext(context.Background()); err == nil {
		t.Fatal("mismatched element counts must fail")
	}
}
