package core

import (
	"context"
	"sync"
	"time"

	"mozart/internal/obs"
)

// Governor is a memory-budget admission controller: a weighted semaphore
// keyed on modeled bytes. Each stage's footprint is the §5.2 batching model
// — workers × batch × Σ elemBytes, the working set the batch heuristic sizes
// against the L2 cache — and a stage only starts once that footprint fits
// under the budget. A Governor can be shared by any number of sessions
// (Options.Governor) to bound the process-wide working set of concurrent
// Evaluates; Options.MemoryBudgetBytes creates a session-private one.
type Governor struct {
	mu        sync.Mutex
	cond      *sync.Cond
	budget    int64
	inUse     int64
	highWater int64
	waits     int64
}

// NewGovernor creates a governor with the given byte budget. A budget of
// zero or less admits everything (the governor is inert).
func NewGovernor(budgetBytes int64) *Governor {
	g := &Governor{budget: budgetBytes}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Budget returns the configured byte budget.
func (g *Governor) Budget() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.budget
}

// InUse returns the bytes currently admitted.
func (g *Governor) InUse() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inUse
}

// Available returns the bytes not currently admitted.
func (g *Governor) Available() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.budget - g.inUse
}

// HighWater returns the maximum bytes ever admitted at once — by
// construction never above the budget, which is what the budget guarantee
// tests probe.
func (g *Governor) HighWater() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.highWater
}

// Waits returns how many admissions had to block for capacity.
func (g *Governor) Waits() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.waits
}

// admit blocks until bytes fit under the budget, then reserves them.
// Requests above the whole budget are clamped to it (a stage larger than
// the budget runs alone rather than deadlocking). Canceling ctx abandons
// the wait.
func (g *Governor) admit(ctx context.Context, bytes int64) error {
	if g == nil || bytes <= 0 {
		return nil
	}
	// Wake waiters when the context dies so cond.Wait cannot hang.
	stop := context.AfterFunc(ctx, func() {
		g.mu.Lock()
		defer g.mu.Unlock()
		g.cond.Broadcast()
	})
	defer stop()

	g.mu.Lock()
	defer g.mu.Unlock()
	if g.budget <= 0 {
		return nil
	}
	if bytes > g.budget {
		bytes = g.budget
	}
	waited := false
	for g.inUse+bytes > g.budget {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !waited {
			waited = true
			g.waits++
		}
		g.cond.Wait()
	}
	g.inUse += bytes
	if g.inUse > g.highWater {
		g.highWater = g.inUse
	}
	return nil
}

// TryAdmit reserves bytes if they fit under the budget right now and
// returns an idempotent release closure; ok=false means the reservation
// would have had to wait. This is the fast-path load-shedding probe a
// server runs at request admission: shed (429) instead of queueing.
//
// Unlike admit, TryAdmit does not clamp oversized requests: a request that
// could never fit reports ok=false rather than being silently shrunk —
// a caller shedding load wants the refusal, not a partial reservation. A
// nil or inert (budget <= 0) governor admits everything with a no-op
// release.
func (g *Governor) TryAdmit(bytes int64) (release func(), ok bool) {
	noop := func() {}
	if g == nil || bytes <= 0 {
		return noop, true
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.budget <= 0 {
		return noop, true
	}
	if g.inUse+bytes > g.budget {
		return noop, false
	}
	g.inUse += bytes
	if g.inUse > g.highWater {
		g.highWater = g.inUse
	}
	var once sync.Once
	return func() { once.Do(func() { g.release(bytes) }) }, true
}

// release returns admitted bytes to the budget and wakes waiters. bytes
// must match the (possibly clamped) amount admit reserved; the helper
// returned by Session.admitStage guarantees that.
func (g *Governor) release(bytes int64) {
	if g == nil || bytes <= 0 {
		return
	}
	g.mu.Lock()
	g.inUse -= bytes
	if g.inUse < 0 {
		g.inUse = 0
	}
	g.cond.Broadcast()
	g.mu.Unlock()
}

// admitStage gates a stage's split execution on the session's governor.
// Under pressure it degrades before queueing — first shrinking the batch
// toward what is currently available (smaller working set, same
// parallelism), then shedding workers — and only blocks when even the
// shrunken footprint does not fit. Wait time lands in Stats.AdmissionWaitNS.
// It returns the possibly-adjusted batch and worker count plus a release
// closure for the reserved bytes.
func (s *Session) admitStage(ctx context.Context, si int, st *planStage, sumElemBytes, total, batch int64, workers int) (int64, int, func(), error) {
	g := s.opts.Governor
	noop := func() {}
	if g == nil || g.Budget() <= 0 {
		return batch, workers, noop, nil
	}
	if sumElemBytes <= 0 {
		sumElemBytes = 1
	}
	footprint := func(b int64, w int) int64 { return b * int64(w) * sumElemBytes }

	// Shrink toward what is currently available (avoiding a wait when
	// possible), or toward the whole budget when nothing is free — the
	// reservation must cover the footprint the stage actually runs with,
	// otherwise concurrent stages could exceed the budget.
	target := g.Available()
	if target <= 0 || target > g.Budget() {
		target = g.Budget()
	}
	if footprint(batch, workers) > target {
		if nb := target / (int64(workers) * sumElemBytes); nb < batch {
			batch = clamp64(nb, 1, total)
		}
		if footprint(batch, workers) > target {
			if nw := target / (batch * sumElemBytes); nw < int64(workers) {
				workers = int(clamp64(nw, 1, int64(workers)))
			}
		}
	}
	req := footprint(batch, workers)
	if b := g.Budget(); req > b {
		// Even one worker on a one-element batch models over the whole
		// budget: admit the stage alone at full reservation instead of
		// deadlocking.
		req = b
	}
	t0 := time.Now()
	err := g.admit(ctx, req)
	wait := time.Since(t0)
	s.stats.add(&s.stats.AdmissionWaitNS, wait)
	if err != nil {
		return batch, workers, noop, s.stageErr(st, originFromContext(err), err)
	}
	if tr := s.opts.Tracer; tr != nil {
		tr.Emit(obs.Event{Kind: obs.EvAdmission, Time: time.Now(), Dur: wait,
			Stage: si, Worker: obs.RuntimeLane, Calls: stageCalls(st),
			Bytes: req, BatchElems: batch, Workers: workers})
	}
	return batch, workers, func() { g.release(req) }, nil
}
