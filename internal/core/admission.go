package core

import (
	"context"
	"sync"
	"time"

	"mozart/internal/obs"
)

// PressureLevel is the Governor's graceful-degradation ladder. Memory
// pressure is a mode change, not a failure: Normal stages run with the
// heuristic batch and full parallelism; Constrained stages shrank their
// batch or shed workers to fit the remaining budget; OutOfCore stages could
// not fit their §5.2 working set at all and execute in streaming windows
// (see Options.OutOfCore), spilling merge-side partials to disk when the
// merge order is not foldable.
type PressureLevel int32

// The pressure ladder, in escalation order.
const (
	PressureNormal PressureLevel = iota
	PressureConstrained
	PressureOutOfCore
)

// String returns the level's stable lowercase name (the Detail of pressure
// events and the level label of the Prometheus transition counter).
func (l PressureLevel) String() string {
	switch l {
	case PressureConstrained:
		return "constrained"
	case PressureOutOfCore:
		return "out-of-core"
	}
	return "normal"
}

// Governor is a memory-budget admission controller: a weighted semaphore
// keyed on modeled bytes. Each stage's footprint is the §5.2 batching model
// — workers × batch × Σ elemBytes, the working set the batch heuristic sizes
// against the L2 cache — and a stage only starts once that footprint fits
// under the budget. A Governor can be shared by any number of sessions
// (Options.Governor) to bound the process-wide working set of concurrent
// Evaluates; Options.MemoryBudgetBytes creates a session-private one.
type Governor struct {
	mu        sync.Mutex
	cond      *sync.Cond
	budget    int64
	inUse     int64
	highWater int64
	waits     int64

	// Pressure-ladder telemetry: the current level (last stage admission
	// wins under sharing), the highest level ever reached, and how many
	// times the level changed.
	level       PressureLevel
	maxLevel    PressureLevel
	transitions int64
}

// NewGovernor creates a governor with the given byte budget. A budget of
// zero or less admits everything (the governor is inert).
func NewGovernor(budgetBytes int64) *Governor {
	g := &Governor{budget: budgetBytes}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Budget returns the configured byte budget.
func (g *Governor) Budget() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.budget
}

// InUse returns the bytes currently admitted.
func (g *Governor) InUse() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inUse
}

// Available returns the bytes not currently admitted.
func (g *Governor) Available() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.budget - g.inUse
}

// HighWater returns the maximum bytes ever admitted at once — by
// construction never above the budget, which is what the budget guarantee
// tests probe.
func (g *Governor) HighWater() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.highWater
}

// Waits returns how many admissions had to block for capacity.
func (g *Governor) Waits() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.waits
}

// SetBudget changes the byte budget at runtime and wakes every waiter so
// blocked admissions re-evaluate (and re-clamp) against the new budget.
// Shrinking below the current inUse does not evict admitted stages — they
// finish and release — but new admissions see the squeeze immediately.
// This is the seam the faultinject budget-squeeze fault drives.
func (g *Governor) SetBudget(bytes int64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.budget = bytes
	g.cond.Broadcast()
	g.mu.Unlock()
}

// Level returns the governor's current pressure level.
func (g *Governor) Level() PressureLevel {
	if g == nil {
		return PressureNormal
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.level
}

// MaxLevel returns the highest pressure level ever reached.
func (g *Governor) MaxLevel() PressureLevel {
	if g == nil {
		return PressureNormal
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.maxLevel
}

// PressureTransitions returns how many times the pressure level changed.
func (g *Governor) PressureTransitions() int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.transitions
}

// notePressure records the level the most recent stage admission ran at
// and reports whether that changed the current level.
func (g *Governor) notePressure(l PressureLevel) bool {
	if g == nil {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if l == g.level {
		return false
	}
	g.level = l
	if l > g.maxLevel {
		g.maxLevel = l
	}
	g.transitions++
	return true
}

// admit blocks until bytes fit under the budget, then reserves them and
// returns the amount actually reserved. Requests above the whole budget
// are clamped to it (a stage larger than the budget runs alone rather
// than deadlocking); the clamp is re-evaluated on every wakeup so a
// mid-wait SetBudget shrink cannot strand a waiter asking for more than
// the new budget. Canceling ctx abandons the wait.
func (g *Governor) admit(ctx context.Context, bytes int64) (int64, error) {
	if g == nil || bytes <= 0 {
		return 0, nil
	}
	// Wake waiters when the context dies so cond.Wait cannot hang.
	stop := context.AfterFunc(ctx, func() {
		g.mu.Lock()
		defer g.mu.Unlock()
		g.cond.Broadcast()
	})
	defer stop()

	g.mu.Lock()
	defer g.mu.Unlock()
	waited := false
	for {
		if g.budget <= 0 {
			return 0, nil
		}
		req := bytes
		if req > g.budget {
			req = g.budget
		}
		if g.inUse+req <= g.budget {
			g.inUse += req
			if g.inUse > g.highWater {
				g.highWater = g.inUse
			}
			return req, nil
		}
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		if !waited {
			waited = true
			g.waits++
		}
		g.cond.Wait()
	}
}

// TryAdmit reserves bytes if they fit under the budget right now and
// returns an idempotent release closure; ok=false means the reservation
// would have had to wait. This is the fast-path load-shedding probe a
// server runs at request admission: shed (429) instead of queueing.
//
// Unlike admit, TryAdmit does not clamp oversized requests: a request that
// could never fit reports ok=false rather than being silently shrunk —
// a caller shedding load wants the refusal, not a partial reservation. A
// nil or inert (budget <= 0) governor admits everything with a no-op
// release.
func (g *Governor) TryAdmit(bytes int64) (release func(), ok bool) {
	noop := func() {}
	if g == nil || bytes <= 0 {
		return noop, true
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.budget <= 0 {
		return noop, true
	}
	if g.inUse+bytes > g.budget {
		return noop, false
	}
	g.inUse += bytes
	if g.inUse > g.highWater {
		g.highWater = g.inUse
	}
	var once sync.Once
	return func() { once.Do(func() { g.release(bytes) }) }, true
}

// release returns admitted bytes to the budget and wakes waiters. bytes
// must match the (possibly clamped) amount admit reserved; the helper
// returned by Session.admitStage guarantees that.
func (g *Governor) release(bytes int64) {
	if g == nil || bytes <= 0 {
		return
	}
	g.mu.Lock()
	g.inUse -= bytes
	if g.inUse < 0 {
		g.inUse = 0
	}
	g.cond.Broadcast()
	g.mu.Unlock()
}

// admitStage gates a stage's split execution on the session's governor.
// Under pressure it degrades before queueing — first shrinking the batch
// toward what is currently available (smaller working set, same
// parallelism), then shedding workers — and only blocks when even the
// shrunken footprint does not fit. Wait time lands in Stats.AdmissionWaitNS.
// It returns the possibly-adjusted batch and worker count plus a release
// closure for the reserved bytes.
func (s *Session) admitStage(ctx context.Context, si int, st *planStage, sumElemBytes, total, batch int64, workers int) (int64, int, func(), error) {
	g := s.opts.Governor
	noop := func() {}
	if g == nil || g.Budget() <= 0 {
		return batch, workers, noop, nil
	}
	if sumElemBytes <= 0 {
		sumElemBytes = 1
	}
	batch0, workers0 := batch, workers
	footprint := func(b int64, w int) int64 { return b * int64(w) * sumElemBytes }

	// Shrink toward what is currently available (avoiding a wait when
	// possible), or toward the whole budget when nothing is free — the
	// reservation must cover the footprint the stage actually runs with,
	// otherwise concurrent stages could exceed the budget.
	target := g.Available()
	if target <= 0 || target > g.Budget() {
		target = g.Budget()
	}
	if footprint(batch, workers) > target {
		if nb := target / (int64(workers) * sumElemBytes); nb < batch {
			batch = clamp64(nb, 1, total)
		}
		if footprint(batch, workers) > target {
			if nw := target / (batch * sumElemBytes); nw < int64(workers) {
				workers = int(clamp64(nw, 1, int64(workers)))
			}
		}
	}
	req := footprint(batch, workers)
	if b := g.Budget(); req > b {
		// Even one worker on a one-element batch models over the whole
		// budget: admit the stage alone at full reservation instead of
		// deadlocking.
		req = b
	}
	t0 := time.Now()
	admitted, err := g.admit(ctx, req)
	wait := time.Since(t0)
	s.stats.add(&s.stats.AdmissionWaitNS, wait)
	if err != nil {
		return batch, workers, noop, s.stageErr(st, originFromContext(err), err)
	}
	if tr := s.opts.Tracer; tr != nil {
		tr.Emit(obs.Event{Kind: obs.EvAdmission, Time: time.Now(), Dur: wait,
			Stage: si, Worker: obs.RuntimeLane, Calls: stageCalls(st),
			Bytes: admitted, BatchElems: batch, Workers: workers})
	}
	level := PressureNormal
	if batch < batch0 || workers < workers0 {
		level = PressureConstrained
	}
	s.notePressure(g, si, stageCalls(st), level)
	return batch, workers, func() { g.release(admitted) }, nil
}

// notePressure records a pressure-level observation on the governor and
// emits an EvPressure event when the level actually changed.
func (s *Session) notePressure(g *Governor, si int, calls string, level PressureLevel) {
	if !g.notePressure(level) {
		return
	}
	if tr := s.opts.Tracer; tr != nil {
		tr.Emit(obs.Event{Kind: obs.EvPressure, Time: time.Now(),
			Stage: si, Worker: obs.RuntimeLane, Calls: calls,
			Bytes: g.InUse(), Detail: level.String()})
	}
}
