package core

import (
	"context"
	"fmt"
	"reflect"
	"time"

	"mozart/internal/obs"
	ir "mozart/internal/plan"
)

// binding is one value slot in the dataflow graph. Bindings are created for
// source values (identified by pointer identity where possible), for scalar
// arguments, and for values produced by annotated calls.
type binding struct {
	id        int
	val       any   // current full value (valid when hasVal)
	hasVal    bool  // val holds the current full value
	ready     bool  // val is final and safe for user reads
	producer  *node // pending producer among un-evaluated nodes, nil otherwise
	key       uintptr
	keep      bool // user demanded materialization (Future.Keep)
	discarded bool // was pipelined away and never materialized
	guarded   bool // participates in simulated memory protection
	bytes     int64
}

// node is one captured annotated call.
type node struct {
	id      int
	name    string
	fn      Func
	sa      *Annotation
	args    []*binding
	argVals []any // captured raw argument values (nil for unresolved lazy args)
	ret     *binding
}

// Session is the libmozart client library (§4): it lazily captures a
// dataflow graph of annotated calls and evaluates it when a lazy value is
// accessed (or Evaluate is called explicitly). A Session is not safe for
// concurrent use; the runtime it spawns is internally parallel.
type Session struct {
	opts      Options
	nodes     []*node // pending, un-evaluated calls in program order
	bindings  []*binding
	byPointer map[uintptr]*binding
	stats     stats
	nextID    int
	broken    error         // sticky evaluation error
	breakers  *breakerSet   // per-annotation circuit breakers (FallbackQuarantine)
	sim       simCounters   // plan-signature cache for simulated counters
	pools     *sessionPools // hot-path buffer reuse (scratch, outs, pieces)
}

// NewSession creates a session with the given options.
func NewSession(opts Options) *Session {
	o := opts.withDefaults()
	breakers := newBreakerSet(o.Breaker)
	if o.Breakers != nil {
		breakers = o.Breakers.set
	}
	return &Session{
		opts:      o,
		byPointer: map[uintptr]*binding{},
		breakers:  breakers,
		pools:     newSessionPools(o.PoisonPools),
	}
}

// spawn dispatches a stage-worker task onto the session's worker pool, or a
// fresh goroutine when the pool is disabled, accounting goroutine creation
// in Stats.WorkerSpawns (zero across steady-state evaluations is the pool's
// reuse proof).
func (s *Session) spawn(task func()) {
	if p := s.opts.WorkerPool; p != nil {
		s.stats.add(&s.stats.PoolTasks, 1)
		if p.Run(task) {
			s.stats.add(&s.stats.WorkerSpawns, 1)
		}
		return
	}
	s.stats.add(&s.stats.WorkerSpawns, 1)
	go task()
}

// baseContext resolves the context used by evaluations forced without an
// explicit one (Options.BaseContext).
func (s *Session) baseContext() context.Context {
	if s.opts.BaseContext != nil {
		if ctx := s.opts.BaseContext(); ctx != nil {
			return ctx
		}
	}
	return context.Background()
}

// Options returns the session's effective options.
func (s *Session) Options() Options { return s.opts }

// Stats returns a snapshot of the runtime's phase timings and counters.
// The returned StatsSnapshot is a plain value: it does not change as the
// session keeps running, and two snapshots can be compared field by field.
func (s *Session) Stats() StatsSnapshot { return s.stats.Snapshot() }

// ResetStats zeroes the accumulated statistics.
func (s *Session) ResetStats() { s.stats = stats{} }

// Pending returns the number of captured, not-yet-evaluated calls.
func (s *Session) Pending() int { return len(s.nodes) }

// dataPointer extracts a stable identity for reference-like values. Slices
// are identified by their base array pointer, mirroring how the paper's C++
// client library keys mutable data by its pointer.
func dataPointer(v any) (uintptr, bool) {
	if v == nil {
		return 0, false
	}
	rv := reflect.ValueOf(v)
	switch rv.Kind() {
	case reflect.Slice, reflect.Pointer, reflect.Map, reflect.Chan, reflect.Func, reflect.UnsafePointer:
		p := rv.Pointer()
		return p, p != 0
	}
	return 0, false
}

// Footprinter lets data types report their buffer size for the simulated
// memory-protection accounting.
type Footprinter interface {
	MemoryFootprint() int64
}

// estimateBytes best-effort sizes a value's backing storage.
func estimateBytes(v any) int64 {
	if v == nil {
		return 0
	}
	if f, ok := v.(Footprinter); ok {
		return f.MemoryFootprint()
	}
	rv := reflect.ValueOf(v)
	if rv.Kind() == reflect.Slice {
		return int64(rv.Len()) * int64(rv.Type().Elem().Size())
	}
	return 0
}

func (s *Session) newBinding() *binding {
	b := &binding{id: s.nextID}
	s.nextID++
	s.bindings = append(s.bindings, b)
	return b
}

// bindingFor resolves an argument to its binding, creating a source binding
// on first sight. Futures map to their producing binding; reference values
// are deduplicated by pointer identity; scalars get anonymous bindings.
func (s *Session) bindingFor(arg any) *binding {
	if f, ok := arg.(*Future); ok {
		if f.sess != s {
			panic("mozart: future passed to a different session")
		}
		return f.b
	}
	if key, ok := dataPointer(arg); ok {
		if b, ok := s.byPointer[key]; ok {
			return b
		}
		b := s.newBinding()
		b.val, b.hasVal, b.ready, b.key = arg, true, true, key
		s.byPointer[key] = b
		return b
	}
	b := s.newBinding()
	b.val, b.hasVal, b.ready = arg, true, true
	return b
}

// Track registers a source value with the session and returns a Future for
// it. For values whose splitter copies data the merged result replaces the
// tracked value; under an in-place/view splitter (CapInPlace) the future
// resolves to the original value, mutated through its aliasing pieces.
func (s *Session) Track(v any) *Future {
	b := s.bindingFor(v)
	return &Future{sess: s, b: b}
}

// Guard marks v's buffer as protected, simulating the paper's PROT_NONE
// allocations: each evaluation accounts an unprotect cost proportional to
// the guarded bytes (§8.5). bytes should be the buffer size.
func (s *Session) Guard(v any, bytes int64) {
	b := s.bindingFor(v)
	b.guarded = true
	b.bytes = bytes
}

// Call captures an annotated function call in the dataflow graph and
// returns a Future for its result (nil for void functions). The arguments
// may be raw values or Futures from the same session.
func (s *Session) Call(fn Func, sa *Annotation, args ...any) *Future {
	start := time.Now()
	defer func() { s.stats.add(&s.stats.ClientNS, time.Since(start)) }()

	if len(args) != len(sa.Params) {
		panic(fmt.Sprintf("mozart: %s: got %d args, annotation has %d params", sa.FuncName, len(args), len(sa.Params)))
	}
	n := &node{
		id:      len(s.nodes),
		name:    sa.FuncName,
		fn:      fn,
		sa:      sa,
		args:    make([]*binding, len(args)),
		argVals: make([]any, len(args)),
	}
	for i, a := range args {
		b := s.bindingFor(a)
		n.args[i] = b
		if f, ok := a.(*Future); ok {
			if b.hasVal {
				n.argVals[i] = b.val
			}
			_ = f
		} else {
			n.argVals[i] = a
		}
	}
	// Mutated arguments: this node becomes the pending producer, so later
	// readers order after it and accesses before evaluation force it.
	for i, p := range sa.Params {
		if p.Mut {
			n.args[i].producer = n
			n.args[i].ready = false
			n.args[i].discarded = false
		}
	}
	var fut *Future
	if sa.Ret != nil {
		rb := s.newBinding()
		rb.producer = n
		n.ret = rb
		fut = &Future{sess: s, b: rb}
	}
	s.nodes = append(s.nodes, n)
	return fut
}

// read returns the materialized value behind a binding. A binding that is
// not ready in a broken session is poisoned: it surfaces ErrNotEvaluated
// with the evaluation failure as its cause, never a stale value.
func (s *Session) read(b *binding) (any, error) {
	if b.discarded {
		return nil, ErrDiscarded
	}
	if !b.ready {
		if s.broken != nil {
			return nil, &notEvaluatedError{cause: s.broken}
		}
		return nil, ErrNotEvaluated
	}
	return b.val, nil
}

// Err returns the sticky error that broke the session, or nil. A broken
// session refuses further evaluation; values materialized before the
// failure remain readable.
func (s *Session) Err() error { return s.broken }

// Evaluate runs the pending dataflow graph: plan into stages, execute each
// stage with splitting, pipelining, and parallelism, then merge results.
// It is a no-op when nothing is pending.
//
// Deprecated: use EvaluateContext, which is the primary entry point and
// adds cancellation and deadlines. Evaluate is EvaluateContext with the
// session's base context (Options.BaseContext, default
// context.Background()) and is kept for existing callers.
func (s *Session) Evaluate() error { return s.EvaluateContext(s.baseContext()) }

// EvaluateContext is Evaluate under a caller-controlled context: canceling
// ctx (or its deadline passing) stops workers at their next batch boundary
// and fails the evaluation with a StageError wrapping the context's error.
// In-flight library calls run to completion first — unmodified library code
// cannot be preempted.
func (s *Session) EvaluateContext(ctx context.Context) error {
	if s.broken != nil {
		return s.broken
	}
	if len(s.nodes) == 0 {
		return nil
	}
	s.stats.add(&s.stats.Evaluations, 1)
	tr := s.opts.Tracer
	evalStart := time.Now()
	if tr != nil {
		tr.Emit(obs.Event{Kind: obs.EvSessionBegin, Time: evalStart, Stage: -1,
			Worker: obs.RuntimeLane, Elems: int64(len(s.nodes)), Trace: s.opts.Trace})
	}

	// Simulated memory unprotection of guarded buffers (§8.5): the paper
	// measured ~3.5ms per GB with mprotect. We account the modeled cost so
	// the Figure 5 breakdown has the same shape. With a non-zero cost
	// configured, every materialized buffer counts as protected (the
	// paper's drop-in malloc protects all Mozart-visible memory).
	t0 := time.Now()
	var guardedBytes int64
	for _, b := range s.bindings {
		switch {
		case b.guarded:
			guardedBytes += b.bytes
		case s.opts.UnprotectNSPerByte > 0 && b.hasVal:
			guardedBytes += estimateBytes(b.val)
		}
	}
	elapsed := time.Since(t0) + time.Duration(float64(guardedBytes)*s.opts.UnprotectNSPerByte)
	s.stats.add(&s.stats.UnprotectNS, elapsed)

	t1 := time.Now()
	plan, err := s.buildPlan(false)
	plannerDur := time.Since(t1)
	s.stats.add(&s.stats.PlannerNS, plannerDur)
	if err != nil {
		s.broken = err
		return s.finishEval(tr, evalStart, err)
	}
	if tr != nil {
		tr.Emit(obs.Event{Kind: obs.EvPlan, Time: time.Now(), Dur: plannerDur,
			Stage: -1, Worker: obs.RuntimeLane, Stages: len(plan.stages),
			Detail: plan.ir.Describe()})
	}
	if s.opts.OnPlan != nil {
		s.opts.OnPlan(plan.ir)
	}
	if s.opts.SimulateCounters && tr != nil {
		s.emitSimCounters(tr, plan.ir)
	}

	execStart := time.Now()
	if err := s.execute(ctx, plan); err != nil {
		s.reportTuner(tr, plan, time.Since(execStart), err)
		s.broken = err
		return s.finishEval(tr, evalStart, err)
	}
	s.reportTuner(tr, plan, time.Since(execStart), nil)

	// Graph consumed: clear pending nodes and producers.
	for _, n := range s.nodes {
		for _, b := range n.args {
			b.producer = nil
		}
		if n.ret != nil {
			n.ret.producer = nil
		}
	}
	s.nodes = s.nodes[:0]
	return s.finishEval(tr, evalStart, nil)
}

// finishEval closes the evaluation span and passes err through.
func (s *Session) finishEval(tr obs.Tracer, start time.Time, err error) error {
	if tr != nil {
		e := obs.Event{Kind: obs.EvSessionEnd, Time: time.Now(),
			Dur: time.Since(start), Stage: -1, Worker: obs.RuntimeLane,
			Trace: s.opts.Trace}
		if err != nil {
			e.Detail = err.Error()
		}
		tr.Emit(e)
	}
	return err
}

// Plan builds and returns the plan IR for the pending dataflow graph without
// evaluating it. Planning is read-only (peek mode): circuit breakers are
// consulted but never transitioned, and no binding is marked discarded, so
// calling Plan never changes what a later Evaluate does. An empty graph
// yields an empty plan.
func (s *Session) Plan() (*ir.Plan, error) {
	if s.broken != nil {
		return nil, s.broken
	}
	p, err := s.buildPlan(true)
	if err != nil {
		return nil, err
	}
	return p.ir, nil
}
