package core

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
)

func newTestSession(workers int) *Session {
	return NewSession(Options{Workers: workers, BatchElems: 100})
}

// TestInPlacePipeline runs the paper's Listing 1 shape: three in-place MKL
// style calls pipelined into one stage.
func TestInPlacePipeline(t *testing.T) {
	const n = 1000
	d1 := seq(n)
	tmp := seq(n)
	vol := make([]float64, n)
	for i := range vol {
		vol[i] = 2.0
	}

	want := make([]float64, n)
	for i := range want {
		want[i] = (math.Log1p(d1[i]) + tmp[i]) / vol[i]
	}

	s := newTestSession(4)
	s.Call(testLog1p, saUnary("vdLog1p"), n, d1, d1)
	s.Call(testAdd, saBinary("vdAdd"), n, d1, tmp, d1)
	s.Call(testDiv, saBinary("vdDiv"), n, d1, vol, d1)
	if err := s.EvaluateContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d1, want) {
		t.Fatalf("pipeline result mismatch")
	}
	st := s.Stats()
	if st.Stages != 1 {
		t.Errorf("want 1 stage (fully pipelined), got %d", st.Stages)
	}
	// 4 workers x 250 elems each at batch 100 -> 3 batches per worker.
	if st.Batches != 12 {
		t.Errorf("want 12 batches for 1000 elems, 4 workers, batch 100, got %d", st.Batches)
	}
	if st.Calls != 36 {
		t.Errorf("want 36 piece calls (3 fns x 12 batches), got %d", st.Calls)
	}
}

// TestReturnValuePipeline pipelines functions that return fresh arrays and
// checks that intermediates are discarded while results materialize.
func TestReturnValuePipeline(t *testing.T) {
	a, b := seq(512), seq(512)
	s := newTestSession(3)
	c := s.Call(fnAddNew, saAddNew, a, b)
	d := s.Call(fnAddNew, saAddNew, c, b)

	got, err := d.Float64s()
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, len(a))
	for i := range want {
		want[i] = a[i] + 2*b[i]
	}
	if !almostEqual(got, want) {
		t.Fatalf("result mismatch")
	}
	if _, err := c.Get(); !errors.Is(err, ErrDiscarded) {
		t.Errorf("intermediate should be discarded, got err=%v", err)
	}
	if s.Stats().Stages != 1 {
		t.Errorf("want 1 stage, got %d", s.Stats().Stages)
	}
}

// TestKeepMaterializesIntermediate checks Future.Keep.
func TestKeepMaterializesIntermediate(t *testing.T) {
	a, b := seq(256), seq(256)
	s := newTestSession(2)
	c := s.Call(fnAddNew, saAddNew, a, b).Keep()
	s.Call(fnAddNew, saAddNew, c, b)
	got, err := c.Float64s()
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, len(a))
	for i := range want {
		want[i] = a[i] + b[i]
	}
	if !almostEqual(got, want) {
		t.Fatalf("kept intermediate mismatch")
	}
}

// TestBroadcastScalar checks "_" parameters.
func TestBroadcastScalar(t *testing.T) {
	a := seq(300)
	want := make([]float64, len(a))
	for i := range want {
		want[i] = a[i] * 3
	}
	s := newTestSession(4)
	s.Call(fnScale, saScale, a, 3.0)
	if err := s.EvaluateContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(a, want) {
		t.Fatalf("scale mismatch")
	}
}

// TestReduction checks reduction split types whose merge combines partials.
func TestReduction(t *testing.T) {
	a := seq(1000)
	want := 0.0
	for _, x := range a {
		want += x
	}
	s := newTestSession(4)
	f := s.Call(fnSum, saSum, a)
	got, err := f.Float64()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

// TestPipelineWithReduction: elementwise ops pipelined with a final
// reduction all in one stage.
func TestPipelineWithReduction(t *testing.T) {
	a, b := seq(800), seq(800)
	s := newTestSession(4)
	c := s.Call(fnAddNew, saAddNew, a, b)
	f := s.Call(fnSum, saSum, c)
	got, err := f.Float64()
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for i := range a {
		want += a[i] + b[i]
	}
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	if s.Stats().Stages != 1 {
		t.Errorf("want 1 stage, got %d", s.Stats().Stages)
	}
}

// TestUnknownThenGeneric: a filter producing an unknown split type can still
// pipe into a generic consumer (§3.2).
func TestUnknownThenGeneric(t *testing.T) {
	a := make([]float64, 600)
	for i := range a {
		a[i] = float64(i%5) - 2 // mix of negatives, zeros, positives
	}
	s := newTestSession(3)
	f := s.Call(fnFilterPos, saFilterPos, a)
	s.Call(fnScale, saScale, f, 10.0)
	got, err := f.Float64s()
	if err != nil {
		t.Fatal(err)
	}
	var want []float64
	for _, x := range a {
		if x > 0 {
			want = append(want, x*10)
		}
	}
	if !almostEqual(got, want) {
		t.Fatalf("filter+scale mismatch: got %d elems, want %d", len(got), len(want))
	}
	if s.Stats().Stages != 1 {
		t.Errorf("unknown->generic should pipeline into 1 stage, got %d", s.Stats().Stages)
	}
}

// TestTwoUnknownsForceMerge: two distinct unknown values cannot bind the
// same generic, forcing a stage break and a merge/re-split.
func TestTwoUnknownsForceMerge(t *testing.T) {
	a, b := seq(400), seq(400)
	s := newTestSession(2)
	fa := s.Call(fnFilterPos, saFilterPos, a)
	fb := s.Call(fnFilterPos, saFilterPos, b)
	sum := s.Call(fnAddNew, saAddNew, fa, fb)
	got, err := sum.Float64s()
	if err != nil {
		t.Fatal(err)
	}
	// seq produces strictly positive values, so filters keep everything.
	want := make([]float64, len(a))
	for i := range want {
		want[i] = a[i] + b[i]
	}
	if !almostEqual(got, want) {
		t.Fatalf("mismatch after re-split")
	}
	if st := s.Stats().Stages; st < 2 {
		t.Errorf("two unknowns must break the stage, got %d stages", st)
	}
}

// TestDisablePipelining is the Table 4 Mozart(-pipe) mode: one stage per
// call, same results.
func TestDisablePipelining(t *testing.T) {
	const n = 500
	d1 := seq(n)
	tmp := seq(n)
	want := make([]float64, n)
	for i := range want {
		want[i] = math.Log1p(d1[i]) + tmp[i]
	}
	s := NewSession(Options{Workers: 4, BatchElems: 64, DisablePipelining: true})
	s.Call(testLog1p, saUnary("vdLog1p"), n, d1, d1)
	s.Call(testAdd, saBinary("vdAdd"), n, d1, tmp, d1)
	if err := s.EvaluateContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d1, want) {
		t.Fatalf("nopipe result mismatch")
	}
	if s.Stats().Stages != 2 {
		t.Errorf("want 2 stages with pipelining disabled, got %d", s.Stats().Stages)
	}
}

// TestSessionReuse evaluates, then issues more calls against the results.
func TestSessionReuse(t *testing.T) {
	a := seq(128)
	s := newTestSession(2)
	s.Call(fnScale, saScale, a, 2.0)
	if err := s.EvaluateContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	first := append([]float64(nil), a...)
	s.Call(fnScale, saScale, a, 0.5)
	if err := s.EvaluateContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(a[i]-first[i]/2) > 1e-12 {
			t.Fatalf("second evaluation wrong at %d", i)
		}
	}
}

// TestWorkerCountsAgree: results identical across worker counts.
func TestWorkerCountsAgree(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		a, b := seq(1013), seq(1013)
		s := NewSession(Options{Workers: workers, BatchElems: 37})
		c := s.Call(fnAddNew, saAddNew, a, b)
		d := s.Call(fnAddNew, saAddNew, c, c)
		got, err := d.Float64s()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		want := make([]float64, len(a))
		for i := range want {
			want[i] = 2 * (a[i] + b[i])
		}
		if !almostEqual(got, want) {
			t.Fatalf("workers=%d: mismatch", workers)
		}
	}
}

// TestZeroElements: empty inputs run zero batches and produce empty merges.
func TestZeroElements(t *testing.T) {
	var a, b []float64
	a, b = make([]float64, 0, 1), make([]float64, 0, 2)
	s := newTestSession(4)
	c := s.Call(fnAddNew, saAddNew, a, b)
	got, err := c.Get()
	if err != nil {
		t.Fatal(err)
	}
	if g, ok := got.([]float64); ok && len(g) != 0 {
		t.Fatalf("want empty result, got %v", got)
	}
}

// TestMutAfterRead: a value read by one call then mutated by a later one
// keeps program order.
func TestMutAfterRead(t *testing.T) {
	a := seq(200)
	orig := append([]float64(nil), a...)
	s := newTestSession(2)
	c := s.Call(fnAddNew, saAddNew, a, a) // reads a
	s.Call(fnScale, saScale, a, 0.0)      // then zeroes a
	got, err := c.Float64s()
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, len(orig))
	for i := range want {
		want[i] = 2 * orig[i]
	}
	if !almostEqual(got, want) {
		t.Fatalf("read-before-mutate violated")
	}
	for i := range a {
		if a[i] != 0 {
			t.Fatalf("a should be zeroed")
		}
	}
}

// TestEvaluateNoPending is a no-op.
func TestEvaluateNoPending(t *testing.T) {
	s := newTestSession(1)
	if err := s.EvaluateContext(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestFutureAccessors exercise typed getters and their error paths.
func TestFutureAccessors(t *testing.T) {
	a := seq(10)
	s := newTestSession(1)
	f := s.Call(fnSum, saSum, a)
	if _, err := f.Float64s(); err == nil {
		t.Error("Float64s on a float64 should fail")
	}
	if _, err := f.Float64(); err != nil {
		t.Error(err)
	}
	if _, err := f.Int64(); err == nil {
		t.Error("Int64 on float64 should fail")
	}
	if !f.Resolved() {
		t.Error("future should be resolved after access")
	}
}

// TestFunctionErrorPropagates: errors from library functions abort
// evaluation and mark the session broken.
func TestFunctionErrorPropagates(t *testing.T) {
	bad := func(args []any) (any, error) { return nil, errors.New("boom") }
	a := seq(64)
	s := newTestSession(2)
	f := s.Call(bad, saFilterPos, a)
	if _, err := f.Get(); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("want boom, got %v", err)
	}
	// The session is broken; further evaluation reports the same error.
	if err := s.EvaluateContext(context.Background()); err == nil {
		t.Fatal("broken session should keep failing")
	}
}

// TestMutMissingRejectedInSplitStage: a mut "_" parameter is a planning
// error when the call has split arguments (each pipeline would mutate the
// same whole value concurrently).
func TestMutMissingRejectedInSplitStage(t *testing.T) {
	bad := &Annotation{
		FuncName: "bad",
		Params: []Param{
			{Name: "a", Type: Generic("S")},
			{Name: "acc", Mut: true, Type: Missing()},
		},
	}
	s := newTestSession(1)
	s.Call(func(args []any) (any, error) { return nil, nil }, bad, seq(4), seq(1))
	if err := s.EvaluateContext(context.Background()); err == nil {
		t.Fatal("mut + missing in a split stage should be rejected")
	}
}

// TestMutMissingAllowedWhole: a whole (all-"_") call may mutate its
// argument; it runs exactly once.
func TestMutMissingAllowedWhole(t *testing.T) {
	whole := &Annotation{
		FuncName: "fillWhole",
		Params: []Param{
			{Name: "a", Mut: true, Type: Missing()},
		},
	}
	a := seq(16)
	s := newTestSession(4)
	s.Call(func(args []any) (any, error) {
		v := args[0].([]float64)
		for i := range v {
			v[i] = 42
		}
		return nil, nil
	}, whole, a)
	if err := s.EvaluateContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, x := range a {
		if x != 42 {
			t.Fatal("whole mut call did not apply")
		}
	}
}

// TestAnnotationValidate covers structural validation.
func TestAnnotationValidate(t *testing.T) {
	cases := []struct {
		name string
		a    *Annotation
		ok   bool
	}{
		{"nil", nil, false},
		{"dup params", &Annotation{FuncName: "f", Params: []Param{{Name: "x", Type: Missing()}, {Name: "x", Type: Missing()}}}, false},
		{"unnamed", &Annotation{FuncName: "f", Params: []Param{{Type: Missing()}}}, false},
		{"concrete without splitter", &Annotation{FuncName: "f", Params: []Param{{Name: "x", Type: TypeExpr{Kind: KindConcrete}}}}, false},
		{"generic without name", &Annotation{FuncName: "f", Params: []Param{{Name: "x", Type: TypeExpr{Kind: KindGeneric}}}}, false},
		{"ok", saAddNew, true},
	}
	for _, c := range cases {
		err := c.a.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

// TestUnknownParamRejected: unknown as a parameter type is invalid.
func TestUnknownParamRejected(t *testing.T) {
	bad := &Annotation{
		FuncName: "bad",
		Params:   []Param{{Name: "a", Type: Unknown()}},
	}
	s := newTestSession(1)
	s.Call(func(args []any) (any, error) { return nil, nil }, bad, seq(4))
	if err := s.EvaluateContext(context.Background()); err == nil {
		t.Fatal("unknown parameter type should be rejected")
	}
}

// TestTrackAndGuard: Track returns futures for source values, Guard accrues
// simulated unprotect time.
func TestTrackAndGuard(t *testing.T) {
	a := seq(100)
	s := NewSession(Options{Workers: 1, BatchElems: 10, UnprotectNSPerByte: 0.0035})
	s.Guard(a, int64(len(a)*8))
	fut := s.Track(a)
	s.Call(fnScale, saScale, a, 2.0)
	v, err := fut.Get()
	if err != nil {
		t.Fatal(err)
	}
	if &v.([]float64)[0] != &a[0] {
		t.Fatal("in-place tracked value should alias the original")
	}
	if s.Stats().UnprotectNS == 0 {
		t.Error("guarded buffer should account unprotect time")
	}
}

// TestStatsString formats without blowing up.
func TestStatsString(t *testing.T) {
	s := newTestSession(1)
	if got := s.Stats(); got.String() == "" {
		t.Error("empty stats string")
	}
	s.Call(fnScale, saScale, seq(10), 1.0)
	if err := s.EvaluateContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if !strings.Contains(st.String(), "task") {
		t.Errorf("stats string missing phases: %s", st.String())
	}
	if st.Total() <= 0 {
		t.Error("total should be positive")
	}
}

// TestLogging: the Logf hook sees per-piece calls.
func TestLogging(t *testing.T) {
	var lines int
	s := NewSession(Options{Workers: 1, BatchElems: 25, Logf: func(string, ...any) { lines++ }})
	s.Call(fnScale, saScale, seq(100), 2.0)
	if err := s.EvaluateContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	if lines != 4 {
		t.Errorf("want 4 logged calls (100/25), got %d", lines)
	}
}

// TestDynamicSchedulingEquivalence: work-stealing batch claiming produces
// results identical to static partitioning, including ordered merges and
// reductions, across worker counts.
func TestDynamicSchedulingEquivalence(t *testing.T) {
	a, b := seq(2311), seq(2311)
	ref := func() []float64 {
		out := make([]float64, len(a))
		for i := range out {
			out[i] = 2 * (a[i] + b[i])
		}
		return out
	}()
	for _, workers := range []int{1, 3, 8} {
		s := NewSession(Options{Workers: workers, BatchElems: 97, DynamicScheduling: true})
		c := s.Call(fnAddNew, saAddNew, a, b)
		d := s.Call(fnAddNew, saAddNew, c, c).Keep() // read below despite in-stage consumer
		sum := s.Call(fnSum, saSum, d)
		got, err := d.Float64s()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !almostEqual(got, ref) {
			t.Fatalf("workers=%d: dynamic scheduling result mismatch", workers)
		}
		want := 0.0
		for _, x := range ref {
			want += x
		}
		gotSum, err := sum.Float64()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(gotSum-want) > 1e-7*(1+want) {
			t.Fatalf("workers=%d: dynamic reduction mismatch", workers)
		}
	}
}

// TestDynamicSchedulingMutWriteBack: copying splitters write back correctly
// under dynamic scheduling.
func TestDynamicSchedulingMutWriteBack(t *testing.T) {
	m := newTestMatrix(40, 30)
	ref := m.clone()
	fnNormalizeAxis([]any{ref, 1})
	s := NewSession(Options{Workers: 4, BatchElems: 3, DynamicScheduling: true})
	fut := s.Track(m)
	s.Call(fnNormalizeAxis, saNormalizeAxis, m, 1)
	v, err := fut.Get()
	if err != nil {
		t.Fatal(err)
	}
	got := v.(*testMatrix)
	for i := range got.data {
		if math.Abs(got.data[i]-ref.data[i]) > 1e-9 {
			t.Fatalf("dynamic write-back mismatch at %d", i)
		}
	}
}

// TestDynamicSchedulingErrors: function errors surface under dynamic
// scheduling too.
func TestDynamicSchedulingErrors(t *testing.T) {
	bad := func(args []any) (any, error) { return nil, errors.New("dyn boom") }
	s := NewSession(Options{Workers: 3, BatchElems: 10, DynamicScheduling: true})
	f := s.Call(bad, saFilterPos, seq(100))
	if _, err := f.Get(); err == nil || !strings.Contains(err.Error(), "dyn boom") {
		t.Fatalf("want dyn boom, got %v", err)
	}
}

// TestDeprecatedEvaluateCompat pins the deprecated zero-argument Evaluate
// shim: it must keep behaving exactly like EvaluateContext(Background) for
// existing callers until the alias is removed. This is the one sanctioned
// use in the tree; everything else goes through the deprecation gate
// (cmd/depcheck / staticcheck in make ci).
func TestDeprecatedEvaluateCompat(t *testing.T) {
	a := seq(64)
	want := make([]float64, len(a))
	for i := range want {
		want[i] = a[i] * 2
	}
	s := newTestSession(2)
	s.Call(fnScale, saScale, a, 2.0)
	if err := s.Evaluate(); err != nil { // deprecated-ok: compat coverage
		t.Fatal(err)
	}
	if !almostEqual(a, want) {
		t.Fatalf("deprecated Evaluate produced wrong result")
	}
}
