package core

import (
	"sync"
	"sync/atomic"
	"time"
)

// WorkerPool is a persistent pool of worker goroutines shared by the
// static, dynamic, and streaming executors. Before it existed every
// EvaluateContext spawned fresh goroutines per stage; with the pool, a
// session's second and later evaluations run entirely on parked workers —
// zero goroutine spawns in steady state (Stats.WorkerSpawns counts the
// exceptions). A WorkerPool is safe for concurrent use and may be shared
// across sessions via Options.WorkerPool.
//
// The design is a LIFO parking lot: each idle worker owns a one-slot task
// channel and sits on the idle stack. Run pops a parked worker and hands it
// the task (never blocking — the slot is guaranteed free), spawns a new
// worker while under the cap, and falls back to a plain goroutine when the
// pool is saturated, so callers can never deadlock on the pool itself.
// Workers that sit idle past idleTimeout retire; retirement races with a
// concurrent Run popping the worker, which is resolved by checking whether
// the worker is still on the stack — if not, a task is already in flight
// on its channel and the worker runs it instead of exiting.
type WorkerPool struct {
	max         int
	idleTimeout time.Duration

	mu      sync.Mutex
	idle    []*poolWorker
	workers int

	spawns atomic.Int64
	tasks  atomic.Int64
}

type poolWorker struct {
	ch chan func()
}

// defaultPoolIdleTimeout bounds how long a parked worker outlives its last
// task. Short enough that test binaries spawning many sessions don't
// accumulate goroutines, long enough to span back-to-back evaluations.
const defaultPoolIdleTimeout = 2 * time.Second

// NewWorkerPool returns a pool that keeps at most max workers parked.
// max <= 0 is treated as 1.
func NewWorkerPool(max int) *WorkerPool {
	if max <= 0 {
		max = 1
	}
	return &WorkerPool{max: max, idleTimeout: defaultPoolIdleTimeout}
}

// Run executes task on a pool worker, reviving a parked one when possible.
// It reports whether a new goroutine had to be spawned (pool miss or
// saturation overflow); in steady state it returns false. Run never blocks
// waiting for a worker.
func (p *WorkerPool) Run(task func()) (spawned bool) {
	p.tasks.Add(1)
	if w := p.popIdle(); w != nil {
		w.ch <- task
		return false
	}
	p.mu.Lock()
	under := p.workers < p.max
	if under {
		p.workers++
	}
	p.mu.Unlock()
	p.spawns.Add(1)
	if under {
		w := &poolWorker{ch: make(chan func(), 1)}
		go p.workerLoop(w, task)
	} else {
		go task()
	}
	return true
}

// Spawns returns the cumulative number of goroutines the pool has created,
// including saturation overflows. A flat Spawns count across evaluations
// is the steady-state proof.
func (p *WorkerPool) Spawns() int64 { return p.spawns.Load() }

// Tasks returns the cumulative number of tasks submitted via Run.
func (p *WorkerPool) Tasks() int64 { return p.tasks.Load() }

func (p *WorkerPool) popIdle() *poolWorker {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.idle)
	if n == 0 {
		return nil
	}
	w := p.idle[n-1]
	p.idle[n-1] = nil
	p.idle = p.idle[:n-1]
	return w
}

// removeIdle takes w off the idle stack if it is still there, reporting
// whether it was. A false return means a Run call already popped w and a
// task is (or is about to be) in its channel.
func (p *WorkerPool) removeIdle(w *poolWorker) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, cand := range p.idle {
		if cand == w {
			last := len(p.idle) - 1
			p.idle[i] = p.idle[last]
			p.idle[last] = nil
			p.idle = p.idle[:last]
			return true
		}
	}
	return false
}

func (p *WorkerPool) workerLoop(w *poolWorker, first func()) {
	task := first
	timer := time.NewTimer(p.idleTimeout)
	defer timer.Stop()
	for {
		task()
		task = nil
		p.mu.Lock()
		p.idle = append(p.idle, w)
		p.mu.Unlock()
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(p.idleTimeout)
		select {
		case task = <-w.ch:
		case <-timer.C:
			if p.removeIdle(w) {
				p.mu.Lock()
				p.workers--
				p.mu.Unlock()
				return
			}
			// Popped by a racing Run: the task is guaranteed to arrive on
			// our one-slot channel; run it and keep living.
			task = <-w.ch
		}
	}
}
