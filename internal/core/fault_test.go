package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// Fault-tolerance tests. These hand-roll their faults instead of using
// internal/faultinject: that package imports core, so importing it here
// would be an import cycle. The annotation packages' tests exercise the
// injector against the same runtime paths.

// panicOnNth wraps fn to panic with msg on its nth invocation (1-based).
func panicOnNth(fn Func, n int64, msg string) Func {
	var calls atomic.Int64
	return func(args []any) (any, error) {
		if calls.Add(1) == n {
			panic(msg)
		}
		return fn(args)
	}
}

// errorOnNth wraps fn to return an error on its nth invocation (1-based).
func errorOnNth(fn Func, n int64, msg string) Func {
	var calls atomic.Int64
	return func(args []any) (any, error) {
		if calls.Add(1) == n {
			return nil, errors.New(msg)
		}
		return fn(args)
	}
}

// flakySplitter delegates to arraySplitter but fails Split on chosen
// invocations: every invocation when failN is 0, else only the failN-th.
type flakySplitter struct {
	calls *atomic.Int64
	failN int64
	mode  string // "error" or "panic"
}

func (flakySplitter) InPlace() bool { return true }

func (f flakySplitter) Info(v any, t SplitType) (RuntimeInfo, error) {
	return arraySplitter{}.Info(v, t)
}

func (f flakySplitter) Split(v any, t SplitType, start, end int64) (any, error) {
	if n := f.calls.Add(1); f.failN == 0 || n == f.failN {
		if f.mode == "panic" {
			panic("flaky split panic")
		}
		return nil, fmt.Errorf("flaky split error")
	}
	return arraySplitter{}.Split(v, t, start, end)
}

func (f flakySplitter) Merge(pieces []any, t SplitType) (any, error) {
	return arraySplitter{}.Merge(pieces, t)
}

// saFlakyUnary is saUnary with the array params bound to a flaky splitter.
func saFlakyUnary(name string, sp Splitter) *Annotation {
	arr := func() TypeExpr {
		return Concrete("ArraySplit", sp, func(args []any) (SplitType, error) {
			return NewSplitType("ArraySplit", int64(args[0].(int))), nil
		})
	}
	return &Annotation{
		FuncName: name,
		Params: []Param{
			{Name: "size", Type: sizeSplitOf(0)},
			{Name: "a", Type: arr()},
			{Name: "out", Mut: true, Type: arr()},
		},
	}
}

func schedulerVariants(t *testing.T, f func(t *testing.T, dynamic bool)) {
	t.Run("static", func(t *testing.T) { f(t, false) })
	t.Run("dynamic", func(t *testing.T) { f(t, true) })
}

// TestPanicIsolation: a panicking annotated function must not crash the
// process; with fallback off, Evaluate returns a StageError identifying the
// stage, the call, and the batch range, carrying the panic value and stack.
func TestPanicIsolation(t *testing.T) {
	schedulerVariants(t, func(t *testing.T, dynamic bool) {
		s := NewSession(Options{Workers: 2, BatchElems: 16, DynamicScheduling: dynamic})
		n := 64
		a, out := seq(n), make([]float64, n)
		s.Call(panicOnNth(testLog1p, 2, "boom in annotated call"), saUnary("log1p"), n, a, out)

		err := s.EvaluateContext(context.Background())
		if err == nil {
			t.Fatal("want error from panicking call")
		}
		var serr *StageError
		if !errors.As(err, &serr) {
			t.Fatalf("want *StageError, got %T: %v", err, err)
		}
		if serr.Stage != 0 {
			t.Errorf("Stage = %d, want 0", serr.Stage)
		}
		if serr.Call != "log1p" {
			t.Errorf("Call = %q, want log1p", serr.Call)
		}
		if serr.Origin != OriginCall {
			t.Errorf("Origin = %v, want call", serr.Origin)
		}
		if serr.Start < 0 || serr.End <= serr.Start || serr.End > int64(n) {
			t.Errorf("batch range [%d,%d) not a valid range within [0,%d)", serr.Start, serr.End, n)
		}
		if serr.PanicValue != "boom in annotated call" {
			t.Errorf("PanicValue = %v", serr.PanicValue)
		}
		if len(serr.Stack) == 0 {
			t.Error("want non-empty panic stack")
		}
		if !serr.AnnotationFault() {
			t.Error("a panic must count as an annotation fault")
		}
		if got := s.Stats().RecoveredPanics; got < 1 {
			t.Errorf("RecoveredPanics = %d, want >= 1", got)
		}
		msg := serr.Error()
		for _, want := range []string{"mozart: stage 0", "call log1p", "recovered panic", "elements ["} {
			if !strings.Contains(msg, want) {
				t.Errorf("error %q missing %q", msg, want)
			}
		}
	})
}

// TestFallbackWholeCall: with FallbackWholeCall a panicking annotated
// function degrades to whole-call execution and produces output identical
// to the plain library, including undoing partial in-place mutation.
func TestFallbackWholeCall(t *testing.T) {
	schedulerVariants(t, func(t *testing.T, dynamic bool) {
		n := 64
		a, out := seq(n), make([]float64, n)
		// Serial reference: scale in place, then out = a + 1.
		wantA := make([]float64, n)
		wantOut := make([]float64, n)
		for i, x := range seq(n) {
			wantA[i] = 2 * x
			wantOut[i] = 2*x + 1
		}

		s := NewSession(Options{Workers: 2, BatchElems: 8, DynamicScheduling: dynamic, FallbackPolicy: FallbackWholeCall})
		s.Call(fnScale, saScale, a, 2.0)
		// Panic mid-stage, after some batches already scaled a in place.
		s.Call(panicOnNth(fnUnary(func(x float64) float64 { return x + 1 }), 3, "late panic"), saUnary("plus1"), n, a, out)
		if err := s.EvaluateContext(context.Background()); err != nil {
			t.Fatalf("Evaluate with fallback: %v", err)
		}
		if !almostEqual(a, wantA) {
			t.Errorf("a after fallback != serial reference (snapshot/restore must undo partial scaling): a[0]=%v want %v", a[0], wantA[0])
		}
		if !almostEqual(out, wantOut) {
			t.Errorf("out after fallback != serial reference: out[0]=%v want %v", out[0], wantOut[0])
		}
		st := s.Stats()
		if st.FallbackStages != 1 {
			t.Errorf("FallbackStages = %d, want 1", st.FallbackStages)
		}
		if st.RecoveredPanics < 1 {
			t.Errorf("RecoveredPanics = %d, want >= 1", st.RecoveredPanics)
		}
	})
}

// TestFallbackOnSplitError: an error returned by annotator splitting code is
// an annotation fault and triggers fallback.
func TestFallbackOnSplitError(t *testing.T) {
	schedulerVariants(t, func(t *testing.T, dynamic bool) {
		n := 64
		a, out := seq(n), make([]float64, n)
		var calls atomic.Int64
		sp := flakySplitter{calls: &calls, failN: 3, mode: "error"}

		s := NewSession(Options{Workers: 2, BatchElems: 8, DynamicScheduling: dynamic, FallbackPolicy: FallbackWholeCall})
		s.Call(fnUnary(func(x float64) float64 { return x * x }), saFlakyUnary("square", sp), n, a, out)
		if err := s.EvaluateContext(context.Background()); err != nil {
			t.Fatalf("Evaluate with fallback: %v", err)
		}
		for i, x := range seq(n) {
			if out[i] != x*x {
				t.Fatalf("out[%d] = %v, want %v", i, out[i], x*x)
			}
		}
		if got := s.Stats().FallbackStages; got != 1 {
			t.Errorf("FallbackStages = %d, want 1", got)
		}
	})
}

// TestNoFallbackForLibraryError: an error returned by the library function
// is not an annotation fault; the fallback policy must not mask it.
func TestNoFallbackForLibraryError(t *testing.T) {
	schedulerVariants(t, func(t *testing.T, dynamic bool) {
		n := 64
		a, out := seq(n), make([]float64, n)
		s := NewSession(Options{Workers: 2, BatchElems: 8, DynamicScheduling: dynamic, FallbackPolicy: FallbackWholeCall})
		s.Call(errorOnNth(testLog1p, 2, "library says no"), saUnary("log1p"), n, a, out)
		err := s.EvaluateContext(context.Background())
		if err == nil {
			t.Fatal("want library error to propagate despite fallback policy")
		}
		var serr *StageError
		if !errors.As(err, &serr) {
			t.Fatalf("want *StageError, got %T", err)
		}
		if serr.Origin != OriginCall {
			t.Errorf("Origin = %v, want call", serr.Origin)
		}
		if serr.AnnotationFault() {
			t.Error("a library-returned error must not be an annotation fault")
		}
		if got := s.Stats().FallbackStages; got != 0 {
			t.Errorf("FallbackStages = %d, want 0", got)
		}
	})
}

// TestQuarantine: FallbackQuarantine re-executes the faulted stage whole and
// plans the faulty annotation unsplit for the rest of the session, so a
// splitter that always fails faults exactly once.
func TestQuarantine(t *testing.T) {
	n := 64
	a, out := seq(n), make([]float64, n)
	var calls atomic.Int64
	sp := flakySplitter{calls: &calls, failN: 0, mode: "error"} // every Split fails

	s := NewSession(Options{Workers: 2, BatchElems: 8, FallbackPolicy: FallbackQuarantine})
	sa := saFlakyUnary("cursed", sp)
	fn := fnUnary(func(x float64) float64 { return x + 10 })

	s.Call(fn, sa, n, a, out)
	if err := s.EvaluateContext(context.Background()); err != nil {
		t.Fatalf("first Evaluate: %v", err)
	}
	for i, x := range seq(n) {
		if out[i] != x+10 {
			t.Fatalf("out[%d] = %v, want %v", i, out[i], x+10)
		}
	}
	st := s.Stats()
	if st.FallbackStages != 1 {
		t.Fatalf("FallbackStages = %d, want 1", st.FallbackStages)
	}
	if st.QuarantinedCalls != 1 {
		t.Fatalf("QuarantinedCalls = %d, want 1", st.QuarantinedCalls)
	}
	if q := s.Quarantined(); len(q) != 1 || q[0] != "cursed" {
		t.Fatalf("Quarantined() = %v, want [cursed]", q)
	}

	// Second evaluation: the quarantined annotation is planned whole, so its
	// always-failing splitter is never consulted and no new fallback occurs.
	before := calls.Load()
	out2 := make([]float64, n)
	s.Call(fn, sa, n, a, out2)
	if err := s.EvaluateContext(context.Background()); err != nil {
		t.Fatalf("second Evaluate: %v", err)
	}
	if calls.Load() != before {
		t.Errorf("quarantined annotation's splitter was consulted again (%d -> %d calls)", before, calls.Load())
	}
	for i, x := range seq(n) {
		if out2[i] != x+10 {
			t.Fatalf("out2[%d] = %v, want %v", i, out2[i], x+10)
		}
	}
	if got := s.Stats().FallbackStages; got != 1 {
		t.Errorf("FallbackStages after second eval = %d, want still 1", got)
	}
}

// TestCancellationStopsSiblings: after one worker fails, the others observe
// the canceled stage context and stop claiming/processing batches instead of
// grinding through the whole input.
func TestCancellationStopsSiblings(t *testing.T) {
	schedulerVariants(t, func(t *testing.T, dynamic bool) {
		n := 200
		a, out := seq(n), make([]float64, n)
		slowThenFail := func() Func {
			var calls atomic.Int64
			return func(args []any) (any, error) {
				if calls.Add(1) == 2 {
					return nil, errors.New("early failure")
				}
				time.Sleep(2 * time.Millisecond)
				return testLog1p(args)
			}
		}
		s := NewSession(Options{Workers: 4, BatchElems: 1, DynamicScheduling: dynamic})
		s.Call(slowThenFail(), saUnary("slow"), n, a, out)
		err := s.EvaluateContext(context.Background())
		if err == nil {
			t.Fatal("want error")
		}
		var serr *StageError
		if !errors.As(err, &serr) || serr.Origin != OriginCall {
			t.Fatalf("want call-origin StageError, got %v", err)
		}
		if got := s.Stats().Calls; got >= int64(n)/2 {
			t.Errorf("Calls = %d of %d batches: siblings did not stop after cancellation", got, n)
		}
	})
}

// TestStageTimeout: a stage exceeding Options.StageTimeout is canceled at
// the next batch boundary and Evaluate reports a timeout-origin StageError
// wrapping context.DeadlineExceeded.
func TestStageTimeout(t *testing.T) {
	n := 200
	a, out := seq(n), make([]float64, n)
	slow := func(args []any) (any, error) {
		time.Sleep(2 * time.Millisecond)
		return testLog1p(args)
	}
	s := NewSession(Options{Workers: 2, BatchElems: 1, StageTimeout: 20 * time.Millisecond})
	s.Call(slow, saUnary("slow"), n, a, out)
	err := s.EvaluateContext(context.Background())
	if err == nil {
		t.Fatal("want timeout error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("errors.Is(err, DeadlineExceeded) = false: %v", err)
	}
	var serr *StageError
	if !errors.As(err, &serr) {
		t.Fatalf("want *StageError, got %T", err)
	}
	if serr.Origin != OriginTimeout {
		t.Errorf("Origin = %v, want timeout", serr.Origin)
	}
	if serr.AnnotationFault() {
		t.Error("a timeout must not be an annotation fault")
	}
	if got := s.Stats().Calls; got >= int64(n) {
		t.Errorf("Calls = %d, want fewer than %d (timeout should stop workers)", got, n)
	}
}

// TestPreCanceledContext: EvaluateContext with an already-canceled context
// fails fast with a canceled-origin StageError before running any call.
func TestPreCanceledContext(t *testing.T) {
	n := 32
	a, out := seq(n), make([]float64, n)
	s := NewSession(Options{Workers: 2})
	s.Call(testLog1p, saUnary("log1p"), n, a, out)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.EvaluateContext(ctx)
	if err == nil {
		t.Fatal("want error from pre-canceled context")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, Canceled) = false: %v", err)
	}
	var serr *StageError
	if !errors.As(err, &serr) {
		t.Fatalf("want *StageError, got %T", err)
	}
	if serr.Origin != OriginCanceled {
		t.Errorf("Origin = %v, want canceled", serr.Origin)
	}
	if got := s.Stats().Calls; got != 0 {
		t.Errorf("Calls = %d, want 0", got)
	}
}

// TestPoisonedFutures: after a failed evaluation the session is broken;
// bindings the failed round should have produced are poisoned
// (ErrNotEvaluated with the failure as cause), while values materialized by
// earlier successful rounds stay readable.
func TestPoisonedFutures(t *testing.T) {
	n := 32
	a, b := seq(n), seq(n)
	s := NewSession(Options{Workers: 2})

	okFut := s.Call(fnAddNew, saAddNew, a, b)
	if err := s.EvaluateContext(context.Background()); err != nil {
		t.Fatalf("first Evaluate: %v", err)
	}

	badFut := s.Call(func(args []any) (any, error) {
		return nil, errors.New("round two fails")
	}, saAddNew, a, b)
	err := s.EvaluateContext(context.Background())
	if err == nil {
		t.Fatal("want second Evaluate to fail")
	}
	if s.Err() == nil {
		t.Error("Session.Err() should report the sticky failure")
	}

	// The earlier result is still readable.
	if v, gerr := okFut.Float64s(); gerr != nil || len(v) != n {
		t.Errorf("earlier result unreadable after failure: %v, %v", v, gerr)
	}
	// The poisoned binding reports ErrNotEvaluated with the cause attached,
	// never a stale or partial value.
	_, gerr := badFut.Get()
	if gerr == nil {
		t.Fatal("poisoned future returned a value")
	}
	if !errors.Is(gerr, ErrNotEvaluated) {
		t.Errorf("errors.Is(gerr, ErrNotEvaluated) = false: %v", gerr)
	}
	if !strings.Contains(gerr.Error(), "session broken by") {
		t.Errorf("poisoned error %q should carry its cause", gerr)
	}
	var serr *StageError
	if !errors.As(gerr, &serr) {
		t.Errorf("poisoned error should unwrap to the StageError cause: %v", gerr)
	}
	// Further evaluation attempts keep failing with the sticky error.
	if err2 := s.EvaluateContext(context.Background()); err2 == nil {
		t.Error("broken session accepted another Evaluate")
	}
}

// TestMergeZeroPiecesDeferred: merging zero pieces under a deferred (unknown)
// split type cannot resolve a splitter; the error must say so instead of
// silently producing a nil result.
func TestMergeZeroPiecesDeferred(t *testing.T) {
	s := NewSession(Options{Workers: 2})
	fut := s.Call(fnFilterPos, saFilterPos, []float64{})
	_, err := fut.Get()
	if err == nil {
		t.Fatal("want error when merging zero pieces of unknown type")
	}
	if !strings.Contains(err.Error(), "cannot merge zero pieces") {
		t.Errorf("error %q should explain the zero-piece deferred merge", err)
	}
}

// saRetNil pipes a Generic return so a nil piece can flow to a downstream
// call (exercising the pedantic nil-piece check on call arguments).
var saRetNil = &Annotation{
	FuncName: "retNil",
	Params:   []Param{{Name: "a", Type: Generic("S")}},
	Ret:      func() *TypeExpr { t := Generic("S"); return &t }(),
}

// TestPedantic: the §7.1 debugging mode must report exact, descriptive
// errors for mismatched element counts, zero elements, and nil pieces —
// identically under static and dynamic scheduling — and must never be
// masked by the fallback policy.
func TestPedantic(t *testing.T) {
	schedulerVariants(t, func(t *testing.T, dynamic bool) {
		t.Run("mismatched element counts", func(t *testing.T) {
			// size says 32 but b only has 16 elements: ArraySplit infos
			// disagree before any batch runs.
			n := 32
			a, b, out := seq(n), seq(n/2), make([]float64, n)
			s := NewSession(Options{Workers: 2, Pedantic: true, DynamicScheduling: dynamic})
			s.Call(testAdd, saBinary("add"), n, a, b, out)
			err := s.EvaluateContext(context.Background())
			if err == nil {
				t.Fatal("want element-count mismatch error")
			}
			want := fmt.Sprintf("mozart: split inputs disagree on element count: %d vs %d", n, n/2)
			if !strings.Contains(err.Error(), want) {
				t.Errorf("error %q missing %q", err, want)
			}
			var serr *StageError
			if !errors.As(err, &serr) || serr.Origin != OriginInfo {
				t.Errorf("want info-origin StageError, got %v", err)
			}
		})

		t.Run("zero elements", func(t *testing.T) {
			s := NewSession(Options{Workers: 2, Pedantic: true, DynamicScheduling: dynamic})
			s.Call(testLog1p, saUnary("log1p"), 0, []float64{}, []float64{})
			err := s.EvaluateContext(context.Background())
			if err == nil {
				t.Fatal("want zero-elements error in pedantic mode")
			}
			if !strings.Contains(err.Error(), "pedantic: stage received zero elements") {
				t.Errorf("error %q missing zero-elements text", err)
			}
			var serr *StageError
			if !errors.As(err, &serr) || serr.Origin != OriginPedantic {
				t.Errorf("want pedantic-origin StageError, got %v", err)
			}
		})

		t.Run("nil piece from splitter", func(t *testing.T) {
			nilSplit := nilPieceSplitter{}
			sa := &Annotation{
				FuncName: "nilsplit",
				Params: []Param{
					{Name: "size", Type: sizeSplitOf(0)},
					{Name: "a", Type: Concrete("NilSplit", nilSplit, func(args []any) (SplitType, error) {
						return NewSplitType("NilSplit", int64(args[0].(int))), nil
					})},
				},
			}
			s := NewSession(Options{Workers: 2, Pedantic: true, DynamicScheduling: dynamic})
			s.Call(func(args []any) (any, error) { return nil, nil }, sa, 16, seq(16))
			err := s.EvaluateContext(context.Background())
			if err == nil {
				t.Fatal("want nil-piece error in pedantic mode")
			}
			if !strings.Contains(err.Error(), "pedantic: splitter for NilSplit<16> produced nil piece") {
				t.Errorf("error %q missing nil-piece text", err)
			}
		})

		t.Run("nil piece into downstream call", func(t *testing.T) {
			n := 16
			a := seq(n)
			s := NewSession(Options{Workers: 2, Pedantic: true, DynamicScheduling: dynamic})
			mid := s.Call(func(args []any) (any, error) { return nil, nil }, saRetNil, a)
			s.Call(fnAddNew, saAddNew, mid, a).Keep()
			err := s.EvaluateContext(context.Background())
			if err == nil {
				t.Fatal("want nil-piece error for downstream call argument")
			}
			if !strings.Contains(err.Error(), "pedantic: addNew received nil piece for a") {
				t.Errorf("error %q missing downstream nil-piece text", err)
			}
		})

		t.Run("pedantic errors never fall back", func(t *testing.T) {
			s := NewSession(Options{Workers: 2, Pedantic: true, DynamicScheduling: dynamic, FallbackPolicy: FallbackWholeCall})
			s.Call(testLog1p, saUnary("log1p"), 0, []float64{}, []float64{})
			if err := s.EvaluateContext(context.Background()); err == nil {
				t.Fatal("fallback policy masked a pedantic error")
			}
			if got := s.Stats().FallbackStages; got != 0 {
				t.Errorf("FallbackStages = %d, want 0", got)
			}
		})
	})
}

// nilPieceSplitter reports elements but yields nil pieces.
type nilPieceSplitter struct{}

func (nilPieceSplitter) Info(v any, t SplitType) (RuntimeInfo, error) {
	return RuntimeInfo{Elems: int64(len(v.([]float64))), ElemBytes: 8}, nil
}
func (nilPieceSplitter) Split(v any, t SplitType, start, end int64) (any, error) {
	return nil, nil
}
func (nilPieceSplitter) Merge(pieces []any, t SplitType) (any, error) { return nil, nil }

// saWholePanic is an annotation with no splittable params: the call always
// runs whole, so a panic there is isolated but not eligible for fallback
// (there is no alternative execution strategy left).
var saWholePanic = &Annotation{
	FuncName: "wholePanic",
	Params:   []Param{{Name: "a", Type: Missing()}},
}

func TestWholeCallPanicIsolatedNoFallback(t *testing.T) {
	s := NewSession(Options{Workers: 2, FallbackPolicy: FallbackWholeCall})
	s.Call(func(args []any) (any, error) { panic("whole-call panic") }, saWholePanic, seq(8))
	err := s.EvaluateContext(context.Background())
	if err == nil {
		t.Fatal("want error from whole-call panic")
	}
	var serr *StageError
	if !errors.As(err, &serr) {
		t.Fatalf("want *StageError, got %T: %v", err, err)
	}
	if serr.PanicValue != "whole-call panic" {
		t.Errorf("PanicValue = %v", serr.PanicValue)
	}
	st := s.Stats()
	if st.RecoveredPanics != 1 {
		t.Errorf("RecoveredPanics = %d, want 1", st.RecoveredPanics)
	}
	if st.FallbackStages != 0 {
		t.Errorf("FallbackStages = %d, want 0 (whole calls have no fallback)", st.FallbackStages)
	}
}

// TestFallbackPanicInSplitter: a panicking splitter (not just an erroring
// one) also degrades cleanly.
func TestFallbackPanicInSplitter(t *testing.T) {
	n := 64
	a, out := seq(n), make([]float64, n)
	var calls atomic.Int64
	sp := flakySplitter{calls: &calls, failN: 2, mode: "panic"}
	s := NewSession(Options{Workers: 2, BatchElems: 8, FallbackPolicy: FallbackWholeCall})
	s.Call(fnUnary(func(x float64) float64 { return x - 1 }), saFlakyUnary("minus1", sp), n, a, out)
	if err := s.EvaluateContext(context.Background()); err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	for i, x := range seq(n) {
		if out[i] != x-1 {
			t.Fatalf("out[%d] = %v, want %v", i, out[i], x-1)
		}
	}
	st := s.Stats()
	if st.FallbackStages != 1 || st.RecoveredPanics < 1 {
		t.Errorf("stats = %+v, want 1 fallback and >=1 recovered panic", st)
	}
}

// TestFutureGetContext: Future.GetContext threads its context into the
// forced evaluation.
func TestFutureGetContext(t *testing.T) {
	n := 32
	a, b := seq(n), seq(n)
	s := NewSession(Options{Workers: 2})
	fut := s.Call(fnAddNew, saAddNew, a, b)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := fut.GetContext(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("GetContext(canceled) = %v, want context.Canceled in chain", err)
	}
}

// ---- resilience: batch retry, circuit breakers, admission control --------

// transientSplitter delegates to arraySplitter but fails Split with an
// ErrTransient-wrapped error on invocations from..to (1-based, inclusive);
// to < 0 means every invocation from `from` on.
type transientSplitter struct {
	calls    *atomic.Int64
	from, to int64
}

func (transientSplitter) InPlace() bool { return true }

func (ts transientSplitter) Info(v any, t SplitType) (RuntimeInfo, error) {
	return arraySplitter{}.Info(v, t)
}

func (ts transientSplitter) Split(v any, t SplitType, start, end int64) (any, error) {
	if n := ts.calls.Add(1); n >= ts.from && (ts.to < 0 || n <= ts.to) {
		return nil, fmt.Errorf("transient split outage: %w", ErrTransient)
	}
	return arraySplitter{}.Split(v, t, start, end)
}

func (ts transientSplitter) Merge(pieces []any, t SplitType) (any, error) {
	return arraySplitter{}.Merge(pieces, t)
}

// accumulateOnce is out[i] += a[i], the in-place call whose replay is only
// correct when the runtime restores the batch's pieces first: replaying
// without the snapshot double-adds.
func accumulateOnce(failOnCall int64, calls *atomic.Int64) Func {
	return func(args []any) (any, error) {
		a, out := args[1].([]float64), args[2].([]float64)
		for i := range a {
			out[i] += a[i]
		}
		if failOnCall > 0 && calls.Add(1) == failOnCall {
			return nil, fmt.Errorf("injected blip: %w", ErrTransient)
		}
		return nil, nil
	}
}

// noSleep makes retry backoff a no-op so tests do not wait.
func noSleep(time.Duration) {}

// TestRetryTransientCallReplaysBatch: a library call that mutates in place
// and then fails transiently on call K must, under RetryPolicy{MaxAttempts:
// 3}, produce results identical to the fault-free run — the failed batch's
// pieces are restored from the pre-attempt snapshot before the replay, so
// the accumulate applies exactly once. With retries disabled the same run
// fails.
func TestRetryTransientCallReplaysBatch(t *testing.T) {
	schedulerVariants(t, func(t *testing.T, dynamic bool) {
		const n = 64
		const failOn = 3

		run := func(retry RetryPolicy) ([]float64, StatsSnapshot, error) {
			var calls atomic.Int64
			a, out := seq(n), make([]float64, n)
			s := NewSession(Options{Workers: 2, BatchElems: 8,
				DynamicScheduling: dynamic, RetryPolicy: retry})
			s.Call(accumulateOnce(failOn, &calls), saUnary("acc"), n, a, out)
			err := s.EvaluateContext(context.Background())
			return out, s.Stats(), err
		}

		want, _, err := run(RetryPolicy{}) // fault-free reference shape
		_ = want
		if err == nil {
			t.Fatal("retries disabled: want the transient fault to fail Evaluate")
		}
		var serr *StageError
		if !errors.As(err, &serr) || serr.Origin != OriginCall {
			t.Fatalf("want call-origin StageError, got %v", err)
		}
		if !errors.Is(err, ErrTransient) {
			t.Errorf("the StageError should wrap ErrTransient, got %v", err)
		}

		out, st, err := run(RetryPolicy{MaxAttempts: 3, Sleep: noSleep})
		if err != nil {
			t.Fatalf("with retry: %v", err)
		}
		for i := range out {
			want := float64(i%17) + 0.5 // fault-free accumulate over zeros = seq
			if out[i] != want {
				t.Fatalf("out[%d] = %v, want %v (replay was not idempotent)", i, out[i], want)
			}
		}
		if st.RetriedBatches != 1 {
			t.Errorf("RetriedBatches = %d, want 1", st.RetriedBatches)
		}
		if st.RetryBackoffNS <= 0 {
			t.Errorf("RetryBackoffNS = %d, want > 0", st.RetryBackoffNS)
		}
		if st.FallbackStages != 0 {
			t.Errorf("FallbackStages = %d, want 0 (retry handled it)", st.FallbackStages)
		}
	})
}

// TestRetryExhaustedEscalatesToFallback: a splitter whose Split fails
// transiently on every invocation exhausts the retry budget, and the final
// split-origin StageError escalates to the PR 1 fallback path: the stage
// re-executes whole and the result is still correct.
func TestRetryExhaustedEscalatesToFallback(t *testing.T) {
	schedulerVariants(t, func(t *testing.T, dynamic bool) {
		const n = 48
		var splits atomic.Int64
		sp := transientSplitter{calls: &splits, from: 1, to: -1}
		arr := func() TypeExpr {
			return Concrete("ArraySplit", sp, func(args []any) (SplitType, error) {
				return NewSplitType("ArraySplit", int64(args[0].(int))), nil
			})
		}
		sa := &Annotation{FuncName: "plus1new", Params: []Param{
			{Name: "size", Type: sizeSplitOf(0)},
			{Name: "a", Type: arr()},
		}, Ret: func() *TypeExpr { t := arr(); return &t }()}
		fn := func(args []any) (any, error) {
			a := args[1].([]float64)
			out := make([]float64, len(a))
			for i := range a {
				out[i] = a[i] + 1
			}
			return out, nil
		}

		a := seq(n)
		s := NewSession(Options{Workers: 2, BatchElems: 8,
			DynamicScheduling: dynamic,
			FallbackPolicy:    FallbackWholeCall,
			RetryPolicy:       RetryPolicy{MaxAttempts: 2, Sleep: noSleep}})
		f := s.Call(fn, sa, n, a)
		if err := s.EvaluateContext(context.Background()); err != nil {
			t.Fatalf("fallback should absorb the exhausted retries: %v", err)
		}
		v, err := f.Get()
		if err != nil {
			t.Fatal(err)
		}
		out := v.([]float64)
		for i := range out {
			want := float64(i%17) + 1.5 // seq + 1
			if out[i] != want {
				t.Fatalf("out[%d] = %v, want %v", i, out[i], want)
			}
		}
		st := s.Stats()
		if st.RetriedBatches < 1 {
			t.Errorf("RetriedBatches = %d, want >= 1", st.RetriedBatches)
		}
		if st.FallbackStages != 1 {
			t.Errorf("FallbackStages = %d, want 1", st.FallbackStages)
		}
	})
}

// TestRetryPermanentErrorNotRetried: an error the classifier rejects fails
// on the first attempt; no batch is replayed.
func TestRetryPermanentErrorNotRetried(t *testing.T) {
	const n = 32
	a, out := seq(n), make([]float64, n)
	s := NewSession(Options{Workers: 1, BatchElems: 8,
		RetryPolicy: RetryPolicy{MaxAttempts: 5, Sleep: noSleep}})
	s.Call(errorOnNth(testLog1p, 2, "permanent library error"), saUnary("log1p"), n, a, out)
	if err := s.EvaluateContext(context.Background()); err == nil {
		t.Fatal("want the permanent error to fail Evaluate")
	}
	if got := s.Stats().RetriedBatches; got != 0 {
		t.Errorf("RetriedBatches = %d, want 0", got)
	}
}

// switchableSplitter delegates to arraySplitter but fails Split whenever
// broken is set, counting invocations so tests can observe whether the
// planner consulted the splitter at all.
type switchableSplitter struct {
	broken *atomic.Bool
	splits *atomic.Int64
}

func (switchableSplitter) InPlace() bool { return true }

func (ss switchableSplitter) Info(v any, t SplitType) (RuntimeInfo, error) {
	return arraySplitter{}.Info(v, t)
}

func (ss switchableSplitter) Split(v any, t SplitType, start, end int64) (any, error) {
	ss.splits.Add(1)
	if ss.broken.Load() {
		return nil, errors.New("splitter outage")
	}
	return arraySplitter{}.Split(v, t, start, end)
}

func (ss switchableSplitter) Merge(pieces []any, t SplitType) (any, error) {
	return arraySplitter{}.Merge(pieces, t)
}

// TestBreakerHalfOpenRecovery: under FallbackQuarantine with a cooldown, a
// tripped annotation plans whole until the cooldown elapses, then a
// half-open probe re-tries splitting; a successful probe closes the breaker
// and restores split execution.
func TestBreakerHalfOpenRecovery(t *testing.T) {
	const n = 32
	var broken atomic.Bool
	var splits atomic.Int64
	sp := switchableSplitter{broken: &broken, splits: &splits}

	now := time.Unix(0, 0)
	s := NewSession(Options{Workers: 2, BatchElems: 8,
		FallbackPolicy: FallbackQuarantine,
		Breaker: BreakerPolicy{Threshold: 1, Cooldown: time.Minute,
			Now: func() time.Time { return now }}})

	eval := func() {
		t.Helper()
		a, out := seq(n), make([]float64, n)
		s.Call(testLog1p, saFlakyUnary("flaky", sp), n, a, out)
		if err := s.EvaluateContext(context.Background()); err != nil {
			t.Fatalf("evaluate: %v", err)
		}
		for i := range out {
			if out[i] != math.Log1p(a[i]) {
				t.Fatalf("out[%d] wrong after degraded execution", i)
			}
		}
	}

	// 1. Faulty splitter: fallback runs the stage whole and trips the
	// breaker.
	broken.Store(true)
	eval()
	st := s.Stats()
	if got := s.Quarantined(); len(got) != 1 || got[0] != "flaky" {
		t.Fatalf("Quarantined() = %v, want [flaky]", got)
	}
	if st.BreakerTrips != 1 || st.QuarantinedCalls != 1 || st.FallbackStages != 1 {
		t.Fatalf("trips=%d quarantined=%d fallbacks=%d, want 1/1/1",
			st.BreakerTrips, st.QuarantinedCalls, st.FallbackStages)
	}

	// 2. Before the cooldown the annotation plans whole: the splitter is
	// not consulted even though it has healed.
	broken.Store(false)
	preSplits := splits.Load()
	now = now.Add(30 * time.Second)
	eval()
	if splits.Load() != preSplits {
		t.Fatalf("splitter consulted while the breaker is open")
	}

	// 3. After the cooldown the next plan is a half-open probe: the
	// annotation splits again, succeeds, and the breaker closes.
	now = now.Add(time.Minute)
	eval()
	if splits.Load() == preSplits {
		t.Fatal("cooldown elapsed but the probe did not re-try splitting")
	}
	st = s.Stats()
	if len(s.Quarantined()) != 0 {
		t.Fatalf("Quarantined() = %v, want empty after recovery", s.Quarantined())
	}
	if st.BreakerRecoveries != 1 || st.QuarantinedCalls != 0 {
		t.Fatalf("recoveries=%d quarantined=%d, want 1/0", st.BreakerRecoveries, st.QuarantinedCalls)
	}

	// 4. Still closed: split execution is back for good.
	preSplits = splits.Load()
	eval()
	if splits.Load() == preSplits {
		t.Fatal("breaker should stay closed after a successful probe")
	}
	if got := s.Stats().BreakerTrips; got != 1 {
		t.Errorf("BreakerTrips = %d, want 1", got)
	}
}

// TestBreakerFailedProbeReopens: a half-open probe that faults again
// re-opens the breaker and restarts the cooldown; the annotation stays
// quarantined and the gauge does not double-count.
func TestBreakerFailedProbeReopens(t *testing.T) {
	const n = 32
	var broken atomic.Bool
	var splits atomic.Int64
	sp := switchableSplitter{broken: &broken, splits: &splits}

	now := time.Unix(0, 0)
	s := NewSession(Options{Workers: 2, BatchElems: 8,
		FallbackPolicy: FallbackQuarantine,
		Breaker: BreakerPolicy{Threshold: 1, Cooldown: time.Minute,
			Now: func() time.Time { return now }}})

	eval := func() {
		t.Helper()
		a, out := seq(n), make([]float64, n)
		s.Call(testLog1p, saFlakyUnary("flaky", sp), n, a, out)
		if err := s.EvaluateContext(context.Background()); err != nil {
			t.Fatalf("evaluate: %v", err)
		}
	}

	broken.Store(true)
	eval() // trips
	now = now.Add(2 * time.Minute)
	eval() // half-open probe fails, re-opens
	st := s.Stats()
	if st.BreakerTrips != 2 {
		t.Errorf("BreakerTrips = %d, want 2 (initial trip + failed probe)", st.BreakerTrips)
	}
	if st.QuarantinedCalls != 1 {
		t.Errorf("QuarantinedCalls = %d, want 1 (no double count)", st.QuarantinedCalls)
	}
	if got := s.Quarantined(); len(got) != 1 {
		t.Fatalf("Quarantined() = %v, want [flaky]", got)
	}

	// The re-opened breaker plans whole again until the next cooldown.
	preSplits := splits.Load()
	now = now.Add(30 * time.Second)
	eval()
	if splits.Load() != preSplits {
		t.Fatal("failed probe should restart the cooldown")
	}

	// Healed + cooled down: the next probe closes it.
	broken.Store(false)
	now = now.Add(2 * time.Minute)
	eval()
	if len(s.Quarantined()) != 0 {
		t.Fatalf("Quarantined() = %v, want empty", s.Quarantined())
	}
}

// TestGovernorAdmitBlocks: admissions over the remaining budget block until
// a release frees capacity; canceled waiters abandon; oversized requests
// are clamped to the whole budget instead of deadlocking.
func TestGovernorAdmitBlocks(t *testing.T) {
	g := NewGovernor(100)
	ctx := context.Background()
	if _, err := g.admit(ctx, 60); err != nil {
		t.Fatal(err)
	}
	admitted := make(chan struct{})
	go func() {
		if _, err := g.admit(ctx, 70); err != nil {
			t.Errorf("blocked admit: %v", err)
		}
		close(admitted)
	}()
	select {
	case <-admitted:
		t.Fatal("admit(70) should block while 60/100 is in use")
	case <-time.After(20 * time.Millisecond):
	}
	g.release(60)
	select {
	case <-admitted:
	case <-time.After(2 * time.Second):
		t.Fatal("admit(70) did not unblock after release")
	}
	if got := g.InUse(); got != 70 {
		t.Errorf("InUse = %d, want 70", got)
	}
	if hw := g.HighWater(); hw > g.Budget() {
		t.Errorf("HighWater %d exceeds budget %d", hw, g.Budget())
	}
	if g.Waits() < 1 {
		t.Errorf("Waits = %d, want >= 1", g.Waits())
	}

	// Oversized request: clamped to the budget, admitted once alone.
	g.release(70)
	if _, err := g.admit(ctx, 1000); err != nil {
		t.Fatal(err)
	}
	if got := g.InUse(); got != 100 {
		t.Errorf("oversized request reserved %d, want the full budget 100", got)
	}
	g.release(100)

	// A canceled waiter returns the context error.
	if _, err := g.admit(ctx, 100); err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(ctx)
	errc := make(chan error, 1)
	go func() { _, err := g.admit(cctx, 1); errc <- err }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("canceled admit returned %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled admit never returned")
	}
	g.release(100)
}

// TestGovernorSharedBudgetTwoSessions: two sessions evaluating concurrently
// under one Governor never model more bytes in flight than the budget. The
// probe tracks actual live batch bytes inside the library calls: at no
// instant may the concurrently-processed footprint exceed the budget.
func TestGovernorSharedBudgetTwoSessions(t *testing.T) {
	const n = 1 << 10
	const budget = int64(4096)
	// Footprint model for saUnary: size (0 bytes) + a (8) + out (8).
	const elemBytes = 16

	g := NewGovernor(budget)
	var live, liveHW atomic.Int64

	probed := func(args []any) (any, error) {
		a, out := args[1].([]float64), args[2].([]float64)
		cur := live.Add(int64(len(a)) * elemBytes)
		for {
			hw := liveHW.Load()
			if cur <= hw || liveHW.CompareAndSwap(hw, cur) {
				break
			}
		}
		for i := range a {
			out[i] += a[i]
		}
		live.Add(int64(-len(a)) * elemBytes)
		return nil, nil
	}

	run := func(dynamic bool) ([]float64, error) {
		a, out := seq(n), make([]float64, n)
		s := NewSession(Options{Workers: 2, Governor: g, DynamicScheduling: dynamic})
		for round := 0; round < 2; round++ {
			s.Call(probed, saUnary("acc"), n, a, out)
			if err := s.EvaluateContext(context.Background()); err != nil {
				return nil, err
			}
		}
		return out, nil
	}

	type result struct {
		out []float64
		err error
	}
	results := make(chan result, 2)
	go func() { out, err := run(false); results <- result{out, err} }()
	go func() { out, err := run(true); results <- result{out, err} }()
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		for j := range r.out {
			want := 2 * (float64(j%17) + 0.5) // two accumulate rounds over seq
			if r.out[j] != want {
				t.Fatalf("out[%d] = %v, want %v", j, r.out[j], want)
			}
		}
	}
	if hw := g.HighWater(); hw > budget {
		t.Errorf("governor high-water %d exceeds budget %d", hw, budget)
	}
	if hw := liveHW.Load(); hw > budget {
		t.Errorf("live batch bytes high-water %d exceeds budget %d", hw, budget)
	}
	if g.InUse() != 0 {
		t.Errorf("InUse = %d after all stages released, want 0", g.InUse())
	}
	if g.HighWater() == 0 {
		t.Error("governor never admitted anything")
	}
}

// TestStatsReadDuringEvaluation: Stats.String and Stats.Total must be safe
// to call while workers are mutating the counters (they read via atomic
// loads). Run under -race this test fails on the pre-fix direct reads.
func TestStatsReadDuringEvaluation(t *testing.T) {
	const n = 1 << 14
	a, out := seq(n), make([]float64, n)
	s := NewSession(Options{Workers: 4, BatchElems: 64})
	s.Call(testLog1p, saUnary("log1p"), n, a, out)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			_ = s.stats.String()
			_ = s.stats.Total()
		}
	}()
	if err := s.EvaluateContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	<-done
}
