package core

import (
	"fmt"
	"reflect"
	"sync"
)

// RuntimeInfo is filled in by a splitter's Info function (§5.2 Step 1). It
// tells the runtime how many split units ("elements") a value contains and
// how many bytes each occupies, which drives batch-size selection.
type RuntimeInfo struct {
	// Elems is the total number of split units the value will produce
	// (array elements, matrix rows, DataFrame rows, image rows, ...).
	Elems int64
	// ElemBytes is the size in bytes of one split unit.
	ElemBytes int64
}

// Splitter is the splitting API annotators implement per split type (§3.3,
// Table 1). A Splitter bridges the SplitType abstraction with code that
// actually partitions and reassembles a concrete data type.
type Splitter interface {
	// Info relays runtime sizing information for value v, which has split
	// type t, to the runtime.
	Info(v any, t SplitType) (RuntimeInfo, error)
	// Split returns the piece of v covering element range [start, end).
	// Pieces may alias v's storage (zero-copy) or be copies; aliasing
	// splitters should also implement InPlacer.
	Split(v any, t SplitType, start, end int64) (any, error)
	// Merge coalesces pieces into a single value. Merge must be
	// associative (§3.4). For reduction split types this is where partial
	// results are combined.
	Merge(pieces []any, t SplitType) (any, error)
}

// InPlacer is an optional interface for splitters whose pieces alias the
// original value's storage (e.g. sub-slices). For such splitters, mutations
// to pieces are already visible in the original value and the runtime skips
// collecting and merging mutated pieces.
type InPlacer interface {
	InPlace() bool
}

// SplitterAt is the chunked-split extension of Splitter for out-of-core
// streaming (the Governor's OutOfCore pressure level). SplitAt returns a
// window view of v covering element range [start, end): a value of the same
// logical kind as v that the runtime can Split/Info like any full input,
// but whose materialized footprint is bounded by the window — either an
// alias of v's storage or, for generator-backed inputs, a sub-generator
// that synthesizes only its own window. When every split input of a stage
// implements SplitterAt, the streaming executor drives the stage one
// window at a time, so only the in-flight window's pieces ever exist.
type SplitterAt interface {
	Splitter
	SplitAt(v any, t SplitType, start, end int64) (any, error)
}

// PieceCodec is the optional spill extension of Splitter. When a stage
// output's merge order is not foldable in bounded memory — or the runtime
// prefers to keep merge-side partials off the heap — the streaming
// executor encodes each window's merged partial into a byte frame, spills
// it to the CRC-checked temp-file store (internal/spill), and decodes the
// frames back in order at stage finale. Encode/Decode must round-trip:
// Decode(Encode(p)) merges equal to p.
type PieceCodec interface {
	EncodePiece(piece any, t SplitType) ([]byte, error)
	DecodePiece(frame []byte, t SplitType) (any, error)
}

// Ctor is a split type constructor (§3.2, "Split Type Constructors"): it
// maps the values of a call's arguments to the split type's parameters.
// args holds the captured argument values in positional order; entries for
// lazy values that have not been computed yet are nil. Constructors must not
// modify their arguments.
type Ctor func(args []any) (SplitType, error)

// FixedCtor returns a constructor that ignores the arguments and always
// yields the given split type.
func FixedCtor(t SplitType) Ctor {
	return func([]any) (SplitType, error) { return t, nil }
}

// defaultSplit describes the fallback split behaviour for one concrete data
// type, used when type inference cannot pin down a generic (§5.1: "Mozart
// falls back to a default for the data type: annotators provide a default
// split type constructor per data type").
type defaultSplit struct {
	splitter Splitter
	ctor     func(v any) (SplitType, error)
}

var (
	defaultsMu sync.RWMutex
	defaults   = map[reflect.Type]defaultSplit{}
)

// RegisterDefaultSplit registers the default splitter and split type
// constructor for values of the same dynamic type as sample. The constructor
// receives the value itself (not the full argument list).
func RegisterDefaultSplit(sample any, s Splitter, ctor func(v any) (SplitType, error)) {
	defaultsMu.Lock()
	defer defaultsMu.Unlock()
	defaults[reflect.TypeOf(sample)] = defaultSplit{splitter: s, ctor: ctor}
}

// lookupDefaultSplit finds the registered default for v's dynamic type.
func lookupDefaultSplit(v any) (defaultSplit, bool) {
	if v == nil {
		return defaultSplit{}, false
	}
	defaultsMu.RLock()
	defer defaultsMu.RUnlock()
	d, ok := defaults[reflect.TypeOf(v)]
	return d, ok
}

// CheckSameElems verifies that all infos agree on the element count, the
// §3.4 requirement that all split functions produce the same number of
// splits for a given function.
func CheckSameElems(infos []RuntimeInfo) (int64, error) {
	if len(infos) == 0 {
		return 0, nil
	}
	n := infos[0].Elems
	for _, in := range infos[1:] {
		if in.Elems != n {
			return 0, fmt.Errorf("mozart: split inputs disagree on element count: %d vs %d", n, in.Elems)
		}
	}
	return n, nil
}
