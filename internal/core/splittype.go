package core

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// SplitType is a parameterized type N<V0...Vn> describing how a value is
// split (§3.2). Two split types are equal iff their names and parameter
// values are equal. The runtime guarantees that the number-of-pieces
// parameter mentioned in the paper is uniform across a stage, so it is not
// represented here.
//
// The special "unknown" split type is modeled with a non-zero unique id:
// each unknown is equal only to itself.
type SplitType struct {
	Name      string
	Params    []int64
	unknownID uint64
}

var unknownCounter atomic.Uint64

// NewSplitType returns a concrete split type with the given name and
// parameter values.
func NewSplitType(name string, params ...int64) SplitType {
	return SplitType{Name: name, Params: params}
}

// NewUnknownType returns a fresh unknown split type, equal only to itself
// (§3.2, "Unknown Split Type").
func NewUnknownType() SplitType {
	return SplitType{Name: "unknown", unknownID: unknownCounter.Add(1)}
}

// IsUnknown reports whether t is an unknown split type.
func (t SplitType) IsUnknown() bool { return t.unknownID != 0 }

// IsZero reports whether t is the zero SplitType (no type assigned).
func (t SplitType) IsZero() bool {
	return t.Name == "" && t.Params == nil && t.unknownID == 0
}

// Equal reports whether two split types are equal: same name, same
// parameters, and for unknown types, the same unique identity.
func (t SplitType) Equal(o SplitType) bool {
	if t.unknownID != 0 || o.unknownID != 0 {
		return t.unknownID == o.unknownID
	}
	if t.Name != o.Name || len(t.Params) != len(o.Params) {
		return false
	}
	for i := range t.Params {
		if t.Params[i] != o.Params[i] {
			return false
		}
	}
	return true
}

// String renders the split type as Name<p0, p1, ...>.
func (t SplitType) String() string {
	if t.IsZero() {
		return "<none>"
	}
	if t.unknownID != 0 {
		return fmt.Sprintf("unknown#%d", t.unknownID)
	}
	if len(t.Params) == 0 {
		return t.Name
	}
	parts := make([]string, len(t.Params))
	for i, p := range t.Params {
		parts[i] = fmt.Sprint(p)
	}
	return t.Name + "<" + strings.Join(parts, ", ") + ">"
}
