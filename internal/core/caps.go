package core

import "strings"

// SplitterCaps is the unified capability bitset for the optional splitter
// extensions. The Splitter surface grew one optional interface per PR
// (InPlacer, SplitterAt, PieceCodec, now ViewSplitter); SplitterCaps folds
// their discovery into a single probe so the executor, planner, streaming
// path, and checksuite consult one lattice instead of scattering type
// assertions. The bits are independent — a splitter may hold any subset —
// but in practice CapView implies CapInPlace (a view's pieces alias the
// source by definition).
type SplitterCaps uint32

const (
	// CapInPlace: pieces alias the source's storage, so mutations to pieces
	// are already visible in the original value and the runtime skips
	// collecting and merging mutated pieces (InPlacer).
	CapInPlace SplitterCaps = 1 << iota
	// CapView: the splitter can produce pieces into caller-provided reuse
	// slots without allocating (ViewSplitter.SplitView), making the
	// split→call hot loop allocation-free in steady state.
	CapView
	// CapWindow: the splitter can produce bounded window views for
	// out-of-core streaming (SplitterAt.SplitAt).
	CapWindow
	// CapCodec: the splitter can encode/decode pieces to byte frames for
	// spilling (PieceCodec).
	CapCodec
)

// Has reports whether every bit in want is set.
func (c SplitterCaps) Has(want SplitterCaps) bool { return c&want == want }

// String renders the set bits as "inplace|view|window|codec" (empty string
// for the zero set). The rendering is stable; Explain output embeds it.
func (c SplitterCaps) String() string {
	if c == 0 {
		return ""
	}
	var parts []string
	if c.Has(CapInPlace) {
		parts = append(parts, "inplace")
	}
	if c.Has(CapView) {
		parts = append(parts, "view")
	}
	if c.Has(CapWindow) {
		parts = append(parts, "window")
	}
	if c.Has(CapCodec) {
		parts = append(parts, "codec")
	}
	return strings.Join(parts, "|")
}

// ViewSplitter is the zero-copy split capability (CapView). SplitView is
// Split with an explicit reuse slot: when reuse already is the requested
// piece — same source storage, same [start, end) range — the splitter
// returns reuse itself unchanged, so the boxed interface value is recycled
// and the steady-state hot loop performs zero allocations. Otherwise the
// splitter either rewrites reuse's fields in place (pointer-shaped pieces
// such as *imagelib.Image or *vmath.Matrix) or builds a fresh view of v's
// storage (slice-shaped pieces). Pieces returned by SplitView MUST alias
// v's storage; the checksuite verifies this by pointer identity.
type ViewSplitter interface {
	Splitter
	SplitView(v any, t SplitType, start, end int64, reuse any) (any, error)
}

// CapsDeclarer lets a splitter declare its capability set explicitly,
// overriding interface-based derivation. Wrappers (e.g. faultinject's
// splitter shim) must satisfy every optional interface statically to be
// able to delegate, which would make plain interface assertions report
// capabilities the wrapped splitter lacks; declaring caps restores the
// truth. A declarer's set must be consistent with the methods that are
// actually callable — the runtime trusts the declaration.
type CapsDeclarer interface {
	SplitterCaps() SplitterCaps
}

// CapabilitiesOf probes a splitter's capability set. Splitters that
// implement CapsDeclarer are taken at their word; for everyone else the
// set derives from the optional interfaces (InPlacer, ViewSplitter,
// SplitterAt, PieceCodec). This is the single discovery point: runtime
// code gates on the returned bits and only then asserts the concrete
// interface to invoke it.
func CapabilitiesOf(s Splitter) SplitterCaps {
	if s == nil {
		return 0
	}
	if d, ok := s.(CapsDeclarer); ok {
		return d.SplitterCaps()
	}
	var c SplitterCaps
	if ip, ok := s.(InPlacer); ok && ip.InPlace() {
		c |= CapInPlace
	}
	if _, ok := s.(ViewSplitter); ok {
		c |= CapView
	}
	if _, ok := s.(SplitterAt); ok {
		c |= CapWindow
	}
	if _, ok := s.(PieceCodec); ok {
		c |= CapCodec
	}
	return c
}
