package obs_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	"mozart/internal/core"
	"mozart/internal/faultinject"
	"mozart/internal/obs"
)

// chunkSplitter is a minimal []float64 splitter for driving real sessions.
type chunkSplitter struct{}

func (chunkSplitter) InPlace() bool { return false }

func (chunkSplitter) Info(v any, t core.SplitType) (core.RuntimeInfo, error) {
	return core.RuntimeInfo{Elems: int64(len(v.([]float64))), ElemBytes: 8}, nil
}

func (chunkSplitter) Split(v any, t core.SplitType, start, end int64) (any, error) {
	return v.([]float64)[start:end], nil
}

func (chunkSplitter) Merge(pieces []any, t core.SplitType) (any, error) {
	var out []float64
	for _, p := range pieces {
		out = append(out, p.([]float64)...)
	}
	return out, nil
}

func doubleFn(args []any) (any, error) {
	in := args[0].([]float64)
	out := make([]float64, len(in))
	for i, x := range in {
		out[i] = 2 * x
	}
	return out, nil
}

// chunkAnnotation builds a unary []float64 -> []float64 annotation around
// the given splitter.
func chunkAnnotation(name string, sp core.Splitter) *core.Annotation {
	sexpr := core.Concrete("Chunk", sp, func(args []any) (core.SplitType, error) {
		return core.NewSplitType("Chunk", int64(len(args[0].([]float64)))), nil
	})
	ret := sexpr
	return &core.Annotation{FuncName: name, Params: []core.Param{{Name: "a", Type: sexpr}}, Ret: &ret}
}

// evalOnce runs one real evaluation of a 64-element doubling call through
// the given handle (as tracer + plan callback), with fn/sp optionally
// fault-wrapped.
func evalOnce(t *testing.T, h *obs.FlightHandle, fn core.Func, sp core.Splitter, name string) error {
	t.Helper()
	data := make([]float64, 64)
	for i := range data {
		data[i] = float64(i)
	}
	s := core.NewSession(core.Options{Workers: 2, BatchElems: 8,
		Tracer: h, OnPlan: h.OnPlan})
	v := s.Call(fn, chunkAnnotation(name, sp), data)
	if err := s.EvaluateContext(context.Background()); err != nil {
		return err
	}
	got, err := v.Get()
	if err != nil {
		return err
	}
	if out := got.([]float64); out[5] != 10 {
		t.Fatalf("out[5] = %v, want 10", out[5])
	}
	return nil
}

// TestFlightRecorderRingBound: the ring retains exactly the last N
// evaluations, with monotonically increasing sequence numbers, plan
// renderings, and session brackets.
func TestFlightRecorderRingBound(t *testing.T) {
	rec := obs.NewFlightRecorder(3)
	h := rec.Session()
	for i := 0; i < 7; i++ {
		if err := evalOnce(t, h, doubleFn, chunkSplitter{}, "double"); err != nil {
			t.Fatal(err)
		}
	}
	rs := rec.Recordings()
	if len(rs) != 3 || rec.Len() != 3 {
		t.Fatalf("retained %d recordings, want 3", len(rs))
	}
	for i, r := range rs {
		if want := int64(5 + i); r.Seq != want {
			t.Errorf("recording %d seq = %d, want %d (oldest dropped)", i, r.Seq, want)
		}
		if r.Err != "" {
			t.Errorf("recording %d unexpectedly failed: %s", i, r.Err)
		}
		if !strings.Contains(r.Plan, "double") {
			t.Errorf("recording %d plan rendering = %q, want the call pipeline", i, r.Plan)
		}
		if len(r.Events) < 4 {
			t.Fatalf("recording %d has %d events", i, len(r.Events))
		}
		if r.Events[0].Kind != obs.EvSessionBegin || r.Events[len(r.Events)-1].Kind != obs.EvSessionEnd {
			t.Errorf("recording %d not bracketed by session events", i)
		}
		if r.End.Before(r.Begin) {
			t.Errorf("recording %d ends before it begins", i)
		}
	}
}

// TestFlightRecorderEventCap: beyond the event cap a recording counts
// drops instead of buffering, and the session-end event is still retained.
func TestFlightRecorderEventCap(t *testing.T) {
	rec := obs.NewFlightRecorder(1)
	rec.SetEventCap(4)
	h := rec.Session()
	if err := evalOnce(t, h, doubleFn, chunkSplitter{}, "double"); err != nil {
		t.Fatal(err)
	}
	rs := rec.Recordings()
	if len(rs) != 1 {
		t.Fatalf("recordings = %d", len(rs))
	}
	r := rs[0]
	if len(r.Events) != 5 { // cap(4) + the always-retained session end
		t.Errorf("events = %d, want 5", len(r.Events))
	}
	if r.Dropped == 0 {
		t.Error("expected dropped events beyond the cap")
	}
	if r.Events[len(r.Events)-1].Kind != obs.EvSessionEnd {
		t.Error("session end must survive the cap")
	}
}

// TestFlightRecorderConcurrentSessionsAndFaultDump is the -race workout:
// several sessions record into one recorder concurrently, one of them hits
// an injected split fault, and the faulting evaluation auto-dumps. The
// ring bound holds under concurrency and fault attribution lands on the
// right recording.
func TestFlightRecorderConcurrentSessionsAndFaultDump(t *testing.T) {
	const sessions = 8
	const evalsEach = 5
	rec := obs.NewFlightRecorder(sessions * evalsEach) // retain everything

	var dumpBuf bytes.Buffer
	rec.AutoDump(&dumpBuf)

	var wg sync.WaitGroup
	errCh := make(chan error, sessions)
	for g := 0; g < sessions; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := rec.Session()
			for i := 0; i < evalsEach; i++ {
				fn, sp := core.Func(doubleFn), core.Splitter(chunkSplitter{})
				name := fmt.Sprintf("double-%d", g)
				inject := g == 0 && i == 2
				if inject {
					inj := faultinject.New(0)
					inj.ErrorOnNthSplit(name, 1)
					sp = inj.WrapSplitter(name, sp)
				}
				err := evalOnce(t, h, fn, sp, name)
				if inject {
					if err == nil {
						errCh <- fmt.Errorf("injected split fault did not fail the evaluation")
					}
				} else if err != nil {
					errCh <- err
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	rs := rec.Recordings()
	if len(rs) != sessions*evalsEach {
		t.Fatalf("recordings = %d, want %d", len(rs), sessions*evalsEach)
	}
	var faulted int
	for _, r := range rs {
		if r.Err != "" {
			faulted++
			if !strings.Contains(r.Err, "injected split fault") {
				t.Errorf("faulting recording carries %q", r.Err)
			}
			// The events of the faulting recording belong to the faulting
			// session: per-session handles keep concurrent sessions apart.
			for _, e := range r.Events {
				if e.Calls != "" && !strings.Contains(e.Calls, "double-0") {
					t.Errorf("fault recording contains another session's event: %+v", e)
				}
			}
		}
	}
	if faulted != 1 {
		t.Fatalf("faulting recordings = %d, want 1", faulted)
	}

	// The auto-dump fired exactly once, with the faulting recording as
	// parseable JSON.
	var dumped obs.Recording
	if err := json.Unmarshal(dumpBuf.Bytes(), &dumped); err != nil {
		t.Fatalf("auto-dump is not one JSON recording: %v\n%s", err, dumpBuf.String())
	}
	if dumped.Err == "" || !strings.Contains(dumped.Err, "injected split fault") {
		t.Errorf("auto-dumped recording err = %q", dumped.Err)
	}

	// Dump renders the whole ring.
	var all bytes.Buffer
	if err := rec.Dump(&all); err != nil {
		t.Fatal(err)
	}
	var list []obs.Recording
	if err := json.Unmarshal(all.Bytes(), &list); err != nil {
		t.Fatalf("Dump is not a JSON list: %v", err)
	}
	if len(list) != sessions*evalsEach {
		t.Errorf("Dump rendered %d recordings, want %d", len(list), sessions*evalsEach)
	}
}
