package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestParseTraceparent(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	cases := []struct {
		name    string
		header  string
		ok      bool
		sampled bool
	}{
		{"valid sampled", valid, true, true},
		{"valid unsampled", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00", true, false},
		{"empty", "", false, false},
		{"too few fields", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7", false, false},
		{"version ff forbidden", "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", false, false},
		{"malformed version", "0x-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", false, false},
		{"short version", "0-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", false, false},
		{"uppercase trace id", "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", false, false},
		{"uppercase span id", "00-4bf92f3577b34da6a3ce929d0e0e4736-00F067AA0BA902B7-01", false, false},
		{"all-zero trace id", "00-00000000000000000000000000000000-00f067aa0ba902b7-01", false, false},
		{"all-zero span id", "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", false, false},
		{"short trace id", "00-4bf92f3577b34da6a3ce929d0e0e47-00f067aa0ba902b7-01", false, false},
		{"long span id", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7ff-01", false, false},
		{"bad flags", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz", false, false},
		// Forward compatibility: a future version may carry extra fields…
		{"future version extra fields", "cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra", true, true},
		// …but version 00 must have exactly four.
		{"v00 extra fields", valid + "-extra", false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := ParseTraceparent(tc.header)
			if ok != tc.ok {
				t.Fatalf("ParseTraceparent(%q) ok = %v, want %v", tc.header, ok, tc.ok)
			}
			if !ok {
				if !got.TraceID.IsZero() || !got.SpanID.IsZero() {
					t.Errorf("rejected header returned non-zero context %+v", got)
				}
				return
			}
			if got.TraceID.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
				t.Errorf("trace id = %s", got.TraceID)
			}
			if got.SpanID.String() != "00f067aa0ba902b7" {
				t.Errorf("span id = %s", got.SpanID)
			}
			if got.Sampled != tc.sampled {
				t.Errorf("sampled = %v, want %v", got.Sampled, tc.sampled)
			}
		})
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	SeedTraceIDs(42)
	tc := NewTraceContext()
	if tc.TraceID.IsZero() || tc.SpanID.IsZero() {
		t.Fatalf("generated context has zero ids: %+v", tc)
	}
	if !tc.Sampled {
		t.Fatalf("generated context must be sampled")
	}
	back, ok := ParseTraceparent(tc.Traceparent())
	if !ok || back != tc {
		t.Fatalf("round trip: %+v -> %q -> %+v (ok=%v)", tc, tc.Traceparent(), back, ok)
	}
	// Determinism under seeding: the same seed yields the same sequence.
	SeedTraceIDs(42)
	if again := NewTraceContext(); again != tc {
		t.Fatalf("seeded generation not deterministic: %+v vs %+v", again, tc)
	}
}

func TestTraceIDJSONRoundTrip(t *testing.T) {
	tc, _ := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	blob, err := json.Marshal(tc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"trace_id":"4bf92f3577b34da6a3ce929d0e0e4736"`) {
		t.Fatalf("ids must marshal as hex strings: %s", blob)
	}
	var back TraceContext
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back != tc {
		t.Fatalf("json round trip: %+v -> %+v", tc, back)
	}
}

// synthEvents drives a recorder through a plausible evaluation: session,
// plan, one stage with two batches, session end.
func synthEvents(r *SpanRecorder, base time.Time, errDetail string) {
	r.Emit(Event{Kind: EvSessionBegin, Time: base, Stage: -1, Worker: RuntimeLane, Elems: 3})
	r.Emit(Event{Kind: EvPlan, Time: base.Add(time.Millisecond), Dur: time.Millisecond, Stage: -1, Worker: RuntimeLane, Stages: 1})
	r.Emit(Event{Kind: EvStageBegin, Time: base.Add(time.Millisecond), Stage: 0, Calls: "a -> b", Split: "f64", Elems: 100, BatchElems: 50, Workers: 2})
	r.Emit(Event{Kind: EvBatch, Time: base.Add(2 * time.Millisecond), Dur: time.Millisecond, Stage: 0, Worker: 0, Start: 0, End: 50})
	r.Emit(Event{Kind: EvBatch, Time: base.Add(2 * time.Millisecond), Dur: time.Millisecond, Stage: 0, Worker: 1, Start: 50, End: 100})
	r.Emit(Event{Kind: EvStageEnd, Time: base.Add(3 * time.Millisecond), Dur: 2 * time.Millisecond, Stage: 0, Calls: "a -> b"})
	r.Emit(Event{Kind: EvSessionEnd, Time: base.Add(3 * time.Millisecond), Dur: 3 * time.Millisecond, Stage: -1, Worker: RuntimeLane, Detail: errDetail})
}

func TestSpanRecorderTree(t *testing.T) {
	tc, _ := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	rec := NewSpanRecorder(tc, "POST /v1/eval")
	base := time.Now()
	synthEvents(rec, base, "")
	rec.Annotate("tenant", "alpha")
	tr := rec.Finish("")

	// Root + session + plan + stage + 2 batches = 6 spans.
	if len(tr.Spans) != 6 {
		t.Fatalf("got %d spans, want 6", len(tr.Spans))
	}
	if tr.TraceID != tc.TraceID {
		t.Fatalf("trace id %s, want %s", tr.TraceID, tc.TraceID)
	}
	root := tr.RootSpan()
	if root.Name != "POST /v1/eval" || root.Parent != tc.SpanID {
		t.Fatalf("root %q parented on %s, want POST /v1/eval under %s", root.Name, root.Parent, tc.SpanID)
	}
	// The tree: session under root, stage under session, batches under stage.
	byName := map[string]Span{}
	for _, s := range tr.Spans {
		byName[s.Name] = s
	}
	sess, stage := byName["session"], byName["stage 0 [a -> b]"]
	if sess.Parent != root.SpanID {
		t.Errorf("session parented on %s, want root %s", sess.Parent, root.SpanID)
	}
	if stage.Parent != sess.SpanID {
		t.Errorf("stage parented on %s, want session %s", stage.Parent, sess.SpanID)
	}
	if b := byName["batch [0:50]"]; b.Parent != stage.SpanID {
		t.Errorf("batch parented on %s, want stage %s", b.Parent, stage.SpanID)
	}
	if stage.Dur() != 2*time.Millisecond {
		t.Errorf("stage dur %v, want 2ms (backfilled from EvStageEnd)", stage.Dur())
	}
	// Span ids must be unique and non-zero.
	seen := map[SpanID]bool{}
	for _, s := range tr.Spans {
		if s.SpanID.IsZero() || seen[s.SpanID] {
			t.Fatalf("bad span id %s (zero or duplicate)", s.SpanID)
		}
		seen[s.SpanID] = true
	}
	// Finish is idempotent.
	if tr2 := rec.Finish("late"); len(tr2.Spans) != len(tr.Spans) || tr2.RootSpan().Err != "" {
		t.Fatalf("second Finish mutated the trace")
	}

	var buf bytes.Buffer
	tr.RenderTree(&buf)
	tree := buf.String()
	for _, want := range []string{"trace 4bf92f3577b34da6a3ce929d0e0e4736 (6 spans", "- POST /v1/eval", "  - session", "    - stage 0 [a -> b]", "      - batch [0:50]", `tenant="alpha"`} {
		if !strings.Contains(tree, want) {
			t.Errorf("rendered tree missing %q:\n%s", want, tree)
		}
	}
}

func TestSpanRecorderErrorPropagation(t *testing.T) {
	SeedTraceIDs(7)
	rec := NewSpanRecorder(NewTraceContext(), "req")
	synthEvents(rec, time.Now(), "stage 0: boom")
	tr := rec.Finish("boom")
	if tr.RootSpan().Err != "boom" {
		t.Errorf("root err %q, want boom", tr.RootSpan().Err)
	}
	var sessionErr string
	for _, s := range tr.Spans {
		if s.Name == "session" {
			sessionErr = s.Err
		}
	}
	if sessionErr != "stage 0: boom" {
		t.Errorf("session err %q, want the EvSessionEnd detail", sessionErr)
	}
}

func TestSpanRingEvictionAndLookup(t *testing.T) {
	SeedTraceIDs(1)
	ring := NewSpanRing(2)
	var ids []string
	for i := 0; i < 3; i++ {
		rec := NewSpanRecorder(NewTraceContext(), "req")
		ids = append(ids, rec.TraceID().String())
		ring.Add(rec.Finish(""))
	}
	if ring.Len() != 2 {
		t.Fatalf("len = %d, want 2", ring.Len())
	}
	if _, ok := ring.Get(ids[0]); ok {
		t.Errorf("oldest trace %s should have been evicted", ids[0])
	}
	for _, id := range ids[1:] {
		if _, ok := ring.Get(id); !ok {
			t.Errorf("trace %s missing", id)
		}
	}
	if _, ok := ring.Get("zz"); ok {
		t.Errorf("malformed id must miss")
	}
	sums := ring.Summaries()
	if len(sums) != 2 || sums[0].TraceID != ids[1] || sums[1].TraceID != ids[2] {
		t.Errorf("summaries out of order: %+v", sums)
	}
}

func TestWriteOTLPShape(t *testing.T) {
	tc, _ := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	rec := NewSpanRecorder(tc, "POST /v1/eval")
	synthEvents(rec, time.Now(), "")
	tr := rec.Finish("")

	var buf bytes.Buffer
	if err := tr.WriteOTLP(&buf, "mozartd"); err != nil {
		t.Fatal(err)
	}
	var export struct {
		ResourceSpans []struct {
			Resource struct {
				Attributes []struct {
					Key   string `json:"key"`
					Value struct {
						StringValue string `json:"stringValue"`
					} `json:"value"`
				} `json:"attributes"`
			} `json:"resource"`
			ScopeSpans []struct {
				Spans []struct {
					TraceID           string `json:"traceId"`
					SpanID            string `json:"spanId"`
					ParentSpanID      string `json:"parentSpanId"`
					Kind              int    `json:"kind"`
					StartTimeUnixNano string `json:"startTimeUnixNano"`
					Status            struct {
						Code int `json:"code"`
					} `json:"status"`
				} `json:"spans"`
			} `json:"scopeSpans"`
		} `json:"resourceSpans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &export); err != nil {
		t.Fatalf("OTLP output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(export.ResourceSpans) != 1 {
		t.Fatalf("want 1 resourceSpans, got %d", len(export.ResourceSpans))
	}
	rs := export.ResourceSpans[0]
	if got := rs.Resource.Attributes[0].Value.StringValue; got != "mozartd" {
		t.Errorf("service.name = %q", got)
	}
	spans := rs.ScopeSpans[0].Spans
	if len(spans) != 6 {
		t.Fatalf("want 6 spans, got %d", len(spans))
	}
	var sawServer bool
	for _, s := range spans {
		if s.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
			t.Errorf("span trace id %q", s.TraceID)
		}
		if len(s.SpanID) != 16 {
			t.Errorf("span id %q not 16 hex digits", s.SpanID)
		}
		if s.StartTimeUnixNano == "" {
			t.Errorf("span missing stringified start time")
		}
		if s.Kind == 2 {
			sawServer = true
		}
		if s.Status.Code != 1 {
			t.Errorf("ok span status code %d, want 1", s.Status.Code)
		}
	}
	if !sawServer {
		t.Errorf("root span must have SERVER kind (2)")
	}
}

// TestSpanRecorderConcurrent exercises Emit from parallel workers under
// -race: batch events race the stage bookkeeping.
func TestSpanRecorderConcurrent(t *testing.T) {
	SeedTraceIDs(99)
	rec := NewSpanRecorder(NewTraceContext(), "req")
	base := time.Now()
	rec.Emit(Event{Kind: EvSessionBegin, Time: base, Stage: -1, Worker: RuntimeLane})
	rec.Emit(Event{Kind: EvStageBegin, Time: base, Stage: 0, Calls: "a", Split: "f64"})
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				rec.Emit(Event{Kind: EvBatch, Time: base.Add(time.Millisecond), Dur: time.Millisecond,
					Stage: 0, Worker: w, Start: int64(i), End: int64(i + 1)})
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	rec.Emit(Event{Kind: EvStageEnd, Time: base.Add(time.Second), Dur: time.Second, Stage: 0})
	rec.Emit(Event{Kind: EvSessionEnd, Time: base.Add(time.Second), Dur: time.Second, Stage: -1, Worker: RuntimeLane})
	tr := rec.Finish("")
	// root + session + stage + 200 batches
	if len(tr.Spans) != 203 {
		t.Fatalf("got %d spans, want 203", len(tr.Spans))
	}
}
