package obs

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// promFeed extends the canonical event feed with the telemetry-only kinds:
// simulated hardware counters for the stage, and a second evaluation that
// ends in an error (so the errors counter and a second histogram
// observation are exercised).
func promFeed(base time.Time) []Event {
	at := func(ms int) time.Time { return base.Add(time.Duration(ms) * time.Millisecond) }
	feed := fixedFeed(base)
	feed = append(feed,
		Event{Kind: EvStageCounters, Time: at(12), Stage: 0, Worker: RuntimeLane,
			Calls: "a -> b", Split: "SizeSplit<100>",
			Counters: CacheCounters{
				L1Hits: 900, L1Misses: 100,
				L2Hits: 60, L2Misses: 40,
				LLCHits: 30, LLCMisses: 10,
				DRAMBytes: 64000, ModelNS: 1500000,
			}},
		Event{Kind: EvSessionBegin, Time: at(20), Stage: -1, Worker: RuntimeLane, Elems: 1},
		Event{Kind: EvSessionEnd, Time: at(31), Dur: 11 * time.Millisecond, Stage: -1,
			Worker: RuntimeLane, Detail: "stage 0: injected fault"},
		// Out-of-core pressure episode: enter out-of-core, spill two window
		// partials (plus a replay, which must not double-count), recover.
		Event{Kind: EvPressure, Time: at(32), Stage: 0, Worker: RuntimeLane,
			Calls: "a -> b", Bytes: 4096, Detail: "out-of-core"},
		Event{Kind: EvSpill, Time: at(33), Stage: 0, Worker: RuntimeLane,
			Calls: "a -> b", Split: "SizeSplit<100>", Start: 0, End: 50, Bytes: 400, Detail: "append"},
		Event{Kind: EvSpill, Time: at(34), Stage: 0, Worker: RuntimeLane,
			Calls: "a -> b", Split: "SizeSplit<100>", Start: 50, End: 100, Bytes: 400, Detail: "append"},
		Event{Kind: EvSpill, Time: at(35), Stage: 0, Worker: RuntimeLane,
			Calls: "a -> b", Split: "SizeSplit<100>", Bytes: 800, Elems: 2, Detail: "replay"},
		Event{Kind: EvPressure, Time: at(36), Stage: 0, Worker: RuntimeLane,
			Calls: "a -> b", Bytes: 0, Detail: "normal"},
		// Tuner feedback: one static baseline evaluation and one sweep probe
		// (so mozart_tuner_evaluations_total has two provenance series and
		// the batch/throughput gauges carry the last observation).
		Event{Kind: EvTune, Time: at(40), Dur: 10 * time.Millisecond, Stage: -1,
			Worker: RuntimeLane, Elems: 1000, Bytes: 8000, Workers: 4, Detail: "static"},
		Event{Kind: EvTune, Time: at(41), Dur: 5 * time.Millisecond, Stage: -1,
			Worker: RuntimeLane, Elems: 1000, Bytes: 8000, BatchElems: 2048, Workers: 4, Detail: "sweeping"},
	)
	return feed
}

// promSinkWithGauges builds the canonical prom test sink: the promFeed
// events plus two registered governor gauges (global and per-tenant carve).
func promSinkWithGauges() *Metrics {
	m := NewMetrics()
	m.RegisterGauge("governor_reserved_bytes", "Bytes currently reserved against the governor budget.",
		map[string]string{"scope": "global"}, func() float64 { return 4096 })
	m.RegisterGauge("governor_reserved_bytes", "Bytes currently reserved against the governor budget.",
		map[string]string{"scope": "tenant", "tenant": "alpha"}, func() float64 { return 1024 })
	for _, e := range promFeed(time.Unix(0, 0)) {
		m.Emit(e)
	}
	return m
}

// TestPrometheusGolden locks the exact text-exposition rendering.
// Regenerate with `go test ./internal/obs -update` after an intentional
// format change.
func TestPrometheusGolden(t *testing.T) {
	m := promSinkWithGauges()
	got := []byte(m.PrometheusText())

	golden := filepath.Join("testdata", "promtext.golden")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("prometheus text differs from %s;\ngot:\n%s", golden, got)
	}
}

// parseProm parses the text exposition format into sample name (including
// the label block, verbatim) -> value.
func parseProm(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable sample line: %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		key := line[:sp]
		if _, dup := samples[key]; dup {
			t.Fatalf("duplicate sample %q", key)
		}
		samples[key] = v
	}
	return samples
}

// TestPrometheusMatchesSnapshot holds the /metrics rendering value-for-value
// equal to Metrics.Snapshot, including the simulated hardware-counter
// fields. Every snapshot field with a Prometheus series must round-trip
// exactly; every rendered sample must be accounted for.
func TestPrometheusMatchesSnapshot(t *testing.T) {
	m := promSinkWithGauges()
	sn := m.Snapshot()
	samples := parseProm(t, m.PrometheusText())

	want := map[string]float64{
		"mozart_evaluations_total":       float64(sn.Evaluations),
		"mozart_evaluation_errors_total": float64(sn.Errors),
	}
	for state, n := range sn.Breaker {
		want[fmt.Sprintf("mozart_breaker_transitions_total{state=%q}", state)] = float64(n)
	}
	for level, n := range sn.Pressure {
		want[fmt.Sprintf("mozart_pressure_transitions_total{level=%q}", level)] = float64(n)
	}
	if sn.SpillFrames > 0 {
		want["mozart_spill_bytes_total"] = float64(sn.SpillBytes)
		want["mozart_spill_frames_total"] = float64(sn.SpillFrames)
	}
	for prov, n := range sn.Tuner {
		want[fmt.Sprintf("mozart_tuner_evaluations_total{provenance=%q}", prov)] = float64(n)
	}
	if len(sn.Tuner) > 0 {
		want["mozart_tuner_batch_elems"] = float64(sn.TunerBatchElems)
		want["mozart_tuner_elems_per_second"] = sn.TunerElemsPerSec
	}
	for _, g := range sn.Gauges {
		want["mozart_"+g.Name+g.Labels] = g.Value
	}

	h := sn.EvalLatency
	var cum int64
	for i, le := range h.BucketsLE {
		cum += h.Counts[i]
		want[fmt.Sprintf("mozart_evaluate_duration_seconds_bucket{le=%q}", promFloat(le))] = float64(cum)
	}
	want[`mozart_evaluate_duration_seconds_bucket{le="+Inf"}`] = float64(h.Count)
	want["mozart_evaluate_duration_seconds_sum"] = h.SumSeconds
	want["mozart_evaluate_duration_seconds_count"] = float64(h.Count)

	for i := range sn.Stages {
		s := &sn.Stages[i]
		labels := fmt.Sprintf("{stage=\"%d\",calls=%q,split=%q}", s.Stage, s.Calls, s.Split)
		for _, fam := range promStageCounters {
			want["mozart_"+fam.name+labels] = fam.val(s)
		}
		for _, fam := range promStageGauges {
			want["mozart_"+fam.name+labels] = fam.val(s)
		}
		if !s.Sim.Zero() {
			for _, fam := range promStageSim {
				want["mozart_"+fam.name+labels] = fam.val(s)
			}
		}
	}

	for key, wv := range want {
		gv, ok := samples[key]
		if !ok {
			t.Errorf("missing sample %s", key)
			continue
		}
		if gv != wv && math.Abs(gv-wv) > 1e-12 {
			t.Errorf("%s = %v, want %v (snapshot)", key, gv, wv)
		}
		delete(samples, key)
	}
	for key, v := range samples {
		t.Errorf("unaccounted sample %s = %v", key, v)
	}
}

// TestPrometheusSimGatedOnCounters: a sink that never saw EvStageCounters
// must not emit sim series (scrapers should not see all-zero hardware
// counters for sessions that do not simulate them).
func TestPrometheusSimGatedOnCounters(t *testing.T) {
	m := NewMetrics()
	for _, e := range fixedFeed(time.Unix(0, 0)) {
		m.Emit(e)
	}
	if text := m.PrometheusText(); strings.Contains(text, "_sim_") {
		t.Errorf("sim series rendered without counter events:\n%s", text)
	}
}

// TestPublishIdempotent: expvar panics on duplicate names; Publish must be
// a guarded no-op the second time — including when a different variable
// already owns the name.
func TestPublishIdempotent(t *testing.T) {
	m := NewMetrics()
	m.Publish("mozart_obs_test_publish_idempotent")
	m.Publish("mozart_obs_test_publish_idempotent") // must not panic

	m2 := NewMetrics()
	m2.Publish("mozart_obs_test_publish_idempotent") // name taken: no-op
}

func TestLatencyHistogramObserve(t *testing.T) {
	var h LatencyHistogram
	h.observe(0.0002, nil) // bucket le=0.00025
	h.observe(0.003, nil)  // bucket le=0.005
	h.observe(99, nil)     // above every bound: only Count/Sum
	if h.Count != 3 {
		t.Errorf("count = %d, want 3", h.Count)
	}
	if got := h.SumSeconds; math.Abs(got-99.0032) > 1e-9 {
		t.Errorf("sum = %v, want 99.0032", got)
	}
	var inBuckets int64
	for _, c := range h.Counts {
		inBuckets += c
	}
	if inBuckets != 2 {
		t.Errorf("bucketed observations = %d, want 2 (one above all bounds)", inBuckets)
	}
}
