// Package httpdebug mounts the Mozart runtime's live telemetry on a
// caller-provided *http.ServeMux: a Prometheus /metrics endpoint over a
// Metrics sink, the last plan IRs under /debug/mozart/plans, the Chrome
// trace buffer under /debug/mozart/trace, the flight recorder's
// retained evaluations under /debug/mozart/flight, and per-request span
// trees under /debug/mozart/spans/<trace-id>.
//
// The package never starts a server and never touches
// http.DefaultServeMux: the caller owns the listener, the mux, and any
// authentication in front of it. Typical wiring:
//
//	metrics := mozart.NewMetrics()
//	plans := httpdebug.NewPlanLog(8)
//	s := mozart.NewSession(mozart.Options{Tracer: metrics, OnPlan: plans.OnPlan})
//	mux := http.NewServeMux()
//	httpdebug.Mount(mux, httpdebug.Options{Metrics: metrics, Plans: plans})
//	go http.ListenAndServe("localhost:6070", mux)
package httpdebug

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"mozart/internal/obs"
	"mozart/internal/plan"
)

// Options selects which telemetry surfaces Mount exposes. Nil fields are
// simply not mounted, so a caller can expose metrics without tracing or
// vice versa.
type Options struct {
	// Metrics serves GET /metrics in the Prometheus text format.
	Metrics *obs.Metrics
	// Plans serves GET /debug/mozart/plans: the retained plan renderings,
	// newest last.
	Plans *PlanLog
	// Trace serves GET /debug/mozart/trace: the trace buffer in Chrome
	// trace_event JSON (load into chrome://tracing or ui.perfetto.dev).
	Trace *obs.ChromeTrace
	// Recorder serves GET /debug/mozart/flight: the flight recorder's
	// retained recordings as JSON, newest last.
	Recorder *obs.FlightRecorder
	// Spans serves GET /debug/mozart/spans (a JSON index of retained
	// traces) and GET /debug/mozart/spans/<trace-id> (one request's span
	// tree — indented text by default, OTLP/JSON with ?format=otlp).
	Spans *obs.SpanRing
	// Service names the OTLP resource (service.name) on span exports;
	// empty defaults to "mozart".
	Service string
}

// Mount registers a handler per non-nil Options field on mux.
func Mount(mux *http.ServeMux, o Options) {
	if o.Metrics != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			if !allowGet(w, r) {
				return
			}
			// Content negotiation per the Prometheus exposition-format
			// contract: scrapers that understand OpenMetrics (and so
			// exemplars) say so in Accept; everyone else gets the classic
			// text format, byte-for-byte what this endpoint always served.
			if wantsOpenMetrics(r.Header.Get("Accept")) {
				w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
				o.Metrics.WriteOpenMetrics(w)
				return
			}
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			o.Metrics.WritePrometheus(w)
		})
	}
	if o.Plans != nil {
		mux.HandleFunc("/debug/mozart/plans", func(w http.ResponseWriter, r *http.Request) {
			if !allowGet(w, r) {
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			o.Plans.WriteTo(w)
		})
	}
	if o.Trace != nil {
		mux.HandleFunc("/debug/mozart/trace", func(w http.ResponseWriter, r *http.Request) {
			if !allowGet(w, r) {
				return
			}
			w.Header().Set("Content-Type", "application/json")
			o.Trace.WriteTo(w)
		})
	}
	if o.Recorder != nil {
		mux.HandleFunc("/debug/mozart/flight", func(w http.ResponseWriter, r *http.Request) {
			if !allowGet(w, r) {
				return
			}
			w.Header().Set("Content-Type", "application/json")
			o.Recorder.Dump(w)
		})
	}
	if o.Spans != nil {
		service := o.Service
		if service == "" {
			service = "mozart"
		}
		mux.HandleFunc("/debug/mozart/spans", func(w http.ResponseWriter, r *http.Request) {
			if !allowGet(w, r) {
				return
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(o.Spans.Summaries())
		})
		mux.HandleFunc("/debug/mozart/spans/", func(w http.ResponseWriter, r *http.Request) {
			if !allowGet(w, r) {
				return
			}
			id := strings.TrimPrefix(r.URL.Path, "/debug/mozart/spans/")
			tr, ok := o.Spans.Get(id)
			if !ok {
				http.Error(w, "trace not found", http.StatusNotFound)
				return
			}
			switch r.URL.Query().Get("format") {
			case "otlp":
				w.Header().Set("Content-Type", "application/json")
				tr.WriteOTLP(w, service)
			case "", "tree":
				w.Header().Set("Content-Type", "text/plain; charset=utf-8")
				tr.RenderTree(w)
			default:
				http.Error(w, "unknown format (want tree or otlp)", http.StatusBadRequest)
			}
		})
	}
}

// wantsOpenMetrics reports whether an Accept header asks for the
// OpenMetrics text exposition format.
func wantsOpenMetrics(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mediaType, _, _ := strings.Cut(strings.TrimSpace(part), ";")
		if strings.TrimSpace(mediaType) == "application/openmetrics-text" {
			return true
		}
	}
	return false
}

func allowGet(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return false
	}
	return true
}

// PlanLog retains the renderings of the last N plan IRs the planner
// produced. Wire its OnPlan into Options.OnPlan (combine with other
// consumers by calling both from one closure). The log stores renderings,
// not live *plan.Plan values, so retained entries cannot alias runtime
// state.
type PlanLog struct {
	mu   sync.Mutex
	max  int
	seq  int64
	ring []planEntry // oldest first
}

type planEntry struct {
	seq      int64
	rendered string
}

// NewPlanLog returns a log retaining the last n plans (n <= 0 selects 8).
func NewPlanLog(n int) *PlanLog {
	if n <= 0 {
		n = 8
	}
	return &PlanLog{max: n}
}

// OnPlan records one plan. Safe for concurrent use.
func (l *PlanLog) OnPlan(p *plan.Plan) {
	rendered := plan.Render(p)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	e := planEntry{seq: l.seq, rendered: rendered}
	if len(l.ring) == l.max {
		copy(l.ring, l.ring[1:])
		l.ring[len(l.ring)-1] = e
	} else {
		l.ring = append(l.ring, e)
	}
}

// Len reports the number of retained plans.
func (l *PlanLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ring)
}

// WriteTo renders the retained plans, oldest first, each under an
// "evaluation N" header.
func (l *PlanLog) WriteTo(w io.Writer) (int64, error) {
	l.mu.Lock()
	entries := append([]planEntry(nil), l.ring...)
	l.mu.Unlock()
	var b strings.Builder
	if len(entries) == 0 {
		b.WriteString("no plans recorded\n")
	}
	for i, e := range entries {
		if i > 0 {
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "=== evaluation %d ===\n%s", e.seq, e.rendered)
		if !strings.HasSuffix(e.rendered, "\n") {
			b.WriteString("\n")
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}
