package httpdebug_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mozart/internal/obs"
	"mozart/internal/obs/httpdebug"
)

// smokeTrace builds one completed trace rooted on a fixed traceparent.
func smokeTrace(t *testing.T) (*obs.Trace, string) {
	t.Helper()
	tc, ok := obs.ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if !ok {
		t.Fatal("fixed traceparent must parse")
	}
	rec := obs.NewSpanRecorder(tc, "POST /v1/eval")
	base := time.Now()
	rec.Emit(obs.Event{Kind: obs.EvSessionBegin, Time: base, Stage: -1, Worker: obs.RuntimeLane})
	rec.Emit(obs.Event{Kind: obs.EvStageBegin, Time: base, Stage: 0, Calls: "scale", Split: "f64"})
	rec.Emit(obs.Event{Kind: obs.EvBatch, Time: base.Add(time.Millisecond), Dur: time.Millisecond, Stage: 0, Start: 0, End: 8})
	rec.Emit(obs.Event{Kind: obs.EvStageEnd, Time: base.Add(time.Millisecond), Dur: time.Millisecond, Stage: 0})
	rec.Emit(obs.Event{Kind: obs.EvSessionEnd, Time: base.Add(time.Millisecond), Dur: time.Millisecond, Stage: -1, Worker: obs.RuntimeLane})
	return rec.Finish(""), tc.TraceID.String()
}

// TestSpansEndpoints round-trips the span index and the per-trace
// renderings through a live server.
func TestSpansEndpoints(t *testing.T) {
	ring := obs.NewSpanRing(4)
	tr, traceID := smokeTrace(t)
	ring.Add(tr)

	mux := http.NewServeMux()
	httpdebug.Mount(mux, httpdebug.Options{Spans: ring, Service: "mozartd-test"})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	// The index lists the retained trace.
	code, body, ctype := get("/debug/mozart/spans")
	if code != http.StatusOK || ctype != "application/json" {
		t.Fatalf("index: %d %q", code, ctype)
	}
	var sums []obs.TraceSummary
	if err := json.Unmarshal([]byte(body), &sums); err != nil {
		t.Fatalf("index not JSON: %v", err)
	}
	if len(sums) != 1 || sums[0].TraceID != traceID || sums[0].Name != "POST /v1/eval" {
		t.Fatalf("index rows: %+v", sums)
	}

	// Default rendering: the indented tree.
	code, body, ctype = get("/debug/mozart/spans/" + traceID)
	if code != http.StatusOK || !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("tree: %d %q", code, ctype)
	}
	for _, want := range []string{"trace " + traceID, "- POST /v1/eval", "- session", "- stage 0 [scale]", "- batch [0:8]"} {
		if !strings.Contains(body, want) {
			t.Errorf("tree missing %q:\n%s", want, body)
		}
	}

	// OTLP rendering: valid JSON naming the mounted service.
	code, body, ctype = get("/debug/mozart/spans/" + traceID + "?format=otlp")
	if code != http.StatusOK || ctype != "application/json" {
		t.Fatalf("otlp: %d %q", code, ctype)
	}
	if !strings.Contains(body, `"mozartd-test"`) || !strings.Contains(body, `"traceId": "`+traceID+`"`) {
		t.Errorf("otlp body:\n%s", body)
	}

	// Unknown format and unknown trace fail cleanly.
	if code, _, _ = get("/debug/mozart/spans/" + traceID + "?format=protobuf"); code != http.StatusBadRequest {
		t.Errorf("unknown format = %d, want 400", code)
	}
	if code, _, _ = get("/debug/mozart/spans/ffffffffffffffffffffffffffffffff"); code != http.StatusNotFound {
		t.Errorf("unknown trace = %d, want 404", code)
	}
}

// TestMetricsContentNegotiation: the /metrics endpoint serves classic
// Prometheus text by default and OpenMetrics (with exemplars and the # EOF
// terminator) when the scraper asks for it.
func TestMetricsContentNegotiation(t *testing.T) {
	metrics := obs.NewMetrics()
	_, traceID := smokeTrace(t) // unused trace ring; we only need the id shape
	tc, _ := obs.ParseTraceparent("00-" + traceID + "-00f067aa0ba902b7-01")
	metrics.Emit(obs.Event{Kind: obs.EvSessionBegin, Time: time.Now(), Stage: -1, Worker: obs.RuntimeLane, Trace: &tc})
	metrics.Emit(obs.Event{Kind: obs.EvSessionEnd, Time: time.Now(), Dur: 3 * time.Millisecond, Stage: -1, Worker: obs.RuntimeLane, Trace: &tc})

	mux := http.NewServeMux()
	httpdebug.Mount(mux, httpdebug.Options{Metrics: metrics})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(accept string) (string, string) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, srv.URL+"/metrics", nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body), resp.Header.Get("Content-Type")
	}

	// No Accept header: classic text format, no exemplars, no EOF marker.
	body, ctype := get("")
	if !strings.HasPrefix(ctype, "text/plain") || !strings.Contains(ctype, "version=0.0.4") {
		t.Errorf("plain content type %q", ctype)
	}
	if strings.Contains(body, "# EOF") || strings.Contains(body, "trace_id=") {
		t.Errorf("plain exposition leaked OpenMetrics syntax:\n%s", body)
	}

	// A Prometheus-style Accept header negotiating OpenMetrics.
	om, ctype := get("application/openmetrics-text;version=1.0.0;q=0.75,text/plain;version=0.0.4;q=0.5")
	if !strings.HasPrefix(ctype, "application/openmetrics-text") {
		t.Errorf("openmetrics content type %q", ctype)
	}
	if !strings.HasSuffix(om, "# EOF\n") {
		t.Errorf("openmetrics exposition missing # EOF terminator")
	}
	if !strings.Contains(om, `# {trace_id="`+traceID+`"}`) {
		t.Errorf("openmetrics exposition missing the latency exemplar:\n%s", om)
	}

	// Accept headers that do not name OpenMetrics stay on the classic path.
	if body, _ := get("text/plain, */*"); strings.Contains(body, "# EOF") {
		t.Error("*/* must not negotiate OpenMetrics")
	}
}
