package httpdebug_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mozart/internal/core"
	"mozart/internal/obs"
	"mozart/internal/obs/httpdebug"
	"mozart/internal/plan"
)

type chunkSplitter struct{}

func (chunkSplitter) InPlace() bool { return false }

func (chunkSplitter) Info(v any, t core.SplitType) (core.RuntimeInfo, error) {
	return core.RuntimeInfo{Elems: int64(len(v.([]float64))), ElemBytes: 8}, nil
}

func (chunkSplitter) Split(v any, t core.SplitType, start, end int64) (any, error) {
	return v.([]float64)[start:end], nil
}

func (chunkSplitter) Merge(pieces []any, t core.SplitType) (any, error) {
	var out []float64
	for _, p := range pieces {
		out = append(out, p.([]float64)...)
	}
	return out, nil
}

// TestDebugEndpointsRoundTrip drives one real evaluation with every sink
// attached, mounts the debug surface, and round-trips each endpoint
// through a live httptest server.
func TestDebugEndpointsRoundTrip(t *testing.T) {
	metrics := obs.NewMetrics()
	trace := obs.NewChromeTrace()
	rec := obs.NewFlightRecorder(4)
	plans := httpdebug.NewPlanLog(4)

	h := rec.Session()
	sexpr := core.Concrete("Chunk", chunkSplitter{}, func(args []any) (core.SplitType, error) {
		return core.NewSplitType("Chunk", int64(len(args[0].([]float64)))), nil
	})
	ret := sexpr
	sa := &core.Annotation{FuncName: "scale", Params: []core.Param{{Name: "a", Type: sexpr}}, Ret: &ret}
	scale := func(args []any) (any, error) {
		in := args[0].([]float64)
		out := make([]float64, len(in))
		for i, x := range in {
			out[i] = 3 * x
		}
		return out, nil
	}

	data := make([]float64, 64)
	for i := range data {
		data[i] = float64(i)
	}
	s := core.NewSession(core.Options{Workers: 2, BatchElems: 8,
		Tracer: obs.Multi(metrics, trace, h),
		OnPlan: func(p *plan.Plan) { plans.OnPlan(p); h.OnPlan(p) }})
	s.Call(scale, sa, data)
	if err := s.EvaluateContext(context.Background()); err != nil {
		t.Fatal(err)
	}

	mux := http.NewServeMux()
	httpdebug.Mount(mux, httpdebug.Options{
		Metrics: metrics, Plans: plans, Trace: trace, Recorder: rec,
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d\n%s", path, resp.StatusCode, body)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	// /metrics: Prometheus text, consistent with the sink's own renderer.
	body, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain") || !strings.Contains(ctype, "version=0.0.4") {
		t.Errorf("/metrics content type %q", ctype)
	}
	if body != metrics.PrometheusText() {
		t.Error("/metrics body differs from the sink's own rendering")
	}
	if !strings.Contains(body, "mozart_evaluations_total 1") {
		t.Errorf("/metrics missing the evaluation counter:\n%s", body)
	}

	// /debug/mozart/plans: the EXPLAIN rendering of the captured plan.
	body, ctype = get("/debug/mozart/plans")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/plans content type %q", ctype)
	}
	if !strings.Contains(body, "evaluation 1") || !strings.Contains(body, "scale") {
		t.Errorf("/plans body:\n%s", body)
	}

	// /debug/mozart/trace: valid Chrome trace JSON with events.
	body, ctype = get("/debug/mozart/trace")
	if ctype != "application/json" {
		t.Errorf("/trace content type %q", ctype)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("/trace has no events")
	}

	// /debug/mozart/flight: the recorder's retained evaluations.
	body, _ = get("/debug/mozart/flight")
	var recs []obs.Recording
	if err := json.Unmarshal([]byte(body), &recs); err != nil {
		t.Fatalf("/flight is not a JSON list: %v", err)
	}
	if len(recs) != 1 || len(recs[0].Events) == 0 || !strings.Contains(recs[0].Plan, "scale") {
		t.Errorf("/flight recordings: %+v", recs)
	}

	// Non-GET is rejected.
	resp, err := http.Post(srv.URL+"/metrics", "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics = %d, want 405", resp.StatusCode)
	}
}

// TestMountNilComponents: unmounted surfaces 404 instead of panicking.
func TestMountNilComponents(t *testing.T) {
	mux := http.NewServeMux()
	httpdebug.Mount(mux, httpdebug.Options{Metrics: obs.NewMetrics()})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	for path, want := range map[string]int{
		"/metrics":             http.StatusOK,
		"/debug/mozart/plans":  http.StatusNotFound,
		"/debug/mozart/trace":  http.StatusNotFound,
		"/debug/mozart/flight": http.StatusNotFound,
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s = %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// TestPlanLogRing: the plan log drops oldest entries beyond its bound.
func TestPlanLogRing(t *testing.T) {
	l := httpdebug.NewPlanLog(2)
	for i := 0; i < 5; i++ {
		l.OnPlan(&plan.Plan{})
	}
	if l.Len() != 2 {
		t.Fatalf("len = %d, want 2", l.Len())
	}
	var b strings.Builder
	if _, err := l.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "evaluation 4") || !strings.Contains(b.String(), "evaluation 5") {
		t.Errorf("retained plans:\n%s", b.String())
	}
	if strings.Contains(b.String(), "evaluation 3") {
		t.Error("oldest plan should have been dropped")
	}
}
