package httpdebug_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"mozart/internal/core"
	"mozart/internal/obs"
	"mozart/internal/obs/httpdebug"
	"mozart/internal/plan"
)

// TestDebugEndpointsUnderConcurrentEvaluation is the -race regression net
// for the telemetry surface in a serving process: sessions evaluate (and
// mutate the metrics sink, plan log, and flight recorder) while HTTP
// clients concurrently scrape /metrics and dump /debug/mozart/flight and
// /debug/mozart/plans. Any unsynchronized access between the runtime's
// write path and the handlers' read path fails the race detector here.
func TestDebugEndpointsUnderConcurrentEvaluation(t *testing.T) {
	metrics := obs.NewMetrics()
	rec := obs.NewFlightRecorder(4)
	plans := httpdebug.NewPlanLog(4)

	mux := http.NewServeMux()
	httpdebug.Mount(mux, httpdebug.Options{Metrics: metrics, Plans: plans, Recorder: rec})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	sexpr := core.Concrete("Chunk", chunkSplitter{}, func(args []any) (core.SplitType, error) {
		return core.NewSplitType("Chunk", int64(len(args[0].([]float64)))), nil
	})
	ret := sexpr
	sa := &core.Annotation{FuncName: "scale", Params: []core.Param{{Name: "a", Type: sexpr}}, Ret: &ret}
	scale := func(args []any) (any, error) {
		in := args[0].([]float64)
		out := make([]float64, len(in))
		for i, x := range in {
			out[i] = 3 * x
		}
		return out, nil
	}

	const (
		evaluators = 4
		evalsEach  = 8
		scrapers   = 4
	)
	var wg sync.WaitGroup

	// Writers: sessions evaluating with every sink attached.
	for g := 0; g < evaluators; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			data := make([]float64, 64)
			for i := range data {
				data[i] = float64(i)
			}
			for e := 0; e < evalsEach; e++ {
				h := rec.Session()
				s := core.NewSession(core.Options{Workers: 2, BatchElems: 8,
					Tracer: obs.Multi(metrics, h),
					OnPlan: func(p *plan.Plan) { plans.OnPlan(p); h.OnPlan(p) }})
				s.Call(scale, sa, data)
				if err := s.EvaluateContext(context.Background()); err != nil {
					t.Errorf("evaluate: %v", err)
					return
				}
			}
		}()
	}

	// Readers: concurrent scrapes of every mounted endpoint.
	for g := 0; g < scrapers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				for _, path := range []string{"/metrics", "/debug/mozart/flight", "/debug/mozart/plans"} {
					resp, err := http.Get(srv.URL + path)
					if err != nil {
						t.Errorf("GET %s: %v", path, err)
						return
					}
					if _, err := io.Copy(io.Discard, resp.Body); err != nil {
						t.Errorf("read %s: %v", path, err)
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	// The sinks converged on the full evaluation count once writers stop.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	want := "mozart_evaluations_total 32"
	if !containsLine(string(body), want) {
		t.Errorf("final /metrics missing %q:\n%s", want, body)
	}
}

func containsLine(body, want string) bool {
	for _, line := range splitLines(body) {
		if line == want {
			return true
		}
	}
	return false
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
