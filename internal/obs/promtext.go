package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4) over a Metrics sink. The
// renderer is dependency-free on purpose: the repo cannot vendor a client
// library, and the text format is small enough to emit directly. Every
// value is rendered straight from one MetricsSnapshot, so a scrape is
// internally consistent and a test can hold the output value-for-value
// equal to Snapshot().
//
// Naming follows Prometheus conventions: monotonically accumulating
// fields are `_total` counters, last-observed shape fields (batch size,
// workers, cache utilization) are gauges, and the evaluate latency is a
// classic cumulative histogram. Per-stage series are labeled by
// {stage, calls, split} — the same identity Metrics aggregates rows by.

// promStageCounters lists the per-stage counter fields in render order:
// name suffix, help text, and the value accessor.
var promStageCounters = []struct {
	name string
	help string
	val  func(*StageMetrics) float64
}{
	{"stage_runs_total", "Stage executions (one per evaluation).", func(s *StageMetrics) float64 { return float64(s.Runs) }},
	{"stage_batches_total", "Batches executed.", func(s *StageMetrics) float64 { return float64(s.Batches) }},
	{"stage_elems_total", "Elements processed.", func(s *StageMetrics) float64 { return float64(s.Elems) }},
	{"stage_bytes_total", "Bytes moved under the paper's 5.2 model.", func(s *StageMetrics) float64 { return float64(s.Bytes) }},
	{"stage_split_seconds_total", "Time in splitters' Split.", func(s *StageMetrics) float64 { return ns(s.SplitNS) }},
	{"stage_task_seconds_total", "Time in library calls.", func(s *StageMetrics) float64 { return ns(s.TaskNS) }},
	{"stage_merge_seconds_total", "Time in splitters' Merge.", func(s *StageMetrics) float64 { return ns(s.MergeNS) }},
	{"stage_retries_total", "Batch replays after transient faults.", func(s *StageMetrics) float64 { return float64(s.Retries) }},
	{"stage_fallbacks_total", "Whole-call fallback re-executions.", func(s *StageMetrics) float64 { return float64(s.Fallbacks) }},
	{"stage_admission_wait_seconds_total", "Time waiting on the memory governor.", func(s *StageMetrics) float64 { return ns(s.AdmissionWaitNS) }},
	{"stage_errors_total", "Stage executions that ended in an error.", func(s *StageMetrics) float64 { return float64(s.Errors) }},
}

// promStageGauges lists the last-observed per-stage shape fields.
var promStageGauges = []struct {
	name string
	help string
	val  func(*StageMetrics) float64
}{
	{"stage_batch_elems", "Last chosen batch size in elements.", func(s *StageMetrics) float64 { return float64(s.BatchElems) }},
	{"stage_workers", "Last worker count.", func(s *StageMetrics) float64 { return float64(s.Workers) }},
	{"stage_cache_utilization", "Batch working set over the C*L2 target.", func(s *StageMetrics) float64 { return s.CacheUtilization }},
}

// promStageSim lists the simulated hardware counters (memsim via
// planlower; see EvStageCounters). Rendered only when a stage carries
// non-zero counters, so sessions without SimulateCounters emit no sim
// series.
var promStageSim = []struct {
	name string
	help string
	val  func(*StageMetrics) float64
}{
	{"stage_sim_l1_hits_total", "Simulated L1 cache hits (memsim trace).", func(s *StageMetrics) float64 { return float64(s.Sim.L1Hits) }},
	{"stage_sim_l1_misses_total", "Simulated L1 cache misses (memsim trace).", func(s *StageMetrics) float64 { return float64(s.Sim.L1Misses) }},
	{"stage_sim_l2_hits_total", "Simulated L2 cache hits (memsim trace).", func(s *StageMetrics) float64 { return float64(s.Sim.L2Hits) }},
	{"stage_sim_l2_misses_total", "Simulated L2 cache misses (memsim trace).", func(s *StageMetrics) float64 { return float64(s.Sim.L2Misses) }},
	{"stage_sim_llc_hits_total", "Simulated LLC hits (memsim trace).", func(s *StageMetrics) float64 { return float64(s.Sim.LLCHits) }},
	{"stage_sim_llc_misses_total", "Simulated LLC misses (memsim trace).", func(s *StageMetrics) float64 { return float64(s.Sim.LLCMisses) }},
	{"stage_sim_dram_bytes_total", "Simulated DRAM traffic, full size, all threads.", func(s *StageMetrics) float64 { return float64(s.Sim.DRAMBytes) }},
	{"stage_sim_model_seconds_total", "Modeled stage runtime on the machine model.", func(s *StageMetrics) float64 { return ns(s.Sim.ModelNS) }},
}

func ns(v int64) float64 { return float64(v) / 1e9 }

// WritePrometheus renders one consistent snapshot of the sink in the
// Prometheus text exposition format. Mount it on an HTTP mux via
// internal/obs/httpdebug, or call it directly from a custom handler.
func (m *Metrics) WritePrometheus(w io.Writer) (int64, error) {
	return m.Snapshot().WritePrometheus(w)
}

// WriteOpenMetrics renders the snapshot in the OpenMetrics text format:
// the same families, with counter family metadata stripped of the _total
// suffix, histogram-bucket exemplars carrying trace ids, and the required
// `# EOF` terminator. Serve it under the application/openmetrics-text
// content type (internal/obs/httpdebug negotiates this on /metrics).
func (m *Metrics) WriteOpenMetrics(w io.Writer) (int64, error) {
	return m.Snapshot().WriteOpenMetrics(w)
}

// PrometheusText renders the snapshot to a string (tests, debugging).
func (m *Metrics) PrometheusText() string {
	var b strings.Builder
	m.WritePrometheus(&b)
	return b.String()
}

// OpenMetricsText renders the OpenMetrics exposition to a string.
func (m *Metrics) OpenMetricsText() string {
	var b strings.Builder
	m.WriteOpenMetrics(&b)
	return b.String()
}

// WritePrometheus renders the snapshot in the Prometheus text format.
func (sn MetricsSnapshot) WritePrometheus(w io.Writer) (int64, error) {
	return sn.write(w, false)
}

// WriteOpenMetrics renders the snapshot in the OpenMetrics text format.
func (sn MetricsSnapshot) WriteOpenMetrics(w io.Writer) (int64, error) {
	return sn.write(w, true)
}

func (sn MetricsSnapshot) write(w io.Writer, openMetrics bool) (int64, error) {
	var b strings.Builder

	header := func(name, typ, help string) {
		meta := name
		// OpenMetrics family metadata names a counter without its _total
		// sample suffix.
		if openMetrics && typ == "counter" {
			meta = strings.TrimSuffix(name, "_total")
		}
		fmt.Fprintf(&b, "# HELP mozart_%s %s\n# TYPE mozart_%s %s\n", meta, help, meta, typ)
	}

	header("evaluations_total", "counter", "Evaluate rounds observed.")
	fmt.Fprintf(&b, "mozart_evaluations_total %s\n", promFloat(float64(sn.Evaluations)))
	header("evaluation_errors_total", "counter", "Evaluate rounds that ended in an error.")
	fmt.Fprintf(&b, "mozart_evaluation_errors_total %s\n", promFloat(float64(sn.Errors)))

	if len(sn.Breaker) > 0 {
		header("breaker_transitions_total", "counter", "Circuit-breaker state transitions by new state.")
		states := make([]string, 0, len(sn.Breaker))
		for s := range sn.Breaker {
			states = append(states, s)
		}
		sort.Strings(states)
		for _, s := range states {
			fmt.Fprintf(&b, "mozart_breaker_transitions_total{state=%q} %s\n", s, promFloat(float64(sn.Breaker[s])))
		}
	}

	if len(sn.Pressure) > 0 {
		header("pressure_transitions_total", "counter", "Governor pressure-level transitions by level entered.")
		levels := make([]string, 0, len(sn.Pressure))
		for l := range sn.Pressure {
			levels = append(levels, l)
		}
		sort.Strings(levels)
		for _, l := range levels {
			fmt.Fprintf(&b, "mozart_pressure_transitions_total{level=%q} %s\n", l, promFloat(float64(sn.Pressure[l])))
		}
	}

	if sn.SpillFrames > 0 {
		header("spill_bytes_total", "counter", "Out-of-core merge-partial payload bytes written to the spill store.")
		fmt.Fprintf(&b, "mozart_spill_bytes_total %s\n", promFloat(float64(sn.SpillBytes)))
		header("spill_frames_total", "counter", "Out-of-core merge-partial frames written to the spill store.")
		fmt.Fprintf(&b, "mozart_spill_frames_total %s\n", promFloat(float64(sn.SpillFrames)))
	}

	// Tuner families (Options.Tuner): rendered only for sessions that
	// closed the telemetry→plan loop, so untuned sessions emit nothing.
	if len(sn.Tuner) > 0 {
		header("tuner_evaluations_total", "counter", "Evaluations by batch provenance (static, sweeping, calibrated).")
		provs := make([]string, 0, len(sn.Tuner))
		for p := range sn.Tuner {
			provs = append(provs, p)
		}
		sort.Strings(provs)
		for _, p := range provs {
			fmt.Fprintf(&b, "mozart_tuner_evaluations_total{provenance=%q} %s\n", p, promFloat(float64(sn.Tuner[p])))
		}
		header("tuner_batch_elems", "gauge", "Last tuner batch override in elements (0 = static policy).")
		fmt.Fprintf(&b, "mozart_tuner_batch_elems %s\n", promFloat(float64(sn.TunerBatchElems)))
		header("tuner_elems_per_second", "gauge", "Last evaluation's measured throughput fed back to the tuner.")
		fmt.Fprintf(&b, "mozart_tuner_elems_per_second %s\n", promFloat(sn.TunerElemsPerSec))
	}

	// Registered live function metrics (Governor reserved bytes, SLO burn
	// rates and the like), grouped by family name so samples of one family
	// stay consecutive.
	for i := 0; i < len(sn.Gauges); {
		g := sn.Gauges[i]
		typ := g.Type
		if typ == "" {
			typ = "gauge"
		}
		header(g.Name, typ, g.Help)
		for ; i < len(sn.Gauges) && sn.Gauges[i].Name == g.Name; i++ {
			fmt.Fprintf(&b, "mozart_%s%s %s\n", sn.Gauges[i].Name, sn.Gauges[i].Labels, promFloat(sn.Gauges[i].Value))
		}
	}

	// Evaluate latency histogram (cumulative, Prometheus convention). In
	// OpenMetrics mode each bucket carries its last traced observation as
	// an exemplar: `# {trace_id="..."} value timestamp`.
	h := sn.EvalLatency
	if h.Count > 0 {
		header("evaluate_duration_seconds", "histogram", "Wall-clock duration of Evaluate rounds.")
		exemplar := func(bucket int) string {
			if !openMetrics || bucket >= len(h.Exemplars) {
				return ""
			}
			ex := h.Exemplars[bucket]
			if ex.TraceID == "" {
				return ""
			}
			return fmt.Sprintf(" # {trace_id=%q} %s %.3f", ex.TraceID, promFloat(ex.Value), float64(ex.Time.UnixMilli())/1e3)
		}
		var cum int64
		for i, le := range h.BucketsLE {
			cum += h.Counts[i]
			fmt.Fprintf(&b, "mozart_evaluate_duration_seconds_bucket{le=%q} %d%s\n", promFloat(le), cum, exemplar(i))
		}
		fmt.Fprintf(&b, "mozart_evaluate_duration_seconds_bucket{le=\"+Inf\"} %d%s\n", h.Count, exemplar(len(h.BucketsLE)))
		fmt.Fprintf(&b, "mozart_evaluate_duration_seconds_sum %s\n", promFloat(h.SumSeconds))
		fmt.Fprintf(&b, "mozart_evaluate_duration_seconds_count %d\n", h.Count)
	}

	// Per-stage series, one metric family at a time (the exposition format
	// requires all samples of a family to be consecutive).
	stageSeries := func(fams []struct {
		name string
		help string
		val  func(*StageMetrics) float64
	}, typ string, include func(*StageMetrics) bool) {
		for _, fam := range fams {
			wrote := false
			for i := range sn.Stages {
				s := &sn.Stages[i]
				if include != nil && !include(s) {
					continue
				}
				if !wrote {
					header(fam.name, typ, fam.help)
					wrote = true
				}
				fmt.Fprintf(&b, "mozart_%s{stage=\"%d\",calls=%q,split=%q} %s\n",
					fam.name, s.Stage, s.Calls, s.Split, promFloat(fam.val(s)))
			}
		}
	}
	stageSeries(promStageCounters, "counter", nil)
	stageSeries(promStageGauges, "gauge", nil)
	stageSeries(promStageSim, "counter", func(s *StageMetrics) bool { return !s.Sim.Zero() })

	if openMetrics {
		b.WriteString("# EOF\n")
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// promFloat renders a sample value: integers without an exponent, other
// values via the shortest round-trip representation (%g-style), matching
// what Prometheus' own text parser accepts.
func promFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
