package obs

import (
	"expvar"
	"fmt"
	"sort"
	"strings"
	"sync"
	"text/tabwriter"
	"time"
)

// StageMetrics aggregates the counters of one plan stage (identified by
// stage index and call pipeline, so repeated evaluations of the same
// program accumulate into the same row).
type StageMetrics struct {
	Stage int    `json:"stage"`
	Calls string `json:"calls"`
	Split string `json:"split"`

	Runs    int64 `json:"runs"`    // stage executions (one per evaluation)
	Batches int64 `json:"batches"` // batches executed
	Elems   int64 `json:"elems"`   // elements processed
	Bytes   int64 `json:"bytes"`   // bytes moved under the §5.2 model

	BatchElems int64 `json:"batch_elems"` // last chosen batch size
	Workers    int   `json:"workers"`     // last worker count
	// CacheUtilization is the batch working set (batch × Σ elem bytes)
	// over the heuristic's C×L2 target: 1.0 means the batch exactly fills
	// the budget; <1 means admission control or a small input shrank it.
	CacheUtilization float64 `json:"cache_utilization"`

	SplitNS int64 `json:"split_ns"`
	TaskNS  int64 `json:"task_ns"`
	MergeNS int64 `json:"merge_ns"`

	Retries         int64 `json:"retries"`
	Fallbacks       int64 `json:"fallbacks"`
	AdmissionWaitNS int64 `json:"admission_wait_ns"`
	Errors          int64 `json:"errors"`

	// Sim accumulates the stage's simulated hardware counters
	// (EvStageCounters): the plan IR lowered into the memsim machine model.
	// All-zero when the session does not simulate counters.
	Sim CacheCounters `json:"sim"`
}

// Throughput is the stage's measured processing rate in elements per
// second: elements processed over the attributed split+task+merge time. 0
// when the stage has recorded no timed work. This is the per-stage feedback
// signal a batch tuner calibrates on.
func (s StageMetrics) Throughput() float64 {
	work := s.SplitNS + s.TaskNS + s.MergeNS
	if work <= 0 || s.Elems <= 0 {
		return 0
	}
	return float64(s.Elems) / (float64(work) / 1e9)
}

// StageThroughputs returns each stage's measured throughput (elems/s),
// keyed "stage|calls" the way the sink itself keys rows; stages with no
// timed work are omitted.
func (sn MetricsSnapshot) StageThroughputs() map[string]float64 {
	out := map[string]float64{}
	for _, s := range sn.Stages {
		if t := s.Throughput(); t > 0 {
			out[fmt.Sprintf("%d|%s", s.Stage, s.Calls)] = t
		}
	}
	return out
}

// evalLatencyBucketsLE are the upper bounds, in seconds, of the evaluate
// latency histogram (Prometheus-style cumulative buckets; the implicit
// +Inf bucket is LatencyHistogram.Count).
var evalLatencyBucketsLE = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Exemplar ties one observed latency to the trace that produced it — the
// OpenMetrics exemplar model: a scrape can jump from a histogram bucket
// straight to the span tree of a request that landed in it.
type Exemplar struct {
	TraceID string    `json:"trace_id"`
	Value   float64   `json:"value"`
	Time    time.Time `json:"time"`
}

// LatencyHistogram is a fixed-bucket latency distribution. Counts[i] holds
// the observations with latency <= BucketsLE[i] seconds that exceeded
// BucketsLE[i-1]; observations above the last bound are only in Count.
// Exemplars, when present, has len(BucketsLE)+1 entries — one per bucket
// plus +Inf — each the last traced observation that landed there.
type LatencyHistogram struct {
	BucketsLE  []float64  `json:"buckets_le"`
	Counts     []int64    `json:"counts"`
	Count      int64      `json:"count"`
	SumSeconds float64    `json:"sum_seconds"`
	Exemplars  []Exemplar `json:"exemplars,omitempty"`
}

func (h *LatencyHistogram) observe(seconds float64, trace *TraceContext) {
	if h.BucketsLE == nil {
		h.BucketsLE = evalLatencyBucketsLE
		h.Counts = make([]int64, len(evalLatencyBucketsLE))
	}
	h.Count++
	h.SumSeconds += seconds
	bucket := len(h.BucketsLE) // +Inf
	for i, le := range h.BucketsLE {
		if seconds <= le {
			h.Counts[i]++
			bucket = i
			break
		}
	}
	if trace != nil && !trace.TraceID.IsZero() {
		if h.Exemplars == nil {
			h.Exemplars = make([]Exemplar, len(h.BucketsLE)+1)
		}
		h.Exemplars[bucket] = Exemplar{TraceID: trace.TraceID.String(), Value: seconds, Time: time.Now()}
	}
}

// clone returns a deep copy safe to hand out of the sink's lock.
func (h LatencyHistogram) clone() LatencyHistogram {
	h.BucketsLE = append([]float64(nil), h.BucketsLE...)
	h.Counts = append([]int64(nil), h.Counts...)
	h.Exemplars = append([]Exemplar(nil), h.Exemplars...)
	return h
}

// GaugeSample is one evaluated registered function metric (RegisterGauge /
// RegisterFunc): a live value read at snapshot time, e.g. a Governor's
// reserved bytes or a tenant's SLO burn rate.
type GaugeSample struct {
	Name   string  `json:"name"`
	Help   string  `json:"help,omitempty"`
	Type   string  `json:"type,omitempty"`   // exposition type: "" means gauge
	Labels string  `json:"labels,omitempty"` // rendered label block, `{k="v",...}` or ""
	Value  float64 `json:"value"`
}

// MetricsSnapshot is one consistent copy of everything a Metrics sink has
// aggregated.
type MetricsSnapshot struct {
	Evaluations int64          `json:"evaluations"`
	Errors      int64          `json:"errors"`                        // evaluations that ended in an error
	Breaker     map[string]int `json:"breaker_transitions,omitempty"` // state -> count
	// Pressure counts Governor pressure-level transitions by the level
	// entered ("normal", "constrained", "out-of-core").
	Pressure map[string]int `json:"pressure_transitions,omitempty"`
	// SpillBytes/SpillFrames count out-of-core merge partials written to
	// the spill store (EvSpill append events).
	SpillBytes  int64 `json:"spill_bytes,omitempty"`
	SpillFrames int64 `json:"spill_frames,omitempty"`
	// Tuner counts evaluations by batch provenance ("static", "sweeping",
	// "calibrated") — the EvTune stream of a session with Options.Tuner.
	// Empty without a tuner.
	Tuner map[string]int64 `json:"tuner_evals,omitempty"`
	// TunerBatchElems is the last tuner batch override (0 = static policy)
	// and TunerElemsPerSec the last evaluation's measured throughput — the
	// feedback signal the tuner calibrates on.
	TunerBatchElems  int64   `json:"tuner_batch_elems,omitempty"`
	TunerElemsPerSec float64 `json:"tuner_elems_per_sec,omitempty"`
	// Gauges are the registered live gauges, evaluated at snapshot time
	// and sorted by name then labels.
	Gauges []GaugeSample `json:"gauges,omitempty"`
	// EvalLatency is the evaluate-duration distribution (session-end spans).
	EvalLatency LatencyHistogram `json:"eval_latency"`
	Stages      []StageMetrics   `json:"stages"`
}

// Metrics is an aggregating sink: it folds the event stream into per-stage
// counters. Emit is concurrency-safe and does constant work; read the
// result with Snapshot, render it with String, or export it with Publish.
type Metrics struct {
	mu          sync.Mutex
	evals       int64
	errors      int64
	brk         map[string]int
	pressure    map[string]int
	spillBytes  int64
	spillFrames int64
	tune        map[string]int64
	tuneBatch   int64
	tuneThr     float64
	gauges      []registeredGauge
	stages      map[string]*StageMetrics
	latency     LatencyHistogram
}

type registeredGauge struct {
	name, help, labels string
	typ                string // exposition type; "" renders as gauge
	fn                 func() float64
}

// NewMetrics returns an empty metrics sink.
func NewMetrics() *Metrics {
	return &Metrics{brk: map[string]int{}, pressure: map[string]int{}, stages: map[string]*StageMetrics{}}
}

// RegisterGauge registers a live gauge evaluated on every Snapshot (and so
// on every /metrics scrape): fn is called outside the sink's lock and must
// be safe for concurrent use. labels (may be nil) become the sample's label
// block with keys rendered in sorted order. Registering the same
// name+labels twice replaces the previous function.
func (m *Metrics) RegisterGauge(name, help string, labels map[string]string, fn func() float64) {
	m.RegisterFunc(name, help, "gauge", labels, fn)
}

// RegisterFunc is RegisterGauge with an explicit exposition type: "counter"
// for function metrics that only accumulate (their names should end in
// _total by convention), "gauge" for everything else.
func (m *Metrics) RegisterFunc(name, help, typ string, labels map[string]string, fn func() float64) {
	if typ == "" {
		typ = "gauge"
	}
	lb := renderLabels(labels)
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range m.gauges {
		if m.gauges[i].name == name && m.gauges[i].labels == lb {
			m.gauges[i] = registeredGauge{name: name, help: help, labels: lb, typ: typ, fn: fn}
			return
		}
	}
	m.gauges = append(m.gauges, registeredGauge{name: name, help: help, labels: lb, typ: typ, fn: fn})
}

// renderLabels renders a label map as `{k="v",...}` with sorted keys, or ""
// for an empty map.
func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

func (m *Metrics) stage(e Event) *StageMetrics {
	key := fmt.Sprintf("%d|%s", e.Stage, e.Calls)
	sm := m.stages[key]
	if sm == nil {
		sm = &StageMetrics{Stage: e.Stage, Calls: e.Calls}
		m.stages[key] = sm
	}
	return sm
}

// Emit folds one event into the aggregates.
func (m *Metrics) Emit(e Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch e.Kind {
	case EvSessionBegin:
		m.evals++
	case EvSessionEnd:
		m.latency.observe(e.Dur.Seconds(), e.Trace)
		if e.Detail != "" {
			m.errors++
		}
	case EvStageBegin:
		sm := m.stage(e)
		sm.Runs++
		sm.Split = e.Split
		sm.BatchElems = e.BatchElems
		sm.Workers = e.Workers
		if e.CacheBytes > 0 {
			sm.CacheUtilization = float64(e.BatchElems*e.Bytes) / float64(e.CacheBytes)
		}
	case EvStageEnd:
		if e.Detail != "" {
			m.stage(e).Errors++
		}
	case EvBatch:
		sm := m.stage(e)
		sm.Batches++
		sm.Elems += e.End - e.Start
		sm.Bytes += e.Bytes
		sm.SplitNS += e.SplitNS
		sm.TaskNS += e.TaskNS
	case EvMerge:
		m.stage(e).MergeNS += int64(e.Dur)
	case EvRetry:
		m.stage(e).Retries++
	case EvAdmission:
		sm := m.stage(e)
		sm.AdmissionWaitNS += int64(e.Dur)
	case EvFallback:
		m.stage(e).Fallbacks++
	case EvBreaker:
		m.brk[e.Detail]++
	case EvStageCounters:
		m.stage(e).Sim.add(e.Counters)
	case EvPressure:
		if m.pressure == nil {
			m.pressure = map[string]int{}
		}
		m.pressure[e.Detail]++
	case EvSpill:
		// Count written frames once; replay events re-read the same bytes.
		if e.Detail == "append" {
			m.spillBytes += e.Bytes
			m.spillFrames++
		}
	case EvTune:
		if m.tune == nil {
			m.tune = map[string]int64{}
		}
		m.tune[e.Detail]++
		m.tuneBatch = e.BatchElems
		if e.Elems > 0 && e.Dur > 0 {
			m.tuneThr = float64(e.Elems) / e.Dur.Seconds()
		}
	}
}

// Snapshot returns a copy of the aggregated metrics, stages sorted by
// index then calls.
func (m *Metrics) Snapshot() MetricsSnapshot {
	m.mu.Lock()
	out := MetricsSnapshot{Evaluations: m.evals, Errors: m.errors, EvalLatency: m.latency.clone(),
		SpillBytes: m.spillBytes, SpillFrames: m.spillFrames,
		TunerBatchElems: m.tuneBatch, TunerElemsPerSec: m.tuneThr}
	if len(m.tune) > 0 {
		out.Tuner = make(map[string]int64, len(m.tune))
		for k, v := range m.tune {
			out.Tuner[k] = v
		}
	}
	if len(m.brk) > 0 {
		out.Breaker = make(map[string]int, len(m.brk))
		for k, v := range m.brk {
			out.Breaker[k] = v
		}
	}
	if len(m.pressure) > 0 {
		out.Pressure = make(map[string]int, len(m.pressure))
		for k, v := range m.pressure {
			out.Pressure[k] = v
		}
	}
	gauges := append([]registeredGauge(nil), m.gauges...)
	for _, sm := range m.stages {
		out.Stages = append(out.Stages, *sm)
	}
	m.mu.Unlock()

	// Evaluate registered gauges outside the lock: a gauge function may
	// itself take locks (Governor.InUse) and must not order against Emit.
	for _, g := range gauges {
		out.Gauges = append(out.Gauges, GaugeSample{Name: g.name, Help: g.help, Type: g.typ, Labels: g.labels, Value: g.fn()})
	}
	sort.Slice(out.Gauges, func(i, j int) bool {
		if out.Gauges[i].Name != out.Gauges[j].Name {
			return out.Gauges[i].Name < out.Gauges[j].Name
		}
		return out.Gauges[i].Labels < out.Gauges[j].Labels
	})
	sort.Slice(out.Stages, func(i, j int) bool {
		if out.Stages[i].Stage != out.Stages[j].Stage {
			return out.Stages[i].Stage < out.Stages[j].Stage
		}
		return out.Stages[i].Calls < out.Stages[j].Calls
	})
	return out
}

// String renders the snapshot as a per-stage table.
func (m *Metrics) String() string {
	sn := m.Snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "evaluations: %d\n", sn.Evaluations)
	if len(sn.Breaker) > 0 {
		states := make([]string, 0, len(sn.Breaker))
		for k := range sn.Breaker {
			states = append(states, k)
		}
		sort.Strings(states)
		for _, k := range states {
			fmt.Fprintf(&b, "breaker %s: %d\n", k, sn.Breaker[k])
		}
	}
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "stage\tcalls\tsplit\tbatches\telems\tbytes\tbatch\tworkers\tcache util\tsplit\ttask\tmerge\tretries\tfallbacks\tadm wait")
	for _, s := range sn.Stages {
		fmt.Fprintf(w, "%d\t%s\t%s\t%d\t%d\t%d\t%d\t%d\t%.2f\t%v\t%v\t%v\t%d\t%d\t%v\n",
			s.Stage, s.Calls, s.Split, s.Batches, s.Elems, s.Bytes,
			s.BatchElems, s.Workers, s.CacheUtilization,
			time.Duration(s.SplitNS), time.Duration(s.TaskNS), time.Duration(s.MergeNS),
			s.Retries, s.Fallbacks, time.Duration(s.AdmissionWaitNS))
	}
	w.Flush()

	// Simulated hardware counters, when any stage carries them.
	var anySim bool
	for _, s := range sn.Stages {
		if !s.Sim.Zero() {
			anySim = true
			break
		}
	}
	if anySim {
		w = tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "stage\tcalls\tsim L1 miss\tsim L2 miss\tsim LLC miss\tsim DRAM bytes\tsim time")
		missPct := func(hits, misses int64) string {
			if hits+misses == 0 {
				return "-"
			}
			return fmt.Sprintf("%.1f%%", 100*float64(misses)/float64(hits+misses))
		}
		for _, s := range sn.Stages {
			if s.Sim.Zero() {
				continue
			}
			fmt.Fprintf(w, "%d\t%s\t%s\t%s\t%s\t%d\t%v\n",
				s.Stage, s.Calls,
				missPct(s.Sim.L1Hits, s.Sim.L1Misses),
				missPct(s.Sim.L2Hits, s.Sim.L2Misses),
				missPct(s.Sim.LLCHits, s.Sim.LLCMisses),
				s.Sim.DRAMBytes, time.Duration(s.Sim.ModelNS))
		}
		w.Flush()
	}
	return b.String()
}

// publishMu serializes Publish calls so the exists-check and the
// expvar.Publish are atomic with respect to each other.
var publishMu sync.Mutex

// Publish exports the sink under the given expvar name (served on
// /debug/vars by net/http when expvar is imported). Publish is idempotent:
// expvar panics on duplicate names, so a name that is already taken —
// whether by this sink or another variable — makes Publish a guarded
// no-op instead of crashing the process (two sessions publishing under the
// same default name is the common case).
func (m *Metrics) Publish(name string) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return m.Snapshot() }))
}
