// Package obs is the Mozart runtime's observability layer: a structured
// event taxonomy covering everything the paper's own evaluation needed to
// see inside the runtime (the Figure 5 phase breakdown, the Figure 6
// batch-size behaviour), plus the resilience machinery added on top of it
// (retries, circuit breakers, admission control, whole-call fallback).
//
// The runtime emits events through the Tracer interface. A nil Tracer is
// the fast path: internal/core guards every emission site with a nil check,
// so disabled tracing adds no allocations and no work to the per-batch hot
// loop. Two sinks ship with the package:
//
//   - ChromeTrace renders events in the Chrome trace_event JSON format, one
//     lane per worker, viewable in chrome://tracing or https://ui.perfetto.dev.
//   - Metrics aggregates per-stage counters (batches, bytes moved under the
//     §5.2 model, cache-batch utilization, retry/breaker/admission counts)
//     and exports them via expvar and a plain-text snapshot.
//
// Events are plain value structs: emitting one never forces a heap
// allocation at the call site, and sinks that need to retain events copy
// them.
package obs

import "time"

// EventKind classifies a runtime event.
type EventKind uint8

// The event taxonomy. Span events (SessionEnd, Plan, StageEnd, Batch,
// Merge, Admission, Fallback) carry a Dur covering the work they describe;
// the remaining kinds are instants.
const (
	// EvSessionBegin marks the start of one Evaluate round. Elems carries
	// the number of pending captured calls.
	EvSessionBegin EventKind = iota
	// EvSessionEnd closes an Evaluate round; Dur spans the whole
	// evaluation and Detail carries the error, if any.
	EvSessionEnd
	// EvPlan reports the produced plan: Stages counts the stages, Dur is
	// the planner time, and Detail lists each stage's call pipeline.
	EvPlan
	// EvStageBegin reports a stage about to execute, with its resolved
	// split detail: Calls (pipeline), Split (split type), Elems (total
	// elements), BatchElems and Workers (after admission control), Bytes
	// (Σ element bytes across split inputs), and CacheBytes (the C×L2
	// target the batch heuristic sized against).
	EvStageBegin
	// EvStageEnd closes a stage; Dur spans split execution including any
	// fallback re-execution, Detail carries the error, if any.
	EvStageEnd
	// EvBatch is one executed batch: Worker identifies the lane, Start/End
	// the element range, Dur the whole batch, and SplitNS/TaskNS the phase
	// attribution within it (§5.2 Steps 1-2). Bytes is the batch's moved
	// bytes under the §5.2 model: (End-Start) × Σ element bytes. Attempt
	// is >1 when the batch succeeded on a retry replay.
	EvBatch
	// EvMerge is a merge span (§5.2 Step 3): per-worker pre-merges carry
	// the worker lane, the final merge runs on RuntimeLane.
	EvMerge
	// EvRetry is an instant preceding a batch replay: Attempt numbers the
	// failed attempt, Detail carries the transient error.
	EvRetry
	// EvBreaker is a circuit-breaker transition for the annotation named
	// in Calls; Detail is the new state ("open", "reopened", "half-open",
	// "closed").
	EvBreaker
	// EvAdmission is the memory-governor gate before a stage: Dur is the
	// wait, Bytes the reserved footprint, BatchElems/Workers the
	// possibly-shrunken execution shape.
	EvAdmission
	// EvFallback is a whole-call re-execution after an annotation fault;
	// Dur spans the re-execution, Detail carries the original fault.
	EvFallback
	// EvStageCounters reports a stage's simulated hardware counters: the
	// evaluation's plan IR lowered into the memsim machine model
	// (internal/planlower) and replayed through the cache hierarchy.
	// Counters carries the L1/L2/LLC hit/miss counts and DRAM bytes;
	// Stage/Calls/Split identify the stage the same way EvStageBegin does,
	// so metric sinks fold both into the same row. Emitted on the runtime
	// lane, once per stage per evaluation, only under
	// Options.SimulateCounters.
	EvStageCounters
	// EvPressure is a Governor pressure-level transition: Detail carries
	// the new level ("normal", "constrained", "out-of-core"), Bytes the
	// reserved bytes at the transition, Stage/Calls the stage whose
	// admission triggered it. Emitted on the runtime lane, only when the
	// level actually changed.
	EvPressure
	// EvSpill is one merge-side partial written to (or replayed from) the
	// out-of-core spill store: Bytes is the frame payload size, Start/End
	// the element window it covers, Detail "append" or "replay". Emitted
	// on the runtime lane by the streaming executor.
	EvSpill
	// EvTune closes the telemetry→plan loop: one per evaluation when a
	// Tuner (Options.Tuner) is configured, after execution. Detail carries
	// the batch provenance ("static", "sweeping", "calibrated"), BatchElems
	// the tuner's batch override (0 under the static policy), Workers the
	// worker count the evaluation ran with, Elems/Bytes the split-stage
	// totals processed, and Dur the execution wall time — the measured
	// throughput the tuner folds into its next decision. Emitted on the
	// runtime lane.
	EvTune
)

// String returns the kind's stable lowercase name.
func (k EventKind) String() string {
	switch k {
	case EvSessionBegin:
		return "session-begin"
	case EvSessionEnd:
		return "session-end"
	case EvPlan:
		return "plan"
	case EvStageBegin:
		return "stage-begin"
	case EvStageEnd:
		return "stage-end"
	case EvBatch:
		return "batch"
	case EvMerge:
		return "merge"
	case EvRetry:
		return "retry"
	case EvBreaker:
		return "breaker"
	case EvAdmission:
		return "admission"
	case EvFallback:
		return "fallback"
	case EvStageCounters:
		return "stage-counters"
	case EvPressure:
		return "pressure"
	case EvSpill:
		return "spill"
	case EvTune:
		return "tune"
	}
	return "unknown"
}

// RuntimeLane is the Worker value for events produced by the runtime's
// coordinating thread rather than a worker goroutine (planning, admission,
// final merges, breaker transitions).
const RuntimeLane = -1

// Event is one structured runtime event. It is a flat value struct so the
// runtime can emit it without allocating; fields that do not apply to a
// kind are zero. For span kinds, Time is the END of the span and Dur its
// length (start = Time.Add(-Dur)).
type Event struct {
	Kind EventKind
	Time time.Time     // instant, or span end
	Dur  time.Duration // span length; 0 for instants

	Stage  int // stage index within the plan; -1 when not stage-scoped
	Worker int // worker lane, or RuntimeLane

	Start, End int64 // element range for batch-scoped kinds

	Calls string // "a -> b -> c" pipeline (stage kinds) or annotation name (breaker)
	Split string // split type rendering, "whole" for unsplit stages

	SplitNS, TaskNS int64 // per-batch phase attribution (EvBatch)

	Elems      int64 // stage total elements (stage kinds), pending calls (session begin)
	Bytes      int64 // Σ elem bytes (stage begin), moved bytes (batch), reserved bytes (admission)
	BatchElems int64 // chosen batch size in elements
	CacheBytes int64 // the batch heuristic's C×L2 byte target
	Workers    int   // worker count for the stage
	Stages     int   // stage count (EvPlan)
	Attempt    int   // retry attempt number

	Detail string // human-readable extra: error text, breaker state, plan summary

	// Counters is the simulated hardware-counter payload of
	// EvStageCounters; zero for every other kind.
	Counters CacheCounters

	// Trace, when non-nil, is the request-scoped trace context the session
	// was evaluated under (core.Options.Trace). The runtime stamps it on
	// session-begin and session-end events — a shared pointer, so stamping
	// costs no allocation — letting shared sinks (latency exemplars, flight
	// recordings) key what they retain by the originating request's trace
	// id without a per-request sink.
	Trace *TraceContext `json:"trace,omitempty"`
}

// CacheCounters are simulated per-stage hardware counters, produced by
// lowering the evaluation's plan IR into the memsim machine model. Hit and
// miss counts come from the representative thread's access trace (their
// ratios are the signal); DRAMBytes is scaled to full size and all
// threads; ModelNS is the stage's modeled runtime.
type CacheCounters struct {
	L1Hits    int64 `json:"l1_hits"`
	L1Misses  int64 `json:"l1_misses"`
	L2Hits    int64 `json:"l2_hits"`
	L2Misses  int64 `json:"l2_misses"`
	LLCHits   int64 `json:"llc_hits"`
	LLCMisses int64 `json:"llc_misses"`
	DRAMBytes int64 `json:"dram_bytes"`
	ModelNS   int64 `json:"model_ns"`
}

// Zero reports whether no counter was recorded.
func (c CacheCounters) Zero() bool { return c == CacheCounters{} }

// add accumulates o into c.
func (c *CacheCounters) add(o CacheCounters) {
	c.L1Hits += o.L1Hits
	c.L1Misses += o.L1Misses
	c.L2Hits += o.L2Hits
	c.L2Misses += o.L2Misses
	c.LLCHits += o.LLCHits
	c.LLCMisses += o.LLCMisses
	c.DRAMBytes += o.DRAMBytes
	c.ModelNS += o.ModelNS
}

// Tracer receives runtime events. Implementations must be safe for
// concurrent use: workers emit batch events in parallel.
//
// Emit is called synchronously from the runtime's hot path, so sinks should
// do bounded work per event (append to a buffer, bump counters) and defer
// rendering to a later snapshot call.
type Tracer interface {
	Emit(Event)
}

// multi fans one event out to several tracers.
type multi []Tracer

func (m multi) Emit(e Event) {
	for _, t := range m {
		if t != nil {
			t.Emit(e)
		}
	}
}

// Multi returns a Tracer that forwards every event to each non-nil tracer
// in ts. Multi(nil...) and Multi() return a no-op tracer; prefer leaving
// Options.Tracer nil to disable tracing entirely, which is cheaper.
func Multi(ts ...Tracer) Tracer {
	out := make(multi, 0, len(ts))
	for _, t := range ts {
		if t != nil {
			out = append(out, t)
		}
	}
	return out
}
