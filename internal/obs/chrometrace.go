package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// ChromeTrace renders runtime events in the Chrome trace_event JSON format
// (the "JSON Array Format" with a traceEvents wrapper), loadable in
// chrome://tracing and https://ui.perfetto.dev. The runtime's coordinating
// thread and each worker get their own lane: tid 0 is the runtime lane
// (evaluate/plan/stage/merge/admission spans, breaker instants), tid w+1 is
// worker w's lane (batch spans with nested split and task phases, retry
// instants).
//
// Emit is concurrency-safe and does bounded work (one render + append under
// a mutex); call WriteTo/WriteFile after evaluation to produce the JSON.
type ChromeTrace struct {
	mu     sync.Mutex
	base   time.Time
	events []chromeEvent
	lanes  map[int]bool // tids seen, for thread_name metadata
}

// chromeEvent is one trace_event record. Complete spans use Ph "X" with
// Ts/Dur in microseconds; instants use Ph "i" with scope "t" (thread).
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// NewChromeTrace returns a sink whose timestamps are relative to now.
func NewChromeTrace() *ChromeTrace { return NewChromeTraceAt(time.Now()) }

// NewChromeTraceAt returns a sink whose timestamps are relative to base,
// for deterministic output in tests.
func NewChromeTraceAt(base time.Time) *ChromeTrace {
	return &ChromeTrace{base: base, lanes: map[int]bool{}}
}

// tid maps an event's worker lane to a trace thread id.
func tid(worker int) int {
	if worker == RuntimeLane {
		return 0
	}
	return worker + 1
}

// us converts a duration to trace microseconds.
func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// Emit renders e into trace_event records.
func (c *ChromeTrace) Emit(e Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lanes[tid(e.Worker)] = true

	end := us(e.Time.Sub(c.base))
	start := end - us(e.Dur)
	span := func(name, cat string, args map[string]any) {
		c.events = append(c.events, chromeEvent{
			Name: name, Cat: cat, Ph: "X", Ts: start, Dur: us(e.Dur),
			Pid: 1, Tid: tid(e.Worker), Args: args,
		})
	}
	instant := func(name, cat string, args map[string]any) {
		c.events = append(c.events, chromeEvent{
			Name: name, Cat: cat, Ph: "i", Ts: end,
			Pid: 1, Tid: tid(e.Worker), Scope: "t", Args: args,
		})
	}

	switch e.Kind {
	case EvSessionBegin:
		instant("session begin", "session", map[string]any{"pending_calls": e.Elems})
	case EvSessionEnd:
		args := map[string]any{}
		if e.Detail != "" {
			args["error"] = e.Detail
		}
		span("evaluate", "session", args)
	case EvPlan:
		span("plan", "planner", map[string]any{"stages": e.Stages, "plan": e.Detail})
	case EvStageBegin:
		instant(fmt.Sprintf("stage %d begin", e.Stage), "stage", map[string]any{
			"calls": e.Calls, "split": e.Split, "elems": e.Elems,
			"batch_elems": e.BatchElems, "workers": e.Workers,
			"elem_bytes": e.Bytes, "cache_target_bytes": e.CacheBytes,
		})
	case EvStageEnd:
		args := map[string]any{"calls": e.Calls}
		if e.Detail != "" {
			args["error"] = e.Detail
		}
		span(fmt.Sprintf("stage %d", e.Stage), "stage", args)
	case EvBatch:
		args := map[string]any{
			"stage": e.Stage, "elems": e.End - e.Start, "bytes": e.Bytes,
		}
		if e.Attempt > 1 {
			args["attempt"] = e.Attempt
		}
		span(fmt.Sprintf("batch [%d,%d)", e.Start, e.End), "batch", args)
		// Nested phase spans: split at the front of the batch, then task.
		// chrome://tracing nests X events by containment.
		split := float64(e.SplitNS) / 1e3
		task := float64(e.TaskNS) / 1e3
		c.events = append(c.events,
			chromeEvent{Name: "split", Cat: "phase", Ph: "X", Ts: start, Dur: split, Pid: 1, Tid: tid(e.Worker)},
			chromeEvent{Name: "task", Cat: "phase", Ph: "X", Ts: start + split, Dur: task, Pid: 1, Tid: tid(e.Worker)},
		)
	case EvMerge:
		span("merge", "phase", map[string]any{"stage": e.Stage})
	case EvRetry:
		instant(fmt.Sprintf("retry [%d,%d) attempt %d", e.Start, e.End, e.Attempt), "retry",
			map[string]any{"stage": e.Stage, "error": e.Detail})
	case EvBreaker:
		instant(fmt.Sprintf("breaker %s: %s", e.Calls, e.Detail), "breaker",
			map[string]any{"annotation": e.Calls, "state": e.Detail})
	case EvAdmission:
		span("admission wait", "admission", map[string]any{
			"stage": e.Stage, "reserved_bytes": e.Bytes,
			"batch_elems": e.BatchElems, "workers": e.Workers,
		})
	case EvFallback:
		span(fmt.Sprintf("stage %d whole-call fallback", e.Stage), "fallback",
			map[string]any{"fault": e.Detail})
	}
}

// Events returns the number of rendered trace records so far.
func (c *ChromeTrace) Events() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// WriteTo emits the collected records as {"traceEvents": [...]}, preceded
// by thread_name metadata naming the runtime and worker lanes. Records are
// sorted by (tid, ts) so output is deterministic given a deterministic
// event feed.
func (c *ChromeTrace) WriteTo(w io.Writer) (int64, error) {
	c.mu.Lock()
	events := append([]chromeEvent(nil), c.events...)
	lanes := make([]int, 0, len(c.lanes))
	for t := range c.lanes {
		lanes = append(lanes, t)
	}
	c.mu.Unlock()

	sort.Ints(lanes)
	var all []chromeEvent
	for _, t := range lanes {
		name := "runtime"
		if t > 0 {
			name = fmt.Sprintf("worker %d", t-1)
		}
		all = append(all, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: t,
			Args: map[string]any{"name": name},
		})
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Tid != events[j].Tid {
			return events[i].Tid < events[j].Tid
		}
		return events[i].Ts < events[j].Ts
	})
	all = append(all, events...)

	out, err := json.MarshalIndent(map[string]any{"traceEvents": all}, "", " ")
	if err != nil {
		return 0, err
	}
	out = append(out, '\n')
	n, err := w.Write(out)
	return int64(n), err
}

// WriteFile writes the trace JSON to path.
func (c *ChromeTrace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := c.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
