package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"mozart/internal/plan"
)

// Flight-recorder defaults: recordings retained when the caller passes a
// non-positive capacity, and events retained per recording before the
// recorder starts counting drops instead of buffering.
const (
	defaultFlightRecordings = 8
	defaultFlightEventCap   = 4096
)

// Recording is one completed evaluation as the flight recorder saw it:
// the event stream (up to the event cap), the plan IR rendering, and the
// outcome. Recordings are immutable once returned.
type Recording struct {
	Seq     int64     `json:"seq"`   // recorder-wide evaluation sequence number
	Begin   time.Time `json:"begin"` // EvSessionBegin time
	End     time.Time `json:"end"`   // EvSessionEnd time
	Err     string    `json:"err,omitempty"`
	Plan    string    `json:"plan,omitempty"` // plan.Render of the evaluation's IR
	Events  []Event   `json:"events"`
	Dropped int       `json:"dropped,omitempty"` // events beyond the cap
	// TraceID is the request trace the evaluation ran under (hex), taken
	// from the session events' TraceContext stamp; empty for untraced
	// sessions. A 500/504 response carrying a trace id resolves to its
	// recording through FlightRecorder.Find.
	TraceID string `json:"trace_id,omitempty"`
}

// FlightRecorder retains the last N evaluations' full event streams in a
// bounded ring, for post-hoc inspection of recent behaviour without paying
// for unbounded trace retention. It is the black-box counterpart to the
// Metrics sink: Metrics keeps aggregates forever, the recorder keeps raw
// detail briefly.
//
// The recorder itself is not a Tracer: concurrent sessions sharing one
// tracer cannot be told apart (events carry no session id), so each
// session gets its own handle via Session(), and the handle attributes
// everything it sees to its own in-flight evaluation. Completed recordings
// from all handles land in the shared ring.
type FlightRecorder struct {
	mu       sync.Mutex
	max      int
	eventCap int
	seq      int64
	ring     []Recording // oldest first, len <= max
	onFault  func(Recording)
}

// NewFlightRecorder returns a recorder retaining the last n evaluations
// (n <= 0 selects the default of 8).
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = defaultFlightRecordings
	}
	return &FlightRecorder{max: n, eventCap: defaultFlightEventCap}
}

// SetEventCap bounds the events buffered per recording; beyond it the
// recording only counts drops. n <= 0 restores the default.
func (r *FlightRecorder) SetEventCap(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 {
		n = defaultFlightEventCap
	}
	r.eventCap = n
}

// OnFault registers fn to run whenever a recording completes with an
// error (an evaluation that ended in a StageError or cancellation). fn is
// called synchronously from the session-end emission, outside the
// recorder's lock; keep it bounded.
func (r *FlightRecorder) OnFault(fn func(Recording)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onFault = fn
}

// AutoDump arranges for every faulting evaluation's recording to be
// written to w as JSON (a convenience OnFault). Writes are serialized.
func (r *FlightRecorder) AutoDump(w io.Writer) {
	var mu sync.Mutex
	r.OnFault(func(rec Recording) {
		mu.Lock()
		defer mu.Unlock()
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(rec)
	})
}

// Session returns a handle for one session's evaluations. Wire the handle
// into the session as both Tracer and OnPlan callback; see
// mozart.WithFlightRecorder for the packaged form.
func (r *FlightRecorder) Session() *FlightHandle {
	return &FlightHandle{rec: r}
}

// Recordings returns the retained recordings, oldest first.
func (r *FlightRecorder) Recordings() []Recording {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Recording(nil), r.ring...)
}

// Len reports the number of retained recordings.
func (r *FlightRecorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ring)
}

// Find returns the newest retained recording whose evaluation ran under
// the given trace id (lowercase hex).
func (r *FlightRecorder) Find(traceID string) (Recording, bool) {
	if traceID == "" {
		return Recording{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(r.ring) - 1; i >= 0; i-- {
		if r.ring[i].TraceID == traceID {
			return r.ring[i], true
		}
	}
	return Recording{}, false
}

// Dump writes every retained recording to w as indented JSON.
func (r *FlightRecorder) Dump(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Recordings())
}

// commit pushes a completed recording into the ring and returns the fault
// hook to invoke (outside the lock) if the recording carries an error.
func (r *FlightRecorder) commit(rec *Recording) func(Recording) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	rec.Seq = r.seq
	if len(r.ring) == r.max {
		copy(r.ring, r.ring[1:])
		r.ring[len(r.ring)-1] = *rec
	} else {
		r.ring = append(r.ring, *rec)
	}
	if rec.Err != "" {
		return r.onFault
	}
	return nil
}

// FlightHandle records one session's evaluations into its parent
// FlightRecorder. Emit is safe for concurrent use (workers emit batch
// events in parallel); evaluations on one session are sequential, so the
// handle tracks a single in-flight recording.
type FlightHandle struct {
	rec *FlightRecorder

	mu       sync.Mutex
	cur      *Recording
	eventCap int // snapshot of the recorder's cap, taken at EvSessionBegin
}

// Emit implements Tracer.
func (h *FlightHandle) Emit(e Event) {
	h.mu.Lock()
	switch e.Kind {
	case EvSessionBegin:
		h.rec.mu.Lock()
		h.eventCap = h.rec.eventCap
		h.rec.mu.Unlock()
		h.cur = &Recording{Begin: e.Time, Events: []Event{e}}
		if e.Trace != nil && !e.Trace.TraceID.IsZero() {
			h.cur.TraceID = e.Trace.TraceID.String()
		}
		h.mu.Unlock()
		return
	case EvSessionEnd:
		cur := h.cur
		h.cur = nil
		h.mu.Unlock()
		if cur == nil {
			return
		}
		cur.Events = append(cur.Events, e)
		cur.End = e.Time
		cur.Err = e.Detail
		if onFault := h.rec.commit(cur); onFault != nil {
			onFault(*cur)
		}
		return
	}
	if h.cur != nil {
		if len(h.cur.Events) < h.eventCap {
			h.cur.Events = append(h.cur.Events, e)
		} else {
			h.cur.Dropped++
		}
	}
	h.mu.Unlock()
}

// OnPlan captures the evaluation's plan IR rendering. Wire it into the
// session's OnPlan option (the runtime invokes it between EvSessionBegin
// and the first stage); it is safe to combine with a user callback.
func (h *FlightHandle) OnPlan(p *plan.Plan) {
	rendered := plan.Render(p)
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.cur != nil {
		h.cur.Plan = rendered
	}
}
