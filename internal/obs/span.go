package obs

// Request-scoped distributed tracing. A serving front end parses (or
// generates) a W3C traceparent, roots a SpanRecorder on the request, and
// wires the recorder into the session's Tracer alongside the other sinks:
// every runtime event — admission, plan, stages, batches, merges, retries,
// breaker transitions, pressure episodes, spills, tuner decisions —
// becomes a span in one per-request tree, keyed by the request's trace ID.
// Completed trees land in a SpanRing for /debug/mozart/spans/<traceID>
// lookups, rendered either as an indented tree or as OTLP/JSON (the
// OpenTelemetry protobuf JSON mapping), so any OTLP-speaking backend can
// ingest them without this repo vendoring a client library.

import (
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// TraceID is a W3C trace-id: 16 bytes, rendered as 32 lowercase hex digits.
type TraceID [16]byte

// SpanID is a W3C parent-id/span-id: 8 bytes, 16 lowercase hex digits.
type SpanID [8]byte

// IsZero reports the all-zero (invalid per W3C) trace id.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports the all-zero (invalid per W3C) span id.
func (s SpanID) IsZero() bool { return s == SpanID{} }

func (t TraceID) String() string { return hex.EncodeToString(t[:]) }
func (s SpanID) String() string  { return hex.EncodeToString(s[:]) }

// MarshalJSON renders the id as a hex string (the OTLP JSON convention),
// not a byte array.
func (t TraceID) MarshalJSON() ([]byte, error) { return json.Marshal(t.String()) }
func (s SpanID) MarshalJSON() ([]byte, error)  { return json.Marshal(s.String()) }

// UnmarshalJSON accepts the hex-string form.
func (t *TraceID) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != len(t) {
		return fmt.Errorf("obs: bad trace id %q", s)
	}
	copy(t[:], raw)
	return nil
}

func (s *SpanID) UnmarshalJSON(b []byte) error {
	var str string
	if err := json.Unmarshal(b, &str); err != nil {
		return err
	}
	raw, err := hex.DecodeString(str)
	if err != nil || len(raw) != len(s) {
		return fmt.Errorf("obs: bad span id %q", str)
	}
	copy(s[:], raw)
	return nil
}

// TraceContext is the propagated identity of one request: the W3C
// traceparent fields the runtime threads through core.Options so session
// events (and so flight recordings and latency exemplars) carry the
// request's trace id.
type TraceContext struct {
	TraceID TraceID `json:"trace_id"`
	SpanID  SpanID  `json:"span_id"` // the caller's span: parent of anything emitted under this context
	Sampled bool    `json:"sampled"`
}

// Traceparent renders the context as a version-00 W3C traceparent header
// value: 00-<trace-id>-<parent-id>-<flags>.
func (tc TraceContext) Traceparent() string {
	flags := "00"
	if tc.Sampled {
		flags = "01"
	}
	return "00-" + tc.TraceID.String() + "-" + tc.SpanID.String() + "-" + flags
}

// ParseTraceparent parses a W3C traceparent header value. It accepts
// version 00 exactly, and any future hex version (except the forbidden ff)
// whose value starts with the version-00 fields — per the spec's
// forward-compatibility rule. ok is false on any violation: wrong field
// sizes, non-lowercase-hex content, an all-zero trace or span id, or a
// malformed version.
func ParseTraceparent(header string) (tc TraceContext, ok bool) {
	if header == "" {
		return tc, false
	}
	parts := strings.Split(header, "-")
	if len(parts) < 4 {
		return tc, false
	}
	if _, vok := hexField(parts[0], 2); !vok || parts[0] == "ff" {
		return tc, false
	}
	// Version 00 must have exactly the four fields; future versions may
	// append more, but never fewer.
	if parts[0] == "00" && len(parts) != 4 {
		return tc, false
	}
	traceHex, ok2 := hexField(parts[1], 32)
	if !ok2 {
		return tc, false
	}
	spanHex, ok2 := hexField(parts[2], 16)
	if !ok2 {
		return tc, false
	}
	flags, ok2 := hexField(parts[3], 2)
	if !ok2 {
		return tc, false
	}
	copy(tc.TraceID[:], traceHex)
	copy(tc.SpanID[:], spanHex)
	if tc.TraceID.IsZero() || tc.SpanID.IsZero() {
		return TraceContext{}, false
	}
	tc.Sampled = flags[0]&0x01 != 0
	return tc, true
}

// hexField decodes a lowercase hex field of exactly wantHexDigits digits.
// Uppercase hex is invalid per the W3C spec and rejected.
func hexField(s string, wantHexDigits int) ([]byte, bool) {
	if len(s) != wantHexDigits || strings.ToLower(s) != s {
		return nil, false
	}
	raw, err := hex.DecodeString(s)
	if err != nil {
		return nil, false
	}
	return raw, true
}

// traceRNG generates trace and span ids. math/rand is deliberate: ids need
// uniqueness, not unpredictability, and the locked source keeps generation
// allocation-free on the request path.
var (
	traceRNGMu sync.Mutex
	traceRNG   = rand.New(rand.NewSource(time.Now().UnixNano()))
)

// SeedTraceIDs pins the id generator's sequence (tests).
func SeedTraceIDs(seed int64) {
	traceRNGMu.Lock()
	traceRNG = rand.New(rand.NewSource(seed))
	traceRNGMu.Unlock()
}

// NewTraceContext generates a fresh sampled trace context, for requests
// that arrive without a (valid) traceparent.
func NewTraceContext() TraceContext {
	var tc TraceContext
	traceRNGMu.Lock()
	for tc.TraceID.IsZero() {
		binary.BigEndian.PutUint64(tc.TraceID[0:8], traceRNG.Uint64())
		binary.BigEndian.PutUint64(tc.TraceID[8:16], traceRNG.Uint64())
	}
	for tc.SpanID.IsZero() {
		binary.BigEndian.PutUint64(tc.SpanID[:], traceRNG.Uint64())
	}
	traceRNGMu.Unlock()
	tc.Sampled = true
	return tc
}

// SpanAttr is one span attribute. Exactly one of Str/Int is meaningful;
// IsInt selects which (so zero values round-trip unambiguously).
type SpanAttr struct {
	Key   string `json:"key"`
	Str   string `json:"str,omitempty"`
	Int   int64  `json:"int,omitempty"`
	IsInt bool   `json:"is_int,omitempty"`
}

// Span is one node of a request's span tree. Spans are plain values;
// a completed Trace owns its slice.
type Span struct {
	SpanID SpanID     `json:"span_id"`
	Parent SpanID     `json:"parent_span_id,omitempty"`
	Name   string     `json:"name"`
	Start  time.Time  `json:"start"`
	End    time.Time  `json:"end"`
	Err    string     `json:"err,omitempty"`
	Attrs  []SpanAttr `json:"attrs,omitempty"`
}

// Dur returns the span's length.
func (s Span) Dur() time.Duration { return s.End.Sub(s.Start) }

// Trace is one request's completed span tree, rooted at the serving
// layer's request span.
type Trace struct {
	TraceID TraceID `json:"trace_id"`
	Root    SpanID  `json:"root_span_id"`
	Spans   []Span  `json:"spans"` // emission order; Spans[i].Parent indexes within the trace
}

// RootSpan returns the root span (zero Span if the trace is empty).
func (t *Trace) RootSpan() Span {
	for _, s := range t.Spans {
		if s.SpanID == t.Root {
			return s
		}
	}
	return Span{}
}

// SpanRecorder converts one request's runtime event stream into a span
// tree. It implements Tracer; wire it into the session's tracer fan-out
// next to the metrics and flight-recorder sinks. Emit is safe for
// concurrent use (workers emit batch events in parallel).
//
// Span identity is derived, not random: span ids are the trace id's low
// eight bytes XOR an emission sequence number, so a recorder's output is
// deterministic given its trace context and event stream.
type SpanRecorder struct {
	tc TraceContext

	mu    sync.Mutex
	seq   uint64
	root  Span
	spans []Span
	// session is the open evaluation span (EvSessionBegin..EvSessionEnd);
	// stages maps a stage index to its open stage span.
	session  SpanID
	sessAt   time.Time
	stages   map[int]stageSlot
	finished bool
}

type stageSlot struct {
	id    SpanID
	start time.Time
	open  bool
}

// NewSpanRecorder roots a recorder on tc: the root span (named name, e.g.
// "POST /v1/eval") starts now and is parented on tc.SpanID — the caller's
// span, when the request carried a traceparent.
func NewSpanRecorder(tc TraceContext, name string) *SpanRecorder {
	r := &SpanRecorder{tc: tc, stages: map[int]stageSlot{}}
	r.root = Span{SpanID: r.nextID(), Parent: tc.SpanID, Name: name, Start: time.Now()}
	return r
}

// RootSpanID returns the request span's id (the parent callers should
// propagate downstream).
func (r *SpanRecorder) RootSpanID() SpanID { return r.root.SpanID }

// TraceID returns the recorder's trace id.
func (r *SpanRecorder) TraceID() TraceID { return r.tc.TraceID }

// Context returns the trace context downstream work should carry: the
// request's trace id with the root span as parent.
func (r *SpanRecorder) Context() TraceContext {
	return TraceContext{TraceID: r.tc.TraceID, SpanID: r.root.SpanID, Sampled: true}
}

// nextID derives the next span id. Callers hold r.mu (or run before the
// recorder is shared).
func (r *SpanRecorder) nextID() SpanID {
	r.seq++
	var id SpanID
	binary.BigEndian.PutUint64(id[:], binary.BigEndian.Uint64(r.tc.TraceID[8:16])^r.seq)
	if id.IsZero() { // astronomically unlikely, but zero ids are invalid
		id[7] = 1
	}
	return id
}

// Annotate adds an attribute to the root (request) span.
func (r *SpanRecorder) Annotate(key, val string) {
	r.mu.Lock()
	r.root.Attrs = append(r.root.Attrs, SpanAttr{Key: key, Str: val})
	r.mu.Unlock()
}

// AnnotateInt adds an integer attribute to the root span.
func (r *SpanRecorder) AnnotateInt(key string, val int64) {
	r.mu.Lock()
	r.root.Attrs = append(r.root.Attrs, SpanAttr{Key: key, Int: val, IsInt: true})
	r.mu.Unlock()
}

// Emit implements Tracer: each event becomes (or opens/closes) a span.
func (r *SpanRecorder) Emit(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.finished {
		return
	}
	switch e.Kind {
	case EvSessionBegin:
		r.session = r.nextID()
		r.sessAt = e.Time
		r.spans = append(r.spans, Span{SpanID: r.session, Parent: r.root.SpanID,
			Name: "session", Start: e.Time, End: e.Time,
			Attrs: []SpanAttr{{Key: "pending_calls", Int: e.Elems, IsInt: true}}})
	case EvSessionEnd:
		for i := range r.spans {
			if r.spans[i].SpanID == r.session {
				r.spans[i].End = e.Time
				r.spans[i].Err = e.Detail
				break
			}
		}
		r.session = SpanID{}
	case EvStageBegin:
		slot := stageSlot{id: r.nextID(), start: e.Time, open: true}
		r.stages[e.Stage] = slot
		r.spans = append(r.spans, Span{SpanID: slot.id, Parent: r.sessionOrRoot(),
			Name: fmt.Sprintf("stage %d [%s]", e.Stage, e.Calls), Start: e.Time, End: e.Time,
			Attrs: []SpanAttr{
				{Key: "split", Str: e.Split},
				{Key: "elems", Int: e.Elems, IsInt: true},
				{Key: "batch_elems", Int: e.BatchElems, IsInt: true},
				{Key: "workers", Int: int64(e.Workers), IsInt: true},
				{Key: "bytes", Int: e.Bytes, IsInt: true},
			}})
	case EvStageEnd:
		if slot, ok := r.stages[e.Stage]; ok && slot.open {
			for i := range r.spans {
				if r.spans[i].SpanID == slot.id {
					r.spans[i].Start = e.Time.Add(-e.Dur)
					r.spans[i].End = e.Time
					r.spans[i].Err = e.Detail
					break
				}
			}
			slot.open = false
			r.stages[e.Stage] = slot
		}
	default:
		r.spans = append(r.spans, r.eventSpan(e))
	}
}

// sessionOrRoot parents stage-level spans: the open session span when one
// exists, else the root. Callers hold r.mu.
func (r *SpanRecorder) sessionOrRoot() SpanID {
	if !r.session.IsZero() {
		return r.session
	}
	return r.root.SpanID
}

// parentFor places an event in the tree: batch/merge/retry/admission and
// friends hang off their stage's span; stage-less events off the session.
// Callers hold r.mu.
func (r *SpanRecorder) parentFor(e Event) SpanID {
	if e.Stage >= 0 {
		if slot, ok := r.stages[e.Stage]; ok {
			return slot.id
		}
	}
	return r.sessionOrRoot()
}

// eventSpan converts a non-lifecycle event into a span. Span kinds carry
// Time = end and Dur = length; instants become zero-length spans.
func (r *SpanRecorder) eventSpan(e Event) Span {
	s := Span{SpanID: r.nextID(), Parent: r.parentFor(e),
		Name: e.Kind.String(), Start: e.Time.Add(-e.Dur), End: e.Time, Err: ""}
	switch e.Kind {
	case EvPlan:
		s.Name = "plan"
		s.Attrs = append(s.Attrs, SpanAttr{Key: "stages", Int: int64(e.Stages), IsInt: true})
	case EvBatch:
		s.Name = fmt.Sprintf("batch [%d:%d]", e.Start, e.End)
		s.Attrs = append(s.Attrs,
			SpanAttr{Key: "worker", Int: int64(e.Worker), IsInt: true},
			SpanAttr{Key: "bytes", Int: e.Bytes, IsInt: true},
			SpanAttr{Key: "split_ns", Int: e.SplitNS, IsInt: true},
			SpanAttr{Key: "task_ns", Int: e.TaskNS, IsInt: true})
		if e.Attempt > 1 {
			s.Attrs = append(s.Attrs, SpanAttr{Key: "attempt", Int: int64(e.Attempt), IsInt: true})
		}
	case EvMerge:
		s.Attrs = append(s.Attrs, SpanAttr{Key: "worker", Int: int64(e.Worker), IsInt: true})
	case EvRetry:
		s.Err = e.Detail
		s.Attrs = append(s.Attrs, SpanAttr{Key: "attempt", Int: int64(e.Attempt), IsInt: true})
	case EvBreaker:
		s.Attrs = append(s.Attrs,
			SpanAttr{Key: "annotation", Str: e.Calls},
			SpanAttr{Key: "state", Str: e.Detail})
	case EvAdmission:
		s.Attrs = append(s.Attrs,
			SpanAttr{Key: "reserved_bytes", Int: e.Bytes, IsInt: true},
			SpanAttr{Key: "batch_elems", Int: e.BatchElems, IsInt: true},
			SpanAttr{Key: "workers", Int: int64(e.Workers), IsInt: true})
	case EvFallback:
		s.Err = e.Detail
	case EvPressure:
		s.Attrs = append(s.Attrs,
			SpanAttr{Key: "level", Str: e.Detail},
			SpanAttr{Key: "reserved_bytes", Int: e.Bytes, IsInt: true})
	case EvSpill:
		s.Name = "spill " + e.Detail
		s.Attrs = append(s.Attrs,
			SpanAttr{Key: "bytes", Int: e.Bytes, IsInt: true},
			SpanAttr{Key: "window", Str: fmt.Sprintf("[%d:%d]", e.Start, e.End)})
	case EvTune:
		s.Attrs = append(s.Attrs,
			SpanAttr{Key: "provenance", Str: e.Detail},
			SpanAttr{Key: "batch_elems", Int: e.BatchElems, IsInt: true})
	case EvStageCounters:
		s.Name = "sim-counters"
		s.Attrs = append(s.Attrs,
			SpanAttr{Key: "dram_bytes", Int: e.Counters.DRAMBytes, IsInt: true},
			SpanAttr{Key: "model_ns", Int: e.Counters.ModelNS, IsInt: true})
	default:
		if e.Detail != "" {
			s.Attrs = append(s.Attrs, SpanAttr{Key: "detail", Str: e.Detail})
		}
	}
	return s
}

// Finish closes the root span with the request's outcome and returns the
// completed trace. Any stage span the runtime never closed (a cancellation
// torn mid-stage) is clamped to the root's end. Emit becomes a no-op after
// Finish; calling Finish twice returns the same trace.
func (r *SpanRecorder) Finish(errDetail string) *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.finished {
		r.finished = true
		now := time.Now()
		r.root.End = now
		r.root.Err = errDetail
		for i := range r.spans {
			if r.spans[i].End.Before(r.spans[i].Start) || r.spans[i].End.IsZero() {
				r.spans[i].End = now
			}
		}
	}
	spans := make([]Span, 0, len(r.spans)+1)
	spans = append(spans, r.root)
	spans = append(spans, r.spans...)
	return &Trace{TraceID: r.tc.TraceID, Root: r.root.SpanID, Spans: spans}
}

// ---- the span ring ---------------------------------------------------------

// TraceSummary is one SpanRing index row.
type TraceSummary struct {
	TraceID string        `json:"trace_id"`
	Name    string        `json:"name"`
	Start   time.Time     `json:"start"`
	Dur     time.Duration `json:"dur_ns"`
	Spans   int           `json:"spans"`
	Err     string        `json:"err,omitempty"`
}

// SpanRing retains the last N completed traces keyed by trace id, the
// span-tree counterpart to the flight recorder: bounded retention, keyed
// lookup, no external storage.
type SpanRing struct {
	mu    sync.Mutex
	max   int
	order []TraceID // oldest first
	byID  map[TraceID]*Trace
}

// NewSpanRing returns a ring retaining the last n traces (n <= 0 selects 64).
func NewSpanRing(n int) *SpanRing {
	if n <= 0 {
		n = 64
	}
	return &SpanRing{max: n, byID: map[TraceID]*Trace{}}
}

// Add retains t, evicting the oldest trace at capacity. A second trace
// with the same id replaces the first (one request, one trace).
func (r *SpanRing) Add(t *Trace) {
	if t == nil || t.TraceID.IsZero() {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byID[t.TraceID]; dup {
		r.byID[t.TraceID] = t
		return
	}
	if len(r.order) == r.max {
		delete(r.byID, r.order[0])
		copy(r.order, r.order[1:])
		r.order = r.order[:len(r.order)-1]
	}
	r.order = append(r.order, t.TraceID)
	r.byID[t.TraceID] = t
}

// Get returns the trace with the given lowercase-hex id.
func (r *SpanRing) Get(traceIDHex string) (*Trace, bool) {
	raw, err := hex.DecodeString(traceIDHex)
	if err != nil || len(raw) != 16 {
		return nil, false
	}
	var id TraceID
	copy(id[:], raw)
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.byID[id]
	return t, ok
}

// Len reports the number of retained traces.
func (r *SpanRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.order)
}

// Summaries lists the retained traces, oldest first.
func (r *SpanRing) Summaries() []TraceSummary {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceSummary, 0, len(r.order))
	for _, id := range r.order {
		t := r.byID[id]
		root := t.RootSpan()
		out = append(out, TraceSummary{TraceID: id.String(), Name: root.Name,
			Start: root.Start, Dur: root.Dur(), Spans: len(t.Spans), Err: root.Err})
	}
	return out
}

// ---- rendering -------------------------------------------------------------

// RenderTree writes the trace as an indented tree, children in start
// order, each line carrying the span's duration and attributes.
func (t *Trace) RenderTree(w io.Writer) (int64, error) {
	children := map[SpanID][]int{}
	for i, s := range t.Spans {
		if s.SpanID == t.Root {
			continue
		}
		children[s.Parent] = append(children[s.Parent], i)
	}
	for _, idx := range children {
		sort.SliceStable(idx, func(a, b int) bool { return t.Spans[idx[a]].Start.Before(t.Spans[idx[b]].Start) })
	}
	var b strings.Builder
	root := t.RootSpan()
	fmt.Fprintf(&b, "trace %s (%d spans, %s)\n", t.TraceID, len(t.Spans), root.Dur().Round(time.Microsecond))
	var walk func(id SpanID, s Span, depth int)
	walk = func(id SpanID, s Span, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&b, "- %s (%s)", s.Name, s.Dur().Round(time.Microsecond))
		for _, a := range s.Attrs {
			if a.IsInt {
				fmt.Fprintf(&b, " %s=%d", a.Key, a.Int)
			} else {
				fmt.Fprintf(&b, " %s=%q", a.Key, a.Str)
			}
		}
		if s.Err != "" {
			fmt.Fprintf(&b, " err=%q", s.Err)
		}
		b.WriteByte('\n')
		for _, ci := range children[id] {
			walk(t.Spans[ci].SpanID, t.Spans[ci], depth+1)
		}
	}
	walk(root.SpanID, root, 0)
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// ---- OTLP/JSON export ------------------------------------------------------

// otlp* mirror the OTLP JSON mapping (opentelemetry-proto trace/v1) closely
// enough for any OTLP-speaking backend to ingest: hex ids, stringified
// unix-nano timestamps, typed attribute values.
type otlpExport struct {
	ResourceSpans []otlpResourceSpans `json:"resourceSpans"`
}
type otlpResourceSpans struct {
	Resource   otlpResource     `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}
type otlpResource struct {
	Attributes []otlpAttr `json:"attributes"`
}
type otlpScopeSpans struct {
	Scope otlpScope  `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}
type otlpScope struct {
	Name string `json:"name"`
}
type otlpSpan struct {
	TraceID           string     `json:"traceId"`
	SpanID            string     `json:"spanId"`
	ParentSpanID      string     `json:"parentSpanId,omitempty"`
	Name              string     `json:"name"`
	Kind              int        `json:"kind"`
	StartTimeUnixNano string     `json:"startTimeUnixNano"`
	EndTimeUnixNano   string     `json:"endTimeUnixNano"`
	Attributes        []otlpAttr `json:"attributes,omitempty"`
	Status            otlpStatus `json:"status"`
}
type otlpAttr struct {
	Key   string    `json:"key"`
	Value otlpValue `json:"value"`
}
type otlpValue struct {
	StringValue *string `json:"stringValue,omitempty"`
	IntValue    *string `json:"intValue,omitempty"` // int64 maps to a JSON string in proto3
}
type otlpStatus struct {
	Code    int    `json:"code"` // 0 unset, 1 ok, 2 error
	Message string `json:"message,omitempty"`
}

const (
	otlpKindInternal = 1
	otlpKindServer   = 2
)

// WriteOTLP renders the trace in the OTLP/JSON shape under the given
// service name.
func (t *Trace) WriteOTLP(w io.Writer, serviceName string) error {
	svc := serviceName
	spans := make([]otlpSpan, 0, len(t.Spans))
	for _, s := range t.Spans {
		os := otlpSpan{
			TraceID:           t.TraceID.String(),
			SpanID:            s.SpanID.String(),
			Name:              s.Name,
			Kind:              otlpKindInternal,
			StartTimeUnixNano: fmt.Sprintf("%d", s.Start.UnixNano()),
			EndTimeUnixNano:   fmt.Sprintf("%d", s.End.UnixNano()),
		}
		if s.SpanID == t.Root {
			os.Kind = otlpKindServer
		}
		if !s.Parent.IsZero() {
			os.ParentSpanID = s.Parent.String()
		}
		for _, a := range s.Attrs {
			if a.IsInt {
				v := fmt.Sprintf("%d", a.Int)
				os.Attributes = append(os.Attributes, otlpAttr{Key: a.Key, Value: otlpValue{IntValue: &v}})
			} else {
				v := a.Str
				os.Attributes = append(os.Attributes, otlpAttr{Key: a.Key, Value: otlpValue{StringValue: &v}})
			}
		}
		if s.Err != "" {
			os.Status = otlpStatus{Code: 2, Message: s.Err}
		} else {
			os.Status = otlpStatus{Code: 1}
		}
		spans = append(spans, os)
	}
	export := otlpExport{ResourceSpans: []otlpResourceSpans{{
		Resource:   otlpResource{Attributes: []otlpAttr{{Key: "service.name", Value: otlpValue{StringValue: &svc}}}},
		ScopeSpans: []otlpScopeSpans{{Scope: otlpScope{Name: "mozart/internal/obs"}, Spans: spans}},
	}}}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(export)
}
