package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedFeed is a deterministic event stream covering every kind, shaped
// like a one-stage, two-worker evaluation.
func fixedFeed(base time.Time) []Event {
	at := func(ms int) time.Time { return base.Add(time.Duration(ms) * time.Millisecond) }
	return []Event{
		{Kind: EvSessionBegin, Time: at(0), Stage: -1, Worker: RuntimeLane, Elems: 3},
		{Kind: EvPlan, Time: at(1), Dur: time.Millisecond, Stage: -1, Worker: RuntimeLane,
			Stages: 1, Detail: "stage[a -> b]"},
		{Kind: EvStageBegin, Time: at(1), Stage: 0, Worker: RuntimeLane, Calls: "a -> b",
			Split: "SizeSplit<100>", Elems: 100, Bytes: 16, BatchElems: 50, Workers: 2,
			CacheBytes: 1 << 20},
		{Kind: EvAdmission, Time: at(1), Dur: 0, Stage: 0, Worker: RuntimeLane,
			Calls: "a -> b", Bytes: 1600, BatchElems: 50, Workers: 2},
		{Kind: EvBatch, Time: at(4), Dur: 3 * time.Millisecond, Stage: 0, Worker: 0,
			Start: 0, End: 50, Calls: "a -> b", Split: "SizeSplit<100>",
			SplitNS: int64(time.Millisecond), TaskNS: int64(2 * time.Millisecond),
			Bytes: 800, Attempt: 1},
		{Kind: EvRetry, Time: at(5), Stage: 0, Worker: 1, Start: 50, End: 100,
			Calls: "a -> b", Attempt: 1, Detail: "flaky device"},
		{Kind: EvBatch, Time: at(8), Dur: 3 * time.Millisecond, Stage: 0, Worker: 1,
			Start: 50, End: 100, Calls: "a -> b", Split: "SizeSplit<100>",
			SplitNS: int64(time.Millisecond), TaskNS: int64(2 * time.Millisecond),
			Bytes: 800, Attempt: 2},
		{Kind: EvMerge, Time: at(9), Dur: time.Millisecond, Stage: 0, Worker: 1,
			Calls: "a -> b", Split: "SizeSplit<100>"},
		{Kind: EvMerge, Time: at(10), Dur: time.Millisecond, Stage: 0, Worker: RuntimeLane,
			Calls: "a -> b", Split: "SizeSplit<100>"},
		{Kind: EvBreaker, Time: at(10), Stage: -1, Worker: RuntimeLane, Calls: "b",
			Detail: "open"},
		{Kind: EvFallback, Time: at(12), Dur: 2 * time.Millisecond, Stage: 0,
			Worker: RuntimeLane, Calls: "a -> b", Detail: "split failed"},
		{Kind: EvStageEnd, Time: at(12), Dur: 11 * time.Millisecond, Stage: 0,
			Worker: RuntimeLane, Calls: "a -> b"},
		{Kind: EvSessionEnd, Time: at(12), Dur: 12 * time.Millisecond, Stage: -1,
			Worker: RuntimeLane},
	}
}

// TestChromeTraceGolden locks the exact Chrome trace_event JSON rendering of
// the full event taxonomy. Regenerate with `go test ./internal/obs -update`
// after an intentional format change, and re-check the new file loads in
// Perfetto.
func TestChromeTraceGolden(t *testing.T) {
	base := time.Date(2024, 1, 2, 3, 4, 5, 0, time.UTC)
	c := NewChromeTraceAt(base)
	for _, e := range fixedFeed(base) {
		c.Emit(e)
	}
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "chrometrace.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace JSON differs from %s;\ngot:\n%s", golden, buf.String())
	}
}

// TestChromeTraceWellFormed checks the structural invariants Perfetto needs:
// parseable JSON, a thread_name metadata record per lane, and batch spans on
// the right worker lanes.
func TestChromeTraceWellFormed(t *testing.T) {
	base := time.Unix(0, 0)
	c := NewChromeTraceAt(base)
	for _, e := range fixedFeed(base) {
		c.Emit(e)
	}
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("emitted trace is not valid JSON: %v", err)
	}
	lanes := map[int]string{}
	batchLanes := map[int]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "thread_name" {
			lanes[e.Tid], _ = e.Args["name"].(string)
		}
		if strings.HasPrefix(e.Name, "batch ") {
			batchLanes[e.Tid] = true
		}
	}
	if lanes[0] != "runtime" {
		t.Errorf("tid 0 should be the runtime lane, got %q", lanes[0])
	}
	if lanes[1] != "worker 0" || lanes[2] != "worker 1" {
		t.Errorf("worker lanes misnamed: %v", lanes)
	}
	if !batchLanes[1] || !batchLanes[2] {
		t.Errorf("batch spans should land on worker lanes 1 and 2, got %v", batchLanes)
	}
	if batchLanes[0] {
		t.Error("a batch span landed on the runtime lane")
	}
}

func TestMetricsAggregation(t *testing.T) {
	base := time.Unix(0, 0)
	m := NewMetrics()
	for _, e := range fixedFeed(base) {
		m.Emit(e)
	}
	sn := m.Snapshot()
	if sn.Evaluations != 1 {
		t.Errorf("evaluations = %d, want 1", sn.Evaluations)
	}
	if len(sn.Stages) != 1 {
		t.Fatalf("stages = %d, want 1", len(sn.Stages))
	}
	st := sn.Stages[0]
	if st.Calls != "a -> b" || st.Split != "SizeSplit<100>" {
		t.Errorf("stage identity: %+v", st)
	}
	if st.Batches != 2 || st.Elems != 100 || st.Bytes != 1600 {
		t.Errorf("batches/elems/bytes = %d/%d/%d, want 2/100/1600", st.Batches, st.Elems, st.Bytes)
	}
	if st.Retries != 1 || st.Fallbacks != 1 {
		t.Errorf("retries/fallbacks = %d/%d, want 1/1", st.Retries, st.Fallbacks)
	}
	if st.MergeNS != int64(2*time.Millisecond) {
		t.Errorf("merge ns = %d", st.MergeNS)
	}
	// 50 elems × 16 bytes over a 1 MiB target.
	wantUtil := float64(50*16) / float64(1<<20)
	if st.CacheUtilization != wantUtil {
		t.Errorf("cache utilization = %v, want %v", st.CacheUtilization, wantUtil)
	}
	if sn.Breaker["open"] != 1 {
		t.Errorf("breaker transitions = %v", sn.Breaker)
	}
	if !strings.Contains(m.String(), "a -> b") {
		t.Error("String() should render the stage table")
	}
}

func TestMetricsPublishExpvar(t *testing.T) {
	base := time.Unix(0, 0)
	m := NewMetrics()
	for _, e := range fixedFeed(base) {
		m.Emit(e)
	}
	// expvar names are process-global and cannot be unregistered; use a
	// test-unique name.
	m.Publish("mozart_obs_test_metrics")
	// The exported Func must marshal cleanly (expvar renders it as JSON).
	if _, err := json.Marshal(m.Snapshot()); err != nil {
		t.Fatalf("snapshot does not marshal: %v", err)
	}
}

func TestEventKindString(t *testing.T) {
	kinds := []EventKind{EvSessionBegin, EvSessionEnd, EvPlan, EvStageBegin,
		EvStageEnd, EvBatch, EvMerge, EvRetry, EvBreaker, EvAdmission, EvFallback,
		EvStageCounters}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "unknown" || seen[s] {
			t.Errorf("kind %d renders %q", k, s)
		}
		seen[s] = true
	}
	if EventKind(200).String() != "unknown" {
		t.Error("out-of-range kind should render unknown")
	}
}

type countTracer struct{ n int }

func (c *countTracer) Emit(Event) { c.n++ }

func TestMulti(t *testing.T) {
	a, b := &countTracer{}, &countTracer{}
	m := Multi(a, nil, b)
	m.Emit(Event{Kind: EvSessionBegin})
	m.Emit(Event{Kind: EvSessionEnd})
	if a.n != 2 || b.n != 2 {
		t.Errorf("fan-out counts = %d/%d, want 2/2", a.n, b.n)
	}
	Multi().Emit(Event{}) // no-op, must not panic
}
