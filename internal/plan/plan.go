// Package plan defines Mozart's explicit plan intermediate representation
// (IR): the output of the §5.1 planner as a plain, inspectable value.
//
// One plan, three consumers:
//
//   - internal/core executes the IR's stages for real (split, pipeline,
//     batch, merge);
//   - internal/planlower compiles the IR plus per-call cost specs into a
//     memsim.Workload, so modeled figures derive from actual planner
//     output instead of hand-maintained parallel models;
//   - Session.Plan / mozart.Explain render the IR as an EXPLAIN-style tree,
//     and the obs plan event uses the same compact rendering.
//
// The IR is a snapshot: it references dataflow values by binding id and
// records split types as rendered strings. It holds no live bindings,
// splitters, or session state, so holding or mutating a Plan never affects
// execution.
package plan

import "strconv"

// StageKind says how a stage executes.
type StageKind int

const (
	// StageSplit is the §5.2 path: inputs are split into batches, the
	// stage's calls pipeline over each batch in parallel, outputs merge.
	StageSplit StageKind = iota
	// StageWhole runs every call once over full values on one thread —
	// the way Mozart treats functions it cannot split (all-broadcast
	// calls, quarantined annotations).
	StageWhole
)

func (k StageKind) String() string {
	if k == StageWhole {
		return "whole"
	}
	return "split"
}

// ScheduleMode selects how batches are handed to workers.
type ScheduleMode int

const (
	// ScheduleStatic is the paper's contiguous near-equal partitioning
	// (§5.2 Step 1).
	ScheduleStatic ScheduleMode = iota
	// ScheduleDynamic has workers atomically claim the next unprocessed
	// batch, Cilk-style.
	ScheduleDynamic
)

func (m ScheduleMode) String() string {
	if m == ScheduleDynamic {
		return "dynamic"
	}
	return "static"
}

// Defaults for the §5.2 batch heuristic, shared by the real executor
// (core.Options) and the modeled workloads (internal/workloads): batch =
// Constant × L2CacheBytes / Σ elemBytes.
const (
	// DefaultL2CacheBytes is the per-core L2 size of the paper's Xeon
	// E5-2676 v3.
	DefaultL2CacheBytes = int64(256 << 10)
	// DefaultBatchConstant leaves room for intermediates in the shared
	// LLC, as the paper describes.
	DefaultBatchConstant = 4.0
)

// BatchPolicy is the §5.2 batch-size rule recorded in a plan. The zero
// value means "heuristic with default constants".
type BatchPolicy struct {
	// FixedElems, when positive, overrides the heuristic with a fixed
	// number of elements per batch (the Fig. 6 sweep).
	FixedElems int64
	// Constant is C in batch = C × L2 / s; 0 means DefaultBatchConstant.
	Constant float64
	// L2CacheBytes is the modeled per-core L2 size; 0 means
	// DefaultL2CacheBytes.
	L2CacheBytes int64
}

// CacheTargetBytes is the heuristic's C×L2 working-set target, the
// denominator of cache-utilization metrics.
func (p BatchPolicy) CacheTargetBytes() int64 {
	c, l2 := p.Constant, p.L2CacheBytes
	if c <= 0 {
		c = DefaultBatchConstant
	}
	if l2 <= 0 {
		l2 = DefaultL2CacheBytes
	}
	return int64(c * float64(l2))
}

// Elems returns the batch size in elements for a stage whose per-element
// working set is sumElemBytes (see StageBytes). total, when positive,
// clamps the result to [1, total]; total <= 0 applies no upper clamp.
func (p BatchPolicy) Elems(sumElemBytes, total int64) int64 {
	b := p.FixedElems
	if b <= 0 {
		if sumElemBytes <= 0 {
			sumElemBytes = 1
		}
		b = p.CacheTargetBytes() / sumElemBytes
	}
	if total > 0 && b > total {
		b = total
	}
	if b < 1 {
		b = 1
	}
	return b
}

// StageBytes is the §5.2 per-element working-set model s for one stage:
// the summed element widths of the stage's split inputs, plus one
// estimated width per value produced inside the stage that stays live per
// batch (pipelined intermediates and element-wise results — a Stage's Live
// list). Produced values have no materialized storage at planning time, so
// each is estimated at the mean known input width; fallbackWidth is used
// when no input width is known (pass 0 to make unknown-width stages
// behave as if nothing were produced).
func StageBytes(inputWidths []int64, produced int, fallbackWidth int64) int64 {
	var sum, knownSum, known int64
	for _, w := range inputWidths {
		if w > 0 {
			sum += w
			knownSum += w
			known++
		}
	}
	if produced > 0 {
		width := fallbackWidth
		if known > 0 {
			width = knownSum / known
		}
		sum += int64(produced) * width
	}
	return sum
}

// Arg is one argument (or the return value) of a planned call.
type Arg struct {
	// Binding is the dataflow value's id within the session graph. Ids
	// are stable across the plan: two Args with the same Binding name the
	// same value.
	Binding int
	// Name is the parameter name from the annotation ("ret" for returns).
	Name string
	// Broadcast marks a value passed whole to every piece (the
	// annotation's "_" type).
	Broadcast bool
	// Mut marks arguments the call mutates.
	Mut bool
	// Split is the rendered split type ("ArraySplit<1024>"), "_" for
	// broadcast values, or "deferred" when the splitter is resolved from
	// the default registry at execution time.
	Split string
	// Deferred mirrors Split == "deferred".
	Deferred bool
}

// Call is one library call inside a stage.
type Call struct {
	// Name is the annotated function name.
	Name string
	Args []Arg
	// Ret is nil for void functions.
	Ret *Arg
	// RetDiscarded marks a result that is pipelined away and never
	// materialized: every consumer sits later in the same stage, so its
	// batch pieces die in cache (the planner's materialization rule).
	RetDiscarded bool
	// RetReduced marks a result whose split type matches no split
	// argument of the call — a reduction or type-changing result
	// (AddReduce, GroupSplit, unknown-returning filters). Reduced results
	// are excluded from the §5.2 working set and lower to scalars.
	RetReduced bool
}

// Value is a stage boundary value: an input split at stage entry or an
// output merged at stage exit.
type Value struct {
	Binding int
	// Split is the rendered split type (or "deferred").
	Split string
	// Elems and ElemBytes are best-effort runtime dimensions probed at
	// planning time; -1 when unknown (lazy or deferred values, outputs).
	Elems     int64
	ElemBytes int64
	// Caps is the rendered splitter capability set the executor will act on
	// ("inplace|view|window|codec" joined for the declared subset); empty
	// when the splitter has no optional capabilities or is unresolved at
	// planning time.
	Caps string
}

// Stage is an ordered pipeline of calls whose split types match (§5.1).
type Stage struct {
	Kind  StageKind
	Calls []Call
	// Inputs are the bindings split at stage entry, in first-use order.
	Inputs []Value
	// Outputs are the bindings merged (and possibly written back) at
	// stage exit.
	Outputs []Value
	// Broadcast lists bindings used whole within the stage, sorted.
	Broadcast []int
	// Live lists bindings produced by the stage's calls whose results
	// stay live per batch (element-wise returns, whether pipelined away
	// or merged at exit — everything except Reduced results), sorted.
	// Together with Inputs these form the §5.2 working set.
	Live []int
}

// Plan is one evaluation's execution plan.
type Plan struct {
	Stages []Stage
	// Batch is the batch-size rule stages are executed with.
	Batch BatchPolicy
	// Mode is the worker scheduling mode.
	Mode ScheduleMode
	// Pipelining is false under the Mozart(-pipe) ablation, where every
	// call plans into its own stage.
	Pipelining bool
	// Provenance records where Batch came from: the static §5.2 heuristic
	// (the zero value), or a BatchSource override mid-sweep or after
	// calibration converged.
	Provenance BatchProvenance
	// Workers, when positive, is a BatchSource worker-count override for
	// this evaluation; 0 means the session's configured worker count.
	Workers int
}

// Pipeline renders the stage's call chain as "a -> b -> c".
func (st *Stage) Pipeline() string {
	out := ""
	for i, c := range st.Calls {
		if i > 0 {
			out += " -> "
		}
		out += c.Name
	}
	return out
}

// SplitLabel names the stage's split type: the first input with a non-zero
// element width (so size-only splits like SizeSplit do not mask the data
// split), falling back to the first input; "whole" for unsplit stages.
func (st *Stage) SplitLabel() string {
	if st.Kind == StageWhole || len(st.Inputs) == 0 {
		return "whole"
	}
	for _, in := range st.Inputs {
		if in.ElemBytes != 0 {
			return in.Split
		}
	}
	return st.Inputs[0].Split
}

// InputWidths returns the inputs' element widths as StageBytes expects
// them (-1 unknowns pass through as non-positive and are ignored).
func (st *Stage) InputWidths() []int64 {
	ws := make([]int64, len(st.Inputs))
	for i, in := range st.Inputs {
		ws[i] = in.ElemBytes
	}
	return ws
}

// WorkingSetBytes is the stage's §5.2 per-element working set from
// plan-time knowledge: input widths plus estimated widths of Live values.
func (st *Stage) WorkingSetBytes() int64 {
	return StageBytes(st.InputWidths(), len(st.Live), 0)
}

// Elems is the stage's element count when any input knows it, else -1.
func (st *Stage) Elems() int64 {
	for _, in := range st.Inputs {
		if in.Elems >= 0 {
			return in.Elems
		}
	}
	return -1
}

// Summary renders the stage as one line, "stage 2 [a -> b] split[X]" — the
// per-stage string shared verbatim by Describe (the obs plan event) and
// Render (Explain), which tests hold identical.
func (st *Stage) Summary(i int) string {
	return "stage " + strconv.Itoa(i) + " [" + st.Pipeline() + "] split[" + st.SplitLabel() + "]"
}

// Describe renders the plan compactly, one clause per stage, for the obs
// plan event: "stage 0 [a -> b] split[X]; stage 1 [c] split[whole]".
func (p *Plan) Describe() string {
	out := ""
	for i := range p.Stages {
		if i > 0 {
			out += "; "
		}
		out += p.Stages[i].Summary(i)
	}
	return out
}

