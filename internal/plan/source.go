package plan

import "time"

// BatchProvenance records where a plan's batch decision came from. It is
// rendered by Explain in the plan header as [static|sweeping|calibrated].
type BatchProvenance int

const (
	// BatchStatic is the paper's §5.2 C·L2/s heuristic (or a caller-fixed
	// batch) with no feedback applied — the zero value and today's default.
	BatchStatic BatchProvenance = iota
	// BatchSweeping marks an evaluation running a probe batch mid-sweep:
	// the BatchSource is still exploring the batch grid for this plan
	// shape.
	BatchSweeping
	// BatchCalibrated marks a batch chosen by a converged sweep: measured
	// throughput picked it over the static heuristic.
	BatchCalibrated
)

func (p BatchProvenance) String() string {
	switch p {
	case BatchSweeping:
		return "sweeping"
	case BatchCalibrated:
		return "calibrated"
	default:
		return "static"
	}
}

// BatchRequest is what the planner tells a BatchSource about the plan it is
// about to run. The request is a snapshot: mutating it after PlanBatch
// returns has no effect.
type BatchRequest struct {
	// Signature is the plan's structural signature (see Signature) — the
	// key calibration state is cached under.
	Signature string
	// Static is the batch policy the plan would use with no source
	// consulted (the session's configured policy).
	Static BatchPolicy
	// Workers is the session's configured worker count.
	Workers int
	// SumElemBytes is the largest per-element working set across the
	// plan's split stages (the s in batch = C·L2/s), 0 when unknown. It
	// lets a source translate its byte-oriented grid into element counts.
	SumElemBytes int64
	// Elems is the largest split-stage element count, -1 when unknown; a
	// source can use it to skip probing batches larger than the data.
	Elems int64
}

// BatchDecision is a BatchSource's answer. The zero value means "keep the
// static policy": no batch override, no worker override, static provenance.
type BatchDecision struct {
	// BatchElems, when positive, overrides the plan-wide batch size in
	// elements (equivalent to BatchPolicy.FixedElems for this evaluation).
	BatchElems int64
	// Workers, when positive, overrides the worker count for this
	// evaluation. The executor clamps it to [1, configured workers].
	Workers int
	// Provenance labels the decision for Explain and telemetry.
	Provenance BatchProvenance
}

// BatchSource is the pluggable batch/worker selection seam. The planner
// consults it once per plan build (including peeks via Session.Plan and
// mozart.Explain), so PlanBatch must be read-only: it must not advance
// sweep state or otherwise assume it is called exactly once per
// evaluation. State advances only through Calibrator.Observe.
//
// A nil BatchSource (the default) and any source returning the zero
// BatchDecision both reproduce today's static behavior exactly.
type BatchSource interface {
	PlanBatch(req BatchRequest) BatchDecision
}

// Observation is one completed evaluation's measured actuals, reported by
// the executor to a Calibrator after a successful (or failed) evaluation.
type Observation struct {
	// Signature matches the BatchRequest the evaluation was planned with.
	Signature string
	// BatchElems is the batch override the evaluation ran with (0 when the
	// static policy was in effect). A calibrator uses it to discard stale
	// measurements when concurrent sessions interleave probes.
	BatchElems int64
	// Workers is the worker count the evaluation ran with.
	Workers int
	// Elems is the total number of elements processed across split stages.
	Elems int64
	// Bytes is the total bytes moved across split stages (Σ elems×width).
	Bytes int64
	// Elapsed is the evaluation's wall-clock execution time.
	Elapsed time.Duration
	// Err marks a failed evaluation; calibrators should ignore its timing.
	Err bool
}

// Calibrator is a BatchSource that learns: the executor feeds measured
// actuals back through Observe after each evaluation. Implementations must
// be safe for concurrent use by multiple sessions.
type Calibrator interface {
	BatchSource
	Observe(o Observation)
}

// Throughput is the calibration objective: elements per second, 0 when the
// observation is unusable (no elements, no time, or an error).
func (o Observation) Throughput() float64 {
	if o.Err || o.Elems <= 0 || o.Elapsed <= 0 {
		return 0
	}
	return float64(o.Elems) / o.Elapsed.Seconds()
}
