package plan

import (
	"fmt"
	"strings"
)

// Signature returns the plan's structural signature: a compact string
// identifying the plan's shape — pipelining plus, per stage, the kind,
// call chain, split label, element count, and input widths. It is the key
// calibration and simulation caches are stored under.
//
// The signature deliberately excludes the batch policy and the worker
// count: a tuner varies both across evaluations of the same plan shape,
// and the whole point of the key is that those evaluations collide.
// Callers whose cached payload depends on workers or batch (the
// sim-counter cache) compose their own key from (Signature, workers,
// batch).
func Signature(p *Plan) string {
	var b strings.Builder
	fmt.Fprintf(&b, "pipe%v", p.Pipelining)
	for i := range p.Stages {
		st := &p.Stages[i]
		fmt.Fprintf(&b, ";%v[%s|%s|e%d|%v]",
			st.Kind, st.Pipeline(), st.SplitLabel(), st.Elems(), st.InputWidths())
	}
	return b.String()
}
