package plan

import (
	"strings"
	"testing"
)

func TestBatchPolicyElems(t *testing.T) {
	def := BatchPolicy{}
	if got, want := def.Elems(24, 1<<30), DefaultL2CacheBytes*4/24; got != want {
		t.Errorf("default heuristic: got %d, want %d", got, want)
	}
	if got := def.Elems(96, 100); got != 100 {
		t.Errorf("clamp to total: got %d, want 100", got)
	}
	if got := def.Elems(1<<40, 1<<30); got != 1 {
		t.Errorf("lower clamp: got %d, want 1", got)
	}
	if got := def.Elems(96, 0); got != DefaultL2CacheBytes*4/96 {
		t.Errorf("total<=0 must not clamp: got %d", got)
	}
	fixed := BatchPolicy{FixedElems: 512}
	if got := fixed.Elems(96, 1<<20); got != 512 {
		t.Errorf("fixed: got %d, want 512", got)
	}
	if got := fixed.Elems(96, 100); got != 100 {
		t.Errorf("fixed clamps to total: got %d, want 100", got)
	}
	custom := BatchPolicy{Constant: 2, L2CacheBytes: 1 << 10}
	if got := custom.CacheTargetBytes(); got != 2<<10 {
		t.Errorf("cache target: got %d, want %d", got, 2<<10)
	}
}

func TestStageBytes(t *testing.T) {
	// Known widths sum; produced values estimated at the mean known width.
	if got := StageBytes([]int64{8, 8, 0}, 0, 0); got != 16 {
		t.Errorf("inputs only: got %d, want 16", got)
	}
	if got := StageBytes([]int64{24}, 7, 0); got != 24*8 {
		t.Errorf("produced at mean width: got %d, want %d", got, 24*8)
	}
	if got := StageBytes([]int64{-1, 0}, 3, 16); got != 48 {
		t.Errorf("fallback width: got %d, want 48", got)
	}
	if got := StageBytes(nil, 2, 0); got != 0 {
		t.Errorf("no widths, no fallback: got %d, want 0", got)
	}
}

func testPlan() *Plan {
	ret := &Arg{Binding: 9, Name: "ret", Split: "AddReduce"}
	return &Plan{
		Pipelining: true,
		Stages: []Stage{
			{
				Kind: StageSplit,
				Calls: []Call{
					{Name: "vdMulC", Args: []Arg{
						{Binding: 0, Name: "n", Split: "SizeSplit<64>"},
						{Binding: 1, Name: "a", Split: "ArraySplit<64>"},
						{Binding: 2, Name: "c", Broadcast: true, Split: "_"},
						{Binding: 3, Name: "out", Mut: true, Split: "ArraySplit<64>"},
					}},
					{Name: "vdSum", Args: []Arg{
						{Binding: 4, Name: "n", Split: "SizeSplit<64>"},
						{Binding: 3, Name: "a", Split: "ArraySplit<64>"},
					}, Ret: ret, RetReduced: true},
				},
				Inputs: []Value{
					{Binding: 0, Split: "SizeSplit<64>", Elems: 64, ElemBytes: 0},
					{Binding: 1, Split: "ArraySplit<64>", Elems: 64, ElemBytes: 8},
					{Binding: 3, Split: "ArraySplit<64>", Elems: 64, ElemBytes: 8},
					{Binding: 4, Split: "SizeSplit<64>", Elems: 64, ElemBytes: 0},
				},
				Outputs:   []Value{{Binding: 9, Split: "AddReduce", Elems: -1, ElemBytes: -1}},
				Broadcast: []int{2},
			},
			{
				Kind:  StageWhole,
				Calls: []Call{{Name: "df.join", Args: []Arg{{Binding: 5, Name: "a", Broadcast: true, Split: "_"}}}},
			},
		},
	}
}

func TestDescribeAndSummary(t *testing.T) {
	p := testPlan()
	want := "stage 0 [vdMulC -> vdSum] split[ArraySplit<64>]; stage 1 [df.join] split[whole]"
	if got := p.Describe(); got != want {
		t.Errorf("Describe:\n got %q\nwant %q", got, want)
	}
	if got := p.Stages[0].SplitLabel(); got != "ArraySplit<64>" {
		t.Errorf("SplitLabel must skip zero-width SizeSplit, got %q", got)
	}
}

func TestRenderContainsSummariesAndDetail(t *testing.T) {
	p := testPlan()
	out := Render(p)
	for _, clause := range strings.Split(p.Describe(), "; ") {
		found := false
		for _, line := range strings.Split(out, "\n") {
			if line == clause {
				found = true
			}
		}
		if !found {
			t.Errorf("Render is missing the Describe clause %q verbatim:\n%s", clause, out)
		}
	}
	for _, want := range []string{
		"plan: 2 stages, schedule=static, pipelining=on, batch=C*L2/s (C=4, L2=262144B)",
		"working set: 16B/elem (4 inputs + 0 produced) -> batch 64 of 64 elems",
		"vdMulC(n:%0:SizeSplit<64>, a:%1:ArraySplit<64>, c:_, mut out:%3:ArraySplit<64>)",
		"-> %9:AddReduce (reduce)",
		"inputs: 2x SizeSplit<64>, 2x ArraySplit<64> x8B",
		"broadcast: %2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render output missing %q:\n%s", want, out)
		}
	}
}
