package plan

import (
	"fmt"
	"strings"
)

// Render renders the plan as an EXPLAIN-style tree. The first line
// summarizes the plan; each stage then gets a header line identical to its
// Summary (the string the obs plan event carries) followed by indented
// input, working-set, and call detail. Values are written as %<binding>.
//
// The rendering is deterministic for a deterministic program: binding ids
// follow capture order and deferred split types render as "deferred"
// rather than leaking the process-global unknown counter.
func Render(p *Plan) string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan: %d %s, schedule=%s, pipelining=%s, batch=%s [%s]\n",
		len(p.Stages), plural(len(p.Stages), "stage"), p.Mode, onOff(p.Pipelining), describeBatch(p.Batch), p.Provenance)
	for i := range p.Stages {
		st := &p.Stages[i]
		b.WriteString(st.Summary(i))
		b.WriteByte('\n')
		renderStage(&b, p, st)
	}
	return b.String()
}

func renderStage(b *strings.Builder, p *Plan, st *Stage) {
	if len(st.Inputs) > 0 {
		fmt.Fprintf(b, "  inputs: %s\n", groupInputs(st.Inputs))
	}
	if len(st.Broadcast) > 0 {
		fmt.Fprintf(b, "  broadcast: %s\n", bindingList(st.Broadcast))
	}
	if st.Kind == StageSplit {
		if s := st.WorkingSetBytes(); s > 0 {
			elems := st.Elems()
			fmt.Fprintf(b, "  working set: %dB/elem (%d inputs + %d produced) -> batch %d",
				s, len(st.Inputs), len(st.Live), p.Batch.Elems(s, elems))
			if elems >= 0 {
				fmt.Fprintf(b, " of %d elems", elems)
			}
			b.WriteByte('\n')
		}
	}
	if len(st.Outputs) > 0 {
		outs := make([]string, len(st.Outputs))
		for i, o := range st.Outputs {
			outs[i] = fmt.Sprintf("%%%d:%s", o.Binding, o.Split)
		}
		fmt.Fprintf(b, "  outputs: %s\n", strings.Join(outs, ", "))
	}
	b.WriteString("  calls:\n")
	for _, c := range st.Calls {
		b.WriteString("    ")
		b.WriteString(renderCall(c))
		b.WriteByte('\n')
	}
}

// renderCall renders one call with per-argument split types:
//
//	vdAdd(n:SizeSplit<64>, a:%1:ArraySplit<64>, mut out:%2:ArraySplit<64>)
//	sr.count(s:%5:SeriesSplit<512>) -> %6:AddReduce (reduce)
func renderCall(c Call) string {
	args := make([]string, len(c.Args))
	for i, a := range c.Args {
		s := a.Name + ":"
		if a.Broadcast {
			s += "_"
		} else {
			s += fmt.Sprintf("%%%d:%s", a.Binding, a.Split)
		}
		if a.Mut {
			s = "mut " + s
		}
		args[i] = s
	}
	out := c.Name + "(" + strings.Join(args, ", ") + ")"
	if c.Ret != nil {
		out += fmt.Sprintf(" -> %%%d:%s", c.Ret.Binding, c.Ret.Split)
		switch {
		case c.RetDiscarded:
			out += " (pipelined)"
		case c.RetReduced:
			out += " (reduce)"
		}
	}
	return out
}

// groupInputs compresses an input list into "2x SizeSplit<64>, 3x
// ArraySplit<64> x8B [inplace|view|window|codec]" runs grouped by split
// type, width, and splitter capabilities, in first-appearance order.
func groupInputs(inputs []Value) string {
	type key struct {
		split string
		width int64
		caps  string
	}
	counts := map[key]int{}
	var order []key
	for _, in := range inputs {
		k := key{in.Split, in.ElemBytes, in.Caps}
		if counts[k] == 0 {
			order = append(order, k)
		}
		counts[k]++
	}
	parts := make([]string, len(order))
	for i, k := range order {
		s := fmt.Sprintf("%dx %s", counts[k], k.split)
		if k.width > 0 {
			s += fmt.Sprintf(" x%dB", k.width)
		}
		if k.caps != "" {
			s += " [" + k.caps + "]"
		}
		parts[i] = s
	}
	return strings.Join(parts, ", ")
}

func bindingList(ids []int) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("%%%d", id)
	}
	return strings.Join(parts, ", ")
}

func describeBatch(bp BatchPolicy) string {
	if bp.FixedElems > 0 {
		return fmt.Sprintf("fixed %d elems", bp.FixedElems)
	}
	c, l2 := bp.Constant, bp.L2CacheBytes
	if c <= 0 {
		c = DefaultBatchConstant
	}
	if l2 <= 0 {
		l2 = DefaultL2CacheBytes
	}
	return fmt.Sprintf("C*L2/s (C=%g, L2=%dB)", c, l2)
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

func plural(n int, word string) string {
	if n == 1 {
		return word
	}
	return word + "s"
}
