package nlpsa_test

import (
	"fmt"
	"testing"

	"mozart/internal/annotations/nlpsa"
	"mozart/internal/core"
	"mozart/internal/nlp"
)

func corpus(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("Review %d: The film was surprisingly enjoyable and the actors did well.", i)
	}
	return out
}

// TestPipeParallelMatchesSerial: tagging through Mozart equals serial
// tagging, and the tag+featurize pipeline shares one stage.
func TestPipeParallelMatchesSerial(t *testing.T) {
	tg := nlp.NewTagger()
	c := corpus(200)
	wantDocs := tg.Pipe(c)
	wantCounts := nlp.POSCounts(wantDocs)

	s := core.NewSession(core.Options{Workers: 4, BatchElems: 16})
	docs := nlpsa.Pipe(s, tg, c)
	counts := nlpsa.POSCounts(s, docs)

	v, err := counts.Get()
	if err != nil {
		t.Fatal(err)
	}
	got := v.(map[string]int64)
	if len(got) != len(wantCounts) {
		t.Fatalf("histogram sizes %d vs %d", len(got), len(wantCounts))
	}
	for k, n := range wantCounts {
		if got[k] != n {
			t.Fatalf("POS %s: %d vs %d", k, got[k], n)
		}
	}
	if s.Stats().Stages != 1 {
		t.Errorf("tag+featurize should pipeline, got %d stages", s.Stats().Stages)
	}
}

// TestPipeDocsMaterialize: the tagged docs merge back in corpus order when
// kept.
func TestPipeDocsMaterialize(t *testing.T) {
	tg := nlp.NewTagger()
	c := corpus(57)
	want := tg.Pipe(c)

	s := core.NewSession(core.Options{Workers: 3, BatchElems: 10})
	f := nlpsa.Pipe(s, tg, c)
	v, err := f.Get()
	if err != nil {
		t.Fatal(err)
	}
	got := v.([]*nlp.Doc)
	if len(got) != len(want) {
		t.Fatalf("docs %d want %d", len(got), len(want))
	}
	for i := range want {
		if len(got[i].Tokens) != len(want[i].Tokens) {
			t.Fatalf("doc %d tokens differ", i)
		}
		for j := range want[i].Tokens {
			if got[i].Tokens[j] != want[i].Tokens[j] {
				t.Fatalf("doc %d token %d differs", i, j)
			}
		}
	}
}

// TestEmptyCorpus: zero documents produce an empty histogram.
func TestEmptyCorpus(t *testing.T) {
	tg := nlp.NewTagger()
	s := core.NewSession(core.Options{Workers: 2})
	counts := nlpsa.POSCounts(s, nlpsa.Pipe(s, tg, make([]string, 0, 1)))
	v, err := counts.Get()
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		if m, ok := v.(map[string]int64); ok && len(m) != 0 {
			t.Fatalf("want empty histogram, got %v", m)
		}
	}
}

// TestSplitterErrorPaths covers the splitting API's type checks.
func TestSplitterErrorPaths(t *testing.T) {
	cs := nlpsa.CorpusSplitter{}
	if _, err := cs.Info(42, core.NewSplitType("CorpusSplit")); err == nil {
		t.Error("CorpusSplit Info should reject non-corpus values")
	}
	if !cs.InPlace() {
		t.Error("corpus pieces are views")
	}
	ds := nlpsa.DocsSplitter{}
	if _, err := ds.Info(42, core.NewSplitType("DocsSplit")); err == nil {
		t.Error("DocsSplit Info should reject non-doc values")
	}
	cr := nlpsa.CountReduceSplitter{}
	if _, err := cr.Split(nil, core.NewSplitType("CountReduce"), 0, 1); err == nil {
		t.Error("count partials must not split")
	}
	if info, err := cr.Info(map[string]int64{}, core.NewSplitType("CountReduce")); err != nil || info.Elems != 1 {
		t.Error("count Info")
	}
}

// TestCorpusSplitRoundTrip: split + merge reproduces the corpus.
func TestCorpusSplitRoundTrip(t *testing.T) {
	cs := nlpsa.CorpusSplitter{}
	c := corpus(23)
	typ := core.NewSplitType("CorpusSplit", int64(len(c)))
	var pieces []any
	for lo := int64(0); lo < int64(len(c)); lo += 5 {
		hi := lo + 5
		if hi > int64(len(c)) {
			hi = int64(len(c))
		}
		p, err := cs.Split(c, typ, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		pieces = append(pieces, p)
	}
	m, err := cs.Merge(pieces, typ)
	if err != nil {
		t.Fatal(err)
	}
	got := m.([]string)
	if len(got) != len(c) {
		t.Fatal("length")
	}
	for i := range c {
		if got[i] != c[i] {
			t.Fatal("order")
		}
	}
}

// TestDocsSplitterOnDocs: docs split/merge round trip via the default
// registry path.
func TestDocsSplitterOnDocs(t *testing.T) {
	tg := nlp.NewTagger()
	docs := tg.Pipe(corpus(9))
	ds := nlpsa.DocsSplitter{}
	typ := core.NewSplitType("DocsSplit", int64(len(docs)))
	p1, _ := ds.Split(docs, typ, 0, 4)
	p2, _ := ds.Split(docs, typ, 4, 9)
	m, err := ds.Merge([]any{p1, p2}, typ)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.([]*nlp.Doc)) != 9 {
		t.Fatal("merge length")
	}
	if info, err := ds.Info(docs, typ); err != nil || info.Elems != 9 {
		t.Fatal("docs info")
	}
}
