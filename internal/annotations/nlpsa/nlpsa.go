// Package nlpsa contains the split annotation and splitting API for the
// nlp library (the repository's spaCy stand-in): a corpus split type built
// on the library's own minibatch tokenizer, which lets any function that
// accepts a corpus of text be parallelized and pipelined (§7, spaCy).
package nlpsa

import (
	"fmt"

	"mozart/internal/core"
	"mozart/internal/nlp"
)

// CorpusSplitter splits a []string corpus into contiguous document ranges
// (zero-copy sub-slices) and merges by concatenation.
type CorpusSplitter struct{}

// InPlace reports that pieces alias the corpus slice.
func (CorpusSplitter) InPlace() bool { return true }

// Info reports one element per document; per-document bytes are estimated
// from the first document.
func (CorpusSplitter) Info(v any, t core.SplitType) (core.RuntimeInfo, error) {
	c, ok := v.([]string)
	if !ok {
		return core.RuntimeInfo{}, fmt.Errorf("nlpsa: CorpusSplit over %T", v)
	}
	bytes := int64(256)
	if len(c) > 0 {
		bytes = int64(len(c[0])) + 16
	}
	return core.RuntimeInfo{Elems: int64(len(c)), ElemBytes: bytes}, nil
}

// Split returns documents [start, end).
func (CorpusSplitter) Split(v any, t core.SplitType, start, end int64) (any, error) {
	return v.([]string)[start:end], nil
}

// Merge concatenates document ranges.
func (CorpusSplitter) Merge(pieces []any, t core.SplitType) (any, error) {
	var out []string
	for _, p := range pieces {
		out = append(out, p.([]string)...)
	}
	return out, nil
}

func corpusCtor(v any) (core.SplitType, error) {
	c, ok := v.([]string)
	if !ok {
		return core.SplitType{}, fmt.Errorf("nlpsa: CorpusSplit ctor over %T", v)
	}
	return core.NewSplitType("CorpusSplit", int64(len(c))), nil
}

// CorpusSplit is the CorpusSplit(corpus) type expression for the argument
// at idx.
func CorpusSplit(idx int) core.TypeExpr {
	return core.Concrete("CorpusSplit", CorpusSplitter{}, func(args []any) (core.SplitType, error) {
		return corpusCtor(args[idx])
	})
}

// DocsSplitter merges tagged-document slices by concatenation (the output
// side of Pipe).
type DocsSplitter struct{}

// InPlace reports that pieces alias produced storage.
func (DocsSplitter) InPlace() bool { return true }

// Info reports one element per document.
func (DocsSplitter) Info(v any, t core.SplitType) (core.RuntimeInfo, error) {
	d, ok := v.([]*nlp.Doc)
	if !ok {
		return core.RuntimeInfo{}, fmt.Errorf("nlpsa: DocsSplit over %T", v)
	}
	return core.RuntimeInfo{Elems: int64(len(d)), ElemBytes: 512}, nil
}

// Split returns documents [start, end).
func (DocsSplitter) Split(v any, t core.SplitType, start, end int64) (any, error) {
	return v.([]*nlp.Doc)[start:end], nil
}

// Merge concatenates document ranges.
func (DocsSplitter) Merge(pieces []any, t core.SplitType) (any, error) {
	var out []*nlp.Doc
	for _, p := range pieces {
		out = append(out, p.([]*nlp.Doc)...)
	}
	return out, nil
}

func docsCtor(v any) (core.SplitType, error) {
	d, ok := v.([]*nlp.Doc)
	if !ok {
		return core.SplitType{}, fmt.Errorf("nlpsa: DocsSplit ctor over %T", v)
	}
	return core.NewSplitType("DocsSplit", int64(len(d))), nil
}

// CountReduceSplitter merges POS histograms by addition.
type CountReduceSplitter struct{}

// Info treats the histogram as one unit.
func (CountReduceSplitter) Info(v any, t core.SplitType) (core.RuntimeInfo, error) {
	return core.RuntimeInfo{Elems: 1, ElemBytes: 256}, nil
}

// Split is invalid for reduction partials.
func (CountReduceSplitter) Split(v any, t core.SplitType, start, end int64) (any, error) {
	return nil, fmt.Errorf("nlpsa: CountReduce values cannot be split")
}

// Merge adds histograms.
func (CountReduceSplitter) Merge(pieces []any, t core.SplitType) (any, error) {
	acc := map[string]int64{}
	for _, p := range pieces {
		acc = nlp.MergeCounts(acc, p.(map[string]int64))
	}
	return acc, nil
}

func init() {
	core.RegisterDefaultSplit([]string(nil), CorpusSplitter{}, corpusCtor)
	core.RegisterDefaultSplit([]*nlp.Doc(nil), DocsSplitter{}, docsCtor)
}

// Pipe registers tagging of a corpus through the tagger; document batches
// process independently and concatenate.
func Pipe(s *core.Session, tagger *nlp.Tagger, corpus any) *core.Future {
	return s.Call(pipeFn, pipeSA, tagger, corpus)
}

var pipeFn core.Func = func(args []any) (any, error) {
	return args[0].(*nlp.Tagger).Pipe(args[1].([]string)), nil
}

var pipeSA = &core.Annotation{FuncName: "nlp.pipe", Params: []core.Param{
	{Name: "tagger", Type: core.Missing()},
	{Name: "corpus", Type: CorpusSplit(1)},
}, Ret: func() *core.TypeExpr { t := core.Generic("S"); return &t }()}

// POSCounts registers histogram feature extraction over tagged documents;
// partial histograms merge by addition.
func POSCounts(s *core.Session, docs any) *core.Future {
	return s.Call(posFn, posSA, docs)
}

var posFn core.Func = func(args []any) (any, error) {
	return nlp.POSCounts(args[0].([]*nlp.Doc)), nil
}

var posSA = &core.Annotation{FuncName: "nlp.posCounts", Params: []core.Param{
	{Name: "docs", Type: core.Generic("S")},
}, Ret: func() *core.TypeExpr {
	t := core.Concrete("CountReduce", CountReduceSplitter{}, core.FixedCtor(core.NewSplitType("CountReduce")))
	return &t
}()}
