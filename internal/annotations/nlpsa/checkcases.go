package nlpsa

import (
	"fmt"
	"math/rand"
	"reflect"

	"mozart/internal/annotations/checksuite"
	"mozart/internal/core"
	"mozart/internal/nlp"
)

// CheckCases exposes the tagging and featurization annotations for the
// repository-wide soundness suite in internal/annotations/checksuite. The
// tagger is stateless across documents, so document order is the only thing
// splitting could corrupt — exactly what DeepEqual over the docs catches.
func CheckCases() []checksuite.Case {
	corpus := func(n int, seed int64) []string {
		rng := rand.New(rand.NewSource(seed))
		subjects := []string{"film", "plot", "cast", "score", "ending"}
		verbs := []string{"was", "seemed", "felt"}
		adjs := []string{"great", "dull", "surprising", "uneven"}
		out := make([]string, n)
		for i := range out {
			out[i] = fmt.Sprintf("Review %d: the %s %s %s.", i,
				subjects[rng.Intn(len(subjects))], verbs[rng.Intn(len(verbs))], adjs[rng.Intn(len(adjs))])
		}
		return out
	}
	genPipe := func(seed int64) []any {
		return []any{nlp.NewTagger(), corpus(83, seed)}
	}
	genPOS := func(seed int64) []any {
		return []any{nlp.NewTagger().Pipe(corpus(67, seed))}
	}
	eq := func(got, want any) bool { return reflect.DeepEqual(got, want) }
	cfg := core.CheckConfig{Trials: 4, MaxBatch: 32}
	return []checksuite.Case{
		{Name: "nlp.pipe", CheckSpec: core.CheckSpec{Fn: pipeFn, Annotation: pipeSA, Gen: genPipe, Eq: eq, Config: cfg}},
		{Name: "nlp.posCounts", CheckSpec: core.CheckSpec{Fn: posFn, Annotation: posSA, Gen: genPOS, Eq: eq, Config: cfg}},
	}
}
