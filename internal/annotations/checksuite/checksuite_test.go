package checksuite_test

import (
	"testing"

	"mozart/internal/annotations/checksuite"
	"mozart/internal/annotations/framesa"
	"mozart/internal/annotations/gensa"
	"mozart/internal/annotations/imagesa"
	"mozart/internal/annotations/nlpsa"
	"mozart/internal/annotations/tensorsa"
	"mozart/internal/annotations/vmathsa"
	"mozart/internal/core"
)

// TestEveryAnnotationPackagePassesCheckAnnotation fuzz-checks the §3.4
// soundness condition for every registered annotation package in one
// table: each package contributes its Func/Annotation pairs via
// CheckCases(), and a package exporting no cases is itself a failure so a
// new integration cannot silently opt out of the suite.
func TestEveryAnnotationPackagePassesCheckAnnotation(t *testing.T) {
	groups := []struct {
		pkg   string
		cases []checksuite.Case
	}{
		{"vmathsa", vmathsa.CheckCases()},
		{"tensorsa", tensorsa.CheckCases()},
		{"framesa", framesa.CheckCases()},
		{"nlpsa", nlpsa.CheckCases()},
		{"imagesa", imagesa.CheckCases()},
		{"gensa", gensa.CheckCases()},
	}
	for _, g := range groups {
		if len(g.cases) == 0 {
			t.Errorf("%s: no check cases exported", g.pkg)
			continue
		}
		for _, c := range g.cases {
			t.Run(g.pkg+"/"+c.Name, func(t *testing.T) {
				spec := c.CheckSpec
				if spec.Config.Seed == 0 {
					spec.Config.Seed = int64(len(c.Name)) * 1031
				}
				if err := core.CheckAnnotation(spec); err != nil {
					t.Errorf("%s: %v", c.Name, err)
				}
			})
		}
	}
}
