// Package checksuite defines the shared shape of §7.1 soundness-check
// cases. Each annotation package exports CheckCases() []checksuite.Case
// from inside the package (the Func/Annotation pairs are unexported), and
// the suite's single table-driven test runs core.CheckAnnotation over every
// case of every registered package — the repository-wide answer to the
// paper's "we also fuzz tested our annotated functions".
package checksuite

import (
	"math"

	"mozart/internal/core"
)

// Case is one annotated function under soundness check: a name for the
// subtest plus the embedded core.CheckSpec (the raw Func/Annotation pair —
// not the session wrapper — argument generator, equality predicate, and
// check configuration).
type Case struct {
	Name string
	core.CheckSpec
}

// FloatsEq compares float64 scalars and []float64 slices with a relative
// tolerance, the equality most numeric cases need.
func FloatsEq(got, want any) bool {
	switch w := want.(type) {
	case float64:
		g, ok := got.(float64)
		return ok && close64(g, w)
	case []float64:
		g, ok := got.([]float64)
		if !ok || len(g) != len(w) {
			return false
		}
		for i := range g {
			if !close64(g[i], w[i]) {
				return false
			}
		}
		return true
	}
	return false
}

func close64(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(b))
}
