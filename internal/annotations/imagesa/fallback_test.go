package imagesa_test

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"mozart/internal/annotations/imagesa"
	"mozart/internal/core"
	"mozart/internal/imagelib"
)

// These tests pin the recovery paths against the zero-copy conversion: image
// pieces are now row-band views that alias the tracked value, so both batch
// retry and whole-call fallback are only correct if their pre-attempt /
// pre-stage snapshots (the registered *imagelib.Image snapshot) restore the
// aliased storage before re-execution. Without the restore, the failed
// batch's in-place gamma would apply twice and the pixel comparison below
// would catch it.

func gammaAnnotation() *core.Annotation {
	return &core.Annotation{FuncName: "gammaOnce", Params: []core.Param{
		{Name: "img", Mut: true, Type: imagesa.ImageSplit(0)},
		{Name: "g", Type: core.Missing()},
	}}
}

func noSleep(time.Duration) {}

// TestRetryRestoresAliasedBands: a call that gammas its band in place and
// then fails transiently must, under RetryPolicy, replay only that batch —
// and because the band aliases the source image, the replay is correct only
// when the pre-attempt snapshot rolled the band back first.
func TestRetryRestoresAliasedBands(t *testing.T) {
	img := randImage(16, 64, 21)
	ref := img.Clone()
	imagelib.Gamma(ref, 0.5)

	var calls atomic.Int64
	fn := func(args []any) (any, error) {
		imagelib.Gamma(args[0].(*imagelib.Image), args[1].(float64))
		if calls.Add(1) == 2 {
			return nil, fmt.Errorf("injected blip: %w", core.ErrTransient)
		}
		return nil, nil
	}

	s := core.NewSession(core.Options{Workers: 2, BatchElems: 8,
		RetryPolicy: core.RetryPolicy{MaxAttempts: 3, Sleep: noSleep}})
	fut := s.Track(img)
	s.Call(fn, gammaAnnotation(), img, 0.5)
	v, err := fut.Get()
	if err != nil {
		t.Fatal(err)
	}
	got := v.(*imagelib.Image)
	if got != img {
		t.Fatal("future should still resolve to the original allocation")
	}
	if !got.Equal(ref) {
		t.Fatal("retry replayed an aliased band without restoring it (gamma applied twice)")
	}
	if rb := s.Stats().RetriedBatches; rb != 1 {
		t.Errorf("RetriedBatches = %d, want 1", rb)
	}
}

// TestFallbackRestoresAliasedBands: a panic mid-stage (an annotation fault)
// escalates to FallbackWholeCall after some bands were already mutated
// through their views. The whole-call re-execution must start from the
// pre-stage snapshot of the tracked image, not the partially-gammaed bytes.
func TestFallbackRestoresAliasedBands(t *testing.T) {
	img := randImage(16, 64, 22)
	ref := img.Clone()
	imagelib.Gamma(ref, 0.5)

	var calls atomic.Int64
	fn := func(args []any) (any, error) {
		imagelib.Gamma(args[0].(*imagelib.Image), args[1].(float64))
		// Panic after mutating, and only while running over split bands (the
		// whole-call fallback passes the full image, which has more rows).
		if args[0].(*imagelib.Image).H <= 8 && calls.Add(1) == 2 {
			panic("injected annotation fault")
		}
		return nil, nil
	}

	s := core.NewSession(core.Options{Workers: 2, BatchElems: 8,
		FallbackPolicy: core.FallbackWholeCall})
	fut := s.Track(img)
	s.Call(fn, gammaAnnotation(), img, 0.5)
	v, err := fut.Get()
	if err != nil {
		t.Fatal(err)
	}
	got := v.(*imagelib.Image)
	if !got.Equal(ref) {
		t.Fatal("fallback re-ran over partially-mutated storage (snapshot restore missing)")
	}
	st := s.Stats()
	if st.FallbackStages != 1 {
		t.Errorf("FallbackStages = %d, want 1", st.FallbackStages)
	}
	if st.RecoveredPanics < 1 {
		t.Errorf("RecoveredPanics = %d, want >= 1", st.RecoveredPanics)
	}
}
