package imagesa_test

import (
	"math/rand"
	"testing"

	"mozart/internal/annotations/imagesa"
	"mozart/internal/core"
	"mozart/internal/imagelib"
)

func randImage(w, h int, seed int64) *imagelib.Image {
	m := imagelib.NewImage(w, h)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < len(m.Pix); i += 4 {
		m.Pix[i] = uint8(rng.Intn(256))
		m.Pix[i+1] = uint8(rng.Intn(256))
		m.Pix[i+2] = uint8(rng.Intn(256))
		m.Pix[i+3] = 255
	}
	return m
}

// TestFilterPipelineMatchesLibrary runs a Gotham-style chain under Mozart
// and compares with direct library calls.
func TestFilterPipelineMatchesLibrary(t *testing.T) {
	img := randImage(32, 100, 1)
	ref := img.Clone()
	imagelib.Modulate(ref, 120, 10, 100)
	imagelib.Colorize(ref, 34, 43, 109, 0.2)
	imagelib.Gamma(ref, 0.5)
	imagelib.SigmoidalContrast(ref, true, 3, 128)

	s := core.NewSession(core.Options{Workers: 3, BatchElems: 13})
	fut := s.Track(img)
	imagesa.Modulate(s, img, 120, 10, 100)
	imagesa.Colorize(s, img, 34, 43, 109, 0.2)
	imagesa.Gamma(s, img, 0.5)
	imagesa.SigmoidalContrast(s, img, true, 3, 128)
	v, err := fut.Get()
	if err != nil {
		t.Fatal(err)
	}
	got := v.(*imagelib.Image)
	if !got.Equal(ref) {
		t.Fatal("pipelined filter differs from library")
	}
	if s.Stats().Stages != 1 {
		t.Errorf("want 1 stage, got %d", s.Stats().Stages)
	}
}

// TestWriteBackAliasesValue: image splits are views now, so the tracked
// future resolves to the original allocation, mutated in place through the
// aliasing row bands.
func TestWriteBackAliasesValue(t *testing.T) {
	img := randImage(8, 20, 2)
	ref := img.Clone()
	imagelib.Grayscale(ref)
	s := core.NewSession(core.Options{Workers: 2, BatchElems: 4})
	fut := s.Track(img)
	imagesa.Grayscale(s, img)
	v, err := fut.Get()
	if err != nil {
		t.Fatal(err)
	}
	got := v.(*imagelib.Image)
	if got != img {
		t.Fatal("future should resolve to the original allocation (bands alias)")
	}
	if !got.Equal(ref) {
		t.Fatal("grayscale mismatch")
	}
}

// TestCopySplitterKeepsCopySemantics: the BandCopySplitter preserves the
// paper's original copy-out/copy-back behaviour — the merged result is a new
// image and the original allocation stays untouched.
func TestCopySplitterKeepsCopySemantics(t *testing.T) {
	img := randImage(8, 20, 7)
	orig := img.Clone()
	ref := img.Clone()
	imagelib.Gamma(ref, 0.5)

	sa := &core.Annotation{FuncName: "gammaCopy", Params: []core.Param{
		{Name: "img", Mut: true, Type: imagesa.ImageCopySplit(0)},
		{Name: "g", Type: core.Missing()},
	}}
	fn := func(args []any) (any, error) {
		imagelib.Gamma(args[0].(*imagelib.Image), args[1].(float64))
		return nil, nil
	}
	s := core.NewSession(core.Options{Workers: 2, BatchElems: 4})
	fut := s.Track(img)
	s.Call(fn, sa, img, 0.5)
	v, err := fut.Get()
	if err != nil {
		t.Fatal(err)
	}
	got := v.(*imagelib.Image)
	if got == img {
		t.Fatal("copy splitter must produce a fresh merged image")
	}
	if !img.Equal(orig) {
		t.Fatal("original allocation should be untouched (crop copies)")
	}
	if !got.Equal(ref) {
		t.Fatal("gamma mismatch")
	}
}

// TestBlurBreaksPipeline: the un-splittable blur runs whole between split
// stages, and later split calls see its output.
func TestBlurBreaksPipeline(t *testing.T) {
	img := randImage(16, 60, 3)
	ref := img.Clone()
	imagelib.Gamma(ref, 0.8)
	imagelib.GaussianBlur(ref, 1.5)
	imagelib.Colorize(ref, 255, 153, 102, 0.1)

	s := core.NewSession(core.Options{Workers: 2, BatchElems: 10})
	fut := s.Track(img)
	imagesa.Gamma(s, img, 0.8)
	imagesa.GaussianBlur(s, img, 1.5)
	imagesa.Colorize(s, img, 255, 153, 102, 0.1)
	v, err := fut.Get()
	if err != nil {
		t.Fatal(err)
	}
	if !v.(*imagelib.Image).Equal(ref) {
		t.Fatal("blur pipeline mismatch")
	}
	if s.Stats().Stages != 3 {
		t.Errorf("want 3 stages (split | whole blur | split), got %d", s.Stats().Stages)
	}
}

// TestBlendSplitsBothImages: Blend's two image arguments split together.
func TestBlendSplitsBothImages(t *testing.T) {
	a, b := randImage(12, 48, 4), randImage(12, 48, 5)
	ref := a.Clone()
	imagelib.Blend(ref, b, 0.4)

	s := core.NewSession(core.Options{Workers: 4, BatchElems: 7})
	fut := s.Track(a)
	imagesa.Blend(s, a, b, 0.4)
	v, err := fut.Get()
	if err != nil {
		t.Fatal(err)
	}
	if !v.(*imagelib.Image).Equal(ref) {
		t.Fatal("blend mismatch")
	}
}

// TestLevelAndChannelScale: remaining wrappers against the library.
func TestLevelAndChannelScale(t *testing.T) {
	img := randImage(10, 30, 6)
	ref := img.Clone()
	imagelib.Level(ref, 10, 240)
	imagelib.ChannelScale(ref, 2, 0.8)

	s := core.NewSession(core.Options{Workers: 2, BatchElems: 16})
	fut := s.Track(img)
	imagesa.Level(s, img, 10, 240)
	imagesa.ChannelScale(s, img, 2, 0.8)
	v, err := fut.Get()
	if err != nil {
		t.Fatal(err)
	}
	if !v.(*imagelib.Image).Equal(ref) {
		t.Fatal("level/channel mismatch")
	}
}

// TestCheckAnnotationOnImageOps runs the §7.1 soundness fuzz checker: every
// pixel-local op passes under its row-split annotation, while the same
// annotation applied to GaussianBlur — whose boundary condition reads
// neighbouring rows — is rejected.
func TestCheckAnnotationOnImageOps(t *testing.T) {
	gen := func(seed int64) []any {
		return []any{randImage(24, 40, seed), 0.8}
	}
	eq := func(got, want any) bool {
		g, ok1 := got.(*imagelib.Image)
		w, ok2 := want.(*imagelib.Image)
		return ok1 && ok2 && g.Equal(w)
	}

	gammaSA := &core.Annotation{FuncName: "gamma", Params: []core.Param{
		{Name: "img", Mut: true, Type: imagesa.ImageSplit(0)},
		{Name: "g", Type: core.Missing()},
	}}
	gammaFn := func(args []any) (any, error) {
		imagelib.Gamma(args[0].(*imagelib.Image), args[1].(float64))
		return nil, nil
	}
	if err := core.CheckAnnotation(core.CheckSpec{Fn: gammaFn, Annotation: gammaSA, Gen: gen, Eq: eq, Config: core.CheckConfig{Seed: 9, MaxBatch: 16}}); err != nil {
		t.Fatalf("gamma should be soundly splittable: %v", err)
	}

	// Deliberately give Blur the same splittable annotation: unsound.
	blurSA := &core.Annotation{FuncName: "blur", Params: []core.Param{
		{Name: "img", Mut: true, Type: imagesa.ImageSplit(0)},
		{Name: "sigma", Type: core.Missing()},
	}}
	blurFn := func(args []any) (any, error) {
		imagelib.GaussianBlur(args[0].(*imagelib.Image), args[1].(float64))
		return nil, nil
	}
	genBlur := func(seed int64) []any { return []any{randImage(24, 40, seed), 1.5} }
	if err := core.CheckAnnotation(core.CheckSpec{Fn: blurFn, Annotation: blurSA, Gen: genBlur, Eq: eq, Config: core.CheckConfig{Seed: 10, MaxBatch: 16}}); err == nil {
		t.Fatal("a splittable Blur annotation must be rejected by the checker (§7.1)")
	}
}
