// Package imagesa contains the split annotations and splitting API for the
// imagelib library (the repository's ImageMagick stand-in), following the
// paper's §7 integration: one split type for the image handle over full-width
// row bands. The default ImageSplitter now produces aliasing views (zero
// copy, CapInPlace|CapView): a band is just a sub-slice of the pixel buffer,
// so mutations land in the original allocation and no merge is needed for
// mut arguments. The paper's original copying integration — Crop out, append
// back — is preserved as BandCopySplitter/ImageCopySplit; it is the §8.2
// split/merge-overhead baseline and the right choice when pieces must not
// alias the source. GaussianBlur stays on the copying/whole-call path: its
// boundary condition reads rows outside any band, so it cannot be split at
// all (§7.1).
package imagesa

import (
	"fmt"

	"mozart/internal/core"
	"mozart/internal/imagelib"
)

// ImageSplitter splits an image into full-width row-band views. Pieces alias
// the source pixel buffer, so mutations are in place and mut arguments need
// no merge; merges of returned values stitch contiguous bands back without
// copying.
type ImageSplitter struct{}

// InPlace reports that row bands alias the original pixel buffer.
func (ImageSplitter) InPlace() bool { return true }

// Info reports one element per pixel row.
func (ImageSplitter) Info(v any, t core.SplitType) (core.RuntimeInfo, error) {
	m, ok := v.(*imagelib.Image)
	if !ok {
		return core.RuntimeInfo{}, fmt.Errorf("imagesa: ImageSplit over %T", v)
	}
	return core.RuntimeInfo{Elems: int64(m.H), ElemBytes: int64(m.W) * 4}, nil
}

// bandView returns the aliasing full-width row band [start, end).
func bandView(m *imagelib.Image, start, end int64) (*imagelib.Image, error) {
	if start < 0 || end < start || end > int64(m.H) {
		return nil, fmt.Errorf("imagesa: split [%d,%d) beyond height %d", start, end, m.H)
	}
	stride := int64(m.W) * 4
	return &imagelib.Image{W: m.W, H: int(end - start), Pix: m.Pix[start*stride : end*stride]}, nil
}

// Split returns the row-band view [start, end).
func (ImageSplitter) Split(v any, t core.SplitType, start, end int64) (any, error) {
	return bandView(v.(*imagelib.Image), start, end)
}

// SplitView is the zero-allocation split (core.ViewSplitter): the reuse
// image's header is retargeted at the requested band in place.
func (ImageSplitter) SplitView(v any, t core.SplitType, start, end int64, reuse any) (any, error) {
	m := v.(*imagelib.Image)
	if start < 0 || end < start || end > int64(m.H) {
		return nil, fmt.Errorf("imagesa: split [%d,%d) beyond height %d", start, end, m.H)
	}
	stride := int64(m.W) * 4
	pix := m.Pix[start*stride : end*stride]
	if r, ok := reuse.(*imagelib.Image); ok && r != m {
		r.W, r.H, r.Pix = m.W, int(end-start), pix
		return reuse, nil
	}
	return &imagelib.Image{W: m.W, H: int(end - start), Pix: pix}, nil
}

// SplitAt returns the window view [start, end) for out-of-core streaming
// (core.SplitterAt); for view bands the window is the band itself.
func (ImageSplitter) SplitAt(v any, t core.SplitType, start, end int64) (any, error) {
	return bandView(v.(*imagelib.Image), start, end)
}

// Merge stacks row bands back into one image. Bands that are contiguous
// views of one pixel buffer are stitched by reslicing (zero copy, no scratch
// slice); otherwise the pixels are copied once into a fresh buffer — never
// appended into a band's own backing, which the bands may alias.
func (ImageSplitter) Merge(pieces []any, t core.SplitType) (any, error) {
	if len(pieces) == 0 {
		return &imagelib.Image{}, nil
	}
	if out, ok := stitchImages(pieces); ok {
		return out, nil
	}
	first := pieces[0].(*imagelib.Image)
	h, n := 0, 0
	for _, p := range pieces {
		m := p.(*imagelib.Image)
		if m.W != first.W {
			return nil, fmt.Errorf("imagesa: merge width mismatch %d vs %d", m.W, first.W)
		}
		h += m.H
		n += len(m.Pix)
	}
	out := &imagelib.Image{W: first.W, H: h, Pix: make([]uint8, 0, n)}
	for _, p := range pieces {
		out.Pix = append(out.Pix, p.(*imagelib.Image).Pix...)
	}
	return out, nil
}

// stitchImages reslices in-order contiguous row-band views of one pixel
// buffer back into a single image sharing that storage. Reports false
// (caller copies) on width mismatch or any physical discontinuity.
func stitchImages(pieces []any) (*imagelib.Image, bool) {
	first, ok := pieces[0].(*imagelib.Image)
	if !ok {
		return nil, false
	}
	w, h, pix := first.W, first.H, first.Pix
	for _, p := range pieces[1:] {
		m, ok := p.(*imagelib.Image)
		if !ok || m.W != w {
			return nil, false
		}
		h += m.H
		if len(m.Pix) == 0 {
			continue
		}
		if len(pix) == 0 {
			pix = m.Pix
			continue
		}
		if cap(pix) < len(pix)+len(m.Pix) {
			return nil, false
		}
		ext := pix[:len(pix)+len(m.Pix)]
		if &ext[len(pix)] != &m.Pix[0] {
			return nil, false
		}
		pix = ext
	}
	return &imagelib.Image{W: w, H: h, Pix: pix}, true
}

// BandCopySplitter is the paper's original copying ImageMagick integration:
// Split crops the band out (a copy) and Merge appends the bands back
// together (another copy). It is kept as the split/merge-overhead baseline
// (§8.2, §8.5) and for callers whose pieces must not alias the source image.
type BandCopySplitter struct{}

// Info reports one element per pixel row.
func (BandCopySplitter) Info(v any, t core.SplitType) (core.RuntimeInfo, error) {
	return ImageSplitter{}.Info(v, t)
}

// Split crops rows [start, end) into a fresh image.
func (BandCopySplitter) Split(v any, t core.SplitType, start, end int64) (any, error) {
	return v.(*imagelib.Image).Crop(int(start), int(end)), nil
}

// Merge appends the bands vertically into a fresh image.
func (BandCopySplitter) Merge(pieces []any, t core.SplitType) (any, error) {
	imgs := make([]*imagelib.Image, len(pieces))
	for i, p := range pieces {
		imgs[i] = p.(*imagelib.Image)
	}
	return imagelib.AppendVertically(imgs...), nil
}

func imageCtor(v any) (core.SplitType, error) {
	m, ok := v.(*imagelib.Image)
	if !ok || m == nil {
		return core.SplitType{}, fmt.Errorf("imagesa: ImageSplit ctor over %T", v)
	}
	return core.NewSplitType("ImageSplit", int64(m.W), int64(m.H)), nil
}

// ImageSplit is the ImageSplit(img) type expression for the argument at
// imgIdx, using the view-based splitter.
func ImageSplit(imgIdx int) core.TypeExpr {
	return core.Concrete("ImageSplit", ImageSplitter{}, func(args []any) (core.SplitType, error) {
		return imageCtor(args[imgIdx])
	})
}

// ImageCopySplit is ImageSplit on the copying splitter: pieces are cropped
// copies and merges rebuild a fresh image, exactly as the paper's §7
// ImageMagick integration does.
func ImageCopySplit(imgIdx int) core.TypeExpr {
	return core.Concrete("ImageSplit", BandCopySplitter{}, func(args []any) (core.SplitType, error) {
		return imageCtor(args[imgIdx])
	})
}

func init() {
	core.RegisterDefaultSplit((*imagelib.Image)(nil), ImageSplitter{}, imageCtor)

	// Snapshot support for whole-call fallback and batch retry: images are
	// now mutated in place through row-band views, so the runtime must be
	// able to restore the pixel buffer before re-executing.
	core.RegisterSnapshot((*imagelib.Image)(nil), func(v any) (func() error, error) {
		m := v.(*imagelib.Image)
		saved := append([]uint8(nil), m.Pix...)
		return func() error {
			copy(m.Pix, saved)
			return nil
		}, nil
	})
}

// Modulate registers brightness/saturation/hue modulation.
func Modulate(s *core.Session, img any, brightness, saturation, hue float64) {
	s.Call(modulateFn, modulateSA, img, brightness, saturation, hue)
}

var modulateFn core.Func = func(args []any) (any, error) {
	imagelib.Modulate(args[0].(*imagelib.Image), args[1].(float64), args[2].(float64), args[3].(float64))
	return nil, nil
}

var modulateSA = &core.Annotation{FuncName: "MagickModulateImage", Params: []core.Param{
	{Name: "img", Mut: true, Type: ImageSplit(0)},
	{Name: "brightness", Type: core.Missing()},
	{Name: "saturation", Type: core.Missing()},
	{Name: "hue", Type: core.Missing()},
}}

// Gamma registers gamma correction.
func Gamma(s *core.Session, img any, gamma float64) {
	s.Call(gammaFn, gammaSA, img, gamma)
}

var gammaFn core.Func = func(args []any) (any, error) {
	imagelib.Gamma(args[0].(*imagelib.Image), args[1].(float64))
	return nil, nil
}

var gammaSA = &core.Annotation{FuncName: "MagickGammaImage", Params: []core.Param{
	{Name: "img", Mut: true, Type: ImageSplit(0)},
	{Name: "gamma", Type: core.Missing()},
}}

// Colorize registers a colorize blend.
func Colorize(s *core.Session, img any, r, g, b uint8, alpha float64) {
	s.Call(colorizeFn, colorizeSA, img, r, g, b, alpha)
}

var colorizeFn core.Func = func(args []any) (any, error) {
	imagelib.Colorize(args[0].(*imagelib.Image), args[1].(uint8), args[2].(uint8), args[3].(uint8), args[4].(float64))
	return nil, nil
}

var colorizeSA = &core.Annotation{FuncName: "MagickColorizeImage", Params: []core.Param{
	{Name: "img", Mut: true, Type: ImageSplit(0)},
	{Name: "r", Type: core.Missing()},
	{Name: "g", Type: core.Missing()},
	{Name: "b", Type: core.Missing()},
	{Name: "alpha", Type: core.Missing()},
}}

// SigmoidalContrast registers an S-curve contrast adjustment.
func SigmoidalContrast(s *core.Session, img any, sharpen bool, contrast, midpoint float64) {
	s.Call(contrastFn, contrastSA, img, sharpen, contrast, midpoint)
}

var contrastFn core.Func = func(args []any) (any, error) {
	imagelib.SigmoidalContrast(args[0].(*imagelib.Image), args[1].(bool), args[2].(float64), args[3].(float64))
	return nil, nil
}

var contrastSA = &core.Annotation{FuncName: "MagickSigmoidalContrastImage", Params: []core.Param{
	{Name: "img", Mut: true, Type: ImageSplit(0)},
	{Name: "sharpen", Type: core.Missing()},
	{Name: "contrast", Type: core.Missing()},
	{Name: "midpoint", Type: core.Missing()},
}}

// Level registers a channel-range remap.
func Level(s *core.Session, img any, black, white float64) {
	s.Call(levelFn, levelSA, img, black, white)
}

var levelFn core.Func = func(args []any) (any, error) {
	imagelib.Level(args[0].(*imagelib.Image), args[1].(float64), args[2].(float64))
	return nil, nil
}

var levelSA = &core.Annotation{FuncName: "MagickLevelImage", Params: []core.Param{
	{Name: "img", Mut: true, Type: ImageSplit(0)},
	{Name: "black", Type: core.Missing()},
	{Name: "white", Type: core.Missing()},
}}

// ChannelScale registers scaling of one channel.
func ChannelScale(s *core.Session, img any, channel int, factor float64) {
	s.Call(chanFn, chanSA, img, channel, factor)
}

var chanFn core.Func = func(args []any) (any, error) {
	imagelib.ChannelScale(args[0].(*imagelib.Image), args[1].(int), args[2].(float64))
	return nil, nil
}

var chanSA = &core.Annotation{FuncName: "MagickEvaluateImageChannel", Params: []core.Param{
	{Name: "img", Mut: true, Type: ImageSplit(0)},
	{Name: "channel", Type: core.Missing()},
	{Name: "factor", Type: core.Missing()},
}}

// Grayscale registers luma conversion.
func Grayscale(s *core.Session, img any) { s.Call(grayFn, graySA, img) }

var grayFn core.Func = func(args []any) (any, error) {
	imagelib.Grayscale(args[0].(*imagelib.Image))
	return nil, nil
}

var graySA = &core.Annotation{FuncName: "MagickGrayscaleImage", Params: []core.Param{
	{Name: "img", Mut: true, Type: ImageSplit(0)},
}}

// Blend registers compositing src over dst; both images split together.
func Blend(s *core.Session, dst, src any, alpha float64) {
	s.Call(blendFn, blendSA, dst, src, alpha)
}

var blendFn core.Func = func(args []any) (any, error) {
	imagelib.Blend(args[0].(*imagelib.Image), args[1].(*imagelib.Image), args[2].(float64))
	return nil, nil
}

var blendSA = &core.Annotation{FuncName: "MagickCompositeImage", Params: []core.Param{
	{Name: "dst", Mut: true, Type: ImageSplit(0)},
	{Name: "src", Type: ImageSplit(1)},
	{Name: "alpha", Type: core.Missing()},
}}

// GaussianBlur registers a whole-image blur. The blur's boundary condition
// reads rows outside any band, so it CANNOT be given a splittable
// annotation (§7.1); the all-"_" annotation makes it run whole and break
// pipelines around it.
func GaussianBlur(s *core.Session, img any, sigma float64) {
	s.Call(blurFn, blurSA, img, sigma)
}

var blurFn core.Func = func(args []any) (any, error) {
	imagelib.GaussianBlur(args[0].(*imagelib.Image), args[1].(float64))
	return nil, nil
}

var blurSA = &core.Annotation{FuncName: "MagickGaussianBlurImage", Params: []core.Param{
	{Name: "img", Mut: true, Type: core.Missing()},
	{Name: "sigma", Type: core.Missing()},
}}
