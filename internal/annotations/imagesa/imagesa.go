// Package imagesa contains the split annotations and splitting API for the
// imagelib library (the repository's ImageMagick stand-in), following the
// paper's §7 integration: one split type for the image handle whose split
// function crops full-width row bands (a copy) and whose merge appends the
// bands back together (another copy). Because split and merge both copy,
// this integration exhibits the split/merge overhead the paper reports for
// the Nashville and Gotham workloads (§8.2, §8.5).
package imagesa

import (
	"fmt"

	"mozart/internal/core"
	"mozart/internal/imagelib"
)

// ImageSplitter splits an image into cropped row bands and merges them by
// vertical append. Pieces are copies, so mutated bands are written back
// through the merged value (use Session.Track to observe the result).
type ImageSplitter struct{}

// Info reports one element per pixel row.
func (ImageSplitter) Info(v any, t core.SplitType) (core.RuntimeInfo, error) {
	m, ok := v.(*imagelib.Image)
	if !ok {
		return core.RuntimeInfo{}, fmt.Errorf("imagesa: ImageSplit over %T", v)
	}
	return core.RuntimeInfo{Elems: int64(m.H), ElemBytes: int64(m.W) * 4}, nil
}

// Split crops rows [start, end).
func (ImageSplitter) Split(v any, t core.SplitType, start, end int64) (any, error) {
	return v.(*imagelib.Image).Crop(int(start), int(end)), nil
}

// Merge appends the bands vertically.
func (ImageSplitter) Merge(pieces []any, t core.SplitType) (any, error) {
	imgs := make([]*imagelib.Image, len(pieces))
	for i, p := range pieces {
		imgs[i] = p.(*imagelib.Image)
	}
	return imagelib.AppendVertically(imgs...), nil
}

func imageCtor(v any) (core.SplitType, error) {
	m, ok := v.(*imagelib.Image)
	if !ok || m == nil {
		return core.SplitType{}, fmt.Errorf("imagesa: ImageSplit ctor over %T", v)
	}
	return core.NewSplitType("ImageSplit", int64(m.W), int64(m.H)), nil
}

// ImageSplit is the ImageSplit(img) type expression for the argument at
// imgIdx.
func ImageSplit(imgIdx int) core.TypeExpr {
	return core.Concrete("ImageSplit", ImageSplitter{}, func(args []any) (core.SplitType, error) {
		return imageCtor(args[imgIdx])
	})
}

func init() {
	core.RegisterDefaultSplit((*imagelib.Image)(nil), ImageSplitter{}, imageCtor)
}

// Modulate registers brightness/saturation/hue modulation.
func Modulate(s *core.Session, img any, brightness, saturation, hue float64) {
	s.Call(modulateFn, modulateSA, img, brightness, saturation, hue)
}

var modulateFn core.Func = func(args []any) (any, error) {
	imagelib.Modulate(args[0].(*imagelib.Image), args[1].(float64), args[2].(float64), args[3].(float64))
	return nil, nil
}

var modulateSA = &core.Annotation{FuncName: "MagickModulateImage", Params: []core.Param{
	{Name: "img", Mut: true, Type: ImageSplit(0)},
	{Name: "brightness", Type: core.Missing()},
	{Name: "saturation", Type: core.Missing()},
	{Name: "hue", Type: core.Missing()},
}}

// Gamma registers gamma correction.
func Gamma(s *core.Session, img any, gamma float64) {
	s.Call(gammaFn, gammaSA, img, gamma)
}

var gammaFn core.Func = func(args []any) (any, error) {
	imagelib.Gamma(args[0].(*imagelib.Image), args[1].(float64))
	return nil, nil
}

var gammaSA = &core.Annotation{FuncName: "MagickGammaImage", Params: []core.Param{
	{Name: "img", Mut: true, Type: ImageSplit(0)},
	{Name: "gamma", Type: core.Missing()},
}}

// Colorize registers a colorize blend.
func Colorize(s *core.Session, img any, r, g, b uint8, alpha float64) {
	s.Call(colorizeFn, colorizeSA, img, r, g, b, alpha)
}

var colorizeFn core.Func = func(args []any) (any, error) {
	imagelib.Colorize(args[0].(*imagelib.Image), args[1].(uint8), args[2].(uint8), args[3].(uint8), args[4].(float64))
	return nil, nil
}

var colorizeSA = &core.Annotation{FuncName: "MagickColorizeImage", Params: []core.Param{
	{Name: "img", Mut: true, Type: ImageSplit(0)},
	{Name: "r", Type: core.Missing()},
	{Name: "g", Type: core.Missing()},
	{Name: "b", Type: core.Missing()},
	{Name: "alpha", Type: core.Missing()},
}}

// SigmoidalContrast registers an S-curve contrast adjustment.
func SigmoidalContrast(s *core.Session, img any, sharpen bool, contrast, midpoint float64) {
	s.Call(contrastFn, contrastSA, img, sharpen, contrast, midpoint)
}

var contrastFn core.Func = func(args []any) (any, error) {
	imagelib.SigmoidalContrast(args[0].(*imagelib.Image), args[1].(bool), args[2].(float64), args[3].(float64))
	return nil, nil
}

var contrastSA = &core.Annotation{FuncName: "MagickSigmoidalContrastImage", Params: []core.Param{
	{Name: "img", Mut: true, Type: ImageSplit(0)},
	{Name: "sharpen", Type: core.Missing()},
	{Name: "contrast", Type: core.Missing()},
	{Name: "midpoint", Type: core.Missing()},
}}

// Level registers a channel-range remap.
func Level(s *core.Session, img any, black, white float64) {
	s.Call(levelFn, levelSA, img, black, white)
}

var levelFn core.Func = func(args []any) (any, error) {
	imagelib.Level(args[0].(*imagelib.Image), args[1].(float64), args[2].(float64))
	return nil, nil
}

var levelSA = &core.Annotation{FuncName: "MagickLevelImage", Params: []core.Param{
	{Name: "img", Mut: true, Type: ImageSplit(0)},
	{Name: "black", Type: core.Missing()},
	{Name: "white", Type: core.Missing()},
}}

// ChannelScale registers scaling of one channel.
func ChannelScale(s *core.Session, img any, channel int, factor float64) {
	s.Call(chanFn, chanSA, img, channel, factor)
}

var chanFn core.Func = func(args []any) (any, error) {
	imagelib.ChannelScale(args[0].(*imagelib.Image), args[1].(int), args[2].(float64))
	return nil, nil
}

var chanSA = &core.Annotation{FuncName: "MagickEvaluateImageChannel", Params: []core.Param{
	{Name: "img", Mut: true, Type: ImageSplit(0)},
	{Name: "channel", Type: core.Missing()},
	{Name: "factor", Type: core.Missing()},
}}

// Grayscale registers luma conversion.
func Grayscale(s *core.Session, img any) { s.Call(grayFn, graySA, img) }

var grayFn core.Func = func(args []any) (any, error) {
	imagelib.Grayscale(args[0].(*imagelib.Image))
	return nil, nil
}

var graySA = &core.Annotation{FuncName: "MagickGrayscaleImage", Params: []core.Param{
	{Name: "img", Mut: true, Type: ImageSplit(0)},
}}

// Blend registers compositing src over dst; both images split together.
func Blend(s *core.Session, dst, src any, alpha float64) {
	s.Call(blendFn, blendSA, dst, src, alpha)
}

var blendFn core.Func = func(args []any) (any, error) {
	imagelib.Blend(args[0].(*imagelib.Image), args[1].(*imagelib.Image), args[2].(float64))
	return nil, nil
}

var blendSA = &core.Annotation{FuncName: "MagickCompositeImage", Params: []core.Param{
	{Name: "dst", Mut: true, Type: ImageSplit(0)},
	{Name: "src", Type: ImageSplit(1)},
	{Name: "alpha", Type: core.Missing()},
}}

// GaussianBlur registers a whole-image blur. The blur's boundary condition
// reads rows outside any band, so it CANNOT be given a splittable
// annotation (§7.1); the all-"_" annotation makes it run whole and break
// pipelines around it.
func GaussianBlur(s *core.Session, img any, sigma float64) {
	s.Call(blurFn, blurSA, img, sigma)
}

var blurFn core.Func = func(args []any) (any, error) {
	imagelib.GaussianBlur(args[0].(*imagelib.Image), args[1].(float64))
	return nil, nil
}

var blurSA = &core.Annotation{FuncName: "MagickGaussianBlurImage", Params: []core.Param{
	{Name: "img", Mut: true, Type: core.Missing()},
	{Name: "sigma", Type: core.Missing()},
}}
