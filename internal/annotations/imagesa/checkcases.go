package imagesa

import (
	"math/rand"

	"mozart/internal/annotations/checksuite"
	"mozart/internal/core"
	"mozart/internal/imagelib"
)

// CheckCases exposes representative pixel-local annotations for the
// repository-wide soundness suite in internal/annotations/checksuite. All
// of these operate row-locally, so the row split is sound; the unsound
// counter-example (a row-split Blur) lives in this package's tests.
func CheckCases() []checksuite.Case {
	img := func(seed int64) *imagelib.Image {
		m := imagelib.NewImage(24, 40)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < len(m.Pix); i += 4 {
			m.Pix[i] = uint8(rng.Intn(256))
			m.Pix[i+1] = uint8(rng.Intn(256))
			m.Pix[i+2] = uint8(rng.Intn(256))
			m.Pix[i+3] = 255
		}
		return m
	}
	eq := func(got, want any) bool {
		g, ok1 := got.(*imagelib.Image)
		w, ok2 := want.(*imagelib.Image)
		return ok1 && ok2 && g.Equal(w)
	}
	cfg := core.CheckConfig{Trials: 4, MaxBatch: 16}
	return []checksuite.Case{
		{Name: "MagickGammaImage", CheckSpec: core.CheckSpec{Fn: gammaFn, Annotation: gammaSA,
			Gen: func(seed int64) []any { return []any{img(seed), 0.8} }, Eq: eq, Config: cfg}},
		{Name: "MagickLevelImage", CheckSpec: core.CheckSpec{Fn: levelFn, Annotation: levelSA,
			Gen: func(seed int64) []any { return []any{img(seed), 0.1, 0.9} }, Eq: eq, Config: cfg}},
		{Name: "MagickModulateImage", CheckSpec: core.CheckSpec{Fn: modulateFn, Annotation: modulateSA,
			Gen: func(seed int64) []any { return []any{img(seed), 1.1, 0.9, 0.2} }, Eq: eq, Config: cfg}},
		{Name: "MagickGrayscaleImage", CheckSpec: core.CheckSpec{Fn: grayFn, Annotation: graySA,
			Gen: func(seed int64) []any { return []any{img(seed)} }, Eq: eq, Config: cfg}},
	}
}
