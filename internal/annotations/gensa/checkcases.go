package gensa

import (
	"math/rand"

	"mozart/internal/annotations/checksuite"
	"mozart/internal/core"
)

// CheckCases exposes the generated annotation/function pairs (one per DSL
// shape in vmath.sa) for the repository-wide soundness suite in
// internal/annotations/checksuite — the generated wrappers get the same
// fuzz coverage as the hand-written ones.
func CheckCases() []checksuite.Case {
	vec := func(n int, seed int64) []float64 {
		rng := rand.New(rand.NewSource(seed))
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.Float64()*2 + 0.5
		}
		return v
	}
	genUnary := func(seed int64) []any {
		const n = 201
		return []any{n, vec(n, seed), make([]float64, n)}
	}
	genBinary := func(seed int64) []any {
		const n = 255
		return []any{n, vec(n, seed), vec(n, seed+1), make([]float64, n)}
	}
	genReduce2 := func(seed int64) []any {
		const n = 289
		return []any{n, vec(n, seed), vec(n, seed+1)}
	}
	genReduce1 := func(seed int64) []any {
		const n = 289
		return []any{n, vec(n, seed)}
	}
	cfg := core.CheckConfig{Trials: 6, MaxBatch: 64}
	return []checksuite.Case{
		{Name: "Log1p", Fn: fnLog1p, SA: saLog1p, Gen: genUnary, Eq: checksuite.FloatsEq, Cfg: cfg},
		{Name: "Add", Fn: fnAdd, SA: saAdd, Gen: genBinary, Eq: checksuite.FloatsEq, Cfg: cfg},
		{Name: "Div", Fn: fnDiv, SA: saDiv, Gen: genBinary, Eq: checksuite.FloatsEq, Cfg: cfg},
		{Name: "Dot", Fn: fnDot, SA: saDot, Gen: genReduce2, Eq: checksuite.FloatsEq, Cfg: cfg},
		{Name: "Sum", Fn: fnSum, SA: saSum, Gen: genReduce1, Eq: checksuite.FloatsEq, Cfg: cfg},
	}
}
