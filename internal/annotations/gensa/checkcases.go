package gensa

import (
	"math/rand"

	"mozart/internal/annotations/checksuite"
	"mozart/internal/core"
)

// CheckCases exposes the generated annotation/function pairs (one per DSL
// shape in vmath.sa) for the repository-wide soundness suite in
// internal/annotations/checksuite — the generated wrappers get the same
// fuzz coverage as the hand-written ones.
func CheckCases() []checksuite.Case {
	vec := func(n int, seed int64) []float64 {
		rng := rand.New(rand.NewSource(seed))
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.Float64()*2 + 0.5
		}
		return v
	}
	genUnary := func(seed int64) []any {
		const n = 201
		return []any{n, vec(n, seed), make([]float64, n)}
	}
	genBinary := func(seed int64) []any {
		const n = 255
		return []any{n, vec(n, seed), vec(n, seed+1), make([]float64, n)}
	}
	genReduce2 := func(seed int64) []any {
		const n = 289
		return []any{n, vec(n, seed), vec(n, seed+1)}
	}
	genReduce1 := func(seed int64) []any {
		const n = 289
		return []any{n, vec(n, seed)}
	}
	cfg := core.CheckConfig{Trials: 6, MaxBatch: 64}
	return []checksuite.Case{
		{Name: "Log1p", CheckSpec: core.CheckSpec{Fn: fnLog1p, Annotation: saLog1p, Gen: genUnary, Eq: checksuite.FloatsEq, Config: cfg}},
		{Name: "Add", CheckSpec: core.CheckSpec{Fn: fnAdd, Annotation: saAdd, Gen: genBinary, Eq: checksuite.FloatsEq, Config: cfg}},
		{Name: "Div", CheckSpec: core.CheckSpec{Fn: fnDiv, Annotation: saDiv, Gen: genBinary, Eq: checksuite.FloatsEq, Config: cfg}},
		{Name: "Dot", CheckSpec: core.CheckSpec{Fn: fnDot, Annotation: saDot, Gen: genReduce2, Eq: checksuite.FloatsEq, Config: cfg}},
		{Name: "Sum", CheckSpec: core.CheckSpec{Fn: fnSum, Annotation: saSum, Gen: genReduce1, Eq: checksuite.FloatsEq, Config: cfg}},
	}
}
