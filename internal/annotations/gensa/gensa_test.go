package gensa

import (
	"math"
	"math/rand"
	"os"
	"testing"

	"mozart/internal/core"
	"mozart/internal/satool"
	"mozart/internal/vmath"
)

// TestGeneratedWrappersPipeline drives the tool-generated wrappers through
// a full Mozart pipeline and compares with direct library calls.
func TestGeneratedWrappersPipeline(t *testing.T) {
	const n = 3000
	rng := rand.New(rand.NewSource(7))
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = rng.Float64() + 0.1
		b[i] = rng.Float64() + 0.1
	}
	ref := append([]float64(nil), a...)
	vmath.Log1p(n, ref, ref)
	vmath.Add(n, ref, b, ref)
	vmath.Div(n, ref, b, ref)
	wantDot := vmath.Dot(n, ref, b)

	s := core.NewSession(core.Options{Workers: 4, BatchElems: 111})
	Log1p(s, n, a, a)
	Add(s, n, a, b, a)
	Div(s, n, a, b, a)
	dot := Dot(s, n, a, b)
	got, err := dot.Float64()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-wantDot) > 1e-7*(1+math.Abs(wantDot)) {
		t.Fatalf("dot = %v want %v", got, wantDot)
	}
	for i := range a {
		if math.Abs(a[i]-ref[i]) > 1e-12*(1+math.Abs(ref[i])) {
			t.Fatalf("pipeline row %d", i)
		}
	}
	if s.Stats().Stages != 1 {
		t.Errorf("generated wrappers should pipeline into 1 stage, got %d", s.Stats().Stages)
	}
}

// TestGeneratedSumAndExp covers the remaining generated functions.
func TestGeneratedSumAndExp(t *testing.T) {
	const n = 500
	a := make([]float64, n)
	for i := range a {
		a[i] = float64(i%7) / 10
	}
	ref := make([]float64, n)
	vmath.Exp(n, a, ref)
	want := vmath.Sum(n, ref)

	out := make([]float64, n)
	s := core.NewSession(core.Options{Workers: 2, BatchElems: 37})
	Exp(s, n, a, out)
	Mul(s, n, out, out, out)
	total := Sum(s, n, out)
	got, err := total.Float64()
	if err != nil {
		t.Fatal(err)
	}
	refSq := make([]float64, n)
	vmath.Mul(n, ref, ref, refSq)
	want = vmath.Sum(n, refSq)
	if math.Abs(got-want) > 1e-7*(1+want) {
		t.Fatalf("sum = %v want %v", got, want)
	}
}

// TestGoldenRegeneration: the checked-in wrappers.gen.go matches what the
// annotate tool produces from vmath.sa.
func TestGoldenRegeneration(t *testing.T) {
	src, err := os.ReadFile("vmath.sa")
	if err != nil {
		t.Fatal(err)
	}
	f, err := satool.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	gen, err := satool.Generate(f)
	if err != nil {
		t.Fatal(err)
	}
	committed, err := os.ReadFile("wrappers.gen.go")
	if err != nil {
		t.Fatal(err)
	}
	// gofmt may have normalized the committed file; compare modulo spaces.
	if normalize(string(committed)) != normalize(gen) {
		t.Fatal("wrappers.gen.go is stale; regenerate with cmd/annotate")
	}
}

func normalize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r != ' ' && r != '\t' && r != '\n' && r != '\r' {
			out = append(out, r)
		}
	}
	return string(out)
}
