package tensorsa_test

import (
	"math"
	"math/rand"
	"testing"

	"mozart/internal/annotations/tensorsa"
	"mozart/internal/core"
	"mozart/internal/tensor"
)

func randArr(seed int64, shape ...int) *tensor.NDArray {
	a := tensor.New(shape...)
	rng := rand.New(rand.NewSource(seed))
	for i := range a.Data {
		a.Data[i] = rng.Float64()*4 + 0.25
	}
	return a
}

func sess() *core.Session { return core.NewSession(core.Options{Workers: 3, BatchElems: 64}) }

func wantArr(t *testing.T, f *core.Future, want *tensor.NDArray, what string) {
	t.Helper()
	v, err := f.Get()
	if err != nil {
		t.Fatalf("%s: %v", what, err)
	}
	got := v.(*tensor.NDArray)
	if got.Size() != want.Size() {
		t.Fatalf("%s: size %d vs %d", what, got.Size(), want.Size())
	}
	for i := range got.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-9*(1+math.Abs(want.Data[i])) {
			t.Fatalf("%s: idx %d: %v vs %v", what, i, got.Data[i], want.Data[i])
		}
	}
}

// TestElementwisePipeline: a chain of out-of-place NumPy-style ops fuses
// into one stage; intermediates are never materialized.
func TestElementwisePipeline(t *testing.T) {
	a, b := randArr(1, 4000), randArr(2, 4000)
	want := tensor.Div(tensor.Add(tensor.Log1p(a), b), tensor.Sqrt(b))

	s := sess()
	x := tensorsa.Log1p(s, a)
	y := tensorsa.Add(s, x, b)
	z := tensorsa.Div(s, y, tensorsa.Sqrt(s, b))
	wantArr(t, z, want, "pipeline")
	if s.Stats().Stages != 1 {
		t.Errorf("want 1 stage, got %d", s.Stats().Stages)
	}
	if _, err := x.Get(); err != core.ErrDiscarded {
		t.Errorf("intermediate should be discarded, got %v", err)
	}
}

// TestScalarAndComparisonOps: scalar forms and masks through Where.
func TestScalarAndComparisonOps(t *testing.T) {
	a, b := randArr(3, 1000), randArr(4, 1000)
	want := tensor.Where(tensor.Greater(a, b), tensor.MulS(a, 2), tensor.RSubS(b, 1))

	s := sess()
	m := tensorsa.Greater(s, a, b)
	w := tensorsa.Where(s, m, tensorsa.MulS(s, a, 2), tensorsa.RSubS(s, b, 1))
	wantArr(t, w, want, "where")
	if s.Stats().Stages != 1 {
		t.Errorf("want 1 stage, got %d", s.Stats().Stages)
	}
}

// TestReductionOps: Sum/Max over pipelined values.
func TestReductionOps(t *testing.T) {
	a := randArr(5, 3000)
	s := sess()
	total := tensorsa.Sum(s, tensorsa.Square(s, a))
	got, err := total.Float64()
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.Sum(tensor.Square(a))
	if math.Abs(got-want) > 1e-7*(1+want) {
		t.Fatalf("Sum = %v want %v", got, want)
	}
	mx := tensorsa.Max(s, a)
	if got, _ := mx.Float64(); got != tensor.Max(a) {
		t.Fatal("Max")
	}
}

// TestAxisReductions: axis 0 merges by vector add, axis 1 concatenates.
func TestAxisReductions(t *testing.T) {
	a := randArr(6, 300, 5)
	s := sess()
	wantArr(t, tensorsa.SumAxis(s, a, 0), tensor.SumAxis0(a), "SumAxis0")
	wantArr(t, tensorsa.SumAxis(s, a, 1), tensor.SumAxis1(a), "SumAxis1")
}

// TestRollBehaviour: axis-1 rolls pipeline; axis-0 rolls run whole and
// break stages (the Shallow Water structure).
func TestRollBehaviour(t *testing.T) {
	a := randArr(7, 200, 8)
	want := tensor.Mul(tensor.Roll(a, 1, 1), a)
	s := sess()
	r := tensorsa.Roll(s, a, 1, 1)
	m := tensorsa.Mul(s, r, a)
	wantArr(t, m, want, "roll axis1 + mul")
	if s.Stats().Stages != 1 {
		t.Errorf("axis-1 roll should pipeline, got %d stages", s.Stats().Stages)
	}

	want0 := tensor.Mul(tensor.Roll(a, 1, 0), a)
	s2 := sess()
	r0 := tensorsa.Roll(s2, a, 1, 0)
	m0 := tensorsa.Mul(s2, r0, a)
	wantArr(t, m0, want0, "roll axis0 + mul")
	if s2.Stats().Stages != 2 {
		t.Errorf("axis-0 roll should run whole, got %d stages", s2.Stats().Stages)
	}
}

// TestOuterSubWhole: OuterSub runs whole; downstream elementwise ops split.
func TestOuterSubWhole(t *testing.T) {
	x, y := randArr(8, 40), randArr(9, 40)
	want := tensor.Sqrt(tensor.Abs(tensor.OuterSub(x, y)))
	s := sess()
	d := tensorsa.OuterSub(s, x, y)
	r := tensorsa.Sqrt(s, tensorsa.Abs(s, d))
	wantArr(t, r, want, "outer + sqrt(abs)")
	if s.Stats().Stages != 2 {
		t.Errorf("want 2 stages, got %d", s.Stats().Stages)
	}
}

// TestMixedShapesBreakStage: consuming arrays whose NdSplit parameters
// differ in one call re-splits via defaults but stays correct.
func TestMixedShapesBreakStage(t *testing.T) {
	a := randArr(10, 100, 3) // rows=100, rowSize=3
	b := randArr(11, 300)    // rows=300
	// a*a is split as <100,3>; reshaped result b2 aligns with b as <300,1>.
	s := sess()
	sq := tensorsa.Square(s, a)
	v, err := sq.Get()
	if err != nil {
		t.Fatal(err)
	}
	flat := v.(*tensor.NDArray).Reshape(300)
	sum := tensorsa.Add(s, flat, b)
	want := tensor.Add(tensor.Square(a).Reshape(300), b)
	wantArr(t, sum, want, "mixed shapes")
}

// TestWorkersDeterminism: identical results across worker counts.
func TestWorkersDeterminism(t *testing.T) {
	a, b := randArr(12, 2500), randArr(13, 2500)
	var ref *tensor.NDArray
	for i, workers := range []int{1, 2, 5, 8} {
		s := core.NewSession(core.Options{Workers: workers, BatchElems: 111})
		f := tensorsa.Mul(s, tensorsa.Add(s, a, b), tensorsa.Exp(s, tensorsa.Neg(s, a)))
		v, err := f.Get()
		if err != nil {
			t.Fatal(err)
		}
		got := v.(*tensor.NDArray)
		if i == 0 {
			ref = got
			continue
		}
		for j := range got.Data {
			if got.Data[j] != ref.Data[j] {
				t.Fatalf("workers=%d differ at %d", workers, j)
			}
		}
	}
}

// TestAllWrappersAgainstLibrary drives every tensor wrapper once and
// compares against the direct library call.
func TestAllWrappersAgainstLibrary(t *testing.T) {
	a, b := randArr(20, 900), randArr(21, 900)
	cases := []struct {
		name string
		moz  func(s *core.Session) *core.Future
		want *tensor.NDArray
	}{
		{"Add", func(s *core.Session) *core.Future { return tensorsa.Add(s, a, b) }, tensor.Add(a, b)},
		{"Sub", func(s *core.Session) *core.Future { return tensorsa.Sub(s, a, b) }, tensor.Sub(a, b)},
		{"Mul", func(s *core.Session) *core.Future { return tensorsa.Mul(s, a, b) }, tensor.Mul(a, b)},
		{"Div", func(s *core.Session) *core.Future { return tensorsa.Div(s, a, b) }, tensor.Div(a, b)},
		{"Maximum", func(s *core.Session) *core.Future { return tensorsa.Maximum(s, a, b) }, tensor.Maximum(a, b)},
		{"Minimum", func(s *core.Session) *core.Future { return tensorsa.Minimum(s, a, b) }, tensor.Minimum(a, b)},
		{"Pow", func(s *core.Session) *core.Future { return tensorsa.Pow(s, a, b) }, tensor.Pow(a, b)},
		{"Atan2", func(s *core.Session) *core.Future { return tensorsa.Atan2(s, a, b) }, tensor.Atan2(a, b)},
		{"Greater", func(s *core.Session) *core.Future { return tensorsa.Greater(s, a, b) }, tensor.Greater(a, b)},
		{"Less", func(s *core.Session) *core.Future { return tensorsa.Less(s, a, b) }, tensor.Less(a, b)},
		{"Sqrt", func(s *core.Session) *core.Future { return tensorsa.Sqrt(s, a) }, tensor.Sqrt(a)},
		{"Exp", func(s *core.Session) *core.Future { return tensorsa.Exp(s, a) }, tensor.Exp(a)},
		{"Log", func(s *core.Session) *core.Future { return tensorsa.Log(s, a) }, tensor.Log(a)},
		{"Log1p", func(s *core.Session) *core.Future { return tensorsa.Log1p(s, a) }, tensor.Log1p(a)},
		{"Log2", func(s *core.Session) *core.Future { return tensorsa.Log2(s, a) }, tensor.Log2(a)},
		{"Erf", func(s *core.Session) *core.Future { return tensorsa.Erf(s, a) }, tensor.Erf(a)},
		{"Abs", func(s *core.Session) *core.Future { return tensorsa.Abs(s, a) }, tensor.Abs(a)},
		{"Neg", func(s *core.Session) *core.Future { return tensorsa.Neg(s, a) }, tensor.Neg(a)},
		{"Sin", func(s *core.Session) *core.Future { return tensorsa.Sin(s, a) }, tensor.Sin(a)},
		{"Cos", func(s *core.Session) *core.Future { return tensorsa.Cos(s, a) }, tensor.Cos(a)},
		{"Square", func(s *core.Session) *core.Future { return tensorsa.Square(s, a) }, tensor.Square(a)},
		{"Invert", func(s *core.Session) *core.Future { return tensorsa.Invert(s, a) }, tensor.Invert(a)},
		{"AddS", func(s *core.Session) *core.Future { return tensorsa.AddS(s, a, 2) }, tensor.AddS(a, 2)},
		{"SubS", func(s *core.Session) *core.Future { return tensorsa.SubS(s, a, 2) }, tensor.SubS(a, 2)},
		{"RSubS", func(s *core.Session) *core.Future { return tensorsa.RSubS(s, a, 2) }, tensor.RSubS(a, 2)},
		{"MulS", func(s *core.Session) *core.Future { return tensorsa.MulS(s, a, 2) }, tensor.MulS(a, 2)},
		{"DivS", func(s *core.Session) *core.Future { return tensorsa.DivS(s, a, 2) }, tensor.DivS(a, 2)},
		{"RDivS", func(s *core.Session) *core.Future { return tensorsa.RDivS(s, a, 2) }, tensor.RDivS(a, 2)},
		{"PowS", func(s *core.Session) *core.Future { return tensorsa.PowS(s, a, 2) }, tensor.PowS(a, 2)},
		{"GreaterS", func(s *core.Session) *core.Future { return tensorsa.GreaterS(s, a, 2) }, tensor.GreaterS(a, 2)},
		{"LessS", func(s *core.Session) *core.Future { return tensorsa.LessS(s, a, 2) }, tensor.LessS(a, 2)},
	}
	for _, c := range cases {
		s := sess()
		wantArr(t, c.moz(s), c.want, c.name)
	}
}

// TestSplitterErrors: the splitting API rejects foreign types and
// reduction partials reject Split.
func TestSplitterErrors(t *testing.T) {
	if _, err := (tensorsa.NdSplitter{}).Info("nope", core.NewSplitType("NdSplit")); err == nil {
		t.Error("Info should reject non-arrays")
	}
	if _, err := (tensorsa.ScalarAddReduceSplitter{}).Split(1.0, core.NewSplitType("AddReduce"), 0, 1); err == nil {
		t.Error("reduction partials must not split")
	}
	if _, err := (tensorsa.VecAddReduceSplitter{}).Split(nil, core.NewSplitType("VecAddReduce"), 0, 1); err == nil {
		t.Error("vector reduction partials must not split")
	}
	if _, err := (tensorsa.MaxReduceSplitter{}).Split(nil, core.NewSplitType("MaxReduce"), 0, 1); err == nil {
		t.Error("max partials must not split")
	}
	// Mismatched vector partial lengths fail the merge.
	if _, err := (tensorsa.VecAddReduceSplitter{}).Merge([]any{tensor.New(3), tensor.New(4)}, core.NewSplitType("VecAddReduce")); err == nil {
		t.Error("mismatched partial lengths must fail")
	}
}

// TestNdSplitInfoBytes: Info reports row granularity for 2-d arrays.
func TestNdSplitInfoBytes(t *testing.T) {
	a := randArr(22, 10, 7)
	info, err := (tensorsa.NdSplitter{}).Info(a, core.NewSplitType("NdSplit"))
	if err != nil {
		t.Fatal(err)
	}
	if info.Elems != 10 || info.ElemBytes != 7*8 {
		t.Fatalf("info = %+v", info)
	}
}
