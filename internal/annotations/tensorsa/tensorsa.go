// Package tensorsa contains the split annotations and splitting API for the
// tensor library (the repository's NumPy stand-in), mirroring the paper's
// §7 NumPy integration: a single split type for ndarray whose behaviour
// depends on the array shape, SAs over all unary/binary/reduction
// operators, and per-reduction split types that only implement merge.
package tensorsa

import (
	"fmt"

	"mozart/internal/core"
	"mozart/internal/tensor"
)

// NdSplitter splits an NDArray along axis 0 into shared-storage views and
// merges pieces by concatenation.
type NdSplitter struct{}

// InPlace reports that pieces alias the original storage.
func (NdSplitter) InPlace() bool { return true }

// Info reports axis-0 length as the element count and the row size in
// bytes as the element size.
func (NdSplitter) Info(v any, t core.SplitType) (core.RuntimeInfo, error) {
	a, ok := v.(*tensor.NDArray)
	if !ok {
		return core.RuntimeInfo{}, fmt.Errorf("tensorsa: NdSplit over %T", v)
	}
	return core.RuntimeInfo{Elems: int64(a.Rows()), ElemBytes: int64(a.RowSize()) * 8}, nil
}

// Split returns rows [start, end) as a view.
func (NdSplitter) Split(v any, t core.SplitType, start, end int64) (any, error) {
	return v.(*tensor.NDArray).RowSlice(int(start), int(end)), nil
}

// Merge concatenates pieces along axis 0.
func (NdSplitter) Merge(pieces []any, t core.SplitType) (any, error) {
	arrays := make([]*tensor.NDArray, len(pieces))
	for i, p := range pieces {
		arrays[i] = p.(*tensor.NDArray)
	}
	return tensor.Concat(arrays...), nil
}

// ndCtor builds NdSplit<rows, rowSize> from the array value.
func ndCtor(v any) (core.SplitType, error) {
	a, ok := v.(*tensor.NDArray)
	if !ok || a == nil {
		return core.SplitType{}, fmt.Errorf("tensorsa: NdSplit ctor over %T", v)
	}
	return core.NewSplitType("NdSplit", int64(a.Rows()), int64(a.RowSize())), nil
}

// NdSplit is the concrete NdSplit(a) type expression reading the shape from
// argument argIdx.
func NdSplit(argIdx int) core.TypeExpr {
	return core.Concrete("NdSplit", NdSplitter{}, func(args []any) (core.SplitType, error) {
		return ndCtor(args[argIdx])
	})
}

// ScalarAddReduceSplitter merges partial sums.
type ScalarAddReduceSplitter struct{}

// Info reports one scalar.
func (ScalarAddReduceSplitter) Info(v any, t core.SplitType) (core.RuntimeInfo, error) {
	return core.RuntimeInfo{Elems: 1, ElemBytes: 8}, nil
}

// Split is invalid for reduction partials.
func (ScalarAddReduceSplitter) Split(v any, t core.SplitType, start, end int64) (any, error) {
	return nil, fmt.Errorf("tensorsa: reduction partials cannot be split")
}

// Merge sums partials.
func (ScalarAddReduceSplitter) Merge(pieces []any, t core.SplitType) (any, error) {
	s := 0.0
	for _, p := range pieces {
		s += p.(float64)
	}
	return s, nil
}

// VecAddReduceSplitter merges partial 1-d arrays by elementwise addition
// (for axis-0 reductions over row-split arrays).
type VecAddReduceSplitter struct{}

// Info reports the partial vector as one unit.
func (VecAddReduceSplitter) Info(v any, t core.SplitType) (core.RuntimeInfo, error) {
	return core.RuntimeInfo{Elems: 1, ElemBytes: int64(v.(*tensor.NDArray).Size()) * 8}, nil
}

// Split is invalid for reduction partials.
func (VecAddReduceSplitter) Split(v any, t core.SplitType, start, end int64) (any, error) {
	return nil, fmt.Errorf("tensorsa: reduction partials cannot be split")
}

// Merge adds the partial arrays elementwise.
func (VecAddReduceSplitter) Merge(pieces []any, t core.SplitType) (any, error) {
	if len(pieces) == 0 {
		return tensor.New(0), nil
	}
	out := pieces[0].(*tensor.NDArray).Clone()
	for _, p := range pieces[1:] {
		a := p.(*tensor.NDArray)
		if a.Size() != out.Size() {
			return nil, fmt.Errorf("tensorsa: partial size mismatch")
		}
		for i := range a.Data {
			out.Data[i] += a.Data[i]
		}
	}
	return out, nil
}

// MaxReduceSplitter merges partial maxima.
type MaxReduceSplitter struct{}

// Info reports one scalar.
func (MaxReduceSplitter) Info(v any, t core.SplitType) (core.RuntimeInfo, error) {
	return core.RuntimeInfo{Elems: 1, ElemBytes: 8}, nil
}

// Split is invalid for reduction partials.
func (MaxReduceSplitter) Split(v any, t core.SplitType, start, end int64) (any, error) {
	return nil, fmt.Errorf("tensorsa: reduction partials cannot be split")
}

// Merge keeps the largest partial.
func (MaxReduceSplitter) Merge(pieces []any, t core.SplitType) (any, error) {
	best := pieces[0].(float64)
	for _, p := range pieces[1:] {
		if x := p.(float64); x > best {
			best = x
		}
	}
	return best, nil
}

func retExpr(t core.TypeExpr) *core.TypeExpr { return &t }

func genericS() core.TypeExpr { return core.Generic("S") }

func init() {
	core.RegisterDefaultSplit((*tensor.NDArray)(nil), NdSplitter{}, ndCtor)
}

// makeBinary wraps f(a, b) -> new array as @splittable(a: S, b: S) -> S.
func makeBinary(name string, f func(a, b *tensor.NDArray) *tensor.NDArray) (core.Func, *core.Annotation) {
	fn := func(args []any) (any, error) {
		return f(args[0].(*tensor.NDArray), args[1].(*tensor.NDArray)), nil
	}
	sa := &core.Annotation{FuncName: name, Params: []core.Param{
		{Name: "a", Type: genericS()},
		{Name: "b", Type: genericS()},
	}, Ret: retExpr(genericS())}
	return fn, sa
}

// makeUnary wraps f(a) -> new array as @splittable(a: S) -> S.
func makeUnary(name string, f func(a *tensor.NDArray) *tensor.NDArray) (core.Func, *core.Annotation) {
	fn := func(args []any) (any, error) {
		return f(args[0].(*tensor.NDArray)), nil
	}
	sa := &core.Annotation{FuncName: name, Params: []core.Param{
		{Name: "a", Type: genericS()},
	}, Ret: retExpr(genericS())}
	return fn, sa
}

// makeScalar wraps f(a, c) -> new array as @splittable(a: S, c: _) -> S.
func makeScalar(name string, f func(a *tensor.NDArray, c float64) *tensor.NDArray) (core.Func, *core.Annotation) {
	fn := func(args []any) (any, error) {
		return f(args[0].(*tensor.NDArray), args[1].(float64)), nil
	}
	sa := &core.Annotation{FuncName: name, Params: []core.Param{
		{Name: "a", Type: genericS()},
		{Name: "c", Type: core.Missing()},
	}, Ret: retExpr(genericS())}
	return fn, sa
}

var (
	addFn, addSA     = makeBinary("np.add", tensor.Add)
	subFn, subSA     = makeBinary("np.subtract", tensor.Sub)
	mulFn, mulSA     = makeBinary("np.multiply", tensor.Mul)
	divFn, divSA     = makeBinary("np.divide", tensor.Div)
	maxFn, maxSA     = makeBinary("np.maximum", tensor.Maximum)
	minFn, minSA     = makeBinary("np.minimum", tensor.Minimum)
	powFn, powSA     = makeBinary("np.power", tensor.Pow)
	atan2Fn, atan2SA = makeBinary("np.arctan2", tensor.Atan2)
	grFn, grSA       = makeBinary("np.greater", tensor.Greater)
	lsFn, lsSA       = makeBinary("np.less", tensor.Less)

	sqrtFn, sqrtSA   = makeUnary("np.sqrt", tensor.Sqrt)
	expFn, expSA     = makeUnary("np.exp", tensor.Exp)
	logFn, logSA     = makeUnary("np.log", tensor.Log)
	log1pFn, log1pSA = makeUnary("np.log1p", tensor.Log1p)
	log2Fn, log2SA   = makeUnary("np.log2", tensor.Log2)
	erfFn, erfSA     = makeUnary("scipy.erf", tensor.Erf)
	absFn, absSA     = makeUnary("np.abs", tensor.Abs)
	negFn, negSA     = makeUnary("np.negative", tensor.Neg)
	sinFn, sinSA     = makeUnary("np.sin", tensor.Sin)
	cosFn, cosSA     = makeUnary("np.cos", tensor.Cos)
	sqFn, sqSA       = makeUnary("np.square", tensor.Square)
	invFn, invSA     = makeUnary("np.reciprocal", tensor.Invert)

	addsFn, addsSA   = makeScalar("np.add.s", tensor.AddS)
	subsFn, subsSA   = makeScalar("np.subtract.s", tensor.SubS)
	rsubsFn, rsubsSA = makeScalar("np.rsubtract.s", tensor.RSubS)
	mulsFn, mulsSA   = makeScalar("np.multiply.s", tensor.MulS)
	divsFn, divsSA   = makeScalar("np.divide.s", tensor.DivS)
	rdivsFn, rdivsSA = makeScalar("np.rdivide.s", tensor.RDivS)
	powsFn, powsSA   = makeScalar("np.power.s", tensor.PowS)
	grsFn, grsSA     = makeScalar("np.greater.s", tensor.GreaterS)
	lsssFn, lsssSA   = makeScalar("np.less.s", tensor.LessS)
)

// Add registers a + b.
func Add(s *core.Session, a, b any) *core.Future { return s.Call(addFn, addSA, a, b) }

// Sub registers a - b.
func Sub(s *core.Session, a, b any) *core.Future { return s.Call(subFn, subSA, a, b) }

// Mul registers a * b.
func Mul(s *core.Session, a, b any) *core.Future { return s.Call(mulFn, mulSA, a, b) }

// Div registers a / b.
func Div(s *core.Session, a, b any) *core.Future { return s.Call(divFn, divSA, a, b) }

// Maximum registers max(a, b).
func Maximum(s *core.Session, a, b any) *core.Future { return s.Call(maxFn, maxSA, a, b) }

// Minimum registers min(a, b).
func Minimum(s *core.Session, a, b any) *core.Future { return s.Call(minFn, minSA, a, b) }

// Pow registers a^b.
func Pow(s *core.Session, a, b any) *core.Future { return s.Call(powFn, powSA, a, b) }

// Atan2 registers atan2(a, b).
func Atan2(s *core.Session, a, b any) *core.Future { return s.Call(atan2Fn, atan2SA, a, b) }

// Greater registers the a > b mask.
func Greater(s *core.Session, a, b any) *core.Future { return s.Call(grFn, grSA, a, b) }

// Less registers the a < b mask.
func Less(s *core.Session, a, b any) *core.Future { return s.Call(lsFn, lsSA, a, b) }

// Sqrt registers sqrt(a).
func Sqrt(s *core.Session, a any) *core.Future { return s.Call(sqrtFn, sqrtSA, a) }

// Exp registers e^a.
func Exp(s *core.Session, a any) *core.Future { return s.Call(expFn, expSA, a) }

// Log registers ln(a).
func Log(s *core.Session, a any) *core.Future { return s.Call(logFn, logSA, a) }

// Log1p registers ln(1+a).
func Log1p(s *core.Session, a any) *core.Future { return s.Call(log1pFn, log1pSA, a) }

// Log2 registers log2(a).
func Log2(s *core.Session, a any) *core.Future { return s.Call(log2Fn, log2SA, a) }

// Erf registers erf(a).
func Erf(s *core.Session, a any) *core.Future { return s.Call(erfFn, erfSA, a) }

// Abs registers |a|.
func Abs(s *core.Session, a any) *core.Future { return s.Call(absFn, absSA, a) }

// Neg registers -a.
func Neg(s *core.Session, a any) *core.Future { return s.Call(negFn, negSA, a) }

// Sin registers sin(a).
func Sin(s *core.Session, a any) *core.Future { return s.Call(sinFn, sinSA, a) }

// Cos registers cos(a).
func Cos(s *core.Session, a any) *core.Future { return s.Call(cosFn, cosSA, a) }

// Square registers a*a.
func Square(s *core.Session, a any) *core.Future { return s.Call(sqFn, sqSA, a) }

// Invert registers 1/a.
func Invert(s *core.Session, a any) *core.Future { return s.Call(invFn, invSA, a) }

// AddS registers a + c.
func AddS(s *core.Session, a any, c float64) *core.Future { return s.Call(addsFn, addsSA, a, c) }

// SubS registers a - c.
func SubS(s *core.Session, a any, c float64) *core.Future { return s.Call(subsFn, subsSA, a, c) }

// RSubS registers c - a.
func RSubS(s *core.Session, a any, c float64) *core.Future { return s.Call(rsubsFn, rsubsSA, a, c) }

// MulS registers a * c.
func MulS(s *core.Session, a any, c float64) *core.Future { return s.Call(mulsFn, mulsSA, a, c) }

// DivS registers a / c.
func DivS(s *core.Session, a any, c float64) *core.Future { return s.Call(divsFn, divsSA, a, c) }

// RDivS registers c / a.
func RDivS(s *core.Session, a any, c float64) *core.Future { return s.Call(rdivsFn, rdivsSA, a, c) }

// PowS registers a^c.
func PowS(s *core.Session, a any, c float64) *core.Future { return s.Call(powsFn, powsSA, a, c) }

// GreaterS registers the a > c mask.
func GreaterS(s *core.Session, a any, c float64) *core.Future { return s.Call(grsFn, grsSA, a, c) }

// LessS registers the a < c mask.
func LessS(s *core.Session, a any, c float64) *core.Future { return s.Call(lsssFn, lsssSA, a, c) }

// Where registers mask != 0 ? a : b.
func Where(s *core.Session, mask, a, b any) *core.Future {
	return s.Call(whereFn, whereSA, mask, a, b)
}

var whereFn core.Func = func(args []any) (any, error) {
	return tensor.Where(args[0].(*tensor.NDArray), args[1].(*tensor.NDArray), args[2].(*tensor.NDArray)), nil
}

var whereSA = &core.Annotation{FuncName: "np.where", Params: []core.Param{
	{Name: "mask", Type: genericS()},
	{Name: "a", Type: genericS()},
	{Name: "b", Type: genericS()},
}, Ret: retExpr(genericS())}

// Sum registers the full-array sum reduction.
func Sum(s *core.Session, a any) *core.Future { return s.Call(sumRedFn, sumRedSA, a) }

var sumRedFn core.Func = func(args []any) (any, error) {
	return tensor.Sum(args[0].(*tensor.NDArray)), nil
}

var sumRedSA = &core.Annotation{FuncName: "np.sum", Params: []core.Param{
	{Name: "a", Type: genericS()},
}, Ret: retExpr(core.Concrete("AddReduce", ScalarAddReduceSplitter{}, core.FixedCtor(core.NewSplitType("AddReduce"))))}

// Max registers the full-array max reduction.
func Max(s *core.Session, a any) *core.Future { return s.Call(maxRedFn, maxRedSA, a) }

var maxRedFn core.Func = func(args []any) (any, error) {
	return tensor.Max(args[0].(*tensor.NDArray)), nil
}

var maxRedSA = &core.Annotation{FuncName: "np.max", Params: []core.Param{
	{Name: "a", Type: genericS()},
}, Ret: retExpr(core.Concrete("MaxReduce", MaxReduceSplitter{}, core.FixedCtor(core.NewSplitType("MaxReduce"))))}

// SumAxis registers an axis reduction of a 2-d array. Axis 0 sums down the
// rows (partials merge by vector addition); axis 1 is row-local (partials
// concatenate) — the same shape-dependent behaviour the paper's ndarray
// split type captures.
func SumAxis(s *core.Session, a any, axis int) *core.Future {
	if axis == 0 {
		return s.Call(sumAxis0Fn, sumAxis0SA, a)
	}
	return s.Call(sumAxis1Fn, sumAxis1SA, a)
}

var sumAxis0Fn core.Func = func(args []any) (any, error) {
	return tensor.SumAxis0(args[0].(*tensor.NDArray)), nil
}

var sumAxis0SA = &core.Annotation{FuncName: "np.sum.axis0", Params: []core.Param{
	{Name: "a", Type: genericS()},
}, Ret: retExpr(core.Concrete("VecAddReduce", VecAddReduceSplitter{}, core.FixedCtor(core.NewSplitType("VecAddReduce"))))}

var sumAxis1Fn core.Func = func(args []any) (any, error) {
	return tensor.SumAxis1(args[0].(*tensor.NDArray)), nil
}

var sumAxis1SA = &core.Annotation{FuncName: "np.sum.axis1", Params: []core.Param{
	{Name: "a", Type: genericS()},
}, Ret: retExpr(core.Unknown())}

// Roll registers a circular shift. Axis-1 rolls are row-local and pipeline;
// axis-0 rolls move rows across split boundaries and run whole.
func Roll(s *core.Session, a any, k, axis int) *core.Future {
	if axis == 1 {
		return s.Call(rollColsFn, rollColsSA, a, k)
	}
	return s.Call(rollRowsFn, rollRowsSA, a, k)
}

var rollColsFn core.Func = func(args []any) (any, error) {
	return tensor.Roll(args[0].(*tensor.NDArray), args[1].(int), 1), nil
}

var rollColsSA = &core.Annotation{FuncName: "np.roll.axis1", Params: []core.Param{
	{Name: "a", Type: genericS()},
	{Name: "k", Type: core.Missing()},
}, Ret: retExpr(genericS())}

var rollRowsFn core.Func = func(args []any) (any, error) {
	return tensor.Roll(args[0].(*tensor.NDArray), args[1].(int), 0), nil
}

var rollRowsSA = &core.Annotation{FuncName: "np.roll.axis0", Params: []core.Param{
	{Name: "a", Type: core.Missing()},
	{Name: "k", Type: core.Missing()},
}, Ret: retExpr(core.Unknown())}

// OuterSub registers the pairwise-difference matrix x[i]-y[j]; it reads all
// of both vectors, so it runs whole.
func OuterSub(s *core.Session, x, y any) *core.Future {
	return s.Call(outerSubFn, outerSubSA, x, y)
}

var outerSubFn core.Func = func(args []any) (any, error) {
	return tensor.OuterSub(args[0].(*tensor.NDArray), args[1].(*tensor.NDArray)), nil
}

var outerSubSA = &core.Annotation{FuncName: "np.outer.subtract", Params: []core.Param{
	{Name: "x", Type: core.Missing()},
	{Name: "y", Type: core.Missing()},
}, Ret: retExpr(core.Unknown())}
