package tensorsa

import (
	"math/rand"

	"mozart/internal/annotations/checksuite"
	"mozart/internal/core"
	"mozart/internal/tensor"
)

// CheckCases exposes representative annotation/function pairs — binary,
// unary, and scalar elementwise shapes — for the repository-wide soundness
// suite in internal/annotations/checksuite.
func CheckCases() []checksuite.Case {
	arr := func(seed int64, n int) *tensor.NDArray {
		a := tensor.New(n)
		rng := rand.New(rand.NewSource(seed))
		for i := range a.Data {
			a.Data[i] = rng.Float64()*4 + 0.25
		}
		return a
	}
	genBinary := func(seed int64) []any { return []any{arr(seed, 301), arr(seed+1, 301)} }
	genUnary := func(seed int64) []any { return []any{arr(seed, 233)} }
	genScalar := func(seed int64) []any { return []any{arr(seed, 173), 1.75} }
	eq := func(got, want any) bool {
		g, ok1 := got.(*tensor.NDArray)
		w, ok2 := want.(*tensor.NDArray)
		return ok1 && ok2 && g.Size() == w.Size() && checksuite.FloatsEq(g.Data, w.Data)
	}
	cfg := core.CheckConfig{Trials: 6, MaxBatch: 64}
	return []checksuite.Case{
		{Name: "np.add", CheckSpec: core.CheckSpec{Fn: addFn, Annotation: addSA, Gen: genBinary, Eq: eq, Config: cfg}},
		{Name: "np.divide", CheckSpec: core.CheckSpec{Fn: divFn, Annotation: divSA, Gen: genBinary, Eq: eq, Config: cfg}},
		{Name: "np.sqrt", CheckSpec: core.CheckSpec{Fn: sqrtFn, Annotation: sqrtSA, Gen: genUnary, Eq: eq, Config: cfg}},
		{Name: "np.log1p", CheckSpec: core.CheckSpec{Fn: log1pFn, Annotation: log1pSA, Gen: genUnary, Eq: eq, Config: cfg}},
		{Name: "np.multiply.s", CheckSpec: core.CheckSpec{Fn: mulsFn, Annotation: mulsSA, Gen: genScalar, Eq: eq, Config: cfg}},
	}
}
